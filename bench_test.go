package sccpipe

// One benchmark per table and figure of the paper's evaluation: each
// iteration regenerates the corresponding experiment's data on a shortened
// (64-frame) walkthrough. Shapes and relative numbers are identical to the
// full 400-frame runs (everything scales linearly in frames); run
// cmd/paperrepro for full-length output.
//
// Substrate micro-benchmarks (mesh transfers, filters, renderer, DES
// engine) and design-ablation benchmarks follow the figure benchmarks.

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sccpipe/internal/band"
	"sccpipe/internal/codec"
	"sccpipe/internal/core"
	"sccpipe/internal/des"
	"sccpipe/internal/experiments"
	"sccpipe/internal/filters"
	"sccpipe/internal/fleet"
	"sccpipe/internal/frame"
	"sccpipe/internal/netfaults"
	"sccpipe/internal/pipe"
	"sccpipe/internal/plan"
	"sccpipe/internal/rcache"
	"sccpipe/internal/rcce"
	"sccpipe/internal/render"
	"sccpipe/internal/scc"
	"sccpipe/internal/scene"
	"sccpipe/internal/serve"
	"sccpipe/internal/viz"
)

// benchSetup is the shortened walkthrough shared by the figure benchmarks.
func benchSetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.Frames = 64
	return s
}

// warm pre-builds the cached workload so iterations measure simulation
// only.
func warm(b *testing.B, s experiments.Setup) {
	b.Helper()
	experiments.Workload(s)
	b.ResetTimer()
}

func BenchmarkFig8StageProfile(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9OneRenderer(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig9(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10NRenderers(b *testing.B) {
	s := benchSetup()
	experiments.Workload(s).StripStats(7)
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig10(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11MCPCRenderer(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig11(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12ImageSizes(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig12(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Cluster(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig13(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14PowerTrace(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig14(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15IdleTimes(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig15(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16FastBlur(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig16(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17DVFSPower(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig17(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnergyComparison(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunEnergy(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLocalMemory(b *testing.B) {
	s := benchSetup()
	warm(b, s)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblation(s); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks

func BenchmarkSimulateBestConfig(b *testing.B) {
	s := benchSetup()
	wl := experiments.Workload(s)
	spec := core.Spec{Frames: s.Frames, Width: s.Width, Height: s.Height,
		Pipelines: 5, Renderer: core.HostRenderer}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(spec, wl, core.SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDESEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := des.NewEngine()
		q := des.NewQueue(eng, 1)
		eng.Spawn("producer", func(p *des.Proc) {
			for j := 0; j < 1000; j++ {
				p.Wait(1)
				q.Put(p, j)
			}
		})
		eng.Spawn("consumer", func(p *des.Proc) {
			for j := 0; j < 1000; j++ {
				q.Get(p)
			}
		})
		eng.Run()
	}
	b.ReportMetric(float64(b.N)*2000, "events/op")
}

func BenchmarkRCCESendRecv(b *testing.B) {
	eng := des.NewEngine()
	chip := scc.New(eng, scc.DefaultConfig())
	comm := rcce.NewComm(chip, 1)
	n := b.N
	eng.Spawn("sender", func(p *des.Proc) {
		for i := 0; i < n; i++ {
			comm.Send(p, 0, 24, nil, 256*1024)
		}
	})
	eng.Spawn("receiver", func(p *des.Proc) {
		for i := 0; i < n; i++ {
			comm.Recv(p, 24, 0)
		}
	})
	b.ResetTimer()
	eng.Run()
}

func BenchmarkMeshMemAccess(b *testing.B) {
	eng := des.NewEngine()
	chip := scc.New(eng, scc.DefaultConfig())
	n := b.N
	eng.Spawn("reader", func(p *des.Proc) {
		for i := 0; i < n; i++ {
			chip.MemRead(p, 47, 64*1024)
		}
	})
	b.ResetTimer()
	eng.Run()
}

func benchImage(w, h int) *frame.Image {
	img := frame.New(w, h)
	rng := rand.New(rand.NewSource(1))
	rng.Read(img.Pix)
	return img
}

// benchFilter measures one in-place kernel at the standard 512×512 size.
func benchFilter(b *testing.B, fn func(*frame.Image)) {
	b.Helper()
	img := benchImage(512, 512)
	b.SetBytes(int64(img.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(img)
	}
}

// The optimized kernels and their paper-literal references are benchmarked
// in pairs; the committed BENCH_pipeline.json carries both so the speedup
// of the memory-traffic rewrite is on record next to the absolute numbers.

func BenchmarkFilterSepia(b *testing.B)          { benchFilter(b, filters.Sepia) }
func BenchmarkFilterSepiaReference(b *testing.B) { benchFilter(b, filters.SepiaReference) }

func BenchmarkFilterBlur(b *testing.B)          { benchFilter(b, filters.Blur) }
func BenchmarkFilterBlurReference(b *testing.B) { benchFilter(b, filters.BlurReference) }

func BenchmarkFilterSwap(b *testing.B)          { benchFilter(b, filters.Swap) }
func BenchmarkFilterSwapReference(b *testing.B) { benchFilter(b, filters.SwapReference) }

func BenchmarkFilterFlicker(b *testing.B) {
	benchFilter(b, func(img *frame.Image) { filters.FlickerBy(img, 0.05) })
}

func BenchmarkFilterFlickerReference(b *testing.B) {
	benchFilter(b, func(img *frame.Image) { filters.FlickerByReference(img, 0.05) })
}

func BenchmarkFilterScratch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	benchFilter(b, func(img *frame.Image) { filters.Scratch(img, rng) })
}

func BenchmarkFilterScratchReference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	benchFilter(b, func(img *frame.Image) { filters.ScratchReference(img, rng) })
}

// The tail-chain pair measures what stage fusion buys on the post-blur
// run of per-pixel filters (sepia → scratch → flicker → swap): the
// unfused variant walks the frame once per filter, the fused one applies
// all four kernels in a single read-modify-write pass. Both run on a
// rendered city frame — flat-shaded geometry gives the sepia memo the run
// lengths real frames have, which random noise would hide — and both draw
// the scratch/flicker parameters once, so the measured work is identical.
// Each iteration restores the frame from a pristine copy; that memmove is
// charged to both sides equally.

func benchRenderedImage() *frame.Image {
	tree := render.BuildOctree(scene.City(scene.DefaultConfig()))
	cams := render.Walkthrough(16, tree.Bounds())
	img := frame.New(512, 512)
	render.NewRenderer(tree).RenderFrame(cams[3], img)
	return img
}

func BenchmarkFilterTailChainUnfused(b *testing.B) {
	src := benchRenderedImage()
	img := src.Clone()
	rng := rand.New(rand.NewSource(7))
	sp := filters.DrawScratchParams(rng, img.W)
	delta := filters.DrawFlickerDelta(rng)
	b.SetBytes(int64(img.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(img.Pix, src.Pix)
		filters.Sepia(img)
		filters.ScratchWith(img, sp)
		filters.FlickerBy(img, delta)
		filters.Swap(img)
	}
}

func BenchmarkFilterTailChainFused(b *testing.B) {
	src := benchRenderedImage()
	img := src.Clone()
	rng := rand.New(rand.NewSource(7))
	sp := filters.DrawScratchParams(rng, img.W)
	delta := filters.DrawFlickerDelta(rng)
	var fz filters.Fused
	b.SetBytes(int64(img.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(img.Pix, src.Pix)
		fz.Reset()
		fz.AddSepia()
		fz.AddScratch(sp)
		fz.AddFlicker(delta)
		fz.AddSwap()
		fz.Apply(img)
	}
}

// BenchmarkFrameSplitAssembleViews measures the zero-copy strip round trip
// the one-renderer pipeline runs per frame: view split, then the
// view-aware reassembly (a no-op copy). Its copying counterpart is the
// pre-rewrite per-frame cost.
func BenchmarkFrameSplitAssembleViews(b *testing.B) {
	img := benchImage(512, 512)
	b.SetBytes(int64(img.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strips, err := frame.SplitRowsView(img, 4)
		if err != nil {
			b.Fatal(err)
		}
		frame.AssembleInto(img, strips)
	}
}

func BenchmarkFrameSplitAssembleCopy(b *testing.B) {
	img := benchImage(512, 512)
	dst := frame.New(512, 512)
	b.SetBytes(int64(img.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strips, err := frame.SplitRows(img, 4)
		if err != nil {
			b.Fatal(err)
		}
		frame.AssembleInto(dst, strips)
	}
}

func BenchmarkRenderFrame(b *testing.B) {
	tree := render.BuildOctree(scene.City(scene.DefaultConfig()))
	cams := render.Walkthrough(16, tree.Bounds())
	r := render.NewRenderer(tree)
	img := frame.New(512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RenderFrame(cams[i%len(cams)], img)
	}
}

// BenchmarkRenderFrameTiled is BenchmarkRenderFrame on the tiled, binned
// raster path with the default band pool — the committed pair records what
// tiling buys on a whole frame.
func BenchmarkRenderFrameTiled(b *testing.B) {
	tree := render.BuildOctree(scene.City(scene.DefaultConfig()))
	cams := render.Walkthrough(16, tree.Bounds())
	r := render.NewRenderer(tree)
	r.Mode = render.RasterTiled
	r.Bands = band.Default()
	img := frame.New(512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RenderFrame(cams[i%len(cams)], img)
	}
}

// BenchmarkRenderStrip compares the raster paths on one strip of the
// n-renderer configuration (the shape the pipeline actually renders):
// serial, the old per-band replay, and the tiled binned path, each over a
// sparse and a dense city. Replay and tiled run on a 4-lane pool so the
// numbers isolate scheduling and setup overhead, not machine parallelism.
func BenchmarkRenderStrip(b *testing.B) {
	scenes := []struct {
		name string
		cfg  scene.Config
	}{
		{"small", scene.Config{Seed: 1, BlocksX: 8, BlocksZ: 8, BlockSize: 10, MaxHeight: 40, Landmarks: 4}},
		{"large", scene.DefaultConfig()},
	}
	modes := []struct {
		name string
		mode render.RasterMode
	}{
		{"serial", render.RasterSerial},
		{"replay", render.RasterReplay},
		{"tiled", render.RasterTiled},
	}
	for _, sc := range scenes {
		tree := render.BuildOctree(scene.City(sc.cfg))
		cams := render.Walkthrough(16, tree.Bounds())
		for _, m := range modes {
			b.Run(sc.name+"/"+m.name, func(b *testing.B) {
				r := render.NewRenderer(tree)
				r.Mode = m.mode
				if m.mode != render.RasterSerial {
					r.Bands = band.New(4)
				}
				const fullW, fullH, y0 = 512, 512, 128
				img := frame.New(fullW, 128)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r.RenderStrip(cams[i%len(cams)], img, fullW, fullH, y0)
				}
			})
		}
	}
}

func BenchmarkExecPipelineReal(b *testing.B) {
	benchExecPipeline(b, false)
}

// BenchmarkExecPipelineRealNoFuse is the same run with plan-time stage
// fusion disabled (every filter its own stage goroutine) — the committed
// pair records what fusion buys end to end.
func BenchmarkExecPipelineRealNoFuse(b *testing.B) {
	benchExecPipeline(b, true)
}

func benchExecPipeline(b *testing.B, noFuse bool) {
	b.Helper()
	tree := render.BuildOctree(scene.City(scene.DefaultConfig()))
	spec := core.ExecSpec{Frames: 8, Width: 320, Height: 240, Pipelines: 4,
		Renderer: core.NRenderers, Seed: 1, NoFuse: noFuse}
	cams := render.Walkthrough(spec.Frames, tree.Bounds())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Exec(spec, tree, cams, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// The planned-exec pair records what the profile-driven planner buys on
// real wall clock. The workload is deliberately mis-mapped for the static
// layout: the n-renderer configuration at k=6 on a small frame duplicates
// the whole-scene culling and triangle setup in every pipeline, so on a
// machine with few cores the static replication factor wastes most of its
// work. The planner sees the duplication in the cost profile (and the
// machine's parallel capacity in Workers) and picks the replication and
// fusion boundaries to match; pixels stay byte-identical per chosen k.
func benchExecPlanned(b *testing.B, planned bool) {
	b.Helper()
	tree := render.BuildOctree(scene.City(scene.DefaultConfig()))
	spec := core.ExecSpec{Frames: 6, Width: 256, Height: 192, Pipelines: 6,
		Renderer: core.NRenderers, Seed: 1}
	if planned {
		wl := core.BuildWorkload(tree, spec.Frames, spec.Width, spec.Height)
		pr := plan.ModelProfile(core.DefaultCostModel(), wl)
		p, err := plan.Compute(pr, plan.Config{Renderer: core.NRenderers, Height: spec.Height})
		if err != nil {
			b.Fatal(err)
		}
		p.ApplyExec(&spec, true)
		b.Logf("plan: %s", p)
	}
	cams := render.Walkthrough(spec.Frames, tree.Bounds())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Exec(spec, tree, cams, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecPipelinePlanStatic(b *testing.B)   { benchExecPlanned(b, false) }
func BenchmarkExecPipelinePlanProfiled(b *testing.B) { benchExecPlanned(b, true) }

// BenchmarkPlanCompute measures the planner search itself (every
// replication factor × fusion grouping × greedy worker assignment) — the
// cost the online controller pays per re-plan.
func BenchmarkPlanCompute(b *testing.B) {
	s := benchSetup()
	pr := plan.ModelProfile(core.DefaultCostModel(), experiments.Workload(s))
	cfg := plan.Config{Renderer: core.NRenderers, Height: s.Height, Workers: 48}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Compute(pr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheSimulator(b *testing.B) {
	h := scc.NewHierarchy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i*64) % (1 << 22))
	}
}

func BenchmarkOctreeCull(b *testing.B) {
	tree := render.BuildOctree(scene.City(scene.DefaultConfig()))
	cams := render.Walkthrough(16, tree.Bounds())
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = tree.Cull(cams[i%len(cams)].Frustum(512, 512), buf[:0])
	}
}

func BenchmarkCodecHuffmanRoundTrip(b *testing.B) {
	data := make([]byte, 64*1024)
	rng := rand.New(rand.NewSource(1))
	v := byte(0)
	for i := range data {
		if rng.Intn(6) == 0 {
			v += byte(rng.Intn(3))
		}
		data[i] = v
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := codec.HuffmanEncode(data)
		if _, err := codec.HuffmanDecode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaResidual measures the adaptive temporal delta codec on a
// pair of rendered frames — the per-frame encode+decode cost a worker and
// the gateway each pay on the delta stream path. "motion" is two
// consecutive orbit poses (keyframe-heavy regime); "hold" repeats one
// pose (pure-residual regime, the dwell camera's common case).
func BenchmarkDeltaResidual(b *testing.B) {
	tree := render.BuildOctree(scene.City(scene.DefaultConfig()))
	cams := render.Walkthrough(16, tree.Bounds())
	r := render.NewRenderer(tree)
	const w, h = 320, 240
	pairs := []struct {
		name       string
		prev, next render.Camera
	}{
		{"motion", cams[0], cams[1]},
		{"hold", cams[0], cams[0]},
	}
	for _, p := range pairs {
		b.Run(p.name, func(b *testing.B) {
			prev, cur := frame.New(w, h), frame.New(w, h)
			r.RenderFrame(p.prev, prev)
			r.RenderFrame(p.next, cur)
			b.SetBytes(int64(len(cur.Pix)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				payload, err := codec.FrameDeltaEncode(prev.Pix, cur.Pix, w, h)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := codec.FrameDeltaDecode(prev.Pix, payload, w, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecPipelineRealCacheHit is BenchmarkExecPipelineReal with a
// pre-warmed render cache: every strip render is served from cached
// pixels, so the gap between the two records what the cache saves on a
// repeated spec end to end.
func BenchmarkExecPipelineRealCacheHit(b *testing.B) {
	tree := render.BuildOctree(scene.City(scene.DefaultConfig()))
	spec := core.ExecSpec{Frames: 8, Width: 320, Height: 240, Pipelines: 4,
		Renderer: core.NRenderers, Seed: 1, FrameCache: rcache.New(256 << 20)}
	cams := render.Walkthrough(spec.Frames, tree.Bounds())
	if _, err := core.Exec(spec, tree, cams, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Exec(spec, tree, cams, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenericPipelineSim(b *testing.B) {
	mkChain := func() *pipe.Chain {
		return &pipe.Chain{
			Stages: []pipe.Stage{
				{Name: "a", CostRef: func(pipe.Item) float64 { return 0.002 }},
				{Name: "b", CostRef: func(pipe.Item) float64 { return 0.008 }},
				{Name: "c", CostRef: func(pipe.Item) float64 { return 0.003 }},
			},
			Feed: func(pl, seq int) (pipe.Item, bool) { return pipe.Item{Bytes: 32 * 1024}, true },
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mkChain().Simulate(pipe.SimSpec{Pipelines: 4, Items: 100, ItemBytes: 32 * 1024}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVizSplitAssemble(b *testing.B) {
	img := frame.New(512, 512)
	rand.New(rand.NewSource(1)).Read(img.Pix)
	b.SetBytes(int64(img.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := viz.NewAssembler(nil)
		for _, p := range viz.Split(img, uint32(i), 32*1024, nil) {
			if err := a.Feed(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRCCECollectiveBcast(b *testing.B) {
	eng := des.NewEngine()
	chip := scc.New(eng, scc.DefaultConfig())
	comm := rcce.NewComm(chip, 0)
	cores := make([]scc.CoreID, 16)
	for i := range cores {
		cores[i] = scc.CoreID(i * 3)
	}
	g := rcce.NewGroup(comm, cores)
	n := b.N
	for rank := range cores {
		rank := rank
		eng.Spawn("m", func(p *des.Proc) {
			for i := 0; i < n; i++ {
				var v any
				if rank == 0 {
					v = i
				}
				g.Bcast(p, rank, 0, v, 8192)
			}
		})
	}
	b.ResetTimer()
	eng.Run()
}

func BenchmarkTraceRecording(b *testing.B) {
	s := benchSetup()
	wl := experiments.Workload(s)
	spec := core.Spec{Frames: s.Frames, Width: s.Width, Height: s.Height,
		Pipelines: 3, Renderer: core.HostRenderer}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(spec, wl, core.SimOptions{Trace: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Serve-layer benchmarks

// BenchmarkServeConcurrentJobs measures job throughput through the serve
// admission queue: N parallel submitters drive small render jobs against a
// bounded worker pool over HTTP, seeding the perf trajectory for the
// service layer (queueing overhead, streaming encode, scheduling).
func BenchmarkServeConcurrentJobs(b *testing.B) {
	cfg := scene.DefaultConfig()
	cfg.BlocksX, cfg.BlocksZ = 4, 4
	s := serve.New(serve.Config{
		Workers:    4,
		QueueDepth: 1024, // deep queue: measure throughput, not rejection
		Scene:      scene.City(cfg),
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	job, err := json.Marshal(serve.JobSpec{
		Mode: serve.ModeRender, Frames: 2, Width: 64, Height: 48, Pipelines: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetParallelism(4) // 4×GOMAXPROCS submitters against 4 workers
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(job))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("job status %d", resp.StatusCode)
			}
		}
	})
}

// benchFleet stands up a gateway over n in-process workers and returns
// the gateway's test server.
func benchFleet(b *testing.B, n int) *httptest.Server {
	b.Helper()
	cfg := scene.DefaultConfig()
	cfg.BlocksX, cfg.BlocksZ = 4, 4
	city := scene.City(cfg)
	urls := make([]string, n)
	for i := range urls {
		ws := httptest.NewServer(serve.New(serve.Config{
			Workers:    2,
			QueueDepth: 1024,
			Scene:      city,
		}))
		b.Cleanup(ws.Close)
		urls[i] = ws.URL
	}
	g, err := fleet.New(fleet.Config{Workers: urls, HealthInterval: 50 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	g.Start()
	b.Cleanup(g.Close)
	gs := httptest.NewServer(g)
	b.Cleanup(gs.Close)
	return gs
}

// BenchmarkGatewayRoutedJobs measures end-to-end render throughput through
// the fleet gateway — routing decision, relay re-framing, and the extra
// HTTP hop — against BenchmarkServeConcurrentJobs as the single-node
// baseline.
func BenchmarkGatewayRoutedJobs(b *testing.B) {
	gs := benchFleet(b, 2)
	job, err := json.Marshal(serve.JobSpec{
		Mode: serve.ModeRender, Frames: 2, Width: 64, Height: 48, Pipelines: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(gs.URL+"/jobs", "application/json", bytes.NewReader(job))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("job status %d", resp.StatusCode)
			}
		}
	})
}

// rtFunc adapts a function to http.RoundTripper for the netfaults bench.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// BenchmarkNetfaultsRoundTrip prices the chaos transport itself: per-rule
// hash consultation, sequence bookkeeping, and the body-wrapping fault
// readers over a canned 4KB response. This is pure overhead the gateway
// pays per forwarded request in `-chaos` mode, so it must stay cheap
// enough to leave chaos-run timings representative.
func BenchmarkNetfaultsRoundTrip(b *testing.B) {
	plan, err := netfaults.ParsePlan(
		"seed=5,lag=0.1:1ns,drop=0.1,reset=0.15,corrupt=0.1,truncate=0.1,loris=0.02:1ns")
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xab}, 4096)
	tr, err := netfaults.New(*plan, rtFunc(func(*http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: http.StatusOK,
			Body: io.NopCloser(bytes.NewReader(payload))}, nil
	}))
	if err != nil {
		b.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, "http://worker:8344/jobs", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := tr.RoundTrip(req)
		if err != nil {
			continue // injected drop/partition: still a measured decision
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkGatewayRegister measures the dynamic-membership hot path: a
// worker's heartbeat POST /register against a live gateway, which after
// the first call is always a lease renewal. Heartbeats arrive from every
// dynamic worker at its renew cadence, so this path must stay far off
// the job-relay critical path's cost scale.
func BenchmarkGatewayRegister(b *testing.B) {
	ws := httptest.NewServer(serve.New(serve.Config{Workers: 1, Scene: nil}))
	b.Cleanup(ws.Close)
	g, err := fleet.New(fleet.Config{HealthInterval: time.Hour, LeaseTTL: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	g.Start()
	b.Cleanup(g.Close)
	gs := httptest.NewServer(g)
	b.Cleanup(gs.Close)
	body, err := json.Marshal(serve.RegisterRequest{URL: ws.URL})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(gs.URL+"/register", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("register status %d", resp.StatusCode)
		}
	}
}

// BenchmarkGatewaySimulateJobs pushes tiny buffered simulate jobs through
// the gateway: the job body is small and the worker's compute brief, so
// the number is dominated by the gateway's own routing and forwarding
// overhead.
func BenchmarkGatewaySimulateJobs(b *testing.B) {
	gs := benchFleet(b, 2)
	job, err := json.Marshal(serve.JobSpec{
		Mode: serve.ModeSimulate, Frames: 2, Width: 64, Height: 48, Pipelines: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Post(gs.URL+"/jobs", "application/json", bytes.NewReader(job))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("job status %d", resp.StatusCode)
			}
		}
	})
}
