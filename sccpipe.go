// Package sccpipe is a reproduction of "Parallel Macro Pipelining on the
// Intel SCC Many-Core Computer" (Süß, Schoenrock, Meisner, Plessl;
// IPDPSW 2013) as a reusable Go library.
//
// It provides, end to end:
//
//   - a macro-pipeline framework (render → sepia → blur → scratch →
//     flicker → swap → transfer) with sort-first strip parallelism across
//     multiple pipelines;
//   - a discrete-event model of the Intel SCC (48 P54C cores on a 6×4-tile
//     mesh, four memory controllers, no local memory, per-island DVFS, a
//     calibrated power model) plus MCPC and HPC-cluster host models, on
//     which pipeline configurations are *simulated* to reproduce the
//     paper's evaluation;
//   - a real execution backend (goroutines + channels) that renders and
//     filters actual pixels, for applications and functional validation;
//   - experiment drivers regenerating every table and figure of the paper
//     (internal/experiments, surfaced here as RunFig8..RunFig17, RunTable1,
//     RunEnergy).
//
// Quick start (simulate the paper's best configuration):
//
//	wl := sccpipe.DefaultWorkload(400, 512, 512)
//	spec := sccpipe.DefaultSpec()
//	spec.Renderer = sccpipe.HostRenderer
//	spec.Pipelines = 5
//	res, err := sccpipe.Simulate(spec, wl, sccpipe.SimOptions{})
//	// res.Seconds ≈ the paper's ≈51 s walkthrough
//
// Or process real frames:
//
//	tree := sccpipe.BuildOctree(sccpipe.City(sccpipe.DefaultSceneConfig()))
//	cams := sccpipe.Walkthrough(40, tree.Bounds())
//	spec := sccpipe.ExecSpec{Frames: 40, Width: 320, Height: 240, Pipelines: 4}
//	sccpipe.Exec(spec, tree, cams, func(f int, img *sccpipe.Image) { ... })
//
// # Errors and cancellation
//
// No exported entry point panics on bad input or runtime failure — they
// return errors. A panic in user-supplied code (a pipe stage Fn, Feed,
// Collect, or an Exec sink) is recovered inside the runtime and surfaced
// as the call's error; a simulation that stalls with work still in flight
// returns an error naming each stuck stage and what it was waiting on
// instead of silently returning a truncated result. Every execution and
// simulation path reclaims its goroutines on completion, failure, and
// cancellation alike.
//
// Long real runs are cancellable: ExecContext and PipeChain.RunContext
// take a context.Context and abort promptly (returning ctx.Err()) when it
// is cancelled. Exec and PipeChain.Run are the background-context
// wrappers.
package sccpipe

import (
	"context"
	"fmt"
	"io"

	"sccpipe/internal/band"
	"sccpipe/internal/codec"
	"sccpipe/internal/core"
	"sccpipe/internal/experiments"
	"sccpipe/internal/faults"
	"sccpipe/internal/fleet"
	"sccpipe/internal/frame"
	"sccpipe/internal/host"
	"sccpipe/internal/netfaults"
	"sccpipe/internal/pipe"
	"sccpipe/internal/render"
	"sccpipe/internal/scc"
	"sccpipe/internal/scene"
	"sccpipe/internal/serve"
	"sccpipe/internal/trace"
)

// ---------------------------------------------------------------------------
// Pipeline framework (the paper's contribution)

// Core pipeline types.
type (
	// Spec describes one simulated walkthrough experiment.
	Spec = core.Spec
	// ExecSpec describes a real (pixel-producing) pipeline run.
	ExecSpec = core.ExecSpec
	// SimOptions overrides simulation defaults.
	SimOptions = core.SimOptions
	// SimResult reports a simulated walkthrough.
	SimResult = core.SimResult
	// ExecResult reports a real run.
	ExecResult = core.ExecResult
	// ExecObserver carries optional progress callbacks for a real run
	// (per-frame completion, per-stage busy time).
	ExecObserver = core.ExecObserver
	// SingleCoreResult reports the sequential one-core baseline.
	SingleCoreResult = core.SingleCoreResult
	// StageKind identifies a macro-pipeline stage.
	StageKind = core.StageKind
	// Arrangement selects the mesh layout of pipelines.
	Arrangement = core.Arrangement
	// RendererConfig selects the paper's three scenarios.
	RendererConfig = core.RendererConfig
	// Workload is a profiled walkthrough shared across simulations.
	Workload = core.Workload
	// CostModel holds the calibrated stage cost constants.
	CostModel = core.CostModel
	// Placement maps stages onto SCC cores.
	Placement = core.Placement
	// Trace is a per-stage activity timeline of a simulated run.
	Trace = trace.Trace
	// TraceSpan is one contiguous stage activity.
	TraceSpan = trace.Span
	// TracePhaseTotals aggregates a stage's trace time by phase.
	TracePhaseTotals = trace.PhaseTotals
	// Band is one strip's row range in a sort-first decomposition.
	Band = core.Band
	// StagePool is a reusable worker pool for intra-stage band
	// parallelism; plug one into ExecSpec.Bands (see NewStagePool).
	StagePool = band.Pool
)

// Stage kinds.
const (
	StageRender   = core.StageRender
	StageSepia    = core.StageSepia
	StageBlur     = core.StageBlur
	StageScratch  = core.StageScratch
	StageFlicker  = core.StageFlicker
	StageSwap     = core.StageSwap
	StageTransfer = core.StageTransfer
	StageConnect  = core.StageConnect
)

// Arrangements (§IV-A).
const (
	Unordered = core.Unordered
	Ordered   = core.Ordered
	Flipped   = core.Flipped
)

// Renderer configurations (§V).
const (
	OneRenderer  = core.OneRenderer
	NRenderers   = core.NRenderers
	HostRenderer = core.HostRenderer
)

// FilterOrder lists the five filter stages in pipeline order.
var FilterOrder = core.FilterOrder

// Arrangements lists all three arrangements for sweeps.
var AllArrangements = core.Arrangements

// DefaultSpec returns the paper's walkthrough configuration.
func DefaultSpec() Spec { return core.DefaultSpec() }

// MaxPipelines reports the SCC's pipeline capacity per configuration.
func MaxPipelines(r RendererConfig) int { return core.MaxPipelines(r) }

// Place computes the stage-to-core assignment for a spec.
func Place(s Spec) (Placement, error) { return core.Place(s) }

// DefaultCostModel returns the calibrated stage cost model.
func DefaultCostModel() CostModel { return core.DefaultCostModel() }

// Simulate runs a spec on the simulated SCC.
func Simulate(spec Spec, wl *Workload, opts SimOptions) (SimResult, error) {
	return core.Simulate(spec, wl, opts)
}

// SimulateCluster runs a spec's configuration on the Mogon cluster model.
func SimulateCluster(spec Spec, wl *Workload, c Cluster, opts SimOptions) (SimResult, error) {
	return core.SimulateCluster(spec, wl, c, opts)
}

// SimulateSingleCore runs stages sequentially on one SCC core (baseline).
func SimulateSingleCore(spec Spec, wl *Workload, stages []StageKind, opts SimOptions) (SingleCoreResult, error) {
	return core.SimulateSingleCore(spec, wl, stages, opts)
}

// SingleCoreStages is the full baseline stage sequence.
var SingleCoreStages = core.SingleCoreStages

// NewStagePool sizes a worker pool for intra-stage band parallelism from
// a worker-count knob: 0 returns the process-wide GOMAXPROCS-sized
// default pool, 1 a serial (caller-runs) pool, and n > 1 a dedicated
// n-worker pool. Assign the result to ExecSpec.Bands; blur, the fused
// per-pixel pass, and the renderer split their rows across it.
func NewStagePool(workers int) *StagePool { return core.BandPool(workers) }

// Exec runs the pipeline for real over actual pixels. Frame buffers are
// pooled: the img passed to sink is valid only during the callback and is
// recycled afterwards, so sinks that retain pixels must Clone them.
func Exec(spec ExecSpec, tree *Octree, cams []Camera, sink func(f int, img *Image)) (ExecResult, error) {
	return core.Exec(spec, tree, cams, sink)
}

// ExecContext is Exec with cancellation: when ctx is cancelled
// mid-walkthrough the stage goroutines stop promptly and the call returns
// ctx's error.
func ExecContext(ctx context.Context, spec ExecSpec, tree *Octree, cams []Camera, sink func(f int, img *Image)) (ExecResult, error) {
	return core.ExecContext(ctx, spec, tree, cams, sink)
}

// ExecReference computes the same result sequentially (testing oracle).
func ExecReference(spec ExecSpec, tree *Octree, cams []Camera, sink func(f int, img *Image)) error {
	return core.ExecReference(spec, tree, cams, sink)
}

// BuildWorkload profiles a walkthrough over a scene octree.
func BuildWorkload(tree *Octree, frames, w, h int) *Workload {
	return core.BuildWorkload(tree, frames, w, h)
}

// DefaultWorkload profiles the paper's walkthrough over the default city.
func DefaultWorkload(frames, w, h int) *Workload { return core.DefaultWorkload(frames, w, h) }

// ---------------------------------------------------------------------------
// Imaging, rendering and scene substrates

// Image and rendering types.
type (
	// Image is an RGBA frame buffer (4 bytes/pixel).
	Image = frame.Image
	// Strip is a horizontal band of a frame.
	Strip = frame.Strip
	// FramePool recycles frame buffers by size class; set ExecSpec.Pool to
	// isolate a run's buffers from the shared default pool.
	FramePool = frame.Pool
	// Camera describes a perspective view.
	Camera = render.Camera
	// Octree organizes scene triangles for culling.
	Octree = render.Octree
	// Triangle is a colored scene primitive.
	Triangle = render.Triangle
	// Vec3 is a 3-component vector.
	Vec3 = render.Vec3
	// SceneConfig controls the procedural city generator.
	SceneConfig = scene.Config
)

// NewImage returns a black, opaque frame buffer. Both dimensions must be
// at least one pixel.
func NewImage(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("sccpipe: invalid image size %dx%d", w, h)
	}
	return frame.New(w, h), nil
}

// SplitRows divides a frame into horizontal strips (sort-first). It is an
// error to ask for fewer than one strip or for more strips than rows.
func SplitRows(im *Image, n int) ([]*Strip, error) { return frame.SplitRows(im, n) }

// SplitRowsView divides a frame into zero-copy strips: each strip's image
// aliases the parent frame's rows instead of copying them, so in-place
// filtering of a strip edits the frame directly. Strips of different
// indexes cover disjoint rows and may be mutated concurrently. Use
// Strip.Detach for an independent copy, and see the frame.Pool ownership
// rules (README "Performance") before recycling view parents.
func SplitRowsView(im *Image, n int) ([]*Strip, error) { return frame.SplitRowsView(im, n) }

// NewFramePool returns an empty, independent frame pool.
func NewFramePool() *FramePool { return frame.NewPool() }

// Assemble recombines strips into a frame of the given size.
func Assemble(w, h int, strips []*Strip) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("sccpipe: invalid frame size %dx%d", w, h)
	}
	return frame.Assemble(w, h, strips), nil
}

// ReadPNG decodes a PNG stream into an Image, the inverse of
// Image.WritePNG — stream clients use it to turn server responses back
// into frame buffers. Frames above frame.MaxDecodePixels are rejected
// before any pixel allocation.
func ReadPNG(r io.Reader) (*Image, error) { return frame.ReadPNG(r) }

// BuildOctree constructs the culling structure over scene triangles.
func BuildOctree(tris []Triangle) *Octree { return render.BuildOctree(tris) }

// Walkthrough generates the camera flight used by the experiments.
func Walkthrough(frames int, b render.AABB) []Camera { return render.Walkthrough(frames, b) }

// DwellWalkthrough generates the inspection-style camera path: the orbit
// poses of Walkthrough, each held for render.DwellHold frames. Its
// temporal redundancy is what the delta stream encoding is for.
func DwellWalkthrough(frames int, b render.AABB) []Camera { return render.DwellWalkthrough(frames, b) }

// FrameDeltaEncode delta-codes a raw RGBA frame against the previously
// delivered one (all zeros before the first), picking the cheapest of a
// residual RLE+Huffman part, a residual PNG part, or a keyframe per
// frame. FrameDeltaDecode inverts it given the same previous frame.
// These are the payload codecs behind the `X-Frame-Encoding: delta`
// stream negotiation (see ServeConfig and the gateway relay).
func FrameDeltaEncode(prev, cur []byte, w, h int) ([]byte, error) {
	return codec.FrameDeltaEncode(prev, cur, w, h)
}

// FrameDeltaDecode reconstructs a raw RGBA frame from a delta payload.
func FrameDeltaDecode(prev, payload []byte, w, h int) ([]byte, error) {
	return codec.FrameDeltaDecode(prev, payload, w, h)
}

// City generates the procedural city scene.
func City(cfg SceneConfig) []Triangle { return scene.City(cfg) }

// DefaultSceneConfig returns the default city parameters.
func DefaultSceneConfig() SceneConfig { return scene.DefaultConfig() }

// ---------------------------------------------------------------------------
// Platform models

// Platform model types.
type (
	// ChipConfig holds the SCC chip model parameters.
	ChipConfig = scc.Config
	// FreqLevel is an SCC core frequency with its minimum voltage.
	FreqLevel = scc.FreqLevel
	// PowerSample is one point of a chip power trace.
	PowerSample = scc.PowerSample
	// MCPC models the management console PC.
	MCPC = host.MCPC
	// Cluster models a Mogon-style HPC node.
	Cluster = host.Cluster
	// Link models a chunked, bandwidth-limited transport.
	Link = host.Link
)

// SCC frequency levels used by the paper.
var (
	Freq400 = scc.Freq400
	Freq533 = scc.Freq533
	Freq800 = scc.Freq800
)

// DefaultChipConfig returns the calibrated SCC model parameters.
func DefaultChipConfig() ChipConfig { return scc.DefaultConfig() }

// DefaultMCPC returns the calibrated MCPC model.
func DefaultMCPC() MCPC { return host.DefaultMCPC() }

// DefaultCluster returns the calibrated Mogon model.
func DefaultCluster() Cluster { return host.DefaultCluster() }

// ---------------------------------------------------------------------------
// Generic macro pipelines (beyond image processing)

// Generic pipeline types: define arbitrary stage chains with real worker
// functions, run them with goroutines, or evaluate them on the SCC model
// — the paper's "other applications" claim as an API.
type (
	// PipeChain is a linear macro pipeline of arbitrary stages.
	PipeChain = pipe.Chain
	// PipeStage is one stage of a generic chain.
	PipeStage = pipe.Stage
	// PipeItem is one unit of work in a generic chain.
	PipeItem = pipe.Item
	// PipeSimSpec configures a simulated generic-chain run.
	PipeSimSpec = pipe.SimSpec
	// PipeSimResult reports a simulated generic-chain run.
	PipeSimResult = pipe.SimResult
	// PipeRunResult reports a real generic-chain run.
	PipeRunResult = pipe.RunResult
)

// ---------------------------------------------------------------------------
// Fault injection and supervised recovery

// Fault-plane types: a seeded declarative fault plan compiled into a
// deterministic injector, the recovery policy supervising real runs, and
// the degraded-mode report. Set ExecSpec.Faults/Recovery (or the PipeChain
// fields of the same names) to opt in; nil everywhere selects the original
// fast paths byte for byte.
type (
	// FaultPlan is a seeded set of fault rules (see faults.Plan).
	FaultPlan = faults.Plan
	// FaultRule describes one fault to inject.
	FaultRule = faults.Rule
	// FaultKind classifies an injected fault.
	FaultKind = faults.Kind
	// FaultInjector is consulted by the execution backends at their fault
	// points; implement it directly for custom chaos.
	FaultInjector = faults.Injector
	// FaultOutcome is what an injector wants to happen at one fault point.
	FaultOutcome = faults.Outcome
	// FaultEvent is one recovery occurrence (retry, stall, death,
	// redispatch), delivered to RecoveryPolicy.OnEvent.
	FaultEvent = faults.Event
	// RecoveryPolicy tunes supervision: retry budget, backoff, stall
	// watchdog.
	RecoveryPolicy = faults.RecoveryPolicy
	// Degraded reports how a run survived pipeline deaths.
	Degraded = faults.Degraded
	// ServerBreakerConfig tunes the render service's circuit breaker.
	ServerBreakerConfig = serve.BreakerConfig
)

// Fault kinds.
const (
	FaultTransient    = faults.KindTransient
	FaultDelay        = faults.KindDelay
	FaultStall        = faults.KindStall
	FaultDeath        = faults.KindDeath
	FaultTransfer     = faults.KindTransfer
	FaultTransferSlow = faults.KindTransferSlow

	// FaultAny is the wildcard for FaultRule.Pipeline and FaultRule.Seq.
	FaultAny = faults.Any
)

// NewFaultRule returns a wildcard rule of the given kind gated at
// probability p.
func NewFaultRule(kind FaultKind, p float64) FaultRule { return faults.NewRule(kind, p) }

// NewFaultInjector compiles a plan into a deterministic injector: every
// decision is a pure hash of (seed, rule, pipeline, stage, seq), so a
// seeded chaos run makes identical choices regardless of scheduling.
func NewFaultInjector(p FaultPlan) (FaultInjector, error) { return faults.NewInjector(p) }

// ParseFaultPlan parses the compact chaos spec used by sccserved -chaos,
// e.g. "seed=7,err=0.02,stall=0.001,death=0.0005,delay=0.01:5ms".
func ParseFaultPlan(s string) (*FaultPlan, error) { return faults.ParsePlan(s) }

// ---------------------------------------------------------------------------
// Render service

// Service types: the streaming HTTP front end over the pipeline runtime
// (admission control, bounded worker pool, per-job deadlines, graceful
// drain, Prometheus metrics). cmd/sccserved is the ready-made binary.
type (
	// RenderServer is the HTTP render service; it implements http.Handler.
	RenderServer = serve.Server
	// ServerConfig tunes a render server (workers, queue depth, deadlines,
	// drain timeout, job limits, scene).
	ServerConfig = serve.Config
	// ServerLimits bounds what a single job may request.
	ServerLimits = serve.Limits
	// JobSpec is the JSON wire format of one job submission.
	JobSpec = serve.JobSpec
)

// Camera paths a JobSpec can request: the default continuous orbit, or
// the dwell path that holds each vantage (where delta streaming pays).
const (
	CameraOrbit = serve.CameraOrbit
	CameraDwell = serve.CameraDwell
)

// Frame-stream encoding negotiation: send FrameEncodingHeader with
// FrameEncodingDelta on a job request to switch the response's frame
// parts from PNG payloads to temporal deltas (DeltaContentType parts;
// decode with FrameDeltaDecode chained from an all-zeros frame).
const (
	FrameEncodingHeader = serve.FrameEncodingHeader
	FrameEncodingRaw    = serve.FrameEncodingRaw
	FrameEncodingDelta  = serve.FrameEncodingDelta
	DeltaContentType    = serve.DeltaContentType
)

// NewServer builds a render server; the zero config serves with defaults
// over the paper's procedural city.
func NewServer(cfg ServerConfig) *RenderServer { return serve.New(cfg) }

// Serve runs a render server on addr until ctx is cancelled, then drains
// gracefully: admission stops, in-flight jobs stream to completion, and
// the listener closes. It returns nil after a clean drain.
func Serve(ctx context.Context, addr string, cfg ServerConfig) error {
	return serve.New(cfg).ListenAndServe(ctx, addr, nil)
}

// ---------------------------------------------------------------------------
// Fleet gateway

// Fleet types: the distributed front end that shards jobs across render
// servers with health checks, least-loaded + rendezvous routing, mid-job
// failover, and fleet-wide metrics aggregation. cmd/sccgated is the
// ready-made binary.
type (
	// Gateway is the fleet gateway; it implements http.Handler with the
	// /jobs, /healthz, /nodes and /metrics endpoints.
	Gateway = fleet.Gateway
	// GatewayConfig tunes a gateway (worker URLs, health cadence,
	// deregistration threshold, failover policy, drain timeout).
	GatewayConfig = fleet.Config
	// NodeStatus is one row of the gateway's /nodes worker table.
	NodeStatus = fleet.NodeStatus
	// WorkerLoad is the machine-readable load report a render server
	// publishes on /healthz and the gateway routes by.
	WorkerLoad = serve.LoadReport
	// NetFaultPlan is a seeded deterministic network fault plan injected
	// into gateway→worker traffic (GatewayConfig.NetFaults, sccgated
	// -chaos): latency, drops, resets, slow-loris trickle, corrupt or
	// truncated frames, and per-worker partitions.
	NetFaultPlan = netfaults.Plan
	// NetFaultRule is one rule of a NetFaultPlan.
	NetFaultRule = netfaults.Rule
	// RegistrarConfig tunes RunRegistrar, the worker-side loop that joins
	// a gateway fleet dynamically and heartbeats its lease.
	RegistrarConfig = serve.RegistrarConfig
)

// ParseNetFaultPlan parses the compact network chaos spec used by
// sccgated -chaos, e.g.
// "seed=7,lag=0.2:10ms,drop=0.05,loris=0.01:250ms,partition=node2:8344@40".
func ParseNetFaultPlan(s string) (*NetFaultPlan, error) { return netfaults.ParsePlan(s) }

// RunRegistrar registers a worker with a fleet gateway and heartbeats
// until ctx ends, keeping its lease alive (sccserved -register).
func RunRegistrar(ctx context.Context, cfg RegistrarConfig) error {
	return serve.RunRegistrar(ctx, cfg)
}

// NewGateway builds a fleet gateway over the given worker base URLs.
// Call Start (or ServeGateway / Gateway.ListenAndServe, which do it for
// you) to begin health checking.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return fleet.New(cfg) }

// ServeGateway runs a fleet gateway on addr until ctx is cancelled, then
// drains gracefully: admission stops, in-flight relays stream to
// completion, and the listener closes. It returns nil after a clean
// drain.
func ServeGateway(ctx context.Context, addr string, cfg GatewayConfig) error {
	g, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	return g.ListenAndServe(ctx, addr, nil)
}

// ---------------------------------------------------------------------------
// Paper experiments

// Experiment types.
type (
	// ExpSetup fixes the walkthrough parameters of the experiment drivers.
	ExpSetup = experiments.Setup
	// Fig8Result is the single-core stage profile.
	Fig8Result = experiments.Fig8Result
	// SweepResult is a pipeline-count sweep (Figs. 9–11).
	SweepResult = experiments.SweepResult
	// Fig12Result is the image-size sweep.
	Fig12Result = experiments.Fig12Result
	// ClusterResult is the Fig. 13 cluster comparison.
	ClusterResult = experiments.ClusterResult
	// Fig14Result is the power-vs-cores experiment.
	Fig14Result = experiments.Fig14Result
	// Fig15Result is the stage idle-time experiment.
	Fig15Result = experiments.Fig15Result
	// Fig16Result is the per-stage DVFS experiment (Figs. 16/17).
	Fig16Result = experiments.Fig16Result
	// Table1Result is the full results grid.
	Table1Result = experiments.Table1Result
	// EnergyResult is the §VI-B energy comparison.
	EnergyResult = experiments.EnergyResult
	// AblationResult explores chip variants (local memory, MC ports).
	AblationResult = experiments.AblationResult
	// AdaptiveResult compares even vs cost-balanced strips.
	AdaptiveResult = experiments.AdaptiveResult
	// ParetoResult maps the DVFS time/energy plan space.
	ParetoResult = experiments.ParetoResult
	// CacheStudyResult measures filter access patterns on the cache model.
	CacheStudyResult = experiments.CacheStudyResult
	// FusionResult compares the fused and unfused stage layouts on the
	// SCC model: hand-off traffic, occupied cores, walkthrough seconds.
	FusionResult = experiments.FusionResult
)

// DefaultExpSetup returns the paper's 400-frame experiment setup.
func DefaultExpSetup() ExpSetup { return experiments.DefaultSetup() }

// Experiment drivers, one per table/figure of the paper.
var (
	RunFig8   = experiments.RunFig8
	RunFig9   = experiments.RunFig9
	RunFig10  = experiments.RunFig10
	RunFig11  = experiments.RunFig11
	RunFig12  = experiments.RunFig12
	RunFig13  = experiments.RunFig13
	RunFig14  = experiments.RunFig14
	RunFig15  = experiments.RunFig15
	RunFig16  = experiments.RunFig16
	RunFig17  = experiments.RunFig17
	RunTable1 = experiments.RunTable1
	RunEnergy = experiments.RunEnergy

	// Extensions beyond the paper's own evaluation.
	RunAblation   = experiments.RunAblation
	RunAdaptive   = experiments.RunAdaptive
	RunDVFSPareto = experiments.RunDVFSPareto
	RunCacheStudy = experiments.RunCacheStudy
	RunFusion     = experiments.RunFusion
)
