package sccpipe_test

// Integration tests exercising the library exactly as a downstream user
// would: through the public sccpipe package only.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sccpipe"
)

func TestPublicSimulateEndToEnd(t *testing.T) {
	wl := sccpipe.DefaultWorkload(30, 256, 256)
	spec := sccpipe.Spec{
		Frames: 30, Width: 256, Height: 256,
		Pipelines: 3, Renderer: sccpipe.HostRenderer, Arrangement: sccpipe.Ordered,
	}
	res, err := sccpipe.Simulate(spec, wl, sccpipe.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.SCCEnergyJ <= 0 || len(res.Power) == 0 {
		t.Fatalf("incomplete result: %+v", res)
	}
}

func TestPublicExecEndToEnd(t *testing.T) {
	cfg := sccpipe.DefaultSceneConfig()
	cfg.BlocksX, cfg.BlocksZ = 6, 6
	tree := sccpipe.BuildOctree(sccpipe.City(cfg))
	cams := sccpipe.Walkthrough(5, tree.Bounds())
	spec := sccpipe.ExecSpec{Frames: 5, Width: 96, Height: 64, Pipelines: 2, Seed: 7}
	frames := 0
	res, err := sccpipe.Exec(spec, tree, cams, func(f int, img *sccpipe.Image) {
		if img.W != 96 || img.H != 64 {
			t.Errorf("frame %d has size %dx%d", f, img.W, img.H)
		}
		frames++
	})
	if err != nil {
		t.Fatal(err)
	}
	if frames != 5 || res.Frames != 5 {
		t.Fatalf("frames = %d, result %+v", frames, res)
	}
}

func TestPublicBaselineAndSpeedup(t *testing.T) {
	wl := sccpipe.DefaultWorkload(30, 256, 256)
	spec := sccpipe.Spec{Frames: 30, Width: 256, Height: 256, Pipelines: 1}
	single, err := sccpipe.SimulateSingleCore(spec, wl, sccpipe.SingleCoreStages, sccpipe.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec.Pipelines = 5
	spec.Renderer = sccpipe.NRenderers
	multi, err := sccpipe.Simulate(spec, wl, sccpipe.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Seconds >= single.Seconds {
		t.Fatalf("no speedup: %g vs %g", multi.Seconds, single.Seconds)
	}
}

func TestPublicClusterAndHosts(t *testing.T) {
	wl := sccpipe.DefaultWorkload(20, 256, 256)
	spec := sccpipe.Spec{Frames: 20, Width: 256, Height: 256, Pipelines: 4, Renderer: sccpipe.OneRenderer}
	res, err := sccpipe.SimulateCluster(spec, wl, sccpipe.DefaultCluster(), sccpipe.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 {
		t.Fatal("cluster run produced no time")
	}
	if sccpipe.DefaultMCPC().RenderPerFrame <= 0 {
		t.Fatal("MCPC model incomplete")
	}
}

func TestPublicPlacementAndDVFS(t *testing.T) {
	spec := sccpipe.DefaultSpec()
	spec.Renderer = sccpipe.HostRenderer
	spec.IsolateBlur = true
	spec.BlurFreq = sccpipe.Freq800
	pl, err := sccpipe.Place(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.BlurCores()) != 1 {
		t.Fatalf("blur cores = %d", len(pl.BlurCores()))
	}
	if sccpipe.MaxPipelines(sccpipe.NRenderers) != 7 {
		t.Fatal("NRenderers capacity should be 7")
	}
}

func TestPublicExperimentDrivers(t *testing.T) {
	s := sccpipe.DefaultExpSetup()
	s.Frames = 40
	fig8, err := sccpipe.RunFig8(s)
	if err != nil {
		t.Fatal(err)
	}
	if fig8.Total <= 0 || len(fig8.String()) == 0 {
		t.Fatal("fig8 incomplete")
	}
	energy, err := sccpipe.RunEnergy(s)
	if err != nil {
		t.Fatal(err)
	}
	if energy.HybridJ >= energy.AllSCCJ {
		t.Fatal("hybrid should use less energy")
	}
}

func TestPublicImageHelpers(t *testing.T) {
	img, err := sccpipe.NewImage(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	strips, err := sccpipe.SplitRows(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(strips) != 3 {
		t.Fatalf("strips = %d", len(strips))
	}
	back, err := sccpipe.Assemble(10, 8, strips)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(img) {
		t.Fatal("round trip failed")
	}
}

func TestPublicImageHelpersRejectBadInput(t *testing.T) {
	if _, err := sccpipe.NewImage(0, 8); err == nil {
		t.Fatal("NewImage(0, 8) accepted")
	}
	if _, err := sccpipe.Assemble(-1, 8, nil); err == nil {
		t.Fatal("Assemble(-1, 8) accepted")
	}
	img, err := sccpipe.NewImage(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sccpipe.SplitRows(img, 9); err == nil {
		t.Fatal("SplitRows with more strips than rows accepted")
	}
}

func TestPublicCostModelExposed(t *testing.T) {
	m := sccpipe.DefaultCostModel()
	if m.FilterCompute[sccpipe.StageBlur] <= m.FilterCompute[sccpipe.StageSepia] {
		t.Fatal("blur should cost more than sepia")
	}
	cfg := sccpipe.DefaultChipConfig()
	if cfg.MemBandwidth <= 0 || cfg.PowerIdle != 22 {
		t.Fatalf("chip config: %+v", cfg)
	}
}

func TestPublicRenderServer(t *testing.T) {
	// The serve surface as a downstream user mounts it: NewServer is an
	// http.Handler; a render job streams frames and an observer-driven
	// exec run feeds the metrics endpoint.
	s := sccpipe.NewServer(sccpipe.ServerConfig{
		Workers:    1,
		Limits:     sccpipe.ServerLimits{MaxFrames: 16},
		QueueDepth: -1,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, _ := json.Marshal(sccpipe.JobSpec{
		Mode: "simulate", Frames: 4, Width: 64, Height: 64, Pipelines: 2,
	})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate job status %d", resp.StatusCode)
	}
	var sim struct {
		Seconds float64 `json:"seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sim); err != nil || sim.Seconds <= 0 {
		t.Fatalf("bad simulate reply (seconds=%v, err=%v)", sim.Seconds, err)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mbody), "sccserve_jobs_completed_total 1") {
		t.Fatalf("metrics do not reflect the completed job:\n%s", mbody)
	}
}

func TestPublicExecObserver(t *testing.T) {
	cfg := sccpipe.DefaultSceneConfig()
	cfg.BlocksX, cfg.BlocksZ = 4, 4
	tree := sccpipe.BuildOctree(sccpipe.City(cfg))
	cams := sccpipe.Walkthrough(3, tree.Bounds())
	var mu sync.Mutex
	busy := map[sccpipe.StageKind]time.Duration{}
	var framesSeen []int
	spec := sccpipe.ExecSpec{
		Frames: 3, Width: 64, Height: 48, Pipelines: 2, Seed: 1,
		Observer: sccpipe.ExecObserver{
			OnFrame: func(f int) {
				mu.Lock()
				framesSeen = append(framesSeen, f)
				mu.Unlock()
			},
			OnStageBusy: func(kind sccpipe.StageKind, _ int, d time.Duration) {
				mu.Lock()
				busy[kind] += d
				mu.Unlock()
			},
		},
	}
	if _, err := sccpipe.Exec(spec, tree, cams, nil); err != nil {
		t.Fatal(err)
	}
	if len(framesSeen) != 3 || framesSeen[0] != 0 || framesSeen[2] != 2 {
		t.Fatalf("OnFrame saw %v, want [0 1 2]", framesSeen)
	}
	for _, kind := range []sccpipe.StageKind{sccpipe.StageRender, sccpipe.StageSepia, sccpipe.StageBlur} {
		if busy[kind] <= 0 {
			t.Errorf("no busy time recorded for %v", kind)
		}
	}
}

func TestPublicChaosRecovery(t *testing.T) {
	// The fault plane through the public surface: parse a chaos spec,
	// compile it, run a real walkthrough under supervision, and require
	// every frame delivered exactly once with a degraded report naming the
	// dead pipeline.
	plan, err := sccpipe.ParseFaultPlan("seed=9,death=1@1,err=0.05")
	if err != nil {
		t.Fatal(err)
	}
	inj, err := sccpipe.NewFaultInjector(*plan)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sccpipe.DefaultSceneConfig()
	cfg.BlocksX, cfg.BlocksZ = 4, 4
	tree := sccpipe.BuildOctree(sccpipe.City(cfg))
	cams := sccpipe.Walkthrough(4, tree.Bounds())
	spec := sccpipe.ExecSpec{
		Frames: 4, Width: 64, Height: 48, Pipelines: 2, Seed: 3,
		Faults: inj,
		Recovery: &sccpipe.RecoveryPolicy{
			MaxRetries: 3,
			Backoff:    50 * time.Microsecond,
			MaxBackoff: time.Millisecond,
		},
	}
	var mu sync.Mutex
	seen := map[int]int{}
	res, err := sccpipe.Exec(spec, tree, cams, func(f int, _ *sccpipe.Image) {
		mu.Lock()
		seen[f]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 4; f++ {
		if seen[f] != 1 {
			t.Fatalf("frame %d delivered %d times, want exactly once (%v)", f, seen[f], seen)
		}
	}
	if !res.Degraded.IsDegraded() {
		t.Fatal("run survived a pipeline death but reports clean")
	}
	if got := res.Degraded.DeadPipelines; len(got) != 1 || got[0] != 1 {
		t.Fatalf("dead pipelines = %v, want [1]", got)
	}
}
