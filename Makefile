GO ?= go

# The hot-path benchmarks snapshotted into BENCH_pipeline.json: kernel
# pairs (optimized vs reference), the strip split/assemble round trip, the
# renderer, the end-to-end pipeline + serve runs (cold and cache-hit), the
# stream codecs (Huffman round trip, temporal delta), and the fleet
# control paths (registration heartbeats, chaos-transport overhead).
BENCH ?= ^(BenchmarkFilter|BenchmarkFrameSplitAssemble|BenchmarkRenderFrame|BenchmarkRenderStrip|BenchmarkExecPipelineReal|BenchmarkExecPipelinePlan|BenchmarkPlanCompute|BenchmarkServeConcurrentJobs|BenchmarkGateway|BenchmarkNetfaults|BenchmarkCodecHuffmanRoundTrip|BenchmarkDeltaResidual)

.PHONY: build test vet race test-framedebug bench bench-all bench-compare serve-smoke plan-smoke raster-smoke fleet-smoke fleet-chaos cache-smoke fuzz chaos-soak check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race run (and through it `make check`) soaks the fused,
# band-parallel chaos layout: CHAOS_SOAK_FUSE=1 makes TestChaosSoak run
# with fusion on and parallel bands under the race detector.
race:
	CHAOS_SOAK_FUSE=1 $(GO) test -race ./...

# The frame pool's ownership checks (double put, use after put) only exist
# under the framedebug build tag; exercise them explicitly.
test-framedebug:
	$(GO) test -tags framedebug ./internal/frame

# Run the hot-path benchmarks and snapshot them to BENCH_pipeline.json
# (committed): ns/op, B/op and allocs/op for the pipeline loop and every
# kernel next to its paper-literal reference. Not part of `check` — bench
# runs are minutes long and machine-dependent.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem . > bench.tmp.txt
	$(GO) run ./cmd/benchjson -o BENCH_pipeline.json < bench.tmp.txt
	@rm -f bench.tmp.txt

bench-all:
	$(GO) test -run '^$$' -bench=. -benchmem .

# Re-run the snapshot benchmarks and gate against the committed baseline:
# any benchmark present in both runs that is more than 20% slower (ns/op)
# fails the target. The fresh run is written to a scratch file so the
# committed BENCH_pipeline.json is never clobbered by a gating run.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem . > bench.tmp.txt
	$(GO) run ./cmd/benchjson -o bench.compare.json -compare BENCH_pipeline.json < bench.tmp.txt
	@rm -f bench.tmp.txt bench.compare.json

# End-to-end smoke of the render service: builds sccserved, starts it on a
# random port, submits simulate and render jobs, verifies queue-full 429s,
# scrapes /healthz and /metrics, and SIGTERMs to check a clean drain. The
# driver lives behind the servesmoke build tag in cmd/sccserved.
serve-smoke:
	$(GO) test -tags servesmoke -run TestServeSmoke -count=1 ./cmd/sccserved

# Planner ablation smoke: a shortened run of the profile-driven plan
# experiment — the computed mapping must price, simulate, and beat the
# static one on the synthetic imbalance (asserted by the experiment's own
# test; this target exercises the CLI path end to end).
plan-smoke:
	$(GO) run ./cmd/paperrepro -exp plan -frames 64

# Rasterizer ablation smoke: real walkthrough renders on the serial,
# replay-banded, and tiled-binned paths — every frame is byte-compared
# against the serial oracle inside the experiment, so a raster divergence
# fails the run, and the printed table records the measured vs DES-predicted
# speedup and the tiled path's work counters.
raster-smoke:
	$(GO) run ./cmd/paperrepro -exp raster -frames 16

# End-to-end smoke of the fleet gateway: builds sccgated and sccserved,
# starts a gateway over two real worker processes, submits a long render
# through the gateway, SIGKILLs the worker serving it mid-stream, and
# verifies the relayed stream completes with frame payloads byte-identical
# to a single-node run — with the death and retry visible in the sccgate
# metrics. The driver lives behind the fleetsmoke build tag in
# cmd/sccgated.
fleet-smoke:
	$(GO) test -tags fleetsmoke -run TestFleetSmoke -count=1 ./cmd/sccgated

# Fleet chaos gate: real gateway + worker processes under a seeded
# network-fault plan (-chaos) covering lag, drops, mid-stream resets,
# slow-loris trickle, corrupt/truncated frames, and an epoch-gated
# partition. Asserts frame payloads byte-identical to a clean single-node
# run, exactly-once delivery via the relay counters, lease-expiry
# eviction of a killed dynamic worker, and a runtime-registered worker
# absorbing the partitioned worker's load — all deterministic for the
# fixed seed. The driver lives behind the fleetchaos build tag in
# cmd/sccgated.
fleet-chaos:
	$(GO) test -tags fleetchaos -run TestFleetChaos -count=1 ./cmd/sccgated

# Render-cache + delta-stream smoke against the built binaries: a gateway
# over two real workers, the same dwell-walkthrough spec submitted twice
# (byte-identical frames, sccserve_cache_hits_total > 0 on the affine
# worker), then the spec streamed delta-encoded — decoded pixels must
# match the PNG run exactly while spending strictly fewer payload bytes.
# The driver lives behind the cachesmoke build tag in cmd/sccgated.
cache-smoke:
	$(GO) test -tags cachesmoke -run TestCacheSmoke -count=1 -v ./cmd/sccgated

# Chaos soak: a seeded fault-injection barrage against the render service
# under the race detector — every job must survive injected transients,
# flaky transfers, and a pipeline death via re-partitioning. The barrage
# length scales with CHAOS_SOAK_JOBS; CHAOS_SOAK_FUSE=1 soaks the fused,
# band-parallel stage layout (0 soaks the unfused five-stage chain). The
# short deterministic version (default job count) already rides along in
# `make check` via `race`, fusion enabled there too.
CHAOS_SOAK_JOBS ?= 60
CHAOS_SOAK_FUSE ?= 1
chaos-soak:
	CHAOS_SOAK_JOBS=$(CHAOS_SOAK_JOBS) CHAOS_SOAK_FUSE=$(CHAOS_SOAK_FUSE) \
		$(GO) test -race -count=1 -v \
		-run 'Chaos|Breaker|HardStop|Supervised|Injected' \
		./internal/serve ./internal/pipe ./internal/core

# Brief fuzz of every decode-path target (codec streams, PNG parsing,
# strip assembly). FUZZTIME bounds each target; raise it for deep runs.
FUZZTIME ?= 10s
fuzz:
	@for t in FuzzHuffmanDecode FuzzHuffmanRoundtrip FuzzRLEDecode FuzzDeltaRoundtrip FuzzDeltaFrameDecode; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/codec || exit 1; done
	@for t in FuzzReadPNG FuzzPNGRoundtrip FuzzSplitAssemble FuzzAssembleMalformed; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/frame || exit 1; done
	@$(GO) test -run '^$$' -fuzz '^FuzzParsePlan$$' -fuzztime $(FUZZTIME) ./internal/netfaults || exit 1
	@for t in FuzzParseRegister FuzzLoadReport; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/fleet || exit 1; done

# The pre-merge gate: static checks plus the full suite under the race
# detector (the pipeline backends are heavily concurrent — this includes
# the short chaos soak and the fuzz seed corpora as regression tests),
# then the service smoke sequence against the real binary.
check: vet race test-framedebug serve-smoke fleet-smoke fleet-chaos cache-smoke plan-smoke raster-smoke
