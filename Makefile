GO ?= go

.PHONY: build test vet race bench serve-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# End-to-end smoke of the render service: builds sccserved, starts it on a
# random port, submits simulate and render jobs, verifies queue-full 429s,
# scrapes /healthz and /metrics, and SIGTERMs to check a clean drain. The
# driver lives behind the servesmoke build tag in cmd/sccserved.
serve-smoke:
	$(GO) test -tags servesmoke -run TestServeSmoke -count=1 ./cmd/sccserved

# The pre-merge gate: static checks plus the full suite under the race
# detector (the pipeline backends are heavily concurrent), then the
# service smoke sequence against the real binary.
check: vet race serve-smoke
