GO ?= go

# The hot-path benchmarks snapshotted into BENCH_pipeline.json: kernel
# pairs (optimized vs reference), the strip split/assemble round trip, the
# renderer, and the end-to-end pipeline + serve runs.
BENCH ?= ^(BenchmarkFilter|BenchmarkFrameSplitAssemble|BenchmarkRenderFrame|BenchmarkExecPipelineReal|BenchmarkServeConcurrentJobs)

.PHONY: build test vet race test-framedebug bench bench-all serve-smoke fuzz chaos-soak check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The frame pool's ownership checks (double put, use after put) only exist
# under the framedebug build tag; exercise them explicitly.
test-framedebug:
	$(GO) test -tags framedebug ./internal/frame

# Run the hot-path benchmarks and snapshot them to BENCH_pipeline.json
# (committed): ns/op, B/op and allocs/op for the pipeline loop and every
# kernel next to its paper-literal reference. Not part of `check` — bench
# runs are minutes long and machine-dependent.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem . > bench.tmp.txt
	$(GO) run ./cmd/benchjson -o BENCH_pipeline.json < bench.tmp.txt
	@rm -f bench.tmp.txt

bench-all:
	$(GO) test -run '^$$' -bench=. -benchmem .

# End-to-end smoke of the render service: builds sccserved, starts it on a
# random port, submits simulate and render jobs, verifies queue-full 429s,
# scrapes /healthz and /metrics, and SIGTERMs to check a clean drain. The
# driver lives behind the servesmoke build tag in cmd/sccserved.
serve-smoke:
	$(GO) test -tags servesmoke -run TestServeSmoke -count=1 ./cmd/sccserved

# Chaos soak: a seeded fault-injection barrage against the render service
# under the race detector — every job must survive injected transients,
# flaky transfers, and a pipeline death via re-partitioning. The barrage
# length scales with CHAOS_SOAK_JOBS; the short deterministic version
# (default job count) already rides along in `make check` via `race`.
CHAOS_SOAK_JOBS ?= 60
chaos-soak:
	CHAOS_SOAK_JOBS=$(CHAOS_SOAK_JOBS) $(GO) test -race -count=1 -v \
		-run 'Chaos|Breaker|HardStop|Supervised|Injected' \
		./internal/serve ./internal/pipe ./internal/core

# Brief fuzz of every decode-path target (codec streams, PNG parsing,
# strip assembly). FUZZTIME bounds each target; raise it for deep runs.
FUZZTIME ?= 10s
fuzz:
	@for t in FuzzHuffmanDecode FuzzHuffmanRoundtrip FuzzRLEDecode FuzzDeltaRoundtrip; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/codec || exit 1; done
	@for t in FuzzReadPNG FuzzPNGRoundtrip FuzzSplitAssemble FuzzAssembleMalformed; do \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/frame || exit 1; done

# The pre-merge gate: static checks plus the full suite under the race
# detector (the pipeline backends are heavily concurrent — this includes
# the short chaos soak and the fuzz seed corpora as regression tests),
# then the service smoke sequence against the real binary.
check: vet race test-framedebug serve-smoke
