GO ?= go

.PHONY: build test vet race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# The pre-merge gate: static checks plus the full suite under the race
# detector (the pipeline backends are heavily concurrent).
check: vet race
