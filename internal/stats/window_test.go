package stats

import (
	"sync"
	"testing"
)

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(3)
	for _, v := range []float64{1, 2, 3} {
		w.Add(v)
	}
	if got := w.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	// Two more evict 1 and 2; the window now holds {3, 4, 5}.
	w.Add(4)
	w.Add(5)
	if got := w.Len(); got != 3 {
		t.Fatalf("Len after overflow = %d, want 3", got)
	}
	if got := w.Quantile(0, 1, -1); got != 3 {
		t.Fatalf("min of window = %g, want 3 (oldest samples not evicted)", got)
	}
	if got := w.Quantile(1, 1, -1); got != 5 {
		t.Fatalf("max of window = %g, want 5", got)
	}
}

func TestWindowQuantileFallback(t *testing.T) {
	w := NewWindow(8)
	if got := w.Quantile(0.5, 1, 42); got != 42 {
		t.Fatalf("empty window quantile = %g, want fallback 42", got)
	}
	w.Add(7)
	if got := w.Quantile(0.5, 4, 42); got != 42 {
		t.Fatalf("underfilled window quantile = %g, want fallback 42", got)
	}
	if got := w.Quantile(0.5, 1, 42); got != 7 {
		t.Fatalf("quantile = %g, want 7", got)
	}
}

func TestWindowTinyCapacity(t *testing.T) {
	w := NewWindow(0) // clamped to 1
	w.Add(1)
	w.Add(2)
	if got := w.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	if got := w.Quantile(0.5, 1, -1); got != 2 {
		t.Fatalf("quantile = %g, want the latest sample 2", got)
	}
}

func TestWindowConcurrent(t *testing.T) {
	w := NewWindow(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				w.Add(float64(base*100 + j))
				_ = w.Quantile(0.9, 8, 0)
			}
		}(i)
	}
	wg.Wait()
	if got := w.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
}
