package stats

import (
	"fmt"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("Get(missing) = %v, want 0", got)
	}
	c.Inc("jobs")
	c.Add("jobs", 2)
	c.Set("depth", 7)
	c.Set("depth", 3)
	if got := c.Get("jobs"); got != 3 {
		t.Fatalf("jobs = %v, want 3", got)
	}
	if got := c.Get("depth"); got != 3 {
		t.Fatalf("depth = %v, want 3", got)
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap["jobs"] != 3 || snap["depth"] != 3 {
		t.Fatalf("bad snapshot %v", snap)
	}
	// Snapshot is a copy, not a view.
	snap["jobs"] = 99
	if got := c.Get("jobs"); got != 3 {
		t.Fatalf("snapshot aliases the live map: jobs = %v", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "depth" || names[1] != "jobs" {
		t.Fatalf("Names() = %v, want sorted [depth jobs]", names)
	}
}

// TestCountersConcurrent hammers one Counters from many goroutines; run
// under -race this is the satellite's "metrics don't race with workers"
// guarantee.
func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc("shared")
				c.Add(fmt.Sprintf("own%d", w), 2)
				c.Set("gauge", float64(i))
				_ = c.Get("shared")
				if i%100 == 0 {
					_ = c.Snapshot()
					_ = c.Names()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Get("shared"); got != workers*perWorker {
		t.Fatalf("shared = %v, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := c.Get(fmt.Sprintf("own%d", w)); got != 2*perWorker {
			t.Fatalf("own%d = %v, want %d", w, got, 2*perWorker)
		}
	}
}
