package stats

import "sync"

// Window is a fixed-capacity sliding window of float64 observations,
// safe for concurrent use. Once full, each Add evicts the oldest sample,
// so quantiles computed over it track recent behavior rather than the
// whole history. The fleet gateway uses Windows for observed job service
// times (honest Retry-After estimates) and per-worker frame inter-arrival
// times (adaptive stream timeouts).
type Window struct {
	mu      sync.Mutex
	samples []float64
	next    int
	full    bool
}

// NewWindow returns a window holding at most capacity samples
// (capacity < 1 is treated as 1).
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{samples: make([]float64, 0, capacity)}
}

// Add records one observation, evicting the oldest if the window is full.
func (w *Window) Add(v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.full {
		w.samples[w.next] = v
		w.next = (w.next + 1) % cap(w.samples)
		return
	}
	w.samples = append(w.samples, v)
	if len(w.samples) == cap(w.samples) {
		w.full = true
	}
}

// Len reports how many samples the window currently holds.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.samples)
}

// Values returns a copy of the current samples (order unspecified).
func (w *Window) Values() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]float64(nil), w.samples...)
}

// Quantile computes the q-quantile over the current samples (type-7, as
// Quantile). It returns fallback when the window holds fewer than min
// samples, so callers can keep a conservative default until the estimate
// is grounded in enough data.
func (w *Window) Quantile(q float64, min int, fallback float64) float64 {
	vals := w.Values()
	if len(vals) < min || len(vals) == 0 {
		return fallback
	}
	return Quantile(vals, q)
}
