package stats

import "strings"

// InjectLabel returns the metric key with label=value inserted as the
// first label, preserving any labels the key already carries:
//
//	InjectLabel(`jobs_total`, "worker", "a:1")              → `jobs_total{worker="a:1"}`
//	InjectLabel(`rej_total{reason="full"}`, "worker", "a")  → `rej_total{worker="a",reason="full"}`
//
// Counters treats keys as opaque strings, so this is the whole mechanism
// behind fleet-wide metric aggregation: the gateway re-keys every sample
// scraped from a worker with a worker label before re-exposing it.
// Quotes and backslashes in value are escaped per the Prometheus text
// format.
func InjectLabel(key, label, value string) string {
	value = labelEscaper.Replace(value)
	if i := strings.IndexByte(key, '{'); i >= 0 {
		rest := key[i+1:]
		if rest == "}" { // empty label set: name{}
			return key[:i] + "{" + label + `="` + value + `"}`
		}
		return key[:i] + "{" + label + `="` + value + `",` + rest
	}
	return key + "{" + label + `="` + value + `"}`
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
