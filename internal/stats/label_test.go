package stats

import "testing"

func TestInjectLabel(t *testing.T) {
	cases := []struct {
		key, label, value, want string
	}{
		{"jobs_total", "worker", "a:1", `jobs_total{worker="a:1"}`},
		{`rej_total{reason="full"}`, "worker", "a", `rej_total{worker="a",reason="full"}`},
		{`busy{backend="exec",stage="blur"}`, "worker", "w2",
			`busy{worker="w2",backend="exec",stage="blur"}`},
		{"m{}", "worker", "a", `m{worker="a"}`},
		{"m", "worker", `q"u\o`, `m{worker="q\"u\\o"}`},
	}
	for _, c := range cases {
		if got := InjectLabel(c.key, c.label, c.value); got != c.want {
			t.Errorf("InjectLabel(%q, %q, %q) = %q, want %q", c.key, c.label, c.value, got, c.want)
		}
	}
}
