package stats

import (
	"sort"
	"sync"
)

// Counters is a concurrency-safe set of named running counters and gauges.
// It backs the serve metrics endpoint: worker goroutines bump counters
// while the scrape handler snapshots them, so every method is safe for
// concurrent use. Values are float64 (the Prometheus exposition value
// type); counter semantics come from only ever calling Add with positive
// deltas, gauge semantics from Set.
//
// Names may carry a Prometheus-style label suffix, e.g.
// `jobs_rejected_total{reason="queue_full"}` — Counters treats the whole
// string as an opaque key.
type Counters struct {
	mu sync.RWMutex
	v  map[string]float64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{v: make(map[string]float64)}
}

// Add adds delta to the named counter, creating it at zero first.
func (c *Counters) Add(name string, delta float64) {
	c.mu.Lock()
	c.v[name] += delta
	c.mu.Unlock()
}

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Set stores an absolute value (gauge semantics).
func (c *Counters) Set(name string, v float64) {
	c.mu.Lock()
	c.v[name] = v
	c.mu.Unlock()
}

// Get returns the named value, or zero if it was never touched.
func (c *Counters) Get(name string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.v[name]
}

// Snapshot returns a copy of every value, taken atomically with respect
// to concurrent Add/Set calls.
func (c *Counters) Snapshot() map[string]float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]float64, len(c.v))
	for k, v := range c.v {
		out[k] = v
	}
	return out
}

// Names returns the touched names in sorted order — the stable iteration
// order the metrics endpoint needs for deterministic output.
func (c *Counters) Names() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.v))
	for k := range c.v {
		names = append(names, k)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}
