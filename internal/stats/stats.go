// Package stats provides the small statistical helpers the experiment
// harness needs: medians, quartiles and summaries matching the box plots in
// the paper's Fig. 15.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample in the form the paper's box plots use.
type Summary struct {
	N              int
	Min, Max       float64
	Mean           float64
	Q1, Median, Q3 float64
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the data using linear
// interpolation between order statistics (type-7, the common default).
// It sorts a copy; the input is not modified. NaN is returned for empty data.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	// Lerp in point-plus-offset form and clamp: the s[lo]*(1-frac) +
	// s[lo+1]*frac formulation can round just outside [s[lo], s[lo+1]]
	// (e.g. two equal negative values yield a result below both),
	// violating the quantile bounds.
	v := s[lo] + frac*(s[lo+1]-s[lo])
	if v < s[lo] {
		v = s[lo]
	}
	if v > s[lo+1] {
		v = s[lo+1]
	}
	return v
}

// Median returns the 0.5-quantile.
func Median(data []float64) float64 { return Quantile(data, 0.5) }

// Mean returns the arithmetic mean, or NaN for empty data.
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range data {
		sum += v
	}
	return sum / float64(len(data))
}

// Summarize computes the full summary in one sort.
func Summarize(data []float64) Summary {
	if len(data) == 0 {
		nan := math.NaN()
		return Summary{Min: nan, Max: nan, Mean: nan, Q1: nan, Median: nan, Q3: nan}
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
	}
}
