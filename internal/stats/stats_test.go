package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedianOdd(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("median = %g", m)
	}
}

func TestMedianEven(t *testing.T) {
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("median = %g", m)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	d := []float64{10, 20, 30}
	if Quantile(d, 0) != 10 || Quantile(d, 1) != 30 {
		t.Fatal("endpoint quantiles wrong")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	d := []float64{0, 10}
	if q := Quantile(d, 0.25); q != 2.5 {
		t.Fatalf("q25 = %g, want 2.5", q)
	}
}

func TestEmptyDataNaN(t *testing.T) {
	if !math.IsNaN(Median(nil)) || !math.IsNaN(Mean(nil)) {
		t.Fatal("empty data should give NaN")
	}
	s := Summarize(nil)
	if !math.IsNaN(s.Median) || s.N != 0 {
		t.Fatal("empty summary should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %g, %g", s.Q1, s.Q3)
	}
}

func TestInputNotModified(t *testing.T) {
	d := []float64{3, 1, 2}
	Quantile(d, 0.5)
	if d[0] != 3 || d[1] != 1 || d[2] != 2 {
		t.Fatal("input reordered")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		d := make([]float64, len(raw))
		for i, v := range raw {
			d[i] = float64(v)
		}
		sorted := append([]float64(nil), d...)
		sort.Float64s(sorted)
		prev := sorted[0]
		for q := 0.0; q <= 1.0001; q += 0.1 {
			v := Quantile(d, q)
			if v < prev-1e-12 || v < sorted[0] || v > sorted[len(sorted)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: summary ordering min ≤ Q1 ≤ median ≤ Q3 ≤ max and the mean lies
// within [min, max].
func TestQuickSummaryOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(40) + 1
		d := make([]float64, n)
		for i := range d {
			d[i] = rng.NormFloat64() * 100
		}
		s := Summarize(d)
		if !(s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max) {
			t.Fatalf("ordering violated: %+v", s)
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			t.Fatalf("mean out of range: %+v", s)
		}
	}
}
