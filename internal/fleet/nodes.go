package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sccpipe/internal/serve"
	"sccpipe/internal/stats"
)

// State is a worker node's position in the gateway's lifecycle.
type State int32

const (
	// StateHealthy: the node answers health checks and accepts jobs.
	StateHealthy State = iota
	// StateDraining: the node is alive but shutting down — it answers
	// health checks with a draining status, finishes its in-flight jobs,
	// and must not receive new ones.
	StateDraining
	// StateDead: the node failed Config.FailAfter consecutive health
	// checks or job forwards, or let its registration lease lapse. It
	// receives no jobs but keeps being probed and rejoins the rotation on
	// the first successful check (dynamic nodes are removed entirely once
	// dead past the forget window).
	StateDead
)

var stateNames = [...]string{"healthy", "draining", "dead"}

func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// node is one registered worker. The gateway's live routing counters are
// atomics (bumped on the job path); the health-report fields are guarded
// by mu (written by the health loop, read at pick and scrape time).
type node struct {
	name string // host:port — display name, metric label, rendezvous identity
	base string // base URL, no trailing slash
	hash uint64 // fnv64a(name), precomputed for rendezvous tie-breaks

	// dynamic marks a worker that joined via POST /register rather than
	// the static -workers list; only dynamic workers hold leases and can
	// be forgotten. stopProbe ends this node's health loop on removal;
	// probing (guarded by Gateway.loopMu) records that the loop exists so
	// Start and a concurrent registration never double-start it.
	dynamic   bool
	stopProbe chan struct{}
	probing   bool

	// arrivals is the window of observed frame inter-arrival times
	// (seconds) feeding the adaptive stream timeout for this worker.
	arrivals *stats.Window

	// live counts jobs this gateway currently has routed to the node —
	// fresher than any health poll; jobs counts every job ever routed.
	live atomic.Int64
	jobs atomic.Int64

	mu       sync.Mutex
	state    State
	fails    int // consecutive health/forward failures
	lease    time.Time
	ttl      time.Duration
	rep      serve.LoadReport
	busyRate float64 // d(busy_s)/dt between the last two health polls
	busyAt   time.Time
	busyS    float64
	lastSeen time.Time
	lastErr  string
}

func newNode(name, base string, dynamic bool) *node {
	return &node{
		name:      name,
		base:      base,
		hash:      fnv64a(name),
		dynamic:   dynamic,
		stopProbe: make(chan struct{}),
		arrivals:  stats.NewWindow(64),
	}
}

// markAlive records a successful health report and returns the node to
// rotation (healthy or draining per the report). A live answer is as
// good as a heartbeat, so a dynamic node's lease is extended too —
// leases exist to shed workers the gateway can no longer see at all.
func (n *node) markAlive(rep serve.LoadReport, now time.Time) (revived bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	revived = n.state == StateDead
	if rep.Status == "draining" {
		n.state = StateDraining
	} else {
		n.state = StateHealthy
	}
	n.fails = 0
	n.lastErr = ""
	n.lastSeen = now
	if n.dynamic && n.ttl > 0 {
		n.lease = now.Add(n.ttl)
	}
	// Difference cumulative busy seconds into a recent busy rate; the
	// very first sample (or a worker restart, where the counter resets)
	// yields rate 0 until the next poll.
	if !n.busyAt.IsZero() && rep.BusyS >= n.busyS {
		if dt := now.Sub(n.busyAt).Seconds(); dt > 0 {
			n.busyRate = (rep.BusyS - n.busyS) / dt
		}
	} else {
		n.busyRate = 0
	}
	n.busyS = rep.BusyS
	n.busyAt = now
	n.rep = rep
	return revived
}

// markFailure records one failed health check or worker-caused job
// forward failure; after failAfter consecutive failures the node is
// declared dead (deregistered from routing). Reports whether this call
// performed the healthy→dead transition.
func (n *node) markFailure(reason string, failAfter int) (died bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fails++
	n.lastErr = reason
	if n.state != StateDead && n.fails >= failAfter {
		n.state = StateDead
		return true
	}
	return false
}

// renewLease extends a dynamic node's lease (no-op for static nodes).
// ttl <= 0 keeps the node's current TTL.
func (n *node) renewLease(now time.Time, ttl time.Duration) {
	if !n.dynamic {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if ttl > 0 {
		n.ttl = ttl
	}
	if n.ttl > 0 {
		n.lease = now.Add(n.ttl)
	}
}

// expireLease declares a dynamic node dead if its lease has lapsed.
// Reports whether this call performed the transition.
func (n *node) expireLease(now time.Time) (expired bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.dynamic || n.lease.IsZero() || now.Before(n.lease) {
		return false
	}
	if n.state == StateDead {
		return false
	}
	n.state = StateDead
	n.lastErr = "registration lease expired"
	return true
}

// forgettable reports whether a dynamic node has been dead past the
// forget window and should be removed from the registry entirely.
func (n *node) forgettable(now time.Time, forgetAfter time.Duration) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dynamic && n.state == StateDead && !n.lease.IsZero() &&
		now.After(n.lease.Add(forgetAfter))
}

// snapshot returns the mu-guarded fields consistently.
func (n *node) snapshot() (State, serve.LoadReport, float64, int, time.Time, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state, n.rep, n.busyRate, n.fails, n.lastSeen, n.lastErr
}

// leaseSnapshot returns the lease expiry (zero for static nodes).
func (n *node) leaseSnapshot() time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lease
}

// load is the routing score: the gateway's own live count of jobs routed
// to the node (real-time) plus the backlog the node reported on its last
// health poll (covers load from other clients and other gateways).
func (n *node) load() int64 {
	n.mu.Lock()
	queued := int64(n.rep.Queue)
	n.mu.Unlock()
	return n.live.Load() + queued
}

// registry is the worker set: seeded from the static -workers list and
// mutable at runtime through /register and the lease sweeper.
type registry struct {
	mu     sync.RWMutex
	nodes  []*node // insertion order, for stable /nodes and metrics
	byName map[string]*node
}

// parseWorkerURL normalizes one worker URL into its node name (host:port,
// the registry key) and base URL. A bare host:port implies http.
func parseWorkerURL(raw string) (name, base string, err error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", "", fmt.Errorf("fleet: empty worker URL")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", "", fmt.Errorf("fleet: bad worker URL %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", "", fmt.Errorf("fleet: worker %q: scheme %q not supported (want http or https)", raw, u.Scheme)
	}
	if u.Host == "" {
		return "", "", fmt.Errorf("fleet: worker %q has no host", raw)
	}
	return u.Host, strings.TrimSuffix(u.String(), "/"), nil
}

// newRegistry validates and normalizes the static worker URL list (which
// may be empty when dynamic registration will populate the fleet).
func newRegistry(workers []string) (*registry, error) {
	reg := &registry{byName: make(map[string]*node)}
	for _, raw := range workers {
		if strings.TrimSpace(raw) == "" {
			continue
		}
		name, base, err := parseWorkerURL(raw)
		if err != nil {
			return nil, err
		}
		if reg.byName[name] != nil {
			return nil, fmt.Errorf("fleet: worker %q listed twice", name)
		}
		n := newNode(name, base, false)
		reg.nodes = append(reg.nodes, n)
		reg.byName[name] = n
	}
	return reg, nil
}

// snapshot returns the current node list (the slice is a copy; the nodes
// are shared).
func (r *registry) snapshot() []*node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*node(nil), r.nodes...)
}

// get looks a node up by name.
func (r *registry) get(name string) *node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// add inserts a new node; it fails if the name is already registered.
func (r *registry) add(n *node) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName[n.name] != nil {
		return fmt.Errorf("fleet: worker %q already registered", n.name)
	}
	r.nodes = append(r.nodes, n)
	r.byName[n.name] = n
	return nil
}

// remove deletes a node by name and returns it (nil if absent).
func (r *registry) remove(name string) *node {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.byName[name]
	if n == nil {
		return nil
	}
	delete(r.byName, name)
	for i, cand := range r.nodes {
		if cand == n {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			break
		}
	}
	return n
}

// pickVerdict records how pick chose its node, for the routing metrics.
type pickVerdict int

const (
	// pickPlain: the least-loaded node happened to also be the rendezvous
	// winner (or affinity is disabled) — no preference was exercised.
	pickPlain pickVerdict = iota
	// pickAffine: the rendezvous winner was preferred over a strictly
	// less-loaded node because its extra load fit within the slack.
	pickAffine
	// pickOverridden: the rendezvous winner was too loaded and the job
	// went to the least-loaded node instead (a deliberate cold render:
	// latency beat cache warmth).
	pickOverridden
)

// pick selects the routing target for a job's affinity key. The rendezvous
// winner on (key, node) is the node whose render cache is warm for this
// content — identical and seed-varied repeats of a spec all rank it first
// — so it is preferred as long as its load is within slack jobs of the
// least-loaded eligible node. Beyond the slack, load wins: a cache hit is
// not worth queueing behind a busy worker, and the spill keeps the fleet
// balanced under skewed (hot-spec) traffic. slack < 0 disables the
// preference entirely (pure least-loaded with rendezvous tie-break).
// Draining, dead, and excluded nodes are skipped; nil means no node is
// currently eligible.
func (r *registry) pick(key uint64, excluded map[string]bool, slack int64) (*node, pickVerdict) {
	var best, top *node     // least-loaded vs rendezvous winner
	var bestLoad, topLoad int64
	var bestRank, topRank uint64
	for _, n := range r.snapshot() {
		if excluded[n.name] {
			continue
		}
		n.mu.Lock()
		ok := n.state == StateHealthy
		n.mu.Unlock()
		if !ok {
			continue
		}
		load := n.load()
		rank := mix64(key ^ n.hash)
		if best == nil || load < bestLoad || (load == bestLoad && rank > bestRank) {
			best, bestLoad, bestRank = n, load, rank
		}
		if top == nil || rank > topRank {
			top, topLoad, topRank = n, load, rank
		}
	}
	if best == nil || top == nil || top == best {
		return best, pickPlain
	}
	if slack >= 0 && topLoad <= bestLoad+slack {
		return top, pickAffine
	}
	return best, pickOverridden
}

// countStates tallies nodes per state for /healthz and the state gauge.
func (r *registry) countStates() map[State]int {
	out := make(map[State]int, 3)
	for _, n := range r.snapshot() {
		n.mu.Lock()
		out[n.state]++
		n.mu.Unlock()
	}
	return out
}

// healthyCapacity sums the reported concurrent-run capacity of healthy
// nodes (at least 1 per node, so a worker that has not reported yet
// still counts).
func (r *registry) healthyCapacity() int {
	total := 0
	for _, n := range r.snapshot() {
		n.mu.Lock()
		if n.state == StateHealthy {
			if n.rep.Capacity > 1 {
				total += n.rep.Capacity
			} else {
				total++
			}
		}
		n.mu.Unlock()
	}
	return total
}

// startLoop launches a node's health loop if the gateway is running
// (pre-Start nodes are picked up by Start itself).
func (g *Gateway) startLoop(n *node) {
	g.loopMu.Lock()
	defer g.loopMu.Unlock()
	if !g.running {
		return
	}
	g.startLoopLocked(n)
}

// startLoopLocked starts the loop exactly once per node; loopMu held.
func (g *Gateway) startLoopLocked(n *node) {
	if n.probing {
		return
	}
	n.probing = true
	g.loops.Add(1)
	go g.healthLoop(n, g.stop)
}

// healthLoop probes one node until stop closes or the node is removed.
// The first probe fires immediately so a gateway converges on real
// states right after start instead of waiting out a full interval;
// subsequent probes run every HealthInterval ± a deterministic per-node
// jitter of up to ±12.5%, so a large fleet's probes spread out instead
// of thundering every worker's /healthz on the same tick.
func (g *Gateway) healthLoop(n *node, stop <-chan struct{}) {
	defer g.loops.Done()
	g.probe(n)
	for tick := uint64(0); ; tick++ {
		d := g.cfg.HealthInterval
		if span := uint64(d / 4); span > 0 {
			d += time.Duration(mix64(n.hash^(tick+0x9e37))%span) - time.Duration(span/2)
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-stop:
			t.Stop()
			return
		case <-n.stopProbe:
			t.Stop()
			return
		}
		g.probe(n)
	}
}

// decodeLoadReport decodes a worker's /healthz body defensively: the
// read is size-capped and hostile count fields are clamped so a
// misbehaving (or impersonated) worker cannot poison routing math or
// bloat the node table.
func decodeLoadReport(r io.Reader) (serve.LoadReport, error) {
	var rep serve.LoadReport
	if err := json.NewDecoder(io.LimitReader(r, 64<<10)).Decode(&rep); err != nil {
		return rep, err
	}
	clampInt := func(v *int) {
		if *v < 0 {
			*v = 0
		}
		if *v > 1<<20 {
			*v = 1 << 20
		}
	}
	clampInt(&rep.Inflight)
	clampInt(&rep.Queue)
	clampInt(&rep.Admitted)
	clampInt(&rep.Capacity)
	if rep.BusyS < 0 || math.IsNaN(rep.BusyS) || math.IsInf(rep.BusyS, 0) {
		rep.BusyS = 0
	}
	if rep.UptimeS < 0 {
		rep.UptimeS = 0
	}
	if len(rep.Status) > 32 {
		rep.Status = rep.Status[:32]
	}
	if len(rep.Version) > 128 {
		rep.Version = rep.Version[:128]
	}
	return rep, nil
}

// probe runs one health check against a node and applies the transition.
func (g *Gateway) probe(n *node) {
	req, err := http.NewRequest(http.MethodGet, n.base+"/healthz", nil)
	if err != nil {
		g.noteProbeFailure(n, err.Error())
		return
	}
	resp, err := g.health.Do(req)
	if err != nil {
		g.noteProbeFailure(n, err.Error())
		return
	}
	defer resp.Body.Close()
	rep, err := decodeLoadReport(resp.Body)
	if err != nil {
		g.noteProbeFailure(n, "bad health body: "+err.Error())
		return
	}
	// A 503 with a draining status is an alive worker shutting down; any
	// other non-200 (or a 503 without the marker) counts as a failure.
	if resp.StatusCode != http.StatusOK && rep.Status != "draining" {
		g.noteProbeFailure(n, fmt.Sprintf("health status %d", resp.StatusCode))
		return
	}
	g.m.Inc(healthKey("ok"))
	if n.markAlive(rep, time.Now()) {
		g.logf("worker %s rejoined (version %s)", n.name, rep.Version)
	}
	// A fresh report may reveal freed capacity — wake queued jobs.
	g.capacityChanged()
}

// noteProbeFailure records a failed health check.
func (g *Gateway) noteProbeFailure(n *node, reason string) {
	g.m.Inc(healthKey("fail"))
	g.noteWorkerFailure(n, reason)
}

// noteWorkerFailure charges one failure against a node — a failed probe
// or a worker-caused job failure (never a client-caused one; see
// relayRender) — and records the death if it crosses the threshold.
func (g *Gateway) noteWorkerFailure(n *node, reason string) {
	if n.markFailure(reason, g.cfg.FailAfter) {
		g.m.Inc(deathKey(n.name))
		g.logf("worker %s declared dead: %s", n.name, reason)
	}
}

// fnv64a is the FNV-1a hash of s.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 finalizes a combined key (splitmix64 finalizer) so that
// single-bit differences between job keys decorrelate node ranks.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
