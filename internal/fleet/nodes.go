package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sccpipe/internal/serve"
)

// State is a worker node's position in the gateway's lifecycle.
type State int32

const (
	// StateHealthy: the node answers health checks and accepts jobs.
	StateHealthy State = iota
	// StateDraining: the node is alive but shutting down — it answers
	// health checks with a draining status, finishes its in-flight jobs,
	// and must not receive new ones.
	StateDraining
	// StateDead: the node failed Config.FailAfter consecutive health
	// checks or job forwards. It receives no jobs but keeps being probed
	// and rejoins the rotation on the first successful check.
	StateDead
)

var stateNames = [...]string{"healthy", "draining", "dead"}

func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// node is one registered worker. The gateway's live routing counters are
// atomics (bumped on the job path); the health-report fields are guarded
// by mu (written by the health loop, read at pick and scrape time).
type node struct {
	name string // host:port — display name, metric label, rendezvous identity
	base string // base URL, no trailing slash
	hash uint64 // fnv64a(name), precomputed for rendezvous tie-breaks

	// live counts jobs this gateway currently has routed to the node —
	// fresher than any health poll; jobs counts every job ever routed.
	live atomic.Int64
	jobs atomic.Int64

	mu       sync.Mutex
	state    State
	fails    int // consecutive health/forward failures
	rep      serve.LoadReport
	busyRate float64 // d(busy_s)/dt between the last two health polls
	busyAt   time.Time
	busyS    float64
	lastSeen time.Time
	lastErr  string
}

// markAlive records a successful health report and returns the node to
// rotation (healthy or draining per the report).
func (n *node) markAlive(rep serve.LoadReport, now time.Time) (revived bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	revived = n.state == StateDead
	if rep.Status == "draining" {
		n.state = StateDraining
	} else {
		n.state = StateHealthy
	}
	n.fails = 0
	n.lastErr = ""
	n.lastSeen = now
	// Difference cumulative busy seconds into a recent busy rate; the
	// very first sample (or a worker restart, where the counter resets)
	// yields rate 0 until the next poll.
	if !n.busyAt.IsZero() && rep.BusyS >= n.busyS {
		if dt := now.Sub(n.busyAt).Seconds(); dt > 0 {
			n.busyRate = (rep.BusyS - n.busyS) / dt
		}
	} else {
		n.busyRate = 0
	}
	n.busyS = rep.BusyS
	n.busyAt = now
	n.rep = rep
	return revived
}

// markFailure records one failed health check or worker-caused job
// forward failure; after failAfter consecutive failures the node is
// declared dead (deregistered from routing). Reports whether this call
// performed the healthy→dead transition.
func (n *node) markFailure(reason string, failAfter int) (died bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fails++
	n.lastErr = reason
	if n.state != StateDead && n.fails >= failAfter {
		n.state = StateDead
		return true
	}
	return false
}

// snapshot returns the mu-guarded fields consistently.
func (n *node) snapshot() (State, serve.LoadReport, float64, int, time.Time, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state, n.rep, n.busyRate, n.fails, n.lastSeen, n.lastErr
}

// load is the routing score: the gateway's own live count of jobs routed
// to the node (real-time) plus the backlog the node reported on its last
// health poll (covers load from other clients and other gateways).
func (n *node) load() int64 {
	n.mu.Lock()
	queued := int64(n.rep.Queue)
	n.mu.Unlock()
	return n.live.Load() + queued
}

// registry is the fixed worker set built from the static -workers list.
type registry struct {
	nodes []*node
}

// newRegistry validates and normalizes the worker URL list.
func newRegistry(workers []string) (*registry, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured")
	}
	reg := &registry{}
	seen := make(map[string]bool, len(workers))
	for _, raw := range workers {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		if !strings.Contains(raw, "://") {
			raw = "http://" + raw
		}
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("fleet: bad worker URL %q: %v", raw, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return nil, fmt.Errorf("fleet: worker %q: scheme %q not supported (want http or https)", raw, u.Scheme)
		}
		if u.Host == "" {
			return nil, fmt.Errorf("fleet: worker %q has no host", raw)
		}
		if seen[u.Host] {
			return nil, fmt.Errorf("fleet: worker %q listed twice", u.Host)
		}
		seen[u.Host] = true
		reg.nodes = append(reg.nodes, &node{
			name: u.Host,
			base: strings.TrimSuffix(u.String(), "/"),
			hash: fnv64a(u.Host),
		})
	}
	if len(reg.nodes) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured")
	}
	return reg, nil
}

// pick selects the routing target for a job key: the least-loaded healthy
// node, with ties broken by rendezvous hashing on (key, node) so that on
// an idle fleet identical job specs always land on the same worker and
// stay cache-warm there. Draining, dead, and excluded nodes are skipped;
// nil means no node is currently eligible.
func (r *registry) pick(key uint64, excluded map[string]bool) *node {
	var best *node
	var bestLoad int64
	var bestRank uint64
	for _, n := range r.nodes {
		if excluded[n.name] {
			continue
		}
		n.mu.Lock()
		ok := n.state == StateHealthy
		n.mu.Unlock()
		if !ok {
			continue
		}
		load := n.load()
		rank := mix64(key ^ n.hash)
		if best == nil || load < bestLoad || (load == bestLoad && rank > bestRank) {
			best, bestLoad, bestRank = n, load, rank
		}
	}
	return best
}

// countStates tallies nodes per state for /healthz and the state gauge.
func (r *registry) countStates() map[State]int {
	out := make(map[State]int, 3)
	for _, n := range r.nodes {
		n.mu.Lock()
		out[n.state]++
		n.mu.Unlock()
	}
	return out
}

// healthLoop probes one node every HealthInterval until stop closes. The
// first probe fires immediately so a gateway converges on real states
// right after start instead of waiting out a full interval.
func (g *Gateway) healthLoop(n *node, stop <-chan struct{}) {
	defer g.loops.Done()
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	for {
		g.probe(n)
		select {
		case <-t.C:
		case <-stop:
			return
		}
	}
}

// probe runs one health check against a node and applies the transition.
func (g *Gateway) probe(n *node) {
	req, err := http.NewRequest(http.MethodGet, n.base+"/healthz", nil)
	if err != nil {
		g.noteProbeFailure(n, err.Error())
		return
	}
	resp, err := g.health.Do(req)
	if err != nil {
		g.noteProbeFailure(n, err.Error())
		return
	}
	defer resp.Body.Close()
	var rep serve.LoadReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		g.noteProbeFailure(n, "bad health body: "+err.Error())
		return
	}
	// A 503 with a draining status is an alive worker shutting down; any
	// other non-200 (or a 503 without the marker) counts as a failure.
	if resp.StatusCode != http.StatusOK && rep.Status != "draining" {
		g.noteProbeFailure(n, fmt.Sprintf("health status %d", resp.StatusCode))
		return
	}
	g.m.Inc(healthKey("ok"))
	if n.markAlive(rep, time.Now()) {
		g.logf("worker %s rejoined (version %s)", n.name, rep.Version)
	}
}

// noteProbeFailure records a failed health check.
func (g *Gateway) noteProbeFailure(n *node, reason string) {
	g.m.Inc(healthKey("fail"))
	g.noteWorkerFailure(n, reason)
}

// noteWorkerFailure charges one failure against a node — a failed probe
// or a worker-caused job failure (never a client-caused one; see
// relayRender) — and records the death if it crosses the threshold.
func (g *Gateway) noteWorkerFailure(n *node, reason string) {
	if n.markFailure(reason, g.cfg.FailAfter) {
		g.m.Inc(deathKey(n.name))
		g.logf("worker %s declared dead: %s", n.name, reason)
	}
}

// fnv64a is the FNV-1a hash of s.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 finalizes a combined key (splitmix64 finalizer) so that
// single-bit differences between job keys decorrelate node ranks.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
