package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sccpipe/internal/faults"
	"sccpipe/internal/netfaults"
	"sccpipe/internal/scene"
	"sccpipe/internal/serve"
)

// registerWorker POSTs a /register request the way sccserved's registrar
// does and returns the granted response.
func registerWorker(t *testing.T, gatewayURL, selfURL string, ttlS int) serve.RegisterResponse {
	t.Helper()
	body, _ := json.Marshal(serve.RegisterRequest{URL: selfURL, TTLs: ttlS})
	resp, err := http.Post(gatewayURL+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("register status %d: %s", resp.StatusCode, msg)
	}
	var rr serve.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return rr
}

// TestRegisterJoinsFleetAndServes: a gateway with zero static workers
// populates itself entirely through POST /register.
func TestRegisterJoinsFleetAndServes(t *testing.T) {
	_, wts := newWorker(t, nil)
	g, gts := newTestGateway(t, nil, func(c *Config) {
		c.LeaseTTL = 2 * time.Second
	})

	// Before any worker registers, submissions bounce with no_workers.
	resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-fleet status %d, want 503", resp.StatusCode)
	}

	rr := registerWorker(t, gts.URL, wts.URL, 0)
	if rr.TTLs != 2 || rr.RenewS < 1 {
		t.Fatalf("granted lease %+v, want ttl 2s and a sane renew cadence", rr)
	}
	waitFor(t, "registered worker healthy", func() bool {
		for _, ns := range g.Nodes() {
			if ns.URL == wts.URL && ns.State == "healthy" {
				return true
			}
		}
		return false
	})
	frames, _ := readStream(t, postJob(t, gts.URL,
		map[string]any{"mode": "render", "frames": 2, "width": 64, "height": 48, "pipelines": 1}))
	if len(frames) != 2 {
		t.Fatalf("got %d frames through the runtime-registered worker, want 2", len(frames))
	}
	// The node table marks the worker dynamic with a live lease.
	var ns NodeStatus
	for _, row := range g.Nodes() {
		if row.URL == wts.URL {
			ns = row
		}
	}
	if !ns.Dynamic || ns.LeaseUntil == "" {
		t.Fatalf("node row %+v, want dynamic with a lease", ns)
	}
	// A re-register is a renewal, not a second node.
	registerWorker(t, gts.URL, wts.URL, 0)
	if n := len(g.Nodes()); n != 1 {
		t.Fatalf("%d nodes after re-register, want 1", n)
	}
	if v := g.Metric(registerKey("renew")); v != 1 {
		t.Fatalf("renew metric %v, want 1", v)
	}
}

// TestLeaseExpiryEvictsAndForgets: a dynamic worker that stops renewing
// (and stops answering probes) is evicted when its lease lapses — even
// before consecutive probe failures would have condemned it — and is
// removed from the registry entirely once ForgetAfter passes.
func TestLeaseExpiryEvictsAndForgets(t *testing.T) {
	_, wts := newWorker(t, nil)
	g, gts := newTestGateway(t, nil, func(c *Config) {
		c.LeaseTTL = 250 * time.Millisecond
		c.ForgetAfter = 250 * time.Millisecond
		// Probes alone must not get there first: lease expiry is under test.
		c.FailAfter = 1 << 20
	})
	registerWorker(t, gts.URL, wts.URL, 0)
	waitFor(t, "registered worker healthy", func() bool {
		rows := g.Nodes()
		return len(rows) == 1 && rows[0].State == "healthy"
	})

	wts.Close() // the worker vanishes: no heartbeats, no probe renewals
	waitFor(t, "lease expiry eviction", func() bool {
		return g.Metric(mLeaseExpired) >= 1
	})
	// The worker stays in the table (dead, still probed) until the
	// forget window elapses. LastErr is whatever failed most recently —
	// the lease verdict or a later probe — so only the state is asserted.
	if rows := g.Nodes(); len(rows) != 1 || rows[0].State != "dead" {
		t.Fatalf("node table after lease expiry: %+v", rows)
	}
	waitFor(t, "dead worker forgotten", func() bool {
		return len(g.Nodes()) == 0
	})
	if v := g.Metric(mForgotten); v != 1 {
		t.Fatalf("forgotten metric %v, want 1", v)
	}
}

// TestRegistrarKeepsLeaseAlive wires serve.RunRegistrar against a real
// gateway: heartbeats renew the lease, so the worker outlives many TTLs.
func TestRegistrarKeepsLeaseAlive(t *testing.T) {
	_, wts := newWorker(t, nil)
	g, gts := newTestGateway(t, nil, func(c *Config) {
		c.LeaseTTL = 300 * time.Millisecond
		c.FailAfter = 1 << 20
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- serve.RunRegistrar(ctx, serve.RegistrarConfig{Gateway: gts.URL, Self: wts.URL})
	}()
	waitFor(t, "worker registered", func() bool { return len(g.Nodes()) == 1 })
	time.Sleep(time.Second) // > 3 TTLs: only renewals keep it alive
	if rows := g.Nodes(); len(rows) != 1 || rows[0].State != "healthy" {
		t.Fatalf("node table after 3+ TTLs of heartbeats: %+v", rows)
	}
	if v := g.Metric(mLeaseExpired); v != 0 {
		t.Fatalf("lease expired %v times despite heartbeats", v)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("registrar: %v", err)
	}
}

// TestRegisterValidation covers the /register rejection paths.
func TestRegisterValidation(t *testing.T) {
	g, gts := newTestGateway(t, nil, nil)
	post := func(body string) *http.Response {
		resp, err := http.Post(gts.URL+"/register", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		io.Copy(io.Discard, resp.Body)
		return resp
	}
	if resp := post(`{"url":"ftp://h:1"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad scheme: status %d", resp.StatusCode)
	}
	if resp := post(`not json`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}
	if resp, err := http.Get(gts.URL + "/register"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /register: status %d", resp.StatusCode)
		}
	}
	g.BeginDrain()
	if resp := post(`{"url":"http://h:1"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining register: status %d", resp.StatusCode)
	}
}

// TestRegisterDisabled: LeaseTTL < 0 turns /register off entirely.
func TestRegisterDisabled(t *testing.T) {
	_, wts := newWorker(t, nil)
	_, gts := newTestGateway(t, []string{wts.URL}, func(c *Config) { c.LeaseTTL = -1 })
	body, _ := json.Marshal(serve.RegisterRequest{URL: "http://h:1"})
	resp, err := http.Post(gts.URL+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("register with registration disabled: status %d, want 403", resp.StatusCode)
	}
}

// wrongIndexWorker speaks the worker multipart protocol but mislabels
// its frame stream: indices per the indices slice, then a summary.
func wrongIndexWorker(t *testing.T, indices []int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			json.NewEncoder(w).Encode(serve.LoadReport{Status: "ok", Capacity: 2})
		case "/jobs":
			mw := multipart.NewWriter(w)
			w.Header().Set("Content-Type", "multipart/x-mixed-replace; boundary="+mw.Boundary())
			payload := []byte("not-a-png-but-the-gateway-checks-indices-first")
			for _, idx := range indices {
				h := make(map[string][]string)
				h["Content-Type"] = []string{"image/png"}
				h["X-Frame-Index"] = []string{fmt.Sprint(idx)}
				h["X-Frame-Digest"] = []string{serve.FrameDigest(payload)}
				pw, err := mw.CreatePart(h)
				if err != nil {
					return
				}
				pw.Write(payload)
			}
			sum, _ := mw.CreatePart(map[string][]string{"Content-Type": {"application/json"}})
			json.NewEncoder(sum).Encode(map[string]any{"frames": len(indices)})
			mw.Close()
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestWrongIndexedFrameIsWorkerFault (regression): a worker whose frame
// indices go backwards — or skip — is a worker fault that triggers
// failover blame, never a stream relayed as-is.
func TestWrongIndexedFrameIsWorkerFault(t *testing.T) {
	for name, indices := range map[string][]int{
		"backwards":     {0, 1, 0},
		"skips":         {0, 2},
		"starts_at_one": {1},
	} {
		t.Run(name, func(t *testing.T) {
			wts := wrongIndexWorker(t, indices)
			g, gts := newTestGateway(t, []string{wts.URL}, func(c *Config) {
				c.Retry = &faults.RecoveryPolicy{MaxRetries: 1, Backoff: time.Millisecond}
				// Keep the node alive across the attempts so the retry
				// budget (not worker death) ends the job.
				c.FailAfter = 10
			})
			resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 3, "width": 64, "height": 48, "pipelines": 1})
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			// Depending on whether frame 0 went out before the bad index,
			// the verdict is a 502 or an in-stream error summary — but it
			// is always a *failure*, attributed to the worker.
			if resp.StatusCode == http.StatusOK && !bytes.Contains(body, []byte("error")) {
				t.Fatalf("mis-indexed stream relayed as success: %s", body)
			}
			if v := g.Metric(mFailed); v != 1 {
				t.Fatalf("failed metric %v, want 1", v)
			}
			if v := g.Metric(mClientGone); v != 0 {
				t.Fatalf("client blamed (%v) for a worker-side index fault", v)
			}
			name := strings.TrimPrefix(wts.URL, "http://")
			if v := g.Metric(retryKey(name)); v < 1 {
				t.Fatalf("no failover retry charged to the faulty worker")
			}
		})
	}
}

// TestQueueHoldsJobUntilCapacityFrees: with every worker at capacity the
// gateway parks the submission in its admission queue and completes it
// once the fleet frees up — the client sees one clean 200 stream.
func TestQueueHoldsJobUntilCapacityFrees(t *testing.T) {
	cfg := scene.DefaultConfig()
	cfg.BlocksX, cfg.BlocksZ = 4, 4
	s := serve.New(serve.Config{Workers: 1, QueueDepth: -1, Scene: scene.City(cfg)})
	gt := newGate(s)
	wts := httptest.NewServer(gt)
	t.Cleanup(wts.Close)
	g, gts := newTestGateway(t, []string{wts.URL}, nil)

	gt.armed.Store(true)
	holdDone := make(chan struct{})
	go func() {
		defer close(holdDone)
		resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	<-gt.started // worker's only slot is now occupied
	gt.armed.Store(false)

	type result struct {
		frames map[int][]byte
		status int
	}
	queuedDone := make(chan result, 1)
	go func() {
		resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 2, "width": 64, "height": 48, "pipelines": 1, "seed": 7})
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			queuedDone <- result{status: resp.StatusCode}
			return
		}
		frames, _ := readStream(t, resp)
		queuedDone <- result{frames: frames, status: http.StatusOK}
	}()
	waitFor(t, "job queued", func() bool { return g.Metric(mQueued) >= 1 })
	if v := g.Metric(mQueueDepth); v != 1 {
		t.Fatalf("queue depth %v with one parked job, want 1", v)
	}
	close(gt.release)
	<-holdDone
	res := <-queuedDone
	if res.status != http.StatusOK || len(res.frames) != 2 {
		t.Fatalf("queued job finished with status %d, %d frames; want 200 with 2", res.status, len(res.frames))
	}
	if v := g.Metric(mQueueDepth); v != 0 {
		t.Fatalf("queue depth %v after completion, want 0", v)
	}
}

// TestQueueReleasesSlotOnClientDisconnect (regression): a client that
// vanishes while its job is parked in the admission queue releases the
// slot, drives the depth gauge back to zero, records a client_gone
// eviction — and never charges a worker with the failure.
func TestQueueReleasesSlotOnClientDisconnect(t *testing.T) {
	cfg := scene.DefaultConfig()
	cfg.BlocksX, cfg.BlocksZ = 4, 4
	s := serve.New(serve.Config{Workers: 1, QueueDepth: -1, Scene: scene.City(cfg)})
	gt := newGate(s)
	wts := httptest.NewServer(gt)
	t.Cleanup(wts.Close)
	g, gts := newTestGateway(t, []string{wts.URL}, nil)

	gt.armed.Store(true)
	holdDone := make(chan struct{})
	go func() {
		defer close(holdDone)
		resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	<-gt.started
	gt.armed.Store(false)
	defer func() {
		close(gt.release)
		<-holdDone
	}()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1, "seed": 3})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, gts.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, "job queued", func() bool { return g.Metric(mQueued) >= 1 })
	cancel() // the queued client walks away
	<-errc
	waitFor(t, "queue slot released", func() bool { return g.Metric(mQueueDepth) == 0 })
	if v := g.Metric(evictKey("client_gone")); v != 1 {
		t.Fatalf("client_gone evictions %v, want 1", v)
	}
	name := strings.TrimPrefix(wts.URL, "http://")
	if v := g.Metric(deathKey(name)); v != 0 {
		t.Fatalf("worker blamed (%v deaths) for a client disconnect", v)
	}
	if v := g.Metric(retryKey(name)); v != 0 {
		t.Fatalf("worker charged %v retries for a client disconnect", v)
	}
}

// TestQueueFullSheds: with the queue bounded at 0 the old instant-429
// behavior returns, and the 429 carries a Retry-After header.
func TestQueueFullSheds(t *testing.T) {
	cfg := scene.DefaultConfig()
	cfg.BlocksX, cfg.BlocksZ = 4, 4
	s := serve.New(serve.Config{Workers: 1, QueueDepth: -1, Scene: scene.City(cfg)})
	gt := newGate(s)
	wts := httptest.NewServer(gt)
	t.Cleanup(wts.Close)
	g, gts := newTestGateway(t, []string{wts.URL}, func(c *Config) { c.QueueDepth = -1 })

	gt.armed.Store(true)
	holdDone := make(chan struct{})
	go func() {
		defer close(holdDone)
		resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1})
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	<-gt.started
	gt.armed.Store(false)
	defer func() {
		close(gt.release)
		<-holdDone
	}()

	resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1, "seed": 9})
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with queueing disabled and fleet busy, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if v := g.Metric(mRejected + `{reason="queue_full"}`); v != 1 {
		t.Fatalf("queue_full rejections %v, want 1", v)
	}
}

// TestAdaptiveWatchdogDropsStalledWorker: a worker that accepts the job
// and then trickles nothing is cancelled by the stall watchdog and
// blamed — the stall counter ticks and the job fails over (to nothing,
// here, so the client gets an honest failure rather than a hang).
func TestAdaptiveWatchdogDropsStalledWorker(t *testing.T) {
	cfg := scene.DefaultConfig()
	cfg.BlocksX, cfg.BlocksZ = 4, 4
	s := serve.New(serve.Config{Workers: 1, QueueDepth: 0, Scene: scene.City(cfg)})
	gt := newGate(s)
	wts := httptest.NewServer(gt)
	t.Cleanup(wts.Close)
	g, gts := newTestGateway(t, []string{wts.URL}, func(c *Config) {
		c.StreamTimeoutMin = 50 * time.Millisecond
		c.StreamTimeoutMax = 250 * time.Millisecond
		c.Retry = &faults.RecoveryPolicy{MaxRetries: 1, Backoff: time.Millisecond}
	})
	gt.armed.Store(true)
	t.Cleanup(func() { close(gt.release) })

	start := time.Now()
	resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1})
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	elapsed := time.Since(start)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("stalled stream reported success")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to drop a stalled worker", elapsed)
	}
	name := strings.TrimPrefix(wts.URL, "http://")
	waitFor(t, "stall blamed on the worker", func() bool {
		return g.Metric(stallKey(name)) >= 1
	})
	if v := g.Metric(mClientGone); v != 0 {
		t.Fatalf("client blamed (%v) for a worker stall", v)
	}
}

// TestChaosPartitionFailsOver: a seeded partition of one worker severs
// its probes and forwards; the fleet serves every job from the survivor
// and the partitioned node is declared dead — all deterministically.
func TestChaosPartitionFailsOver(t *testing.T) {
	_, a := newWorker(t, nil)
	_, b := newWorker(t, nil)
	aHost := strings.TrimPrefix(a.URL, "http://")
	plan, err := netfaults.ParsePlan("seed=7,partition=" + aHost + "@0")
	if err != nil {
		t.Fatal(err)
	}
	g, gts := newTestGateway(t, []string{a.URL, b.URL}, func(c *Config) {
		c.NetFaults = plan
		c.FailAfter = 2
	})
	for seed := int64(0); seed < 3; seed++ {
		frames, sum := readStream(t, postJob(t, gts.URL,
			map[string]any{"mode": "render", "frames": 2, "width": 64, "height": 48, "pipelines": 1, "seed": seed}))
		if len(frames) != 2 {
			t.Fatalf("job %d: %d frames, want 2", seed, len(frames))
		}
		if sum["worker"] == aHost {
			t.Fatalf("job %d served by the partitioned worker", seed)
		}
	}
	waitFor(t, "partitioned worker declared dead", func() bool {
		return nodeByName(t, g, aHost).State == "dead"
	})
}
