package fleet

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"time"
)

// The gateway-side admission queue: when every healthy worker is at
// capacity, render and simulate submissions wait here (bounded by
// Config.QueueDepth) instead of bouncing off an instant 429. Waiters are
// woken when capacity plausibly changed — a relay finished, a health
// report arrived, a worker registered — and re-run the full pick loop.
// Shedding is deadline-aware: a queued job whose client deadline can no
// longer be met (per observed service times) is evicted immediately with
// an honest Retry-After, as is one whose client disconnected.

// queueWait outcomes.
const (
	waitReady      = iota // capacity may be available; retry the pick
	waitClientGone        // the client's context ended while queued
	waitDeadline          // the client deadline can no longer be met
)

// queueEnter claims a queue slot; false means the queue is full (or
// queueing is disabled) and the submission should be shed.
func (g *Gateway) queueEnter() bool {
	if g.cfg.QueueDepth <= 0 {
		return false
	}
	g.qmu.Lock()
	defer g.qmu.Unlock()
	if g.qdepth >= g.cfg.QueueDepth {
		return false
	}
	g.qdepth++
	g.m.Inc(mQueued)
	g.m.Set(mQueueDepth, float64(g.qdepth))
	return true
}

// queueExit releases a queue slot. A non-empty reason records an
// eviction (deadline, client_gone); empty means the job proceeded to a
// worker.
func (g *Gateway) queueExit(reason string) {
	g.qmu.Lock()
	g.qdepth--
	g.m.Set(mQueueDepth, float64(g.qdepth))
	g.qmu.Unlock()
	if reason != "" {
		g.m.Inc(evictKey(reason))
	}
}

// wakeCh returns the channel closed at the next capacity change.
func (g *Gateway) wakeCh() <-chan struct{} {
	g.qmu.Lock()
	defer g.qmu.Unlock()
	return g.wake
}

// capacityChanged wakes every queued job: close-and-swap the wake
// channel. Called whenever worker capacity may have freed up (a relay
// attempt finished, a health report arrived, a worker registered).
func (g *Gateway) capacityChanged() {
	g.qmu.Lock()
	close(g.wake)
	g.wake = make(chan struct{})
	g.qmu.Unlock()
}

// estServiceTime is the observed p50 job service time (0 until enough
// samples have accumulated).
func (g *Gateway) estServiceTime() time.Duration {
	sec := g.svcTimes.Quantile(0.5, 4, 0)
	if sec <= 0 || math.IsNaN(sec) {
		return 0
	}
	return time.Duration(sec * float64(time.Second))
}

// retryAfterSeconds is the honest Retry-After estimate for a shed
// submission: the observed p50 service time, times the queue population
// ahead of the newcomer, divided across the fleet's healthy capacity.
// At least 1 (the header must be a positive integer), even when no
// service times have been observed yet.
func (g *Gateway) retryAfterSeconds() int {
	est := g.estServiceTime()
	if est <= 0 {
		return 1
	}
	g.qmu.Lock()
	depth := g.qdepth
	g.qmu.Unlock()
	capacity := g.reg.healthyCapacity()
	if capacity < 1 {
		capacity = 1
	}
	sec := int(math.Ceil(est.Seconds() * float64(depth+1) / float64(capacity)))
	if sec < 1 {
		sec = 1
	}
	return sec
}

// rejectBusy sheds a submission with 429 and the honest Retry-After.
func (g *Gateway) rejectBusy(w http.ResponseWriter, reason, msg string) {
	g.m.Inc(mRejected + `{reason="` + reason + `"}`)
	w.Header().Set("Retry-After", fmt.Sprintf("%d", g.retryAfterSeconds()))
	http.Error(w, msg, http.StatusTooManyRequests)
}

// queueWait parks one queued job until capacity plausibly changes, its
// deadline becomes unmeetable, or its client disconnects. A periodic
// re-probe tick bounds the wait even if no wake arrives (a worker may
// have freed capacity without the gateway noticing).
func (g *Gateway) queueWait(ctx context.Context, deadline time.Time) int {
	tick := g.cfg.HealthInterval / 2
	if tick < 25*time.Millisecond {
		tick = 25 * time.Millisecond
	}
	if tick > 500*time.Millisecond {
		tick = 500 * time.Millisecond
	}
	t := time.NewTimer(tick)
	defer t.Stop()
	if !deadline.IsZero() {
		remaining := time.Until(deadline)
		if remaining <= 0 || remaining < g.estServiceTime() {
			return waitDeadline
		}
	}
	select {
	case <-ctx.Done():
		return waitClientGone
	case <-g.wakeCh():
		return waitReady
	case <-t.C:
		return waitReady
	}
}
