package fleet

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzParseRegister hammers the /register body parser: any byte soup
// must yield either a clean error or a node identity with a TTL inside
// the lease bounds — never a panic, never an unbounded allocation (the
// parser rejects oversized bodies and URLs before touching them).
func FuzzParseRegister(f *testing.F) {
	f.Add([]byte(`{"url":"http://10.0.0.2:8344","ttl_s":30}`))
	f.Add([]byte(`{"url":"10.0.0.2:8344"}`))
	f.Add([]byte(`{"url":"","ttl_s":-5}`))
	f.Add([]byte(`{"url":"https://worker.example:443/","ttl_s":999999}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"url":"http://` + strings.Repeat("a", 600) + `:1"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 8<<10 {
			t.Skip("register bodies are capped upstream at 4KB")
		}
		name, base, ttl, err := parseRegister(body, 15*time.Second)
		if err != nil {
			return
		}
		if name == "" || base == "" {
			t.Fatalf("accepted register with empty identity: name=%q base=%q", name, base)
		}
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			t.Fatalf("accepted base %q without an http scheme", base)
		}
		if ttl < minLeaseTTL || ttl > maxLeaseTTL {
			t.Fatalf("granted TTL %v outside [%v, %v]", ttl, minLeaseTTL, maxLeaseTTL)
		}
	})
}

// FuzzLoadReport hammers the health-body decoder: hostile JSON must
// never panic, and every accepted report must come back with its counts
// clamped into routing-safe ranges and its strings bounded.
func FuzzLoadReport(f *testing.F) {
	f.Add([]byte(`{"status":"ok","inflight":1,"queue":0,"capacity":4,"busy_s":1.5}`))
	f.Add([]byte(`{"inflight":-3,"queue":2147483647,"capacity":-1}`))
	f.Add([]byte(`{"busy_s":1e308,"uptime_s":-10}`))
	f.Add([]byte(`{"status":"` + strings.Repeat("x", 100) + `"}`))
	f.Add([]byte(`{"busy_s":"NaN"}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, body []byte) {
		if len(body) > 128<<10 {
			t.Skip("the decoder reads at most 64KB anyway")
		}
		rep, err := decodeLoadReport(bytes.NewReader(body))
		if err != nil {
			return
		}
		for _, v := range []int{rep.Inflight, rep.Queue, rep.Admitted, rep.Capacity} {
			if v < 0 || v > 1<<20 {
				t.Fatalf("count %d escaped the clamp", v)
			}
		}
		if rep.BusyS < 0 || rep.UptimeS < 0 {
			t.Fatalf("negative load figures survived: busy=%v uptime=%v", rep.BusyS, rep.UptimeS)
		}
		if len(rep.Status) > 32 || len(rep.Version) > 128 {
			t.Fatalf("unbounded strings survived: status=%d version=%d bytes", len(rep.Status), len(rep.Version))
		}
	})
}
