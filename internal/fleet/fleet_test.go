package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sccpipe/internal/codec"
	"sccpipe/internal/faults"
	"sccpipe/internal/frame"
	"sccpipe/internal/scene"
	"sccpipe/internal/serve"
)

// killable wraps a worker handler with two failure modes the fleet tests
// drive: dead=true makes every request abort its connection (the process
// is "gone"), and killAfterFrames>0 severs a /jobs stream after that many
// PNG part headers have gone out — a worker dying mid-job.
type killable struct {
	h               http.Handler
	dead            atomic.Bool
	killAfterFrames atomic.Int64
}

func (k *killable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	if r.URL.Path == "/jobs" && k.killAfterFrames.Load() > 0 {
		k.h.ServeHTTP(&killWriter{ResponseWriter: w, k: k}, r)
		return
	}
	k.h.ServeHTTP(w, r)
}

// frameMarker appears exactly once in every frame part's headers — PNG
// and delta parts alike — so counting it counts frames on the wire.
var frameMarker = []byte("X-Frame-Index:")

type killWriter struct {
	http.ResponseWriter
	k      *killable
	frames int64
}

func (w *killWriter) Write(p []byte) (int, error) {
	w.frames += int64(bytes.Count(p, frameMarker))
	if w.k.dead.Load() || w.frames > w.k.killAfterFrames.Load() {
		// Once the kill fires the whole worker is down: health checks and
		// retries against it must fail too.
		w.k.dead.Store(true)
		return 0, fmt.Errorf("worker killed")
	}
	return w.ResponseWriter.Write(p)
}

func (w *killWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok && !w.k.dead.Load() {
		f.Flush()
	}
}

// gate holds a worker's /jobs stream at its first frame write until
// released — a deterministic way to keep a job in flight.
type gate struct {
	h       http.Handler
	armed   atomic.Bool
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func newGate(h http.Handler) *gate {
	return &gate{h: h, started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/jobs" && g.armed.Load() {
		g.h.ServeHTTP(&gateWriter{ResponseWriter: w, g: g}, r)
		return
	}
	g.h.ServeHTTP(w, r)
}

type gateWriter struct {
	http.ResponseWriter
	g *gate
}

func (w *gateWriter) Write(p []byte) (int, error) {
	if bytes.Contains(p, frameMarker) {
		w.g.once.Do(func() { close(w.g.started) })
		<-w.g.release
	}
	return w.ResponseWriter.Write(p)
}

func (w *gateWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// newWorker starts one in-process render worker over a small scene.
func newWorker(t *testing.T, wrap func(http.Handler) http.Handler) (*serve.Server, *httptest.Server) {
	t.Helper()
	cfg := scene.DefaultConfig()
	cfg.BlocksX, cfg.BlocksZ = 4, 4
	s := serve.New(serve.Config{Workers: 2, QueueDepth: 64, Scene: scene.City(cfg)})
	var h http.Handler = s
	if wrap != nil {
		h = wrap(s)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return s, ts
}

// newTestGateway builds a gateway over the given worker URLs with fast
// health polling and starts its loops.
func newTestGateway(t *testing.T, urls []string, mut func(*Config)) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workers:        urls,
		HealthInterval: 20 * time.Millisecond,
		// Generous probe deadline: on a loaded machine (the full suite
		// under -race) a busy worker can take a while to answer
		// /healthz, and with FailAfter 1 a single timed-out probe would
		// falsely deregister it. Dead-worker detection in these tests
		// comes from hard connection errors, which fail fast regardless.
		HealthTimeout: 10 * time.Second,
		FailAfter:     1,
		Retry:         &faults.RecoveryPolicy{MaxRetries: 3, Backoff: time.Millisecond},
	}
	if mut != nil {
		mut(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	return g, ts
}

func postJob(t *testing.T, url string, spec map[string]any) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream consumes a multipart job response: frame payloads by index
// plus the decoded trailing JSON summary.
func readStream(t *testing.T, resp *http.Response) (map[int][]byte, map[string]any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("job status %d: %s", resp.StatusCode, body)
	}
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		t.Fatalf("bad content type %q: %v", resp.Header.Get("Content-Type"), err)
	}
	frames := make(map[int][]byte)
	var summary map[string]any
	mr := multipart.NewReader(resp.Body, params["boundary"])
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		switch part.Header.Get("Content-Type") {
		case "image/png":
			idx, err := strconv.Atoi(part.Header.Get("X-Frame-Index"))
			if err != nil {
				t.Fatalf("frame index: %v", err)
			}
			payload, err := io.ReadAll(part)
			if err != nil {
				t.Fatalf("frame %d: %v", idx, err)
			}
			if _, dup := frames[idx]; dup {
				t.Fatalf("frame %d delivered twice", idx)
			}
			frames[idx] = payload
		case "application/json":
			if err := json.NewDecoder(part).Decode(&summary); err != nil {
				t.Fatalf("summary: %v", err)
			}
		}
	}
	if summary == nil {
		t.Fatal("stream ended without a summary part")
	}
	if errMsg, ok := summary["error"]; ok {
		t.Fatalf("job error: %v", errMsg)
	}
	return frames, summary
}

// postJobDelta submits a job with delta frame encoding negotiated.
func postJobDelta(t *testing.T, url string, spec map[string]any) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.FrameEncodingHeader, serve.FrameEncodingDelta)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readDeltaStream consumes a delta-encoded multipart job response:
// payloads and part headers by frame index, plus the JSON summary.
func readDeltaStream(t *testing.T, resp *http.Response) (map[int][]byte, map[int]map[string]string, map[string]any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("job status %d: %s", resp.StatusCode, body)
	}
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		t.Fatalf("bad content type %q: %v", resp.Header.Get("Content-Type"), err)
	}
	payloads := make(map[int][]byte)
	headers := make(map[int]map[string]string)
	var summary map[string]any
	mr := multipart.NewReader(resp.Body, params["boundary"])
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if part.Header.Get("Content-Type") == "application/json" {
			if err := json.NewDecoder(part).Decode(&summary); err != nil {
				t.Fatalf("summary: %v", err)
			}
			continue
		}
		idx, err := strconv.Atoi(part.Header.Get("X-Frame-Index"))
		if err != nil {
			t.Fatalf("frame index: %v", err)
		}
		payload, err := io.ReadAll(part)
		if err != nil {
			t.Fatalf("frame %d: %v", idx, err)
		}
		if _, dup := payloads[idx]; dup {
			t.Fatalf("frame %d delivered twice", idx)
		}
		payloads[idx] = payload
		h := map[string]string{}
		for k := range part.Header {
			h[k] = part.Header.Get(k)
		}
		headers[idx] = h
	}
	if summary == nil {
		t.Fatal("stream ended without a summary part")
	}
	if errMsg, ok := summary["error"]; ok {
		t.Fatalf("job error: %v", errMsg)
	}
	return payloads, headers, summary
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func nodeByName(t *testing.T, g *Gateway, name string) NodeStatus {
	t.Helper()
	for _, ns := range g.Nodes() {
		if ns.Name == name {
			return ns
		}
	}
	t.Fatalf("node %s not in table", name)
	return NodeStatus{}
}

func TestRegistryValidation(t *testing.T) {
	for _, bad := range [][]string{
		{"ftp://h:1"},
		{"http://"},
		{"http://h:1", "h:1"}, // duplicate after scheme defaulting
	} {
		if _, err := newRegistry(bad); err == nil {
			t.Errorf("newRegistry(%q) accepted invalid input", bad)
		}
	}
	// An empty list (blank entries skipped) is valid at the registry
	// level: dynamic registration may populate the fleet later. The
	// zero-workers policy lives in New, keyed on whether /register is on.
	for _, empty := range [][]string{nil, {}, {"  "}} {
		if _, err := newRegistry(empty); err != nil {
			t.Errorf("newRegistry(%q) rejected an empty fleet: %v", empty, err)
		}
	}
	if _, err := New(Config{LeaseTTL: -1}); err == nil {
		t.Error("New accepted zero workers with registration disabled")
	}
	if g, err := New(Config{}); err != nil {
		t.Errorf("New rejected an empty fleet with registration enabled: %v", err)
	} else {
		g.Close()
	}
	reg, err := newRegistry([]string{"h1:8344", "http://h2:8344/"})
	if err != nil {
		t.Fatal(err)
	}
	if reg.nodes[0].base != "http://h1:8344" || reg.nodes[1].base != "http://h2:8344" {
		t.Fatalf("bases not normalized: %q, %q", reg.nodes[0].base, reg.nodes[1].base)
	}
}

func TestPickAffinityWithLoadSlack(t *testing.T) {
	reg, err := newRegistry([]string{"a:1", "b:1", "c:1"})
	if err != nil {
		t.Fatal(err)
	}
	key := affinityKey(serve.JobSpec{Mode: serve.ModeRender, Frames: 8, Width: 320, Height: 240, Pipelines: 4})

	// Idle fleet: the pick is the rendezvous winner and is stable.
	first, _ := reg.pick(key, nil, 1)
	for i := 0; i < 10; i++ {
		if got, _ := reg.pick(key, nil, 1); got != first {
			t.Fatalf("idle pick not stable: %s then %s", first.name, got.name)
		}
	}
	// A different key must be able to pick differently (8 distinct keys
	// all landing on one of three nodes is a ~0.04% event).
	seen := map[string]bool{first.name: true}
	for f := 1; f <= 8; f++ {
		k := affinityKey(serve.JobSpec{Mode: serve.ModeRender, Frames: 8 + f, Width: 320, Height: 240, Pipelines: 4})
		n, _ := reg.pick(k, nil, 1)
		seen[n.name] = true
	}
	if len(seen) < 2 {
		t.Fatalf("rendezvous hashing routed 9 distinct keys to a single node")
	}

	// One in-flight job is within the default slack: affinity holds, so
	// a repeat of the same spec still lands on the cache-warm worker.
	first.live.Add(1)
	if got, v := reg.pick(key, nil, 1); got != first || v != pickAffine {
		t.Fatalf("slack 1 did not hold affinity: got %s (verdict %d)", got.name, v)
	}
	// Negative slack disables affinity: pure least-loaded takes over.
	if got, _ := reg.pick(key, nil, -1); got == first {
		t.Fatalf("disabled affinity still picked the loaded winner %s", first.name)
	}
	// Beyond the slack, load wins and the override is reported.
	first.live.Add(2)
	second, v := reg.pick(key, nil, 1)
	if second == first || v != pickOverridden {
		t.Fatalf("pick ignored load on %s (got %s, verdict %d)", first.name, second.name, v)
	}
	// Reported queue depth counts as load too.
	second.mu.Lock()
	second.rep.Queue = 5
	second.mu.Unlock()
	third, _ := reg.pick(key, nil, 1)
	if third == first || third == second {
		t.Fatalf("pick ignored reported queue: got %s", third.name)
	}
	first.live.Add(-3)

	// Draining, dead, and excluded nodes are skipped.
	first.mu.Lock()
	first.state = StateDraining
	first.mu.Unlock()
	if got, _ := reg.pick(key, nil, 1); got == first {
		t.Fatal("picked a draining node")
	}
	if got, _ := reg.pick(key, map[string]bool{"a:1": true, "b:1": true, "c:1": true}, 1); got != nil {
		t.Fatalf("pick with every node excluded returned %s", got.name)
	}
}

func TestAffinityKeyCanonical(t *testing.T) {
	var empty serve.JobSpec
	empty.Normalize()
	explicit := serve.JobSpec{Mode: "render", Frames: 8, Width: 320, Height: 240,
		Pipelines: 4, Renderer: "one", Arrangement: "unordered", Camera: serve.CameraOrbit}
	explicit.Normalize()
	if affinityKey(empty) != affinityKey(explicit) {
		t.Fatal("defaulted and explicit-default specs produce different affinity keys")
	}
	// The seed only drives post-render filters, never the cached render,
	// so seed-varied repeats of one scene share a key by design.
	other := explicit
	other.Seed = 1
	if affinityKey(other) != affinityKey(explicit) {
		t.Fatal("seed leaked into the affinity key")
	}
	// The camera path changes every rendered frame, so it must not.
	dwell := explicit
	dwell.Camera = serve.CameraDwell
	if affinityKey(dwell) == affinityKey(explicit) {
		t.Fatal("distinct camera paths share an affinity key")
	}
}

// TestFailoverGolden is the acceptance test: with three workers and the
// serving one killed mid-job, the gateway's stream carries frame payloads
// byte-identical to a single-node run, and the sccgate metrics record the
// death, the retry, and the per-worker job counts.
func TestFailoverGolden(t *testing.T) {
	kills := make(map[string]*killable)
	var urls []string
	for i := 0; i < 3; i++ {
		var k *killable
		_, ts := newWorker(t, func(h http.Handler) http.Handler {
			k = &killable{h: h}
			return k
		})
		name := strings.TrimPrefix(ts.URL, "http://")
		kills[name] = k
		urls = append(urls, ts.URL)
	}
	g, gts := newTestGateway(t, urls, nil)

	spec := map[string]any{"mode": "render", "frames": 10, "width": 128, "height": 96, "pipelines": 2, "seed": int64(7)}
	jspec := serve.JobSpec{Mode: "render", Frames: 10, Width: 128, Height: 96, Pipelines: 2, Seed: 7}
	jspec.Normalize()
	victim, _ := g.reg.pick(affinityKey(jspec), nil, int64(g.cfg.AffinitySlack))
	if victim == nil {
		t.Fatal("no pick on an idle fleet")
	}
	kills[victim.name].killAfterFrames.Store(3)

	frames, summary := readStream(t, postJob(t, gts.URL, spec))
	if len(frames) != 10 {
		t.Fatalf("relayed %d frames, want 10", len(frames))
	}
	if summary["worker"] == victim.name {
		t.Fatalf("summary credits the killed worker %s", victim.name)
	}
	if fo, _ := summary["failovers"].(float64); fo < 1 {
		t.Fatalf("summary failovers = %v, want >= 1", summary["failovers"])
	}

	// Golden: byte-identical to a single-node run of the same spec.
	_, single := newWorker(t, nil)
	golden, _ := readStream(t, postJob(t, single.URL, spec))
	if len(golden) != len(frames) {
		t.Fatalf("single node served %d frames, gateway %d", len(golden), len(frames))
	}
	for idx, want := range golden {
		if !bytes.Equal(frames[idx], want) {
			t.Fatalf("frame %d differs from the single-node run (%d vs %d bytes)",
				idx, len(frames[idx]), len(want))
		}
	}

	// Metrics record the death, the retry, and per-worker job counts.
	if v := g.Metric(deathKey(victim.name)); v < 1 {
		t.Fatalf("worker death not recorded: %s = %v", deathKey(victim.name), v)
	}
	if v := g.Metric(retryKey(victim.name)); v < 1 {
		t.Fatalf("failover retry not recorded: %s = %v", retryKey(victim.name), v)
	}
	if v := g.Metric(workerJobsKey(victim.name)); v < 1 {
		t.Fatalf("routed-jobs count missing for %s", victim.name)
	}
	var total float64
	for name := range kills {
		total += g.Metric(workerJobsKey(name))
	}
	if total < 2 {
		t.Fatalf("per-worker job counts sum to %v, want >= 2 (original + failover)", total)
	}
	if v := g.Metric(mFramesDiscarded); v < 1 {
		t.Fatalf("failover replay discarded %v frames, want >= 1", v)
	}
	if v := g.Metric(mCompleted); v != 1 {
		t.Fatalf("completed = %v, want 1", v)
	}

	// The dead worker is deregistered in the node table.
	waitFor(t, "victim marked dead", func() bool {
		return nodeByName(t, g, victim.name).State == "dead"
	})
}

// TestDeltaFailoverGolden: a delta-encoded stream survives its worker
// dying mid-chain. Rendering is deterministic, so the replacement
// worker's replayed chain reproduces the dead worker's payload bytes
// exactly; the gateway decodes every part — including the replays its
// dedup discards — to keep its verification chain aligned, and the
// client's decode of the spliced stream is byte-identical to a
// single-node raw run.
func TestDeltaFailoverGolden(t *testing.T) {
	kills := make(map[string]*killable)
	var urls []string
	for i := 0; i < 3; i++ {
		var k *killable
		_, ts := newWorker(t, func(h http.Handler) http.Handler {
			k = &killable{h: h}
			return k
		})
		name := strings.TrimPrefix(ts.URL, "http://")
		kills[name] = k
		urls = append(urls, ts.URL)
	}
	g, gts := newTestGateway(t, urls, nil)

	const frames, w, h = 10, 64, 48
	spec := map[string]any{"mode": "render", "camera": "dwell", "frames": frames,
		"width": w, "height": h, "pipelines": 2, "seed": int64(7)}
	jspec := serve.JobSpec{Mode: "render", Camera: serve.CameraDwell, Frames: frames,
		Width: w, Height: h, Pipelines: 2, Seed: 7}
	jspec.Normalize()
	victim, _ := g.reg.pick(affinityKey(jspec), nil, int64(g.cfg.AffinitySlack))
	if victim == nil {
		t.Fatal("no pick on an idle fleet")
	}
	kills[victim.name].killAfterFrames.Store(4)

	payloads, headers, summary := readDeltaStream(t, postJobDelta(t, gts.URL, spec))
	if len(payloads) != frames {
		t.Fatalf("relayed %d frames, want %d", len(payloads), frames)
	}
	if summary["worker"] == victim.name {
		t.Fatalf("summary credits the killed worker %s", victim.name)
	}
	if fo, _ := summary["failovers"].(float64); fo < 1 {
		t.Fatalf("summary failovers = %v, want >= 1", summary["failovers"])
	}

	// Decode the client-side chain; the relayed digest headers must match
	// the decoded pixels even across the failover splice.
	decoded := make([][]byte, frames)
	prev := make([]byte, w*h*4)
	for f := 0; f < frames; f++ {
		hd := headers[f]
		if ct := hd["Content-Type"]; ct != serve.DeltaContentType {
			t.Fatalf("frame %d content type %q, want %q", f, ct, serve.DeltaContentType)
		}
		raw, err := codec.FrameDeltaDecode(prev, payloads[f], w, h)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if got, want := serve.FrameDigest(raw), hd["X-Frame-Digest"]; want == "" || got != want {
			t.Fatalf("frame %d decoded digest %s, relayed header says %q", f, got, want)
		}
		decoded[f] = raw
		prev = raw
	}

	// Golden: pixels identical to a single-node raw run of the same spec.
	_, single := newWorker(t, nil)
	golden, _ := readStream(t, postJob(t, single.URL, spec))
	if len(golden) != frames {
		t.Fatalf("single node served %d frames, want %d", len(golden), frames)
	}
	for f := 0; f < frames; f++ {
		img, err := frame.ReadPNG(bytes.NewReader(golden[f]))
		if err != nil {
			t.Fatalf("golden frame %d: %v", f, err)
		}
		if !bytes.Equal(img.Pix, decoded[f]) {
			t.Fatalf("frame %d: decoded delta differs from single-node raw pixels", f)
		}
	}
	if v := g.Metric(mFramesDiscarded); v < 1 {
		t.Fatalf("failover replay discarded %v frames, want >= 1", v)
	}
}

// TestDrainingWorker: a worker that begins draining stops receiving new
// jobs once the health check flips, but its in-flight job streams to
// completion through the gateway.
func TestDrainingWorker(t *testing.T) {
	type worker struct {
		srv  *serve.Server
		gate *gate
		name string
	}
	var workers []*worker
	var urls []string
	for i := 0; i < 3; i++ {
		w := &worker{}
		srv, ts := newWorker(t, func(h http.Handler) http.Handler {
			w.gate = newGate(h)
			return w.gate
		})
		w.srv = srv
		w.name = strings.TrimPrefix(ts.URL, "http://")
		workers = append(workers, w)
		urls = append(urls, ts.URL)
	}
	g, gts := newTestGateway(t, urls, nil)

	spec := map[string]any{"mode": "render", "frames": 4, "width": 64, "height": 48, "pipelines": 2, "seed": int64(3)}
	jspec := serve.JobSpec{Mode: "render", Frames: 4, Width: 64, Height: 48, Pipelines: 2, Seed: 3}
	jspec.Normalize()
	picked, _ := g.reg.pick(affinityKey(jspec), nil, int64(g.cfg.AffinitySlack))
	var held *worker
	for _, w := range workers {
		if w.name == picked.name {
			held = w
		}
	}
	if held == nil {
		t.Fatalf("picked worker %s not found", picked.name)
	}
	held.gate.armed.Store(true)
	release := func() {
		held.gate.armed.Store(false)
		select {
		case <-held.gate.release:
		default:
			close(held.gate.release)
		}
	}
	defer release()

	// Hold a job in flight on the picked worker.
	type streamResult struct {
		frames  map[int][]byte
		summary map[string]any
	}
	done := make(chan streamResult, 1)
	go func() {
		frames, summary := readStream(t, postJob(t, gts.URL, spec))
		done <- streamResult{frames, summary}
	}()
	<-held.gate.started

	// The worker begins draining; the gateway notices on its next poll.
	held.srv.BeginDrain()
	waitFor(t, "gateway to see the drain", func() bool {
		return nodeByName(t, g, held.name).State == "draining"
	})

	// New jobs (including the same spec that rendezvous-prefers the
	// draining worker) all route elsewhere.
	for seed := int64(10); seed < 14; seed++ {
		s := map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 2, "seed": seed}
		if _, sum := readStream(t, postJob(t, gts.URL, s)); sum["worker"] == held.name {
			t.Fatalf("draining worker %s received a new job", held.name)
		}
	}
	if _, sum := readStream(t, postJob(t, gts.URL, spec)); sum["worker"] == held.name {
		t.Fatalf("draining worker %s received its rendezvous-preferred spec", held.name)
	}
	if jobs := nodeByName(t, g, held.name).Jobs; jobs != 1 {
		t.Fatalf("draining worker routed-jobs count %d, want 1 (the held job)", jobs)
	}

	// The in-flight job finishes cleanly through the gateway.
	release()
	res := <-done
	if len(res.frames) != 4 {
		t.Fatalf("held job relayed %d frames, want 4", len(res.frames))
	}
	if res.summary["worker"] != held.name {
		t.Fatalf("held job finished on %v, want %s", res.summary["worker"], held.name)
	}
	if _, failedOver := res.summary["failovers"]; failedOver {
		t.Fatal("held job should not have failed over")
	}
}

// TestDeadWorkerRejoin: a dead worker keeps being probed and rejoins the
// rotation on the first successful health check.
func TestDeadWorkerRejoin(t *testing.T) {
	var k *killable
	_, ts := newWorker(t, func(h http.Handler) http.Handler {
		k = &killable{h: h}
		return k
	})
	name := strings.TrimPrefix(ts.URL, "http://")
	g, gts := newTestGateway(t, []string{ts.URL}, func(c *Config) { c.FailAfter = 2 })

	waitFor(t, "initial healthy state", func() bool {
		return nodeByName(t, g, name).State == "healthy"
	})
	k.dead.Store(true)
	waitFor(t, "death after consecutive probe failures", func() bool {
		return nodeByName(t, g, name).State == "dead"
	})
	if v := g.Metric(deathKey(name)); v != 1 {
		t.Fatalf("death metric %v, want 1", v)
	}
	resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job against a dead fleet got %d, want 503", resp.StatusCode)
	}

	k.dead.Store(false)
	waitFor(t, "rejoin", func() bool {
		return nodeByName(t, g, name).State == "healthy"
	})
	frames, sum := readStream(t, postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1}))
	if len(frames) != 1 || sum["worker"] != name {
		t.Fatalf("rejoined worker did not serve: frames %d, worker %v", len(frames), sum["worker"])
	}
}

// TestSimulateThroughGateway: simulate jobs are forwarded buffered.
func TestSimulateThroughGateway(t *testing.T) {
	_, ts := newWorker(t, nil)
	_, gts := newTestGateway(t, []string{ts.URL}, nil)
	resp := postJob(t, gts.URL, map[string]any{"mode": "simulate", "frames": 4, "width": 64, "height": 64, "pipelines": 2})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d: %s", resp.StatusCode, body)
	}
	var sim struct {
		Seconds float64 `json:"seconds"`
	}
	if err := json.Unmarshal(body, &sim); err != nil || sim.Seconds <= 0 {
		t.Fatalf("bad simulate reply %s (err %v)", body, err)
	}
}

// TestInvalidSpecRelayed: a worker's 4xx verdict is relayed verbatim and
// never counts against the worker or the retry budget.
func TestInvalidSpecRelayed(t *testing.T) {
	_, ts := newWorker(t, nil)
	name := strings.TrimPrefix(ts.URL, "http://")
	g, gts := newTestGateway(t, []string{ts.URL}, nil)
	resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": -1})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec got %d: %s", resp.StatusCode, body)
	}
	if v := g.Metric(retryKey(name)); v != 0 {
		t.Fatalf("invalid spec consumed %v retries", v)
	}
	waitFor(t, "worker stays healthy", func() bool {
		return nodeByName(t, g, name).State == "healthy"
	})
}

// TestFleetMetricsAggregation: the gateway's /metrics carries its own
// sccgate_* families plus every worker's samples re-labeled, with
// HELP/TYPE lines deduplicated across workers.
func TestFleetMetricsAggregation(t *testing.T) {
	var urls, names []string
	for i := 0; i < 2; i++ {
		_, ts := newWorker(t, nil)
		urls = append(urls, ts.URL)
		names = append(names, strings.TrimPrefix(ts.URL, "http://"))
	}
	_, gts := newTestGateway(t, urls, nil)
	readStream(t, postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1}))

	resp, err := http.Get(gts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE sccgate_jobs_accepted_total counter",
		"sccgate_jobs_accepted_total 1",
		"sccgate_frames_relayed_total 1",
		`sccgate_worker_jobs_total{worker="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("gateway metrics missing %q", want)
		}
	}
	for _, name := range names {
		if !strings.Contains(text, `sccserve_uptime_seconds{worker="`+name+`"}`) {
			t.Errorf("aggregation missing worker %s sample\n%s", name, text)
		}
	}
	if n := strings.Count(text, "# HELP sccserve_uptime_seconds "); n != 1 {
		t.Errorf("HELP for sccserve_uptime_seconds appears %d times, want 1", n)
	}
	// The worker that served the job shows per-worker labeled busy time.
	if !strings.Contains(text, `sccserve_job_busy_seconds_total{worker="`) {
		t.Errorf("aggregation missing per-worker job busy time\n%s", text)
	}
}

// TestGatewayDrain: a draining gateway rejects new jobs with 503.
func TestGatewayDrain(t *testing.T) {
	_, ts := newWorker(t, nil)
	g, gts := newTestGateway(t, []string{ts.URL}, nil)
	g.BeginDrain()
	resp := postJob(t, gts.URL, map[string]any{"mode": "render", "frames": 1, "width": 64, "height": 48, "pipelines": 1})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining gateway admitted a job: %d", resp.StatusCode)
	}
	hz, err := http.Get(gts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
	}
	err = json.NewDecoder(hz.Body).Decode(&h)
	hz.Body.Close()
	if err != nil || h.Status != "draining" {
		t.Fatalf("healthz status %q (err %v), want draining", h.Status, err)
	}
}
