// Package fleet is the distributed render fabric: a gateway that shards
// render jobs across a fleet of sccserved worker nodes, one level above
// the paper's on-chip macro pipeline. Each worker is treated as one big
// "pipeline" that can die — the gateway health-checks the static worker
// set, routes each job to the least-loaded healthy node (with rendezvous
// hashing on the job spec as the tie-break, so identical specs stay
// cache-warm on one worker), fails a job over to another node when a
// worker dies mid-stream (reusing faults.RecoveryPolicy's retry budget
// and backoff semantics, and PR 4's rule that client-caused failures
// never count against a backend), and aggregates the whole fleet's
// Prometheus metrics with per-worker labels.
//
// Because rendering is deterministic, failover is exact: the gateway
// resubmits the job to a surviving worker and discards the frames it
// already relayed (each frame part carries its index), so the client's
// stream carries the same frame payload bytes as a single-node run no
// matter how many workers died along the way.
//
// Endpoints:
//
//	POST /jobs     submit a job (serve.JobSpec JSON); routed to a worker
//	GET  /healthz  gateway liveness + fleet state summary
//	GET  /nodes    per-worker table: state, load, version, routing counts
//	GET  /metrics  gateway metrics + fleet-wide worker metrics (labeled)
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"mime/multipart"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sccpipe/internal/codec"
	"sccpipe/internal/faults"
	"sccpipe/internal/host"
	"sccpipe/internal/netfaults"
	"sccpipe/internal/serve"
	"sccpipe/internal/stats"
)

// Config tunes a fleet gateway. At least one of a static worker list or
// enabled dynamic registration is required; every field defaults as
// noted.
type Config struct {
	// Workers is the static list of worker base URLs (e.g.
	// "http://10.0.0.2:8344"); a bare host:port implies http. It may be
	// empty when dynamic registration (LeaseTTL) is enabled — the fleet
	// then populates itself through POST /register.
	Workers []string

	// HealthInterval is the per-node health-check period (default 2s);
	// HealthTimeout bounds each check (default 1s). Probes of one node
	// never overlap — a check that outlives the interval simply delays
	// the next one — so the timeout may exceed the interval: fast
	// cadence with a tolerant deadline is a valid combination.
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// FailAfter is how many consecutive health-check or job-forward
	// failures deregister a worker (default 3). Dead workers keep being
	// probed and rejoin on the first success.
	FailAfter int

	// Retry tunes job failover: MaxRetries is the per-job budget of
	// worker attempts beyond the first, and Backoff/MaxBackoff/Seed drive
	// the same deterministic backoff schedule the in-pipeline supervisor
	// uses. Nil takes faults.RecoveryPolicy defaults. OnEvent, when set,
	// receives an EventRetry per failover (Stage is the failed worker).
	Retry *faults.RecoveryPolicy

	// DrainTimeout bounds how long ListenAndServe waits for in-flight
	// jobs after its context is cancelled (default 30s).
	DrainTimeout time.Duration

	// LeaseTTL enables dynamic membership: workers may POST /register
	// and hold a lease of this length, renewed by heartbeats or
	// successful health probes (default 15s; negative disables
	// /register). A dynamic worker whose lease lapses is evicted through
	// the same dead/rejoin path probe failures use.
	LeaseTTL time.Duration
	// ForgetAfter is how long past lease expiry a dead dynamic worker
	// stays in the registry (still probed, visible in /nodes) before
	// being removed entirely (default 10×LeaseTTL).
	ForgetAfter time.Duration

	// QueueDepth bounds the gateway-side admission queue used when every
	// healthy worker is at capacity (default 16; negative disables
	// queueing, restoring the instant-429 behavior). Queued jobs whose
	// client deadline can no longer be met are shed early.
	QueueDepth int

	// StreamTimeoutMin/Max clamp the adaptive per-worker stream timeout:
	// a worker whose next frame takes longer than ~4× its observed p95
	// frame inter-arrival time (bounded by these) is treated as failed
	// and the job fails over — a trickling worker is dropped as
	// decisively as a dead one. Defaults 1s and 30s; StreamTimeoutMax < 0
	// disables the watchdog.
	StreamTimeoutMin time.Duration
	StreamTimeoutMax time.Duration

	// AffinitySlack tunes spec-affinity routing: the rendezvous winner for
	// a job's affinity key (the worker whose render cache is warm for that
	// content) is preferred as long as it carries at most this many more
	// jobs than the least-loaded healthy worker. 0 takes the default of 1;
	// negative disables the preference (pure least-loaded routing with
	// rendezvous tie-break, the pre-affinity behavior).
	AffinitySlack int

	// NetFaults, when set, injects this seeded deterministic network
	// fault plan into all gateway→worker traffic (the sccgated -chaos
	// flag). Probabilistic rules touch only forwarded jobs; partitions
	// sever probes too. The fault epoch advances once per accepted job.
	NetFaults *netfaults.Plan

	// Log receives gateway events (worker deaths, failovers); nil
	// disables logging.
	Log *log.Logger
}

func (c *Config) fillDefaults() {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.ForgetAfter <= 0 {
		c.ForgetAfter = 10 * c.LeaseTTL
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.AffinitySlack == 0 {
		c.AffinitySlack = 1
	}
	if c.StreamTimeoutMin <= 0 {
		c.StreamTimeoutMin = time.Second
	}
	if c.StreamTimeoutMax == 0 {
		c.StreamTimeoutMax = 30 * time.Second
	}
}

// Gateway shards jobs across registered workers. Create one with New,
// call Start to launch the health loops (ListenAndServe does both), and
// Close to stop them. It implements http.Handler.
type Gateway struct {
	cfg   Config
	reg   *registry
	retry faults.RecoveryPolicy
	mux   *http.ServeMux
	m     *stats.Counters

	// jobs is the streaming client used for forwarded jobs (no overall
	// timeout — streams are long-lived and context-bound); health is the
	// short-deadline client used by probes and metric scrapes. chaos,
	// when chaos mode is on, is the netfaults transport both share.
	jobs   *http.Client
	health *http.Client
	chaos  *netfaults.Transport

	draining atomic.Bool
	inflight sync.WaitGroup

	loops     sync.WaitGroup
	loopMu    sync.Mutex
	running   bool
	stop      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once

	// Admission queue state (queue.go): qdepth jobs are parked waiting
	// for fleet capacity; wake is closed-and-swapped on capacity changes;
	// svcTimes windows observed job service times for honest Retry-After
	// and deadline shedding.
	qmu      sync.Mutex
	qdepth   int
	wake     chan struct{}
	svcTimes *stats.Window

	start time.Time
}

// New builds a Gateway over the configured worker set. The worker list
// is validated here; health states converge once Start runs the first
// probes (nodes start healthy, so routing works immediately and the
// failover path covers any worker that was already down).
func New(cfg Config) (*Gateway, error) {
	cfg.fillDefaults()
	reg, err := newRegistry(cfg.Workers)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:      cfg,
		reg:      reg,
		retry:    cfg.Retry.Normalize(),
		m:        stats.NewCounters(),
		jobs:     &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}},
		health:   &http.Client{Timeout: cfg.HealthTimeout, Transport: &http.Transport{MaxIdleConnsPerHost: 2}},
		stop:     make(chan struct{}),
		wake:     make(chan struct{}),
		svcTimes: stats.NewWindow(64),
		start:    time.Now(),
	}
	if !g.registrationEnabled() && len(reg.snapshot()) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured and dynamic registration is disabled")
	}
	if cfg.NetFaults != nil {
		// One shared transport: partitions sever probes and forwards
		// alike, and the per-host request sequence stays one stream.
		g.chaos, err = netfaults.New(*cfg.NetFaults, g.jobs.Transport)
		if err != nil {
			return nil, err
		}
		g.jobs.Transport = g.chaos
		g.health = &http.Client{Timeout: cfg.HealthTimeout, Transport: g.chaos}
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("/jobs", g.handleJobs)
	g.mux.HandleFunc("/register", g.handleRegister)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/nodes", g.handleNodes)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	return g, nil
}

// Start launches one health loop per worker plus the lease sweeper
// (idempotent). Workers registered later get their loops from
// handleRegister.
func (g *Gateway) Start() {
	g.startOnce.Do(func() {
		g.loopMu.Lock()
		g.running = true
		for _, n := range g.reg.snapshot() {
			g.startLoopLocked(n)
		}
		if g.registrationEnabled() {
			g.loops.Add(1)
			go g.leaseLoop(g.stop)
		}
		g.loopMu.Unlock()
	})
}

// Close stops the health loops and releases idle connections
// (idempotent). In-flight relayed jobs are not interrupted.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.loops.Wait()
	if t, ok := g.jobs.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
	if t, ok := g.health.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// ServeHTTP dispatches to the gateway endpoints.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// BeginDrain stops job admission: submissions get 503 and /healthz flips
// to draining. In-flight relays are unaffected.
func (g *Gateway) BeginDrain() { g.draining.Store(true) }

// Drain blocks until every admitted job relay has finished or ctx ends.
func (g *Gateway) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() { g.inflight.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: drain incomplete: %w", ctx.Err())
	}
}

// ListenAndServe serves on addr until ctx is cancelled, then drains:
// admission closes, in-flight relays finish bounded by DrainTimeout, the
// health loops stop, and the listener shuts down. ready, if non-nil, is
// called with the bound address before serving.
func (g *Gateway) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	g.Start()
	defer g.Close()
	if ready != nil {
		ready(ln.Addr())
	}
	hs := &http.Server{Handler: g}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	g.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), g.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close() // drain window expired: sever what is left mid-stream
	}
	<-errc
	return nil
}

// logf logs one line if logging is configured.
func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Log != nil {
		g.cfg.Log.Printf(format, args...)
	}
}

// reject records a refused submission and writes the error response.
func (g *Gateway) reject(w http.ResponseWriter, status int, reason, msg string) {
	g.m.Inc(mRejected + `{reason="` + reason + `"}`)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, msg, status)
}

// affinityKey canonicalizes the fields of a normalized job spec that
// determine its RENDERED content — the frames a worker's content-addressed
// render cache would hold for it — into the rendezvous key. Seed and the
// scratch options are deliberately excluded: they only drive the
// post-render filter stages, so seed-varied repeats of a walkthrough still
// share every cached pre-filter frame and belong on the same cache-warm
// worker. The camera path, geometry, frame count, and strip decomposition
// (pipelines × renderer scenario) all change which frames get rendered,
// so they are all part of the key.
func affinityKey(spec serve.JobSpec) uint64 {
	return fnv64a(fmt.Sprintf("%s|%d|%dx%d|%d|%s|%s|%s",
		spec.Mode, spec.Frames, spec.Width, spec.Height, spec.Pipelines,
		spec.Renderer, spec.Arrangement, spec.Camera))
}

// pick routes one job placement decision through the registry and records
// the affinity verdict in the gate metrics.
func (g *Gateway) pick(key uint64, excluded map[string]bool) *node {
	n, verdict := g.reg.pick(key, excluded, int64(g.cfg.AffinitySlack))
	switch verdict {
	case pickAffine:
		g.m.Inc(mAffinityRouted)
	case pickOverridden:
		g.m.Inc(mAffinityOverridden)
	}
	return n
}

// hasEligible reports whether any node is currently routable for the key
// (an eligibility probe only — no routing metrics recorded).
func (g *Gateway) hasEligible(key uint64, excluded map[string]bool) bool {
	n, _ := g.reg.pick(key, excluded, int64(g.cfg.AffinitySlack))
	return n != nil
}

func (g *Gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a JobSpec to /jobs", http.StatusMethodNotAllowed)
		return
	}
	if g.draining.Load() {
		g.reject(w, http.StatusServiceUnavailable, "draining", "gateway is draining")
		return
	}
	// The original body bytes are forwarded verbatim (so worker-side
	// semantics like "the client did not pin a pipeline count" survive
	// the hop); the decoded copy only feeds validation and the route key.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		g.reject(w, http.StatusBadRequest, "invalid", "bad job body: "+err.Error())
		return
	}
	var spec serve.JobSpec
	if len(body) > 0 {
		if err := json.Unmarshal(body, &spec); err != nil {
			g.reject(w, http.StatusBadRequest, "invalid", "bad job spec: "+err.Error())
			return
		}
	}
	spec.Normalize()
	// Stream-encoding negotiation is validated here (the gateway must be
	// able to decode every part it verifies) and forwarded to workers.
	encoding := r.Header.Get(serve.FrameEncodingHeader)
	switch encoding {
	case "", serve.FrameEncodingRaw, serve.FrameEncodingDelta:
	default:
		g.reject(w, http.StatusBadRequest, "invalid",
			fmt.Sprintf("unknown %s %q (want %s or %s)", serve.FrameEncodingHeader,
				encoding, serve.FrameEncodingRaw, serve.FrameEncodingDelta))
		return
	}
	g.inflight.Add(1)
	defer g.inflight.Done()
	g.m.Inc(mAccepted)
	if g.chaos != nil {
		// The fault epoch ticks per accepted job, so partition=HOST@E
		// rules activate at a deterministic point in the job sequence.
		g.chaos.Advance()
	}
	// The client's declared deadline drives queue shedding: a queued job
	// that can no longer finish in time is evicted, not served late.
	var deadline time.Time
	if spec.TimeoutMS > 0 {
		deadline = time.Now().Add(time.Duration(spec.TimeoutMS) * time.Millisecond)
	}
	if spec.Mode == serve.ModeSimulate {
		g.relayBuffered(r.Context(), w, body, affinityKey(spec), deadline)
		return
	}
	g.relayRender(r.Context(), w, body, spec, encoding, deadline)
}

// relay outcomes: how one forwarding attempt ended.
const (
	relayDone       = iota // summary delivered; job complete
	relayClientGone        // downstream client vanished or its ctx ended
	relayClientBad         // worker rejected the spec 4xx; relayed, final
	relayBusy              // worker full/draining; try another, no blame
	relayWorkerErr         // worker-caused failure; blame + failover
)

type relayResult struct {
	kind   int
	err    error
	status int // for relayClientBad/relayBusy: the worker's HTTP status
}

// merged unions two exclusion maps for pick.
func merged(a, b map[string]bool) map[string]bool {
	if len(b) == 0 {
		return a
	}
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// relayRender forwards a render job with mid-job failover. Frames
// already relayed are skipped on retry (the worker replays the job from
// frame zero; payloads are deterministic), so the client's stream is
// seamless across worker deaths — including delta-encoded streams: a
// failover replacement's replayed delta chain reproduces the exact
// payload bytes of the dead worker's, so the client's decode chain never
// notices the splice. When the whole fleet is busy the job waits in the
// gateway's bounded admission queue instead of bouncing; when every
// healthy worker has already failed this job once, the exclusion set
// wraps around (a transient network fault is no reason to give up while
// the retry budget lasts).
func (g *Gateway) relayRender(ctx context.Context, w http.ResponseWriter, body []byte, spec serve.JobSpec, encoding string, deadline time.Time) {
	key := affinityKey(spec)
	st := newRelayStream(w)
	failed := make(map[string]bool) // workers that faulted during this job
	busy := make(map[string]bool)   // workers that answered 429/503 this cycle
	lastSent := -1
	retries, sawBusy, queued := 0, false, false
	var started time.Time
	leaveQueue := func(reason string) {
		if queued {
			g.queueExit(reason)
			queued = false
		}
	}
	defer leaveQueue("")
	for {
		n := g.pick(key, merged(failed, busy))
		if n == nil {
			if len(failed) > 0 && retries <= g.retry.MaxRetries && g.hasEligible(key, busy) {
				// Every healthy non-busy worker already failed this job once;
				// wrap around and re-attempt them rather than failing the job.
				failed = make(map[string]bool)
				continue
			}
			if st.Started() {
				st.CloseWithError(errors.New("no healthy worker available to finish the job"))
				g.m.Inc(mFailed)
				return
			}
			if !sawBusy {
				g.reject(w, http.StatusServiceUnavailable, "no_workers", "no healthy worker available")
				return
			}
			if !queued {
				if !g.queueEnter() {
					g.rejectBusy(w, "queue_full", "every worker is at capacity and the gateway queue is full")
					return
				}
				queued = true
			}
			switch g.queueWait(ctx, deadline) {
			case waitClientGone:
				leaveQueue("client_gone")
				g.m.Inc(mClientGone)
				return
			case waitDeadline:
				leaveQueue("deadline")
				g.rejectBusy(w, "deadline", "the job's deadline cannot be met at current fleet load")
				return
			}
			// Capacity plausibly changed: busy verdicts are stale now.
			busy = make(map[string]bool)
			sawBusy = false
			continue
		}
		leaveQueue("")
		if started.IsZero() {
			started = time.Now()
		}
		n.live.Add(1)
		n.jobs.Add(1)
		g.m.Inc(workerJobsKey(n.name))
		res := g.streamFrom(ctx, n, body, spec, encoding, st, &lastSent, retries)
		n.live.Add(-1)
		g.capacityChanged()
		switch res.kind {
		case relayDone:
			g.m.Inc(mCompleted)
			g.svcTimes.Add(time.Since(started).Seconds())
			return
		case relayClientGone:
			// PR 4 rule, one level up: the client went away — says nothing
			// about the worker, so no blame and no retry.
			g.m.Inc(mClientGone)
			return
		case relayClientBad:
			g.m.Inc(mRejected + `{reason="worker_rejected"}`)
			return
		case relayBusy:
			sawBusy = true
			busy[n.name] = true
		case relayWorkerErr:
			failed[n.name] = true
			g.noteWorkerFailure(n, res.err.Error())
		}
		if res.kind == relayBusy {
			// Not an attempt against the retry budget: the worker refused
			// cleanly before doing any work.
			continue
		}
		retries++
		if retries > g.retry.MaxRetries {
			g.m.Inc(mFailed)
			err := fmt.Errorf("job failed after %d worker attempts: %v", retries, res.err)
			g.logf("%v", err)
			if st.Started() {
				st.CloseWithError(err)
			} else {
				http.Error(w, err.Error(), http.StatusBadGateway)
			}
			return
		}
		g.m.Inc(retryKey(n.name))
		g.retry.Notify(faults.Event{Kind: faults.EventRetry, Stage: n.name, Reason: res.err.Error()})
		g.logf("failover: worker %s failed mid-job (%v), retry %d/%d after %d frames",
			n.name, res.err, retries, g.retry.MaxRetries, lastSent+1)
		if !sleepCtx(ctx, g.retry.RetryBackoff(0, n.name, 0, retries)) {
			g.m.Inc(mClientGone)
			return
		}
	}
}

// streamTimeout is the adaptive per-attempt stall budget for a worker:
// 4× its observed p95 frame inter-arrival time, clamped into
// [StreamTimeoutMin, StreamTimeoutMax]. Until enough arrivals have been
// observed the full Max applies (generous, not absent), and a negative
// Max disables the watchdog entirely.
func (g *Gateway) streamTimeout(n *node) time.Duration {
	if g.cfg.StreamTimeoutMax < 0 {
		return 0
	}
	q := n.arrivals.Quantile(0.95, 8, -1)
	if q <= 0 {
		return g.cfg.StreamTimeoutMax
	}
	d := time.Duration(4 * q * float64(time.Second))
	if d < g.cfg.StreamTimeoutMin {
		d = g.cfg.StreamTimeoutMin
	}
	if d > g.cfg.StreamTimeoutMax {
		d = g.cfg.StreamTimeoutMax
	}
	return d
}

// streamFrom runs one forwarding attempt: POST the job to the node and
// relay its multipart stream, skipping frames at or below *lastSent.
// Every frame payload is read fully before being forwarded, so a worker
// dying mid-frame never emits a torn frame downstream; each payload is
// checked against its X-Frame-Digest, and per-attempt frame indices must
// be dense from zero — a wrong-indexed or corrupted frame is a worker
// fault, not something to pass downstream. A watchdog goroutine cancels
// the attempt when no progress lands within the node's adaptive stream
// timeout, so a slow-loris worker is dropped as decisively as a dead
// one. failovers is the number of prior attempts, folded into the
// summary for observability.
//
// Delta streams add one invariant: each part's digest covers the DECODED
// raw pixels, so the gateway keeps its own decode chain for the attempt
// and must decode EVERY delta part — including replayed ones the dedup
// logic discards — both to advance the chain and to verify that the bytes
// it relays reconstruct the right frame downstream. Payload bytes are
// still relayed verbatim; the decode is verification, not re-encoding.
func (g *Gateway) streamFrom(ctx context.Context, n *node, body []byte, spec serve.JobSpec, encoding string, st *relayStream, lastSent *int, failovers int) relayResult {
	attemptCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var stalled atomic.Bool
	var lastProgress atomic.Int64
	lastProgress.Store(time.Now().UnixNano())
	progress := func() { lastProgress.Store(time.Now().UnixNano()) }
	if timeout := g.streamTimeout(n); timeout > 0 {
		tick := timeout / 4
		if tick < 5*time.Millisecond {
			tick = 5 * time.Millisecond
		}
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-attemptCtx.Done():
					return
				case <-t.C:
					if time.Since(time.Unix(0, lastProgress.Load())) > timeout {
						stalled.Store(true)
						cancel()
						return
					}
				}
			}
		}()
	}
	fail := func(err error) relayResult {
		if ctx.Err() != nil {
			// The outer (client) context ended: no worker blame.
			return relayResult{kind: relayClientGone, err: ctx.Err()}
		}
		if stalled.Load() {
			g.m.Inc(stallKey(n.name))
			return relayResult{kind: relayWorkerErr,
				err: fmt.Errorf("worker %s stream stalled: no progress within the adaptive timeout", n.name)}
		}
		return relayResult{kind: relayWorkerErr, err: err}
	}
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, n.base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return relayResult{kind: relayWorkerErr, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if encoding != "" {
		req.Header.Set(serve.FrameEncodingHeader, encoding)
	}
	resp, err := g.jobs.Do(req)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return relayResult{kind: relayBusy, status: resp.StatusCode,
			err: fmt.Errorf("worker %s busy (status %d)", n.name, resp.StatusCode)}
	case resp.StatusCode >= 500:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return relayResult{kind: relayWorkerErr,
			err: fmt.Errorf("worker %s status %d: %s", n.name, resp.StatusCode, bytes.TrimSpace(msg))}
	case resp.StatusCode >= 400:
		// The worker judged the spec invalid. Before any output, relay the
		// verdict verbatim — it is the client's error, not the worker's.
		// Mid-stream (a retry after frames went out) it is incoherent:
		// the spec was accepted once, so treat it as a worker fault.
		if st.Started() {
			return relayResult{kind: relayWorkerErr,
				err: fmt.Errorf("worker %s rejected a previously-accepted spec with %d", n.name, resp.StatusCode)}
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		http.Error(st.w, string(bytes.TrimSpace(msg)), resp.StatusCode)
		return relayResult{kind: relayClientBad, status: resp.StatusCode}
	}
	mediatype, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil || !strings.HasPrefix(mediatype, "multipart/") || params["boundary"] == "" {
		return fail(fmt.Errorf("worker %s sent unexpected content type %q", n.name, resp.Header.Get("Content-Type")))
	}
	progress()
	mr := multipart.NewReader(resp.Body, params["boundary"])
	attemptPrev := -1 // the worker must stream indices dense from zero
	var chain []byte  // this attempt's decoded delta chain state
	lastFrameAt := time.Now()
	for {
		part, err := mr.NextPart()
		if err != nil {
			// Includes io.EOF: a stream that ends before the summary part
			// means the worker died mid-job.
			return fail(fmt.Errorf("worker %s stream truncated: %v", n.name, err))
		}
		switch ct := part.Header.Get("Content-Type"); ct {
		case "image/png", serve.DeltaContentType:
			idx, aerr := strconv.Atoi(part.Header.Get("X-Frame-Index"))
			if aerr != nil {
				return fail(fmt.Errorf("worker %s sent a frame without an index: %v", n.name, aerr))
			}
			if idx != attemptPrev+1 {
				// Backwards or skipped indices mean the worker's stream is
				// corrupt; failing over is the only safe answer (the dedup
				// bookkeeping below relies on dense replay, and a delta
				// chain with a hole cannot be decoded at all).
				return fail(fmt.Errorf("worker %s sent frame index %d after %d (want %d)",
					n.name, idx, attemptPrev, attemptPrev+1))
			}
			attemptPrev = idx
			payload, rerr := io.ReadAll(part)
			if rerr != nil {
				return fail(fmt.Errorf("worker %s frame %d truncated: %v", n.name, idx, rerr))
			}
			if ct == serve.DeltaContentType {
				// The geometry headers must agree with the spec the gateway
				// admitted — they bound the decode allocation.
				pw, _ := strconv.Atoi(part.Header.Get(serve.FrameWidthHeader))
				ph, _ := strconv.Atoi(part.Header.Get(serve.FrameHeightHeader))
				if pw != spec.Width || ph != spec.Height {
					return fail(fmt.Errorf("worker %s frame %d geometry %dx%d disagrees with the spec's %dx%d",
						n.name, idx, pw, ph, spec.Width, spec.Height))
				}
				if chain == nil {
					chain = make([]byte, spec.Width*spec.Height*4)
				}
				raw, derr := codec.FrameDeltaDecode(chain, payload, pw, ph)
				if derr != nil {
					return fail(fmt.Errorf("worker %s frame %d delta undecodable: %v", n.name, idx, derr))
				}
				if want := part.Header.Get("X-Frame-Digest"); want != "" {
					if got := serve.FrameDigest(raw); got != want {
						return fail(fmt.Errorf("worker %s frame %d corrupt: decoded digest %s, header says %s",
							n.name, idx, got, want))
					}
				}
				chain = raw
			} else if want := part.Header.Get("X-Frame-Digest"); want != "" {
				if got := serve.FrameDigest(payload); got != want {
					return fail(fmt.Errorf("worker %s frame %d corrupt: digest %s, header says %s",
						n.name, idx, got, want))
				}
			}
			progress()
			now := time.Now()
			n.arrivals.Add(now.Sub(lastFrameAt).Seconds())
			lastFrameAt = now
			if idx <= *lastSent {
				// Replayed during failover; the client already has it (and
				// for delta parts the chain above has already absorbed it).
				g.m.Inc(mFramesDiscarded)
				continue
			}
			if werr := st.WriteFrame(idx, ct, part.Header, payload); werr != nil {
				return relayResult{kind: relayClientGone, err: werr}
			}
			*lastSent = idx
			g.m.Inc(mFramesRelayed)
		case "application/json":
			progress()
			raw, rerr := io.ReadAll(part)
			if rerr != nil {
				return fail(fmt.Errorf("worker %s summary truncated: %v", n.name, rerr))
			}
			var sum map[string]any
			if jerr := json.Unmarshal(raw, &sum); jerr != nil {
				return fail(fmt.Errorf("worker %s sent a bad summary: %v", n.name, jerr))
			}
			if errMsg, ok := sum["error"]; ok {
				// The worker's own run failed mid-stream; another worker can
				// still finish the job.
				return fail(fmt.Errorf("worker %s job error: %v", n.name, errMsg))
			}
			sum["worker"] = n.name
			if failovers > 0 {
				sum["failovers"] = failovers
			}
			if werr := st.CloseWithSummary(sum); werr != nil {
				return relayResult{kind: relayClientGone, err: werr}
			}
			return relayResult{kind: relayDone}
		default:
			io.Copy(io.Discard, part) // unknown part kind: skip
		}
	}
}

// relayBuffered forwards a simulate job: the response is small JSON, so
// failover is a plain buffered retry with no dedup concerns. Busy fleets
// queue and wrap-around retry work the same as for render jobs.
func (g *Gateway) relayBuffered(ctx context.Context, w http.ResponseWriter, body []byte, key uint64, deadline time.Time) {
	failed := make(map[string]bool)
	busy := make(map[string]bool)
	retries, sawBusy, queued := 0, false, false
	var started time.Time
	var lastErr error
	leaveQueue := func(reason string) {
		if queued {
			g.queueExit(reason)
			queued = false
		}
	}
	defer leaveQueue("")
	for {
		n := g.pick(key, merged(failed, busy))
		if n == nil {
			if len(failed) > 0 && retries <= g.retry.MaxRetries && g.hasEligible(key, busy) {
				failed = make(map[string]bool)
				continue
			}
			if !sawBusy {
				g.reject(w, http.StatusServiceUnavailable, "no_workers", "no healthy worker available")
				return
			}
			if !queued {
				if !g.queueEnter() {
					g.rejectBusy(w, "queue_full", "every worker is at capacity and the gateway queue is full")
					return
				}
				queued = true
			}
			switch g.queueWait(ctx, deadline) {
			case waitClientGone:
				leaveQueue("client_gone")
				g.m.Inc(mClientGone)
				return
			case waitDeadline:
				leaveQueue("deadline")
				g.rejectBusy(w, "deadline", "the job's deadline cannot be met at current fleet load")
				return
			}
			busy = make(map[string]bool)
			sawBusy = false
			continue
		}
		leaveQueue("")
		if started.IsZero() {
			started = time.Now()
		}
		n.live.Add(1)
		n.jobs.Add(1)
		g.m.Inc(workerJobsKey(n.name))
		kind, err := g.forwardOnce(ctx, n, body, w)
		n.live.Add(-1)
		g.capacityChanged()
		switch kind {
		case relayDone:
			g.m.Inc(mCompleted)
			g.svcTimes.Add(time.Since(started).Seconds())
			return
		case relayClientGone:
			g.m.Inc(mClientGone)
			return
		case relayClientBad:
			g.m.Inc(mRejected + `{reason="worker_rejected"}`)
			return
		case relayBusy:
			sawBusy = true
			busy[n.name] = true
			continue
		case relayWorkerErr:
			failed[n.name] = true
			g.noteWorkerFailure(n, err.Error())
		}
		lastErr = err
		retries++
		if retries > g.retry.MaxRetries {
			g.m.Inc(mFailed)
			http.Error(w, fmt.Sprintf("job failed after %d worker attempts: %v", retries, lastErr),
				http.StatusBadGateway)
			return
		}
		g.m.Inc(retryKey(n.name))
		g.retry.Notify(faults.Event{Kind: faults.EventRetry, Stage: n.name, Reason: err.Error()})
		if !sleepCtx(ctx, g.retry.RetryBackoff(0, n.name, 0, retries)) {
			g.m.Inc(mClientGone)
			return
		}
	}
}

// forwardOnce runs one buffered forwarding attempt.
func (g *Gateway) forwardOnce(ctx context.Context, n *node, body []byte, w http.ResponseWriter) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return relayWorkerErr, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.jobs.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return relayClientGone, ctx.Err()
		}
		return relayWorkerErr, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		if ctx.Err() != nil {
			return relayClientGone, ctx.Err()
		}
		return relayWorkerErr, fmt.Errorf("worker %s reply truncated: %v", n.name, err)
	}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return relayBusy, fmt.Errorf("worker %s busy (status %d)", n.name, resp.StatusCode)
	case resp.StatusCode >= 500:
		return relayWorkerErr, fmt.Errorf("worker %s status %d: %s", n.name, resp.StatusCode, bytes.TrimSpace(payload))
	case resp.StatusCode >= 400:
		http.Error(w, string(bytes.TrimSpace(payload)), resp.StatusCode)
		return relayClientBad, nil
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if _, err := w.Write(payload); err != nil {
		return relayClientGone, err
	}
	return relayDone, nil
}

// sleepCtx sleeps d unless ctx ends first; reports whether it completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Version reports the gateway's own build identity (host.BuildVersion).
func Version() string { return host.BuildVersion() }
