package fleet

import (
	"encoding/json"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
)

// relayStream writes the gateway's response to a render job: a multipart
// stream with the same part shape the workers produce (one frame part —
// image/png or application/x-scc-delta — per frame carrying
// X-Frame-Index and its digest/geometry headers, then one
// application/json summary part), re-framed under the gateway's own
// boundary. Because frame payloads are relayed byte for byte and
// deduplicated by index across failover attempts, the part sequence a
// client sees through the gateway is byte-identical to a single-node run
// even when the serving worker dies mid-job.
//
// Like serve's frameStream, the response is committed lazily at the first
// frame so a job that fails before producing anything still gets a plain
// HTTP error status. Not safe for concurrent use.
type relayStream struct {
	w       http.ResponseWriter
	flusher http.Flusher
	mw      *multipart.Writer
	err     error
}

func newRelayStream(w http.ResponseWriter) *relayStream {
	st := &relayStream{w: w}
	st.flusher, _ = w.(http.Flusher)
	return st
}

// Started reports whether the response has been committed.
func (st *relayStream) Started() bool { return st.mw != nil }

// Err returns the first downstream write failure, if any.
func (st *relayStream) Err() error { return st.err }

func (st *relayStream) start() {
	st.mw = multipart.NewWriter(st.w)
	st.w.Header().Set("Content-Type", "multipart/x-mixed-replace; boundary="+st.mw.Boundary())
	st.w.WriteHeader(http.StatusOK)
}

// relayedHeaders are the per-part headers the gateway forwards verbatim
// from the worker's frame part; clients decoding a delta stream need the
// geometry and the decoded-bytes digest just as they would talking to a
// worker directly.
var relayedHeaders = []string{"X-Frame-Digest", "X-Frame-Width", "X-Frame-Height"}

// WriteFrame relays one already-encoded frame payload to the client,
// preserving its content type and verification headers.
func (st *relayStream) WriteFrame(idx int, contentType string, src textproto.MIMEHeader, payload []byte) error {
	if st.err != nil {
		return st.err
	}
	if st.mw == nil {
		st.start()
	}
	hdr := textproto.MIMEHeader{
		"Content-Type":  {contentType},
		"X-Frame-Index": {strconv.Itoa(idx)},
	}
	for _, k := range relayedHeaders {
		if v := src.Get(k); v != "" {
			hdr.Set(k, v)
		}
	}
	part, err := st.mw.CreatePart(hdr)
	if err == nil {
		_, err = part.Write(payload)
	}
	if err != nil {
		st.err = err
		return err
	}
	if st.flusher != nil {
		st.flusher.Flush()
	}
	return nil
}

// closeWith appends the trailing JSON part and the closing boundary.
func (st *relayStream) closeWith(v any) error {
	if st.err != nil {
		return st.err
	}
	if st.mw == nil { // zero-frame success: still a valid (empty) stream
		st.start()
	}
	part, err := st.mw.CreatePart(textproto.MIMEHeader{
		"Content-Type": {"application/json"},
	})
	if err == nil {
		err = json.NewEncoder(part).Encode(v)
	}
	if err == nil {
		err = st.mw.Close()
	}
	if err != nil {
		st.err = err
		return err
	}
	if st.flusher != nil {
		st.flusher.Flush()
	}
	return nil
}

// CloseWithSummary ends a successful relay with the (augmented) worker
// summary.
func (st *relayStream) CloseWithSummary(sum map[string]any) error { return st.closeWith(sum) }

// CloseWithError ends an already-started stream with an error part — the
// only failure signal left once the 200 header is on the wire.
func (st *relayStream) CloseWithError(jobErr error) {
	_ = st.closeWith(map[string]string{"error": jobErr.Error()})
}
