package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"sccpipe/internal/serve"
)

// Lease bounds: a registration may ask for any TTL inside this range;
// requests outside it are clamped, not rejected, so an over-eager worker
// still joins with sane lease math.
const (
	minLeaseTTL = time.Second
	maxLeaseTTL = 10 * time.Minute
)

// registrationEnabled reports whether dynamic membership is on
// (Config.LeaseTTL >= 0; fillDefaults turns 0 into the default TTL).
func (g *Gateway) registrationEnabled() bool { return g.cfg.LeaseTTL > 0 }

// parseRegister validates a /register body into a node name, base URL
// and granted TTL. It is deliberately a pure function over bytes so the
// fuzz target can hammer it: inputs are size-capped, URL length is
// bounded, and the TTL is clamped into [minLeaseTTL, maxLeaseTTL].
func parseRegister(body []byte, defTTL time.Duration) (name, base string, ttl time.Duration, err error) {
	if len(body) > 4<<10 {
		return "", "", 0, fmt.Errorf("fleet: register body too large (%d bytes)", len(body))
	}
	var req serve.RegisterRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return "", "", 0, fmt.Errorf("fleet: bad register body: %v", err)
	}
	if len(req.URL) > 512 {
		return "", "", 0, fmt.Errorf("fleet: register URL too long (%d bytes)", len(req.URL))
	}
	name, base, err = parseWorkerURL(req.URL)
	if err != nil {
		return "", "", 0, err
	}
	ttl = defTTL
	if req.TTLs > 0 {
		ttl = time.Duration(req.TTLs) * time.Second
	}
	if ttl < minLeaseTTL {
		ttl = minLeaseTTL
	}
	if ttl > maxLeaseTTL {
		ttl = maxLeaseTTL
	}
	return name, base, ttl, nil
}

// handleRegister admits or renews a dynamic worker: POST /register with
// a serve.RegisterRequest body grants (or extends) a TTL lease. A new
// worker joins the rotation immediately — its health loop starts with an
// instant probe — and an existing one, static or dynamic, just has its
// lease refreshed. The response tells the worker the cadence to renew at.
func (g *Gateway) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a register request to /register", http.StatusMethodNotAllowed)
		return
	}
	if !g.registrationEnabled() {
		http.Error(w, "dynamic registration is disabled on this gateway", http.StatusForbidden)
		return
	}
	if g.draining.Load() {
		http.Error(w, "gateway is draining", http.StatusServiceUnavailable)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<10))
	if err != nil {
		http.Error(w, "bad register body: "+err.Error(), http.StatusBadRequest)
		return
	}
	name, base, ttl, err := parseRegister(body, g.cfg.LeaseTTL)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := time.Now()
	if n := g.reg.get(name); n != nil {
		n.renewLease(now, ttl)
		g.m.Inc(registerKey("renew"))
	} else {
		n := newNode(name, base, true)
		n.ttl = ttl
		n.lease = now.Add(ttl)
		if err := g.reg.add(n); err != nil {
			// Lost a race with a concurrent registration of the same name;
			// treat it as that node's renewal.
			if existing := g.reg.get(name); existing != nil {
				existing.renewLease(now, ttl)
			}
		} else {
			g.m.Inc(registerKey("new"))
			g.logf("worker %s registered (lease %v)", name, ttl)
			g.startLoop(n)
			g.capacityChanged()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(serve.RegisterResponse{
		Name:   name,
		TTLs:   int(ttl / time.Second),
		RenewS: renewCadence(ttl),
	})
}

// renewCadence is the heartbeat interval granted with a lease: a third
// of the TTL, so two renewals can be lost before the lease lapses.
func renewCadence(ttl time.Duration) int {
	s := int(ttl / (3 * time.Second))
	if s < 1 {
		s = 1
	}
	return s
}

// leaseLoop is the lease sweeper: it expires dynamic workers whose lease
// lapsed (through the same dead/deregister path consecutive probe
// failures use, so rejoin works identically) and, once a dead dynamic
// worker has been gone past ForgetAfter, removes it from the registry
// entirely — topology change as a normal event, not a restart.
func (g *Gateway) leaseLoop(stop <-chan struct{}) {
	defer g.loops.Done()
	interval := g.cfg.LeaseTTL / 4
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	if interval > 5*time.Second {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-stop:
			return
		}
		now := time.Now()
		for _, n := range g.reg.snapshot() {
			if n.expireLease(now) {
				g.m.Inc(mLeaseExpired)
				g.m.Inc(deathKey(n.name))
				g.logf("worker %s evicted: registration lease expired", n.name)
				continue
			}
			if n.forgettable(now, g.cfg.ForgetAfter) {
				if g.reg.remove(n.name) != nil {
					close(n.stopProbe)
					g.m.Inc(mForgotten)
					g.logf("worker %s forgotten (dead past the forget window)", n.name)
				}
			}
		}
	}
}
