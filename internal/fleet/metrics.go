package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"sccpipe/internal/host"
	"sccpipe/internal/stats"
)

// Gateway metric names (sccgate_*). Labeled counters append a
// `{label="value"}` suffix; stats.Counters stores the full string.
const (
	mAccepted        = "sccgate_jobs_accepted_total"
	mCompleted       = "sccgate_jobs_completed_total"
	mFailed          = "sccgate_jobs_failed_total"
	mRejected        = "sccgate_jobs_rejected_total"
	mClientGone      = "sccgate_jobs_client_gone_total"
	mWorkerJobs      = "sccgate_worker_jobs_total"
	mRetries         = "sccgate_job_retries_total"
	mWorkerDeaths    = "sccgate_worker_deaths_total"
	mFramesRelayed   = "sccgate_frames_relayed_total"
	mFramesDiscarded = "sccgate_frames_discarded_total"
	mHealthChecks    = "sccgate_health_checks_total"
	mWorkers         = "sccgate_workers"
	mUptime          = "sccgate_uptime_seconds"
	mQueued          = "sccgate_jobs_queued_total"
	mQueueDepth      = "sccgate_queue_depth"
	mQueueEvict      = "sccgate_queue_evicted_total"
	mRegistered      = "sccgate_worker_registrations_total"
	mLeaseExpired    = "sccgate_worker_leases_expired_total"
	mForgotten       = "sccgate_workers_forgotten_total"
	mStreamStalls    = "sccgate_stream_stalls_total"

	// Spec-affinity routing: how often the rendezvous-preferred (cache
	// warm) worker actually won, versus being overridden by load.
	mAffinityRouted     = "sccgate_affinity_routed_total"
	mAffinityOverridden = "sccgate_affinity_overridden_total"
)

func workerJobsKey(worker string) string { return stats.InjectLabel(mWorkerJobs, "worker", worker) }
func retryKey(worker string) string      { return stats.InjectLabel(mRetries, "worker", worker) }
func deathKey(worker string) string      { return stats.InjectLabel(mWorkerDeaths, "worker", worker) }
func healthKey(result string) string     { return stats.InjectLabel(mHealthChecks, "result", result) }
func evictKey(reason string) string      { return stats.InjectLabel(mQueueEvict, "reason", reason) }
func registerKey(kind string) string     { return stats.InjectLabel(mRegistered, "kind", kind) }
func stallKey(worker string) string      { return stats.InjectLabel(mStreamStalls, "worker", worker) }

// gateFamilies fixes the gateway section's exposition order and metadata.
var gateFamilies = []struct {
	name, kind, help string
}{
	{mAccepted, "counter", "Jobs accepted for routing."},
	{mCompleted, "counter", "Jobs whose full stream was relayed to the client."},
	{mFailed, "counter", "Jobs that failed after exhausting the failover budget."},
	{mRejected, "counter", "Jobs refused (draining, no workers, fleet busy, invalid), by reason."},
	{mClientGone, "counter", "Jobs abandoned because the client went away; never blamed on a worker."},
	{mWorkerJobs, "counter", "Jobs routed, by worker (retries of one job count per worker tried)."},
	{mRetries, "counter", "Job failovers, labeled by the worker that failed."},
	{mWorkerDeaths, "counter", "Workers declared dead after consecutive failures, by worker."},
	{mFramesRelayed, "counter", "Frame parts relayed to clients."},
	{mFramesDiscarded, "counter", "Duplicate frame parts discarded during failover replays."},
	{mHealthChecks, "counter", "Health probes, by result."},
	{mWorkers, "gauge", "Registered workers, by state."},
	{mUptime, "gauge", "Seconds since the gateway started."},
	{mQueued, "counter", "Jobs that waited in the gateway admission queue."},
	{mQueueDepth, "gauge", "Jobs currently parked in the admission queue."},
	{mQueueEvict, "counter", "Queued jobs shed before reaching a worker, by reason."},
	{mRegistered, "counter", "Dynamic worker registrations, by kind (new, renew)."},
	{mLeaseExpired, "counter", "Dynamic workers evicted because their lease lapsed."},
	{mForgotten, "counter", "Dead dynamic workers removed from the registry entirely."},
	{mStreamStalls, "counter", "Stream attempts cancelled by the adaptive stall watchdog, by worker."},
	{mAffinityRouted, "counter", "Jobs routed to the rendezvous-preferred worker for cache affinity."},
	{mAffinityOverridden, "counter", "Jobs steered away from the affine worker because its load exceeded the slack."},
}

// NodeStatus is one row of the /nodes table.
type NodeStatus struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	State string `json:"state"`
	// Live counts jobs this gateway currently has routed to the node;
	// Jobs is the running total.
	Live int64 `json:"live"`
	Jobs int64 `json:"jobs"`
	// Queue/Inflight/Capacity echo the node's last load report; BusyRate
	// is its recent busy-seconds-per-second derived from poll deltas.
	Queue    int     `json:"queue"`
	Inflight int     `json:"inflight"`
	Capacity int     `json:"capacity"`
	BusyRate float64 `json:"busy_rate"`
	// Version is the worker's build identity — mixed-fleet version skew
	// shows up here.
	Version  string `json:"version,omitempty"`
	Fails    int    `json:"fails,omitempty"`
	LastSeen string `json:"last_seen,omitempty"`
	LastErr  string `json:"last_err,omitempty"`
	// Dynamic marks a worker that joined via /register; LeaseUntil is
	// when its registration lease lapses unless renewed.
	Dynamic    bool   `json:"dynamic,omitempty"`
	LeaseUntil string `json:"lease_until,omitempty"`
}

// Nodes snapshots the per-worker table.
func (g *Gateway) Nodes() []NodeStatus {
	nodes := g.reg.snapshot()
	out := make([]NodeStatus, 0, len(nodes))
	for _, n := range nodes {
		state, rep, busyRate, fails, lastSeen, lastErr := n.snapshot()
		ns := NodeStatus{
			Name:     n.name,
			URL:      n.base,
			State:    state.String(),
			Live:     n.live.Load(),
			Jobs:     n.jobs.Load(),
			Queue:    rep.Queue,
			Inflight: rep.Inflight,
			Capacity: rep.Capacity,
			BusyRate: busyRate,
			Version:  rep.Version,
			Fails:    fails,
			LastErr:  lastErr,
			Dynamic:  n.dynamic,
		}
		if !lastSeen.IsZero() {
			ns.LastSeen = lastSeen.UTC().Format(time.RFC3339)
		}
		if lease := n.leaseSnapshot(); !lease.IsZero() {
			ns.LeaseUntil = lease.UTC().Format(time.RFC3339)
		}
		out = append(out, ns)
	}
	return out
}

// handleNodes serves the per-worker table as JSON.
func (g *Gateway) handleNodes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(g.Nodes())
}

// handleHealthz reports gateway liveness plus a fleet state summary.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	states := g.reg.countStates()
	status := "ok"
	code := http.StatusOK
	switch {
	case g.draining.Load():
		status = "draining"
		code = http.StatusServiceUnavailable
	case states[StateHealthy] == 0:
		status = "no_workers"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":           status,
		"workers":          len(g.reg.snapshot()),
		"workers_healthy":  states[StateHealthy],
		"workers_draining": states[StateDraining],
		"workers_dead":     states[StateDead],
		"uptime_s":         int64(time.Since(g.start).Seconds()),
		"version":          host.BuildVersion(),
	})
}

// handleMetrics serves the gateway's own sccgate_* families followed by
// the fleet-wide aggregation: every live worker's /metrics scraped at
// request time and re-exposed with a worker label injected into each
// sample, HELP/TYPE lines deduplicated across workers.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	g.m.Set(mUptime, time.Since(g.start).Seconds())
	for state, count := range g.reg.countStates() {
		g.m.Set(stats.InjectLabel(mWorkers, "state", state.String()), float64(count))
	}

	snap := g.m.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, fam := range gateFamilies {
		members := make([]string, 0, 2)
		for _, k := range keys {
			if k == fam.name || strings.HasPrefix(k, fam.name+"{") {
				members = append(members, k)
			}
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.kind)
		if len(members) == 0 {
			// Plain families expose explicit zeros from the first scrape;
			// labeled families stay empty until their first sample.
			switch fam.name {
			case mRejected, mWorkerJobs, mRetries, mWorkerDeaths, mHealthChecks, mWorkers,
				mQueueEvict, mRegistered, mStreamStalls:
			default:
				fmt.Fprintf(w, "%s 0\n", fam.name)
			}
			continue
		}
		for _, k := range members {
			fmt.Fprintf(w, "%s %s\n", k, formatValue(snap[k]))
		}
	}
	g.writeFleetMetrics(w)
}

// scrapedFamily accumulates one metric family across workers.
type scrapedFamily struct {
	help, typ string
	samples   []string
}

// writeFleetMetrics scrapes every non-dead worker's /metrics
// concurrently (bounded by the health client's timeout) and merges the
// results: families keep their first-seen HELP/TYPE, and every sample is
// re-keyed with the worker's name.
func (g *Gateway) writeFleetMetrics(w io.Writer) {
	type scrape struct {
		node *node
		body []byte
	}
	nodes := g.reg.snapshot()
	results := make([]scrape, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		state, _, _, _, _, _ := n.snapshot()
		if state == StateDead {
			continue
		}
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			resp, err := g.health.Get(n.base + "/metrics")
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
			if err != nil {
				return
			}
			results[i] = scrape{node: n, body: body}
		}(i, n)
	}
	wg.Wait()

	var order []string
	fams := make(map[string]*scrapedFamily)
	for _, sc := range results {
		if sc.node == nil {
			continue
		}
		mergeExposition(sc.node.name, sc.body, &order, fams)
	}
	for _, name := range order {
		fam := fams[name]
		if fam.typ != "" || fam.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, fam.help, name, fam.typ)
		}
		for _, s := range fam.samples {
			fmt.Fprintln(w, s)
		}
	}
}

// mergeExposition folds one worker's Prometheus text body into the
// family map, injecting worker=name into every sample key.
func mergeExposition(worker string, body []byte, order *[]string, fams map[string]*scrapedFamily) {
	family := func(name string) *scrapedFamily {
		f, ok := fams[name]
		if !ok {
			f = &scrapedFamily{}
			fams[name] = f
			*order = append(*order, name)
		}
		return f
	}
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue
			}
			switch fields[1] {
			case "HELP":
				f := family(fields[2])
				if f.help == "" && len(fields) == 4 {
					f.help = fields[3]
				}
			case "TYPE":
				f := family(fields[2])
				if f.typ == "" && len(fields) == 4 {
					f.typ = fields[3]
				}
			}
			continue
		}
		// Sample: "<key> <value>" where the key may carry labels. The
		// value is the last space-separated token (label values in this
		// codebase never contain spaces, and a timestamped sample would
		// still split correctly on the final token).
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			continue
		}
		key, val := line[:i], line[i+1:]
		name := key
		if j := strings.IndexByte(key, '{'); j >= 0 {
			name = key[:j]
		}
		f := family(name)
		f.samples = append(f.samples, stats.InjectLabel(key, "worker", worker)+" "+val)
	}
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Metric returns the current value of a gateway metric key (tests and
// embedders; the key is the full name including any label suffix).
func (g *Gateway) Metric(key string) float64 { return g.m.Get(key) }
