package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/core"
	"sccpipe/internal/scc"
)

// DVFSRun is one frequency plan of the §VI-D experiment.
type DVFSRun struct {
	Label      string
	Seconds    float64
	SCCEnergyJ float64
	MeanWatts  float64
	Power      []scc.PowerSample
}

// Fig16Result compares the three frequency plans of Figs. 16/17 on a
// single MCPC-fed pipeline with the blur stage isolated in its own voltage
// island (Fig. 18):
//
//	Base:     every stage at 533 MHz
//	FastBlur: blur at 800 MHz / 1.3 V
//	Mixed:    blur at 800 MHz, post-blur stages at 400 MHz / 0.7 V
type Fig16Result struct {
	Base, FastBlur, Mixed DVFSRun
}

func (r Fig16Result) String() string {
	var b strings.Builder
	b.WriteString("Per-stage DVFS, 1 pipeline, MCPC renderer\n")
	for _, run := range []DVFSRun{r.Base, r.FastBlur, r.Mixed} {
		fmt.Fprintf(&b, "  %-26s %8.1f s   %7.1f J   %5.1f W avg\n",
			run.Label, run.Seconds, run.SCCEnergyJ, run.MeanWatts)
	}
	return b.String()
}

// PaperFig16 holds the §VI-D reference walkthrough durations (seconds).
var PaperFig16 = struct {
	Base, FastBlur, Mixed float64
}{Base: 236, FastBlur: 174, Mixed: 175}

// RunFig16 runs the three frequency plans and reports both the times
// (Fig. 16) and the power/energy (Fig. 17).
func RunFig16(s Setup) (Fig16Result, error) {
	wl := Workload(s)
	run := func(label string, blur, tail scc.FreqLevel) (DVFSRun, error) {
		spec := core.Spec{
			Frames: s.Frames, Width: s.Width, Height: s.Height,
			Pipelines: 1, Renderer: core.HostRenderer,
			BlurFreq: blur, TailFreq: tail, IsolateBlur: true,
		}
		res, err := core.Simulate(spec, wl, core.SimOptions{})
		if err != nil {
			return DVFSRun{}, err
		}
		return DVFSRun{
			Label:      label,
			Seconds:    res.Seconds,
			SCCEnergyJ: res.SCCEnergyJ,
			MeanWatts:  res.SCCEnergyJ / res.Seconds,
			Power:      res.Power,
		}, nil
	}
	var out Fig16Result
	var err error
	if out.Base, err = run("all stages at 533 MHz", scc.FreqLevel{}, scc.FreqLevel{}); err != nil {
		return out, err
	}
	if out.FastBlur, err = run("blur at 800 MHz", scc.Freq800, scc.FreqLevel{}); err != nil {
		return out, err
	}
	if out.Mixed, err = run("533/800/400 MHz", scc.Freq800, scc.Freq400); err != nil {
		return out, err
	}
	return out, nil
}

// RunFig17 is the power view of the same experiment.
func RunFig17(s Setup) (Fig16Result, error) { return RunFig16(s) }
