package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/core"
	"sccpipe/internal/scc"
)

// DVFSPoint is one frequency plan in the time/energy plane.
type DVFSPoint struct {
	BlurMHz int
	TailMHz int
	Seconds float64
	Joules  float64 // SCC + MCPC render surcharge
	Pareto  bool    // no other plan is faster AND cheaper
}

// ParetoResult explores the full DVFS plan space the paper's §VI-D opens
// up but only samples at three points: every combination of blur and
// post-blur frequency on the single-pipeline MCPC configuration, with the
// Pareto-optimal plans marked.
type ParetoResult struct {
	Points []DVFSPoint
}

func (r ParetoResult) String() string {
	var b strings.Builder
	b.WriteString("DVFS plan space, 1 pipeline, MCPC renderer\n")
	b.WriteString("  blur  tail     time      energy\n")
	for _, p := range r.Points {
		mark := "  "
		if p.Pareto {
			mark = " *"
		}
		fmt.Fprintf(&b, "%s %4d  %4d  %7.1f s  %8.1f J\n", mark, p.BlurMHz, p.TailMHz, p.Seconds, p.Joules)
	}
	b.WriteString("  (* = Pareto-optimal)\n")
	return b.String()
}

// ParetoFront returns the Pareto-optimal points.
func (r ParetoResult) ParetoFront() []DVFSPoint {
	var out []DVFSPoint
	for _, p := range r.Points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	return out
}

// RunDVFSPareto sweeps all blur×tail frequency combinations.
func RunDVFSPareto(s Setup) (ParetoResult, error) {
	wl := Workload(s)
	var out ParetoResult
	for _, blur := range scc.FreqLevels {
		for _, tail := range scc.FreqLevels {
			spec := core.Spec{
				Frames: s.Frames, Width: s.Width, Height: s.Height,
				Pipelines: 1, Renderer: core.HostRenderer,
				BlurFreq: blur, TailFreq: tail, IsolateBlur: true,
			}
			res, err := core.Simulate(spec, wl, core.SimOptions{})
			if err != nil {
				return ParetoResult{}, err
			}
			out.Points = append(out.Points, DVFSPoint{
				BlurMHz: int(blur.Hz / 1e6),
				TailMHz: int(tail.Hz / 1e6),
				Seconds: res.Seconds,
				Joules:  res.SCCEnergyJ + res.HostExtraEnergyJ,
			})
		}
	}
	// Mark the Pareto front.
	for i := range out.Points {
		dominated := false
		for j := range out.Points {
			if i == j {
				continue
			}
			a, b := out.Points[j], out.Points[i]
			if a.Seconds <= b.Seconds && a.Joules <= b.Joules &&
				(a.Seconds < b.Seconds || a.Joules < b.Joules) {
				dominated = true
				break
			}
		}
		out.Points[i].Pareto = !dominated
	}
	return out, nil
}
