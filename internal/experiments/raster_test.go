package experiments

import (
	"strings"
	"testing"
)

func TestRasterAblationExactAndCounted(t *testing.T) {
	s := testSetup()
	s.Frames = 6 // real renders: keep the walkthrough short
	r, err := RunRaster(s)
	if err != nil {
		// RunRaster errors when a raster path diverges from the serial
		// oracle — that is the assertion this test exists for.
		t.Fatal(err)
	}
	if len(r.Runs) == 0 {
		t.Fatal("empty worker sweep")
	}
	if r.SerialSeconds <= 0 {
		t.Fatalf("serial oracle took %v s", r.SerialSeconds)
	}
	for _, run := range r.Runs {
		if run.ReplaySeconds <= 0 || run.TiledSeconds <= 0 {
			t.Errorf("w=%d: non-positive timings %+v", run.Workers, run)
		}
		if run.PredictedSpeedup <= 0 {
			t.Errorf("w=%d: predicted speedup %v", run.Workers, run.PredictedSpeedup)
		}
	}
	// The tiled path must have actually tiled: setups in the buffer, every
	// setup binned at least once, and no more depth-test candidates than
	// the serial path (span tightening and coarse-z only ever shrink them).
	if r.TiledStats.TrisSetup == 0 {
		t.Error("tiled pass recorded no triangle setups")
	}
	if r.TiledStats.TrisBinned < int64(r.TiledStats.TrisSetup) {
		t.Errorf("binned %d < setup %d", r.TiledStats.TrisBinned, r.TiledStats.TrisSetup)
	}
	if r.TiledStats.Candidates > r.SerialStats.Candidates {
		t.Errorf("tiled candidates %d > serial %d", r.TiledStats.Candidates, r.SerialStats.Candidates)
	}
	if r.TiledStats.Filled != r.SerialStats.Filled {
		t.Errorf("tiled filled %d != serial %d", r.TiledStats.Filled, r.SerialStats.Filled)
	}
	out := r.String()
	for _, want := range []string{"serial oracle", "tris setup", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}
