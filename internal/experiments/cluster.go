package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/core"
	"sccpipe/internal/host"
)

// ClusterResult reproduces Fig. 13: the three renderer configurations on a
// Mogon-style HPC node.
type ClusterResult struct {
	Curves []Series // external / single / parallel renderer, X = pipelines
}

func (r ClusterResult) String() string {
	var b strings.Builder
	b.WriteString("Walkthrough seconds vs pipelines on the Mogon cluster model\n")
	b.WriteString(formatHeader("pipelines", r.Curves[0].X))
	b.WriteByte('\n')
	for _, c := range r.Curves {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// clusterConfigs maps the paper's Fig. 13 curve names to renderer configs.
var clusterConfigs = []struct {
	label string
	rc    core.RendererConfig
}{
	{"HPC, external rend.", core.HostRenderer},
	{"HPC, single rend.", core.OneRenderer},
	{"HPC, parallel rend.", core.NRenderers},
}

// RunFig13 runs the cluster comparison.
func RunFig13(s Setup) (ClusterResult, error) {
	wl := Workload(s)
	cluster := host.DefaultCluster()
	var out ClusterResult
	for _, c := range clusterConfigs {
		series := Series{Label: c.label}
		for k := 1; k <= 7; k++ {
			spec := core.Spec{
				Frames: s.Frames, Width: s.Width, Height: s.Height,
				Pipelines: k, Renderer: c.rc,
			}
			res, err := core.SimulateCluster(spec, wl, cluster, core.SimOptions{})
			if err != nil {
				return ClusterResult{}, err
			}
			series.X = append(series.X, float64(k))
			series.Y = append(series.Y, res.Seconds)
		}
		out.Curves = append(out.Curves, series)
	}
	return out, nil
}

// runClusterRows renders the cluster curves as Table I rows.
func runClusterRows(s Setup, wl *core.Workload) ([]Table1Row, error) {
	cluster := host.DefaultCluster()
	var rows []Table1Row
	for _, c := range clusterConfigs {
		row := Table1Row{Label: c.label, Renderer: c.rc, Cluster: true}
		for k := 1; k <= 7; k++ {
			spec := core.Spec{
				Frames: s.Frames, Width: s.Width, Height: s.Height,
				Pipelines: k, Renderer: c.rc,
			}
			res, err := core.SimulateCluster(spec, wl, cluster, core.SimOptions{})
			if err != nil {
				return nil, fmt.Errorf("cluster %s k=%d: %w", c.label, k, err)
			}
			row.Seconds = append(row.Seconds, res.Seconds)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
