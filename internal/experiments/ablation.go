package experiments

import (
	"strings"

	"sccpipe/internal/core"
	"sccpipe/internal/scc"
)

// AblationResult explores design questions the paper raises but could not
// test on real silicon:
//
//   - LocalMemory: the conclusion's wish — per-core local memory banks in
//     the style of the Cell's SPEs, so stage hand-offs bypass the memory
//     controllers entirely.
//   - MemPorts1: a pessimistic controller that serializes concurrent
//     streams, isolating how much DDR bank parallelism matters.
//   - Striped: partitions remapped (via the SCC's LUTs) to stripe across
//     all four controllers, removing quadrant hotspots at the cost of
//     longer average routes.
type AblationResult struct {
	Pipelines   []int
	Baseline    []float64 // stock SCC model
	LocalMemory []float64 // hypothetical per-core local memory
	MemPorts1   []float64 // controllers without stream overlap
	Striped     []float64 // partitions LUT-striped over all controllers
}

func (r AblationResult) String() string {
	var b strings.Builder
	b.WriteString("Ablations, n-renderer configuration (walkthrough seconds)\n")
	xs := make([]float64, len(r.Pipelines))
	for i, k := range r.Pipelines {
		xs[i] = float64(k)
	}
	b.WriteString(formatHeader("pipelines", xs))
	b.WriteByte('\n')
	for _, s := range []Series{
		{Label: "SCC as built", X: xs, Y: r.Baseline},
		{Label: "with local memory", X: xs, Y: r.LocalMemory},
		{Label: "single-stream MCs", X: xs, Y: r.MemPorts1},
		{Label: "striped partitions", X: xs, Y: r.Striped},
	} {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RunAblation sweeps the n-renderer configuration under the three chip
// variants.
func RunAblation(s Setup) (AblationResult, error) {
	wl := Workload(s)
	var out AblationResult
	variants := []struct {
		mutate func(*scc.Config)
		sink   *[]float64
	}{
		{func(*scc.Config) {}, &out.Baseline},
		{func(c *scc.Config) { c.LocalMemory = true }, &out.LocalMemory},
		{func(c *scc.Config) { c.MemPorts = 1 }, &out.MemPorts1},
		{func(c *scc.Config) { c.StripePartitions = true }, &out.Striped},
	}
	for k := 1; k <= core.MaxPipelines(core.NRenderers); k++ {
		out.Pipelines = append(out.Pipelines, k)
		for _, v := range variants {
			cfg := scc.DefaultConfig()
			v.mutate(&cfg)
			spec := core.Spec{
				Frames: s.Frames, Width: s.Width, Height: s.Height,
				Pipelines: k, Renderer: core.NRenderers,
			}
			res, err := core.Simulate(spec, wl, core.SimOptions{ChipConfig: &cfg})
			if err != nil {
				return AblationResult{}, err
			}
			*v.sink = append(*v.sink, res.Seconds)
		}
	}
	return out, nil
}
