package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/scc"
)

// CachePoint reports the measured miss traffic of one filter-like access
// pattern over one strip size on the real cache simulator.
type CachePoint struct {
	Side        int     // square strip side length (pixels)
	Bytes       int     // strip payload
	Sequential  float64 // memory bytes per pixel, one sequential sweep (sepia)
	Neighbour   float64 // memory bytes per pixel, 3×3 neighbourhood (blur)
	DoubleSweep float64 // memory bytes per pixel, two sweeps (blur's copy)
}

// CacheStudyResult backs the paper's Fig. 12 explanation with the actual
// set-associative cache model: streaming filters fetch each line exactly
// once regardless of whether the strip fits in the 256 KiB L2, so no jump
// appears at the cache boundary; only genuinely re-traversed data (blur's
// second sweep) is sensitive to the boundary.
type CacheStudyResult struct {
	Points []CachePoint
}

func (r CacheStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Memory bytes per pixel by access pattern (P54C L1+L2 model)\n")
	b.WriteString("  side    bytes   1-sweep   3x3-blur   2-sweeps\n")
	for _, p := range r.Points {
		marker := " "
		if p.Bytes > scc.L2Size {
			marker = ">" // beyond L2 capacity
		}
		fmt.Fprintf(&b, "%s %4d %8d    %6.2f     %6.2f     %6.2f\n",
			marker, p.Side, p.Bytes, p.Sequential, p.Neighbour, p.DoubleSweep)
	}
	b.WriteString("  (> = strip exceeds the 256 KiB L2)\n")
	return b.String()
}

// RunCacheStudy sweeps the Fig. 12 strip sizes over three access patterns.
func RunCacheStudy(_ Setup) (CacheStudyResult, error) {
	var out CacheStudyResult
	for _, side := range Fig12Sides {
		pixels := side * side
		bytes := pixels * 4
		out.Points = append(out.Points, CachePoint{
			Side:        side,
			Bytes:       bytes,
			Sequential:  missBytesPerPixel(side, 1, false),
			Neighbour:   missBytesPerPixel(side, 1, true),
			DoubleSweep: missBytesPerPixel(side, 2, false),
		})
	}
	return out, nil
}

// missBytesPerPixel runs an access pattern through a fresh cache hierarchy
// and reports memory-fetched bytes per pixel. neighbours=true touches the
// 3×3 neighbourhood per pixel (blur); sweeps repeats the full sweep.
func missBytesPerPixel(side, sweeps int, neighbours bool) float64 {
	h := scc.NewHierarchy()
	misses := 0
	touch := func(x, y int) {
		if x < 0 || x >= side || y < 0 || y >= side {
			return
		}
		addr := uint64((y*side + x) * 4)
		if h.Access(addr) == 0 {
			misses++
		}
	}
	for s := 0; s < sweeps; s++ {
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				if neighbours {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							touch(x+dx, y+dy)
						}
					}
				} else {
					touch(x, y)
				}
			}
		}
	}
	return float64(misses*scc.CacheLine) / float64(side*side)
}
