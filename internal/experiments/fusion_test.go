package experiments

import (
	"strings"
	"testing"
)

func TestFusionCutsHandoffTrafficAndCores(t *testing.T) {
	s := testSetup()
	r, err := RunFusion(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pipelines) == 0 {
		t.Fatal("empty sweep")
	}
	for i, k := range r.Pipelines {
		// The fused chain is four stages where the unfused one is six:
		// hand-off traffic and occupied cores must both shrink at every k.
		if r.FusedHandoffMB[i] >= r.UnfusedHandoffMB[i] {
			t.Errorf("k=%d: fused hand-off %.1f MB ≥ unfused %.1f MB", k, r.FusedHandoffMB[i], r.UnfusedHandoffMB[i])
		}
		if r.FusedCores[i] >= r.UnfusedCores[i] {
			t.Errorf("k=%d: fused cores %d ≥ unfused %d", k, r.FusedCores[i], r.UnfusedCores[i])
		}
		// The renderer is the bottleneck throughout this sweep, so
		// serializing the per-pixel filters onto one core must not slow the
		// walkthrough (small scheduling jitter allowed).
		if r.FusedSeconds[i] > r.UnfusedSeconds[i]*1.02 {
			t.Errorf("k=%d: fused %.2f s slower than unfused %.2f s", k, r.FusedSeconds[i], r.UnfusedSeconds[i])
		}
	}
	// Exactly the two per-item hand-offs of the fused-away stages disappear
	// (scratch→flicker and flicker→swap): 7 hand-offs per strip (feed + 6
	// stages) become 5.
	for i := range r.Pipelines {
		want := r.UnfusedHandoffMB[i] * 5 / 7
		if !within(r.FusedHandoffMB[i], want, 0.01) {
			t.Errorf("k=%d: fused hand-off %.2f MB, want %.2f (5/7 of unfused)", r.Pipelines[i], r.FusedHandoffMB[i], want)
		}
	}
	if !strings.Contains(r.String(), "fused hand-off MB") {
		t.Error("String() missing hand-off series")
	}
}
