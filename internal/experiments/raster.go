package experiments

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"strings"
	"time"

	"sccpipe/internal/band"
	"sccpipe/internal/core"
	"sccpipe/internal/frame"
	"sccpipe/internal/render"
)

// RasterRun is one worker count of the rasterizer ablation: the replay
// (per-band re-cull) and tiled (setup-once, binned) paths timed on real
// walkthrough renders, plus the cost model's prediction of what tiling
// should buy at that width.
type RasterRun struct {
	Workers int
	// Wall-clock seconds for the whole walkthrough, per raster path.
	ReplaySeconds float64
	TiledSeconds  float64
	// MeasuredSpeedup is serial seconds / tiled seconds; PredictedSpeedup
	// is the DES cost model's serial work divided by the tiled path's
	// fixed + scaled/workers decomposition (RenderFixedWork/RenderScaledWork).
	MeasuredSpeedup  float64
	PredictedSpeedup float64
}

// RasterResult is the tiled-rasterization ablation: the serial oracle,
// the old replay-banded path, and the tiled-binned path on the same
// walkthrough, byte-compared frame by frame. Unlike the figure
// experiments this one executes real renders and reports wall time, so
// its numbers vary with the host; the prediction column is the part the
// DES model claims.
type RasterResult struct {
	Frames, Width, Height int
	SerialSeconds         float64
	Runs                  []RasterRun
	// SerialStats and TiledStats sum the renderer's work counters over
	// the walkthrough (tiled counters from the widest pool).
	SerialStats render.Stats
	TiledStats  render.Stats
}

func (r RasterResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tiled rasterization ablation — real renders, %d frames %d×%d (all outputs byte-identical)\n",
		r.Frames, r.Width, r.Height)
	fmt.Fprintf(&b, "serial oracle %8.3fs\n", r.SerialSeconds)
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %11s\n", "workers", "replay s", "tiled s", "measured", "predicted")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%-8d %10.3f %10.3f %9.2fx %10.2fx\n",
			run.Workers, run.ReplaySeconds, run.TiledSeconds, run.MeasuredSpeedup, run.PredictedSpeedup)
	}
	st, ss := r.TiledStats, r.SerialStats
	fmt.Fprintf(&b, "tiled counters: tris setup %d, binned %d, tiles touched %d, bins rejected %d\n",
		st.TrisSetup, st.TrisBinned, st.TilesTouched, st.BinsRejected)
	saved := 0.0
	if ss.Candidates > 0 {
		saved = 100 * float64(ss.Candidates-st.Candidates) / float64(ss.Candidates)
	}
	fmt.Fprintf(&b, "depth-test candidates: serial %d, tiled %d (span tightening + coarse-z saved %.1f%%)\n",
		ss.Candidates, st.Candidates, saved)
	return b.String()
}

// WriteCSV emits variant, workers, seconds, measured and predicted speedup.
func (r RasterResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"variant", "workers", "seconds", "measured_speedup", "predicted_speedup"}}
	rows = append(rows, []string{"serial", "1", ftoa(r.SerialSeconds), "1", "1"})
	for _, run := range r.Runs {
		rows = append(rows,
			[]string{"replay", itoa(run.Workers), ftoa(run.ReplaySeconds), "", ""},
			[]string{"tiled", itoa(run.Workers), ftoa(run.TiledSeconds),
				ftoa(run.MeasuredSpeedup), ftoa(run.PredictedSpeedup)})
	}
	return writeAll(w, rows)
}

// rasterMaxFrames caps the walkthrough length of this wall-clock
// experiment: past a few dozen frames the extra renders only average the
// same measurement, and the default 400-frame setup would make `-exp all`
// render ~3600 real frames here.
const rasterMaxFrames = 48

// rasterPass renders the walkthrough once with the given raster mode and
// pool, returning wall seconds, the summed work counters, and a byte-level
// FNV-64a digest of every output frame (for oracle comparison).
func rasterPass(tree *render.Octree, cams []render.Camera, w, h int,
	mode render.RasterMode, pool *band.Pool) (float64, render.Stats, []uint64) {
	r := render.NewRenderer(tree)
	r.Mode = mode
	r.Bands = pool
	img := frame.New(w, h)
	var sum render.Stats
	sums := make([]uint64, len(cams))
	start := time.Now()
	for f, cam := range cams {
		st := r.RenderFrame(cam, img)
		sum.Add(st)
		d := fnv.New64a()
		d.Write(img.Pix)
		sums[f] = d.Sum64()
	}
	return time.Since(start).Seconds(), sum, sums
}

// RunRaster executes the rasterizer ablation: serial oracle, then the
// replay-banded and tiled-binned paths across a band-worker sweep, with
// every frame byte-compared against the oracle (a digest mismatch is an
// error — the tiled path is only a win if it is exact).
func RunRaster(s Setup) (RasterResult, error) {
	if s.Frames > rasterMaxFrames {
		s.Frames = rasterMaxFrames
	}
	tree := Tree(s)
	cams := render.Walkthrough(s.Frames, tree.Bounds())
	out := RasterResult{Frames: s.Frames, Width: s.Width, Height: s.Height}

	var oracle []uint64
	out.SerialSeconds, out.SerialStats, oracle = rasterPass(
		tree, cams, s.Width, s.Height, render.RasterSerial, band.Serial)

	maxW := runtime.GOMAXPROCS(0)
	if maxW > 8 {
		maxW = 8
	}
	if maxW < 2 {
		maxW = 2
	}
	m := core.DefaultCostModel()
	for _, w := range []int{1, 2, 4, 8} {
		if w > maxW {
			break
		}
		pool := band.New(w)
		run := RasterRun{Workers: w}
		var st render.Stats
		var sums []uint64
		run.ReplaySeconds, _, sums = rasterPass(tree, cams, s.Width, s.Height, render.RasterReplay, pool)
		if f := firstMismatch(oracle, sums); f >= 0 {
			return RasterResult{}, fmt.Errorf("replay w=%d: frame %d differs from the serial oracle", w, f)
		}
		run.TiledSeconds, st, sums = rasterPass(tree, cams, s.Width, s.Height, render.RasterTiled, pool)
		if f := firstMismatch(oracle, sums); f >= 0 {
			return RasterResult{}, fmt.Errorf("tiled w=%d: frame %d differs from the serial oracle", w, f)
		}
		out.TiledStats = st
		run.MeasuredSpeedup = out.SerialSeconds / run.TiledSeconds
		// The model's claim: tiling leaves the fixed work (cull, setup,
		// binning) on one core and divides only the fill across workers.
		serialWork := m.RenderFixedWork(out.SerialStats) + m.RenderScaledWork(out.SerialStats)
		tiledWork := m.RenderFixedWork(st) + m.RenderScaledWork(st)/float64(w)
		if tiledWork > 0 {
			run.PredictedSpeedup = serialWork / tiledWork
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// firstMismatch returns the first index where the digest sequences differ,
// or -1 when they match.
func firstMismatch(a, b []uint64) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}
