package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/core"
	"sccpipe/internal/pipe"
)

// FusionResult quantifies what stage fusion buys on the SCC model: the
// per-pixel filters (sepia, scratch, flicker, swap) are y-independent and
// can share one read-modify-write pass over a strip, so fusing them
// collapses stage-to-stage hand-offs — the memory traffic the paper
// identifies as the chief bottleneck of a chip without local memory — and
// frees the constituent stages' cores. The flip side is serialization:
// a fused run occupies one core, so when the fused filters (not the
// renderer or blur) are the pipeline bottleneck, fusion trades hand-off
// savings for a longer critical path. This ablation measures both sides
// across the pipeline-count sweep.
type FusionResult struct {
	Pipelines []int
	// Walkthrough seconds, paper-faithful five-stage chain vs fused.
	UnfusedSeconds []float64
	FusedSeconds   []float64
	// Stage-to-stage hand-off payload through the memory system, in MB.
	UnfusedHandoffMB []float64
	FusedHandoffMB   []float64
	// SCC cores occupied by the stage processes.
	UnfusedCores []int
	FusedCores   []int
}

func (r FusionResult) String() string {
	var b strings.Builder
	b.WriteString("Stage fusion ablation, n-renderer configuration\n")
	xs := make([]float64, len(r.Pipelines))
	for i, k := range r.Pipelines {
		xs[i] = float64(k)
	}
	b.WriteString(formatHeader("pipelines", xs))
	b.WriteByte('\n')
	cores := func(cs []int) []float64 {
		ys := make([]float64, len(cs))
		for i, c := range cs {
			ys[i] = float64(c)
		}
		return ys
	}
	for _, s := range []Series{
		{Label: "unfused seconds", X: xs, Y: r.UnfusedSeconds},
		{Label: "fused seconds", X: xs, Y: r.FusedSeconds},
		{Label: "unfused hand-off MB", X: xs, Y: r.UnfusedHandoffMB},
		{Label: "fused hand-off MB", X: xs, Y: r.FusedHandoffMB},
		{Label: "unfused cores", X: xs, Y: cores(r.UnfusedCores)},
		{Label: "fused cores", X: xs, Y: cores(r.FusedCores)},
	} {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// fusionChain lowers the n-renderer walkthrough onto the generic pipe
// model: a render stage fed by the profiled per-strip culling stats, then
// the five filters with the calibrated cost model, per-pixel stages marked
// Fusable exactly as the real execution backend marks them. The chain's
// own planner then decides the fused layout, as it does for real runs.
func fusionChain(s Setup, wl *core.Workload, k int, noFuse bool) *pipe.Chain {
	m := core.DefaultCostModel()
	stats := wl.StripStats(k)
	stages := []pipe.Stage{{
		Name: core.StageRender.String(),
		CostRef: func(it pipe.Item) float64 {
			return m.RenderCompute(stats[it.Seq][it.Pipeline], wl.StripPixels(k, it.Pipeline))
		},
	}}
	for _, kind := range core.FilterOrder {
		kind := kind
		stages = append(stages, pipe.Stage{
			Name: kind.String(),
			// Blur is a neighborhood filter; everything else is per-pixel
			// and fuses (matching core's default execution plan).
			Fusable: kind != core.StageBlur,
			CostRef: func(it pipe.Item) float64 {
				return m.FilterComputeFor(kind, wl.StripPixels(k, it.Pipeline))
			},
		})
	}
	return &pipe.Chain{
		Stages: stages,
		NoFuse: noFuse,
		Feed: func(pl, seq int) (pipe.Item, bool) {
			if seq >= s.Frames {
				return pipe.Item{}, false
			}
			return pipe.Item{Bytes: wl.StripBytes(k, pl)}, true
		},
	}
}

// RunFusion sweeps the n-renderer configuration with stage fusion on and
// off. The sweep stops at 6 pipelines: the generic chain model places a
// feed process per pipeline in addition to the six stages, so the unfused
// k=7 layout needs 50 cores and does not fit the 48-core chip.
func RunFusion(s Setup) (FusionResult, error) {
	wl := Workload(s)
	var out FusionResult
	for k := 1; k <= 6; k++ {
		out.Pipelines = append(out.Pipelines, k)
		for _, noFuse := range []bool{true, false} {
			c := fusionChain(s, wl, k, noFuse)
			res, err := c.Simulate(pipe.SimSpec{Pipelines: k, Items: s.Frames})
			if err != nil {
				return FusionResult{}, fmt.Errorf("fusion sweep k=%d noFuse=%v: %w", k, noFuse, err)
			}
			mb := float64(res.HandoffBytes) / 1e6
			if noFuse {
				out.UnfusedSeconds = append(out.UnfusedSeconds, res.Seconds)
				out.UnfusedHandoffMB = append(out.UnfusedHandoffMB, mb)
				out.UnfusedCores = append(out.UnfusedCores, res.CoresUsed)
			} else {
				out.FusedSeconds = append(out.FusedSeconds, res.Seconds)
				out.FusedHandoffMB = append(out.FusedHandoffMB, mb)
				out.FusedCores = append(out.FusedCores, res.CoresUsed)
			}
		}
	}
	return out, nil
}
