package experiments

import (
	"strings"

	"sccpipe/internal/core"
)

// AdaptiveResult compares the paper's even sort-first split against the
// cost-balanced decomposition extension for the n-renderer configuration.
type AdaptiveResult struct {
	Pipelines []int
	Uniform   []float64
	Adaptive  []float64
}

func (r AdaptiveResult) String() string {
	var b strings.Builder
	b.WriteString("Even vs cost-balanced strips, n-renderer configuration (seconds)\n")
	xs := make([]float64, len(r.Pipelines))
	for i, k := range r.Pipelines {
		xs[i] = float64(k)
	}
	b.WriteString(formatHeader("pipelines", xs))
	b.WriteByte('\n')
	for _, s := range []Series{
		{Label: "even strips (paper)", X: xs, Y: r.Uniform},
		{Label: "cost-balanced strips", X: xs, Y: r.Adaptive},
	} {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RunAdaptive sweeps pipeline counts under both decompositions.
func RunAdaptive(s Setup) (AdaptiveResult, error) {
	wl := Workload(s)
	var out AdaptiveResult
	for k := 2; k <= core.MaxPipelines(core.NRenderers); k++ {
		out.Pipelines = append(out.Pipelines, k)
		for _, adaptive := range []bool{false, true} {
			spec := core.Spec{
				Frames: s.Frames, Width: s.Width, Height: s.Height,
				Pipelines: k, Renderer: core.NRenderers, AdaptiveStrips: adaptive,
			}
			res, err := core.Simulate(spec, wl, core.SimOptions{})
			if err != nil {
				return AdaptiveResult{}, err
			}
			if adaptive {
				out.Adaptive = append(out.Adaptive, res.Seconds)
			} else {
				out.Uniform = append(out.Uniform, res.Seconds)
			}
		}
	}
	return out, nil
}
