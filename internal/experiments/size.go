package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/core"
)

// Fig12Result sweeps the image side length with a single pipeline fed by
// the MCPC (Fig. 12): the paper's probe for cache-size effects.
type Fig12Result struct {
	Sides   []int
	KBytes  []float64
	Seconds []float64
}

func (r Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Walkthrough seconds vs image size, 1 pipeline, MCPC renderer\n")
	for i, side := range r.Sides {
		fmt.Fprintf(&b, "  side %3d (%5.0f kB): %8.1f s\n", side, r.KBytes[i], r.Seconds[i])
	}
	return b.String()
}

// Fig12Sides are the paper's x-axis values: 50..400 in steps of 50, with
// payloads 10 kB .. 640 kB.
var Fig12Sides = []int{50, 100, 150, 200, 250, 300, 350, 400}

// RunFig12 sweeps square image sizes through a single MCPC-fed pipeline.
// The paper's finding to reproduce: time grows smoothly with size and shows
// no jump when the strip exceeds the 256 KiB L2 (between side 250 and 300),
// because every stage streams its data exactly once.
func RunFig12(s Setup) (Fig12Result, error) {
	var out Fig12Result
	for _, side := range Fig12Sides {
		sub := s
		sub.Width, sub.Height = side, side
		wl := Workload(sub)
		spec := core.Spec{
			Frames: sub.Frames, Width: side, Height: side,
			Pipelines: 1, Renderer: core.HostRenderer,
		}
		res, err := core.Simulate(spec, wl, core.SimOptions{})
		if err != nil {
			return Fig12Result{}, err
		}
		out.Sides = append(out.Sides, side)
		out.KBytes = append(out.KBytes, float64(side*side*4)/1000)
		out.Seconds = append(out.Seconds, res.Seconds)
	}
	return out, nil
}
