package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/core"
)

// Fig8Result is the single-core baseline decomposition (Fig. 8 plus the
// §VI-A ablations: render-only and render+transfer).
type Fig8Result struct {
	Total          float64
	StageSeconds   map[core.StageKind]float64
	RenderOnly     float64
	RenderTransfer float64
}

func (r Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Single SCC core, all stages: %.1f s (paper ≈382 s)\n", r.Total)
	for _, k := range core.SingleCoreStages {
		fmt.Fprintf(&b, "  %-9v %8.1f s\n", k, r.StageSeconds[k])
	}
	fmt.Fprintf(&b, "render only:            %8.1f s (paper ≈94 s)\n", r.RenderOnly)
	fmt.Fprintf(&b, "render + transfer:      %8.1f s (paper ≈104 s)\n", r.RenderTransfer)
	return b.String()
}

// PaperFig8 holds the §VI-A reference durations (seconds, 400 frames).
var PaperFig8 = struct {
	Total, RenderOnly, RenderTransfer float64
}{Total: 382, RenderOnly: 94, RenderTransfer: 104}

// RunFig8 measures the single-core stage profile.
func RunFig8(s Setup) (Fig8Result, error) {
	wl := Workload(s)
	spec := core.Spec{Frames: s.Frames, Width: s.Width, Height: s.Height, Pipelines: 1}
	full, err := core.SimulateSingleCore(spec, wl, core.SingleCoreStages, core.SimOptions{})
	if err != nil {
		return Fig8Result{}, err
	}
	renderOnly, err := core.SimulateSingleCore(spec, wl, []core.StageKind{core.StageRender}, core.SimOptions{})
	if err != nil {
		return Fig8Result{}, err
	}
	rt, err := core.SimulateSingleCore(spec, wl, []core.StageKind{core.StageRender, core.StageTransfer}, core.SimOptions{})
	if err != nil {
		return Fig8Result{}, err
	}
	return Fig8Result{
		Total:          full.Seconds,
		StageSeconds:   full.StageSeconds,
		RenderOnly:     renderOnly.Seconds,
		RenderTransfer: rt.Seconds,
	}, nil
}
