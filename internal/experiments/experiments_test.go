package experiments

import (
	"io"
	"math"
	"strings"
	"testing"

	"sccpipe/internal/core"
	"sccpipe/internal/scc"
)

// testSetup shortens the walkthrough; paper expectations are rescaled with
// Setup.Scale. 160 frames keeps the whole suite around a second while
// leaving fill/drain effects negligible.
func testSetup() Setup {
	s := DefaultSetup()
	s.Frames = 160
	return s
}

// within reports |got−want|/want ≤ tol.
func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*want
}

func TestFig8Baselines(t *testing.T) {
	s := testSetup()
	r, err := RunFig8(s)
	if err != nil {
		t.Fatal(err)
	}
	if !within(r.Total, s.Scale(PaperFig8.Total), 0.10) {
		t.Errorf("single-core total %.1f, paper %.1f", r.Total, s.Scale(PaperFig8.Total))
	}
	if !within(r.RenderOnly, s.Scale(PaperFig8.RenderOnly), 0.10) {
		t.Errorf("render-only %.1f, paper %.1f", r.RenderOnly, s.Scale(PaperFig8.RenderOnly))
	}
	if !within(r.RenderTransfer, s.Scale(PaperFig8.RenderTransfer), 0.10) {
		t.Errorf("render+transfer %.1f, paper %.1f", r.RenderTransfer, s.Scale(PaperFig8.RenderTransfer))
	}
	// Blur is the most expensive filtering stage.
	for _, k := range core.FilterOrder {
		if k != core.StageBlur && r.StageSeconds[k] >= r.StageSeconds[core.StageBlur] {
			t.Errorf("%v (%.1f s) not below blur (%.1f s)", k, r.StageSeconds[k], r.StageSeconds[core.StageBlur])
		}
	}
	if !strings.Contains(r.String(), "render") {
		t.Error("report missing stage rows")
	}
}

func TestFig9OneRendererSaturates(t *testing.T) {
	s := testSetup()
	r, err := RunFig9(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Curves {
		// Big win from 1→2 pipelines...
		if c.Y[1] > 0.65*c.Y[0] {
			t.Errorf("%s: k=2 (%.1f) not well below k=1 (%.1f)", c.Label, c.Y[1], c.Y[0])
		}
		// ...then the renderer bottleneck: k=7 barely better than k=3.
		if c.Y[6] < 0.90*c.Y[2] {
			t.Errorf("%s: kept scaling past the render bottleneck: k=3 %.1f → k=7 %.1f", c.Label, c.Y[2], c.Y[6])
		}
		// Floor lands near the paper's ≈101 s.
		if !within(c.Y[6], s.Scale(101), 0.15) {
			t.Errorf("%s: floor %.1f, paper %.1f", c.Label, c.Y[6], s.Scale(101))
		}
	}
}

func TestFig10NRenderersKeepScaling(t *testing.T) {
	s := testSetup()
	r, err := RunFig10(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Curves {
		for k := 1; k < len(c.Y); k++ {
			if c.Y[k] > c.Y[k-1]*1.03 {
				t.Errorf("%s: regression at k=%d: %.1f → %.1f", c.Label, k+1, c.Y[k-1], c.Y[k])
			}
		}
		// k=3..7 match the paper within 15%.
		for k := 3; k <= 7; k++ {
			if !within(c.Y[k-1], s.Scale(PaperTable1["n rend., ordered"][k-1]), 0.15) {
				t.Errorf("%s k=%d: %.1f, paper %.1f", c.Label, k, c.Y[k-1], s.Scale(PaperTable1["n rend., ordered"][k-1]))
			}
		}
	}
}

func TestFig11MCPCBestAndPlateaus(t *testing.T) {
	s := testSetup()
	r, err := RunFig11(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range r.Curves {
		_, best := c.Min()
		// Best time near the paper's ≈51–54 s.
		if !within(best, s.Scale(53), 0.18) {
			t.Errorf("%s: best %.1f, paper ≈%.1f", c.Label, best, s.Scale(53))
		}
		// Beyond ~4 pipelines the curve is flat or dips slightly: k=8 must
		// not be much better than k=5.
		if c.Y[7] < c.Y[4]*0.93 {
			t.Errorf("%s: still scaling at k=8 (%.1f vs k=5 %.1f)", c.Label, c.Y[7], c.Y[4])
		}
	}
}

func TestTable1Shapes(t *testing.T) {
	s := testSetup()
	tbl, err := RunTable1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tbl.Rows))
	}
	get := func(label string, k int) float64 {
		r := tbl.Row(label)
		if r == nil {
			t.Fatalf("missing row %q", label)
		}
		return r.Seconds[k-1]
	}
	// Who wins at 7 pipelines: MCPC < n rend. < 1 rend. on the SCC.
	if !(get("MCPC, ordered", 7) < get("n rend., ordered", 7)) {
		t.Error("MCPC config should win at 7 pipelines")
	}
	if !(get("n rend., ordered", 7) < get("1 rend., ordered", 7)) {
		t.Error("n renderers should beat one renderer at 7 pipelines")
	}
	// Crossover: 1 renderer wins (or ties) at k=1–2, loses from k=3 on.
	if get("n rend., ordered", 3) >= get("1 rend., ordered", 3) {
		t.Error("n renderers should overtake by k=3")
	}
	// Cluster rows beat every SCC row everywhere.
	for _, hpc := range []string{"HPC, single rend.", "HPC, parallel rend."} {
		for k := 1; k <= 7; k++ {
			if get(hpc, k) >= get("MCPC, ordered", k) {
				t.Errorf("%s k=%d (%.1f) not faster than SCC best (%.1f)", hpc, k, get(hpc, k), get("MCPC, ordered", k))
			}
		}
	}
	// Headline: at 7 pipelines the cluster is an order of magnitude ahead
	// (paper: 13.5×).
	ratio := get("MCPC, ordered", 7) / get("HPC, single rend.", 7)
	if ratio < 7 || ratio > 25 {
		t.Errorf("cluster speedup at k=7 = %.1f×, paper ≈13.5×", ratio)
	}
	// External renderer is the slowest cluster config at high k.
	if !(get("HPC, external rend.", 7) > get("HPC, single rend.", 7)) {
		t.Error("external renderer should be the slowest cluster config at k=7")
	}
	// Arrangements agree within a few percent on every SCC config.
	for _, base := range []string{"1 rend.", "n rend.", "MCPC"} {
		for k := 1; k <= 7; k++ {
			a := get(base+", unordered", k)
			b := get(base+", ordered", k)
			c := get(base+", flipped", k)
			lo := math.Min(a, math.Min(b, c))
			hi := math.Max(a, math.Max(b, c))
			if (hi-lo)/lo > 0.08 {
				t.Errorf("%s k=%d: arrangements differ by %.1f%%", base, k, 100*(hi-lo)/lo)
			}
		}
	}
	if !strings.Contains(tbl.String(), "MCPC, ordered") {
		t.Error("table report incomplete")
	}
}

func TestTable1AgainstPaperValues(t *testing.T) {
	// Quantitative check for the cells the calibration targets: every SCC
	// cell with k ≥ 2 within 20% of Table I, cluster single/parallel cells
	// within 45% (coarser: the paper rounds to whole seconds there).
	s := testSetup()
	tbl, err := RunTable1(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		paper, ok := PaperTable1[row.Label]
		if !ok {
			t.Fatalf("no paper row for %q", row.Label)
		}
		for k := 2; k <= 7; k++ {
			got := row.Seconds[k-1]
			want := s.Scale(paper[k-1])
			tol := 0.20
			if row.Cluster {
				tol = 0.45
			}
			if !within(got, want, tol) {
				t.Errorf("%s k=%d: %.1f vs paper %.1f (±%.0f%%)", row.Label, k, got, want, tol*100)
			}
		}
	}
}

func TestFig12SmoothNoCacheJump(t *testing.T) {
	s := testSetup()
	r, err := RunFig12(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Seconds) != len(Fig12Sides) {
		t.Fatalf("points = %d", len(r.Seconds))
	}
	for i := 1; i < len(r.Seconds); i++ {
		if r.Seconds[i] <= r.Seconds[i-1] {
			t.Errorf("size %d not slower than %d (%.1f ≤ %.1f)", r.Sides[i], r.Sides[i-1], r.Seconds[i], r.Seconds[i-1])
		}
	}
	// No jump where the image crosses the 256 KiB L2 (between side 250 and
	// 300): that step's growth must not stand out against its neighbours.
	grow := func(i int) float64 { return r.Seconds[i] / r.Seconds[i-1] }
	l2Step := 0
	for i, side := range Fig12Sides {
		if side == 300 {
			l2Step = i
		}
	}
	if g, prev := grow(l2Step), grow(l2Step-1); g > prev*1.35 {
		t.Errorf("jump at the L2 boundary: growth %.3f vs %.3f before", g, prev)
	}
}

func TestFig13ClusterOrdering(t *testing.T) {
	s := testSetup()
	r, err := RunFig13(s)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Series{}
	for _, c := range r.Curves {
		byLabel[c.Label] = c
	}
	ext := byLabel["HPC, external rend."]
	single := byLabel["HPC, single rend."]
	parallel := byLabel["HPC, parallel rend."]
	// Single and parallel track each other (paper: nearly identical) and
	// keep scaling; external flattens on its network link.
	for k := 2; k <= 7; k++ {
		if !within(single.Y[k-1], parallel.Y[k-1], 0.6) {
			t.Errorf("k=%d: single %.2f vs parallel %.2f diverge", k, single.Y[k-1], parallel.Y[k-1])
		}
	}
	if single.Y[6] > single.Y[0]*0.35 {
		t.Errorf("single rend. did not keep scaling: %.2f → %.2f", single.Y[0], single.Y[6])
	}
	if ext.Y[6] < single.Y[6] {
		t.Error("external rend. should be slowest at k=7")
	}
	if ext.Y[6] < ext.Y[0]*0.3 {
		t.Errorf("external rend. should flatten on its link: %.2f → %.2f", ext.Y[0], ext.Y[6])
	}
}

func TestFig14PowerLinearAndArrangementFree(t *testing.T) {
	s := testSetup()
	r, err := RunFig14(s)
	if err != nil {
		t.Fatal(err)
	}
	// Group by arrangement.
	byArr := map[core.Arrangement][]Fig14Curve{}
	for _, c := range r.Curves {
		byArr[c.Arr] = append(byArr[c.Arr], c)
	}
	for arr, curves := range byArr {
		for i := 1; i < len(curves); i++ {
			if curves[i].MeanWatts <= curves[i-1].MeanWatts {
				t.Errorf("%v: power not increasing with pipelines: %d CPUs %.1f W, %d CPUs %.1f W",
					arr, curves[i-1].CPUs, curves[i-1].MeanWatts, curves[i].CPUs, curves[i].MeanWatts)
			}
		}
		// The paper's figure spans ≈35–65 W from 7 to 42 CPUs.
		first, last := curves[0], curves[len(curves)-1]
		if first.CPUs != 7 || last.CPUs != 42 {
			t.Errorf("%v: CPU range %d..%d, want 7..42", arr, first.CPUs, last.CPUs)
		}
		if first.MeanWatts < 30 || first.MeanWatts > 45 {
			t.Errorf("%v: 7-CPU power %.1f W outside [30, 45]", arr, first.MeanWatts)
		}
		if last.MeanWatts < 50 || last.MeanWatts > 70 {
			t.Errorf("%v: 42-CPU power %.1f W outside [50, 70]", arr, last.MeanWatts)
		}
	}
	// Arrangement has no influence on power (paper): compare at each k.
	for i := range byArr[core.Unordered] {
		a := byArr[core.Unordered][i].MeanWatts
		b := byArr[core.Ordered][i].MeanWatts
		c := byArr[core.Flipped][i].MeanWatts
		lo := math.Min(a, math.Min(b, c))
		hi := math.Max(a, math.Max(b, c))
		if (hi-lo)/lo > 0.05 {
			t.Errorf("power differs across arrangements at index %d: %.1f..%.1f", i, lo, hi)
		}
	}
}

func TestFig15IdleOrdering(t *testing.T) {
	s := testSetup()
	r, err := RunFig15(s)
	if err != nil {
		t.Fatal(err)
	}
	blur := r.Idle[core.StageBlur]
	scratch := r.Idle[core.StageScratch]
	if blur.Median >= scratch.Median {
		t.Errorf("blur idle median %.1f ms not below scratch %.1f ms", blur.Median*1e3, scratch.Median*1e3)
	}
	// Every filter stage spends a nontrivial fraction of the frame period
	// waiting (the paper's point: waits dominate the runtime).
	for _, k := range core.FilterOrder {
		if r.Idle[k].Median <= 0 {
			t.Errorf("%v: idle median %.3f ms", k, r.Idle[k].Median*1e3)
		}
		if r.Idle[k].Q1 > r.Idle[k].Median || r.Idle[k].Median > r.Idle[k].Q3 {
			t.Errorf("%v: quartiles unordered", k)
		}
	}
}

func TestFig16DVFSShapes(t *testing.T) {
	s := testSetup()
	r, err := RunFig16(s)
	if err != nil {
		t.Fatal(err)
	}
	// Fast blur cuts the walkthrough substantially (paper: −26%).
	imp := (r.Base.Seconds - r.FastBlur.Seconds) / r.Base.Seconds
	if imp < 0.12 || imp > 0.40 {
		t.Errorf("fast-blur improvement %.0f%%, paper ≈26%%", imp*100)
	}
	// Mixed keeps the speed (paper: 174 s vs 175 s)...
	if !within(r.Mixed.Seconds, r.FastBlur.Seconds, 0.05) {
		t.Errorf("mixed %.1f s vs fast blur %.1f s", r.Mixed.Seconds, r.FastBlur.Seconds)
	}
	// ...while the power ordering is fast > base ≥ mixed (Fig. 17).
	if r.FastBlur.MeanWatts <= r.Base.MeanWatts {
		t.Errorf("fast blur %.1f W not above base %.1f W", r.FastBlur.MeanWatts, r.Base.MeanWatts)
	}
	if r.Mixed.MeanWatts > r.Base.MeanWatts*1.02 {
		t.Errorf("mixed %.1f W above base %.1f W", r.Mixed.MeanWatts, r.Base.MeanWatts)
	}
	// The fast-blur power premium is a handful of watts (paper: 4–5 W).
	if d := r.FastBlur.MeanWatts - r.Base.MeanWatts; d < 1.5 || d > 8 {
		t.Errorf("fast-blur power delta %.1f W, paper ≈4–5 W", d)
	}
}

func TestEnergyHybridWins(t *testing.T) {
	s := testSetup()
	r, err := RunEnergy(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.HybridJ >= r.AllSCCJ {
		t.Errorf("hybrid %.0f J not below all-SCC %.0f J", r.HybridJ, r.AllSCCJ)
	}
	// Ratio near the paper's 2642/3364 ≈ 0.785.
	ratio := r.HybridJ / r.AllSCCJ
	if ratio < 0.55 || ratio > 0.95 {
		t.Errorf("energy ratio %.2f, paper ≈0.79", ratio)
	}
}

func TestWorkloadCacheReuse(t *testing.T) {
	s := testSetup()
	a := Workload(s)
	b := Workload(s)
	if a != b {
		t.Error("workload not cached")
	}
	s2 := s
	s2.Width = 256
	s2.Height = 256
	if Workload(s2) == a {
		t.Error("different geometry shares workload")
	}
}

func TestScaleHelper(t *testing.T) {
	s := DefaultSetup()
	s.Frames = 200
	if got := s.Scale(382); got != 191 {
		t.Errorf("Scale(382) at 200 frames = %g, want 191", got)
	}
}

var _ = scc.NumCores // keep the import for future assertions

func TestAblationLocalMemoryHelps(t *testing.T) {
	s := testSetup()
	r, err := RunAblation(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Pipelines {
		// Local memory must never hurt, and must clearly help at scale
		// (the paper's conclusion: the missing local banks are the chief
		// obstacle).
		if r.LocalMemory[i] > r.Baseline[i]*1.01 {
			t.Errorf("k=%d: local memory slower (%.1f vs %.1f)", r.Pipelines[i], r.LocalMemory[i], r.Baseline[i])
		}
		// Serialized controllers must never help.
		if r.MemPorts1[i] < r.Baseline[i]*0.99 {
			t.Errorf("k=%d: single-stream MCs faster (%.1f vs %.1f)", r.Pipelines[i], r.MemPorts1[i], r.Baseline[i])
		}
	}
	// Where the pipeline is communication-bound (k=1, blur moving whole
	// frames), local banks must buy a clear win; at k=7 the renderer
	// compute dominates and the gain shrinks — both are expected.
	if r.LocalMemory[0] > r.Baseline[0]*0.95 {
		t.Errorf("local memory gives <5%% at k=1 (%.1f vs %.1f)", r.LocalMemory[0], r.Baseline[0])
	}
}

func TestAdaptiveStripsExperiment(t *testing.T) {
	s := testSetup()
	r, err := RunAdaptive(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Uniform) != len(r.Adaptive) || len(r.Uniform) == 0 {
		t.Fatalf("series lengths %d/%d", len(r.Uniform), len(r.Adaptive))
	}
	for i := range r.Uniform {
		if r.Adaptive[i] > r.Uniform[i]*1.03 {
			t.Errorf("k=%d: adaptive %.1f worse than uniform %.1f",
				r.Pipelines[i], r.Adaptive[i], r.Uniform[i])
		}
	}
	if !strings.Contains(r.String(), "cost-balanced") {
		t.Error("report incomplete")
	}
}

func TestDVFSPareto(t *testing.T) {
	s := testSetup()
	r, err := RunDVFSPareto(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 9 {
		t.Fatalf("points = %d, want 9", len(r.Points))
	}
	front := r.ParetoFront()
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The paper's mixed plan (blur 800, tail 400) must be on the front: it
	// is both the fastest and among the cheapest.
	foundMixed := false
	for _, p := range front {
		if p.BlurMHz == 800 && p.TailMHz == 400 {
			foundMixed = true
		}
	}
	if !foundMixed {
		t.Errorf("mixed 800/400 plan not Pareto-optimal: %+v", front)
	}
	// The uniform 533 baseline must be dominated (the paper's point).
	for _, p := range r.Points {
		if p.BlurMHz == 533 && p.TailMHz == 533 && p.Pareto {
			t.Error("uniform 533 MHz plan should be dominated")
		}
	}
}

func TestCacheStudyNoStreamingJump(t *testing.T) {
	r, err := RunCacheStudy(testSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(Fig12Sides) {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i, p := range r.Points {
		// Streaming patterns fetch each line exactly once: 4 bytes/pixel
		// regardless of strip size — the Fig. 12 explanation.
		if !within(p.Sequential, 4.0, 0.01) {
			t.Errorf("side %d: sequential %.2f B/px, want 4", p.Side, p.Sequential)
		}
		// Blur's neighbourhood reads hit cached lines: barely above 4.
		if p.Neighbour > 4.6 {
			t.Errorf("side %d: neighbourhood pattern %.2f B/px", p.Side, p.Neighbour)
		}
		// The double sweep is the only size-sensitive pattern: once the
		// strip exceeds L2 it fetches everything twice.
		if p.Bytes > 2*1024*1024/8 && i > 0 { // beyond 256 KiB
			if p.Bytes > 300*1024 && !within(p.DoubleSweep, 8.0, 0.05) {
				t.Errorf("side %d (%d B): double sweep %.2f B/px, want ≈8", p.Side, p.Bytes, p.DoubleSweep)
			}
		}
	}
	// Small strips keep the second sweep resident.
	if first := r.Points[0]; !within(first.DoubleSweep, 4.0, 0.01) {
		t.Errorf("side %d: double sweep %.2f B/px, want 4 (resident)", first.Side, first.DoubleSweep)
	}
}

func TestShapesRobustAcrossScenes(t *testing.T) {
	// The paper's qualitative findings should not hinge on our particular
	// procedural city: rerun the key comparisons on a denser, differently
	// seeded scene.
	s := testSetup()
	s.Frames = 100
	s.SceneConfig.Seed = 99
	s.SceneConfig.BlocksX = 30
	s.SceneConfig.BlocksZ = 18
	s.SceneConfig.Landmarks = 20

	run := func(rc core.RendererConfig, k int) float64 {
		spec := core.Spec{Frames: s.Frames, Width: s.Width, Height: s.Height,
			Pipelines: k, Renderer: rc}
		res, err := core.Simulate(spec, Workload(s), core.SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	oneK1, oneK7 := run(core.OneRenderer, 1), run(core.OneRenderer, 7)
	nK3, nK7 := run(core.NRenderers, 3), run(core.NRenderers, 7)
	mcpcK5 := run(core.HostRenderer, 5)

	// Pipelining pays off.
	if oneK7 >= oneK1 {
		t.Error("no speedup from pipelines on alternate scene")
	}
	// n renderers overtake the single renderer by k=3 and keep the lead.
	if nK3 >= oneK7*1.05 && nK7 >= oneK7 {
		t.Errorf("n-renderer advantage lost: n(3)=%.1f n(7)=%.1f one(7)=%.1f", nK3, nK7, oneK7)
	}
	// The heterogeneous configuration still wins overall.
	if mcpcK5 >= nK7 {
		t.Errorf("MCPC config (%.1f) lost to n renderers (%.1f) on alternate scene", mcpcK5, nK7)
	}
}

func TestCSVExports(t *testing.T) {
	s := testSetup()
	s.Frames = 40
	var buf strings.Builder
	check := func(name string, w func(io.Writer) error, header string) {
		buf.Reset()
		if err := w(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, header) {
			t.Errorf("%s: header %q, want %q", name, strings.SplitN(out, "\n", 2)[0], header)
		}
		if strings.Count(out, "\n") < 2 {
			t.Errorf("%s: no data rows:\n%s", name, out)
		}
	}
	fig8, err := RunFig8(s)
	if err != nil {
		t.Fatal(err)
	}
	check("fig8", fig8.WriteCSV, "stage,seconds")
	sweep, err := RunFig9(s)
	if err != nil {
		t.Fatal(err)
	}
	check("sweep", sweep.WriteCSV, "renderer,arrangement,pipelines,seconds")
	f12, err := RunFig12(s)
	if err != nil {
		t.Fatal(err)
	}
	check("fig12", f12.WriteCSV, "side,kbytes,seconds")
	f13, err := RunFig13(s)
	if err != nil {
		t.Fatal(err)
	}
	check("fig13", f13.WriteCSV, "configuration,pipelines,seconds")
	f15, err := RunFig15(s)
	if err != nil {
		t.Fatal(err)
	}
	check("fig15", f15.WriteCSV, "stage,q1_ms,median_ms,q3_ms")
	f16, err := RunFig16(s)
	if err != nil {
		t.Fatal(err)
	}
	check("fig16", f16.WriteCSV, "plan,seconds,joules,mean_watts")
	en, err := RunEnergy(s)
	if err != nil {
		t.Fatal(err)
	}
	check("energy", en.WriteCSV, "configuration,seconds,joules")
	par, err := RunDVFSPareto(s)
	if err != nil {
		t.Fatal(err)
	}
	check("pareto", par.WriteCSV, "blur_mhz,tail_mhz,seconds,joules,pareto")
	cs, err := RunCacheStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	check("cachestudy", cs.WriteCSV, "side,bytes,sequential_bpp")
}

func TestReportStringsComplete(t *testing.T) {
	// Every result renders a non-trivial human-readable report; exercise
	// the String methods the CLI relies on.
	s := testSetup()
	s.Frames = 40
	sweep, err := RunFig9(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1-renderer", "unordered", "ordered", "flipped", "pipelines"} {
		if !strings.Contains(sweep.String(), want) {
			t.Errorf("sweep report missing %q", want)
		}
	}
	f12, err := RunFig12(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f12.String(), "side 400") {
		t.Error("fig12 report missing sizes")
	}
	f13, err := RunFig13(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f13.String(), "HPC, single rend.") {
		t.Error("fig13 report missing curves")
	}
	f14, err := RunFig14(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f14.String(), "CPUs") {
		t.Error("fig14 report missing CPU labels")
	}
	f15, err := RunFig15(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f15.String(), "blur") || !strings.Contains(f15.String(), "median") {
		t.Error("fig15 report incomplete")
	}
	f16, err := RunFig16(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f16.String(), "800 MHz") {
		t.Error("fig16 report incomplete")
	}
	en, err := RunEnergy(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(en.String(), "hybrid") {
		t.Error("energy report incomplete")
	}
	ab, err := RunAblation(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ab.String(), "local memory") || !strings.Contains(ab.String(), "striped") {
		t.Error("ablation report incomplete")
	}
	par, err := RunDVFSPareto(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(par.String(), "Pareto-optimal") {
		t.Error("pareto report incomplete")
	}
	cs, err := RunCacheStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cs.String(), "256 KiB") {
		t.Error("cache study report incomplete")
	}
}

func TestSeriesHelpers(t *testing.T) {
	se := Series{Label: "x", X: []float64{1, 2, 3}, Y: []float64{5, 2, 9}}
	x, y := se.Min()
	if x != 2 || y != 2 {
		t.Fatalf("Min = (%g, %g)", x, y)
	}
	if !strings.Contains(se.String(), "x") {
		t.Fatal("series label missing")
	}
}

func TestRunIdleCustomPipelines(t *testing.T) {
	s := testSetup()
	s.Frames = 40
	r, err := RunIdle(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pipelines != 3 || len(r.Idle) == 0 {
		t.Fatalf("result = %+v", r)
	}
}

func TestTable1RowLookup(t *testing.T) {
	tbl := Table1Result{Rows: []Table1Row{{Label: "a"}, {Label: "b"}}}
	if tbl.Row("b") == nil || tbl.Row("nope") != nil {
		t.Fatal("Row lookup broken")
	}
}

func TestAblationCSVAndTable1CSV(t *testing.T) {
	s := testSetup()
	s.Frames = 40
	ab, err := RunAblation(s)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := ab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "striped_partitions") {
		t.Error("ablation CSV missing variant")
	}
	tbl, err := RunTable1(s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MCPC, ordered") {
		t.Error("table1 CSV missing rows")
	}
	ad, err := RunAdaptive(s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ad.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "balanced") {
		t.Error("adaptive CSV missing rows")
	}
	f14, err := RunFig14(s)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f14.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "unordered") {
		t.Error("fig14 CSV missing rows")
	}
}
