package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/core"
	"sccpipe/internal/stats"
)

// Fig15Result reports per-stage idle-time statistics for the MCPC-renderer
// configuration with seven pipelines — the paper's box plot of time wasted
// waiting for the previous stage.
type Fig15Result struct {
	Pipelines int
	// Idle maps each filter stage to the summary of its per-frame waits,
	// pooled over pipelines.
	Idle map[core.StageKind]stats.Summary
}

func (r Fig15Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Idle times with MCPC renderer and %d pipelines (ms per frame)\n", r.Pipelines)
	for _, k := range core.FilterOrder {
		s := r.Idle[k]
		fmt.Fprintf(&b, "  %-9v q1 %7.1f  median %7.1f  q3 %7.1f\n",
			k, s.Q1*1e3, s.Median*1e3, s.Q3*1e3)
	}
	return b.String()
}

// RunFig15 measures stage idle times (MCPC renderer, 7 pipelines by
// default, as in the paper).
func RunFig15(s Setup) (Fig15Result, error) {
	return RunIdle(s, 7)
}

// RunIdle measures stage idle times for any pipeline count.
func RunIdle(s Setup, pipelines int) (Fig15Result, error) {
	wl := Workload(s)
	spec := core.Spec{
		Frames: s.Frames, Width: s.Width, Height: s.Height,
		Pipelines: pipelines, Renderer: core.HostRenderer,
	}
	res, err := core.Simulate(spec, wl, core.SimOptions{})
	if err != nil {
		return Fig15Result{}, err
	}
	out := Fig15Result{Pipelines: pipelines, Idle: make(map[core.StageKind]stats.Summary)}
	for kind, samples := range res.StageIdle {
		out.Idle[kind] = stats.Summarize(samples)
	}
	return out, nil
}
