package experiments

import (
	"encoding/csv"
	"io"
	"strconv"

	"sccpipe/internal/core"
)

// CSV export for every experiment result, for plotting the figures outside
// Go. Each WriteCSV emits a header row and one record per data point.

func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func itoa(v int) string     { return strconv.Itoa(v) }

// WriteCSV emits pipelines, arrangement, seconds rows.
func (r SweepResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"renderer", "arrangement", "pipelines", "seconds"}}
	for _, c := range r.Curves {
		for i := range c.X {
			rows = append(rows, []string{r.Renderer.String(), c.Label, ftoa(c.X[i]), ftoa(c.Y[i])})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits configuration, pipelines, seconds, paper_seconds rows.
func (t Table1Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"configuration", "pipelines", "seconds", "paper_seconds"}}
	for _, row := range t.Rows {
		paper := PaperTable1[row.Label]
		for k := 0; k < len(row.Seconds); k++ {
			if row.Seconds[k] == 0 {
				continue
			}
			p := ""
			if k < len(paper) {
				p = ftoa(paper[k])
			}
			rows = append(rows, []string{row.Label, itoa(k + 1), ftoa(row.Seconds[k]), p})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits stage, seconds rows plus the ablation totals.
func (r Fig8Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"stage", "seconds"}}
	for _, k := range core.SingleCoreStages {
		rows = append(rows, []string{k.String(), ftoa(r.StageSeconds[k])})
	}
	rows = append(rows,
		[]string{"total", ftoa(r.Total)},
		[]string{"render_only", ftoa(r.RenderOnly)},
		[]string{"render_transfer", ftoa(r.RenderTransfer)},
	)
	return writeAll(w, rows)
}

// WriteCSV emits side, kbytes, seconds rows.
func (r Fig12Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"side", "kbytes", "seconds"}}
	for i := range r.Sides {
		rows = append(rows, []string{itoa(r.Sides[i]), ftoa(r.KBytes[i]), ftoa(r.Seconds[i])})
	}
	return writeAll(w, rows)
}

// WriteCSV emits configuration, pipelines, seconds rows.
func (r ClusterResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"configuration", "pipelines", "seconds"}}
	for _, c := range r.Curves {
		for i := range c.X {
			rows = append(rows, []string{c.Label, ftoa(c.X[i]), ftoa(c.Y[i])})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits one row per power sample of every curve.
func (r Fig14Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"cpus", "pipelines", "arrangement", "t", "watts"}}
	for _, c := range r.Curves {
		for _, s := range c.Trace {
			rows = append(rows, []string{
				itoa(c.CPUs), itoa(c.Pipelines), c.Arr.String(), ftoa(s.T), ftoa(s.Watts),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits stage, q1, median, q3 rows (milliseconds).
func (r Fig15Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"stage", "q1_ms", "median_ms", "q3_ms"}}
	for _, k := range core.FilterOrder {
		s := r.Idle[k]
		rows = append(rows, []string{k.String(), ftoa(s.Q1 * 1e3), ftoa(s.Median * 1e3), ftoa(s.Q3 * 1e3)})
	}
	return writeAll(w, rows)
}

// WriteCSV emits plan, seconds, joules, watts rows.
func (r Fig16Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"plan", "seconds", "joules", "mean_watts"}}
	for _, run := range []DVFSRun{r.Base, r.FastBlur, r.Mixed} {
		rows = append(rows, []string{run.Label, ftoa(run.Seconds), ftoa(run.SCCEnergyJ), ftoa(run.MeanWatts)})
	}
	return writeAll(w, rows)
}

// WriteCSV emits the two configurations' seconds and joules.
func (r EnergyResult) WriteCSV(w io.Writer) error {
	return writeAll(w, [][]string{
		{"configuration", "seconds", "joules"},
		{"hybrid_mcpc_5pl", ftoa(r.HybridSeconds), ftoa(r.HybridJ)},
		{"all_scc_7pl", ftoa(r.AllSCCSeconds), ftoa(r.AllSCCJ)},
	})
}

// WriteCSV emits variant, pipelines, seconds rows.
func (r AblationResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"variant", "pipelines", "seconds"}}
	emit := func(name string, ys []float64) {
		for i, y := range ys {
			rows = append(rows, []string{name, itoa(r.Pipelines[i]), ftoa(y)})
		}
	}
	emit("baseline", r.Baseline)
	emit("local_memory", r.LocalMemory)
	emit("single_stream_mc", r.MemPorts1)
	emit("striped_partitions", r.Striped)
	return writeAll(w, rows)
}

// WriteCSV emits decomposition, pipelines, seconds rows.
func (r AdaptiveResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"decomposition", "pipelines", "seconds"}}
	for i := range r.Pipelines {
		rows = append(rows,
			[]string{"uniform", itoa(r.Pipelines[i]), ftoa(r.Uniform[i])},
			[]string{"balanced", itoa(r.Pipelines[i]), ftoa(r.Adaptive[i])},
		)
	}
	return writeAll(w, rows)
}

// WriteCSV emits blur_mhz, tail_mhz, seconds, joules, pareto rows.
func (r ParetoResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"blur_mhz", "tail_mhz", "seconds", "joules", "pareto"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			itoa(p.BlurMHz), itoa(p.TailMHz), ftoa(p.Seconds), ftoa(p.Joules),
			strconv.FormatBool(p.Pareto),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV emits side, bytes and per-pattern bytes/pixel rows.
func (r CacheStudyResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"side", "bytes", "sequential_bpp", "neighbour_bpp", "double_sweep_bpp"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			itoa(p.Side), itoa(p.Bytes), ftoa(p.Sequential), ftoa(p.Neighbour), ftoa(p.DoubleSweep),
		})
	}
	return writeAll(w, rows)
}
