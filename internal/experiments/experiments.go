// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI) on the simulated platform. Each RunXxx function executes
// the corresponding experiment and returns a structured result whose
// String method prints rows matching the paper's presentation; PaperXxx
// variables hold the published values for comparison.
//
// All experiments accept a Setup so tests can run shortened walkthroughs;
// DefaultSetup is the paper's 400-frame configuration.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"sccpipe/internal/core"
	"sccpipe/internal/render"
	"sccpipe/internal/scene"
)

// Setup fixes the walkthrough parameters shared by all experiments.
type Setup struct {
	Frames int
	Width  int
	Height int
	// SceneConfig generates the city; zero value means the default city.
	SceneConfig scene.Config
}

// DefaultSetup is the paper's walkthrough: 400 frames of a 512×512 image.
func DefaultSetup() Setup {
	return Setup{Frames: 400, Width: 512, Height: 512, SceneConfig: scene.DefaultConfig()}
}

// Scale converts a paper-reported duration (for 400 frames) to this
// setup's frame count, so shortened test runs compare against
// correspondingly shortened expectations.
func (s Setup) Scale(paperSeconds float64) float64 {
	return paperSeconds * float64(s.Frames) / 400.0
}

// lab builds workloads lazily and caches them per geometry; the octree is
// shared.
type lab struct {
	mu   sync.Mutex
	tree *render.Octree
	wls  map[[3]int]*core.Workload
	cfg  scene.Config
}

var labs sync.Map // scene.Config (comparable) -> *lab

func labFor(s Setup) *lab {
	cfg := s.SceneConfig
	if cfg == (scene.Config{}) {
		cfg = scene.DefaultConfig()
	}
	v, _ := labs.LoadOrStore(cfg, &lab{cfg: cfg, wls: make(map[[3]int]*core.Workload)})
	return v.(*lab)
}

// Workload returns the (cached) profiled walkthrough for a setup.
func Workload(s Setup) *core.Workload {
	l := labFor(s)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tree == nil {
		l.tree = render.BuildOctree(scene.City(l.cfg))
	}
	key := [3]int{s.Frames, s.Width, s.Height}
	if wl, ok := l.wls[key]; ok {
		return wl
	}
	wl := core.BuildWorkload(l.tree, s.Frames, s.Width, s.Height)
	l.wls[key] = wl
	return wl
}

// Tree returns the (cached) shared octree for a setup's scene — the input
// for experiments that execute real renders instead of simulating them.
func Tree(s Setup) *render.Octree {
	l := labFor(s)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tree == nil {
		l.tree = render.BuildOctree(scene.City(l.cfg))
	}
	return l.tree
}

// Series is a labelled sequence of (x, seconds) points, one figure curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

func (s Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s", s.Label)
	for i := range s.X {
		fmt.Fprintf(&b, " %8.1f", s.Y[i])
	}
	return b.String()
}

// Min returns the smallest Y value and its X.
func (s Series) Min() (x, y float64) {
	y = s.Y[0]
	x = s.X[0]
	for i := range s.Y {
		if s.Y[i] < y {
			y = s.Y[i]
			x = s.X[i]
		}
	}
	return x, y
}

// formatHeader prints an x-axis header line for pipeline-count series.
func formatHeader(label string, xs []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s", label)
	for _, x := range xs {
		fmt.Fprintf(&b, " %8g", x)
	}
	return b.String()
}
