package experiments

import (
	"strings"
	"testing"
)

func TestRunPlanBeatsStaticOnImbalance(t *testing.T) {
	s := testSetup()
	r, err := RunPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []PlanCase{r.Balanced, r.Imbalanced} {
		if c.StaticPlan == "" || c.ComputedPlan == "" {
			t.Fatalf("%s: empty plan strings: %+v", c.Label, c)
		}
		if c.StaticSimS <= 0 || c.ComputedSimS <= 0 {
			t.Fatalf("%s: non-positive simulated seconds: %+v", c.Label, c)
		}
		// The computed mapping must never lose to the static one — it can
		// always fall back to the static grouping (small jitter allowed).
		if c.ComputedSimS > c.StaticSimS*1.02 {
			t.Errorf("%s: computed sim %.2fs slower than static %.2fs",
				c.Label, c.ComputedSimS, c.StaticSimS)
		}
	}
	// Under the synthetic flicker imbalance the planner must move a fusion
	// boundary (the heavy point stage no longer shares a group with both
	// neighbors) and win clearly in simulation.
	if r.Imbalanced.ComputedPlan == r.Imbalanced.StaticPlan {
		t.Errorf("imbalanced: planner kept the static mapping %s", r.Imbalanced.StaticPlan)
	}
	if strings.Contains(r.Imbalanced.ComputedPlan, "[scratch+flicker+swap]") {
		t.Errorf("imbalanced: heavy flicker still fully fused: %s", r.Imbalanced.ComputedPlan)
	}
	if r.Imbalanced.ComputedSimS >= r.Imbalanced.StaticSimS*0.9 {
		t.Errorf("imbalanced: computed sim %.2fs, want clear win over static %.2fs",
			r.Imbalanced.ComputedSimS, r.Imbalanced.StaticSimS)
	}
	if !strings.Contains(r.String(), "imbalanced") {
		t.Error("String() missing imbalanced case")
	}
}
