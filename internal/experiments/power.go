package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/core"
	"sccpipe/internal/scc"
)

// Fig14Curve is one power trace of Fig. 14: an MCPC-renderer run at a given
// pipeline count and arrangement.
type Fig14Curve struct {
	Pipelines int
	CPUs      int // SCC cores in use (the paper labels curves by CPUs)
	Arr       core.Arrangement
	MeanWatts float64
	Trace     []scc.PowerSample
}

// Fig14Result is the power-vs-active-cores experiment.
type Fig14Result struct {
	Curves []Fig14Curve
}

func (r Fig14Result) String() string {
	var b strings.Builder
	b.WriteString("SCC power with MCPC renderer (mean watts over the run)\n")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "  %2d CPUs (%d pipelines, %-9v): %5.1f W\n", c.CPUs, c.Pipelines, c.Arr, c.MeanWatts)
	}
	return b.String()
}

// RunFig14 sweeps pipeline counts 1..8 (7..42 used cores, matching the
// paper's "7 CPUs".."42 CPUs" curves) across the three arrangements and
// records the chip power.
func RunFig14(s Setup) (Fig14Result, error) {
	wl := Workload(s)
	var out Fig14Result
	for _, ar := range core.Arrangements {
		for k := 1; k <= core.MaxPipelines(core.HostRenderer); k++ {
			spec := core.Spec{
				Frames: s.Frames, Width: s.Width, Height: s.Height,
				Pipelines: k, Arrangement: ar, Renderer: core.HostRenderer,
			}
			res, err := core.Simulate(spec, wl, core.SimOptions{})
			if err != nil {
				return Fig14Result{}, err
			}
			out.Curves = append(out.Curves, Fig14Curve{
				Pipelines: k,
				CPUs:      len(res.Placement.Cores()),
				Arr:       ar,
				MeanWatts: res.SCCEnergyJ / res.Seconds,
				Trace:     res.Power,
			})
		}
	}
	return out, nil
}

// EnergyResult reproduces the paper's §VI-B energy argument: the
// heterogeneous MCPC+SCC configuration at its sweet spot versus the best
// all-SCC configuration.
//
//	paper: 3.3 s · 28 W + 51 s · 50 W = 2642 J  vs  58 s · 58 W = 3364 J
type EnergyResult struct {
	HybridSeconds float64
	HybridJ       float64 // SCC energy + MCPC extra render energy
	AllSCCSeconds float64
	AllSCCJ       float64
}

func (r EnergyResult) String() string {
	return fmt.Sprintf(
		"hybrid (MCPC render, 5 pipelines):  %6.1f s  %7.1f J\nall-SCC (n renderers, 7 pipelines): %6.1f s  %7.1f J\n",
		r.HybridSeconds, r.HybridJ, r.AllSCCSeconds, r.AllSCCJ)
}

// PaperEnergy holds the published joule figures.
var PaperEnergy = struct{ HybridJ, AllSCCJ float64 }{HybridJ: 2642, AllSCCJ: 3364}

// RunEnergy compares the two best configurations' energy.
func RunEnergy(s Setup) (EnergyResult, error) {
	wl := Workload(s)
	hybrid, err := core.Simulate(core.Spec{
		Frames: s.Frames, Width: s.Width, Height: s.Height,
		Pipelines: 5, Renderer: core.HostRenderer,
	}, wl, core.SimOptions{})
	if err != nil {
		return EnergyResult{}, err
	}
	allSCC, err := core.Simulate(core.Spec{
		Frames: s.Frames, Width: s.Width, Height: s.Height,
		Pipelines: 7, Renderer: core.NRenderers,
	}, wl, core.SimOptions{})
	if err != nil {
		return EnergyResult{}, err
	}
	return EnergyResult{
		HybridSeconds: hybrid.Seconds,
		HybridJ:       hybrid.SCCEnergyJ + hybrid.HostExtraEnergyJ,
		AllSCCSeconds: allSCC.Seconds,
		AllSCCJ:       allSCC.SCCEnergyJ,
	}, nil
}
