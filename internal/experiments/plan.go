package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/core"
	"sccpipe/internal/pipe"
	"sccpipe/internal/plan"
)

// PlanResult is the profile-driven planner ablation: the static mapping
// the port hard-codes (maximal fusion at k=4) priced and simulated next to
// the mapping internal/plan computes from the same cost profile — first on
// the balanced model profile, then on a synthetically imbalanced one where
// the flicker stage is 25× heavier (a stand-in for a pathological filter
// parameterization). The planner answers imbalance by moving a fusion
// boundary (isolating the heavy point stage) and re-choosing the
// replication factor; the simulated walkthrough shows what that buys.
type PlanResult struct {
	// Workers is the machine budget the planner divided (SCC cores).
	Workers    int
	Balanced   PlanCase
	Imbalanced PlanCase
}

// PlanCase compares the static and computed mappings under one profile.
type PlanCase struct {
	Label string
	// The mappings in boundary notation (see plan.Plan.String).
	StaticPlan, ComputedPlan string
	// Predicted steady-state frame period from the planner's own arithmetic.
	StaticPredictedS, ComputedPredictedS float64
	// Simulated walkthrough seconds on the generic pipeline model.
	StaticSimS, ComputedSimS float64
}

func (r PlanResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Profile-driven stage planner vs static mapping (%d-core budget)\n", r.Workers)
	for _, c := range []PlanCase{r.Balanced, r.Imbalanced} {
		fmt.Fprintf(&b, "%s\n", c.Label)
		fmt.Fprintf(&b, "  static   %-44s period %8.4fs  sim %8.2fs\n",
			c.StaticPlan, c.StaticPredictedS, c.StaticSimS)
		fmt.Fprintf(&b, "  computed %-44s period %8.4fs  sim %8.2fs\n",
			c.ComputedPlan, c.ComputedPredictedS, c.ComputedSimS)
	}
	return b.String()
}

// planStaticK is the hard-coded replication factor the static mapping uses
// (the serve layer's default job shape).
const planStaticK = 4

// RunPlan runs the planner ablation on the n-renderer configuration.
func RunPlan(s Setup) (PlanResult, error) {
	wl := Workload(s)
	pr := plan.ModelProfile(core.DefaultCostModel(), wl)
	cfg := plan.Config{Renderer: core.NRenderers, Height: s.Height, Workers: 48}
	out := PlanResult{Workers: cfg.Workers}

	var err error
	out.Balanced, err = runPlanCase(s, wl, pr, cfg, "balanced (model profile)", nil)
	if err != nil {
		return PlanResult{}, err
	}
	imb := pr
	imb.Filters = make(map[core.StageKind]float64, len(pr.Filters))
	for k, v := range pr.Filters {
		imb.Filters[k] = v
	}
	imb.Filters[core.StageFlicker] *= 25
	out.Imbalanced, err = runPlanCase(s, wl, imb, cfg, "imbalanced (flicker ×25)",
		map[core.StageKind]float64{core.StageFlicker: 25})
	if err != nil {
		return PlanResult{}, err
	}
	return out, nil
}

func runPlanCase(s Setup, wl *core.Workload, pr plan.Profile, cfg plan.Config,
	label string, scale map[core.StageKind]float64) (PlanCase, error) {
	static := plan.Static(planStaticK, cfg.OrientedScratches)
	staticEval := plan.Evaluate(pr, cfg, static.Pipelines, static.Stages.Groups)
	computed, err := plan.Compute(pr, cfg)
	if err != nil {
		return PlanCase{}, fmt.Errorf("plan %s: %w", label, err)
	}
	c := PlanCase{
		Label:              label,
		StaticPlan:         static.String(),
		ComputedPlan:       computed.String(),
		StaticPredictedS:   staticEval.PeriodS,
		ComputedPredictedS: computed.PeriodS,
	}
	if c.StaticSimS, err = simulatePlan(s, wl, static, scale); err != nil {
		return PlanCase{}, fmt.Errorf("plan %s static sim: %w", label, err)
	}
	if c.ComputedSimS, err = simulatePlan(s, wl, computed, scale); err != nil {
		return PlanCase{}, fmt.Errorf("plan %s computed sim: %w", label, err)
	}
	return c, nil
}

// simulatePlan runs the walkthrough on the generic pipeline model under a
// given mapping: the chain is the same one the fusion ablation lowers, but
// the stage layout comes from the plan's fusion groups (via pipe.Chain
// Groups) instead of the chain's own auto-detection, and per-stage costs
// may be scaled to model a synthetic imbalance.
func simulatePlan(s Setup, wl *core.Workload, p plan.Plan, scale map[core.StageKind]float64) (float64, error) {
	k := p.Pipelines
	c := planChain(s, wl, k, scale)
	c.Groups = lowerPlanGroups(p.Stages.Groups)
	res, err := c.Simulate(pipe.SimSpec{Pipelines: k, Items: s.Frames})
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

// planChain is fusionChain with optional per-kind cost multipliers.
func planChain(s Setup, wl *core.Workload, k int, scale map[core.StageKind]float64) *pipe.Chain {
	m := core.DefaultCostModel()
	stats := wl.StripStats(k)
	stages := []pipe.Stage{{
		Name: core.StageRender.String(),
		CostRef: func(it pipe.Item) float64 {
			return m.RenderCompute(stats[it.Seq][it.Pipeline], wl.StripPixels(k, it.Pipeline))
		},
	}}
	for _, kind := range core.FilterOrder {
		kind := kind
		mult := 1.0
		if f, ok := scale[kind]; ok {
			mult = f
		}
		stages = append(stages, pipe.Stage{
			Name:    kind.String(),
			Fusable: kind != core.StageBlur,
			CostRef: func(it pipe.Item) float64 {
				return mult * m.FilterComputeFor(kind, wl.StripPixels(k, it.Pipeline))
			},
		})
	}
	return &pipe.Chain{
		Stages: stages,
		Feed: func(pl, seq int) (pipe.Item, bool) {
			if seq >= s.Frames {
				return pipe.Item{}, false
			}
			return pipe.Item{Bytes: wl.StripBytes(k, pl)}, true
		},
	}
}

// lowerPlanGroups maps the plan's filter groups onto chain stage indices:
// stage 0 is the renderer, the filters follow in FilterOrder, so the
// plan's groups lower to consecutive indices starting at 1.
func lowerPlanGroups(groups [][]core.StageKind) [][]int {
	out := [][]int{{0}}
	idx := 1
	for _, g := range groups {
		grp := make([]int, len(g))
		for i := range grp {
			grp[i] = idx
			idx++
		}
		out = append(out, grp)
	}
	return out
}
