package experiments

import (
	"fmt"
	"strings"

	"sccpipe/internal/core"
)

// SweepResult is a pipeline-count sweep for one renderer configuration:
// one curve per arrangement (Figs. 9, 10, 11).
type SweepResult struct {
	Renderer core.RendererConfig
	Curves   []Series // one per arrangement, X = pipeline count
}

func (r SweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Walkthrough seconds vs pipelines, %v\n", r.Renderer)
	b.WriteString(formatHeader("pipelines", r.Curves[0].X))
	b.WriteByte('\n')
	for _, c := range r.Curves {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RunSweep sweeps pipeline counts 1..MaxPipelines for a renderer
// configuration across all three arrangements.
func RunSweep(s Setup, rc core.RendererConfig) (SweepResult, error) {
	wl := Workload(s)
	out := SweepResult{Renderer: rc}
	maxK := core.MaxPipelines(rc)
	for _, ar := range core.Arrangements {
		series := Series{Label: ar.String()}
		for k := 1; k <= maxK; k++ {
			spec := core.Spec{
				Frames: s.Frames, Width: s.Width, Height: s.Height,
				Pipelines: k, Arrangement: ar, Renderer: rc,
			}
			res, err := core.Simulate(spec, wl, core.SimOptions{})
			if err != nil {
				return SweepResult{}, err
			}
			series.X = append(series.X, float64(k))
			series.Y = append(series.Y, res.Seconds)
		}
		out.Curves = append(out.Curves, series)
	}
	return out, nil
}

// RunFig9 reproduces Fig. 9 (one renderer with multiple pipelines).
func RunFig9(s Setup) (SweepResult, error) { return RunSweep(s, core.OneRenderer) }

// RunFig10 reproduces Fig. 10 (one renderer per pipeline).
func RunFig10(s Setup) (SweepResult, error) { return RunSweep(s, core.NRenderers) }

// RunFig11 reproduces Fig. 11 (MCPC renders, SCC filters).
func RunFig11(s Setup) (SweepResult, error) { return RunSweep(s, core.HostRenderer) }

// Table1Row identifies one row of the paper's Table I.
type Table1Row struct {
	Label    string
	Renderer core.RendererConfig
	Arr      core.Arrangement
	Cluster  bool
	Seconds  []float64 // k = 1..7
}

// Table1Result is the full results grid.
type Table1Result struct {
	Rows []Table1Row
}

func (t Table1Result) String() string {
	var b strings.Builder
	b.WriteString(formatHeader("configuration", []float64{1, 2, 3, 4, 5, 6, 7}))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-24s", r.Label)
		for _, v := range r.Seconds {
			if v == 0 {
				fmt.Fprintf(&b, " %8s", "-")
			} else {
				fmt.Fprintf(&b, " %8.0f", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Row returns the row with the given label, or nil.
func (t Table1Result) Row(label string) *Table1Row {
	for i := range t.Rows {
		if t.Rows[i].Label == label {
			return &t.Rows[i]
		}
	}
	return nil
}

// PaperTable1 holds the published Table I (seconds, k = 1..7).
var PaperTable1 = map[string][]float64{
	"1 rend., unordered":  {207, 107, 102, 102, 102, 101, 101},
	"1 rend., ordered":    {208, 108, 104, 103, 102, 101, 101},
	"1 rend., flipped":    {208, 107, 102, 102, 102, 101, 101},
	"n rend., unordered":  {235, 117, 78, 69, 65, 62, 58},
	"n rend., ordered":    {236, 118, 79, 68, 65, 61, 58},
	"n rend., flipped":    {236, 117, 79, 68, 65, 61, 59},
	"MCPC, unordered":     {231, 113, 72, 54, 54, 55, 54},
	"MCPC, ordered":       {231, 112, 70, 54, 53, 55, 54},
	"MCPC, flipped":       {232, 113, 72, 54, 51, 54, 54},
	"HPC, external rend.": {32, 24, 20, 20, 19, 20, 18},
	"HPC, single rend.":   {26, 14, 10, 7, 6, 5, 4},
	"HPC, parallel rend.": {25, 14, 10, 8, 6, 5, 4},
}

// RunTable1 reproduces the paper's complete Table I: nine SCC rows (three
// renderer configurations × three arrangements) and three cluster rows.
func RunTable1(s Setup) (Table1Result, error) {
	wl := Workload(s)
	var t Table1Result
	type cfg struct {
		name string
		rc   core.RendererConfig
	}
	for _, c := range []cfg{
		{"1 rend.", core.OneRenderer},
		{"n rend.", core.NRenderers},
		{"MCPC", core.HostRenderer},
	} {
		for _, ar := range core.Arrangements {
			row := Table1Row{
				Label:    fmt.Sprintf("%s, %v", c.name, ar),
				Renderer: c.rc,
				Arr:      ar,
			}
			for k := 1; k <= 7; k++ {
				if k > core.MaxPipelines(c.rc) {
					row.Seconds = append(row.Seconds, 0)
					continue
				}
				spec := core.Spec{
					Frames: s.Frames, Width: s.Width, Height: s.Height,
					Pipelines: k, Arrangement: ar, Renderer: c.rc,
				}
				res, err := core.Simulate(spec, wl, core.SimOptions{})
				if err != nil {
					return Table1Result{}, err
				}
				row.Seconds = append(row.Seconds, res.Seconds)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	clusterRows, err := runClusterRows(s, wl)
	if err != nil {
		return Table1Result{}, err
	}
	t.Rows = append(t.Rows, clusterRows...)
	return t, nil
}
