package des

import "container/heap"

// Resource models a FIFO service station with a fixed number of identical
// servers, such as a mesh link (capacity 1) or a memory controller port.
// Requests are serviced in arrival order and are non-preemptive: Use blocks
// the calling process until its service of the given duration completes.
//
// The implementation keeps only the servers' next-free times, so a Use is
// O(log capacity) and needs no waiter bookkeeping: because requests are
// FIFO and non-preemptive, the finish time of a request is determined at
// arrival.
type Resource struct {
	freeAt busyHeap

	// Busy accumulates total busy server-seconds, for utilization reports.
	Busy float64
	// Served counts completed requests.
	Served int
}

type busyHeap []float64

func (h busyHeap) Len() int           { return len(h) }
func (h busyHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h busyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *busyHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *busyHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// NewResource returns a resource with the given number of servers.
func NewResource(capacity int) *Resource {
	if capacity < 1 {
		panic("des: resource capacity must be ≥ 1")
	}
	r := &Resource{freeAt: make(busyHeap, capacity)}
	return r
}

// ReserveAt computes and books the service interval for a request arriving
// at time `at` with duration d, returning the completion time. It does not
// block; pair it with Proc.WaitUntil, or use Use.
func (r *Resource) ReserveAt(at, d float64) (done float64) {
	start := r.freeAt[0]
	if start < at {
		start = at
	}
	done = start + d
	r.freeAt[0] = done
	heap.Fix(&r.freeAt, 0)
	r.Busy += d
	r.Served++
	return done
}

// Use blocks the process until the resource has serviced a request of
// duration d issued now, and returns the queueing delay experienced.
func (r *Resource) Use(p *Proc, d float64) (waited float64) {
	now := p.Now()
	done := r.ReserveAt(now, d)
	waited = done - d - now
	p.WaitUntil(done)
	return waited
}

// NextFree reports the earliest time at which some server is free.
func (r *Resource) NextFree() float64 { return r.freeAt[0] }

// Utilization reports busy server-seconds divided by capacity×elapsed.
func (r *Resource) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return r.Busy / (float64(len(r.freeAt)) * elapsed)
}
