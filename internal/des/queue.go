package des

import "fmt"

// Queue is a FIFO channel between simulated processes with an optional
// capacity bound. Get blocks the calling process while the queue is empty;
// Put blocks while the queue is full (for bounded queues). Waiting processes
// are served in FIFO order, which keeps simulations deterministic.
type Queue struct {
	eng        *Engine
	cap        int // 0 means unbounded
	items      []any
	getWaiters []*Proc
	putWaiters []putWaiter

	// Label names the queue in quiesce diagnostics ("mail 3->7"); optional.
	Label string

	// PutCount and GetCount count completed operations, for instrumentation.
	PutCount int
	GetCount int
}

// label describes the queue for diagnostics.
func (q *Queue) label() string {
	if q.Label != "" {
		return fmt.Sprintf("%q", q.Label)
	}
	return fmt.Sprintf("queue(len=%d)", len(q.items))
}

type putWaiter struct {
	p    *Proc
	item any
}

// NewQueue returns a queue with the given capacity; capacity 0 means
// unbounded.
func NewQueue(e *Engine, capacity int) *Queue {
	if capacity < 0 {
		panic("des: negative queue capacity")
	}
	return &Queue{eng: e, cap: capacity}
}

// Len reports the number of items currently buffered.
func (q *Queue) Len() int { return len(q.items) }

// Put appends an item, blocking the calling process while the queue is full.
func (q *Queue) Put(p *Proc, item any) {
	if q.cap != 0 && len(q.items) >= q.cap && len(q.getWaiters) == 0 {
		q.putWaiters = append(q.putWaiters, putWaiter{p: p, item: item})
		p.blocked = "Put on " + q.label()
		p.cancel = func() { q.dropPutWaiter(p) }
		p.park() // woken by a Get that makes room
		q.PutCount++
		return
	}
	q.deliver(item)
	q.PutCount++
}

// dropPutWaiter removes an unwound proc (and its undelivered item) from the
// put-waiter list.
func (q *Queue) dropPutWaiter(p *Proc) {
	for i, w := range q.putWaiters {
		if w.p == p {
			q.putWaiters = append(q.putWaiters[:i], q.putWaiters[i+1:]...)
			return
		}
	}
}

// dropGetWaiter removes an unwound proc from the get-waiter list.
func (q *Queue) dropGetWaiter(p *Proc) {
	for i, w := range q.getWaiters {
		if w == p {
			q.getWaiters = append(q.getWaiters[:i], q.getWaiters[i+1:]...)
			return
		}
	}
}

// TryPut appends an item without blocking; it reports false if the queue is
// full. It may be called from engine callbacks (no Proc required).
func (q *Queue) TryPut(item any) bool {
	if q.cap != 0 && len(q.items) >= q.cap && len(q.getWaiters) == 0 {
		return false
	}
	q.deliver(item)
	q.PutCount++
	return true
}

// deliver hands the item to the oldest waiting getter, or buffers it.
func (q *Queue) deliver(item any) {
	if len(q.getWaiters) > 0 {
		w := q.getWaiters[0]
		q.getWaiters = q.getWaiters[1:]
		// Resume the getter at the current instant, carrying the item.
		q.eng.schedule(&event{t: q.eng.now, proc: w, val: item})
		return
	}
	q.items = append(q.items, item)
}

// Get removes and returns the oldest item, blocking the calling process
// while the queue is empty.
func (q *Queue) Get(p *Proc) any {
	if len(q.items) == 0 {
		q.getWaiters = append(q.getWaiters, p)
		p.blocked = "Get on " + q.label()
		p.cancel = func() { q.dropGetWaiter(p) }
		v := p.park()
		q.GetCount++
		return v
	}
	item := q.items[0]
	q.items = q.items[1:]
	// Make room: admit the oldest blocked putter, if any.
	if len(q.putWaiters) > 0 {
		pw := q.putWaiters[0]
		q.putWaiters = q.putWaiters[1:]
		q.items = append(q.items, pw.item)
		q.eng.schedule(&event{t: q.eng.now, proc: pw.p})
	}
	q.GetCount++
	return item
}

// TryGet removes and returns the oldest item without blocking; ok is false
// if the queue is empty.
func (q *Queue) TryGet() (item any, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	item = q.items[0]
	q.items = q.items[1:]
	if len(q.putWaiters) > 0 {
		pw := q.putWaiters[0]
		q.putWaiters = q.putWaiters[1:]
		q.items = append(q.items, pw.item)
		q.eng.schedule(&event{t: q.eng.now, proc: pw.p})
	}
	q.GetCount++
	return item, true
}
