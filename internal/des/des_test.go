package des

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %g, want 0", e.Now())
	}
}

func TestCallbackOrdering(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, d := range []float64{3, 1, 2, 1.5} {
		d := d
		e.At(d, func() { got = append(got, d) })
	}
	e.Run()
	want := []float64{1, 1.5, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("callback order = %v, want %v", got, want)
	}
	if e.Now() != 3 {
		t.Fatalf("final Now() = %g, want 3", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("simultaneous events ran out of schedule order: %v", got)
	}
}

func TestProcWait(t *testing.T) {
	e := NewEngine()
	var trace []float64
	e.Spawn("w", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Wait(2.5)
			trace = append(trace, p.Now())
		}
	})
	e.Run()
	want := []float64{2.5, 5, 7.5, 10}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestInterleavedProcs(t *testing.T) {
	e := NewEngine()
	var got []string
	mk := func(name string, period float64, n int) {
		e.Spawn(name, func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Wait(period)
				got = append(got, name)
			}
		})
	}
	mk("a", 2, 3) // fires at 2,4,6
	mk("b", 3, 2) // fires at 3,6
	e.Run()
	// At t=6 both fire; b's event was scheduled earlier (t=3 vs t=4) so it
	// carries the lower sequence number and resumes first.
	want := []string{"a", "b", "a", "b", "a"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("interleaving = %v, want %v", got, want)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	e.At(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %g, want 5", e.Now())
	}
	e.Run()
	if fired != 2 || e.Now() != 10 {
		t.Fatalf("after Run: fired=%d now=%g", fired, e.Now())
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestNegativeWaitPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Wait(-1) did not panic")
			}
		}()
		p.Wait(-1)
	})
	e.Run()
}

func TestQueueUnboundedFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 0)
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Wait(1)
			q.Put(p, i)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	e.Run()
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 0)
	var when float64
	e.Spawn("consumer", func(p *Proc) {
		q.Get(p)
		when = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Wait(7)
		q.Put(p, "x")
	})
	e.Run()
	if when != 7 {
		t.Fatalf("consumer resumed at %g, want 7", when)
	}
}

func TestQueueBoundedBackpressure(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 2)
	var putTimes []float64
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			q.Put(p, i)
			putTimes = append(putTimes, p.Now())
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Wait(10)
			q.Get(p)
		}
	})
	e.Run()
	// Puts 0 and 1 fill the buffer at t=0; put 2 must wait for the first
	// Get at t=10, put 3 for the second Get at t=20.
	want := []float64{0, 0, 10, 20}
	if !reflect.DeepEqual(putTimes, want) {
		t.Fatalf("putTimes = %v, want %v", putTimes, want)
	}
}

func TestQueueMultipleGettersFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 0)
	var got []string
	spawnGetter := func(name string) {
		e.Spawn(name, func(p *Proc) {
			q.Get(p)
			got = append(got, name)
		})
	}
	spawnGetter("first")
	spawnGetter("second")
	e.Spawn("producer", func(p *Proc) {
		p.Wait(1)
		q.Put(p, 1)
		q.Put(p, 2)
	})
	e.Run()
	if !reflect.DeepEqual(got, []string{"first", "second"}) {
		t.Fatalf("getter wake order = %v", got)
	}
}

func TestQueueTryOps(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if !q.TryPut("a") {
		t.Fatal("TryPut on empty bounded queue failed")
	}
	if q.TryPut("b") {
		t.Fatal("TryPut on full queue succeeded")
	}
	v, ok := q.TryGet()
	if !ok || v != "a" {
		t.Fatalf("TryGet = %v,%v", v, ok)
	}
}

func TestResourceSingleServerFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(1)
	var done []float64
	for i := 0; i < 3; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Use(p, 4)
			done = append(done, p.Now())
		})
	}
	e.Run()
	want := []float64{4, 8, 12}
	if !reflect.DeepEqual(done, want) {
		t.Fatalf("completion times = %v, want %v", done, want)
	}
	if r.Served != 3 {
		t.Fatalf("Served = %d", r.Served)
	}
	if got := r.Utilization(12); got != 1 {
		t.Fatalf("utilization = %g, want 1", got)
	}
}

func TestResourceMultiServer(t *testing.T) {
	e := NewEngine()
	r := NewResource(2)
	var done []float64
	for i := 0; i < 4; i++ {
		e.Spawn("u", func(p *Proc) {
			r.Use(p, 6)
			done = append(done, p.Now())
		})
	}
	e.Run()
	want := []float64{6, 6, 12, 12}
	if !reflect.DeepEqual(done, want) {
		t.Fatalf("completion times = %v, want %v", done, want)
	}
}

func TestResourceWaitedReported(t *testing.T) {
	e := NewEngine()
	r := NewResource(1)
	var waits []float64
	for i := 0; i < 2; i++ {
		e.Spawn("u", func(p *Proc) {
			waits = append(waits, r.Use(p, 3))
		})
	}
	e.Run()
	if waits[0] != 0 || waits[1] != 3 {
		t.Fatalf("waits = %v, want [0 3]", waits)
	}
}

func TestResourceIdleGapNotCounted(t *testing.T) {
	e := NewEngine()
	r := NewResource(1)
	e.Spawn("u", func(p *Proc) {
		p.Wait(10)
		r.Use(p, 2)
	})
	e.Run()
	if e.Now() != 12 {
		t.Fatalf("Now = %g, want 12 (service starts at arrival, not 0)", e.Now())
	}
}

// Property: for any set of non-negative delays, callbacks fire in
// nondecreasing time order and the engine ends at the max delay.
func TestQuickCallbackOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var times []float64
		maxT := 0.0
		for _, r := range raw {
			d := float64(r) / 16.0
			if d > maxT {
				maxT = d
			}
			e.At(d, func() { times = append(times, e.Now()) })
		}
		e.Run()
		if len(times) != len(raw) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(raw) == 0 || e.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a single-server resource serializes any workload, so total
// makespan equals the sum of service times when all requests arrive at 0.
func TestQuickResourceSerialization(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		r := NewResource(1)
		total := 0.0
		for _, d := range raw {
			d := float64(d) / 8.0
			total += d
			e.Spawn("u", func(p *Proc) { r.Use(p, d) })
		}
		e.Run()
		return almost(e.Now(), total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue preserves FIFO order for any interleaving of producer
// delays.
func TestQuickQueueFIFO(t *testing.T) {
	f := func(delays []uint8, capRaw uint8) bool {
		e := NewEngine()
		capacity := int(capRaw % 5) // 0..4; 0 = unbounded
		q := NewQueue(e, capacity)
		n := len(delays)
		var got []int
		e.Spawn("producer", func(p *Proc) {
			for i, d := range delays {
				p.Wait(float64(d) / 4.0)
				q.Put(p, i)
			}
		})
		e.Spawn("consumer", func(p *Proc) {
			for i := 0; i < n; i++ {
				got = append(got, q.Get(p).(int))
			}
		})
		e.Run()
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return len(got) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a deterministic simulation run twice produces identical traces.
func TestQuickDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		q := NewQueue(e, 3)
		r := NewResource(2)
		var trace []float64
		for i := 0; i < 5; i++ {
			period := 0.5 + rng.Float64()
			e.Spawn("producer", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Wait(period)
					r.Use(p, period/3)
					q.Put(p, j)
				}
			})
		}
		e.Spawn("consumer", func(p *Proc) {
			for j := 0; j < 50; j++ {
				q.Get(p)
				trace = append(trace, p.Now())
			}
		})
		e.Run()
		return trace
	}
	f := func(seed int64) bool {
		return reflect.DeepEqual(run(seed), run(seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveProcsAccounting(t *testing.T) {
	e := NewEngine()
	e.Spawn("short", func(p *Proc) { p.Wait(1) })
	e.Spawn("long", func(p *Proc) { p.Wait(5) })
	if e.LiveProcs() != 2 {
		t.Fatalf("LiveProcs = %d, want 2", e.LiveProcs())
	}
	e.Run()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Run = %d, want 0", e.LiveProcs())
	}
}

func TestProcParkedAtQuiescence(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 0)
	e.Spawn("starved", func(p *Proc) { q.Get(p) })
	e.Run() // must terminate and unwind the forever-parked proc
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0 (unwound)", e.LiveProcs())
	}
	if !e.Quiesced() {
		t.Fatal("quiesced run not reported")
	}
	procs := e.QuiescedProcs()
	if len(procs) != 1 || procs[0].Name != "starved" {
		t.Fatalf("QuiescedProcs = %+v", procs)
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9*(1+b)
}

func TestProcStallReportedAtQuiescence(t *testing.T) {
	e := NewEngine()
	e.Spawn("healthy", func(p *Proc) { p.Wait(3) })
	e.Spawn("wedged", func(p *Proc) {
		p.Wait(1)
		p.Stall("injected stall in blur2")
	})
	e.Run()
	if e.Err() != nil {
		t.Fatalf("Err = %v", e.Err())
	}
	if got := e.Now(); !almost(got, 3) {
		t.Errorf("Now = %g, want 3 (rest of the sim keeps running)", got)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0 (stalled proc unwound)", e.LiveProcs())
	}
	if !e.Quiesced() {
		t.Fatal("stall not reported as quiesce")
	}
	procs := e.QuiescedProcs()
	if len(procs) != 1 || procs[0].Name != "wedged" || procs[0].WaitingOn != "injected stall in blur2" {
		t.Fatalf("QuiescedProcs = %+v, want wedged waiting on the injected reason", procs)
	}
	if rep := e.QuiescedReport(); !strings.Contains(rep, "wedged") || !strings.Contains(rep, "injected stall in blur2") {
		t.Errorf("QuiescedReport = %q", rep)
	}
}

func TestProcStallDefaultReason(t *testing.T) {
	e := NewEngine()
	e.Spawn("w", func(p *Proc) { p.Stall("") })
	e.Run()
	if procs := e.QuiescedProcs(); len(procs) != 1 || procs[0].WaitingOn != "a permanent stall" {
		t.Fatalf("QuiescedProcs = %+v", procs)
	}
}
