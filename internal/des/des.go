// Package des implements a small deterministic discrete-event simulation
// kernel in the style of SimPy: simulated processes are goroutines that run
// one at a time under the control of an Engine, advancing a simulated clock.
//
// The kernel provides:
//
//   - Engine: the event loop and simulated clock.
//   - Proc: a simulated process with Wait/WaitUntil blocking primitives.
//   - Queue: a bounded or unbounded FIFO channel between processes.
//   - Resource: a FIFO server with capacity, used to model bandwidth-limited
//     devices such as mesh links and memory controllers.
//
// Determinism: exactly one process runs at any instant; simultaneous events
// are ordered by schedule sequence number, so a simulation with a fixed seed
// always produces identical results.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// event is a scheduled occurrence: either the resumption of a parked process
// (with an optional value handed to it) or a plain callback.
type event struct {
	t    float64
	seq  uint64
	proc *Proc
	val  any
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)    { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any      { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() *event   { return h[0] }
func (h eventHeap) empty() bool    { return len(h) == 0 }
func (h eventHeap) String() string { return fmt.Sprintf("eventHeap(len=%d)", len(h)) }

// Engine is the simulation kernel: an event queue plus the simulated clock.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     float64
	seq     uint64
	events  eventHeap
	yielded chan struct{} // signalled by a proc when it parks or finishes
	nprocs  int           // live (spawned, unfinished) processes
	running bool
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yielded: make(chan struct{})}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// schedule enqueues an event at absolute time t.
func (e *Engine) schedule(ev *event) {
	if ev.t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past: %g < %g", ev.t, e.now))
	}
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.events, ev)
}

// At schedules fn to run at absolute simulated time t. fn runs in the
// engine's context and must not block; to model a blocking activity, Spawn
// a process instead.
func (e *Engine) At(t float64, fn func()) {
	e.schedule(&event{t: t, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Proc is a simulated process. Its methods may only be called from within
// the process's own body function.
type Proc struct {
	Name   string
	eng    *Engine
	resume chan any
	dead   bool
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.eng.now }

// Spawn creates a process and schedules it to start at the current time.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, body)
}

// SpawnAt creates a process that starts at absolute time t.
func (e *Engine) SpawnAt(t float64, name string, body func(p *Proc)) *Proc {
	p := &Proc{Name: name, eng: e, resume: make(chan any)}
	e.nprocs++
	go func() {
		<-p.resume // wait for the engine to start us
		body(p)
		p.dead = true
		e.nprocs--
		e.yielded <- struct{}{}
	}()
	e.schedule(&event{t: t, proc: p})
	return p
}

// park transfers control back to the engine and blocks until the process is
// resumed; it returns the value the resumption event carries.
func (p *Proc) park() any {
	p.eng.yielded <- struct{}{}
	return <-p.resume
}

// Wait advances the process by d simulated seconds. Negative d is an error.
func (p *Proc) Wait(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("des: Wait(%g)", d))
	}
	p.WaitUntil(p.eng.now + d)
}

// WaitUntil blocks the process until absolute simulated time t (which must
// not be in the past).
func (p *Proc) WaitUntil(t float64) {
	p.eng.schedule(&event{t: t, proc: p})
	p.park()
}

// step dispatches the earliest pending event. It reports false when the
// event queue is empty.
func (e *Engine) step() bool {
	if e.events.empty() {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.t
	switch {
	case ev.fn != nil:
		ev.fn()
	case ev.proc != nil:
		ev.proc.resume <- ev.val
		<-e.yielded
	}
	return true
}

// Run executes events until none remain. Processes still parked on empty
// Queues when the event horizon is reached are left parked (the simulation
// has quiesced), mirroring SimPy semantics.
func (e *Engine) Run() {
	if e.running {
		panic("des: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.step() {
	}
}

// RunUntil executes events with time ≤ t and then sets the clock to t.
func (e *Engine) RunUntil(t float64) {
	if e.running {
		panic("des: RunUntil re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.events.empty() && e.events.peek().t <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of spawned processes that have not finished.
func (e *Engine) LiveProcs() int { return e.nprocs }
