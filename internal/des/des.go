// Package des implements a small deterministic discrete-event simulation
// kernel in the style of SimPy: simulated processes are goroutines that run
// one at a time under the control of an Engine, advancing a simulated clock.
//
// The kernel provides:
//
//   - Engine: the event loop and simulated clock.
//   - Proc: a simulated process with Wait/WaitUntil blocking primitives.
//   - Queue: a bounded or unbounded FIFO channel between processes.
//   - Resource: a FIFO server with capacity, used to model bandwidth-limited
//     devices such as mesh links and memory controllers.
//
// Determinism: exactly one process runs at any instant; simultaneous events
// are ordered by schedule sequence number, so a simulation with a fixed seed
// always produces identical results.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"runtime/debug"
	"strings"
)

// event is a scheduled occurrence: either the resumption of a parked process
// (with an optional value handed to it) or a plain callback.
type event struct {
	t    float64
	seq  uint64
	proc *Proc
	val  any
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)  { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)    { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any      { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() *event   { return h[0] }
func (h eventHeap) empty() bool    { return len(h) == 0 }
func (h eventHeap) String() string { return fmt.Sprintf("eventHeap(len=%d)", len(h)) }

// Engine is the simulation kernel: an event queue plus the simulated clock.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now      float64
	seq      uint64
	events   eventHeap
	yielded  chan struct{} // signalled by a proc when it parks or finishes
	procs    []*Proc       // every spawned proc, in spawn order
	nprocs   int           // live (spawned, unfinished) processes
	running  bool
	failure  error // first proc-body panic, converted to an error
	quiesced []ParkedProc
}

// ParkedProc describes one process that was still parked when the engine
// reached the event horizon and had to be unwound.
type ParkedProc struct {
	// Name is the process name given to Spawn.
	Name string
	// WaitingOn describes the blocking operation the process was parked in,
	// e.g. `Get on "mail 3->7"`.
	WaitingOn string
}

// unwindSignal is the poison-pill resume value and sentinel panic that
// unwinds a parked process's goroutine; SpawnAt recovers it.
type unwindSignal struct{}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{yielded: make(chan struct{})}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// schedule enqueues an event at absolute time t.
func (e *Engine) schedule(ev *event) {
	if ev.t < e.now {
		panic(fmt.Sprintf("des: scheduling into the past: %g < %g", ev.t, e.now))
	}
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.events, ev)
}

// At schedules fn to run at absolute simulated time t. fn runs in the
// engine's context and must not block; to model a blocking activity, Spawn
// a process instead.
func (e *Engine) At(t float64, fn func()) {
	e.schedule(&event{t: t, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Proc is a simulated process. Its methods may only be called from within
// the process's own body function.
type Proc struct {
	Name   string
	eng    *Engine
	resume chan any
	dead   bool
	// blocked describes what the proc is parked on when it has no pending
	// resume event (set by Queue and friends); "" while runnable.
	blocked string
	// cancel removes the proc from whatever waiter list holds it, so an
	// unwound proc is not resumed by a later queue operation.
	cancel func()
	// poisoned marks a proc being unwound: any further attempt to park
	// re-raises the unwind sentinel instead of touching engine channels.
	poisoned bool
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() float64 { return p.eng.now }

// Spawn creates a process and schedules it to start at the current time.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, body)
}

// SpawnAt creates a process that starts at absolute time t.
//
// A panic in body does not crash the program: it is recovered, recorded as
// the engine's failure (see Err), and ends the run. Process bodies should
// therefore not install blanket recovers of their own — they would swallow
// the unwind sentinel the engine uses to reclaim parked goroutines.
func (e *Engine) SpawnAt(t float64, name string, body func(p *Proc)) *Proc {
	p := &Proc{Name: name, eng: e, resume: make(chan any)}
	e.nprocs++
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, unwind := r.(unwindSignal); !unwind && e.failure == nil {
					e.failure = fmt.Errorf("des: proc %q panicked: %v\n%s", p.Name, r, debug.Stack())
				}
			}
			p.dead = true
			e.nprocs--
			e.yielded <- struct{}{}
		}()
		if v := <-p.resume; isUnwind(v) { // wait for the engine to start us
			return
		}
		body(p)
	}()
	e.schedule(&event{t: t, proc: p})
	return p
}

func isUnwind(v any) bool { _, ok := v.(unwindSignal); return ok }

// park transfers control back to the engine and blocks until the process is
// resumed; it returns the value the resumption event carries. A poison-pill
// resume unwinds the goroutine via the sentinel panic.
func (p *Proc) park() any {
	if p.poisoned {
		panic(unwindSignal{})
	}
	p.eng.yielded <- struct{}{}
	v := <-p.resume
	if isUnwind(v) {
		panic(unwindSignal{})
	}
	p.blocked = ""
	p.cancel = nil
	return v
}

// Wait advances the process by d simulated seconds. Negative d is an error.
func (p *Proc) Wait(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("des: Wait(%g)", d))
	}
	p.WaitUntil(p.eng.now + d)
}

// WaitUntil blocks the process until absolute simulated time t (which must
// not be in the past).
func (p *Proc) WaitUntil(t float64) {
	p.eng.schedule(&event{t: t, proc: p})
	p.park()
}

// Stall parks the process forever, recording why. No resume is ever
// scheduled, so a stalled process sits parked until the engine reaches
// the event horizon, where it is unwound and reported — with the given
// reason — by Quiesced/QuiescedProcs/QuiescedReport. It models a wedged
// stage (e.g. an injected fault): the rest of the simulation keeps
// running, and the stall surfaces as a named diagnostic instead of a
// leak. Stall never returns.
func (p *Proc) Stall(reason string) {
	if reason == "" {
		reason = "a permanent stall"
	}
	p.blocked = reason
	p.park() // unwound by the engine's poison pill at the event horizon
	panic("des: stalled proc resumed") // unreachable: park only returns on a real resume
}

// step dispatches the earliest pending event. It reports false when the
// event queue is empty.
func (e *Engine) step() bool {
	if e.events.empty() {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.t
	switch {
	case ev.fn != nil:
		ev.fn()
	case ev.proc != nil && !ev.proc.dead: // skip stale events for unwound procs
		ev.proc.resume <- ev.val
		<-e.yielded
	}
	return true
}

// Run executes events until none remain, then unwinds any process still
// parked at the event horizon (the simulation has quiesced with stuck
// processes): each parked goroutine is resumed with a poison pill that
// unwinds it, so a quiesced run leaks nothing. The unwound processes are
// reported by Quiesced and QuiescedProcs. A panic in a process body stops
// the run early, unwinds everything else, and is reported by Err.
func (e *Engine) Run() {
	if e.running {
		panic("des: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	e.quiesced = nil
	for e.failure == nil && e.step() {
	}
	e.unwind()
}

// unwind poison-pills every live process (all are necessarily blocked on
// their resume channels once the dispatch loop has stopped), in spawn order
// for determinism, recording what each was waiting on.
func (e *Engine) unwind() {
	for _, p := range e.procs {
		if p.dead {
			continue
		}
		what := p.blocked
		if what == "" {
			what = "nothing (runnable or unstarted)"
		}
		e.quiesced = append(e.quiesced, ParkedProc{Name: p.Name, WaitingOn: what})
		if p.cancel != nil {
			p.cancel()
			p.cancel = nil
		}
		p.poisoned = true
		p.resume <- unwindSignal{}
		<-e.yielded
	}
	e.procs = e.procs[:0]
}

// Shutdown unwinds every live process immediately — for callers abandoning
// an engine mid-simulation (e.g. after RunUntil). It must not be called
// while Run is executing.
func (e *Engine) Shutdown() {
	if e.running {
		panic("des: Shutdown during Run")
	}
	e.unwind()
}

// Err returns the first process-body panic of the run, converted to an
// error carrying the process name and stack, or nil.
func (e *Engine) Err() error { return e.failure }

// Quiesced reports whether the last Run ended with parked processes that
// had to be unwound.
func (e *Engine) Quiesced() bool { return len(e.quiesced) > 0 }

// QuiescedProcs returns the processes unwound at the end of the last Run,
// in spawn order, each with a description of what it was waiting on.
func (e *Engine) QuiescedProcs() []ParkedProc {
	return append([]ParkedProc(nil), e.quiesced...)
}

// QuiescedReport formats the unwound processes as a one-line diagnostic,
// e.g. for embedding in an error.
func (e *Engine) QuiescedReport() string {
	if len(e.quiesced) == 0 {
		return "no parked procs"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d parked proc(s): ", len(e.quiesced))
	for i, q := range e.quiesced {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s waiting on %s", q.Name, q.WaitingOn)
	}
	return b.String()
}

// RunUntil executes events with time ≤ t and then sets the clock to t.
// Unlike Run it leaves parked processes parked — the simulation may be
// continued with further Run/RunUntil calls. Call Shutdown to reclaim
// their goroutines when abandoning the engine early.
func (e *Engine) RunUntil(t float64) {
	if e.running {
		panic("des: RunUntil re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.failure == nil && !e.events.empty() && e.events.peek().t <= t {
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// LiveProcs reports the number of spawned processes that have not finished.
func (e *Engine) LiveProcs() int { return e.nprocs }
