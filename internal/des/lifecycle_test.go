package des

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// goroutines samples runtime.NumGoroutine after nudging the scheduler so
// just-unwound goroutines have a chance to exit.
func goroutines() int {
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// waitForGoroutines polls until the goroutine count drops to at most want.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := goroutines(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count stuck at %d, want ≤ %d", goroutines(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQuiescedRunLeaksNoGoroutines(t *testing.T) {
	base := goroutines()
	for round := 0; round < 10; round++ {
		e := NewEngine()
		q := NewQueue(e, 1)
		q.Label = "starved-input"
		// A chain that quiesces: consumers outnumber items.
		e.Spawn("producer", func(p *Proc) {
			p.Wait(1)
			q.Put(p, "only-item")
		})
		for i := 0; i < 5; i++ {
			e.Spawn("consumer", func(p *Proc) { q.Get(p) })
		}
		// A full bounded queue with a blocked putter, too.
		full := NewQueue(e, 1)
		full.Label = "full-output"
		e.Spawn("stuffer", func(p *Proc) {
			full.Put(p, 1)
			full.Put(p, 2) // blocks forever: nobody drains
		})
		e.Run()
		if e.LiveProcs() != 0 {
			t.Fatalf("round %d: LiveProcs = %d after Run", round, e.LiveProcs())
		}
		if !e.Quiesced() {
			t.Fatalf("round %d: quiesce not reported", round)
		}
	}
	waitForGoroutines(t, base)
}

func TestQuiescedReportNamesProcsAndQueues(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 0)
	q.Label = "mail 3->7"
	e.Spawn("sepia0", func(p *Proc) { q.Get(p) })
	e.Run()
	rep := e.QuiescedReport()
	if !strings.Contains(rep, "sepia0") || !strings.Contains(rep, "mail 3->7") {
		t.Fatalf("report %q missing proc or queue name", rep)
	}
}

func TestCompletedRunNotQuiesced(t *testing.T) {
	e := NewEngine()
	e.Spawn("ok", func(p *Proc) { p.Wait(1) })
	e.Run()
	if e.Quiesced() {
		t.Fatalf("clean run reported quiesced: %s", e.QuiescedReport())
	}
	if e.Err() != nil {
		t.Fatalf("clean run reported failure: %v", e.Err())
	}
}

func TestBodyPanicBecomesError(t *testing.T) {
	base := goroutines()
	e := NewEngine()
	q := NewQueue(e, 0)
	e.Spawn("victim", func(p *Proc) { q.Get(p) }) // parked when the panic hits
	e.Spawn("bomb", func(p *Proc) {
		p.Wait(1)
		panic("kaboom")
	})
	e.Run()
	err := e.Err()
	if err == nil {
		t.Fatal("body panic not converted to error")
	}
	if !strings.Contains(err.Error(), "bomb") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("error %v missing proc name or panic value", err)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after failed run", e.LiveProcs())
	}
	waitForGoroutines(t, base)
}

func TestShutdownAfterRunUntil(t *testing.T) {
	base := goroutines()
	e := NewEngine()
	e.Spawn("ticker", func(p *Proc) {
		for {
			p.Wait(1)
		}
	})
	e.RunUntil(5)
	if e.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d mid-simulation", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after Shutdown", e.LiveProcs())
	}
	waitForGoroutines(t, base)
}

func TestUnwoundProcRemovedFromWaiterLists(t *testing.T) {
	e := NewEngine()
	q := NewQueue(e, 0)
	e.Spawn("starved", func(p *Proc) { q.Get(p) })
	e.Run()
	// The unwound getter must not linger: a fresh put must buffer the item,
	// not try to resume a dead proc.
	if !q.TryPut("x") {
		t.Fatal("TryPut failed")
	}
	if v, ok := q.TryGet(); !ok || v != "x" {
		t.Fatalf("TryGet = %v, %v; unwound waiter swallowed the item", v, ok)
	}
}
