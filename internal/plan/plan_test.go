package plan

import (
	"reflect"
	"testing"
	"time"

	"sccpipe/internal/core"
	"sccpipe/internal/frame"
	"sccpipe/internal/render"
	"sccpipe/internal/scene"
)

var planScene = func() *render.Octree {
	cfg := scene.DefaultConfig()
	cfg.BlocksX, cfg.BlocksZ = 6, 6
	return render.BuildOctree(scene.City(cfg))
}()

func testProfile(t *testing.T) Profile {
	t.Helper()
	wl := core.BuildWorkload(planScene, 4, 320, 240)
	return ModelProfile(core.DefaultCostModel(), wl)
}

func TestGroupings(t *testing.T) {
	gs := Groupings(false)
	// sepia | blur | {scratch,flicker,swap} → 1 × 1 × 2^2 partitions.
	if len(gs) != 4 {
		t.Fatalf("got %d groupings, want 4: %v", len(gs), gs)
	}
	first := &core.StagePlan{Groups: gs[0]}
	if first.String() != "[sepia][blur][scratch+flicker+swap]" {
		t.Fatalf("first grouping %v is not maximal fusion", first)
	}
	for _, g := range gs {
		p := &core.StagePlan{Groups: g}
		if err := p.Validate(false); err != nil {
			t.Errorf("grouping %v invalid: %v", p, err)
		}
	}

	// Oriented scratches cannot fuse: sepia | blur | scratch |
	// {flicker,swap} → 2 groupings, every one valid under oriented rules.
	gs = Groupings(true)
	if len(gs) != 2 {
		t.Fatalf("oriented: got %d groupings, want 2: %v", len(gs), gs)
	}
	for _, g := range gs {
		p := &core.StagePlan{Groups: g}
		if err := p.Validate(true); err != nil {
			t.Errorf("oriented grouping %v invalid: %v", p, err)
		}
	}
}

// TestComputeDeterministic is the satellite determinism test: the same
// profile must yield the same plan on every call — no wall-clock input, no
// map-iteration order leaking into the choice.
func TestComputeDeterministic(t *testing.T) {
	pr := testProfile(t)
	cfg := Config{Renderer: core.NRenderers, Workers: 8, Height: 240}
	first, err := Compute(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		// Rebuild the profile each round so a fresh map (new iteration
		// order) feeds the search.
		again, err := Compute(testProfile(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("round %d: plan changed for identical profile:\n%+v\nvs\n%+v", i, first, again)
		}
	}
	// The energy objective must be deterministic too.
	cfg.Objective = LatencyEnergy
	a, errA := Compute(pr, cfg)
	b, errB := Compute(pr, cfg)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("energy objective nondeterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestComputeValidPlans(t *testing.T) {
	pr := testProfile(t)
	for _, obj := range []Objective{LatencyThroughput, LatencyEnergy} {
		for _, rc := range []core.RendererConfig{core.OneRenderer, core.NRenderers, core.HostRenderer} {
			for _, workers := range []int{1, 2, 8, 48} {
				p, err := Compute(pr, Config{Renderer: rc, Workers: workers, Height: 240, Objective: obj})
				if err != nil {
					t.Fatalf("%v/%v/w=%d: %v", obj, rc, workers, err)
				}
				if err := p.Stages.Validate(false); err != nil {
					t.Fatalf("%v/%v/w=%d: invalid plan %v: %v", obj, rc, workers, p, err)
				}
				if p.Pipelines < 1 || p.Pipelines > core.MaxPipelines(rc) {
					t.Fatalf("%v/%v/w=%d: pipelines %d out of range", obj, rc, workers, p.Pipelines)
				}
				if p.PeriodS <= 0 || p.LatencyS <= 0 || p.Score <= 0 {
					t.Fatalf("%v/%v/w=%d: non-positive prediction %+v", obj, rc, workers, p)
				}
			}
		}
	}
}

// TestPlannerMovesBoundaryOnImbalance is the satellite synthetic-imbalance
// test: inflate flicker until the fused tail dominates and the planner
// must split the fusion boundary to isolate the heavy stage.
func TestPlannerMovesBoundaryOnImbalance(t *testing.T) {
	pr := testProfile(t)
	cfg := Config{Renderer: core.OneRenderer, Workers: 48, Height: 240}

	balanced, err := Compute(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The balanced profile keeps the cheap tail fused: three stages.
	if got := len(balanced.Stages.Groups); got != 3 {
		t.Fatalf("balanced plan %v has %d groups, want the fused default 3", balanced, got)
	}

	// Flicker blown up 30×: the fused scratch+flicker+swap group would be
	// the pipeline bottleneck, so the planner must break it apart and leave
	// the heavy flicker stage alone in its group.
	pr.Filters[core.StageFlicker] *= 30
	skewed, err := Compute(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(skewed.Stages.Groups, balanced.Stages.Groups) {
		t.Fatalf("planner kept %v despite 30× flicker imbalance", skewed)
	}
	var flickerAlone bool
	for _, g := range skewed.Stages.Groups {
		if len(g) == 1 && g[0] == core.StageFlicker {
			flickerAlone = true
		}
	}
	if !flickerAlone {
		t.Fatalf("imbalanced plan %v does not isolate flicker", skewed)
	}
}

// TestPlannerPrefersFewPipelinesOnSerialMachine pins the decision the exec
// benchmark relies on: with one worker and the n-renderer configuration,
// replication only duplicates per-renderer culling, so the planner must
// choose k=1.
func TestPlannerPrefersFewPipelinesOnSerialMachine(t *testing.T) {
	pr := testProfile(t)
	p, err := Compute(pr, Config{Renderer: core.NRenderers, Workers: 1, Height: 240})
	if err != nil {
		t.Fatal(err)
	}
	if p.Pipelines != 1 {
		t.Fatalf("serial machine: planner chose k=%d, want 1 (%v)", p.Pipelines, p)
	}
}

func TestEvaluateStaticMatchesSearchArithmetic(t *testing.T) {
	pr := testProfile(t)
	cfg := Config{Renderer: core.OneRenderer, Workers: 8, Height: 240}
	groups := Groupings(false)[0]
	a := Evaluate(pr, cfg, 4, groups)
	b := Evaluate(pr, cfg, 4, groups)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Evaluate nondeterministic:\n%+v\nvs\n%+v", a, b)
	}
	if a.PeriodS <= 0 || a.LatencyS <= 0 {
		t.Fatalf("bad static evaluation %+v", a)
	}
}

func TestRecorderProfile(t *testing.T) {
	shape := testProfile(t)
	rec := NewRecorder()
	if _, ok := rec.Profile(shape, 1, core.OneRenderer); ok {
		t.Fatal("empty recorder produced a profile")
	}
	// Two frames of synthetic observations.
	for f := 0; f < 2; f++ {
		rec.Observe(core.StageRender, 100*time.Millisecond)
		for _, k := range core.FilterOrder {
			rec.Observe(k, 10*time.Millisecond)
		}
		rec.Observe(core.StageTransfer, 2*time.Millisecond)
		rec.FrameDone()
	}
	pr, ok := rec.Profile(shape, 1, core.OneRenderer)
	if !ok {
		t.Fatal("recorder with frames produced no profile")
	}
	if pr.Frames != 2 || pr.Source != "observed" {
		t.Fatalf("profile meta %+v", pr)
	}
	if got := pr.Filters[core.StageBlur]; !approxEq(got, 0.010) {
		t.Fatalf("blur %v, want 0.010", got)
	}
	// The render split preserves the observed total and the shape's ratio.
	if got := pr.RenderFixed + pr.RenderScaled; !approxEq(got, 0.100) {
		t.Fatalf("render total %v, want 0.100", got)
	}
	wantRatio := shape.RenderFixed / (shape.RenderFixed + shape.RenderScaled)
	if got := pr.RenderFixed / (pr.RenderFixed + pr.RenderScaled); !approxEq(got, wantRatio) {
		t.Fatalf("fixed ratio %v, want %v", got, wantRatio)
	}

	// n-renderer observations at k=2: the two sub-frustum renderers paid
	// the whole-frame fixed work once plus two duplication overheads, so
	// observed = F + 2·c + S.
	rec.Reset()
	for f := 0; f < 2; f++ {
		rec.Observe(core.StageRender, 100*time.Millisecond)
		rec.FrameDone()
	}
	pr2, ok := rec.Profile(shape, 2, core.NRenderers)
	if !ok {
		t.Fatal("no profile")
	}
	if got := pr2.RenderFixed + 2*pr2.Frustum + pr2.RenderScaled; !approxEq(got, 0.100) {
		t.Fatalf("n-renderer decomposition F+2c+S = %v, want 0.100", got)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestControllerReplansOnDrift(t *testing.T) {
	shape := testProfile(t)
	ctl, err := NewController(shape, Config{Renderer: core.OneRenderer, Workers: 48, Height: 240})
	if err != nil {
		t.Fatal(err)
	}
	ctl.MinFrames = 4
	initial := ctl.Current()

	// A window matching the model: no re-plan.
	feed := func(flickerScale float64) {
		for f := 0; f < 4; f++ {
			ctl.Observe(core.StageRender, time.Duration((shape.RenderFixed+shape.RenderScaled)*float64(time.Second)))
			for _, k := range core.FilterOrder {
				s := shape.Filters[k]
				if k == core.StageFlicker {
					s *= flickerScale
				}
				ctl.Observe(k, time.Duration(s*float64(time.Second)))
			}
			ctl.Observe(core.StageTransfer, time.Duration(shape.Transfer*float64(time.Second)))
			ctl.FrameDone()
		}
	}
	feed(1)
	if _, changed := ctl.MaybeReplan(); changed {
		t.Fatal("controller re-planned on a window matching the model")
	}
	if ctl.Replans() != 0 {
		t.Fatalf("replans = %d after matching window", ctl.Replans())
	}

	// A skewed window past the threshold re-plans and changes the mapping.
	for f := 0; f < 4; f++ {
		ctl.Observe(core.StageRender, time.Duration((shape.RenderFixed+shape.RenderScaled)*float64(time.Second)))
		for _, k := range core.FilterOrder {
			s := shape.Filters[k]
			if k == core.StageFlicker {
				s *= 30
			}
			ctl.Observe(k, time.Duration(s*float64(time.Second)))
		}
		ctl.Observe(core.StageTransfer, time.Duration(shape.Transfer*float64(time.Second)))
		ctl.FrameDone()
	}
	p, changed := ctl.MaybeReplan()
	if !changed {
		t.Fatalf("controller ignored a 30× flicker drift (drift=%v)", ctl.LastDrift())
	}
	if ctl.Replans() != 1 {
		t.Fatalf("replans = %d, want 1", ctl.Replans())
	}
	if reflect.DeepEqual(p.Stages.Groups, initial.Stages.Groups) {
		t.Fatalf("re-plan kept the stage grouping %v", p)
	}

	// The skewed profile is the new baseline: the same skew again is quiet.
	for f := 0; f < 4; f++ {
		ctl.Observe(core.StageRender, time.Duration((shape.RenderFixed+shape.RenderScaled)*float64(time.Second)))
		for _, k := range core.FilterOrder {
			s := shape.Filters[k]
			if k == core.StageFlicker {
				s *= 30
			}
			ctl.Observe(k, time.Duration(s*float64(time.Second)))
		}
		ctl.Observe(core.StageTransfer, time.Duration(shape.Transfer*float64(time.Second)))
		ctl.FrameDone()
	}
	if _, changed := ctl.MaybeReplan(); changed {
		t.Fatal("controller re-planned again on an already-answered drift")
	}
}

// TestAllGroupingsMatchReference is the acceptance gate: every plan the
// planner can emit — every grouping, at a replication factor with plan-set
// band workers — produces pixels byte-identical to the sequential
// reference.
func TestAllGroupingsMatchReference(t *testing.T) {
	spec := core.ExecSpec{Frames: 4, Width: 64, Height: 48, Pipelines: 2, Renderer: core.OneRenderer, Seed: 7}
	cams := render.Walkthrough(spec.Frames, planScene.Bounds())
	collect := func(s core.ExecSpec, ref bool) []*frame.Image {
		out := make([]*frame.Image, s.Frames)
		sink := func(f int, img *frame.Image) { out[f] = img.Clone() }
		var err error
		if ref {
			err = core.ExecReference(s, planScene, cams, sink)
		} else {
			_, err = core.Exec(s, planScene, cams, sink)
		}
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := collect(spec, true)
	for _, g := range Groupings(false) {
		s := spec
		p := Plan{Stages: core.StagePlan{Groups: g, RenderWorkers: 2}, Pipelines: s.Pipelines}
		p.ApplyExec(&s, false)
		got := collect(s, false)
		for f := range want {
			if !got[f].Equal(want[f]) {
				t.Fatalf("grouping %v frame %d differs from reference", &core.StagePlan{Groups: g}, f)
			}
		}
	}
}

func TestApplyExecClamps(t *testing.T) {
	p := Plan{Stages: core.StagePlan{Groups: Groupings(false)[0]}, Pipelines: 7}
	es := core.ExecSpec{Frames: 1, Width: 16, Height: 3, Pipelines: 2, Renderer: core.NRenderers}
	p.ApplyExec(&es, true)
	if es.Pipelines != 3 {
		t.Fatalf("pipelines %d, want clamped to 3 rows", es.Pipelines)
	}
	if es.Plan == nil {
		t.Fatal("plan not installed")
	}
	es2 := core.ExecSpec{Frames: 1, Width: 16, Height: 100, Pipelines: 2, Renderer: core.NRenderers}
	p.ApplyExec(&es2, false)
	if es2.Pipelines != 2 {
		t.Fatalf("pipelines %d, want untouched 2", es2.Pipelines)
	}
}
