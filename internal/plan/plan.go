package plan

import (
	"fmt"
	"math"
	"runtime"

	"sccpipe/internal/core"
	"sccpipe/internal/scc"
)

// Objective selects what the planner minimizes.
type Objective int

const (
	// LatencyThroughput minimizes steady-state frame period × frame
	// latency — the bi-criteria pipeline-mapping objective: fast frames
	// that also keep coming fast.
	LatencyThroughput Objective = iota
	// LatencyEnergy minimizes frame latency × per-frame energy, modeling
	// energy as occupied cores × period (static power dominates the SCC's
	// budget at fixed frequency) — the schedulable version of the paper's
	// DVFS trade.
	LatencyEnergy
)

var objectiveNames = [...]string{"latency×throughput", "latency×energy"}

func (o Objective) String() string {
	if o < 0 || int(o) >= len(objectiveNames) {
		return fmt.Sprintf("Objective(%d)", int(o))
	}
	return objectiveNames[o]
}

// Config bounds the planner's search space.
type Config struct {
	// Renderer is the paper scenario being planned for; it decides whether
	// the render stage replicates (and duplicates its fixed work) with the
	// pipeline count.
	Renderer core.RendererConfig
	// MaxPipelines caps replication; 0 takes core.MaxPipelines(Renderer).
	MaxPipelines int
	// Height, when non-zero, additionally caps pipelines at the image rows.
	Height int
	// Workers is the machine's parallel capacity: the budget the planner
	// divides into stage goroutines and band workers, and the denominator
	// of the throughput capacity bound. 0 takes GOMAXPROCS.
	Workers int
	// Objective selects the score being minimized.
	Objective Objective
	// OrientedScratches restricts fusion exactly as the executor does.
	OrientedScratches bool
}

// Plan is a chosen mapping plus its predicted steady-state metrics.
type Plan struct {
	// Stages carries the fusion grouping and band-worker counts in the form
	// core.ExecSpec consumes.
	Stages core.StagePlan
	// Pipelines is the chosen replication factor.
	Pipelines int
	// PeriodS is the predicted steady-state seconds between finished frames
	// (the bottleneck stage, or the capacity bound when the machine has
	// fewer workers than the mapping wants cores). LatencyS is the
	// predicted one-frame walk through the chain; EnergyS the predicted
	// core-seconds per frame.
	PeriodS, LatencyS, EnergyS float64
	// Score is the minimized objective value.
	Score float64
	// Cores counts the SCC cores the mapping occupies — stage and render
	// goroutines, band workers, per-pipeline feed slots, and the sink.
	Cores int
	// Source labels the profile the plan came from: "model", "observed", or
	// "static".
	Source string
}

// String renders the plan compactly, e.g.
// "k=4 [sepia][blur][scratch+flicker+swap]".
func (p Plan) String() string {
	s := fmt.Sprintf("k=%d %s", p.Pipelines, p.Stages.String())
	if p.Stages.RenderWorkers > 1 {
		s += fmt.Sprintf(" rw=%d", p.Stages.RenderWorkers)
	}
	for i, w := range p.Stages.GroupWorkers {
		if w > 1 {
			s += fmt.Sprintf(" w%d=%d", i, w)
		}
	}
	return s
}

// ApplyExec installs the plan on an exec spec. When overridePipelines is
// true the plan's replication factor replaces the spec's, clamped to the
// spec's renderer and height limits; pass false when the caller's pipeline
// count is part of its output contract — the strip count feeds the
// deterministic per-strip RNG streams, so changing it changes pixels.
func (p Plan) ApplyExec(es *core.ExecSpec, overridePipelines bool) {
	st := p.Stages
	es.Plan = &st
	if overridePipelines && p.Pipelines > 0 {
		k := p.Pipelines
		if m := core.MaxPipelines(es.Renderer); m > 0 && k > m {
			k = m
		}
		if es.Height > 0 && k > es.Height {
			k = es.Height
		}
		es.Pipelines = k
	}
}

// Static returns the port's hard-coded default mapping — maximal fusion at
// the given replication factor — as a Plan: the ablation baseline.
func Static(k int, oriented bool) Plan {
	return Plan{
		Stages:    core.StagePlan{Groups: Groupings(oriented)[0]},
		Pipelines: k,
		Source:    "static",
	}
}

// Groupings enumerates every legal fusion grouping of the filter chain:
// within each maximal run of adjacent fusable point kernels, every
// contiguous partition; non-fusable stages always stand alone. The first
// grouping is maximal fusion (the static default) and the order is
// deterministic, so planner tie-breaks are reproducible.
func Groupings(oriented bool) [][][]core.StageKind {
	type seg struct {
		kinds   []core.StageKind
		fusable bool
	}
	var segs []seg
	for _, k := range core.FilterOrder {
		k := k
		if core.FusableKind(k, oriented) {
			if n := len(segs); n > 0 && segs[n-1].fusable {
				segs[n-1].kinds = append(segs[n-1].kinds, k)
				continue
			}
			segs = append(segs, seg{kinds: []core.StageKind{k}, fusable: true})
			continue
		}
		segs = append(segs, seg{kinds: []core.StageKind{k}})
	}
	out := [][][]core.StageKind{nil}
	for _, sg := range segs {
		var opts [][][]core.StageKind
		if !sg.fusable || len(sg.kinds) == 1 {
			opts = [][][]core.StageKind{{sg.kinds}}
		} else {
			m := len(sg.kinds)
			for mask := 0; mask < 1<<(m-1); mask++ {
				var parts [][]core.StageKind
				start := 0
				for i := 0; i < m-1; i++ {
					if mask&(1<<i) != 0 {
						parts = append(parts, sg.kinds[start:i+1])
						start = i + 1
					}
				}
				parts = append(parts, sg.kinds[start:m])
				opts = append(opts, parts)
			}
		}
		next := make([][][]core.StageKind, 0, len(out)*len(opts))
		for _, pre := range out {
			for _, op := range opts {
				g := make([][]core.StageKind, 0, len(pre)+len(op))
				g = append(g, pre...)
				g = append(g, op...)
				next = append(next, g)
			}
		}
		out = next
	}
	return out
}

// Compute searches replication factors × fusion groupings × band-worker
// assignments for the mapping minimizing cfg.Objective under the profile.
// The search is exhaustive over (k, grouping) with a greedy
// bottleneck-refinement worker assignment inside each candidate, and fully
// deterministic: same profile in, same plan out — candidates are visited
// in fixed order (k ascending, maximal fusion first) and only a strictly
// better score displaces the incumbent, so ties resolve toward fewer
// pipelines and fewer stages.
func Compute(pr Profile, cfg Config) (Plan, error) {
	if err := pr.check(); err != nil {
		return Plan{}, err
	}
	maxK := cfg.MaxPipelines
	if maxK <= 0 {
		maxK = core.MaxPipelines(cfg.Renderer)
	}
	if maxK <= 0 {
		maxK = 1
	}
	if cfg.Height > 0 && maxK > cfg.Height {
		maxK = cfg.Height
	}
	groupings := Groupings(cfg.OrientedScratches)
	best := Plan{Score: math.Inf(1)}
	for k := 1; k <= maxK; k++ {
		for _, g := range groupings {
			cand := Evaluate(pr, cfg, k, g)
			if cand.Cores > scc.NumCores {
				// The worker budget is soft (goroutines oversubscribe),
				// but the chip layout is not: a mapping that wants more
				// cores than the SCC has cannot be placed.
				continue
			}
			if cand.Score < best.Score {
				best = cand
			}
		}
	}
	if math.IsInf(best.Score, 1) {
		return Plan{}, fmt.Errorf("plan: no feasible mapping for %+v", cfg)
	}
	best.Source = pr.Source
	if best.Source == "" {
		best.Source = "model"
	}
	return best, nil
}

func (pr Profile) check() error {
	if pr.RenderFixed+pr.RenderScaled <= 0 {
		return fmt.Errorf("plan: profile has no render cost")
	}
	for _, k := range core.FilterOrder {
		if pr.Filters[k] <= 0 {
			return fmt.Errorf("plan: profile missing filter %v", k)
		}
	}
	if pr.Transfer < 0 || pr.Handoff < 0 || pr.Frustum < 0 {
		return fmt.Errorf("plan: negative profile component")
	}
	return nil
}

// Evaluate prices one candidate mapping — replication factor k with the
// given fusion grouping — assigning band workers greedily to the
// bottleneck stage from the leftover worker budget, and returns the plan
// with its predicted period, latency, energy, and score. Exported so the
// ablation experiment can price the static mapping with the same
// arithmetic the search uses.
func Evaluate(pr Profile, cfg Config, k int, groups [][]core.StageKind) Plan {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Per-instance stage seconds per frame, before band workers. The fixed
	// part (cull, setup, binning — serial per renderer even on the tiled
	// path) never divides by band workers; only the scaled fill share does.
	// In the n-renderer configuration each strip renderer culls only its
	// own sub-frustum, so the whole-frame fixed work splits across the k
	// instances too; what replication duplicates is the Frustum overhead —
	// sub-frustum adjustment, boundary triangles, the shared upper octree
	// levels — paid serially by every instance past the first.
	renderInstances := 1
	renderFixed := pr.RenderFixed
	renderScaled := pr.RenderScaled
	renderTotal := pr.RenderFixed + pr.RenderScaled
	if cfg.Renderer == core.NRenderers {
		renderInstances = k
		renderFixed = pr.RenderFixed / float64(k)
		renderScaled = pr.RenderScaled / float64(k)
		if k > 1 {
			renderFixed += pr.Frustum
		}
		renderTotal = float64(k) * (renderFixed + renderScaled)
	}
	handoffStrip := pr.Handoff / float64(k)
	groupCost := make([]float64, len(groups))
	var filterTotal float64
	for i, g := range groups {
		for _, kind := range g {
			groupCost[i] += pr.Filters[kind] / float64(k)
			filterTotal += pr.Filters[kind]
		}
	}

	// Band-worker assignment. Everything starts at one worker; the leftover
	// budget beyond one core per stage goroutine goes to the current
	// bottleneck — but only where fan-out buys anything. The renderer and
	// blur are compute-bound (fill, 3-row stencil) and scale with band
	// workers; point passes (alone or fused) already run at memory speed,
	// and extra band workers add no memory bandwidth, so a heavy point
	// group is rebalanced by moving a fusion boundary, not by fanning out.
	gw := make([]int, len(groups))
	bandable := make([]bool, len(groups))
	for i, g := range groups {
		gw[i] = 1
		bandable[i] = len(g) == 1 && g[0] == core.StageBlur
	}
	rw := 1
	cores := renderInstances + k*len(groups) + 1
	if cfg.Renderer == core.NRenderers {
		// Each replicated pipeline also occupies a feed slot (camera and
		// strip hand-in), exactly as the chain layout places it on-chip.
		cores += k
	}

	renderTerm := func() float64 {
		t := renderFixed + renderScaled/float64(rw)
		if cfg.Renderer == core.NRenderers {
			return t + handoffStrip
		}
		// One renderer emits every strip of the frame itself.
		return t + pr.Handoff
	}
	groupTerm := func(i int) float64 { return groupCost[i]/float64(gw[i]) + handoffStrip }
	transferTerm := pr.Transfer + pr.Handoff

	for {
		// Identify the bottleneck stage of the current assignment.
		bi, bt := -2, transferTerm // -2 transfer, -1 render, ≥0 group
		if t := renderTerm(); t > bt {
			bi, bt = -1, t
		}
		for i := range groups {
			if t := groupTerm(i); t > bt {
				bi, bt = i, t
			}
		}
		_ = bt
		leftover := workers - cores
		if bi == -1 && leftover >= renderInstances {
			// One more render worker only shrinks the scaled share, by
			// S/rw − S/(rw+1). Once the fixed part floors the term, that
			// gain collapses; stop below 1% so the fixed floor cannot soak
			// the whole worker budget for nothing.
			gain := renderScaled/float64(rw) - renderScaled/float64(rw+1)
			if gain > 0.01*renderTerm() {
				rw++
				cores += renderInstances
				continue
			}
		}
		if bi >= 0 && bandable[bi] && leftover >= k {
			gw[bi]++
			cores += k
			continue
		}
		// Bottleneck is transfer, serial, or unaffordable: done.
		break
	}

	period := transferTerm
	if t := renderTerm(); t > period {
		period = t
	}
	for i := range groups {
		if t := groupTerm(i); t > period {
			period = t
		}
	}
	// Throughput can never beat the machine's aggregate capacity: total
	// per-frame work spread over every worker. A frame crosses the memory
	// system groups+2 times — the feed hand-in to the renderers plus one
	// hop into each downstream stage — matching the per-stage hand-off the
	// pipelined terms above charge.
	total := renderTotal + filterTotal + pr.Transfer + float64(len(groups)+2)*pr.Handoff
	if bound := total / float64(workers); bound > period {
		period = bound
	}

	latency := renderTerm() + transferTerm
	for i := range groups {
		latency += groupTerm(i)
	}
	// The pipelined traversal assumes every stage has its own core. On a
	// worker-starved machine the stages time-slice, so one frame's wall
	// latency cannot beat its whole work spread over the workers — the
	// same capacity argument the period bound makes.
	if lb := total / float64(workers); lb > latency {
		latency = lb
	}
	energy := period * float64(cores)

	score := period * latency
	if cfg.Objective == LatencyEnergy {
		score = latency * energy
	}

	st := core.StagePlan{Groups: groups}
	if rw > 1 {
		st.RenderWorkers = rw
	}
	for _, w := range gw {
		if w > 1 {
			st.GroupWorkers = gw
			break
		}
	}
	return Plan{
		Stages:    st,
		Pipelines: k,
		PeriodS:   period,
		LatencyS:  latency,
		EnergyS:   energy,
		Score:     score,
		Cores:     cores,
	}
}
