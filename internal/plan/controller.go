package plan

import (
	"math"
	"reflect"
	"sync"
	"time"

	"sccpipe/internal/core"
	"sccpipe/internal/render"
)

// Default hysteresis parameters for the online controller.
const (
	// DefaultDriftThreshold is the relative busy-share deviation that
	// triggers a re-plan.
	DefaultDriftThreshold = 0.25
	// DefaultMinFrames is the observation window: drift is only evaluated
	// (and the window reset) after this many frames, so one odd frame
	// cannot thrash the plan.
	DefaultMinFrames = 64
)

// Controller maintains the active plan for a long-running server: it
// aggregates observed per-stage busy time into windows, measures how far
// the observed stage balance has drifted from the profile the active plan
// was computed from, and re-plans once the drift crosses the hysteresis
// threshold. After a re-plan the observed profile becomes the new
// baseline, so a persistent but already-answered drift does not re-trigger.
type Controller struct {
	// DriftThreshold and MinFrames tune the hysteresis; zero values take
	// the defaults above. Set them before the controller is shared.
	DriftThreshold float64
	MinFrames      int

	mu        sync.Mutex
	cfg       Config
	shape     Profile // modeled shape: splits render observations
	base      Profile // profile the active plan was computed from
	active    Plan
	rec       *Recorder
	replans   int
	lastDrift float64
}

// NewController computes the initial plan from the modeled shape profile
// and starts an empty observation window.
func NewController(shape Profile, cfg Config) (*Controller, error) {
	p, err := Compute(shape, cfg)
	if err != nil {
		return nil, err
	}
	return &Controller{
		cfg:    cfg,
		shape:  shape,
		base:   shape,
		active: p,
		rec:    NewRecorder(),
	}, nil
}

// Current returns the active plan.
func (c *Controller) Current() Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active
}

// Replans returns how many drift-triggered re-computations have run.
func (c *Controller) Replans() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replans
}

// LastDrift returns the drift measured when the last window closed.
func (c *Controller) LastDrift() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastDrift
}

// Observe folds one stage busy report into the current window.
func (c *Controller) Observe(kind core.StageKind, busy time.Duration) {
	c.rec.Observe(kind, busy)
}

// FrameDone counts one completed frame in the current window.
func (c *Controller) FrameDone() { c.rec.FrameDone() }

// ObserveRender folds one render call's work counters into the current
// window, sharpening the fixed/scaled decomposition at the next re-plan.
func (c *Controller) ObserveRender(st render.Stats) { c.rec.ObserveRender(st) }

// MaybeReplan closes the observation window if it has reached MinFrames,
// compares the observed balance against the active plan's baseline, and
// re-plans when the drift exceeds the threshold. It returns the active
// plan and whether the mapping changed. Safe to call after every job.
func (c *Controller) MaybeReplan() (Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	minFrames := c.MinFrames
	if minFrames <= 0 {
		minFrames = DefaultMinFrames
	}
	threshold := c.DriftThreshold
	if threshold <= 0 {
		threshold = DefaultDriftThreshold
	}
	if c.rec.Frames() < minFrames {
		return c.active, false
	}
	obs, ok := c.rec.Profile(c.shape, c.active.Pipelines, c.cfg.Renderer)
	c.rec.Reset()
	if !ok {
		return c.active, false
	}
	drift := StageDrift(c.base, obs)
	c.lastDrift = drift
	if drift <= threshold {
		return c.active, false
	}
	p, err := Compute(obs, c.cfg)
	if err != nil {
		return c.active, false
	}
	c.replans++
	c.base = obs
	changed := p.Pipelines != c.active.Pipelines ||
		!reflect.DeepEqual(p.Stages, c.active.Stages)
	c.active = p
	return c.active, changed
}

// StageDrift returns the largest relative deviation between two profiles'
// per-stage busy shares, over stages carrying at least 5% of either total
// — the balance signal the hysteresis threshold applies to. Tiny stages
// are ignored: a 2× swing on a 1% stage does not justify a re-plan.
func StageDrift(a, b Profile) float64 {
	sa, ta := stageShares(a)
	sb, tb := stageShares(b)
	if ta <= 0 || tb <= 0 {
		return 0
	}
	const floor = 0.05
	var max float64
	for i := range sa {
		if sa[i] < floor && sb[i] < floor {
			continue
		}
		ref := sa[i]
		if ref < floor {
			ref = floor
		}
		if d := math.Abs(sb[i]-sa[i]) / ref; d > max {
			max = d
		}
	}
	return max
}

// stageShares flattens a profile into busy shares over the seven pipeline
// stages: render, the five filters, transfer.
func stageShares(p Profile) ([7]float64, float64) {
	var v [7]float64
	v[0] = p.RenderFixed + p.RenderScaled
	for i, k := range core.FilterOrder {
		v[1+i] = p.Filters[k]
	}
	v[6] = p.Transfer
	var total float64
	for _, x := range v {
		total += x
	}
	if total > 0 {
		for i := range v {
			v[i] /= total
		}
	}
	return v, total
}
