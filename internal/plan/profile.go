// Package plan computes macro-pipeline stage plans from per-stage cost
// profiles. The paper hand-maps one stage per SCC core and shows that
// balance, not topology, decides throughput; this package replaces our
// port's hard-coded version of that guess with a small cost-model
// scheduler in the spirit of bi-criteria pipeline mapping: given measured
// or modeled per-stage weights it chooses fusion boundaries (which
// adjacent point kernels collapse into one memory pass), band-worker
// counts for the heavy stages, and the pipeline replication factor,
// minimizing period×latency (or latency×energy). Profiles come from the
// DES cost model (ModelProfile) or from live ExecObserver busy time
// (Recorder); Controller re-plans a running server when the observed
// balance drifts.
package plan

import (
	"sync"
	"time"

	"sccpipe/internal/core"
	"sccpipe/internal/render"
	"sccpipe/internal/scc"
)

// Profile is the per-frame cost decomposition the planner works from. All
// times are seconds per full frame at one instance of each stage; the
// planner scales them by strip fraction, replication, and worker counts.
type Profile struct {
	// RenderScaled is the render work that divides across pipelines when
	// each renders only its strip (rasterization fill). RenderFixed is the
	// whole-frame cull/setup/binning work: each strip renderer culls only
	// its own sub-frustum, so this too splits across the n-renderer
	// configuration. Frustum is the per-renderer duplication that split
	// cannot shed — sub-frustum adjustment, boundary triangles, and the
	// shared upper octree levels every strip re-traverses (§V).
	RenderScaled, RenderFixed, Frustum float64
	// Filters holds each filter stage's full-frame seconds.
	Filters map[core.StageKind]float64
	// Transfer is the assembly stage's per-frame seconds.
	Transfer float64
	// Handoff is the seconds one full-frame hand-off spends in the memory
	// system (sender write + receiver read); per-strip hand-offs scale by
	// the strip fraction.
	Handoff float64
	// Frames counts the observed frames behind the profile; 0 marks a
	// modeled profile.
	Frames int
	// Source labels where the numbers came from: "model" or "observed".
	Source string
}

// ModelProfile derives a profile from the DES cost model over a profiled
// workload — the planner's offline input, and the shape reference used to
// split live render observations into fixed and scaled parts.
func ModelProfile(m core.CostModel, wl *core.Workload) Profile {
	var fixed float64
	for _, st := range wl.Full {
		fixed += m.CullPerNode*float64(st.NodesVisited) + m.TriSetup*float64(st.TrisAccepted)
	}
	if wl.Frames > 0 {
		fixed /= float64(wl.Frames)
	}
	pixels := wl.W * wl.H
	p := Profile{
		RenderFixed:  fixed,
		RenderScaled: m.FillPerPixel * float64(pixels),
		Frustum:      frustumOverlap(m, wl, fixed),
		Filters:      make(map[core.StageKind]float64, len(core.FilterOrder)),
		Transfer:     m.AssembleCompute * float64(pixels) / m.RefPixels,
		Handoff:      2 * float64(wl.FrameBytes()) / scc.DefaultConfig().MemBandwidth,
		Source:       "model",
	}
	for _, k := range core.FilterOrder {
		p.Filters[k] = m.FilterComputeFor(k, pixels)
	}
	return p
}

// frustumOverlap derives the per-renderer duplication cost of the
// n-renderer configuration from the workload's own strip statistics: the
// mean per-strip cull+setup work beyond an even 1/k share of the
// whole-frame fixed work. The DES keeps the paper's flat FrustumAdjust
// calibration for reproducing §V; the planner instead prices the tiled
// renderer it actually schedules, where the overlap is what the strips
// measurably re-traverse.
func frustumOverlap(m core.CostModel, wl *core.Workload, fullFixed float64) float64 {
	const refK = 4
	if wl.Frames == 0 || wl.H < refK {
		return 0
	}
	var tot float64
	for _, strips := range wl.StripStats(refK) {
		for _, st := range strips {
			tot += m.CullPerNode*float64(st.NodesVisited) + m.TriSetup*float64(st.TrisAccepted)
		}
	}
	perStrip := tot / float64(wl.Frames) / refK
	if c := perStrip - fullFixed/refK; c > 0 {
		return c
	}
	return 0
}

// total returns the profile's whole-frame work at k=1 (capacity numerator
// without hand-offs).
func (p Profile) total() float64 {
	s := p.RenderFixed + p.RenderScaled + p.Transfer
	for _, k := range core.FilterOrder {
		s += p.Filters[k]
	}
	return s
}

// Recorder aggregates live ExecObserver busy time into a profile. It is
// safe for concurrent use — exec stage goroutines report from many
// goroutines at once.
type Recorder struct {
	mu     sync.Mutex
	busy   map[core.StageKind]float64
	frames int
	// rstats sums the render work counters across observed render calls;
	// when present they replace the modeled shape ratio in the fixed/scaled
	// decomposition (the counters know how much cull/setup/bin versus fill
	// work the measured busy time actually covered).
	rstats  render.Stats
	renders int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{busy: make(map[core.StageKind]float64)}
}

// Observe folds one stage busy report into the profile.
func (r *Recorder) Observe(kind core.StageKind, busy time.Duration) {
	r.mu.Lock()
	r.busy[kind] += busy.Seconds()
	r.mu.Unlock()
}

// ObserveRender folds one render call's work counters into the profile.
func (r *Recorder) ObserveRender(st render.Stats) {
	r.mu.Lock()
	r.rstats.Add(st)
	r.renders++
	r.mu.Unlock()
}

// FrameDone counts one completed frame.
func (r *Recorder) FrameDone() {
	r.mu.Lock()
	r.frames++
	r.mu.Unlock()
}

// Observer adapts the recorder to the core exec callback interface.
func (r *Recorder) Observer() core.ExecObserver {
	return core.ExecObserver{
		OnFrame:       func(int) { r.FrameDone() },
		OnStageBusy:   func(kind core.StageKind, _ int, busy time.Duration) { r.Observe(kind, busy) },
		OnRenderStats: func(_ int, st render.Stats) { r.ObserveRender(st) },
	}
}

// Frames returns the number of frames observed so far.
func (r *Recorder) Frames() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frames
}

// Reset clears the observation window.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.busy = make(map[core.StageKind]float64)
	r.frames = 0
	r.rstats = render.Stats{}
	r.renders = 0
	r.mu.Unlock()
}

func (r *Recorder) snapshot() (map[core.StageKind]float64, int, render.Stats, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[core.StageKind]float64, len(r.busy))
	for k, v := range r.busy {
		out[k] = v
	}
	return out, r.frames, r.rstats, r.renders
}

// Profile converts the observed busy time into a per-frame profile. The
// observation alone cannot tell duplicated per-renderer work from work
// that divides across strips, so shape — a modeled profile of the same
// scene — supplies the fixed/scaled ratio, and k is the pipeline count the
// observations ran at. Stages with no observations inherit the shape's
// value. Returns false when no frames were observed.
func (r *Recorder) Profile(shape Profile, k int, renderer core.RendererConfig) (Profile, bool) {
	busy, frames, rstats, renders := r.snapshot()
	if frames == 0 {
		return Profile{}, false
	}
	fr := float64(frames)
	out := Profile{
		Frustum: shape.Frustum,
		Handoff: shape.Handoff,
		Filters: make(map[core.StageKind]float64, len(core.FilterOrder)),
		Frames:  frames,
		Source:  "observed",
	}
	for _, kind := range core.FilterOrder {
		if s := busy[kind]; s > 0 {
			out.Filters[kind] = s / fr
		} else {
			out.Filters[kind] = shape.Filters[kind]
		}
	}
	if s := busy[core.StageTransfer]; s > 0 {
		out.Transfer = s / fr
	} else {
		out.Transfer = shape.Transfer
	}
	obs := busy[core.StageRender] / fr
	if k < 1 {
		k = 1
	}
	// Weights of the fixed and scaled parts *within the observed busy
	// time*. The shape ratio is the fallback: at k sub-frustum renderers
	// the observation carries the whole-frame fixed work once plus k
	// duplication overheads. When render work counters were observed they
	// replace the modeled ratio — the summed counters already include any
	// per-renderer duplication, and they price the tiled path's actual
	// setup and binning work instead of a pre-tiling guess.
	f, sc := shape.RenderFixed, shape.RenderScaled
	fixW, scW := f, sc
	if renderer == core.NRenderers && k > 1 {
		fixW = f + float64(k)*shape.Frustum
	}
	if renders > 0 {
		m := core.DefaultCostModel()
		if fw, sw := m.RenderFixedWork(rstats), m.RenderScaledWork(rstats); fw+sw > 0 {
			fixW, scW = fw, sw
		}
	}
	switch {
	case obs <= 0:
		out.RenderFixed, out.RenderScaled = f, sc
	case fixW+scW <= 0:
		out.RenderScaled = obs
	case renderer == core.NRenderers && k > 1:
		// The k sub-frustum renderers together paid F + k·c fixed seconds
		// per frame (whole-frame fixed split between them plus each one's
		// duplication overhead); the shape's proportions split the observed
		// fixed share back into the two parts.
		obsFixed := obs * fixW / (fixW + scW)
		if denom := f + float64(k)*shape.Frustum; denom > 0 {
			out.RenderFixed = obsFixed * f / denom
			out.Frustum = obsFixed * shape.Frustum / denom
		} else {
			out.RenderFixed = obsFixed
		}
		out.RenderScaled = obs * scW / (fixW + scW)
	default:
		out.RenderFixed = obs * fixW / (fixW + scW)
		out.RenderScaled = obs * scW / (fixW + scW)
	}
	return out, true
}
