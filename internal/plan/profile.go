// Package plan computes macro-pipeline stage plans from per-stage cost
// profiles. The paper hand-maps one stage per SCC core and shows that
// balance, not topology, decides throughput; this package replaces our
// port's hard-coded version of that guess with a small cost-model
// scheduler in the spirit of bi-criteria pipeline mapping: given measured
// or modeled per-stage weights it chooses fusion boundaries (which
// adjacent point kernels collapse into one memory pass), band-worker
// counts for the heavy stages, and the pipeline replication factor,
// minimizing period×latency (or latency×energy). Profiles come from the
// DES cost model (ModelProfile) or from live ExecObserver busy time
// (Recorder); Controller re-plans a running server when the observed
// balance drifts.
package plan

import (
	"sync"
	"time"

	"sccpipe/internal/core"
	"sccpipe/internal/scc"
)

// Profile is the per-frame cost decomposition the planner works from. All
// times are seconds per full frame at one instance of each stage; the
// planner scales them by strip fraction, replication, and worker counts.
type Profile struct {
	// RenderScaled is the render work that divides across pipelines when
	// each renders only its strip (rasterization fill). RenderFixed is the
	// per-renderer work paid in full regardless of strip size — octree
	// culling and triangle setup traverse the whole scene for any strip, so
	// the n-renderer configuration duplicates it per pipeline. Frustum is
	// the extra adjustment each renderer pays in that configuration.
	RenderScaled, RenderFixed, Frustum float64
	// Filters holds each filter stage's full-frame seconds.
	Filters map[core.StageKind]float64
	// Transfer is the assembly stage's per-frame seconds.
	Transfer float64
	// Handoff is the seconds one full-frame hand-off spends in the memory
	// system (sender write + receiver read); per-strip hand-offs scale by
	// the strip fraction.
	Handoff float64
	// Frames counts the observed frames behind the profile; 0 marks a
	// modeled profile.
	Frames int
	// Source labels where the numbers came from: "model" or "observed".
	Source string
}

// ModelProfile derives a profile from the DES cost model over a profiled
// workload — the planner's offline input, and the shape reference used to
// split live render observations into fixed and scaled parts.
func ModelProfile(m core.CostModel, wl *core.Workload) Profile {
	var fixed float64
	for _, st := range wl.Full {
		fixed += m.CullPerNode*float64(st.NodesVisited) + m.TriSetup*float64(st.TrisAccepted)
	}
	if wl.Frames > 0 {
		fixed /= float64(wl.Frames)
	}
	pixels := wl.W * wl.H
	p := Profile{
		RenderFixed:  fixed,
		RenderScaled: m.FillPerPixel * float64(pixels),
		Frustum:      m.FrustumAdjust,
		Filters:      make(map[core.StageKind]float64, len(core.FilterOrder)),
		Transfer:     m.AssembleCompute * float64(pixels) / m.RefPixels,
		Handoff:      2 * float64(wl.FrameBytes()) / scc.DefaultConfig().MemBandwidth,
		Source:       "model",
	}
	for _, k := range core.FilterOrder {
		p.Filters[k] = m.FilterComputeFor(k, pixels)
	}
	return p
}

// total returns the profile's whole-frame work at k=1 (capacity numerator
// without hand-offs).
func (p Profile) total() float64 {
	s := p.RenderFixed + p.RenderScaled + p.Transfer
	for _, k := range core.FilterOrder {
		s += p.Filters[k]
	}
	return s
}

// Recorder aggregates live ExecObserver busy time into a profile. It is
// safe for concurrent use — exec stage goroutines report from many
// goroutines at once.
type Recorder struct {
	mu     sync.Mutex
	busy   map[core.StageKind]float64
	frames int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{busy: make(map[core.StageKind]float64)}
}

// Observe folds one stage busy report into the profile.
func (r *Recorder) Observe(kind core.StageKind, busy time.Duration) {
	r.mu.Lock()
	r.busy[kind] += busy.Seconds()
	r.mu.Unlock()
}

// FrameDone counts one completed frame.
func (r *Recorder) FrameDone() {
	r.mu.Lock()
	r.frames++
	r.mu.Unlock()
}

// Observer adapts the recorder to the core exec callback interface.
func (r *Recorder) Observer() core.ExecObserver {
	return core.ExecObserver{
		OnFrame:     func(int) { r.FrameDone() },
		OnStageBusy: func(kind core.StageKind, _ int, busy time.Duration) { r.Observe(kind, busy) },
	}
}

// Frames returns the number of frames observed so far.
func (r *Recorder) Frames() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frames
}

// Reset clears the observation window.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.busy = make(map[core.StageKind]float64)
	r.frames = 0
	r.mu.Unlock()
}

func (r *Recorder) snapshot() (map[core.StageKind]float64, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[core.StageKind]float64, len(r.busy))
	for k, v := range r.busy {
		out[k] = v
	}
	return out, r.frames
}

// Profile converts the observed busy time into a per-frame profile. The
// observation alone cannot tell duplicated per-renderer work from work
// that divides across strips, so shape — a modeled profile of the same
// scene — supplies the fixed/scaled ratio, and k is the pipeline count the
// observations ran at. Stages with no observations inherit the shape's
// value. Returns false when no frames were observed.
func (r *Recorder) Profile(shape Profile, k int, renderer core.RendererConfig) (Profile, bool) {
	busy, frames := r.snapshot()
	if frames == 0 {
		return Profile{}, false
	}
	fr := float64(frames)
	out := Profile{
		Frustum: shape.Frustum,
		Handoff: shape.Handoff,
		Filters: make(map[core.StageKind]float64, len(core.FilterOrder)),
		Frames:  frames,
		Source:  "observed",
	}
	for _, kind := range core.FilterOrder {
		if s := busy[kind]; s > 0 {
			out.Filters[kind] = s / fr
		} else {
			out.Filters[kind] = shape.Filters[kind]
		}
	}
	if s := busy[core.StageTransfer]; s > 0 {
		out.Transfer = s / fr
	} else {
		out.Transfer = shape.Transfer
	}
	obs := busy[core.StageRender] / fr
	f, sc := shape.RenderFixed, shape.RenderScaled
	switch {
	case obs <= 0:
		out.RenderFixed, out.RenderScaled = f, sc
	case f+sc <= 0:
		out.RenderScaled = obs
	case renderer == core.NRenderers:
		// k renderers each paid the fixed part while the fill divided
		// across strips: observed = k·F + S, with F/S in the shape's ratio.
		if k < 1 {
			k = 1
		}
		den := float64(k)*f + sc
		out.RenderFixed = obs * f / den
		out.RenderScaled = obs * sc / den
	default:
		out.RenderFixed = obs * f / (f + sc)
		out.RenderScaled = obs * sc / (f + sc)
	}
	return out, true
}
