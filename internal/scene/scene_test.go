package scene

import (
	"testing"

	"sccpipe/internal/frame"
	"sccpipe/internal/render"
)

func TestCityDeterministic(t *testing.T) {
	a := City(DefaultConfig())
	b := City(DefaultConfig())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triangle %d differs between runs", i)
		}
	}
}

func TestCityScale(t *testing.T) {
	tris := City(DefaultConfig())
	if len(tris) < 5000 {
		t.Fatalf("city too small: %d triangles", len(tris))
	}
	if len(tris) > 200000 {
		t.Fatalf("city too large: %d triangles", len(tris))
	}
}

func TestCitySeedVariesOutput(t *testing.T) {
	cfg := DefaultConfig()
	a := City(cfg)
	cfg.Seed = 2
	b := City(cfg)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical cities")
		}
	}
}

func TestCityGeometrySane(t *testing.T) {
	cfg := DefaultConfig()
	tris := City(cfg)
	w := float64(cfg.BlocksX) * cfg.BlockSize
	d := float64(cfg.BlocksZ) * cfg.BlockSize
	for i, tr := range tris {
		for _, v := range tr.V {
			if v.Y < -1e-9 {
				t.Fatalf("triangle %d below ground: %v", i, v)
			}
			if v.X < -cfg.BlockSize || v.X > w+cfg.BlockSize ||
				v.Z < -cfg.BlockSize || v.Z > d+cfg.BlockSize {
				t.Fatalf("triangle %d outside city: %v", i, v)
			}
		}
	}
}

func TestCityRendersNonTrivially(t *testing.T) {
	tris := City(DefaultConfig())
	tree := render.BuildOctree(tris)
	cams := render.Walkthrough(8, tree.Bounds())
	img := frame.New(96, 72)
	r := render.NewRenderer(tree)
	for i, cam := range cams {
		st := r.RenderFrame(cam, img)
		if st.TrisDrawn == 0 {
			t.Fatalf("frame %d: culling removed everything", i)
		}
		if st.Filled < int64(img.Pixels())/20 {
			t.Fatalf("frame %d: only %d pixels filled", i, st.Filled)
		}
		// Culling must actually cut work on typical frames.
		if st.TrisDrawn == len(tris) && i > 0 {
			t.Logf("frame %d: no triangles culled (camera sees whole city)", i)
		}
	}
}

func TestCityCullingEffective(t *testing.T) {
	tris := City(DefaultConfig())
	tree := render.BuildOctree(tris)
	cams := render.Walkthrough(16, tree.Bounds())
	r := render.NewRenderer(tree)
	culledSomewhere := false
	for _, cam := range cams {
		st := r.CullOnly(cam, 64, 64, 0, 64)
		if st.TrisAccepted < len(tris) {
			culledSomewhere = true
			break
		}
	}
	if !culledSomewhere {
		t.Fatal("frustum culling never removed a triangle over the walkthrough")
	}
}
