// Package scene generates the procedural city standing in for the paper's
// CC-licensed NYC model (which cannot be redistributed): a grid of
// extruded buildings with varied heights and facade colors over a ground
// plane, plus occasional "landmark" towers. Triangle counts and depth
// complexity are tunable so the render stage exercises the same code paths
// (octree traversal, frustum culling, per-pixel fill) at comparable cost.
package scene

import (
	"math/rand"

	"sccpipe/internal/render"
)

// Config controls the generated city.
type Config struct {
	Seed      int64
	BlocksX   int     // city blocks along X
	BlocksZ   int     // city blocks along Z
	BlockSize float64 // street-to-street pitch
	MaxHeight float64
	Landmarks int // extra tall towers
}

// DefaultConfig yields a city of roughly 23k triangles — the same order of
// magnitude as the paper's model, enough to make culling worthwhile.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		BlocksX:   24,
		BlocksZ:   24,
		BlockSize: 10,
		MaxHeight: 40,
		Landmarks: 12,
	}
}

// City generates the triangle soup of a procedural city.
func City(cfg Config) []render.Triangle {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var tris []render.Triangle

	w := float64(cfg.BlocksX) * cfg.BlockSize
	d := float64(cfg.BlocksZ) * cfg.BlockSize

	// Ground plane (two triangles), dark asphalt.
	g0 := render.Vec3{X: 0, Y: 0, Z: 0}
	g1 := render.Vec3{X: w, Y: 0, Z: 0}
	g2 := render.Vec3{X: w, Y: 0, Z: d}
	g3 := render.Vec3{X: 0, Y: 0, Z: d}
	tris = append(tris,
		render.Triangle{V: [3]render.Vec3{g0, g1, g2}, R: 42, G: 42, B: 46},
		render.Triangle{V: [3]render.Vec3{g0, g2, g3}, R: 42, G: 42, B: 46},
	)

	for bx := 0; bx < cfg.BlocksX; bx++ {
		for bz := 0; bz < cfg.BlocksZ; bz++ {
			// Leave some blocks as plazas.
			if rng.Float64() < 0.12 {
				continue
			}
			x0 := float64(bx)*cfg.BlockSize + 0.15*cfg.BlockSize
			z0 := float64(bz)*cfg.BlockSize + 0.15*cfg.BlockSize
			fx := cfg.BlockSize * (0.4 + 0.3*rng.Float64())
			fz := cfg.BlockSize * (0.4 + 0.3*rng.Float64())
			h := cfg.MaxHeight * (0.15 + 0.6*rng.Float64()*rng.Float64())
			base := uint8(90 + rng.Intn(120))
			tint := uint8(rng.Intn(40))
			tris = append(tris, box(x0, 0, z0, fx, h, fz, base, tint)...)
		}
	}

	// Landmark towers.
	for i := 0; i < cfg.Landmarks; i++ {
		x0 := rng.Float64() * (w - 2*cfg.BlockSize)
		z0 := rng.Float64() * (d - 2*cfg.BlockSize)
		s := cfg.BlockSize * (0.5 + 0.5*rng.Float64())
		h := cfg.MaxHeight * (1.2 + 0.8*rng.Float64())
		tris = append(tris, box(x0, 0, z0, s, h, s, uint8(150+rng.Intn(80)), 20)...)
	}
	return tris
}

// box emits the 12 triangles of an axis-aligned building with per-face
// shading so edges are visible in rendered output.
func box(x, y, z, sx, sy, sz float64, base, tint uint8) []render.Triangle {
	p := func(dx, dy, dz float64) render.Vec3 {
		return render.Vec3{X: x + dx*sx, Y: y + dy*sy, Z: z + dz*sz}
	}
	v000, v100 := p(0, 0, 0), p(1, 0, 0)
	v010, v110 := p(0, 1, 0), p(1, 1, 0)
	v001, v101 := p(0, 0, 1), p(1, 0, 1)
	v011, v111 := p(0, 1, 1), p(1, 1, 1)

	shade := func(f float64) (uint8, uint8, uint8) {
		c := func(b uint8) uint8 {
			v := float64(b) * f
			if v > 255 {
				v = 255
			}
			return uint8(v)
		}
		return c(base), c(base - tint/2), c(base - tint)
	}
	quad := func(a, b, c, d render.Vec3, f float64) []render.Triangle {
		r, g, bb := shade(f)
		return []render.Triangle{
			{V: [3]render.Vec3{a, b, c}, R: r, G: g, B: bb},
			{V: [3]render.Vec3{a, c, d}, R: r, G: g, B: bb},
		}
	}
	var out []render.Triangle
	out = append(out, quad(v010, v110, v111, v011, 1.05)...) // roof
	out = append(out, quad(v000, v100, v110, v010, 0.95)...) // -Z face
	out = append(out, quad(v101, v001, v011, v111, 0.85)...) // +Z face
	out = append(out, quad(v001, v000, v010, v011, 0.75)...) // -X face
	out = append(out, quad(v100, v101, v111, v110, 0.90)...) // +X face
	out = append(out, quad(v000, v001, v101, v100, 0.6)...)  // floor
	return out
}
