//go:build !race

package frame

const raceEnabled = false
