//go:build race

package frame

// raceEnabled gates the pool-identity assertions: under the race detector
// sync.Pool intentionally drops puts, so a same-size Get may miss.
const raceEnabled = true
