package frame

import (
	"math/rand"
	"testing"
)

func TestPoolRoundTrip(t *testing.T) {
	p := NewPool()
	a := p.Get(8, 6)
	if a.W != 8 || a.H != 6 || len(a.Pix) != 8*6*4 {
		t.Fatalf("Get(8,6) = %dx%d, %d bytes", a.W, a.H, len(a.Pix))
	}
	// A fresh pool buffer behaves like New: black, opaque.
	if r, g, b, alpha := a.At(3, 3); r != 0 || g != 0 || b != 0 || alpha != 0xff {
		t.Fatalf("fresh pooled image = %d,%d,%d,%d", r, g, b, alpha)
	}
	p.Put(a)
	b := p.Get(8, 6)
	// Identity reuse is best-effort under the race detector: sync.Pool
	// deliberately drops puts there, so only assert it in normal builds.
	if !raceEnabled && b != a {
		t.Fatal("same-size Get did not reuse the pooled buffer")
	}
	if b.W != 8 || b.H != 6 || len(b.Pix) != 8*6*4 {
		t.Fatalf("second Get(8,6) = %dx%d, %d bytes", b.W, b.H, len(b.Pix))
	}
}

func TestPoolReshapesSameByteSize(t *testing.T) {
	p := NewPool()
	a := p.Get(8, 6)
	p.Put(a)
	// 12×4 has the same byte size as 8×6 and may reuse the same storage,
	// but must come back with the requested geometry.
	b := p.Get(12, 4)
	if b.W != 12 || b.H != 4 || len(b.Pix) != 12*4*4 {
		t.Fatalf("Get(12,4) = %dx%d, %d bytes", b.W, b.H, len(b.Pix))
	}
}

func TestPoolSizeClassesAreSeparate(t *testing.T) {
	p := NewPool()
	small := p.Get(4, 4)
	p.Put(small)
	big := p.Get(16, 16)
	if big == small || len(big.Pix) != 16*16*4 {
		t.Fatal("Get(16,16) handed back a 4x4 buffer")
	}
}

func TestPoolRefusesCorruptBuffers(t *testing.T) {
	p := NewPool()
	// A truncated hand-built image must be dropped, not recycled.
	p.Put(&Image{W: 4, H: 4, Pix: make([]uint8, 8)})
	p.Put(nil)
	img := p.Get(4, 4)
	if len(img.Pix) != 4*4*4 {
		t.Fatalf("pool handed out %d-byte buffer for 4x4", len(img.Pix))
	}
}

func TestPoolGetRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(0, 4) did not panic")
		}
	}()
	NewPool().Get(0, 4)
}

func TestSplitRowsViewSharesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	im := randomImage(rng, 10, 9)
	strips, err := SplitRowsView(im, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range strips {
		if s.Parent() != im {
			t.Fatalf("strip %d has parent %p, want %p", s.Index, s.Parent(), im)
		}
	}
	// A write through the strip view lands in the parent.
	strips[1].Img.Set(2, 0, 9, 8, 7, 6)
	if r, g, b, a := im.At(2, strips[1].Y0); r != 9 || g != 8 || b != 7 || a != 6 {
		t.Fatal("strip view write did not reach the parent frame")
	}
	// And the views reassemble to the parent without copying.
	out := New(im.W, im.H)
	AssembleInto(out, strips)
	if !out.Equal(im) {
		t.Fatal("views do not reassemble to the parent")
	}
}

func TestSplitRowsViewMatchesSplitRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 5, 7} {
		im := randomImage(rng, 12, 21)
		copies, err := SplitRows(im, n)
		if err != nil {
			t.Fatal(err)
		}
		views, err := SplitRowsView(im, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range copies {
			if copies[i].Y0 != views[i].Y0 || !copies[i].Img.Equal(views[i].Img) {
				t.Fatalf("n=%d strip %d: view disagrees with copy", n, i)
			}
		}
	}
}

func TestSplitRowsViewRejectsBadCounts(t *testing.T) {
	im := New(4, 4)
	if _, err := SplitRowsView(im, 0); err == nil {
		t.Fatal("SplitRowsView(n=0) accepted")
	}
	if _, err := SplitRowsView(im, 5); err == nil {
		t.Fatal("SplitRowsView with more strips than rows accepted")
	}
}

func TestStripDetach(t *testing.T) {
	im := randomImage(rand.New(rand.NewSource(5)), 6, 8)
	strips, err := SplitRowsView(im, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := strips[0]
	before := s.Img.Clone()
	s.Detach()
	if s.Parent() != nil {
		t.Fatal("detached strip still reports a parent")
	}
	if !s.Img.Equal(before) {
		t.Fatal("Detach changed pixel contents")
	}
	// Mutating the parent no longer affects the detached strip.
	im.Fill(1, 2, 3, 4)
	if !s.Img.Equal(before) {
		t.Fatal("detached strip still aliases the parent")
	}
	s.Detach() // idempotent on owning strips
	if !s.Img.Equal(before) {
		t.Fatal("second Detach changed the strip")
	}
}

// AssembleInto must skip strips that already view dst: the pixels are in
// place, and copying a row onto itself would be wasted traffic.
func TestAssembleIntoSkipsViewsOfDst(t *testing.T) {
	im := randomImage(rand.New(rand.NewSource(6)), 8, 8)
	want := im.Clone()
	strips, err := SplitRowsView(im, 4)
	if err != nil {
		t.Fatal(err)
	}
	AssembleInto(im, strips)
	if !im.Equal(want) {
		t.Fatal("assembling views of dst into dst changed pixels")
	}
}

// The steady-state split→assemble loop must not allocate: views share the
// parent, the destination comes from the pool, and strip headers are the
// only garbage (amortized to zero here by reusing them).
func TestSplitAssembleSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	p := NewPool()
	src := randomImage(rand.New(rand.NewSource(7)), 64, 48)
	avg := testing.AllocsPerRun(200, func() {
		strips, err := SplitRowsView(src, 4)
		if err != nil {
			t.Fatal(err)
		}
		dst := p.Get(src.W, src.H)
		AssembleInto(dst, strips)
		p.Put(dst)
	})
	// Strip headers (n *Strip + n *Image + the slice) are the only
	// allocations; the pixel path must be zero.
	if avg > 10 {
		t.Fatalf("split/assemble allocates %.1f objects per frame", avg)
	}
}

func TestPoolSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	p := NewPool()
	p.Put(p.Get(32, 32)) // prime the class
	avg := testing.AllocsPerRun(200, func() {
		img := p.Get(32, 32)
		p.Put(img)
	})
	if avg > 0.1 {
		t.Fatalf("pooled Get/Put allocates %.2f objects per cycle", avg)
	}
}
