package frame

import (
	"fmt"
	"sync"
)

// Pool recycles frame buffers by size class so steady-state frame flow is
// allocation-free. It is the Go analog of the paper's fixed per-core frame
// buffers: the SCC design never allocates on the frame path because every
// buffer lives at a fixed offset in shared memory, and the four memory
// controllers see only the unavoidable pixel traffic. A Pool gives the
// goroutine backend the same property.
//
// Ownership rules (see README "Performance"):
//
//   - Get hands out a buffer with UNDEFINED pixel contents; the caller must
//     fully overwrite it (a rasterizer Clear, a strip copy, ...) before
//     reading.
//   - Put transfers ownership back to the pool. The caller must not touch
//     the image afterwards, and must never Put a view returned by
//     SplitRowsView — only the parent owns that storage.
//   - A buffer must be reachable from at most one stage at a time. Builds
//     with -tags framedebug assert this: double Puts panic and returned
//     buffers are poisoned so use-after-Put shows up in golden tests.
//
// A Pool is safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	classes map[int]*sync.Pool
	// held tracks buffers currently inside the pool under -tags framedebug
	// (poolDebug); it stays nil in release builds.
	held map[*Image]bool
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{classes: make(map[int]*sync.Pool)} }

// DefaultPool is the package-wide shared pool used by callers that do not
// manage their own (core.Exec with a nil ExecSpec.Pool, for one).
var DefaultPool = NewPool()

// class returns the sync.Pool for buffers of exactly n pixel bytes.
func (p *Pool) class(n int) *sync.Pool {
	p.mu.Lock()
	c, ok := p.classes[n]
	if !ok {
		c = &sync.Pool{}
		p.classes[n] = c
	}
	p.mu.Unlock()
	return c
}

// Get returns a w×h image with undefined pixel contents, reusing a pooled
// buffer of the same byte size when one is available. The caller owns the
// image until it calls Put.
func (p *Pool) Get(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: Pool.Get(%d, %d)", w, h))
	}
	n := w * h * 4
	v := p.class(n).Get()
	if v == nil {
		return New(w, h)
	}
	img := v.(*Image)
	img.W, img.H = w, h
	if poolDebug {
		p.mu.Lock()
		delete(p.held, img)
		p.mu.Unlock()
	}
	return img
}

// Put returns a buffer to the pool. Images whose Pix length disagrees with
// W×H (hand-built or truncated buffers) are dropped rather than recycled.
func (p *Pool) Put(img *Image) {
	if img == nil || len(img.Pix) != img.W*img.H*4 || len(img.Pix) == 0 {
		return
	}
	if poolDebug {
		p.mu.Lock()
		if p.held == nil {
			p.held = make(map[*Image]bool)
		}
		if p.held[img] {
			p.mu.Unlock()
			panic("frame: Pool.Put called twice for the same buffer (ownership violation)")
		}
		p.held[img] = true
		p.mu.Unlock()
		for i := range img.Pix {
			img.Pix[i] = 0xDB // poison: use-after-Put becomes visible
		}
	}
	p.class(len(img.Pix)).Put(img)
}
