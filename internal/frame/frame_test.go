package frame

import (
	"bytes"
	"image/png"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewIsOpaqueBlack(t *testing.T) {
	im := New(3, 2)
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			r, g, b, a := im.At(x, y)
			if r != 0 || g != 0 || b != 0 || a != 0xff {
				t.Fatalf("pixel (%d,%d) = %d,%d,%d,%d", x, y, r, g, b, a)
			}
		}
	}
	if im.Bytes() != 24 || im.Pixels() != 6 {
		t.Fatalf("Bytes=%d Pixels=%d", im.Bytes(), im.Pixels())
	}
}

func TestSetAt(t *testing.T) {
	im := New(4, 4)
	im.Set(2, 3, 10, 20, 30, 40)
	r, g, b, a := im.At(2, 3)
	if r != 10 || g != 20 || b != 30 || a != 40 {
		t.Fatalf("got %d,%d,%d,%d", r, g, b, a)
	}
	// Neighbours untouched.
	if r, _, _, _ := im.At(1, 3); r != 0 {
		t.Fatal("neighbour modified")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1, 2, 3, 4)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone differs")
	}
	b.Set(0, 0, 9, 9, 9, 9)
	if a.Equal(b) {
		t.Fatal("clone shares storage")
	}
}

func TestStripBoundsPartition(t *testing.T) {
	for h := 1; h <= 64; h++ {
		for n := 1; n <= 9 && n <= h; n++ {
			prev := 0
			for i := 0; i < n; i++ {
				y0, y1 := StripBounds(h, n, i)
				if y0 != prev {
					t.Fatalf("h=%d n=%d strip %d starts at %d, want %d", h, n, i, y0, prev)
				}
				if y1 <= y0 {
					t.Fatalf("h=%d n=%d strip %d empty", h, n, i)
				}
				if d := (y1 - y0) - h/n; d < 0 || d > 1 {
					t.Fatalf("h=%d n=%d strip %d has %d rows (base %d)", h, n, i, y1-y0, h/n)
				}
				prev = y1
			}
			if prev != h {
				t.Fatalf("h=%d n=%d strips cover %d rows", h, n, prev)
			}
		}
	}
}

func randomImage(rng *rand.Rand, w, h int) *Image {
	im := New(w, h)
	rng.Read(im.Pix)
	return im
}

func TestSplitAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 7} {
		im := randomImage(rng, 16, 23)
		strips, err := SplitRows(im, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(strips) != n {
			t.Fatalf("n=%d: got %d strips", n, len(strips))
		}
		back := Assemble(im.W, im.H, strips)
		if !im.Equal(back) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestAssembleOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := randomImage(rng, 8, 12)
	strips, err := SplitRows(im, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse strip order.
	for i, j := 0, len(strips)-1; i < j; i, j = i+1, j-1 {
		strips[i], strips[j] = strips[j], strips[i]
	}
	if !im.Equal(Assemble(im.W, im.H, strips)) {
		t.Fatal("assembly depends on strip arrival order")
	}
}

func TestQuickSplitAssemble(t *testing.T) {
	f := func(seed int64, wRaw, hRaw, nRaw uint8) bool {
		w := int(wRaw%16) + 1
		h := int(hRaw%32) + 1
		n := int(nRaw)%h + 1
		if n > h {
			n = h
		}
		im := randomImage(rand.New(rand.NewSource(seed)), w, h)
		strips, err := SplitRows(im, n)
		if err != nil {
			return false
		}
		return im.Equal(Assemble(w, h, strips))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStripBytes(t *testing.T) {
	im := New(10, 10)
	strips, err := SplitRows(im, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := strips[0]
	if s.Bytes() != 10*5*4 {
		t.Fatalf("strip bytes = %d", s.Bytes())
	}
}

func TestWritePPM(t *testing.T) {
	im := New(2, 1)
	im.Set(0, 0, 255, 0, 0, 255)
	im.Set(1, 0, 0, 255, 0, 255)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P6\n2 1\n255\n") {
		t.Fatalf("header: %q", out[:12])
	}
	body := buf.Bytes()[len("P6\n2 1\n255\n"):]
	want := []byte{255, 0, 0, 0, 255, 0}
	if !bytes.Equal(body, want) {
		t.Fatalf("body = %v, want %v", body, want)
	}
}

func TestFill(t *testing.T) {
	im := New(3, 3)
	im.Fill(7, 8, 9, 10)
	r, g, b, a := im.At(2, 2)
	if r != 7 || g != 8 || b != 9 || a != 10 {
		t.Fatalf("got %d,%d,%d,%d", r, g, b, a)
	}
}

func TestSplitRowsRejectsBadStripCounts(t *testing.T) {
	im := New(8, 4)
	// More strips than rows would make zero-height strips: must error, not
	// panic.
	if _, err := SplitRows(im, 5); err == nil {
		t.Fatal("SplitRows(h=4, n=5) accepted")
	}
	if _, err := SplitRows(im, 0); err == nil {
		t.Fatal("SplitRows(n=0) accepted")
	}
	if strips, err := SplitRows(im, 4); err != nil || len(strips) != 4 {
		t.Fatalf("SplitRows(h=4, n=4) = %d strips, err %v", len(strips), err)
	}
}

func TestEqualTruncatedBuffer(t *testing.T) {
	a := New(4, 4)
	// A hand-constructed image whose Pix disagrees with W×H must compare
	// unequal instead of panicking with an index error.
	b := &Image{W: 4, H: 4, Pix: make([]uint8, 8)}
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("truncated buffer compared equal")
	}
	var nilImg *Image
	if a.Equal(nilImg) {
		t.Fatal("nil compared equal")
	}
	if !nilImg.Equal(nil) {
		t.Fatal("nil != nil")
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	im := New(5, 4)
	rand.New(rand.NewSource(7)).Read(im.Pix)
	for i := 3; i < len(im.Pix); i += 4 {
		im.Pix[i] = 0xff // keep alpha opaque: PNG round-trips exactly then
	}
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b := dec.Bounds(); b.Dx() != 5 || b.Dy() != 4 {
		t.Fatalf("decoded size %v, want 5x4", b)
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b, a := im.At(x, y)
			dr, dg, db, da := dec.At(x, y).RGBA()
			if uint32(r) != dr>>8 || uint32(g) != dg>>8 || uint32(b) != db>>8 || uint32(a) != da>>8 {
				t.Fatalf("pixel (%d,%d) = %d,%d,%d,%d decoded %d,%d,%d,%d",
					x, y, r, g, b, a, dr>>8, dg>>8, db>>8, da>>8)
			}
		}
	}
}
