package frame

import (
	"bytes"
	"testing"
)

// Fuzz targets for the frame parsing paths: PNG decode (stream clients
// feed server responses back through ReadPNG) and strip assembly (strips
// can be malformed when built by hand or corrupted in transit). Decoders
// must error on garbage, never panic or over-allocate. `go test` runs the
// seed corpus; `go test -fuzz Fuzz<Name> ./internal/frame` explores.

// tinyPNG encodes a deterministic small image for the seed corpus.
func tinyPNG(w, h int) []byte {
	im := New(w, h)
	for i := range im.Pix {
		im.Pix[i] = uint8(i * 37)
	}
	var buf bytes.Buffer
	if err := im.WritePNG(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzReadPNG(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("\x89PNG\r\n\x1a\n"))
	f.Add(tinyPNG(3, 2))
	f.Add(tinyPNG(1, 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := ReadPNG(bytes.NewReader(data))
		if err != nil {
			return
		}
		if im.W <= 0 || im.H <= 0 || im.W*im.H > MaxDecodePixels {
			t.Fatalf("accepted out-of-bounds image %dx%d", im.W, im.H)
		}
		if len(im.Pix) != im.W*im.H*4 {
			t.Fatalf("inconsistent buffer: %d bytes for %dx%d", len(im.Pix), im.W, im.H)
		}
		// What we decoded must survive our own encode/decode unchanged.
		var buf bytes.Buffer
		if err := im.WritePNG(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadPNG(&buf)
		if err != nil || !im.Equal(back) {
			t.Fatalf("re-encode broke roundtrip: %v", err)
		}
	})
}

func FuzzPNGRoundtrip(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint64(1))
	f.Add(uint8(16), uint8(16), uint64(99))
	f.Fuzz(func(t *testing.T, w8, h8 uint8, seed uint64) {
		w, h := int(w8)%64+1, int(h8)%64+1
		im := New(w, h)
		x := seed
		for i := range im.Pix {
			x = x*6364136223846793005 + 1442695040888963407
			im.Pix[i] = uint8(x >> 56)
		}
		var buf bytes.Buffer
		if err := im.WritePNG(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadPNG(&buf)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if !im.Equal(got) {
			t.Fatalf("%dx%d PNG roundtrip mismatch", w, h)
		}
	})
}

func FuzzSplitAssemble(f *testing.F) {
	f.Add(uint8(8), uint8(6), uint8(3), false)
	f.Add(uint8(4), uint8(4), uint8(9), true) // more strips than rows: error
	f.Fuzz(func(t *testing.T, w8, h8, n8 uint8, view bool) {
		w, h := int(w8)%32+1, int(h8)%32+1
		n := int(n8) // may exceed h: must error, not panic
		im := New(w, h)
		for i := range im.Pix {
			im.Pix[i] = uint8(i * 13)
		}
		split := SplitRows
		if view {
			split = SplitRowsView
		}
		strips, err := split(im.Clone(), n)
		if err != nil {
			if n >= 1 && n <= h {
				t.Fatalf("split(%dx%d, %d) failed: %v", w, h, n, err)
			}
			return
		}
		if got := Assemble(w, h, strips); !got.Equal(im) {
			t.Fatalf("split/assemble roundtrip mismatch (%dx%d, %d strips, view=%v)", w, h, n, view)
		}
	})
}

// FuzzAssembleMalformed feeds hand-built (possibly inconsistent) strips to
// the assembler: whatever the claimed geometry, it must not panic.
func FuzzAssembleMalformed(f *testing.F) {
	f.Add(int16(0), uint8(4), uint8(2), uint16(32))
	f.Add(int16(-3), uint8(7), uint8(0), uint16(0))
	f.Add(int16(100), uint8(1), uint8(200), uint16(9))
	f.Fuzz(func(t *testing.T, y0 int16, sw, sh uint8, pixLen uint16) {
		s := &Strip{
			Y0:  int(y0),
			Img: &Image{W: int(sw), H: int(sh), Pix: make([]uint8, int(pixLen))},
		}
		dst := New(8, 8)
		AssembleInto(dst, []*Strip{s}) // must not panic
	})
}
