package frame

import (
	"image"
	"image/png"
	"io"
	"sync"
)

// pngBuffers recycles the png encoder's internal scratch (compressor
// window, filter rows) across frames. Without it every streamed frame of a
// render job pays ~800 kB of encoder allocations; with it the steady-state
// encode path allocates nothing but the compressed output.
type pngBuffers struct{ pool sync.Pool }

func (p *pngBuffers) Get() *png.EncoderBuffer {
	b, _ := p.pool.Get().(*png.EncoderBuffer)
	return b
}

func (p *pngBuffers) Put(b *png.EncoderBuffer) { p.pool.Put(b) }

// pngEncoder is shared by every WritePNG call; png.Encoder is safe for
// concurrent use and the buffer pool is a sync.Pool.
var pngEncoder = png.Encoder{BufferPool: &pngBuffers{}}

// WritePNG encodes the image as PNG. The frame buffer is straight
// (non-premultiplied) RGBA, so it maps directly onto image.NRGBA without a
// per-pixel conversion; the encoder reads Pix in place and its scratch
// buffers are pooled across calls.
func (im *Image) WritePNG(w io.Writer) error {
	return pngEncoder.Encode(w, &image.NRGBA{
		Pix:    im.Pix,
		Stride: im.W * 4,
		Rect:   image.Rect(0, 0, im.W, im.H),
	})
}
