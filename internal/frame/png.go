package frame

import (
	"image"
	"image/png"
	"io"
)

// WritePNG encodes the image as PNG. The frame buffer is straight
// (non-premultiplied) RGBA, so it maps directly onto image.NRGBA without a
// per-pixel conversion; the encoder reads Pix in place.
func (im *Image) WritePNG(w io.Writer) error {
	return png.Encode(w, &image.NRGBA{
		Pix:    im.Pix,
		Stride: im.W * 4,
		Rect:   image.Rect(0, 0, im.W, im.H),
	})
}
