package frame

import (
	"bufio"
	"bytes"
	"fmt"
	"image"
	"image/draw"
	"image/png"
	"io"
	"sync"
)

// pngBuffers recycles the png encoder's internal scratch (compressor
// window, filter rows) across frames. Without it every streamed frame of a
// render job pays ~800 kB of encoder allocations; with it the steady-state
// encode path allocates nothing but the compressed output.
type pngBuffers struct{ pool sync.Pool }

func (p *pngBuffers) Get() *png.EncoderBuffer {
	b, _ := p.pool.Get().(*png.EncoderBuffer)
	return b
}

func (p *pngBuffers) Put(b *png.EncoderBuffer) { p.pool.Put(b) }

// pngEncoder is shared by every WritePNG call; png.Encoder is safe for
// concurrent use and the buffer pool is a sync.Pool.
var pngEncoder = png.Encoder{BufferPool: &pngBuffers{}}

// WritePNG encodes the image as PNG. The frame buffer is straight
// (non-premultiplied) RGBA, so it maps directly onto image.NRGBA without a
// per-pixel conversion; the encoder reads Pix in place and its scratch
// buffers are pooled across calls.
func (im *Image) WritePNG(w io.Writer) error {
	return pngEncoder.Encode(w, &image.NRGBA{
		Pix:    im.Pix,
		Stride: im.W * 4,
		Rect:   image.Rect(0, 0, im.W, im.H),
	})
}

// MaxDecodePixels bounds the frames ReadPNG will decode; it matches the
// render service's default job limit. The cap is checked against the IHDR
// before any pixel allocation, so an adversarial header cannot demand
// gigabytes.
const MaxDecodePixels = 4096 * 4096

// ReadPNG decodes a PNG stream into an Image, the inverse of WritePNG.
// Clients consuming a frame stream use it to get pipeline frame buffers
// back. Any PNG color model is accepted (converted to straight RGBA);
// frames larger than MaxDecodePixels are rejected.
func ReadPNG(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	// Peek the signature + IHDR (8 + 8 + 13 + 4 bytes) to size-check the
	// image without consuming the reader.
	hdr, err := br.Peek(33)
	if err != nil {
		return nil, fmt.Errorf("frame: short PNG header: %w", err)
	}
	cfg, err := png.DecodeConfig(bytes.NewReader(hdr))
	if err != nil {
		return nil, fmt.Errorf("frame: bad PNG header: %w", err)
	}
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.Width > MaxDecodePixels/cfg.Height {
		return nil, fmt.Errorf("frame: refusing %dx%d PNG (max %d pixels)", cfg.Width, cfg.Height, MaxDecodePixels)
	}
	src, err := png.Decode(br)
	if err != nil {
		return nil, fmt.Errorf("frame: bad PNG: %w", err)
	}
	b := src.Bounds()
	im := New(b.Dx(), b.Dy())
	if n, ok := src.(*image.NRGBA); ok && n.Stride == im.W*4 && len(n.Pix) >= len(im.Pix) {
		copy(im.Pix, n.Pix)
		return im, nil
	}
	// Other color models (gray, paletted, 16-bit) go through image/draw.
	draw.Draw(&image.NRGBA{Pix: im.Pix, Stride: im.W * 4, Rect: image.Rect(0, 0, im.W, im.H)},
		image.Rect(0, 0, im.W, im.H), src, b.Min, draw.Src)
	return im, nil
}
