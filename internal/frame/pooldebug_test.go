//go:build framedebug

package frame

import "testing"

// These tests exercise the debug-build ownership assertions; run them with
// `go test -tags framedebug ./internal/frame` (make check does).

func TestPoolDoublePutPanics(t *testing.T) {
	p := NewPool()
	img := p.Get(4, 4)
	p.Put(img)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic under framedebug")
		}
	}()
	p.Put(img)
}

func TestPoolPoisonsReturnedBuffers(t *testing.T) {
	p := NewPool()
	img := p.Get(4, 4)
	img.Fill(1, 2, 3, 4)
	p.Put(img)
	// The caller no longer owns img; the poison pattern makes any
	// use-after-Put visible in pixel comparisons.
	for i, v := range img.Pix {
		if v != 0xDB {
			t.Fatalf("byte %d = %#x after Put, want poison 0xDB", i, v)
		}
	}
	// Get clears the poison back to a defined "undefined" state only via
	// caller overwrite; the buffer itself must come back usable.
	got := p.Get(4, 4)
	if got != img {
		t.Fatal("poisoned buffer was not recycled")
	}
}
