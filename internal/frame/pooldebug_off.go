//go:build !framedebug

package frame

// poolDebug enables the Pool ownership checks (double-Put panics, poisoned
// returned buffers). Off in release builds; `go test -tags framedebug`
// turns it on.
const poolDebug = false
