// Package frame provides the image buffers flowing through the macro
// pipeline: RGBA frame buffers (four bytes per pixel, as on the paper's
// renderer), horizontal strips for sort-first decomposition, and assembly of
// strips back into display frames.
package frame

import (
	"fmt"
	"io"
)

// Image is an RGBA frame buffer, four bytes per pixel, rows top to bottom.
type Image struct {
	W, H int
	// Pix holds RGBA quadruplets row-major; len = W*H*4.
	Pix []uint8
}

// New returns a black, fully opaque image.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: invalid size %dx%d", w, h))
	}
	img := &Image{W: w, H: h, Pix: make([]uint8, w*h*4)}
	for i := 3; i < len(img.Pix); i += 4 {
		img.Pix[i] = 0xff
	}
	return img
}

// Bytes reports the buffer size in bytes (the paper's four bytes per pixel).
func (im *Image) Bytes() int { return len(im.Pix) }

// Pixels reports the pixel count.
func (im *Image) Pixels() int { return im.W * im.H }

func (im *Image) offset(x, y int) int { return (y*im.W + x) * 4 }

// At returns the RGBA value at (x, y).
func (im *Image) At(x, y int) (r, g, b, a uint8) {
	o := im.offset(x, y)
	return im.Pix[o], im.Pix[o+1], im.Pix[o+2], im.Pix[o+3]
}

// Set stores an RGBA value at (x, y).
func (im *Image) Set(x, y int, r, g, b, a uint8) {
	o := im.offset(x, y)
	im.Pix[o], im.Pix[o+1], im.Pix[o+2], im.Pix[o+3] = r, g, b, a
}

// Fill sets every pixel to the given color.
func (im *Image) Fill(r, g, b, a uint8) {
	for o := 0; o < len(im.Pix); o += 4 {
		im.Pix[o], im.Pix[o+1], im.Pix[o+2], im.Pix[o+3] = r, g, b, a
	}
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]uint8, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// Equal reports whether two images have identical size and pixels. A
// truncated or hand-constructed Pix buffer that disagrees with W×H makes
// the images unequal rather than panicking.
func (im *Image) Equal(other *Image) bool {
	if im == nil || other == nil {
		return im == other
	}
	if im.W != other.W || im.H != other.H || len(im.Pix) != len(other.Pix) {
		return false
	}
	for i := range im.Pix {
		if im.Pix[i] != other.Pix[i] {
			return false
		}
	}
	return true
}

// Row returns the pixel bytes of row y (a view, not a copy).
func (im *Image) Row(y int) []uint8 {
	return im.Pix[y*im.W*4 : (y+1)*im.W*4]
}

// Strip is a horizontal band of a frame, carrying its origin so strips can
// be reassembled. Index identifies which pipeline produced it.
type Strip struct {
	Index int // strip number, 0 = top
	Y0    int // first row in the full frame
	Img   *Image
	// parent is non-nil when Img is a zero-copy view into another frame's
	// storage (SplitRowsView); Detach severs the tie.
	parent *Image
}

// Bytes reports the strip payload size.
func (s *Strip) Bytes() int { return s.Img.Bytes() }

// Parent returns the frame this strip is a view into, or nil when the
// strip owns its pixels.
func (s *Strip) Parent() *Image { return s.parent }

// Detach gives the strip its own copy of its pixels. A stage that must
// hold a strip beyond its turn in the pipeline — or mutate rows it does
// not own — calls Detach first; stages that filter their own rows in place
// can keep the view. Detach on an owning strip is a no-op.
func (s *Strip) Detach() {
	if s.parent == nil {
		return
	}
	s.Img = s.Img.Clone()
	s.parent = nil
}

// StripBounds returns the row range [y0, y1) of strip i when a frame of
// height h is divided into n horizontal strips as evenly as possible
// (earlier strips take the remainder rows).
func StripBounds(h, n, i int) (y0, y1 int) {
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("frame: StripBounds(h=%d, n=%d, i=%d)", h, n, i))
	}
	base, rem := h/n, h%n
	y0 = i*base + min(i, rem)
	y1 = y0 + base
	if i < rem {
		y1++
	}
	return y0, y1
}

// SplitRows copies a frame into n horizontal strips (sort-first
// decomposition as in the paper). It is an error to ask for fewer than one
// strip, or for more strips than the image has rows (every strip must be at
// least one row tall).
func SplitRows(im *Image, n int) ([]*Strip, error) {
	if n < 1 {
		return nil, fmt.Errorf("frame: SplitRows needs at least one strip, got %d", n)
	}
	if n > im.H {
		return nil, fmt.Errorf("frame: cannot split %d rows into %d strips", im.H, n)
	}
	strips := make([]*Strip, n)
	for i := 0; i < n; i++ {
		y0, y1 := StripBounds(im.H, n, i)
		sub := New(im.W, y1-y0)
		for y := y0; y < y1; y++ {
			copy(sub.Row(y-y0), im.Row(y))
		}
		strips[i] = &Strip{Index: i, Y0: y0, Img: sub}
	}
	return strips, nil
}

// SplitRowsView divides a frame into n horizontal strips that are views
// onto im's own storage: no pixels are copied, and writes through a strip
// are writes into im. The row ranges are disjoint, so concurrent stages
// may each mutate their own strip in place; a stage that needs ownership
// (or outlives im) must call Strip.Detach. The parent must stay untouched
// — and must not be recycled through a Pool — until every view is done.
func SplitRowsView(im *Image, n int) ([]*Strip, error) {
	if n < 1 {
		return nil, fmt.Errorf("frame: SplitRowsView needs at least one strip, got %d", n)
	}
	if n > im.H {
		return nil, fmt.Errorf("frame: cannot split %d rows into %d strips", im.H, n)
	}
	strips := make([]*Strip, n)
	for i := 0; i < n; i++ {
		y0, y1 := StripBounds(im.H, n, i)
		sub := &Image{W: im.W, H: y1 - y0, Pix: im.Pix[y0*im.W*4 : y1*im.W*4]}
		strips[i] = &Strip{Index: i, Y0: y0, Img: sub, parent: im}
	}
	return strips, nil
}

// Assemble recombines strips (in any order) into a full frame of the given
// size. Missing rows stay black.
func Assemble(w, h int, strips []*Strip) *Image {
	out := New(w, h)
	AssembleInto(out, strips)
	return out
}

// AssembleInto copies strips (in any order) into dst. Rows no strip covers
// keep dst's existing contents — callers reusing pooled buffers must
// ensure the strips tile the frame, as the pipeline's sort-first
// decomposition does. A strip that is a view into dst itself is already in
// place and is skipped rather than copied.
func AssembleInto(dst *Image, strips []*Strip) {
	for _, s := range strips {
		if s.parent == dst {
			continue
		}
		// A malformed strip (nil image, or a Pix buffer that disagrees with
		// its claimed geometry) contributes nothing rather than panicking:
		// strips can arrive over the wire, and a frame with a hole beats a
		// crashed assembler.
		if s.Img == nil || s.Img.W <= 0 || s.Img.H < 0 || len(s.Img.Pix) < s.Img.W*s.Img.H*4 {
			continue
		}
		for y := 0; y < s.Img.H; y++ {
			ty := s.Y0 + y
			if ty < 0 || ty >= dst.H {
				continue
			}
			copy(dst.Row(ty), s.Img.Row(y))
		}
	}
}

// WritePPM encodes the image as binary PPM (P6), dropping alpha.
func (im *Image) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	row := make([]uint8, im.W*3)
	for y := 0; y < im.H; y++ {
		src := im.Row(y)
		for x := 0; x < im.W; x++ {
			row[x*3], row[x*3+1], row[x*3+2] = src[x*4], src[x*4+1], src[x*4+2]
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}
