// Package frame provides the image buffers flowing through the macro
// pipeline: RGBA frame buffers (four bytes per pixel, as on the paper's
// renderer), horizontal strips for sort-first decomposition, and assembly of
// strips back into display frames.
package frame

import (
	"fmt"
	"io"
)

// Image is an RGBA frame buffer, four bytes per pixel, rows top to bottom.
type Image struct {
	W, H int
	// Pix holds RGBA quadruplets row-major; len = W*H*4.
	Pix []uint8
}

// New returns a black, fully opaque image.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: invalid size %dx%d", w, h))
	}
	img := &Image{W: w, H: h, Pix: make([]uint8, w*h*4)}
	for i := 3; i < len(img.Pix); i += 4 {
		img.Pix[i] = 0xff
	}
	return img
}

// Bytes reports the buffer size in bytes (the paper's four bytes per pixel).
func (im *Image) Bytes() int { return len(im.Pix) }

// Pixels reports the pixel count.
func (im *Image) Pixels() int { return im.W * im.H }

func (im *Image) offset(x, y int) int { return (y*im.W + x) * 4 }

// At returns the RGBA value at (x, y).
func (im *Image) At(x, y int) (r, g, b, a uint8) {
	o := im.offset(x, y)
	return im.Pix[o], im.Pix[o+1], im.Pix[o+2], im.Pix[o+3]
}

// Set stores an RGBA value at (x, y).
func (im *Image) Set(x, y int, r, g, b, a uint8) {
	o := im.offset(x, y)
	im.Pix[o], im.Pix[o+1], im.Pix[o+2], im.Pix[o+3] = r, g, b, a
}

// Fill sets every pixel to the given color.
func (im *Image) Fill(r, g, b, a uint8) {
	for o := 0; o < len(im.Pix); o += 4 {
		im.Pix[o], im.Pix[o+1], im.Pix[o+2], im.Pix[o+3] = r, g, b, a
	}
}

// Clone returns a deep copy.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Pix: make([]uint8, len(im.Pix))}
	copy(out.Pix, im.Pix)
	return out
}

// Equal reports whether two images have identical size and pixels. A
// truncated or hand-constructed Pix buffer that disagrees with W×H makes
// the images unequal rather than panicking.
func (im *Image) Equal(other *Image) bool {
	if im == nil || other == nil {
		return im == other
	}
	if im.W != other.W || im.H != other.H || len(im.Pix) != len(other.Pix) {
		return false
	}
	for i := range im.Pix {
		if im.Pix[i] != other.Pix[i] {
			return false
		}
	}
	return true
}

// Row returns the pixel bytes of row y (a view, not a copy).
func (im *Image) Row(y int) []uint8 {
	return im.Pix[y*im.W*4 : (y+1)*im.W*4]
}

// Strip is a horizontal band of a frame, carrying its origin so strips can
// be reassembled. Index identifies which pipeline produced it.
type Strip struct {
	Index int // strip number, 0 = top
	Y0    int // first row in the full frame
	Img   *Image
}

// Bytes reports the strip payload size.
func (s *Strip) Bytes() int { return s.Img.Bytes() }

// StripBounds returns the row range [y0, y1) of strip i when a frame of
// height h is divided into n horizontal strips as evenly as possible
// (earlier strips take the remainder rows).
func StripBounds(h, n, i int) (y0, y1 int) {
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("frame: StripBounds(h=%d, n=%d, i=%d)", h, n, i))
	}
	base, rem := h/n, h%n
	y0 = i*base + min(i, rem)
	y1 = y0 + base
	if i < rem {
		y1++
	}
	return y0, y1
}

// SplitRows copies a frame into n horizontal strips (sort-first
// decomposition as in the paper). It is an error to ask for fewer than one
// strip, or for more strips than the image has rows (every strip must be at
// least one row tall).
func SplitRows(im *Image, n int) ([]*Strip, error) {
	if n < 1 {
		return nil, fmt.Errorf("frame: SplitRows needs at least one strip, got %d", n)
	}
	if n > im.H {
		return nil, fmt.Errorf("frame: cannot split %d rows into %d strips", im.H, n)
	}
	strips := make([]*Strip, n)
	for i := 0; i < n; i++ {
		y0, y1 := StripBounds(im.H, n, i)
		sub := New(im.W, y1-y0)
		for y := y0; y < y1; y++ {
			copy(sub.Row(y-y0), im.Row(y))
		}
		strips[i] = &Strip{Index: i, Y0: y0, Img: sub}
	}
	return strips, nil
}

// Assemble recombines strips (in any order) into a full frame of the given
// size. Missing rows stay black.
func Assemble(w, h int, strips []*Strip) *Image {
	out := New(w, h)
	for _, s := range strips {
		for y := 0; y < s.Img.H; y++ {
			ty := s.Y0 + y
			if ty < 0 || ty >= h {
				continue
			}
			copy(out.Row(ty), s.Img.Row(y))
		}
	}
	return out
}

// WritePPM encodes the image as binary PPM (P6), dropping alpha.
func (im *Image) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	row := make([]uint8, im.W*3)
	for y := 0; y < im.H; y++ {
		src := im.Row(y)
		for x := 0; x < im.W; x++ {
			row[x*3], row[x*3+1], row[x*3+2] = src[x*4], src[x*4+1], src[x*4+2]
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
