//go:build framedebug

package frame

// poolDebug enables the Pool ownership checks (double-Put panics, poisoned
// returned buffers). See pooldebug_off.go for the release default.
const poolDebug = true
