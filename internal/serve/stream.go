package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/textproto"
	"strconv"
	"sync"

	"sccpipe/internal/codec"
	"sccpipe/internal/frame"
)

// Stream-encoding negotiation and part typing for the delta path. A
// client sends `X-Frame-Encoding: delta` on the job request; each frame
// part then carries the temporal delta payload (codec.FrameDeltaEncode
// against the previously delivered frame, all-zeros before the first)
// typed as application/x-scc-delta, with the frame geometry in headers
// and X-Frame-Digest computed over the DECODED raw RGBA bytes — so every
// relay hop verifies the pixels a client will reconstruct, not the
// compressed representation.
const (
	FrameEncodingHeader = "X-Frame-Encoding"
	FrameEncodingRaw    = "raw" // explicit default: one PNG part per frame
	FrameEncodingDelta  = "delta"

	DeltaContentType  = "application/x-scc-delta"
	FrameWidthHeader  = "X-Frame-Width"
	FrameHeightHeader = "X-Frame-Height"
)

// FrameDigest is the checksum each frame part carries in its
// X-Frame-Digest header: FNV-1a/64 of the PNG payload bytes, hex
// encoded. It is cheap enough to compute inline on the streaming path
// and lets relays (the fleet gateway) detect frames corrupted or
// truncated in transit instead of forwarding damaged bytes downstream.
func FrameDigest(payload []byte) string {
	h := uint64(14695981039346656037)
	for i := 0; i < len(payload); i++ {
		h ^= uint64(payload[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

// pngBufPool recycles the scratch buffers frames are encoded into before
// the part is written (the digest needs the full payload up front).
var pngBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// frameStream writes a render job's frames as a chunked multipart response
// (MJPEG-style, but PNG parts): one image/png part per frame, then one
// application/json part carrying either the run summary or the error. The
// response is committed lazily — headers go out with the first frame — so
// a job that fails before producing anything can still send a plain HTTP
// error status instead.
//
// It is used from the pipeline's transfer goroutine only; it is not safe
// for concurrent use.
type frameStream struct {
	w       http.ResponseWriter
	flusher http.Flusher
	mw      *multipart.Writer
	err     error

	// delta switches the per-frame parts from PNG payloads to temporal
	// deltas; prev holds the raw RGBA bytes of the last delivered frame
	// (the decoder's chain state mirror). bytes sums payload bytes put on
	// the wire, for the bandwidth metrics.
	delta bool
	prev  []byte
	bytes int64
}

func newFrameStream(w http.ResponseWriter, delta bool) *frameStream {
	st := &frameStream{w: w, delta: delta}
	st.flusher, _ = w.(http.Flusher)
	return st
}

// PayloadBytes reports the total frame payload bytes written so far
// (part headers and multipart boundaries excluded).
func (st *frameStream) PayloadBytes() int64 { return st.bytes }

// Started reports whether the response has been committed.
func (st *frameStream) Started() bool { return st.mw != nil }

// Err returns the first write failure, if any.
func (st *frameStream) Err() error { return st.err }

// WriteFrame encodes one frame as a PNG (or temporal-delta) part and
// flushes it to the client.
func (st *frameStream) WriteFrame(f int, img *frame.Image) error {
	if st.err != nil {
		return st.err
	}
	if st.mw == nil {
		st.mw = multipart.NewWriter(st.w)
		st.w.Header().Set("Content-Type", "multipart/x-mixed-replace; boundary="+st.mw.Boundary())
		st.w.WriteHeader(http.StatusOK)
	}
	if st.delta {
		return st.writeDeltaFrame(f, img)
	}
	// Encode into a pooled buffer first: the digest header must precede
	// the payload, and a full buffer also means a frame is never torn by
	// an encode error after the part header went out.
	buf := pngBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer pngBufPool.Put(buf)
	if err := img.WritePNG(buf); err != nil {
		st.err = err
		return err
	}
	part, err := st.mw.CreatePart(textproto.MIMEHeader{
		"Content-Type":   {"image/png"},
		"X-Frame-Index":  {strconv.Itoa(f)},
		"X-Frame-Digest": {FrameDigest(buf.Bytes())},
	})
	if err == nil {
		_, err = part.Write(buf.Bytes())
	}
	if err != nil {
		st.err = err
		return err
	}
	st.bytes += int64(buf.Len())
	if st.flusher != nil {
		st.flusher.Flush()
	}
	return nil
}

// writeDeltaFrame ships one frame delta-coded against the previous
// delivered frame (codec.FrameDeltaEncode picks the cheapest scheme per
// frame, falling back to a keyframe under heavy motion). The digest covers
// the decoded raw bytes, and the part carries the frame geometry so relays
// can decode and verify statelessly per stream.
func (st *frameStream) writeDeltaFrame(f int, img *frame.Image) error {
	raw := img.Pix
	if st.prev == nil {
		st.prev = make([]byte, len(raw)) // all-zero bootstrap frame
	}
	payload, err := codec.FrameDeltaEncode(st.prev, raw, img.W, img.H)
	if err != nil {
		st.err = err
		return err
	}
	part, err := st.mw.CreatePart(textproto.MIMEHeader{
		"Content-Type":    {DeltaContentType},
		"X-Frame-Index":   {strconv.Itoa(f)},
		FrameWidthHeader:  {strconv.Itoa(img.W)},
		FrameHeightHeader: {strconv.Itoa(img.H)},
		"X-Frame-Digest":  {FrameDigest(raw)},
	})
	if err == nil {
		_, err = part.Write(payload)
	}
	if err != nil {
		st.err = err
		return err
	}
	copy(st.prev, raw)
	st.bytes += int64(len(payload))
	if st.flusher != nil {
		st.flusher.Flush()
	}
	return nil
}

// closeWith appends the trailing JSON part and the closing boundary.
func (st *frameStream) closeWith(v any) error {
	if st.err != nil {
		return st.err
	}
	if st.mw == nil { // zero-frame success: still a valid (empty) stream
		st.mw = multipart.NewWriter(st.w)
		st.w.Header().Set("Content-Type", "multipart/x-mixed-replace; boundary="+st.mw.Boundary())
		st.w.WriteHeader(http.StatusOK)
	}
	part, err := st.mw.CreatePart(textproto.MIMEHeader{
		"Content-Type": {"application/json"},
	})
	if err == nil {
		err = json.NewEncoder(part).Encode(v)
	}
	if err == nil {
		err = st.mw.Close()
	}
	if err != nil {
		st.err = err
		return err
	}
	if st.flusher != nil {
		st.flusher.Flush()
	}
	return nil
}

// CloseWithSummary ends a successful stream with the run summary.
func (st *frameStream) CloseWithSummary(sum renderSummary) error {
	return st.closeWith(sum)
}

// CloseWithError ends an already-started stream with an error part — the
// only way left to signal failure once the 200 header is on the wire.
func (st *frameStream) CloseWithError(jobErr error) {
	_ = st.closeWith(map[string]string{"error": jobErr.Error()})
}
