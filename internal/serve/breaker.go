package serve

import (
	"sync"
	"time"
)

// BreakerConfig tunes the server's circuit breaker. The breaker watches
// job outcomes: Threshold consecutive failures trip it open, after which
// submissions are rejected immediately (503, reason "breaker_open")
// instead of being admitted into a failing backend. After Cooldown the
// breaker goes half-open and lets a single probe job through: a success
// closes it, a failure re-opens it for another cooldown.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker;
	// 0 (the default) disables it entirely.
	Threshold int
	// Cooldown is how long the breaker stays open before probing
	// (default 5s).
	Cooldown time.Duration
}

// Breaker states, exported on /metrics as sccserve_breaker_state.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a consecutive-failure circuit breaker. The clock is
// injectable for tests.
type breaker struct {
	cfg    BreakerConfig
	now    func() time.Time
	onTrip func()

	mu       sync.Mutex
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

func newBreaker(cfg BreakerConfig, onTrip func()) *breaker {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	return &breaker{cfg: cfg, now: time.Now, onTrip: onTrip}
}

// enabled reports whether the breaker is configured at all.
func (b *breaker) enabled() bool { return b != nil && b.cfg.Threshold > 0 }

// Allow reports whether a job may be admitted, transitioning open →
// half-open once the cooldown has elapsed. probe is true when this
// admission holds the breaker's single half-open probe slot: the caller
// must eventually hand the slot back, either by running the job and
// calling Record, or by calling Release(probe) if the job is abandoned
// before it runs (rejected at the waiting room, timed out queued) — a
// probe that is neither recorded nor released wedges the breaker
// half-open forever.
func (b *breaker) Allow() (admit, probe bool) {
	if !b.enabled() {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open: one probe at a time
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// Release abandons an admission granted by Allow without recording an
// outcome: the job never ran (or ended for reasons that say nothing
// about backend health), so the breaker state must not change. If the
// admission held the half-open probe, the probe slot is freed so the
// next submission can probe; otherwise this is a no-op.
func (b *breaker) Release(probe bool) {
	if !b.enabled() || !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// Record feeds one job outcome into the breaker.
func (b *breaker) Record(ok bool) {
	if !b.enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: back to a full cooldown.
		b.trip()
	case breakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip()
		}
	}
}

// trip opens the breaker; the caller holds b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.probing = false
	b.fails = 0
	if b.onTrip != nil {
		b.onTrip()
	}
}

// State returns the current state for the metrics gauge (0 closed,
// 1 open, 2 half-open).
func (b *breaker) State() int {
	if !b.enabled() {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
