package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"sccpipe/internal/host"
)

// Metric names. Labeled counters append a `{label="value"}` suffix to the
// family name; stats.Counters stores the full string as an opaque key and
// the exposition writer groups keys back into families.
const (
	mAccepted  = "sccserve_jobs_accepted_total"
	mRejected  = "sccserve_jobs_rejected_total"
	mCompleted = "sccserve_jobs_completed_total"
	mFailed    = "sccserve_jobs_failed_total"
	mFrames    = "sccserve_frames_served_total"
	mQueue     = "sccserve_queue_depth"
	mInflight  = "sccserve_inflight_runs"
	mUptime    = "sccserve_uptime_seconds"
	mStageBusy = "sccserve_stage_busy_seconds_total"
	mJobBusy   = "sccserve_job_busy_seconds_total"

	// Robustness metrics: populated by chaos-mode supervision and the
	// circuit breaker.
	mRetries      = "sccserve_stage_retries_total"
	mPipeDeaths   = "sccserve_pipelines_died_total"
	mJobsDegraded = "sccserve_jobs_degraded_total"
	mBreakerState = "sccserve_breaker_state"
	mBreakerTrips = "sccserve_breaker_trips_total"
	mRetryBudget  = "sccserve_retry_budget"

	// Planner metrics: populated when Config.Plan is profile or online.
	mPlanReplans   = "sccserve_plan_replans_total"
	mPlanPipelines = "sccserve_plan_pipelines"
	mPlanStages    = "sccserve_plan_stages"
	mPlanDrift     = "sccserve_plan_drift"

	// Render-cache metrics (internal/rcache): snapshotted from the cache
	// at scrape time. Hits/misses count render calls served from / missed
	// by the cache; dedup counts single-flight waits (a racing identical
	// render shared in flight, never stored as the waiter's own miss).
	mCacheHits      = "sccserve_cache_hits_total"
	mCacheMisses    = "sccserve_cache_misses_total"
	mCacheEvictions = "sccserve_cache_evictions_total"
	mCacheDedup     = "sccserve_cache_dedup_total"
	mCacheBytes     = "sccserve_cache_bytes"
	mCacheEntries   = "sccserve_cache_entries"

	// Stream bandwidth: frame payload bytes put on the wire, split by
	// encoding, so a delta-vs-raw bandwidth cut is directly readable from
	// two counters.
	mStreamPNGBytes   = "sccserve_stream_png_bytes_total"
	mStreamDeltaBytes = "sccserve_stream_delta_bytes_total"

	// Tiled-rasterizer metrics: the renderer's work counters, summed over
	// every render call of every job (see render.Stats).
	mRenderTrisSetup    = "sccserve_render_tris_setup_total"
	mRenderTrisBinned   = "sccserve_render_tris_binned_total"
	mRenderTilesTouched = "sccserve_render_tiles_touched_total"
	mRenderBinsRejected = "sccserve_render_bins_rejected_total"
)

// stageBusyKey builds the labeled key for per-stage busy time. backend is
// "exec" (real runs, measured wall time) or "sim" (simulated runs, model
// time from the trace).
func stageBusyKey(backend, stage string) string {
	return mStageBusy + `{backend="` + backend + `",stage="` + stage + `"}`
}

// retryKey builds the labeled key for per-stage retry counts; a transfer
// retry is attributed to the stage whose hand-off failed.
func retryKey(stage string) string {
	return mRetries + `{stage="` + stage + `"}`
}

// metricFamilies fixes the exposition order and metadata.
var metricFamilies = []struct {
	name, kind, help string
}{
	{mAccepted, "counter", "Jobs admitted past admission control."},
	{mRejected, "counter", "Jobs refused at admission, by reason."},
	{mCompleted, "counter", "Jobs that finished successfully."},
	{mFailed, "counter", "Jobs that failed or timed out after admission."},
	{mFrames, "counter", "Frames streamed to clients."},
	{mQueue, "gauge", "Admitted jobs waiting for a pipeline slot."},
	{mInflight, "gauge", "Pipeline runs currently executing."},
	{mUptime, "gauge", "Seconds since the server started."},
	{mStageBusy, "counter", "Per-stage busy time by backend (exec wall time, sim model time)."},
	{mJobBusy, "counter", "Wall time spent running jobs (queue wait excluded)."},
	{mRetries, "counter", "Supervised stage/transfer retries, by stage."},
	{mPipeDeaths, "counter", "Pipelines declared dead and re-partitioned."},
	{mJobsDegraded, "counter", "Jobs that completed degraded (survived dead pipelines)."},
	{mBreakerState, "gauge", "Circuit breaker state: 0 closed, 1 open, 2 half-open."},
	{mBreakerTrips, "counter", "Times the circuit breaker tripped open."},
	{mRetryBudget, "gauge", "Per-job retry budget of the active recovery policy."},
	{mPlanReplans, "counter", "Drift-triggered re-plans applied by the online planner."},
	{mPlanPipelines, "gauge", "Pipeline replication factor of the active stage plan."},
	{mPlanStages, "gauge", "Filter stage count (after fusion) of the active stage plan."},
	{mPlanDrift, "gauge", "Stage-balance drift measured when the last observation window closed."},
	{mCacheHits, "counter", "Render calls served from the content-addressed frame cache."},
	{mCacheMisses, "counter", "Render calls that rasterized (and populated the cache)."},
	{mCacheEvictions, "counter", "Cached frames evicted under the byte budget."},
	{mCacheDedup, "counter", "Render calls de-duplicated onto a racing identical render in flight."},
	{mCacheBytes, "gauge", "Pixel bytes currently held by the frame cache."},
	{mCacheEntries, "gauge", "Frames currently held by the frame cache."},
	{mStreamPNGBytes, "counter", "Frame payload bytes streamed as PNG parts."},
	{mStreamDeltaBytes, "counter", "Frame payload bytes streamed as temporal-delta parts."},
	{mRenderTrisSetup, "counter", "Screen triangles set up by the rasterizer (post clip/fan, tiled path)."},
	{mRenderTrisBinned, "counter", "Triangle-to-tile bin insertions performed by the tiled rasterizer."},
	{mRenderTilesTouched, "counter", "Row-tiles with at least one binned triangle."},
	{mRenderBinsRejected, "counter", "Bin entries skipped by the coarse per-tile depth test."},
}

// handleMetrics serves the Prometheus text exposition format (v0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	// Gauges are computed at scrape time. Waiting depth is the admitted
	// population minus the jobs holding run slots.
	queued := len(s.room) - len(s.slots)
	if queued < 0 {
		queued = 0
	}
	s.m.Set(mQueue, float64(queued))
	s.m.Set(mInflight, float64(len(s.slots)))
	s.m.Set(mUptime, time.Since(s.start).Seconds())
	s.m.Set(mBreakerState, float64(s.brk.State()))
	cst := s.cache.Stats() // nil-safe: a disabled cache reports zeros
	s.m.Set(mCacheHits, float64(cst.Hits))
	s.m.Set(mCacheMisses, float64(cst.Misses))
	s.m.Set(mCacheEvictions, float64(cst.Evictions))
	s.m.Set(mCacheDedup, float64(cst.Dedups))
	s.m.Set(mCacheBytes, float64(cst.Bytes))
	s.m.Set(mCacheEntries, float64(cst.Entries))
	s.m.Set(mRetryBudget, float64(s.cfg.Recovery.Normalize().MaxRetries))
	if s.planCtl != nil {
		p := s.planCtl.Current()
		s.m.Set(mPlanPipelines, float64(p.Pipelines))
		s.m.Set(mPlanStages, float64(len(p.Stages.Groups)))
		s.m.Set(mPlanDrift, s.planCtl.LastDrift())
	}

	snap := s.m.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, fam := range metricFamilies {
		members := make([]string, 0, 2)
		for _, k := range keys {
			if k == fam.name || strings.HasPrefix(k, fam.name+"{") {
				members = append(members, k)
			}
		}
		if len(members) == 0 && fam.kind != "counter" {
			continue // untouched gauge family (plan gauges with the planner off)
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.kind)
		if len(members) == 0 {
			// Expose untouched plain counters as explicit zeros so scrapes
			// see the full instrument set from the first sample; labeled
			// families stay empty until their first labeled sample.
			switch fam.name {
			case mRejected, mStageBusy, mRetries:
			default:
				fmt.Fprintf(w, "%s 0\n", fam.name)
			}
			continue
		}
		for _, k := range members {
			fmt.Fprintf(w, "%s %s\n", k, formatValue(snap[k]))
		}
	}
}

// formatValue renders a sample value the way Prometheus expects: integers
// without an exponent, everything else in Go's shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// LoadReport is the machine-readable /healthz body. Beyond liveness it
// carries the load signals the fleet gateway routes by (queue depth,
// in-flight runs, cumulative job busy time — successive polls difference
// into a recent busy rate) and the worker's build version, so a mixed
// fleet's skew is visible in the gateway's node table.
type LoadReport struct {
	// Status is "ok" or "draining". A draining worker is alive (it still
	// answers health checks and finishes in-flight jobs) but must not
	// receive new work.
	Status string `json:"status"`
	// Inflight counts pipeline runs currently executing; Queue counts
	// admitted jobs still waiting for a run slot; Admitted is their sum.
	Inflight int `json:"inflight"`
	Queue    int `json:"queue"`
	Admitted int `json:"admitted"`
	// Capacity is the concurrent-run limit (Config.Workers).
	Capacity int `json:"capacity"`
	// BusyS is cumulative wall-clock seconds spent running jobs since
	// start (queue wait excluded). Pollers derive a recent busy rate from
	// the delta between samples.
	BusyS   float64 `json:"busy_s"`
	UptimeS int64   `json:"uptime_s"`
	// Version identifies the worker's build (host.BuildVersion).
	Version string `json:"version"`
}

// handleHealthz reports liveness and drain state: 200 while serving, 503
// once draining (load balancers stop routing, in-flight work continues).
// The body is a LoadReport either way.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	rep := s.Load()
	if rep.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(rep)
}

// Load snapshots the worker's current load report (the /healthz body).
func (s *Server) Load() LoadReport {
	admitted, inflight := len(s.room), len(s.slots)
	queue := admitted - inflight
	if queue < 0 {
		queue = 0
	}
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	return LoadReport{
		Status:   status,
		Inflight: inflight,
		Queue:    queue,
		Admitted: admitted,
		Capacity: s.cfg.Workers,
		BusyS:    s.m.Get(mJobBusy),
		UptimeS:  int64(time.Since(s.start).Seconds()),
		Version:  host.BuildVersion(),
	}
}
