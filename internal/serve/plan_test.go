package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sccpipe/internal/core"
)

// readFrameBytes drains a multipart frame stream returning the raw PNG
// bytes of each frame part (for byte-identity comparisons) and the
// trailing JSON summary.
func readFrameBytes(t *testing.T, resp *http.Response) ([][]byte, map[string]any) {
	t.Helper()
	defer resp.Body.Close()
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		t.Fatal(err)
	}
	var frames [][]byte
	tail := map[string]any{}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return frames, tail
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(part)
		if err != nil {
			t.Fatal(err)
		}
		switch ct := part.Header.Get("Content-Type"); ct {
		case "image/png":
			frames = append(frames, data)
		case "application/json":
			if err := json.Unmarshal(data, &tail); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected part type %q", ct)
		}
	}
}

// After the fused-attribution fix, /metrics must never carry a synthetic
// "fused" stage: a fused pass's busy time is split across the covered
// filter kinds, so the per-stage counters account each stage exactly once
// (no fused total double-counting its constituents).
func TestMetricsStageBusyNoFusedDoubleCount(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJob(t, ts.URL, smallRender(4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	readStream(t, resp)

	m := scrapeMetrics(t, ts.URL)
	for k := range m {
		if strings.Contains(k, `stage="`+core.StageFused.String()+`"`) {
			t.Errorf("metrics carry a fused pseudo-stage sample: %s", k)
		}
	}
	// Every real stage the default (fused) layout runs must be attributed.
	kinds := []core.StageKind{core.StageRender, core.StageTransfer}
	kinds = append(kinds, core.FilterOrder[:]...)
	for _, kind := range kinds {
		key := stageBusyKey("exec", kind.String())
		v, ok := m[key]
		if !ok || v <= 0 {
			t.Errorf("stage %v busy = %v (present %v), want > 0", kind, v, ok)
		}
	}
}

// A profile-planned server must not change the pixels of a job that pinned
// its pipeline count: the plan may move fusion boundaries and worker
// counts, never the output. Byte-compares the PNG stream against a static
// server's.
func TestPlanProfileKeepsExplicitPipelinePixels(t *testing.T) {
	static := httptest.NewServer(New(Config{}))
	defer static.Close()
	planned := httptest.NewServer(New(Config{Plan: PlanProfile}))
	defer planned.Close()

	spec := JobSpec{Mode: ModeRender, Frames: 3, Width: 64, Height: 48, Pipelines: 2, Seed: 7}
	respS := postJob(t, static.URL, spec)
	if respS.StatusCode != http.StatusOK {
		t.Fatalf("static status %d", respS.StatusCode)
	}
	framesS, tailS := readFrameBytes(t, respS)
	respP := postJob(t, planned.URL, spec)
	if respP.StatusCode != http.StatusOK {
		t.Fatalf("planned status %d", respP.StatusCode)
	}
	framesP, tailP := readFrameBytes(t, respP)

	if len(framesS) != 3 || len(framesP) != 3 {
		t.Fatalf("frame counts: static %d, planned %d, want 3", len(framesS), len(framesP))
	}
	for i := range framesS {
		if !bytes.Equal(framesS[i], framesP[i]) {
			t.Fatalf("frame %d differs between static and planned servers", i)
		}
	}
	if _, ok := tailS["plan"]; ok {
		t.Fatalf("static summary unexpectedly carries a plan: %v", tailS["plan"])
	}
	p, _ := tailP["plan"].(string)
	if p == "" {
		t.Fatalf("planned summary missing plan field: %v", tailP)
	}

	// The plan gauges are exposed only while a planner is active.
	mp := scrapeMetrics(t, planned.URL)
	if mp[mPlanPipelines] < 1 || mp[mPlanStages] < 1 {
		t.Fatalf("plan gauges = %v / %v, want >= 1", mp[mPlanPipelines], mp[mPlanStages])
	}
	ms := scrapeMetrics(t, static.URL)
	if _, ok := ms[mPlanPipelines]; ok {
		t.Fatal("static server exposes plan gauges")
	}
	if ms[mPlanReplans] != 0 {
		t.Fatalf("static server plan replans = %v, want 0", ms[mPlanReplans])
	}
}

// Online mode feeds job observations into the controller and re-plans once
// a full window's stage balance drifts past the threshold. Real wall-time
// shares never match the modeled SCC shape, so with a tiny threshold one
// job's window must trigger a re-computation.
func TestPlanOnlineObservesAndReplans(t *testing.T) {
	s := New(Config{Plan: PlanOnline, Workers: 1})
	if s.planCtl == nil {
		t.Fatal("online mode built no controller")
	}
	s.planCtl.MinFrames = 4
	s.planCtl.DriftThreshold = 1e-6
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJob(t, ts.URL, smallRender(6))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	frames, tail := readStream(t, resp)
	if len(frames) != 6 {
		t.Fatalf("streamed %d frames, want 6", len(frames))
	}
	if p, _ := tail["plan"].(string); p == "" {
		t.Fatalf("online summary missing plan field: %v", tail)
	}
	if got := s.planCtl.Replans(); got < 1 {
		t.Fatalf("replans = %d after a full drifted window (drift %v), want >= 1",
			got, s.planCtl.LastDrift())
	}
	m := scrapeMetrics(t, ts.URL)
	if m[mPlanDrift] <= 0 {
		t.Fatalf("plan drift gauge = %v, want > 0", m[mPlanDrift])
	}
}

// An unknown plan mode must not take the server down: it logs and serves
// the static layout.
func TestPlanUnknownModeFallsBackToStatic(t *testing.T) {
	s := New(Config{Plan: "bogus"})
	if s.planCtl != nil {
		t.Fatal("unknown plan mode built a controller")
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp := postJob(t, ts.URL, smallRender(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	readStream(t, resp)
}
