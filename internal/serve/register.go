package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"
)

// RegisterRequest is the body a worker POSTs to a gateway's /register
// endpoint: the base URL it can be reached at and the lease TTL it asks
// for (0 takes the gateway's default).
type RegisterRequest struct {
	URL  string `json:"url"`
	TTLs int    `json:"ttl_s"`
}

// RegisterResponse is the gateway's acceptance: the node name it
// registered the worker under, the granted lease TTL, and the renewal
// cadence the worker should heartbeat at (comfortably inside the TTL).
type RegisterResponse struct {
	Name   string `json:"name"`
	TTLs   int    `json:"ttl_s"`
	RenewS int    `json:"renew_s"`
}

// RegistrarConfig tunes RunRegistrar.
type RegistrarConfig struct {
	// Gateway is the gateway base URL (e.g. "http://gw:8440"). Required.
	Gateway string
	// Self is the base URL this worker advertises (e.g.
	// "http://10.0.0.2:8344"). Required; sccserved derives it from the
	// bound listen address when -advertise is not given.
	Self string
	// TTL is the lease TTL to request (0 = gateway default).
	TTL time.Duration
	// Retry is how long to wait before retrying after a failed
	// registration or renewal (default 1s, backing off to 10s).
	Retry time.Duration
	// Timeout bounds each registration request (default 5s).
	Timeout time.Duration
	// Log receives registration transitions; nil disables logging.
	Log *log.Logger
}

// RunRegistrar keeps this worker registered with a fleet gateway: it
// POSTs /register immediately, then renews the lease at the cadence the
// gateway granted (with a deterministic ±10% jitter so a fleet of
// workers started together doesn't renew in lockstep), retrying with
// backoff while the gateway is unreachable, until ctx ends. Lapses are
// survivable by design: the gateway re-admits an expired worker on its
// next successful /register or health probe.
func RunRegistrar(ctx context.Context, cfg RegistrarConfig) error {
	if strings.TrimSpace(cfg.Gateway) == "" || strings.TrimSpace(cfg.Self) == "" {
		return fmt.Errorf("serve: registrar needs both a gateway and a self URL")
	}
	if cfg.Retry <= 0 {
		cfg.Retry = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	gateway := strings.TrimSuffix(strings.TrimSpace(cfg.Gateway), "/")
	if !strings.Contains(gateway, "://") {
		gateway = "http://" + gateway
	}
	client := &http.Client{Timeout: cfg.Timeout}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			cfg.Log.Printf(format, args...)
		}
	}

	body, err := json.Marshal(RegisterRequest{
		URL:  strings.TrimSpace(cfg.Self),
		TTLs: int(cfg.TTL / time.Second),
	})
	if err != nil {
		return err
	}

	registered := false
	backoff := cfg.Retry
	for attempt := 0; ; attempt++ {
		rr, err := registerOnce(ctx, client, gateway, body)
		var wait time.Duration
		switch {
		case err == nil:
			if !registered {
				logf("registered with %s as %s (lease %ds, renew every %ds)",
					gateway, rr.Name, rr.TTLs, rr.RenewS)
			}
			registered = true
			backoff = cfg.Retry
			wait = renewInterval(rr, cfg.Self, attempt)
		case ctx.Err() != nil:
			return nil
		default:
			if registered {
				logf("lease renewal with %s failed: %v (retrying)", gateway, err)
			}
			registered = false
			wait = backoff
			if backoff *= 2; backoff > 10*time.Second {
				backoff = 10 * time.Second
			}
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(wait):
		}
	}
}

// registerOnce performs one /register round trip.
func registerOnce(ctx context.Context, client *http.Client, gateway string, body []byte) (RegisterResponse, error) {
	var rr RegisterResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, gateway+"/register", bytes.NewReader(body))
	if err != nil {
		return rr, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return rr, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	if err != nil {
		return rr, err
	}
	if resp.StatusCode != http.StatusOK {
		return rr, fmt.Errorf("gateway status %d: %s", resp.StatusCode, bytes.TrimSpace(payload))
	}
	if err := json.Unmarshal(payload, &rr); err != nil {
		return rr, fmt.Errorf("bad register response: %v", err)
	}
	if rr.RenewS < 1 {
		rr.RenewS = 1
	}
	return rr, nil
}

// renewInterval jitters the gateway's renewal cadence by ±10%,
// deterministically per (worker, attempt), so co-started workers spread
// their heartbeats instead of thundering the gateway together.
func renewInterval(rr RegisterResponse, self string, attempt int) time.Duration {
	base := time.Duration(rr.RenewS) * time.Second
	h := uint64(14695981039346656037)
	for i := 0; i < len(self); i++ {
		h ^= uint64(self[i])
		h *= 1099511628211
	}
	h ^= uint64(attempt) + 0x9e3779b97f4a7c15
	h *= 1099511628211
	span := int64(base / 5) // full jitter range: 20% of base
	if span <= 0 {
		return base
	}
	return base - base/10 + time.Duration(int64(h%uint64(span)))
}
