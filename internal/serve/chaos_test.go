package serve

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sccpipe/internal/faults"
)

// quickChaosRecovery is a recovery policy with microsecond backoffs so
// chaos tests spend no wall time sleeping. StallTimeout stays 0 (watchdog
// off) — these plans never stall.
func quickChaosRecovery() *faults.RecoveryPolicy {
	return &faults.RecoveryPolicy{
		MaxRetries: 3,
		Backoff:    50 * time.Microsecond,
		MaxBackoff: time.Millisecond,
	}
}

// TestChaosRenderJobSurvivesDeath runs a render job under a plan that
// kills pipeline 1 and injects one transient sepia failure: the stream
// must still deliver every frame exactly once and in order, the summary
// must carry the degraded report, and the robustness metrics must move.
func TestChaosRenderJobSurvivesDeath(t *testing.T) {
	plan := &faults.Plan{Seed: 42, Rules: []faults.Rule{
		{Kind: faults.KindDeath, Pipeline: 1, Seq: 1},
		{Kind: faults.KindTransient, Pipeline: 0, Stage: "sepia", Seq: 0, Times: 1},
	}}
	s := New(Config{Workers: 1, Chaos: plan, Recovery: quickChaosRecovery()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJob(t, ts.URL, smallRender(4))
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	frames, tail := readStream(t, resp)
	if len(frames) != 4 {
		t.Fatalf("streamed %d frames, want 4 despite the dead pipeline", len(frames))
	}
	for i, f := range frames {
		if f != i {
			t.Fatalf("frame order %v, want 0..3", frames)
		}
	}
	deg, _ := tail["degraded"].(string)
	if !strings.Contains(deg, "dead pipeline") {
		t.Fatalf("summary degraded = %q, want a dead-pipeline report", deg)
	}

	m := scrapeMetrics(t, ts.URL)
	if got := m["sccserve_pipelines_died_total"]; got < 1 {
		t.Errorf("pipelines_died_total = %v, want >= 1", got)
	}
	if got := m["sccserve_jobs_degraded_total"]; got != 1 {
		t.Errorf("jobs_degraded_total = %v, want 1", got)
	}
	// At least one sepia retry; redistributed items re-consult the injector
	// under their new carrier pipeline, so the exact-seq rule may fire a
	// second time for a redone strip depending on what was in flight when
	// the pipeline died.
	if got := m[`sccserve_stage_retries_total{stage="sepia"}`]; got < 1 {
		t.Errorf(`stage_retries_total{stage="sepia"} = %v, want >= 1`, got)
	}
	if got := m["sccserve_jobs_completed_total"]; got != 1 {
		t.Errorf("jobs_completed_total = %v, want 1 (degraded still counts as completed)", got)
	}
}

// TestChaosCleanPlanLeavesSummaryClean: a chaos config whose rules never
// fire must not mark jobs degraded.
func TestChaosCleanPlanLeavesSummaryClean(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindDeath, Pipeline: 1, Seq: 999}, // beyond the last frame
	}}
	s := New(Config{Workers: 1, Chaos: plan, Recovery: quickChaosRecovery()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJob(t, ts.URL, smallRender(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	frames, tail := readStream(t, resp)
	if len(frames) != 2 {
		t.Fatalf("streamed %d frames, want 2", len(frames))
	}
	if deg, ok := tail["degraded"]; ok {
		t.Fatalf("clean run carries degraded = %v", deg)
	}
	if got := s.m.Get(mJobsDegraded); got != 0 {
		t.Fatalf("jobs_degraded_total = %v, want 0", got)
	}
}

// TestBreakerTripsOnRepeatedFailures: a plan that kills every pipeline
// makes render jobs fail; Threshold consecutive failures must open the
// breaker, and further submissions bounce with 503 before admission.
func TestBreakerTripsOnRepeatedFailures(t *testing.T) {
	plan := &faults.Plan{Seed: 7, Rules: []faults.Rule{
		{Kind: faults.KindDeath, Pipeline: 0, Seq: 0},
		{Kind: faults.KindDeath, Pipeline: 1, Seq: 0},
	}}
	s := New(Config{
		Workers:  1,
		Chaos:    plan,
		Recovery: quickChaosRecovery(),
		Breaker:  BreakerConfig{Threshold: 2, Cooldown: time.Hour},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp := postJob(t, ts.URL, smallRender(2))
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("doomed job %d: status %d (%s), want 500", i, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "dead") {
			t.Fatalf("doomed job %d body %q does not name the dead pipelines", i, body)
		}
	}

	resp := postJob(t, ts.URL, smallRender(2))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-trip status %d (%s), want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "circuit breaker open") {
		t.Fatalf("post-trip body %q does not name the breaker", body)
	}

	m := scrapeMetrics(t, ts.URL)
	checks := map[string]float64{
		"sccserve_breaker_trips_total": 1,
		"sccserve_breaker_state":       breakerOpen,
		"sccserve_jobs_failed_total":   2,
		`sccserve_jobs_rejected_total{reason="breaker_open"}`: 1,
	}
	for name, want := range checks {
		if got := m[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestBreakerProbeNotLostOnClientCausedFailure is the wedge regression:
// once tripped, the breaker admits a single half-open probe. If that
// probe ends for reasons that say nothing about backend health (here its
// client-chosen deadline expires), the probe slot must be released — not
// recorded as a backend failure — so the next submission can probe and a
// success can close the breaker. Before the fix the probe was either
// counted as a failure (re-opening for a full cooldown) or, on the
// admission-reject paths, simply lost, wedging the server half-open with
// every request bounced 503 until restart.
func TestBreakerProbeNotLostOnClientCausedFailure(t *testing.T) {
	// The chaos plan kills every pipeline, so render jobs genuinely fail;
	// simulate jobs are unaffected by chaos and succeed.
	plan := &faults.Plan{Seed: 7, Rules: []faults.Rule{
		{Kind: faults.KindDeath, Pipeline: 0, Seq: 0},
		{Kind: faults.KindDeath, Pipeline: 1, Seq: 0},
	}}
	s := New(Config{
		Workers:  1,
		Chaos:    plan,
		Recovery: quickChaosRecovery(),
		Breaker:  BreakerConfig{Threshold: 1, Cooldown: time.Hour},
	})
	var clockMu sync.Mutex
	now := time.Unix(0, 0)
	s.brk.now = func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }
	// Held jobs (Frames == 5) sleep past their own 50 ms deadline before
	// the pipeline starts, so they end on a client-caused cancellation.
	s.testHookRunning = func(spec JobSpec) {
		if spec.Frames == 5 {
			time.Sleep(200 * time.Millisecond)
		}
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A doomed render job trips the breaker.
	resp := postJob(t, ts.URL, smallRender(2))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("doomed job status %d, want 500", resp.StatusCode)
	}
	if st := s.brk.State(); st != breakerOpen {
		t.Fatalf("breaker state %d after failure, want open", st)
	}

	// After the cooldown the next submission is the probe; its deadline
	// expires before the pipeline runs, a client-caused ending.
	clockMu.Lock()
	now = now.Add(time.Hour)
	clockMu.Unlock()
	probe := smallRender(5)
	probe.TimeoutMS = 50
	resp = postJob(t, ts.URL, probe)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("probe job unexpectedly succeeded; it was meant to hit its deadline")
	}

	// The lost-probe wedge: the breaker must still be probeable (half-open
	// with the slot free), not re-opened and not stuck. A successful
	// simulate probe closes it — without advancing the clock, so a
	// re-opened breaker would reject this with 503 for another hour.
	if st := s.brk.State(); st != breakerHalfOpen {
		t.Fatalf("breaker state %d after client-caused probe ending, want half-open", st)
	}
	resp = postJob(t, ts.URL, smallSimulate())
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-probe simulate status %d, want 200 (breaker wedged?)", resp.StatusCode)
	}
	if st := s.brk.State(); st != breakerClosed {
		t.Fatalf("breaker state %d after successful probe, want closed", st)
	}
	if got := s.m.Get(mBreakerTrips); got != 1 {
		t.Fatalf("breaker trips = %v, want 1 (client-caused ending must not re-trip)", got)
	}
}

// TestHardStopBoundsDrain is the shutdown-hardening regression: a job
// wedged in an injected retry loop at drain time must not outlive the
// drain deadline — ListenAndServe escalates to HardStop, the job's
// context is cancelled, and the server exits promptly.
func TestHardStopBoundsDrain(t *testing.T) {
	// Every blur application fails, and the retry budget is effectively
	// infinite with slow backoffs: the job can never finish on its own.
	plan := &faults.Plan{Seed: 3, Rules: []faults.Rule{
		{Kind: faults.KindTransient, Pipeline: faults.Any, Stage: "blur", Seq: faults.Any, Prob: 1, Times: 1 << 20},
	}}
	s := New(Config{
		Workers: 1,
		Chaos:   plan,
		Recovery: &faults.RecoveryPolicy{
			MaxRetries: 1 << 20,
			Backoff:    20 * time.Millisecond,
			MaxBackoff: 40 * time.Millisecond,
		},
		DrainTimeout: 200 * time.Millisecond,
	})
	started := make(chan struct{}, 1)
	s.testHookRunning = func(JobSpec) { started <- struct{}{} }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- s.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrc <- a.String() })
	}()
	var url string
	select {
	case a := <-addrc:
		url = "http://" + a
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	}

	jobc := make(chan *http.Response, 1)
	go func() { jobc <- postJob(t, url, smallRender(2)) }()
	<-started
	time.Sleep(50 * time.Millisecond) // let it enter the retry/backoff loop

	begin := time.Now()
	cancel()
	select {
	case err := <-errc:
		// The graceful window expired with the job still retrying, so the
		// drain reports the deadline — but only after the hard stop
		// actually unwound the job.
		if err == nil {
			t.Fatal("drain reported clean with a wedged job in flight")
		}
		if elapsed := time.Since(begin); elapsed > 3*time.Second {
			t.Fatalf("shutdown took %v, want bounded by drain + hard-stop", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ListenAndServe did not return: the wedged job outlived SIGTERM")
	}

	// The job handler itself must have finished: the hard stop cancelled
	// its context and the failure surfaced to the client.
	select {
	case resp := <-jobc:
		if resp.StatusCode == http.StatusOK {
			frames, tail := readStream(t, resp)
			if tail["error"] == nil {
				t.Fatalf("wedged job claims success: %d frames, tail %v", len(frames), tail)
			}
		} else {
			resp.Body.Close()
		}
	case <-time.After(2 * time.Second):
		t.Fatal("job response never arrived after hard stop")
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("jobs still registered after hard stop: %v", err)
	}
	if got := s.m.Get(mFailed); got != 1 {
		t.Fatalf("failed jobs = %v, want 1", got)
	}
}

// TestChaosSoak hammers a chaos-configured server with a barrage of small
// render jobs under a seeded survivable plan: transients on every stage,
// a deterministic pipeline death, and slowed transfers. Every job must
// complete every frame. The barrage length scales with CHAOS_SOAK_JOBS
// (make chaos-soak raises it and adds -race); the default stays small so
// the deterministic short version rides along in `make check`.
//
// CHAOS_SOAK_FUSE=1 (set by make chaos-soak) additionally runs the soak
// with band-parallel stages, so the race detector sweeps the fused pass
// and the band pool while faults land on fused-away stage names;
// CHAOS_SOAK_FUSE=0 soaks the unfused five-stage layout instead. Unset,
// the server default (fusion on, serial bands) is soaked.
func TestChaosSoak(t *testing.T) {
	jobs := 6
	if v := os.Getenv("CHAOS_SOAK_JOBS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad CHAOS_SOAK_JOBS %q", v)
		}
		jobs = n
	}
	plan := &faults.Plan{Seed: 1234, Rules: []faults.Rule{
		{Kind: faults.KindTransient, Pipeline: faults.Any, Seq: faults.Any, Prob: 0.2},
		{Kind: faults.KindTransfer, Pipeline: faults.Any, Seq: faults.Any, Prob: 0.1},
		{Kind: faults.KindTransferSlow, Pipeline: faults.Any, Seq: faults.Any, Prob: 0.1, Delay: 200 * time.Microsecond},
		{Kind: faults.KindDeath, Pipeline: 1, Seq: 2},
	}}
	cfg := Config{Workers: 2, QueueDepth: 64, Chaos: plan, Recovery: quickChaosRecovery()}
	switch os.Getenv("CHAOS_SOAK_FUSE") {
	case "1":
		cfg.StageWorkers = 2 // fused (the default) + parallel bands
	case "0":
		cfg.NoFuse = true
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const frames = 3
	results := make(chan error, jobs)
	sem := make(chan struct{}, 2)
	for i := 0; i < jobs; i++ {
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			resp := postJob(t, ts.URL, smallRender(frames))
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				results <- &soakError{resp.StatusCode, string(body)}
				return
			}
			got, tail := readStream(t, resp)
			if len(got) != frames {
				results <- &soakError{0, "short stream"}
				return
			}
			if tail["frames"] != float64(frames) {
				results <- &soakError{0, "bad summary"}
				return
			}
			results <- nil
		}()
	}
	for i := 0; i < jobs; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("soak job failed: %v", err)
			}
		case <-time.After(2 * time.Minute):
			t.Fatal("soak stalled: jobs did not finish")
		}
	}

	m := scrapeMetrics(t, ts.URL)
	if got := m["sccserve_jobs_completed_total"]; got != float64(jobs) {
		t.Fatalf("completed = %v, want %v", got, jobs)
	}
	if got := m["sccserve_jobs_failed_total"]; got != 0 {
		t.Fatalf("failed = %v, want 0 (the plan is survivable)", got)
	}
	// The death rule fires in every job, so every job is degraded and the
	// re-partitioning machinery is exercised each time.
	if got := m["sccserve_jobs_degraded_total"]; got != float64(jobs) {
		t.Fatalf("degraded = %v, want %v", got, jobs)
	}
	if got := m["sccserve_pipelines_died_total"]; got != float64(jobs) {
		t.Fatalf("pipelines_died = %v, want %v", got, jobs)
	}
	if got := m["sccserve_frames_served_total"]; got != float64(jobs*frames) {
		t.Fatalf("frames_served = %v, want %v", got, jobs*frames)
	}
}

type soakError struct {
	status int
	msg    string
}

func (e *soakError) Error() string {
	if e.status != 0 {
		return "status " + strconv.Itoa(e.status) + ": " + e.msg
	}
	return e.msg
}
