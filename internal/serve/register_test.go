package serve

import (
	"context"
	"encoding/json"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFrameDigestHeader(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJob(t, ts.URL, smallRender(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	defer resp.Body.Close()
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		t.Fatal(err)
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	frames := 0
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if part.Header.Get("Content-Type") != "image/png" {
			io.Copy(io.Discard, part)
			continue
		}
		payload, err := io.ReadAll(part)
		if err != nil {
			t.Fatal(err)
		}
		want := part.Header.Get("X-Frame-Digest")
		if want == "" {
			t.Fatal("frame part missing X-Frame-Digest")
		}
		if got := FrameDigest(payload); got != want {
			t.Fatalf("frame %d digest %s, header says %s", frames, got, want)
		}
		frames++
	}
	if frames != 3 {
		t.Fatalf("read %d frames, want 3", frames)
	}
}

func TestFrameDigestStability(t *testing.T) {
	if got := FrameDigest(nil); got != FrameDigest([]byte{}) {
		t.Fatal("nil and empty payloads digest differently")
	}
	a, b := FrameDigest([]byte("abc")), FrameDigest([]byte("abd"))
	if a == b {
		t.Fatal("distinct payloads collided")
	}
	if len(a) != 16 {
		t.Fatalf("digest %q not 16 hex chars", a)
	}
}

func TestRunRegistrarRegistersAndRenews(t *testing.T) {
	var calls atomic.Int64
	var mu sync.Mutex
	var lastReq RegisterRequest
	gw := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/register" || r.Method != http.MethodPost {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		var rr RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&rr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		lastReq = rr
		mu.Unlock()
		calls.Add(1)
		json.NewEncoder(w).Encode(RegisterResponse{Name: "w1", TTLs: 1, RenewS: 1})
	}))
	defer gw.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RunRegistrar(ctx, RegistrarConfig{
			Gateway: gw.URL,
			Self:    "http://127.0.0.1:9999",
			TTL:     2 * time.Second,
		})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("registrar returned %v", err)
	}
	if calls.Load() < 2 {
		t.Fatalf("register called %d times, want initial + at least one renewal", calls.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	if lastReq.URL != "http://127.0.0.1:9999" || lastReq.TTLs != 2 {
		t.Fatalf("register request = %+v", lastReq)
	}
}

func TestRunRegistrarRetriesWhileGatewayDown(t *testing.T) {
	// A gateway that refuses the first two attempts: the registrar must
	// keep retrying and eventually land the registration.
	var calls atomic.Int64
	gw := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(RegisterResponse{Name: "w1", TTLs: 1, RenewS: 1})
	}))
	defer gw.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- RunRegistrar(ctx, RegistrarConfig{
			Gateway: gw.URL, Self: "http://127.0.0.1:9999", Retry: 10 * time.Millisecond,
		})
	}()
	deadline := time.Now().Add(4 * time.Second)
	for calls.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	<-done
	if calls.Load() < 3 {
		t.Fatalf("register attempted %d times, want retries past the refusals", calls.Load())
	}
}

func TestRunRegistrarValidatesConfig(t *testing.T) {
	if err := RunRegistrar(context.Background(), RegistrarConfig{Gateway: "http://gw"}); err == nil {
		t.Fatal("missing Self accepted")
	}
	if err := RunRegistrar(context.Background(), RegistrarConfig{Self: "http://self"}); err == nil {
		t.Fatal("missing Gateway accepted")
	}
}
