package serve

import (
	"fmt"
	"time"

	"sccpipe/internal/core"
	"sccpipe/internal/render"
)

// Job modes.
const (
	// ModeRender runs the real pixel pipeline and streams the resulting
	// frames back as a multipart PNG sequence.
	ModeRender = "render"
	// ModeSimulate runs the walkthrough on the simulated SCC and returns
	// the SimResult summary as JSON.
	ModeSimulate = "simulate"
)

// JobSpec is the wire format of one job submission (POST /jobs). Zero
// fields take server-side defaults; see Normalize.
type JobSpec struct {
	// Mode selects render (stream real frames) or simulate (model the SCC
	// run and return JSON). Default render.
	Mode string `json:"mode"`

	Frames    int `json:"frames"`
	Width     int `json:"width"`
	Height    int `json:"height"`
	Pipelines int `json:"pipelines"`

	// Renderer is one of "one", "n", "host" (the paper's three scenarios);
	// default "one".
	Renderer string `json:"renderer"`
	// Camera selects the walkthrough flight path (render only): "orbit"
	// (default, the continuous fly-by) or "dwell" (inspection-style: the
	// camera holds each vantage point for several frames — the temporally
	// redundant content a delta-encoded stream compresses well).
	Camera string `json:"camera"`
	// Arrangement is one of "unordered", "ordered", "flipped" (simulate
	// only); default "unordered".
	Arrangement string `json:"arrangement"`

	// Seed drives the scratch/flicker stages deterministically (render).
	Seed int64 `json:"seed"`
	// OrientedScratches enables the arbitrary-orientation scratch filter
	// (render).
	OrientedScratches bool `json:"oriented_scratches"`
	// Trace records the per-stage activity timeline of a simulate job and
	// folds its busy time into the /metrics stage counters.
	Trace bool `json:"trace"`

	// TimeoutMS bounds the job's run time (queue wait included); 0 takes
	// the server default, and values above the server maximum are clamped.
	TimeoutMS int `json:"timeout_ms"`

	// pipelinesDefaulted records that the client left Pipelines unset and
	// Normalize picked the default. The strip count feeds the deterministic
	// per-strip RNG streams, so a profile-driven planner may only override
	// it for jobs that did not ask for a specific count — an explicit
	// Pipelines value is part of the job's output contract.
	pipelinesDefaulted bool
}

// Normalize fills defaults in place.
func (j *JobSpec) Normalize() {
	if j.Mode == "" {
		j.Mode = ModeRender
	}
	if j.Frames == 0 {
		j.Frames = 8
	}
	if j.Width == 0 {
		j.Width = 320
	}
	if j.Height == 0 {
		j.Height = 240
	}
	if j.Pipelines == 0 {
		j.Pipelines = 4
		j.pipelinesDefaulted = true
	}
	if j.Renderer == "" {
		j.Renderer = "one"
	}
	if j.Camera == "" {
		j.Camera = CameraOrbit
	}
	if j.Arrangement == "" {
		j.Arrangement = "unordered"
	}
}

// Camera path names.
const (
	CameraOrbit = "orbit"
	CameraDwell = "dwell"
)

// cameras builds the job's camera flight over the scene bounds.
func (j *JobSpec) cameras(b render.AABB) ([]render.Camera, error) {
	switch j.Camera {
	case CameraOrbit:
		return render.Walkthrough(j.Frames, b), nil
	case CameraDwell:
		return render.DwellWalkthrough(j.Frames, b), nil
	}
	return nil, fmt.Errorf("unknown camera %q (want %s or %s)", j.Camera, CameraOrbit, CameraDwell)
}

// rendererConfig maps the wire name onto the paper's scenario constant.
func (j *JobSpec) rendererConfig() (core.RendererConfig, error) {
	switch j.Renderer {
	case "one", "1-renderer":
		return core.OneRenderer, nil
	case "n", "n-renderers":
		return core.NRenderers, nil
	case "host", "mcpc", "mcpc-renderer":
		return core.HostRenderer, nil
	}
	return 0, fmt.Errorf("unknown renderer %q (want one, n, or host)", j.Renderer)
}

// arrangement maps the wire name onto the mesh layout constant.
func (j *JobSpec) arrangement() (core.Arrangement, error) {
	switch j.Arrangement {
	case "unordered":
		return core.Unordered, nil
	case "ordered":
		return core.Ordered, nil
	case "flipped":
		return core.Flipped, nil
	}
	return 0, fmt.Errorf("unknown arrangement %q (want unordered, ordered, or flipped)", j.Arrangement)
}

// Validate checks the normalized spec against the server's admission
// limits. It returns the first violation; a nil error means the job can be
// converted with execSpec or simSpec.
func (j *JobSpec) Validate(limits Limits) error {
	switch j.Mode {
	case ModeRender, ModeSimulate:
	default:
		return fmt.Errorf("unknown mode %q (want %s or %s)", j.Mode, ModeRender, ModeSimulate)
	}
	if j.Frames < 1 || j.Frames > limits.MaxFrames {
		return fmt.Errorf("frames %d out of range [1, %d]", j.Frames, limits.MaxFrames)
	}
	if j.Width < 1 || j.Height < 1 || j.Width*j.Height > limits.MaxPixels {
		return fmt.Errorf("image %dx%d exceeds %d pixels", j.Width, j.Height, limits.MaxPixels)
	}
	rc, err := j.rendererConfig()
	if err != nil {
		return err
	}
	if _, err := j.arrangement(); err != nil {
		return err
	}
	switch j.Camera {
	case CameraOrbit, CameraDwell:
	default:
		return fmt.Errorf("unknown camera %q (want %s or %s)", j.Camera, CameraOrbit, CameraDwell)
	}
	if j.Pipelines < 1 || j.Pipelines > core.MaxPipelines(rc) {
		return fmt.Errorf("pipelines %d out of range [1, %d] for renderer %q",
			j.Pipelines, core.MaxPipelines(rc), j.Renderer)
	}
	if j.Pipelines > j.Height {
		return fmt.Errorf("more pipelines (%d) than image rows (%d)", j.Pipelines, j.Height)
	}
	if j.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms %d is negative", j.TimeoutMS)
	}
	return nil
}

// timeout resolves the job's deadline from the server bounds.
func (j *JobSpec) timeout(def, max time.Duration) time.Duration {
	d := time.Duration(j.TimeoutMS) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if d > max {
		d = max
	}
	return d
}

// execSpec converts a validated render job into the core run spec.
func (j *JobSpec) execSpec() (core.ExecSpec, error) {
	rc, err := j.rendererConfig()
	if err != nil {
		return core.ExecSpec{}, err
	}
	return core.ExecSpec{
		Frames:            j.Frames,
		Width:             j.Width,
		Height:            j.Height,
		Pipelines:         j.Pipelines,
		Renderer:          rc,
		Seed:              j.Seed,
		OrientedScratches: j.OrientedScratches,
	}, nil
}

// simSpec converts a validated simulate job into the core simulation spec.
func (j *JobSpec) simSpec() (core.Spec, error) {
	rc, err := j.rendererConfig()
	if err != nil {
		return core.Spec{}, err
	}
	arr, err := j.arrangement()
	if err != nil {
		return core.Spec{}, err
	}
	return core.Spec{
		Frames:      j.Frames,
		Width:       j.Width,
		Height:      j.Height,
		Pipelines:   j.Pipelines,
		Arrangement: arr,
		Renderer:    rc,
	}, nil
}

// Limits bounds what a single job may ask for.
type Limits struct {
	MaxFrames int
	MaxPixels int
}
