package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"sccpipe/internal/codec"
	"sccpipe/internal/frame"
)

// postJobEncoded submits a job with an explicit X-Frame-Encoding header.
func postJobEncoded(t *testing.T, url string, spec JobSpec, encoding string) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if encoding != "" {
		req.Header.Set(FrameEncodingHeader, encoding)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readParts collects every frame part's payload bytes by index, plus each
// part's headers, without interpreting the payload.
func readParts(t *testing.T, resp *http.Response) (payloads map[int][]byte, headers map[int]map[string]string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	_, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		t.Fatal(err)
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	payloads = map[int][]byte{}
	headers = map[int]map[string]string{}
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return payloads, headers
		}
		if err != nil {
			t.Fatal(err)
		}
		if part.Header.Get("Content-Type") == "application/json" {
			io.Copy(io.Discard, part)
			continue
		}
		idx, err := strconv.Atoi(part.Header.Get("X-Frame-Index"))
		if err != nil {
			t.Fatalf("bad X-Frame-Index: %v", err)
		}
		data, err := io.ReadAll(part)
		if err != nil {
			t.Fatal(err)
		}
		payloads[idx] = data
		h := map[string]string{}
		for k := range part.Header {
			h[k] = part.Header.Get(k)
		}
		headers[idx] = h
	}
}

// TestCacheHitAcrossJobs: the second identical job must be served from
// the render cache with byte-identical frames, visible in /metrics.
func TestCacheHitAcrossJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := smallRender(4)
	first, _ := readParts(t, postJob(t, ts.URL, spec))
	m := scrapeMetrics(t, ts.URL)
	if m["sccserve_cache_misses_total"] == 0 {
		t.Fatalf("cold job recorded no cache misses: %v", m["sccserve_cache_misses_total"])
	}
	if m["sccserve_cache_bytes"] == 0 || m["sccserve_cache_entries"] == 0 {
		t.Fatal("cache holds nothing after a cold job")
	}
	second, _ := readParts(t, postJob(t, ts.URL, spec))
	m = scrapeMetrics(t, ts.URL)
	if m["sccserve_cache_hits_total"] == 0 {
		t.Fatal("repeat job recorded no cache hits")
	}
	if len(first) != spec.Frames || len(second) != spec.Frames {
		t.Fatalf("frame counts %d/%d, want %d", len(first), len(second), spec.Frames)
	}
	for f := 0; f < spec.Frames; f++ {
		if !bytes.Equal(first[f], second[f]) {
			t.Fatalf("frame %d differs between cold and cache-hit job", f)
		}
	}
}

// TestCacheDisabled: a negative budget turns the cache off entirely.
func TestCacheDisabled(t *testing.T) {
	s := New(Config{Workers: 1, CacheBytes: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	readParts(t, postJob(t, ts.URL, smallRender(2)))
	readParts(t, postJob(t, ts.URL, smallRender(2)))
	m := scrapeMetrics(t, ts.URL)
	if m["sccserve_cache_hits_total"] != 0 || m["sccserve_cache_misses_total"] != 0 {
		t.Fatalf("disabled cache recorded activity: hits=%v misses=%v",
			m["sccserve_cache_hits_total"], m["sccserve_cache_misses_total"])
	}
}

// decodeDeltaStream reconstructs raw RGBA frames from a delta stream.
func decodeDeltaStream(t *testing.T, payloads map[int][]byte, headers map[int]map[string]string, frames int) [][]byte {
	t.Helper()
	out := make([][]byte, frames)
	var prev []byte
	for f := 0; f < frames; f++ {
		h := headers[f]
		if ct := h["Content-Type"]; ct != DeltaContentType {
			t.Fatalf("frame %d content type %q, want %q", f, ct, DeltaContentType)
		}
		w, _ := strconv.Atoi(h[FrameWidthHeader])
		hh, _ := strconv.Atoi(h[FrameHeightHeader])
		if w <= 0 || hh <= 0 {
			t.Fatalf("frame %d missing geometry headers: %v", f, h)
		}
		if prev == nil {
			prev = make([]byte, w*hh*4)
		}
		raw, err := codec.FrameDeltaDecode(prev, payloads[f], w, hh)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if got, want := FrameDigest(raw), h["X-Frame-Digest"]; got != want {
			t.Fatalf("frame %d digest %s, header says %s", f, got, want)
		}
		out[f] = raw
		prev = raw
	}
	return out
}

// TestDeltaStreamMatchesRawAndShrinks: a delta-encoded stream must decode
// to pixels byte-identical to the PNG stream of the same job, and — on a
// dwell walkthrough, the temporally redundant content delta coding is for
// — spend at least 30% fewer payload bytes on the wire.
func TestDeltaStreamMatchesRawAndShrinks(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := JobSpec{Mode: ModeRender, Camera: CameraDwell, Frames: 24, Width: 128, Height: 96, Pipelines: 2, Seed: 5}
	rawParts, _ := readParts(t, postJobEncoded(t, ts.URL, spec, FrameEncodingRaw))
	deltaParts, deltaHeaders := readParts(t, postJobEncoded(t, ts.URL, spec, FrameEncodingDelta))
	if len(rawParts) != spec.Frames || len(deltaParts) != spec.Frames {
		t.Fatalf("frame counts raw=%d delta=%d, want %d", len(rawParts), len(deltaParts), spec.Frames)
	}

	decoded := decodeDeltaStream(t, deltaParts, deltaHeaders, spec.Frames)
	var rawBytes, deltaBytes int
	for f := 0; f < spec.Frames; f++ {
		img, err := frame.ReadPNG(bytes.NewReader(rawParts[f]))
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		if !bytes.Equal(img.Pix, decoded[f]) {
			t.Fatalf("frame %d: delta decode differs from PNG pixels", f)
		}
		rawBytes += len(rawParts[f])
		deltaBytes += len(deltaParts[f])
	}
	if float64(deltaBytes) > 0.7*float64(rawBytes) {
		t.Fatalf("delta stream not ≥30%% smaller: %d vs %d raw bytes", deltaBytes, rawBytes)
	}
	t.Logf("wire payload: raw %d bytes, delta %d bytes (%.1f%% of raw)",
		rawBytes, deltaBytes, 100*float64(deltaBytes)/float64(rawBytes))

	m := scrapeMetrics(t, ts.URL)
	if m["sccserve_stream_png_bytes_total"] != float64(rawBytes) {
		t.Fatalf("png byte counter %v, measured %d", m["sccserve_stream_png_bytes_total"], rawBytes)
	}
	if m["sccserve_stream_delta_bytes_total"] != float64(deltaBytes) {
		t.Fatalf("delta byte counter %v, measured %d", m["sccserve_stream_delta_bytes_total"], deltaBytes)
	}
}

func TestUnknownFrameEncodingRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp := postJobEncoded(t, ts.URL, smallRender(2), "gzip")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}
