// Package serve turns the macro-pipeline runtime into a network service:
// an HTTP server that accepts walkthrough jobs as JSON, runs them on the
// real goroutine backend (streaming the resulting frames back as a
// multipart PNG sequence) or on the simulated SCC (returning the SimResult
// summary), under admission control.
//
// The concurrency structure mirrors an inference server in front of a
// model runtime: a bounded waiting room admits at most Workers+QueueDepth
// jobs (beyond that, submissions are rejected immediately with 429 and a
// Retry-After hint rather than queueing unboundedly), a semaphore caps
// concurrent pipeline runs at Workers, every job runs under a deadline
// wired into context cancellation, and SIGTERM-style drain stops admission
// first and then lets in-flight jobs finish. Live counters are exported in
// Prometheus text format on /metrics.
//
// Endpoints:
//
//	POST /jobs     submit a job (JobSpec JSON); render jobs stream frames
//	GET  /healthz  liveness + drain state
//	GET  /metrics  Prometheus text exposition
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sccpipe/internal/band"
	"sccpipe/internal/core"
	"sccpipe/internal/faults"
	"sccpipe/internal/frame"
	"sccpipe/internal/plan"
	"sccpipe/internal/rcache"
	"sccpipe/internal/render"
	"sccpipe/internal/scene"
	"sccpipe/internal/stats"
)

// Config tunes a render server. The zero value serves with the defaults
// noted on each field.
type Config struct {
	// Workers caps concurrent pipeline runs (default 2).
	Workers int
	// QueueDepth is the waiting room beyond the running jobs: a submission
	// finding Workers+QueueDepth jobs already admitted is rejected with
	// 429. Default 8; negative disables the waiting room entirely (a job
	// is admitted only if a worker is free).
	QueueDepth int
	// DefaultTimeout bounds jobs that do not ask for a deadline (default
	// 60s); MaxTimeout clamps jobs that do (default 5m). Queue wait counts
	// against the deadline.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds how long ListenAndServe waits for in-flight jobs
	// after its context is cancelled (default 30s).
	DrainTimeout time.Duration
	// Limits bounds a single job's size; zero fields default to 2000
	// frames and 4096×4096 pixels.
	Limits Limits
	// Scene is the triangle soup jobs render; nil selects the paper's
	// procedural city.
	Scene []render.Triangle
	// Log receives one line per job outcome; nil disables logging.
	Log *log.Logger

	// CacheBytes bounds the content-addressed cache of rendered
	// (pre-filter) frames shared by every render job: on a hit the
	// renderer stage is replaced by a memcpy of the cached pixels and the
	// filter chain runs on the copy, byte-identical to a cold render. 0
	// selects the 256 MiB default; negative disables caching. See
	// internal/rcache.
	CacheBytes int64

	// StageWorkers sizes the shared band-parallel worker pool each render
	// job's stages (blur, the fused point pass, the rasterizer) split their
	// strips across: 0 uses the process-wide default pool (GOMAXPROCS
	// workers), 1 forces serial stages, and n > 1 builds a dedicated pool of
	// n workers shared by every job.
	StageWorkers int
	// TileRows fixes the row height of the tiled rasterizer's binning tiles
	// for render jobs; 0 lets each renderer size tiles from its strip
	// height and the band pool. Output pixels are identical for any value.
	TileRows int
	// NoFuse disables stage fusion for render jobs: each of the five
	// filters runs as its own pipeline stage (the paper-faithful layout)
	// instead of adjacent per-pixel stages sharing one pass over the strip.
	NoFuse bool

	// Plan selects how render jobs are mapped onto pipeline stages:
	// PlanStatic (the default) keeps the built-in maximal-fusion layout,
	// PlanProfile computes a cost-model plan once at startup from the
	// server's scene, and PlanOnline additionally re-plans while serving
	// when the observed per-stage busy balance drifts from the profile the
	// active plan was computed from. See internal/plan.
	Plan string
	// ReplanDrift overrides the online mode's re-plan hysteresis threshold
	// (relative busy-share deviation; default plan.DefaultDriftThreshold).
	ReplanDrift float64

	// Breaker configures the circuit breaker in front of admission; the
	// zero value disables it. See BreakerConfig.
	Breaker BreakerConfig
	// Chaos, when non-nil, injects the plan's faults into every render
	// job (each job gets its own deterministic injector built from the
	// plan), exercising the supervised recovery path: retries, stall
	// detection, and pipeline-death re-partitioning show up in /metrics.
	// Simulate jobs are unaffected. Nil (the default) leaves the fast
	// execution path byte-identical to a chaos-free build.
	Chaos *faults.Plan
	// Recovery tunes the supervision applied to chaos-mode render jobs
	// (and, when set without Chaos, enables supervision alone). Nil uses
	// faults.RecoveryPolicy defaults.
	Recovery *faults.RecoveryPolicy
}

// Plan modes (Config.Plan).
const (
	PlanStatic  = "static"
	PlanProfile = "profile"
	PlanOnline  = "online"
)

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Plan == "" {
		c.Plan = PlanStatic
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.Limits.MaxFrames <= 0 {
		c.Limits.MaxFrames = 2000
	}
	if c.Limits.MaxPixels <= 0 {
		c.Limits.MaxPixels = 4096 * 4096
	}
}

// Server is the render service. Create one with New; it implements
// http.Handler, so it can be mounted directly or run via ListenAndServe.
type Server struct {
	cfg  Config
	tree *render.Octree
	mux  *http.ServeMux
	m    *stats.Counters

	// pool recycles frame buffers across every render job the server runs:
	// jobs with matching frame geometry reuse each other's buffers instead
	// of re-allocating per frame.
	pool *frame.Pool

	// bands is the band-parallel worker pool shared by every render job's
	// stages, sized by Config.StageWorkers.
	bands *band.Pool

	// cache holds rendered pre-filter frames shared across jobs (nil when
	// Config.CacheBytes is negative); sceneKey folds the scene geometry
	// into every cache key so swapping Config.Scene can never serve
	// another scene's pixels.
	cache    *rcache.Cache
	sceneKey uint64

	// planCtl holds the profile-driven stage plan when Config.Plan is
	// PlanProfile or PlanOnline; nil serves the static layout. planOnline
	// additionally feeds job observations back into the controller and
	// re-plans on drift.
	planCtl    *plan.Controller
	planOnline bool

	// room bounds total admitted jobs (running + waiting); slots bounds
	// running pipeline jobs. Both are counting semaphores.
	room  chan struct{}
	slots chan struct{}

	draining atomic.Bool
	jobs     sync.WaitGroup

	// brk guards admission after repeated job failures; hardStop, once
	// closed, cancels every in-flight job's context so a drain deadline
	// is a real deadline (a job stuck retrying cannot outlive SIGTERM).
	brk      *breaker
	hardStop chan struct{}
	hardOnce sync.Once

	// workload caches profiled walkthroughs for simulate jobs, keyed by
	// (frames, width, height); Workload's own caches are
	// concurrency-safe, so one entry may serve several jobs at once.
	wlMu sync.Mutex
	wls  map[[3]int]*core.Workload

	start time.Time

	// testHookRunning, when set, is called from a job's handler goroutine
	// once it holds a worker slot, before the pipeline starts. Tests use
	// it to hold jobs in flight deterministically.
	testHookRunning func(spec JobSpec)
}

// New builds a Server from cfg (zero value is serviceable) and constructs
// the scene octree once, shared by every job.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	tris := cfg.Scene
	if tris == nil {
		tris = scene.City(scene.DefaultConfig())
	}
	s := &Server{
		cfg:      cfg,
		tree:     render.BuildOctree(tris),
		m:        stats.NewCounters(),
		cache:    rcache.New(cfg.CacheBytes),
		sceneKey: rcache.SceneKey(tris),
		pool:     frame.NewPool(),
		bands:    core.BandPool(cfg.StageWorkers),
		room:     make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		slots:    make(chan struct{}, cfg.Workers),
		wls:      make(map[[3]int]*core.Workload),
		start:    time.Now(),
		hardStop: make(chan struct{}),
	}
	s.brk = newBreaker(cfg.Breaker, func() { s.m.Inc(mBreakerTrips) })
	s.initPlanner()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// planShape is the workload shape the planner's modeled profile is built
// from: the default job geometry (a plan is a stage balance, and the
// balance is dominated by the per-pixel stage ratios, which are
// shape-stable across job sizes).
const (
	planShapeFrames = 8
	planShapeW      = 320
	planShapeH      = 240
)

// initPlanner builds the plan controller for PlanProfile/PlanOnline; any
// failure (or an unknown mode) logs and falls back to the static layout so
// a misconfigured planner never takes the server down.
func (s *Server) initPlanner() {
	switch s.cfg.Plan {
	case PlanStatic:
		return
	case PlanProfile, PlanOnline:
	default:
		s.logf("plan: unknown mode %q, serving static", s.cfg.Plan)
		return
	}
	wl := core.BuildWorkload(s.tree, planShapeFrames, planShapeW, planShapeH)
	shape := plan.ModelProfile(core.DefaultCostModel(), wl)
	ctl, err := plan.NewController(shape, plan.Config{
		Renderer: core.OneRenderer,
		Height:   planShapeH,
		Workers:  s.cfg.StageWorkers,
	})
	if err != nil {
		s.logf("plan: %v, serving static", err)
		return
	}
	if s.cfg.ReplanDrift > 0 {
		ctl.DriftThreshold = s.cfg.ReplanDrift
	}
	s.planCtl = ctl
	s.planOnline = s.cfg.Plan == PlanOnline
	s.logf("plan: %s mode, initial plan %s", s.cfg.Plan, ctl.Current())
}

// ServeHTTP dispatches to the service endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// BeginDrain stops admission: subsequent submissions are rejected with 503
// and /healthz reports draining. In-flight jobs are unaffected.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether admission is closed.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain blocks until every admitted job has finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() { s.jobs.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}

// ListenAndServe serves on addr until ctx is cancelled, then drains:
// admission closes, in-flight jobs (and their streaming responses) run to
// completion bounded by Config.DrainTimeout, and the listener shuts down.
// ready, if non-nil, is called with the bound address before serving —
// callers using ":0" learn the port this way. The return value is nil
// after a clean drain.
func (s *Server) ListenAndServe(ctx context.Context, addr string, ready func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err = hs.Shutdown(dctx) // waits for in-flight requests
	if err != nil {
		// The graceful window expired with jobs still running — e.g. a job
		// stuck in an injected retry/backoff loop. Cancel every in-flight
		// job's context and give the handlers a moment to unwind; the
		// drain deadline stays a real deadline.
		s.HardStop()
		hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer hcancel()
		if herr := hs.Shutdown(hctx); herr != nil {
			hs.Close() // sever whatever is left mid-stream
		}
	}
	<-errc // Serve has returned ErrServerClosed
	return err
}

// HardStop cancels the context of every in-flight job (idempotent). It is
// the escalation ListenAndServe applies when the graceful drain window
// expires; exported so embedders driving Drain themselves can do the same.
func (s *Server) HardStop() {
	s.hardOnce.Do(func() { close(s.hardStop) })
}

// logf logs one line if logging is configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// reject records a refused submission and writes the error response.
func (s *Server) reject(w http.ResponseWriter, status int, reason, msg string) {
	s.m.Inc(mRejected + `{reason="` + reason + `"}`)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, msg, status)
}

// failStatus maps a job error onto an HTTP status for the pre-stream path.
func failStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errStream marks a response-stream write failure: the client went away
// (or its connection broke) mid-stream. See clientCaused.
var errStream = errors.New("streaming failed")

// clientCaused reports whether a failed job says nothing about backend
// health: its context was cancelled from outside the run (client
// disconnect, client-chosen deadline, drain hard-stop) or the response
// stream broke because nobody was reading it. Such outcomes must not
// feed the circuit breaker — a few misbehaving or impatient clients in
// a row would otherwise trip it and block all traffic for a cooldown.
func clientCaused(ctx context.Context, err error) bool {
	return ctx.Err() != nil || errors.Is(err, errStream)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST a JobSpec to /jobs", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil && err != io.EOF {
		s.reject(w, http.StatusBadRequest, "invalid", "bad job spec: "+err.Error())
		return
	}
	spec.Normalize()
	if err := spec.Validate(s.cfg.Limits); err != nil {
		s.reject(w, http.StatusBadRequest, "invalid", "bad job spec: "+err.Error())
		return
	}
	// Stream-encoding negotiation: clients opting into temporal delta
	// frames declare it up front via request header (the parts are typed,
	// so a client that asked knows how to decode what it gets back).
	encoding := r.Header.Get(FrameEncodingHeader)
	switch encoding {
	case "", FrameEncodingRaw, FrameEncodingDelta:
	default:
		s.reject(w, http.StatusBadRequest, "invalid",
			fmt.Sprintf("unknown %s %q (want %q or %q)", FrameEncodingHeader, encoding, FrameEncodingRaw, FrameEncodingDelta))
		return
	}
	admit, probe := s.brk.Allow()
	if !admit {
		s.reject(w, http.StatusServiceUnavailable, "breaker_open",
			"circuit breaker open: recent jobs failed, retry after cooldown")
		return
	}

	// Admission: claim a place in the bounded waiting room or refuse now.
	// A job abandoned anywhere between Allow and the breaker outcome below
	// must release the half-open probe it may hold, or the breaker would
	// stay half-open (rejecting everything) with no probe left to close it.
	select {
	case s.room <- struct{}{}:
	default:
		s.brk.Release(probe)
		s.reject(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("queue full (%d jobs admitted)", cap(s.room)))
		return
	}
	s.jobs.Add(1)
	defer s.jobs.Done()
	defer func() { <-s.room }()
	s.m.Inc(mAccepted)

	ctx, cancel := context.WithTimeout(r.Context(), spec.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout))
	defer cancel()
	// A hard stop (drain deadline expired) cancels in-flight jobs — a job
	// stuck in a retry/backoff loop must not outlive SIGTERM. The watcher
	// exits with the job via ctx.Done.
	go func() {
		select {
		case <-s.hardStop:
			cancel()
		case <-ctx.Done():
		}
	}()

	// Wait for a pipeline slot; the deadline keeps queue waits bounded.
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.brk.Release(probe)
		s.m.Inc(mFailed)
		s.logf("job %s timed out in queue: %v", spec.Mode, ctx.Err())
		http.Error(w, "timed out waiting for a worker: "+ctx.Err().Error(), failStatus(ctx.Err()))
		return
	}
	defer func() { <-s.slots }()
	if s.testHookRunning != nil {
		s.testHookRunning(spec)
	}

	start := time.Now()
	var err error
	switch spec.Mode {
	case ModeSimulate:
		err = s.runSimulate(ctx, w, spec)
	default:
		err = s.runRender(ctx, w, spec, encoding == FrameEncodingDelta)
	}
	// Cumulative run time feeds the /healthz load report: the fleet
	// gateway differences successive polls into a recent busy rate.
	s.m.Add(mJobBusy, time.Since(start).Seconds())
	switch {
	case err == nil:
		s.brk.Record(true)
	case clientCaused(ctx, err):
		// Not a backend failure; hand back the probe (if held) unrecorded.
		s.brk.Release(probe)
	default:
		s.brk.Record(false)
	}
	if err != nil {
		s.m.Inc(mFailed)
		s.logf("job %s failed after %v: %v", spec.Mode, time.Since(start).Round(time.Millisecond), err)
		return
	}
	s.m.Inc(mCompleted)
	s.logf("job %s ok in %v", spec.Mode, time.Since(start).Round(time.Millisecond))
}

// runRender executes a render job, streaming frames as the transfer stage
// emits them. The response is committed lazily at the first frame, so
// failures before any output still produce a proper HTTP status.
func (s *Server) runRender(ctx context.Context, w http.ResponseWriter, spec JobSpec, delta bool) error {
	es, err := spec.execSpec()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return err
	}
	es.Pool = s.pool
	es.Bands = s.bands
	es.NoFuse = s.cfg.NoFuse
	es.TileRows = s.cfg.TileRows
	es.FrameCache = s.cache
	es.SceneKey = s.sceneKey
	var planned string
	if s.planCtl != nil {
		p := s.planCtl.Current()
		// The plan is computed for the default (unoriented) filter chain; a
		// job that turns on oriented scratches may make a fused group
		// illegal, in which case it runs the static layout instead.
		if st := p.Stages; st.Validate(es.OrientedScratches) == nil {
			p.ApplyExec(&es, spec.pipelinesDefaulted)
			planned = p.String()
		}
	}
	online := s.planOnline
	es.Observer = core.ExecObserver{
		OnStageBusy: func(kind core.StageKind, _ int, busy time.Duration) {
			s.m.Add(stageBusyKey("exec", kind.String()), busy.Seconds())
			if online {
				s.planCtl.Observe(kind, busy)
			}
		},
		OnRenderStats: func(_ int, rst render.Stats) {
			s.m.Add(mRenderTrisSetup, float64(rst.TrisSetup))
			s.m.Add(mRenderTrisBinned, float64(rst.TrisBinned))
			s.m.Add(mRenderTilesTouched, float64(rst.TilesTouched))
			s.m.Add(mRenderBinsRejected, float64(rst.BinsRejected))
			if online {
				s.planCtl.ObserveRender(rst)
			}
		},
	}
	if online {
		es.Observer.OnFrame = func(int) { s.planCtl.FrameDone() }
	}
	if s.cfg.Chaos != nil || s.cfg.Recovery != nil {
		if s.cfg.Chaos != nil {
			inj, err := faults.NewInjector(*s.cfg.Chaos)
			if err != nil {
				http.Error(w, "bad chaos plan: "+err.Error(), http.StatusInternalServerError)
				return err
			}
			es.Faults = inj
		}
		pol := s.cfg.Recovery.Normalize()
		pol.OnEvent = func(e faults.Event) {
			switch e.Kind {
			case faults.EventRetry:
				s.m.Inc(retryKey(e.Stage))
			case faults.EventDeath:
				s.m.Inc(mPipeDeaths)
			}
		}
		es.Recovery = &pol
	}
	cams, err := spec.cameras(s.tree.Bounds())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return err
	}

	// A stream write failure cancels the run: there is no reader left.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := newFrameStream(w, delta)
	sink := func(f int, img *frame.Image) {
		if st.Err() != nil {
			return
		}
		if err := st.WriteFrame(f, img); err != nil {
			cancel()
			return
		}
		s.m.Inc(mFrames)
	}
	res, runErr := core.ExecContext(ctx, es, s.tree, cams, sink)
	if delta {
		s.m.Add(mStreamDeltaBytes, float64(st.PayloadBytes()))
	} else {
		s.m.Add(mStreamPNGBytes, float64(st.PayloadBytes()))
	}
	if online {
		// The window just absorbed this job's observations (even a failed
		// run's); close it if it is full and re-plan on drift.
		if _, changed := s.planCtl.MaybeReplan(); changed {
			s.m.Inc(mPlanReplans)
			s.logf("plan: replanned to %s (drift %.2f)", s.planCtl.Current(), s.planCtl.LastDrift())
		}
	}
	if werr := st.Err(); werr != nil {
		runErr = fmt.Errorf("serve: %w: %v", errStream, werr)
	}
	if runErr != nil {
		if !st.Started() {
			http.Error(w, runErr.Error(), failStatus(runErr))
			return runErr
		}
		st.CloseWithError(runErr)
		return runErr
	}
	summary := renderSummary{
		Frames:    res.Frames,
		ElapsedMS: res.Elapsed.Milliseconds(),
		Plan:      planned,
	}
	if res.Degraded.IsDegraded() {
		s.m.Inc(mJobsDegraded)
		summary.Degraded = res.Degraded.String()
		s.logf("job %s degraded: %v", spec.Mode, res.Degraded)
	}
	return st.CloseWithSummary(summary)
}

// renderSummary is the trailing JSON part of a successful frame stream.
type renderSummary struct {
	Frames    int   `json:"frames"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// Degraded describes a run that recovered from injected faults by
	// re-partitioning a dead pipeline's work; empty for clean runs.
	Degraded string `json:"degraded,omitempty"`
	// Plan is the profile-driven stage plan the job ran under (e.g.
	// "k=4 [sepia][blur][scratch+flicker+swap]"); empty when the server
	// serves the static layout.
	Plan string `json:"plan,omitempty"`
}

// simResponse is the JSON body of a completed simulate job.
type simResponse struct {
	Seconds          float64 `json:"seconds"`
	SCCEnergyJ       float64 `json:"scc_energy_j"`
	HostExtraEnergyJ float64 `json:"host_extra_energy_j"`
	// FramePeriodS is the steady-state seconds between frame completions;
	// present only when the job requested a trace.
	FramePeriodS float64 `json:"frame_period_s,omitempty"`
}

// runSimulate executes a simulate job and replies with JSON. The
// discrete-event run itself is not interruptible, so the deadline is
// enforced at the workload-build boundary and before the reply; keep
// simulated walkthroughs within the admission limits.
func (s *Server) runSimulate(ctx context.Context, w http.ResponseWriter, spec JobSpec) error {
	sim, err := spec.simSpec()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return err
	}
	wl := s.workload(spec.Frames, spec.Width, spec.Height)
	if err := ctx.Err(); err != nil {
		http.Error(w, "deadline passed before simulation started: "+err.Error(), failStatus(err))
		return err
	}
	res, err := core.Simulate(sim, wl, core.SimOptions{Trace: spec.Trace})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return err
	}
	resp := simResponse{
		Seconds:          res.Seconds,
		SCCEnergyJ:       res.SCCEnergyJ,
		HostExtraEnergyJ: res.HostExtraEnergyJ,
	}
	if spec.Trace && res.Trace != nil {
		resp.FramePeriodS = res.Trace.Throughput()
		for kind, pt := range res.Trace.TotalsByKind() {
			s.m.Add(stageBusyKey("sim", kind), pt.Busy())
		}
	}
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(resp)
}

// workload returns the cached profiled walkthrough for a job shape,
// building it on first use. Workload's internal caches are themselves
// concurrency-safe, so the entry is shared across concurrent jobs.
func (s *Server) workload(frames, w, h int) *core.Workload {
	key := [3]int{frames, w, h}
	s.wlMu.Lock()
	defer s.wlMu.Unlock()
	if wl, ok := s.wls[key]; ok {
		return wl
	}
	wl := core.BuildWorkload(s.tree, frames, w, h)
	s.wls[key] = wl
	return wl
}
