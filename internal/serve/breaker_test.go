package serve

import (
	"testing"
	"time"
)

func TestBreakerDisabledAlwaysAllows(t *testing.T) {
	b := newBreaker(BreakerConfig{}, nil)
	for i := 0; i < 5; i++ {
		b.Record(false)
	}
	if !b.Allow() {
		t.Fatal("disabled breaker blocked admission")
	}
	if b.State() != breakerClosed {
		t.Fatalf("state = %d, want closed", b.State())
	}
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	now := time.Unix(0, 0)
	trips := 0
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second}, func() { trips++ })
	b.now = func() time.Time { return now }

	// Failures below the threshold keep it closed; a success resets.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if !b.Allow() || b.State() != breakerClosed {
		t.Fatal("breaker tripped early (success did not reset the streak)")
	}

	// The third consecutive failure trips it.
	b.Record(false)
	if b.Allow() {
		t.Fatal("open breaker admitted a job")
	}
	if trips != 1 || b.State() != breakerOpen {
		t.Fatalf("trips=%d state=%d, want 1/open", trips, b.State())
	}

	// After the cooldown: exactly one half-open probe.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not go half-open after cooldown")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %d, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe admitted while one is in flight")
	}

	// A failed probe re-opens for a full cooldown.
	b.Record(false)
	if b.Allow() || trips != 2 {
		t.Fatalf("failed probe did not re-open (trips=%d)", trips)
	}

	// Next probe succeeds: closed again, failure streak cleared.
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Record(true)
	if b.State() != breakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
}
