package serve

import (
	"testing"
	"time"
)

func TestBreakerDisabledAlwaysAllows(t *testing.T) {
	b := newBreaker(BreakerConfig{}, nil)
	for i := 0; i < 5; i++ {
		b.Record(false)
	}
	admit, probe := b.Allow()
	if !admit {
		t.Fatal("disabled breaker blocked admission")
	}
	if probe {
		t.Fatal("disabled breaker handed out a probe")
	}
	if b.State() != breakerClosed {
		t.Fatalf("state = %d, want closed", b.State())
	}
}

func TestBreakerTripHalfOpenRecover(t *testing.T) {
	now := time.Unix(0, 0)
	trips := 0
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second}, func() { trips++ })
	b.now = func() time.Time { return now }
	admit := func() bool { ok, _ := b.Allow(); return ok }

	// Failures below the threshold keep it closed; a success resets.
	b.Record(false)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if !admit() || b.State() != breakerClosed {
		t.Fatal("breaker tripped early (success did not reset the streak)")
	}

	// The third consecutive failure trips it.
	b.Record(false)
	if admit() {
		t.Fatal("open breaker admitted a job")
	}
	if trips != 1 || b.State() != breakerOpen {
		t.Fatalf("trips=%d state=%d, want 1/open", trips, b.State())
	}

	// After the cooldown: exactly one half-open probe.
	now = now.Add(time.Second)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("after cooldown Allow = (%v, %v), want a half-open probe", ok, probe)
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %d, want half-open", b.State())
	}
	if admit() {
		t.Fatal("second probe admitted while one is in flight")
	}

	// A failed probe re-opens for a full cooldown.
	b.Record(false)
	if admit() || trips != 2 {
		t.Fatalf("failed probe did not re-open (trips=%d)", trips)
	}

	// Next probe succeeds: closed again, failure streak cleared.
	now = now.Add(time.Second)
	if !admit() {
		t.Fatal("no probe after second cooldown")
	}
	b.Record(true)
	if b.State() != breakerClosed || !admit() {
		t.Fatal("successful probe did not close the breaker")
	}
}

// An admitted probe that is abandoned before running (the job bounced off
// the full waiting room or timed out queued) must hand its slot back via
// Release, or the breaker stays half-open rejecting everything forever.
func TestBreakerReleaseFreesProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second}, nil)
	b.now = func() time.Time { return now }

	b.Record(false) // trip
	now = now.Add(time.Second)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow = (%v, %v), want a probe", ok, probe)
	}

	// Abandoned without Release: everything is rejected.
	if admit, _ := b.Allow(); admit {
		t.Fatal("second probe admitted while the first is unreleased")
	}

	b.Release(probe)
	ok, probe = b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after Release = (%v, %v), want a fresh probe", ok, probe)
	}
	b.Record(true)
	if b.State() != breakerClosed {
		t.Fatal("probe after release could not close the breaker")
	}
}

// Release from an admission that never held the probe must not free a
// probe someone else holds.
func TestBreakerReleaseNonProbeIsNoop(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second}, nil)
	b.now = func() time.Time { return now }

	b.Record(false) // trip
	now = now.Add(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("Allow = (%v, %v), want a probe", ok, probe)
	}

	b.Release(false) // e.g. a pre-trip admission bailing out
	if admit, _ := b.Allow(); admit {
		t.Fatal("non-probe Release freed the in-flight probe slot")
	}
}
