package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"image/png"
	"io"
	"mime"
	"mime/multipart"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// smallRender is a job small enough to run in milliseconds.
func smallRender(frames int) JobSpec {
	return JobSpec{Mode: ModeRender, Frames: frames, Width: 64, Height: 48, Pipelines: 2}
}

func smallSimulate() JobSpec {
	return JobSpec{Mode: ModeSimulate, Frames: 4, Width: 64, Height: 64, Pipelines: 2, Trace: true}
}

func postJob(t *testing.T, url string, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream parses a multipart frame stream: it returns the PNG frame
// indices in arrival order and the trailing JSON part.
func readStream(t *testing.T, resp *http.Response) (frames []int, tail map[string]any) {
	t.Helper()
	defer resp.Body.Close()
	mt, params, err := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if err != nil {
		t.Fatal(err)
	}
	if mt != "multipart/x-mixed-replace" {
		t.Fatalf("content type %q, want multipart/x-mixed-replace", mt)
	}
	mr := multipart.NewReader(resp.Body, params["boundary"])
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return frames, tail
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ct := part.Header.Get("Content-Type"); ct {
		case "image/png":
			if _, err := png.Decode(part); err != nil {
				t.Fatalf("frame %d: bad PNG: %v", len(frames), err)
			}
			idx, err := strconv.Atoi(part.Header.Get("X-Frame-Index"))
			if err != nil {
				t.Fatalf("bad X-Frame-Index: %v", err)
			}
			frames = append(frames, idx)
		case "application/json":
			tail = map[string]any{}
			if err := json.NewDecoder(part).Decode(&tail); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected part type %q", ct)
		}
	}
}

func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	out := map[string]float64{}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("bad metrics line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[name] = f
	}
	return out
}

func TestRenderJobStreamsFrames(t *testing.T) {
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJob(t, ts.URL, smallRender(4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	frames, tail := readStream(t, resp)
	if len(frames) != 4 {
		t.Fatalf("streamed %d frames, want 4", len(frames))
	}
	for i, f := range frames {
		if f != i {
			t.Fatalf("frame order %v, want 0..3", frames)
		}
	}
	if tail == nil || tail["frames"] != float64(4) {
		t.Fatalf("bad summary part %v", tail)
	}
}

func TestSimulateJobReturnsJSON(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postJob(t, ts.URL, smallSimulate())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sim simResponse
	if err := json.NewDecoder(resp.Body).Decode(&sim); err != nil {
		t.Fatal(err)
	}
	if sim.Seconds <= 0 {
		t.Fatalf("simulated seconds = %v, want > 0", sim.Seconds)
	}
	if sim.FramePeriodS <= 0 {
		t.Fatalf("frame period = %v, want > 0 (trace was requested)", sim.FramePeriodS)
	}
}

func TestInvalidJobRejected(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, spec := range []JobSpec{
		{Mode: "transcode"},
		{Mode: ModeRender, Pipelines: 99},
		{Mode: ModeSimulate, Frames: 1 << 30},
	} {
		resp := postJob(t, ts.URL, spec)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %+v: status %d, want 400", spec, resp.StatusCode)
		}
	}
	if got := s.m.Get(mRejected + `{reason="invalid"}`); got != 3 {
		t.Fatalf("invalid rejections = %v, want 3", got)
	}
}

// holdJobs installs the test hook so each running job blocks until the
// returned release func is called. started receives one value per job that
// reaches a worker slot.
func holdJobs(s *Server) (started chan JobSpec, release func()) {
	started = make(chan JobSpec, 8)
	gate := make(chan struct{})
	s.testHookRunning = func(spec JobSpec) {
		started <- spec
		<-gate
	}
	return started, func() { close(gate) }
}

func TestQueueFullRejectsWith429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: -1})
	started, release := holdJobs(s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := make(chan *http.Response, 1)
	go func() { first <- postJob(t, ts.URL, smallRender(2)) }()
	<-started // the job holds the only slot and the only room place

	resp := postJob(t, ts.URL, smallRender(2))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second job status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	release()
	r := <-first
	frames, tail := readStream(t, r)
	if len(frames) != 2 || tail["frames"] != float64(2) {
		t.Fatalf("held job did not complete cleanly: %v %v", frames, tail)
	}
	if got := s.m.Get(mRejected + `{reason="queue_full"}`); got != 1 {
		t.Fatalf("queue_full rejections = %v, want 1", got)
	}
}

func TestDeadlineExpiryInQueue(t *testing.T) {
	s := New(Config{Workers: 1})
	started, release := holdJobs(s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := make(chan *http.Response, 1)
	go func() { first <- postJob(t, ts.URL, smallRender(2)) }()
	<-started

	// This job is admitted to the waiting room but never gets a slot
	// before its 50 ms deadline.
	spec := smallRender(2)
	spec.TimeoutMS = 50
	resp := postJob(t, ts.URL, spec)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("body %q does not surface the deadline error", body)
	}

	release()
	readStream(t, <-first)
	if got := s.m.Get(mFailed); got != 1 {
		t.Fatalf("failed jobs = %v, want 1", got)
	}
	if got := s.m.Get(mCompleted); got != 1 {
		t.Fatalf("completed jobs = %v, want 1", got)
	}
}

func TestDeadlineExpiryMidRun(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Too much work for the deadline: either it expires before the first
	// frame (plain 504) or mid-stream (error part closes the stream).
	spec := JobSpec{Mode: ModeRender, Frames: 500, Width: 512, Height: 512, Pipelines: 2, TimeoutMS: 40}
	resp := postJob(t, ts.URL, spec)
	switch resp.StatusCode {
	case http.StatusGatewayTimeout:
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "deadline") {
			t.Fatalf("504 body %q does not mention the deadline", body)
		}
	case http.StatusOK:
		frames, tail := readStream(t, resp)
		if len(frames) >= 500 {
			t.Fatalf("job was not cut off (%d frames)", len(frames))
		}
		errMsg, _ := tail["error"].(string)
		if !strings.Contains(errMsg, "deadline") {
			t.Fatalf("trailing part %v does not surface the deadline error", tail)
		}
	default:
		t.Fatalf("status %d, want 504 or 200", resp.StatusCode)
	}
	if got := s.m.Get(mFailed); got != 1 {
		t.Fatalf("failed jobs = %v, want 1", got)
	}
}

func TestGracefulDrainFinishesInFlight(t *testing.T) {
	s := New(Config{Workers: 1})
	started, release := holdJobs(s)
	ts := httptest.NewServer(s)
	defer ts.Close()

	first := make(chan *http.Response, 1)
	go func() { first <- postJob(t, ts.URL, smallRender(3)) }()
	<-started

	s.BeginDrain()

	// New work is refused while draining...
	resp := postJob(t, ts.URL, smallRender(1))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: status %d, want 503", resp.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hz.StatusCode)
	}

	// ...but the in-flight job runs to completion and Drain observes it.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	release()
	frames, tail := readStream(t, <-first)
	if len(frames) != 3 || tail["frames"] != float64(3) {
		t.Fatalf("in-flight job truncated by drain: %v %v", frames, tail)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := s.m.Get(mRejected + `{reason="draining"}`); got != 1 {
		t.Fatalf("draining rejections = %v, want 1", got)
	}
}

func TestMetricsAfterJobMix(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: -1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// 1 simulate + 1 render complete; 1 submission bounces off the full
	// queue while the render runs.
	resp := postJob(t, ts.URL, smallSimulate())
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	started, release := holdJobs(s)
	renderDone := make(chan *http.Response, 1)
	go func() { renderDone <- postJob(t, ts.URL, smallRender(3)) }()
	<-started
	rej := postJob(t, ts.URL, smallRender(1))
	rej.Body.Close()
	if rej.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d", rej.StatusCode)
	}
	release()
	readStream(t, <-renderDone)

	m := scrapeMetrics(t, ts.URL)
	checks := map[string]float64{
		"sccserve_jobs_accepted_total":                      2,
		"sccserve_jobs_completed_total":                     2,
		"sccserve_jobs_failed_total":                        0,
		`sccserve_jobs_rejected_total{reason="queue_full"}`: 1,
		"sccserve_frames_served_total":                      3,
		"sccserve_queue_depth":                              0,
		"sccserve_inflight_runs":                            0,
	}
	for name, want := range checks {
		if got, ok := m[name]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	// Per-stage busy time from both backends must be present and positive.
	for _, key := range []string{
		`sccserve_stage_busy_seconds_total{backend="exec",stage="render"}`,
		`sccserve_stage_busy_seconds_total{backend="exec",stage="blur"}`,
		`sccserve_stage_busy_seconds_total{backend="sim",stage="blur"}`,
	} {
		if m[key] <= 0 {
			t.Errorf("%s = %v, want > 0", key, m[key])
		}
	}
}

func TestHealthzOK(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" {
		t.Fatalf("healthz %v", hz)
	}
}

func TestListenAndServeDrainsOnCancel(t *testing.T) {
	s := New(Config{Workers: 1, DrainTimeout: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- s.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) {
			addrc <- a.String()
		})
	}()
	var url string
	select {
	case a := <-addrc:
		url = "http://" + a
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	}

	resp := postJob(t, url, smallRender(2))
	frames, _ := readStream(t, resp)
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("ListenAndServe after drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !s.Draining() {
		t.Fatal("server not marked draining after shutdown")
	}
}

func TestJobsMethodNotAllowed(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /jobs status %d, want 405", resp.StatusCode)
	}
}
