// Package rcache is a bounded, content-addressed cache of rendered
// (pre-filter) frames. The renderer is deterministic — a frame depends
// only on (scene geometry, camera pose, output size, strip bounds) — so
// frames are addressed by a canonical hash of exactly those inputs and
// never invalidated: a stale entry is impossible by construction, and the
// only way an entry leaves the cache is LRU eviction under byte pressure.
//
// The cache is sharded (key-hashed shards, each with its own lock, LRU
// list, and slice of the byte budget) so concurrent jobs don't serialize
// on one mutex, and single-flighted: when identical jobs race, one
// renders while the rest wait and copy, so the fleet does the raster work
// once. A hit replaces a full rasterizer traversal with a memcpy, which
// is the paper's macro-pipelining argument applied across jobs instead of
// across cores.
package rcache

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"sccpipe/internal/frame"
	"sccpipe/internal/render"
)

// numShards is the fixed shard count. 16 is far above the worker counts
// the serve layer runs with, so shard-lock collisions are rare, while the
// per-shard budget (MaxBytes/16) stays large next to one 4-byte-per-pixel
// frame.
const numShards = 16

// Key is a 128-bit content address of one rendered frame or strip. Two
// independent 64-bit FNV-1a hashes over the same canonical input words
// make accidental collisions astronomically unlikely even at fleet scale.
type Key struct{ Hi, Lo uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	// altOffset seeds the second, independent hash (splitmix64 of the FNV
	// offset basis).
	altOffset = 0x8e1f764a7c9de3b5
)

// hashWords folds a word sequence into a 64-bit FNV-1a hash, byte by
// byte, starting from seed.
func hashWords(seed uint64, words []uint64) uint64 {
	h := seed
	for _, w := range words {
		for i := 0; i < 64; i += 8 {
			h ^= (w >> i) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

// FrameKey derives the content address of one rendered strip: the scene
// identity, the exact camera pose (float bit patterns — any pose change,
// however small, is a different frame), the full-frame geometry, the
// frame index, and the strip bounds (y0, rows). A full-frame render uses
// y0=0, rows=height. Job fields that only drive post-render filter
// stages — the job seed, pipeline count, filter arrangement — are
// deliberately absent: jobs differing only in those share rendered
// pixels.
func FrameKey(scene uint64, cam render.Camera, width, height, frameIdx, y0, rows int) Key {
	words := [...]uint64{
		scene,
		math.Float64bits(cam.Eye.X), math.Float64bits(cam.Eye.Y), math.Float64bits(cam.Eye.Z),
		math.Float64bits(cam.Target.X), math.Float64bits(cam.Target.Y), math.Float64bits(cam.Target.Z),
		math.Float64bits(cam.Up.X), math.Float64bits(cam.Up.Y), math.Float64bits(cam.Up.Z),
		math.Float64bits(cam.FovY), math.Float64bits(cam.Near), math.Float64bits(cam.Far),
		uint64(width), uint64(height), uint64(frameIdx), uint64(y0), uint64(rows),
	}
	return Key{Hi: hashWords(fnvOffset, words[:]), Lo: hashWords(altOffset, words[:])}
}

// SceneKey hashes scene geometry (triangle vertices and colors) into the
// scene identity folded into every FrameKey. Computed once at server
// startup; different procedural scenes can never alias each other's
// frames.
func SceneKey(tris []render.Triangle) uint64 {
	h := uint64(fnvOffset)
	word := func(w uint64) {
		for i := 0; i < 64; i += 8 {
			h ^= (w >> i) & 0xff
			h *= fnvPrime
		}
	}
	word(uint64(len(tris)))
	for _, t := range tris {
		for _, v := range t.V {
			word(math.Float64bits(v.X))
			word(math.Float64bits(v.Y))
			word(math.Float64bits(v.Z))
		}
		word(uint64(t.R)<<16 | uint64(t.G)<<8 | uint64(t.B))
	}
	return h
}

// entry is one cached frame. The image is immutable after insertion and
// is never handed out — readers copy under no lock — so an entry evicted
// while a reader copies stays valid until the GC collects it.
type entry struct {
	key Key
	img *frame.Image
}

// flight is an in-progress render other callers of the same key wait on.
// img and err are written by the leader before done is closed.
type flight struct {
	done chan struct{}
	img  *frame.Image
	err  error
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used
	flights map[Key]*flight
	bytes   int64
}

// Cache is the sharded, byte-bounded, single-flight frame cache. The
// zero value is not usable; construct with New. A nil *Cache is valid
// and behaves as an always-miss cache with no single-flighting, so call
// sites don't branch.
type Cache struct {
	shardBudget int64
	maxBytes    int64
	shards      [numShards]shard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	dedups    atomic.Int64
	bytes     atomic.Int64
	entries   atomic.Int64
}

// New builds a cache bounded by maxBytes of pixel data (accounting is by
// stored pixel bytes; per-entry bookkeeping overhead is not charged).
// maxBytes must be positive.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	budget := maxBytes / numShards
	if budget < 1 {
		budget = 1
	}
	c := &Cache{shardBudget: budget, maxBytes: maxBytes}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].flights = make(map[Key]*flight)
	}
	return c
}

// Stats is a point-in-time snapshot of cache activity. Hits, Misses,
// Evictions, and Dedups are monotonic; Bytes and Entries are gauges.
// Dedups counts single-flight waits — hits that never existed as entries
// because a racing leader's render was shared in flight.
type Stats struct {
	Hits, Misses, Evictions, Dedups int64
	Bytes, MaxBytes                 int64
	Entries                         int64
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Dedups:    c.dedups.Load(),
		Bytes:     c.bytes.Load(),
		MaxBytes:  c.maxBytes,
		Entries:   c.entries.Load(),
	}
}

// copyInto copies src's pixels into dst when the geometry matches.
func copyInto(dst, src *frame.Image) bool {
	if src == nil || dst.W != src.W || dst.H != src.H || len(dst.Pix) != len(src.Pix) {
		return false
	}
	copy(dst.Pix, src.Pix)
	return true
}

// Do serves key into dst: from the cache (memcpy), from another caller's
// in-flight render of the same key (wait + memcpy), or by invoking
// render(dst) and publishing a copy of the result. It returns whether dst
// was served without calling render. dst must already have the geometry
// the key describes. If the leader's render fails (or, vanishingly, a
// 128-bit key collision stores mismatched geometry), waiters fall back to
// rendering locally — correctness never depends on the cache.
func (c *Cache) Do(key Key, dst *frame.Image, render func(dst *frame.Image) error) (bool, error) {
	if c == nil {
		return false, render(dst)
	}
	s := &c.shards[key.Lo%numShards]
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		img := el.Value.(*entry).img
		s.mu.Unlock()
		if copyInto(dst, img) {
			c.hits.Add(1)
			return true, nil
		}
		c.misses.Add(1)
		return false, render(dst)
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-f.done
		if f.err == nil && copyInto(dst, f.img) {
			c.hits.Add(1)
			c.dedups.Add(1)
			return true, nil
		}
		c.misses.Add(1)
		return false, render(dst)
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	c.misses.Add(1)
	err := render(dst)
	if err == nil {
		f.img = dst.Clone()
	}
	f.err = err
	s.mu.Lock()
	delete(s.flights, key)
	if err == nil {
		c.insertLocked(s, key, f.img)
	}
	s.mu.Unlock()
	close(f.done)
	return false, err
}

// insertLocked publishes img under key and evicts from the LRU tail until
// the shard is back under its budget slice. An image larger than a whole
// shard's budget is served to in-flight waiters but never stored.
func (c *Cache) insertLocked(s *shard, key Key, img *frame.Image) {
	sz := int64(len(img.Pix))
	if sz > c.shardBudget {
		return
	}
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.entries[key] = s.lru.PushFront(&entry{key: key, img: img})
	s.bytes += sz
	c.bytes.Add(sz)
	c.entries.Add(1)
	for s.bytes > c.shardBudget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		n := int64(len(e.img.Pix))
		s.bytes -= n
		c.bytes.Add(-n)
		c.entries.Add(-1)
		c.evictions.Add(1)
	}
}
