package rcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sccpipe/internal/frame"
	"sccpipe/internal/render"
)

func testCam(i int) render.Camera {
	return render.Camera{
		Eye:    render.Vec3{X: float64(i), Y: 2, Z: 3},
		Target: render.Vec3{X: 0, Y: 0, Z: 0},
		Up:     render.Vec3{X: 0, Y: 1, Z: 0},
		FovY:   60, Near: 0.1, Far: 100,
	}
}

func fill(img *frame.Image, b byte) {
	for i := range img.Pix {
		img.Pix[i] = b
	}
}

func TestFrameKeyDistinguishesInputs(t *testing.T) {
	base := FrameKey(1, testCam(0), 64, 48, 0, 0, 48)
	variants := []Key{
		FrameKey(2, testCam(0), 64, 48, 0, 0, 48),  // scene
		FrameKey(1, testCam(1), 64, 48, 0, 0, 48),  // camera pose
		FrameKey(1, testCam(0), 65, 48, 0, 0, 48),  // width
		FrameKey(1, testCam(0), 64, 49, 0, 0, 48),  // height
		FrameKey(1, testCam(0), 64, 48, 1, 0, 48),  // frame index
		FrameKey(1, testCam(0), 64, 48, 0, 24, 24), // strip bounds
	}
	for i, v := range variants {
		if v == base {
			t.Fatalf("variant %d collides with base key", i)
		}
	}
	if again := FrameKey(1, testCam(0), 64, 48, 0, 0, 48); again != base {
		t.Fatalf("FrameKey not deterministic: %v vs %v", again, base)
	}
}

func TestDoHitIsByteIdentical(t *testing.T) {
	c := New(1 << 20)
	key := FrameKey(1, testCam(0), 8, 8, 0, 0, 8)
	cold := frame.New(8, 8)
	renders := 0
	hit, err := c.Do(key, cold, func(dst *frame.Image) error {
		renders++
		fill(dst, 0xab)
		return nil
	})
	if err != nil || hit {
		t.Fatalf("first Do: hit=%v err=%v", hit, err)
	}
	warm := frame.New(8, 8)
	hit, err = c.Do(key, warm, func(dst *frame.Image) error {
		renders++
		return nil
	})
	if err != nil || !hit {
		t.Fatalf("second Do: hit=%v err=%v", hit, err)
	}
	if renders != 1 {
		t.Fatalf("renders = %d, want 1", renders)
	}
	if !cold.Equal(warm) {
		t.Fatal("hit frame differs from cold render")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 8*8*4 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSingleFlight races many identical jobs at one key: exactly one must
// render, the rest must wait and receive byte-identical pixels.
func TestSingleFlight(t *testing.T) {
	c := New(1 << 20)
	key := FrameKey(7, testCam(3), 16, 16, 2, 0, 16)
	const racers = 32
	var renders atomic.Int64
	var entered sync.WaitGroup
	entered.Add(racers)
	release := make(chan struct{})
	var wg sync.WaitGroup
	imgs := make([]*frame.Image, racers)
	for i := 0; i < racers; i++ {
		i := i
		imgs[i] = frame.New(16, 16)
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Done()
			<-release // maximize the racing window
			_, err := c.Do(key, imgs[i], func(dst *frame.Image) error {
				renders.Add(1)
				// Hold the flight open long enough that the released racers
				// all reach Do while the leader is still rendering.
				time.Sleep(50 * time.Millisecond)
				fill(dst, byte(0x40+i))
				return nil
			})
			if err != nil {
				t.Errorf("racer %d: %v", i, err)
			}
		}()
	}
	entered.Wait()
	close(release)
	wg.Wait()
	if n := renders.Load(); n != 1 {
		t.Fatalf("%d renders for %d racing identical jobs, want 1", n, racers)
	}
	for i := 1; i < racers; i++ {
		if !imgs[0].Equal(imgs[i]) {
			t.Fatalf("racer %d pixels differ from racer 0", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != racers-1 {
		t.Fatalf("stats %+v, want 1 miss and %d hits", st, racers-1)
	}
	if st.Dedups == 0 {
		t.Fatalf("stats %+v: expected at least one single-flight dedup", st)
	}
}

// TestLeaderErrorFallback: waiters behind a failed leader render locally
// and nothing is cached.
func TestLeaderErrorFallback(t *testing.T) {
	c := New(1 << 20)
	key := FrameKey(9, testCam(5), 8, 8, 0, 0, 8)
	boom := errors.New("render failed")
	img := frame.New(8, 8)
	if hit, err := c.Do(key, img, func(*frame.Image) error { return boom }); hit || !errors.Is(err, boom) {
		t.Fatalf("leader: hit=%v err=%v", hit, err)
	}
	// The failure must not poison the key: the next caller renders.
	ok := frame.New(8, 8)
	hit, err := c.Do(key, ok, func(dst *frame.Image) error { fill(dst, 1); return nil })
	if hit || err != nil {
		t.Fatalf("after failed leader: hit=%v err=%v", hit, err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("stats %+v, want the successful render cached", st)
	}
}

// TestEvictionUnderBytePressure holds every key in one shard (same Lo
// residue is impractical to force, so use a budget small enough that the
// shard slice fits ~2 entries) and checks LRU order: a touched entry
// survives, the cold one goes.
func TestEvictionUnderBytePressure(t *testing.T) {
	frameBytes := int64(8 * 8 * 4)
	// Budget: each of the 16 shards holds at most 2 frames.
	c := New(2 * frameBytes * numShards)
	render := func(b byte) func(*frame.Image) error {
		return func(dst *frame.Image) error { fill(dst, b); return nil }
	}
	img := frame.New(8, 8)
	// Insert many distinct keys; far more than the budget admits.
	const n = 64
	for i := 0; i < n; i++ {
		key := FrameKey(1, testCam(i), 8, 8, i, 0, 8)
		if _, err := c.Do(key, img, render(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > c.maxBytes {
		t.Fatalf("cache holds %d bytes, budget %d", st.Bytes, c.maxBytes)
	}
	if st.Evictions == 0 {
		t.Fatalf("stats %+v: expected evictions under byte pressure", st)
	}
	if st.Entries > 2*numShards {
		t.Fatalf("stats %+v: more entries than the budget admits", st)
	}
	if got := st.Bytes; got != st.Entries*frameBytes {
		t.Fatalf("byte accounting drifted: %d bytes for %d entries", got, st.Entries)
	}
}

// TestLRUTouchSurvives pins two keys into one shard by brute-force key
// search, touches the first, inserts a third, and checks the untouched
// key was the one evicted.
func TestLRUTouchSurvives(t *testing.T) {
	frameBytes := int64(8 * 8 * 4)
	c := New(2 * frameBytes * numShards) // 2 frames per shard
	// Find three keys landing in shard 0.
	var keys []Key
	var cams []render.Camera
	for i := 0; len(keys) < 3; i++ {
		k := FrameKey(1, testCam(i), 8, 8, 0, 0, 8)
		if k.Lo%numShards == 0 {
			keys = append(keys, k)
			cams = append(cams, testCam(i))
		}
	}
	img := frame.New(8, 8)
	paint := func(b byte) func(*frame.Image) error {
		return func(dst *frame.Image) error { fill(dst, b); return nil }
	}
	mustDo := func(k Key, fn func(*frame.Image) error) bool {
		hit, err := c.Do(k, img, fn)
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	mustDo(keys[0], paint(0))
	mustDo(keys[1], paint(1))
	mustDo(keys[0], paint(0xff)) // touch 0: now MRU
	mustDo(keys[2], paint(2))    // evicts LRU = keys[1]
	if !mustDo(keys[0], paint(0xff)) {
		t.Fatal("touched key evicted; want LRU to keep it")
	}
	if mustDo(keys[1], paint(0xff)) {
		t.Fatal("untouched key survived; want it evicted")
	}
}

// TestOversizedEntryNotStored: an image bigger than a whole shard's
// budget is rendered and served but never cached.
func TestOversizedEntryNotStored(t *testing.T) {
	c := New(numShards) // 1 byte per shard
	img := frame.New(4, 4)
	key := FrameKey(1, testCam(0), 4, 4, 0, 0, 4)
	if _, err := c.Do(key, img, func(dst *frame.Image) error { fill(dst, 3); return nil }); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry stored: %+v", st)
	}
}

func TestNilCachePassesThrough(t *testing.T) {
	var c *Cache
	img := frame.New(4, 4)
	hit, err := c.Do(Key{}, img, func(dst *frame.Image) error { fill(dst, 9); return nil })
	if hit || err != nil {
		t.Fatalf("nil cache: hit=%v err=%v", hit, err)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
	if New(0) != nil || New(-1) != nil {
		t.Fatal("New with non-positive budget should return the nil cache")
	}
}

func TestSceneKeySensitivity(t *testing.T) {
	tri := func(x float64, r uint8) render.Triangle {
		return render.Triangle{
			V: [3]render.Vec3{{X: x}, {X: x + 1, Y: 1}, {X: x, Z: 1}},
			R: r, G: 10, B: 20,
		}
	}
	a := SceneKey([]render.Triangle{tri(0, 1), tri(2, 2)})
	checks := []uint64{
		SceneKey([]render.Triangle{tri(0, 1)}),            // count
		SceneKey([]render.Triangle{tri(0, 1), tri(3, 2)}), // geometry
		SceneKey([]render.Triangle{tri(0, 1), tri(2, 9)}), // color
	}
	for i, b := range checks {
		if a == b {
			t.Fatalf("scene variant %d collides", i)
		}
	}
	if SceneKey([]render.Triangle{tri(0, 1), tri(2, 2)}) != a {
		t.Fatal("SceneKey not deterministic")
	}
}
