package core

import (
	"sync"

	"sccpipe/internal/frame"
	"sccpipe/internal/render"
	"sccpipe/internal/scene"
)

// Workload is the measured per-frame render work of a walkthrough,
// precomputed with the real renderer so the simulation charges realistic,
// frame-varying costs without rasterizing during the simulation run.
// A built Workload may be shared by concurrent Simulate calls (the serve
// layer caches one per job shape): the lazy strip caches are guarded by a
// mutex.
type Workload struct {
	Frames  int
	W, H    int
	Cameras []render.Camera
	// Full[f] is the full-frame culling work of frame f.
	Full []render.CullStats
	// mu guards the lazy caches below so a shared Workload is safe under
	// concurrent Simulate calls.
	mu sync.Mutex
	// Strips[k] is lazily built: Strips[k][f][i] is the culling work of
	// strip i of frame f when the frame is split k ways.
	strips map[int][][]render.CullStats
	// custom caches culling work for non-uniform decompositions
	// (BalancedBounds), keyed by the bounds.
	custom map[string][][]render.CullStats
	tree   *render.Octree
}

// BuildWorkload profiles a walkthrough of the given size over a scene.
// The same Workload can be shared across specs with differing pipeline
// counts and arrangements.
func BuildWorkload(tree *render.Octree, frames, w, h int) *Workload {
	wl := &Workload{
		Frames:  frames,
		W:       w,
		H:       h,
		Cameras: render.Walkthrough(frames, tree.Bounds()),
		strips:  make(map[int][][]render.CullStats),
		tree:    tree,
	}
	r := render.NewRenderer(tree)
	wl.Full = make([]render.CullStats, frames)
	for f := 0; f < frames; f++ {
		wl.Full[f] = r.CullOnly(wl.Cameras[f], w, h, 0, h)
	}
	return wl
}

// DefaultWorkload builds the paper's walkthrough over the default
// procedural city.
func DefaultWorkload(frames, w, h int) *Workload {
	tree := render.BuildOctree(scene.City(scene.DefaultConfig()))
	return BuildWorkload(tree, frames, w, h)
}

// Tree exposes the scene octree (for the Exec backend and examples).
func (wl *Workload) Tree() *render.Octree { return wl.tree }

// StripStats returns the per-frame per-strip culling work for k strips,
// computing and caching it on first use.
func (wl *Workload) StripStats(k int) [][]render.CullStats {
	wl.mu.Lock()
	defer wl.mu.Unlock()
	if st, ok := wl.strips[k]; ok {
		return st
	}
	r := render.NewRenderer(wl.tree)
	st := make([][]render.CullStats, wl.Frames)
	for f := 0; f < wl.Frames; f++ {
		st[f] = make([]render.CullStats, k)
		for i := 0; i < k; i++ {
			y0, y1 := frame.StripBounds(wl.H, k, i)
			st[f][i] = r.CullOnly(wl.Cameras[f], wl.W, wl.H, y0, y1)
		}
	}
	wl.strips[k] = st
	return st
}

// StripPixels returns the pixel count of strip i of k.
func (wl *Workload) StripPixels(k, i int) int {
	y0, y1 := frame.StripBounds(wl.H, k, i)
	return (y1 - y0) * wl.W
}

// StripBytes returns the payload size of strip i of k (4 B/pixel).
func (wl *Workload) StripBytes(k, i int) int { return wl.StripPixels(k, i) * 4 }

// FrameBytes returns the full-frame payload size.
func (wl *Workload) FrameBytes() int { return wl.W * wl.H * 4 }
