package core

import (
	"fmt"

	"sccpipe/internal/scc"
)

// Placement maps the stages of a spec onto SCC cores.
type Placement struct {
	// Renderers holds one core (OneRenderer) or one per pipeline
	// (NRenderers); it is empty for HostRenderer.
	Renderers []scc.CoreID
	// Connect is the MCPC-facing distribution core (HostRenderer only;
	// -1 otherwise).
	Connect scc.CoreID
	// Filters[i][j] is pipeline i's j-th filter stage core (FilterOrder).
	Filters [][]scc.CoreID
	// Transfer collects strips and feeds the visualization client.
	Transfer scc.CoreID
}

// Cores returns every core the placement uses, without duplicates.
func (pl Placement) Cores() []scc.CoreID {
	seen := make(map[scc.CoreID]bool)
	var out []scc.CoreID
	add := func(c scc.CoreID) {
		if c >= 0 && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range pl.Renderers {
		add(c)
	}
	add(pl.Connect)
	for _, p := range pl.Filters {
		for _, c := range p {
			add(c)
		}
	}
	add(pl.Transfer)
	return out
}

// BlurCores returns the cores running blur stages.
func (pl Placement) BlurCores() []scc.CoreID {
	var out []scc.CoreID
	for _, p := range pl.Filters {
		out = append(out, p[1]) // FilterOrder[1] == StageBlur
	}
	return out
}

// TailCores returns the cores of the stages after blur (scratch, flicker,
// swap) plus the transfer core — the set the paper downclocks in §VI-D.
func (pl Placement) TailCores() []scc.CoreID {
	var out []scc.CoreID
	for _, p := range pl.Filters {
		out = append(out, p[2], p[3], p[4])
	}
	out = append(out, pl.Transfer)
	return out
}

// Place computes the core assignment for a spec. It panics only on internal
// inconsistency; impossible specs are rejected by Validate.
func Place(s Spec) (Placement, error) {
	if err := s.Validate(); err != nil {
		return Placement{}, err
	}
	switch s.Arrangement {
	case Unordered:
		return placeUnordered(s)
	case Ordered, Flipped:
		return placeRows(s)
	default:
		return Placement{}, fmt.Errorf("core: unknown arrangement %v", s.Arrangement)
	}
}

// placeUnordered assigns cores strictly in SCC ID order: sources first,
// then each pipeline's filters back to back, then the transfer stage. As
// the paper notes, pipelines may wrap mid-row on the mesh.
func placeUnordered(s Spec) (Placement, error) {
	next := scc.CoreID(0)
	take := func() scc.CoreID {
		c := next
		next++
		return c
	}
	pl := Placement{Connect: -1}
	switch s.Renderer {
	case OneRenderer:
		pl.Renderers = []scc.CoreID{take()}
	case HostRenderer:
		pl.Connect = take()
	case NRenderers:
		for i := 0; i < s.Pipelines; i++ {
			pl.Renderers = append(pl.Renderers, take())
		}
	}
	for i := 0; i < s.Pipelines; i++ {
		var stages []scc.CoreID
		for range FilterOrder {
			stages = append(stages, take())
		}
		pl.Filters = append(pl.Filters, stages)
	}
	pl.Transfer = take()
	if !pl.Transfer.Valid() {
		return Placement{}, fmt.Errorf("core: placement overflows the chip")
	}
	return relocateBlur(s, pl)
}

// placeRows lays each pipeline along a mesh row (Ordered), reversing every
// second pipeline's direction for Flipped. Pipeline i occupies row i%4
// using tile-core pair i/4; its five filters sit on mesh columns 1..5.
// Sources (render stages or connect) sit on column 0 of the pipeline's row,
// and the transfer stage on a remaining column-0 core.
func placeRows(s Spec) (Placement, error) {
	pl := Placement{Connect: -1}
	coreAt := func(col, row, pair int) scc.CoreID {
		return scc.CoreID(2*int(scc.TileAt(col, row)) + pair)
	}
	colUsed := make(map[scc.CoreID]bool)
	// Per-pipeline filter stages.
	for i := 0; i < s.Pipelines; i++ {
		row, pair := i%scc.MeshRows, i/scc.MeshRows
		flip := s.Arrangement == Flipped && i%2 == 1
		var stages []scc.CoreID
		for j := range FilterOrder {
			col := j + 1
			if flip {
				col = scc.MeshCols - 1 - j
			}
			stages = append(stages, coreAt(col, row, pair))
		}
		pl.Filters = append(pl.Filters, stages)
	}
	// Sources on column 0.
	takeCol0 := func(prefRow, prefPair int) scc.CoreID {
		for _, cand := range col0Candidates(prefRow, prefPair) {
			if !colUsed[cand] {
				colUsed[cand] = true
				return cand
			}
		}
		return -1
	}
	switch s.Renderer {
	case OneRenderer:
		pl.Renderers = []scc.CoreID{takeCol0(0, 0)}
	case HostRenderer:
		pl.Connect = takeCol0(0, 0)
	case NRenderers:
		for i := 0; i < s.Pipelines; i++ {
			pl.Renderers = append(pl.Renderers, takeCol0(i%scc.MeshRows, i/scc.MeshRows))
		}
	}
	pl.Transfer = takeCol0(scc.MeshRows-1, 1)
	if pl.Transfer < 0 {
		return Placement{}, fmt.Errorf("core: no free column-0 core for transfer stage")
	}
	return relocateBlur(s, pl)
}

// col0Candidates enumerates column-0 cores starting from a preferred spot.
func col0Candidates(prefRow, prefPair int) []scc.CoreID {
	var out []scc.CoreID
	for dp := 0; dp < 2; dp++ {
		for dr := 0; dr < scc.MeshRows; dr++ {
			row := (prefRow + dr) % scc.MeshRows
			pair := (prefPair + dp) % 2
			out = append(out, scc.CoreID(2*int(scc.TileAt(0, row))+pair))
		}
	}
	return out
}

// relocateBlur moves blur stages to tiles in otherwise-unused voltage
// islands when the spec demands isolation (Fig. 18: raising only blur's
// frequency requires its tile to sit in a separate voltage domain).
func relocateBlur(s Spec, pl Placement) (Placement, error) {
	if !s.IsolateBlur {
		return pl, nil
	}
	used := make(map[scc.CoreID]bool)
	for _, c := range pl.Cores() {
		used[c] = true
	}
	islandBusy := make(map[int]bool)
	for c := range used {
		islandBusy[c.Island()] = true
	}
	for i := range pl.Filters {
		blur := pl.Filters[i][1]
		// Already alone in its island (besides other blurs we moved)?
		alone := true
		for c := scc.CoreID(0); c < scc.NumCores; c++ {
			if c != blur && used[c] && c.Island() == blur.Island() {
				alone = false
				break
			}
		}
		if alone {
			continue
		}
		moved := false
		for c := scc.CoreID(0); c < scc.NumCores; c++ {
			if used[c] || islandBusy[c.Island()] {
				continue
			}
			delete(used, blur)
			used[c] = true
			islandBusy[c.Island()] = true
			pl.Filters[i][1] = c
			moved = true
			break
		}
		if !moved {
			return Placement{}, fmt.Errorf("core: no free voltage island to isolate blur of pipeline %d", i)
		}
	}
	return pl, nil
}
