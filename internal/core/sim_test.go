package core

import (
	"math"
	"testing"

	"sccpipe/internal/host"
	"sccpipe/internal/render"
	"sccpipe/internal/scc"
	"sccpipe/internal/scene"
)

// testWorkload is a small, shared walkthrough for simulation tests.
var testWL = func() *Workload {
	cfg := scene.DefaultConfig()
	cfg.BlocksX, cfg.BlocksZ = 8, 8
	tree := render.BuildOctree(scene.City(cfg))
	return BuildWorkload(tree, 40, 128, 128)
}()

func testSpec() Spec {
	return Spec{Frames: 40, Width: 128, Height: 128, Pipelines: 1}
}

func simulate(t *testing.T, s Spec) SimResult {
	t.Helper()
	res, err := Simulate(s, testWL, SimOptions{})
	if err != nil {
		t.Fatalf("Simulate(%+v): %v", s, err)
	}
	return res
}

func TestSimulateProducesTime(t *testing.T) {
	res := simulate(t, testSpec())
	if res.Seconds <= 0 {
		t.Fatalf("Seconds = %g", res.Seconds)
	}
	if len(res.MemUtil) != scc.NumMemCtl {
		t.Fatalf("MemUtil size %d", len(res.MemUtil))
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := simulate(t, testSpec())
	b := simulate(t, testSpec())
	if a.Seconds != b.Seconds {
		t.Fatalf("non-deterministic: %g vs %g", a.Seconds, b.Seconds)
	}
}

func TestPipelineBeatsSingleCore(t *testing.T) {
	single, err := SimulateSingleCore(testSpec(), testWL, SingleCoreStages, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	piped := simulate(t, testSpec())
	if piped.Seconds >= single.Seconds {
		t.Fatalf("one pipeline (%g) not faster than one core (%g)", piped.Seconds, single.Seconds)
	}
	// The paper's initial speedup from pipelining alone is modest (≈1.66–1.85).
	if sp := single.Seconds / piped.Seconds; sp > 4 {
		t.Fatalf("pipelining speedup %g implausibly high", sp)
	}
}

func TestMorePipelinesHelpNRenderers(t *testing.T) {
	s := testSpec()
	s.Renderer = NRenderers
	prev := math.Inf(1)
	for k := 1; k <= 4; k++ {
		s.Pipelines = k
		sec := simulate(t, s).Seconds
		if sec > prev*1.02 {
			t.Fatalf("k=%d slower than k=%d: %g > %g", k, k-1, sec, prev)
		}
		prev = sec
	}
}

func TestOneRendererSaturates(t *testing.T) {
	// With one renderer the paper's curve flattens: k=6 barely improves
	// over k=3.
	s := testSpec()
	s.Renderer = OneRenderer
	s.Pipelines = 3
	at3 := simulate(t, s).Seconds
	s.Pipelines = 6
	at6 := simulate(t, s).Seconds
	if at6 < at3*0.85 {
		t.Fatalf("one-renderer config kept scaling: k=3 %g → k=6 %g", at3, at6)
	}
}

func TestArrangementHasNoSignificantEffect(t *testing.T) {
	// The paper's striking finding: unordered/ordered/flipped perform the
	// same. Allow a few percent.
	for _, rc := range []RendererConfig{OneRenderer, NRenderers, HostRenderer} {
		var times []float64
		for _, ar := range Arrangements {
			s := testSpec()
			s.Renderer = rc
			s.Arrangement = ar
			s.Pipelines = 3
			times = append(times, simulate(t, s).Seconds)
		}
		lo, hi := times[0], times[0]
		for _, v := range times {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if (hi-lo)/lo > 0.08 {
			t.Errorf("%v: arrangements differ by %.1f%% (%v)", rc, 100*(hi-lo)/lo, times)
		}
	}
}

func TestIdleTimesCollected(t *testing.T) {
	s := testSpec()
	s.Renderer = HostRenderer
	s.Pipelines = 3
	res := simulate(t, s)
	for _, kind := range FilterOrder {
		n := len(res.StageIdle[kind])
		// 3 pipelines × (frames−1) samples.
		if want := 3 * (s.Frames - 1); n != want {
			t.Fatalf("%v idle samples = %d, want %d", kind, n, want)
		}
		for _, v := range res.StageIdle[kind] {
			if v < 0 {
				t.Fatalf("%v negative idle %g", kind, v)
			}
		}
	}
}

func TestBlurHasLeastIdle(t *testing.T) {
	// Fig. 15: blur, the slowest stage, waits the least; scratch waits the
	// most among the early filters.
	s := testSpec()
	s.Renderer = HostRenderer
	s.Pipelines = 4
	res := simulate(t, s)
	mean := func(kind StageKind) float64 {
		vs := res.StageIdle[kind]
		sum := 0.0
		for _, v := range vs {
			sum += v
		}
		return sum / float64(len(vs))
	}
	if mean(StageBlur) >= mean(StageScratch) {
		t.Fatalf("blur idle %g not below scratch idle %g", mean(StageBlur), mean(StageScratch))
	}
}

func TestPowerTraceWithinPhysicalRange(t *testing.T) {
	s := testSpec()
	s.Renderer = NRenderers
	s.Pipelines = 4
	res := simulate(t, s)
	if len(res.Power) == 0 {
		t.Fatal("no power trace")
	}
	for _, p := range res.Power {
		if p.Watts < 22 || p.Watts > 90 {
			t.Fatalf("power sample %g W outside [22, 90]", p.Watts)
		}
	}
	if res.SCCEnergyJ <= 0 {
		t.Fatal("no energy")
	}
}

func TestHostExtraEnergyOnlyForHostRenderer(t *testing.T) {
	s := testSpec()
	if res := simulate(t, s); res.HostExtraEnergyJ != 0 {
		t.Fatal("SCC-only config reports host energy")
	}
	s.Renderer = HostRenderer
	if res := simulate(t, s); res.HostExtraEnergyJ <= 0 {
		t.Fatal("host-renderer config reports no host energy")
	}
}

func TestFastBlurSpeedsWalkthrough(t *testing.T) {
	// Fig. 16: raising only the blur cores to 800 MHz must cut the
	// walkthrough time substantially (the paper: 236 s → 174 s, −26%).
	s := testSpec()
	s.Renderer = HostRenderer
	s.IsolateBlur = true
	base := simulate(t, s).Seconds
	s.BlurFreq = scc.Freq800
	fast := simulate(t, s).Seconds
	if fast >= base {
		t.Fatalf("fast blur run (%g) not faster than base (%g)", fast, base)
	}
	imp := (base - fast) / base
	if imp < 0.10 || imp > 0.45 {
		t.Fatalf("fast-blur improvement %.0f%%, want roughly 25±15%%", imp*100)
	}
}

func TestSlowTailKeepsPerformance(t *testing.T) {
	// Fig. 16/17: downclocking the post-blur stages to 400 MHz costs almost
	// no time (paper: 174 s → 175 s) but saves power.
	s := testSpec()
	s.Renderer = HostRenderer
	s.IsolateBlur = true
	s.BlurFreq = scc.Freq800
	fast := simulate(t, s)
	s.TailFreq = scc.Freq400
	eco := simulate(t, s)
	if eco.Seconds > fast.Seconds*1.06 {
		t.Fatalf("downclocked tail run %g much slower than %g", eco.Seconds, fast.Seconds)
	}
	if eco.SCCEnergyJ >= fast.SCCEnergyJ {
		t.Fatalf("downclocked tail used more energy (%g ≥ %g)", eco.SCCEnergyJ, fast.SCCEnergyJ)
	}
}

func TestClusterMuchFasterThanSCC(t *testing.T) {
	s := testSpec()
	s.Renderer = OneRenderer
	s.Pipelines = 4
	sccTime := simulate(t, s).Seconds
	clu, err := SimulateCluster(s, testWL, host.DefaultCluster(), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if clu.Seconds >= sccTime/2 {
		t.Fatalf("cluster (%g) not well ahead of SCC (%g)", clu.Seconds, sccTime)
	}
}

func TestClusterScalesWithPipelines(t *testing.T) {
	// Needs paper-sized frames: at tiny resolutions the constant culling
	// cost dominates and masks the fill-rate scaling Fig. 13 shows.
	wl := BuildWorkload(testWL.Tree(), 20, 512, 512)
	s := Spec{Frames: 20, Width: 512, Height: 512, Pipelines: 1, Renderer: OneRenderer}
	c1, err := SimulateCluster(s, wl, host.DefaultCluster(), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Pipelines = 6
	c6, err := SimulateCluster(s, wl, host.DefaultCluster(), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Unlike the SCC's one-renderer config, the cluster keeps scaling
	// (Fig. 13 "single rend." goes 26 s → 5 s).
	if c6.Seconds > c1.Seconds*0.55 {
		t.Fatalf("cluster did not scale: k=1 %g → k=6 %g", c1.Seconds, c6.Seconds)
	}
}

func TestSingleCoreStageDecomposition(t *testing.T) {
	res, err := SimulateSingleCore(testSpec(), testWL, SingleCoreStages, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.StageSeconds {
		sum += v
	}
	if math.Abs(sum-res.Seconds) > 1e-6*res.Seconds {
		t.Fatalf("stage seconds sum %g != total %g", sum, res.Seconds)
	}
	// Blur must be the most expensive filter stage (Fig. 8).
	blur := res.StageSeconds[StageBlur]
	for _, k := range FilterOrder {
		if k != StageBlur && res.StageSeconds[k] >= blur {
			t.Fatalf("%v (%g) not below blur (%g)", k, res.StageSeconds[k], blur)
		}
	}
}

func TestSingleCoreSubsets(t *testing.T) {
	renderOnly, err := SimulateSingleCore(testSpec(), testWL, []StageKind{StageRender}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withTransfer, err := SimulateSingleCore(testSpec(), testWL, []StageKind{StageRender, StageTransfer}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := SimulateSingleCore(testSpec(), testWL, SingleCoreStages, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(renderOnly.Seconds < withTransfer.Seconds && withTransfer.Seconds < full.Seconds) {
		t.Fatalf("ordering violated: %g, %g, %g", renderOnly.Seconds, withTransfer.Seconds, full.Seconds)
	}
}

func TestSimulateRejectsMismatchedWorkload(t *testing.T) {
	s := testSpec()
	s.Width = 999
	if _, err := Simulate(s, testWL, SimOptions{}); err == nil {
		t.Fatal("mismatched workload accepted")
	}
}

func TestMemUtilNonTrivial(t *testing.T) {
	s := testSpec()
	s.Renderer = NRenderers
	s.Pipelines = 6
	res := simulate(t, s)
	total := 0.0
	for _, u := range res.MemUtil {
		if u < 0 || u > 1 {
			t.Fatalf("utilization %g out of range", u)
		}
		total += u
	}
	if total == 0 {
		t.Fatal("memory controllers unused")
	}
}

func TestBalancedBoundsPartition(t *testing.T) {
	m := DefaultCostModel()
	for _, k := range []int{1, 2, 3, 5, 7} {
		bounds := testWL.BalancedBounds(k, m)
		if len(bounds) != k {
			t.Fatalf("k=%d: %d bands", k, len(bounds))
		}
		prev := 0
		for i, b := range bounds {
			if b.Y0 != prev || b.Y1 <= b.Y0 {
				t.Fatalf("k=%d band %d = %+v (prev end %d)", k, i, b, prev)
			}
			prev = b.Y1
		}
		if prev != testWL.H {
			t.Fatalf("k=%d bands end at %d, want %d", k, prev, testWL.H)
		}
	}
}

func TestAdaptiveStripsNeverSlower(t *testing.T) {
	s := testSpec()
	s.Renderer = NRenderers
	for _, k := range []int{3, 5} {
		s.Pipelines = k
		s.AdaptiveStrips = false
		uniform := simulate(t, s).Seconds
		s.AdaptiveStrips = true
		adaptive := simulate(t, s).Seconds
		if adaptive > uniform*1.03 {
			t.Errorf("k=%d: adaptive %.3f worse than uniform %.3f", k, adaptive, uniform)
		}
	}
}

func TestAdaptiveOnlyAffectsNRenderers(t *testing.T) {
	s := testSpec()
	s.Renderer = OneRenderer
	s.Pipelines = 3
	s.AdaptiveStrips = false
	a := simulate(t, s).Seconds
	s.AdaptiveStrips = true
	b := simulate(t, s).Seconds
	if a != b {
		t.Fatalf("adaptive flag changed one-renderer run: %g vs %g", a, b)
	}
}

func TestStatsForMatchesStripStats(t *testing.T) {
	k := 3
	uniform := UniformBounds(testWL.H, k)
	a := testWL.StatsFor(uniform)
	b := testWL.StripStats(k)
	for f := 0; f < 5; f++ {
		for i := 0; i < k; i++ {
			if a[f][i] != b[f][i] {
				t.Fatalf("frame %d strip %d: %+v vs %+v", f, i, a[f][i], b[f][i])
			}
		}
	}
}

func TestJitterSpreadsIdleTimes(t *testing.T) {
	s := testSpec()
	s.Renderer = HostRenderer
	s.Pipelines = 3
	base, err := Simulate(s, testWL, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Simulate(s, testWL, SimOptions{JitterCV: 0.15, JitterSeed: 42})
	if err != nil {
		t.Fatal(err)
	}
	iqr := func(r SimResult, kind StageKind) float64 {
		vs := append([]float64(nil), r.StageIdle[kind]...)
		if len(vs) == 0 {
			return 0
		}
		lo, hi := vs[0], vs[0]
		for _, v := range vs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return hi - lo
	}
	if iqr(noisy, StageScratch) <= iqr(base, StageScratch) {
		t.Fatalf("jitter did not widen idle spread: %g vs %g",
			iqr(noisy, StageScratch), iqr(base, StageScratch))
	}
	// Total time should move only mildly.
	if math.Abs(noisy.Seconds-base.Seconds) > 0.2*base.Seconds {
		t.Fatalf("jitter changed total time too much: %g vs %g", noisy.Seconds, base.Seconds)
	}
}

func TestJitterReproducible(t *testing.T) {
	s := testSpec()
	opts := SimOptions{JitterCV: 0.1, JitterSeed: 7}
	a, err := Simulate(s, testWL, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(s, testWL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Fatalf("same seed, different results: %g vs %g", a.Seconds, b.Seconds)
	}
	c, err := Simulate(s, testWL, SimOptions{JitterCV: 0.1, JitterSeed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Seconds == a.Seconds {
		t.Fatal("different seeds gave identical jittered results")
	}
}

func TestTraceRecording(t *testing.T) {
	s := testSpec()
	s.Renderer = HostRenderer
	s.Pipelines = 2
	res, err := Simulate(s, testWL, SimOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil || len(tr.Spans) == 0 {
		t.Fatal("no trace recorded")
	}
	// Every stage instance appears.
	stages := tr.Stages()
	want := 1 + 2*len(FilterOrder) + 1 // connect + filters + transfer
	if len(stages) != want {
		t.Fatalf("stages = %v (%d), want %d", stages, len(stages), want)
	}
	// Frame completions are monotone and end at the walkthrough time.
	for f := 1; f < s.Frames; f++ {
		if tr.FrameDone[f] <= tr.FrameDone[f-1] {
			t.Fatalf("frame %d done at %g, before frame %d (%g)", f, tr.FrameDone[f], f-1, tr.FrameDone[f-1])
		}
	}
	if last := tr.FrameDone[s.Frames-1]; math.Abs(last-res.Seconds) > 1e-9 {
		t.Fatalf("last frame done %g != total %g", last, res.Seconds)
	}
	// Steady-state throughput × frames ≈ total time.
	period := tr.Throughput()
	if period <= 0 {
		t.Fatal("no throughput")
	}
	if est := period * float64(s.Frames); est < res.Seconds*0.7 || est > res.Seconds*1.3 {
		t.Fatalf("period %g × frames = %g, total %g", period, est, res.Seconds)
	}
	// Spans are well-formed and within the run.
	for _, sp := range tr.Spans {
		if sp.End <= sp.Start || sp.Start < 0 || sp.End > res.Seconds+1e-9 {
			t.Fatalf("bad span %+v", sp)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	res := simulate(t, testSpec())
	if res.Trace != nil {
		t.Fatal("trace recorded without opting in")
	}
}

func TestChannelDepthEffects(t *testing.T) {
	s := testSpec()
	s.Renderer = NRenderers
	s.Pipelines = 3
	run := func(depth int) float64 {
		res, err := Simulate(s, testWL, SimOptions{ChannelDepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	def := run(0)  // default = 1 slot
	one := run(1)  // explicit 1 slot
	deep := run(4) // more slack
	unb := run(-1) // unbounded
	if def != one {
		t.Fatalf("default depth (%g) differs from explicit 1 (%g)", def, one)
	}
	// Extra buffering must never slow the pipeline down...
	if deep > def*1.01 || unb > deep*1.01 {
		t.Fatalf("more buffering slower: 1=%g 4=%g unbounded=%g", def, deep, unb)
	}
	// ...and in steady state a single slot already suffices (throughput is
	// bottleneck-bound), so the gain is small.
	if unb < def*0.90 {
		t.Fatalf("unbounded channels gained %.1f%%; queueing model suspect",
			100*(def-unb)/def)
	}
}
