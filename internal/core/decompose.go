package core

import (
	"fmt"

	"sccpipe/internal/frame"
	"sccpipe/internal/render"
)

// Band is a horizontal strip's row range [Y0, Y1) in the full frame.
type Band struct{ Y0, Y1 int }

// Rows returns the band height.
func (b Band) Rows() int { return b.Y1 - b.Y0 }

// UniformBounds reproduces the paper's even sort-first split.
func UniformBounds(h, k int) []Band {
	out := make([]Band, k)
	for i := 0; i < k; i++ {
		y0, y1 := frame.StripBounds(h, k, i)
		out[i] = Band{y0, y1}
	}
	return out
}

// balanceProfileBands is the granularity at which render cost is profiled
// for adaptive decomposition.
const balanceProfileBands = 24

// BalancedBounds computes a cost-balanced sort-first decomposition for the
// n-renderer configuration: the frame is profiled in fine horizontal
// bands, each band's average render cost over the walkthrough is measured
// with the real culling code, and cut lines are chosen by dynamic
// programming to minimize the worst pipeline's *bottleneck* stage — the
// maximum of its render cost and its (pixel-proportional) blur cost.
// Balancing render alone would be wrong: handing the cheap sky strips more
// rows makes their blur stage the new critical path.
func (wl *Workload) BalancedBounds(k int, m CostModel) []Band {
	if k <= 1 {
		return UniformBounds(wl.H, k)
	}
	bands := balanceProfileBands
	if bands > wl.H {
		bands = wl.H
	}
	if bands < k {
		bands = k
	}
	fine := UniformBounds(wl.H, bands)
	renderW := make([]float64, bands)
	r := render.NewRenderer(wl.tree)
	// Sample frames; the profile needs the shape, not every frame.
	step := wl.Frames / 16
	if step < 1 {
		step = 1
	}
	samples := 0
	for f := 0; f < wl.Frames; f += step {
		samples++
		for i, b := range fine {
			st := r.CullOnly(wl.Cameras[f], wl.W, wl.H, b.Y0, b.Y1)
			renderW[i] += m.RenderCompute(st, b.Rows()*wl.W)
		}
	}
	for i := range renderW {
		renderW[i] /= float64(samples)
	}

	// Prefix sums for O(1) range costs.
	prefR := make([]float64, bands+1)
	prefRows := make([]int, bands+1)
	for i, b := range fine {
		prefR[i+1] = prefR[i] + renderW[i]
		prefRows[i+1] = prefRows[i] + b.Rows()
	}
	// cost of assigning bands [a, b) to one pipeline: its bottleneck stage.
	// The blur estimate carries a communication surcharge of ≈4 strip
	// payloads (receive, copy, re-read, send) at the planner's bandwidth
	// estimate; the renderer sends one.
	blurPerPixel := m.FilterCompute[StageBlur] / m.RefPixels
	const planBandwidth = 45e6 // bytes/s, matches scc.DefaultConfig
	cost := func(a, b int) float64 {
		px := float64((prefRows[b] - prefRows[a]) * wl.W)
		renderC := m.FrustumAdjust + (prefR[b] - prefR[a]) + px*4/planBandwidth
		blurC := blurPerPixel*px + 4*px*4/planBandwidth
		if blurC > renderC {
			return blurC
		}
		return renderC
	}
	// DP over (first i bands, j pipelines): minimize the max pipeline cost.
	const inf = 1e300
	f := make([][]float64, bands+1)
	cut := make([][]int, bands+1)
	for i := range f {
		f[i] = make([]float64, k+1)
		cut[i] = make([]int, k+1)
		for j := range f[i] {
			f[i][j] = inf
		}
	}
	f[0][0] = 0
	for i := 1; i <= bands; i++ {
		maxJ := i
		if maxJ > k {
			maxJ = k
		}
		for j := 1; j <= maxJ; j++ {
			for a := j - 1; a < i; a++ {
				if f[a][j-1] >= inf {
					continue
				}
				c := f[a][j-1]
				if rc := cost(a, i); rc > c {
					c = rc
				}
				if c < f[i][j] {
					f[i][j] = c
					cut[i][j] = a
				}
			}
		}
	}
	// Compare against the uniform split (mapped to band granularity): the
	// planner's cost estimate carries model error, so only deviate from
	// the paper's even split for a predicted win beyond that error. In
	// practice blur pins the pixel balance at small k and the fixed
	// frustum-adjust dominates the renderer at large k, so the even split
	// is frequently already optimal — a finding in itself.
	uniformCost := 0.0
	prev := 0
	for j := 1; j <= k; j++ {
		next := j * bands / k
		if next <= prev {
			next = prev + 1
		}
		if c := cost(prev, next); c > uniformCost {
			uniformCost = c
		}
		prev = next
	}
	if f[bands][k] > 0.85*uniformCost {
		return UniformBounds(wl.H, k)
	}
	// Recover the cuts.
	out := make([]Band, k)
	i := bands
	for j := k; j >= 1; j-- {
		a := cut[i][j]
		out[j-1] = Band{fine[a].Y0, fine[i-1].Y1}
		i = a
	}
	out[k-1].Y1 = wl.H
	return out
}

// boundsKey builds a cache key for a decomposition.
func boundsKey(bounds []Band) string {
	return fmt.Sprint(bounds)
}

// StatsFor returns per-frame per-band culling work for an arbitrary
// decomposition, cached like StripStats.
func (wl *Workload) StatsFor(bounds []Band) [][]render.CullStats {
	key := boundsKey(bounds)
	wl.mu.Lock()
	defer wl.mu.Unlock()
	if wl.custom == nil {
		wl.custom = make(map[string][][]render.CullStats)
	}
	if st, ok := wl.custom[key]; ok {
		return st
	}
	r := render.NewRenderer(wl.tree)
	st := make([][]render.CullStats, wl.Frames)
	for f := 0; f < wl.Frames; f++ {
		st[f] = make([]render.CullStats, len(bounds))
		for i, b := range bounds {
			st[f][i] = r.CullOnly(wl.Cameras[f], wl.W, wl.H, b.Y0, b.Y1)
		}
	}
	wl.custom[key] = st
	return st
}
