package core

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sccpipe/internal/filters"
	"sccpipe/internal/frame"
	"sccpipe/internal/render"
)

// ExecSpec configures a real (pixel-producing) pipeline run. It mirrors
// Spec but executes with goroutines and channels instead of the simulated
// SCC: the examples and the functional tests use it.
type ExecSpec struct {
	Frames    int
	Width     int
	Height    int
	Pipelines int
	// Renderer selects OneRenderer (one goroutine renders full frames and
	// splits them) or NRenderers (one renderer per pipeline, sort-first).
	// HostRenderer behaves like OneRenderer here: there is no separate
	// host when running natively.
	Renderer RendererConfig
	// Seed drives the scratch and flicker stages deterministically: the
	// RNG of stage s on strip i of frame f depends only on (Seed, f, i, s),
	// so parallel and sequential executions produce identical pixels.
	Seed int64
	// OrientedScratches replaces the paper's vertical-only scratch filter
	// with the arbitrary-orientation extension it suggests (§IV).
	OrientedScratches bool
}

// Validate reports whether the exec spec is runnable.
func (s ExecSpec) Validate() error {
	if s.Frames <= 0 || s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("core: bad exec spec %+v", s)
	}
	if s.Pipelines < 1 || s.Pipelines > s.Height {
		return fmt.Errorf("core: exec pipelines %d out of range", s.Pipelines)
	}
	return nil
}

// ExecResult reports a real run.
type ExecResult struct {
	Frames  int
	Elapsed time.Duration
}

// stageSeed derives a deterministic RNG seed for one stage application.
func stageSeed(seed int64, f, strip int, kind StageKind) int64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range [3]uint64{uint64(f), uint64(strip), uint64(kind)} {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
	}
	return int64(x >> 1)
}

// applyFilter runs one filter stage on a strip image.
func applyFilter(kind StageKind, img *frame.Image, spec ExecSpec, f, strip int) {
	seed := spec.Seed
	switch kind {
	case StageSepia:
		filters.Sepia(img)
	case StageBlur:
		filters.Blur(img)
	case StageScratch:
		rng := rand.New(rand.NewSource(stageSeed(seed, f, strip, kind)))
		if spec.OrientedScratches {
			filters.ScratchOriented(img, rng, filters.DefaultOrientedScratchParams())
		} else {
			filters.Scratch(img, rng)
		}
	case StageFlicker:
		filters.Flicker(img, rand.New(rand.NewSource(stageSeed(seed, f, strip, kind))))
	case StageSwap:
		filters.Swap(img)
	default:
		panic(fmt.Sprintf("core: %v is not a filter stage", kind))
	}
}

type execMsg struct {
	frame int
	strip *frame.Strip
}

// Exec runs the macro pipeline for real: frames are rendered, filtered
// strip-wise through the five stages, reassembled, and handed to sink in
// frame order. Each stage of each pipeline is one goroutine connected by
// capacity-1 channels, matching the paper's structure (and the natural
// goroutine translation of the SCC design).
func Exec(spec ExecSpec, tree *render.Octree, cams []render.Camera, sink func(f int, img *frame.Image)) (ExecResult, error) {
	if err := spec.Validate(); err != nil {
		return ExecResult{}, err
	}
	if len(cams) < spec.Frames {
		return ExecResult{}, fmt.Errorf("core: %d cameras for %d frames", len(cams), spec.Frames)
	}
	start := time.Now()
	k := spec.Pipelines

	heads := make([]chan execMsg, k)
	for i := range heads {
		heads[i] = make(chan execMsg, 1)
	}

	var wg sync.WaitGroup

	// Producers.
	switch spec.Renderer {
	case NRenderers:
		for i := 0; i < k; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(heads[i])
				r := render.NewRenderer(tree)
				y0, y1 := frame.StripBounds(spec.Height, k, i)
				for f := 0; f < spec.Frames; f++ {
					img := frame.New(spec.Width, y1-y0)
					r.RenderStrip(cams[f], img, spec.Width, spec.Height, y0)
					heads[i] <- execMsg{frame: f, strip: &frame.Strip{Index: i, Y0: y0, Img: img}}
				}
			}()
		}
	default: // OneRenderer, HostRenderer
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				for _, ch := range heads {
					close(ch)
				}
			}()
			r := render.NewRenderer(tree)
			for f := 0; f < spec.Frames; f++ {
				img := frame.New(spec.Width, spec.Height)
				r.RenderFrame(cams[f], img)
				for i, s := range frame.SplitRows(img, k) {
					heads[i] <- execMsg{frame: f, strip: s}
				}
			}
		}()
	}

	// Filter chains.
	tails := make([]chan execMsg, k)
	for i := 0; i < k; i++ {
		in := heads[i]
		for _, kind := range FilterOrder {
			kind := kind
			out := make(chan execMsg, 1)
			src := in
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(out)
				for msg := range src {
					applyFilter(kind, msg.strip.Img, spec, msg.frame, msg.strip.Index)
					out <- msg
				}
			}()
			in = out
		}
		tails[i] = in
	}

	// Transfer: gather one strip per pipeline per frame, assemble, emit.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for f := 0; f < spec.Frames; f++ {
			strips := make([]*frame.Strip, 0, k)
			for i := 0; i < k; i++ {
				msg, ok := <-tails[i]
				if !ok || msg.frame != f {
					panic(fmt.Sprintf("core: pipeline %d out of sync at frame %d", i, f))
				}
				strips = append(strips, msg.strip)
			}
			if sink != nil {
				sink(f, frame.Assemble(spec.Width, spec.Height, strips))
			}
		}
	}()

	wg.Wait()
	<-done
	return ExecResult{Frames: spec.Frames, Elapsed: time.Since(start)}, nil
}

// ExecReference computes the same strip-wise result sequentially — the
// oracle for testing that parallel pipelines do not change pixels.
func ExecReference(spec ExecSpec, tree *render.Octree, cams []render.Camera, sink func(f int, img *frame.Image)) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(cams) < spec.Frames {
		return fmt.Errorf("core: %d cameras for %d frames", len(cams), spec.Frames)
	}
	r := render.NewRenderer(tree)
	k := spec.Pipelines
	for f := 0; f < spec.Frames; f++ {
		var strips []*frame.Strip
		for i := 0; i < k; i++ {
			y0, y1 := frame.StripBounds(spec.Height, k, i)
			img := frame.New(spec.Width, y1-y0)
			r.RenderStrip(cams[f], img, spec.Width, spec.Height, y0)
			for _, kind := range FilterOrder {
				applyFilter(kind, img, spec, f, i)
			}
			strips = append(strips, &frame.Strip{Index: i, Y0: y0, Img: img})
		}
		if sink != nil {
			sink(f, frame.Assemble(spec.Width, spec.Height, strips))
		}
	}
	return nil
}
