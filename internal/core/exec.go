package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"sccpipe/internal/band"
	"sccpipe/internal/faults"
	"sccpipe/internal/filters"
	"sccpipe/internal/frame"
	"sccpipe/internal/rcache"
	"sccpipe/internal/render"
)

// ExecSpec configures a real (pixel-producing) pipeline run. It mirrors
// Spec but executes with goroutines and channels instead of the simulated
// SCC: the examples and the functional tests use it.
type ExecSpec struct {
	Frames    int
	Width     int
	Height    int
	Pipelines int
	// Renderer selects OneRenderer (one goroutine renders full frames and
	// splits them) or NRenderers (one renderer per pipeline, sort-first).
	// HostRenderer behaves like OneRenderer here: there is no separate
	// host when running natively.
	Renderer RendererConfig
	// Seed drives the scratch and flicker stages deterministically: the
	// RNG of stage s on strip i of frame f depends only on (Seed, f, i, s),
	// so parallel and sequential executions produce identical pixels.
	Seed int64
	// OrientedScratches replaces the paper's vertical-only scratch filter
	// with the arbitrary-orientation extension it suggests (§IV).
	OrientedScratches bool
	// Observer receives frame- and stage-level progress callbacks while the
	// run is in flight — the hook the serve layer uses to stream frames and
	// export live per-stage busy time.
	Observer ExecObserver
	// Pool recycles frame and strip buffers across the run. Nil selects the
	// process-shared frame.DefaultPool. Because buffers are recycled, the
	// image handed to sink is only valid for the duration of the callback —
	// see Exec.
	Pool *frame.Pool

	// Faults injects failures into the run for chaos testing, and Recovery
	// tunes the supervision that makes them survivable. Setting either
	// selects the supervised execution path (see execSupervised); with both
	// nil the original fast path runs unchanged. The supervised path always
	// renders sort-first (one render per strip, whatever Renderer says), so
	// a dead pipeline's strips can be re-rendered bit-identically on any
	// survivor, and it does not use Pool — a buffer abandoned by the stall
	// watchdog may still be written by its wedged worker, so recycling is
	// left to the GC.
	Faults   faults.Injector
	Recovery *faults.RecoveryPolicy

	// NoFuse disables plan-time stage fusion. By default adjacent per-pixel
	// stages (sepia, scratch, flicker, swap — scratch only in its vertical
	// form) collapse into a single one-read-one-write pass per strip, which
	// cuts the stage-to-stage memory traffic the paper identifies as the
	// pipeline's bound; pixels are bit-identical either way. Set NoFuse for
	// paper-faithful per-stage arrangement experiments. Ignored when Plan
	// is set: a computed plan states its fusion boundaries explicitly.
	NoFuse bool
	// Plan, when non-nil, replaces the automatic maximal-fusion stage plan
	// with a computed one (see internal/plan): explicit fusion boundaries
	// plus optional per-group and renderer band-worker counts. The plan
	// must validate against FilterOrder — see StagePlan — and because every
	// legal plan only regroups passes the fused kernel proves bit-exact,
	// pixels are byte-identical to ExecReference under any plan.
	Plan *StagePlan
	// Bands is the worker pool for intra-stage band parallelism: blur, the
	// fused point pass, and the rasterizer split each strip into
	// independent row bands over it. Nil selects the process-shared pool
	// sized from GOMAXPROCS (band.Default); band.Serial forces the
	// single-goroutine path. Output is identical for every pool.
	Bands *band.Pool
	// TileRows fixes the row height of the tiled rasterizer's binning
	// tiles; 0 lets the renderer size tiles from the strip height and band
	// parallelism. Pixels are identical for every value — tiling only
	// changes scheduling granularity.
	TileRows int

	// FrameCache, when non-nil, serves rendered (pre-filter) frames from a
	// content-addressed cache instead of rasterizing: on a hit the
	// renderer stage memcpys the cached pixels into the pooled buffer and
	// the filter chain runs on the copy, byte-identical to a cold render
	// because the renderer is deterministic in the keyed inputs. Racing
	// identical jobs single-flight through the cache (one renders, the
	// rest copy). Only the unsupervised fast path consults the cache; the
	// supervised path (Faults/Recovery) re-renders everything so recovery
	// semantics stay self-contained.
	FrameCache *rcache.Cache
	// SceneKey identifies the scene geometry inside FrameCache keys (see
	// rcache.SceneKey). Callers sharing one cache across scenes must set
	// it; with a single fixed scene zero is fine.
	SceneKey uint64
}

// ExecObserver carries optional progress callbacks for a real run. Either
// field may be nil. Callbacks are invoked from the stage goroutines while
// the pipeline is running, potentially concurrently with each other, so
// they must be safe for concurrent use and should return quickly — a slow
// observer backpressures the stage that called it.
type ExecObserver struct {
	// OnFrame fires in the transfer stage after frame f has been assembled
	// and handed to the sink (frames arrive in order).
	OnFrame func(f int)
	// OnStageBusy reports wall time one stage instance spent computing on
	// one strip (or, for the renderer and transfer, one frame). pipeline is
	// the strip/pipeline index, or -1 for the shared renderer and transfer
	// stages. A fused pass is reported under its constituent stage kinds —
	// its measured time split proportionally to the DES cost model, summing
	// exactly to the wall time — never under StageFused, so per-stage
	// profiles compare directly between fused and NoFuse runs.
	OnStageBusy func(kind StageKind, pipeline int, busy time.Duration)
	// OnRenderStats reports the work counters of one render call (one strip
	// for NRenderers, one full frame for OneRenderer, pipeline as in
	// OnStageBusy). The planner's profile recorder uses the counters to
	// decompose observed render busy time into its fixed (cull + setup +
	// bin) and per-pixel parts, so replanning prices the tiled rasterizer
	// honestly.
	OnRenderStats func(pipeline int, st render.Stats)
}

// renderStats fires the render-counter callback when set.
func (o ExecObserver) renderStats(pipeline int, st render.Stats) {
	if o.OnRenderStats != nil {
		o.OnRenderStats(pipeline, st)
	}
}

// stageBusy wraps a stage's compute step with the busy-time callback.
func (o ExecObserver) stageBusy(kind StageKind, pipeline int, fn func() error) error {
	if o.OnStageBusy == nil {
		return fn()
	}
	t0 := time.Now()
	err := fn()
	o.OnStageBusy(kind, pipeline, time.Since(t0))
	return err
}

// fusedBusy wraps a fused run's compute step, attributing the measured
// busy time across the constituent stage kinds proportionally to shares
// (the DES cost-model weights, see CostModel.FusedShares). The last
// constituent absorbs rounding so the per-kind durations sum exactly to
// the measured wall time: no time is invented, none is dropped, and no
// observer ever sees an opaque StageFused entry.
func (o ExecObserver) fusedBusy(kinds []StageKind, shares []float64, pipeline int, fn func() error) error {
	if o.OnStageBusy == nil {
		return fn()
	}
	t0 := time.Now()
	err := fn()
	busy := time.Since(t0)
	var charged time.Duration
	for j, k := range kinds {
		d := busy - charged
		if j < len(kinds)-1 {
			d = time.Duration(float64(busy) * shares[j])
		}
		o.OnStageBusy(k, pipeline, d)
		charged += d
	}
	return err
}

// Validate reports whether the exec spec is runnable.
func (s ExecSpec) Validate() error {
	if s.Frames <= 0 || s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("core: bad exec spec %+v", s)
	}
	if s.Pipelines < 1 || s.Pipelines > s.Height {
		return fmt.Errorf("core: exec pipelines %d out of range", s.Pipelines)
	}
	if err := s.Plan.Validate(s.OrientedScratches); err != nil {
		return err
	}
	return nil
}

// ExecResult reports a real run.
type ExecResult struct {
	Frames  int
	Elapsed time.Duration
	// Degraded is non-nil only when a supervised run survived pipeline
	// deaths: it names the dead pipelines and counts retries and
	// redispatched strips. Runs that recovered purely by retrying transient
	// failures (no deaths), and unsupervised runs, leave it nil; per-stage
	// retry activity is observable via RecoveryPolicy.OnEvent.
	Degraded *faults.Degraded
}

// stageSeed derives a deterministic RNG seed for one stage application.
func stageSeed(seed int64, f, strip int, kind StageKind) int64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range [3]uint64{uint64(f), uint64(strip), uint64(kind)} {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
	}
	return int64(x >> 1)
}

// applyFilter runs one filter stage on a strip image. rng is the caller's
// reusable generator: the randomized stages re-seed it from (Seed, f,
// strip, kind), so the pixels are identical to a fresh generator per
// application while a stage goroutine allocates its RNG state only once.
// bands is the intra-stage worker pool (blur splits its rows over it);
// nil or band.Serial keeps the stage single-goroutine.
func applyFilter(kind StageKind, img *frame.Image, spec ExecSpec, f, strip int, rng *rand.Rand, bands *band.Pool) error {
	switch kind {
	case StageSepia:
		filters.Sepia(img)
	case StageBlur:
		filters.BlurBands(img, bands)
	case StageScratch:
		rng.Seed(stageSeed(spec.Seed, f, strip, kind))
		if spec.OrientedScratches {
			filters.ScratchOriented(img, rng, filters.DefaultOrientedScratchParams())
		} else {
			filters.Scratch(img, rng)
		}
	case StageFlicker:
		rng.Seed(stageSeed(spec.Seed, f, strip, kind))
		filters.Flicker(img, rng)
	case StageSwap:
		filters.Swap(img)
	default:
		return fmt.Errorf("core: %v is not a filter stage", kind)
	}
	return nil
}

// execStage is one stage of the planned filter chain: a single filter, or
// a fused run of adjacent point filters executed as one memory pass.
// shares (fused stages only) split the measured busy time back across the
// constituents for observer attribution; workers > 0 gives the stage a
// dedicated band pool instead of the spec-wide one.
type execStage struct {
	kinds   []StageKind
	fusable bool
	shares  []float64
	workers int
}

func (e execStage) fused() bool { return len(e.kinds) > 1 }

func (e execStage) name() string {
	parts := make([]string, len(e.kinds))
	for i, k := range e.kinds {
		parts[i] = k.String()
	}
	return strings.Join(parts, "+")
}

// FusableKind reports whether a stage is a per-pixel (point) stage that
// can fold into a fused pass: blur's 3-row stencil cannot, and the
// oriented-scratch extension draws y-dependent strokes, so only vertical
// scratches fuse. This is the contract a computed StagePlan must respect.
func FusableKind(k StageKind, oriented bool) bool {
	switch k {
	case StageSepia, StageFlicker, StageSwap:
		return true
	case StageScratch:
		return !oriented
	}
	return false
}

func (s ExecSpec) fusableKind(k StageKind) bool { return FusableKind(k, s.OrientedScratches) }

// planStages resolves the executed stage sequence. With a computed Plan it
// lowers the plan's groups directly; otherwise it groups FilterOrder into
// maximal runs of adjacent fusable stages (unless NoFuse), everything else
// one-to-one. With the default order the auto plan is [sepia] [blur]
// [scratch+flicker+swap] — sepia stays alone because blur splits the run.
func (s ExecSpec) planStages() []execStage {
	if s.Plan != nil {
		plan := make([]execStage, 0, len(s.Plan.Groups))
		for gi, g := range s.Plan.Groups {
			est := execStage{kinds: g, fusable: len(g) > 1}
			if gi < len(s.Plan.GroupWorkers) {
				est.workers = s.Plan.GroupWorkers[gi]
			}
			plan = append(plan, est)
		}
		return attributeShares(plan)
	}
	plan := make([]execStage, 0, len(FilterOrder))
	for _, k := range FilterOrder {
		if !s.NoFuse && s.fusableKind(k) {
			if n := len(plan); n > 0 && plan[n-1].fusable {
				plan[n-1].kinds = append(plan[n-1].kinds, k)
				continue
			}
			plan = append(plan, execStage{kinds: []StageKind{k}, fusable: true})
			continue
		}
		plan = append(plan, execStage{kinds: []StageKind{k}})
	}
	return attributeShares(plan)
}

// attributeShares fills each fused stage's busy-time attribution shares
// from the DES cost model.
func attributeShares(plan []execStage) []execStage {
	m := DefaultCostModel()
	for i := range plan {
		if len(plan[i].kinds) > 1 {
			plan[i].shares = m.FusedShares(plan[i].kinds)
		}
	}
	return plan
}

// fusedRunner executes one fused run of point filters: per strip it
// re-seeds each randomized constituent's RNG stream exactly as the
// unfused stage would, draws the per-frame parameters up front, and
// applies the whole composition in a single pass over the pixels. The
// composition is golden-tested bit-identical to the sequential stages.
type fusedRunner struct {
	fz  filters.Fused
	rng *rand.Rand
}

func newFusedRunner() *fusedRunner { return &fusedRunner{rng: newStageRNG()} }

func (fr *fusedRunner) apply(kinds []StageKind, img *frame.Image, spec ExecSpec, f, strip int, bands *band.Pool) error {
	fr.fz.Reset()
	for _, k := range kinds {
		switch k {
		case StageSepia:
			fr.fz.AddSepia()
		case StageScratch:
			fr.rng.Seed(stageSeed(spec.Seed, f, strip, k))
			fr.fz.AddScratch(filters.DrawScratchParams(fr.rng, img.W))
		case StageFlicker:
			fr.rng.Seed(stageSeed(spec.Seed, f, strip, k))
			fr.fz.AddFlicker(filters.DrawFlickerDelta(fr.rng))
		case StageSwap:
			fr.fz.AddSwap()
		default:
			return fmt.Errorf("core: %v cannot fuse", k)
		}
	}
	fr.fz.ApplyBands(img, bands)
	return nil
}

// newStageRNG builds the one reusable generator a stage goroutine owns.
func newStageRNG() *rand.Rand { return rand.New(rand.NewSource(0)) }

type execMsg struct {
	frame int
	strip *frame.Strip
	// parent is set when strip is an in-place view of a pooled full frame
	// (the OneRenderer path); the transfer stage recycles it after the sink.
	parent *frame.Image
}

// Exec runs the macro pipeline for real: frames are rendered, filtered
// strip-wise through the five stages, reassembled, and handed to sink in
// frame order. Each stage of each pipeline is one goroutine connected by
// capacity-1 channels, matching the paper's structure (and the natural
// goroutine translation of the SCC design). It is ExecContext with a
// background context.
//
// Frame buffers come from spec.Pool and are recycled after each frame, so
// in steady state the run performs no per-frame pixel allocation: with one
// renderer the filter stages mutate zero-copy row views of the rendered
// frame and that same buffer reaches sink. The img passed to sink is
// therefore BORROWED — it is valid only until the callback returns and is
// then reused for a later frame. Sinks that retain pixels past the
// callback must copy them (img.Clone, or frame.Strip.Detach for strips).
func Exec(spec ExecSpec, tree *render.Octree, cams []render.Camera, sink func(f int, img *frame.Image)) (ExecResult, error) {
	return ExecContext(context.Background(), spec, tree, cams, sink)
}

// ExecContext is Exec with cancellation and full error propagation: when
// ctx is cancelled mid-walkthrough every stage goroutine stops promptly and
// ExecContext returns ctx's error; a panic in any stage (or in sink) is
// recovered and returned as an error; a desynchronized pipeline is reported
// as an error instead of a panic. No goroutines are leaked on any path.
func ExecContext(ctx context.Context, spec ExecSpec, tree *render.Octree, cams []render.Camera, sink func(f int, img *frame.Image)) (ExecResult, error) {
	if err := spec.Validate(); err != nil {
		return ExecResult{}, err
	}
	if len(cams) < spec.Frames {
		return ExecResult{}, fmt.Errorf("core: %d cameras for %d frames", len(cams), spec.Frames)
	}
	if spec.Faults != nil || spec.Recovery != nil {
		return execSupervised(ctx, spec, tree, cams, sink)
	}
	start := time.Now()
	k := spec.Pipelines
	pool := spec.Pool
	if pool == nil {
		pool = frame.DefaultPool
	}
	plan := spec.planStages()
	bands := spec.bandPool()
	renderBands := bands
	if spec.Plan != nil && spec.Plan.RenderWorkers > 0 {
		renderBands = bandPoolFor(spec.Plan.RenderWorkers)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	var wg sync.WaitGroup
	spawn := func(name string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("core: %s panicked: %v", name, r))
				}
			}()
			if err := fn(); err != nil {
				fail(err)
			}
		}()
	}
	send := func(ch chan<- execMsg, m execMsg) error {
		select {
		case ch <- m:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	recv := func(ch <-chan execMsg) (m execMsg, ok bool, err error) {
		select {
		case m, ok = <-ch:
			return m, ok, nil
		case <-ctx.Done():
			return execMsg{}, false, ctx.Err()
		}
	}

	heads := make([]chan execMsg, k)
	for i := range heads {
		heads[i] = make(chan execMsg, 1)
	}

	// Producers. On an error path the head channels stay open — downstream
	// stages are unblocked by the cancelled context, not by channel close,
	// which keeps the first error from being masked by "ended early".
	// Buffers in flight when a run is cancelled are simply not returned to
	// the pool; the GC reclaims them.
	switch spec.Renderer {
	case NRenderers:
		for i := 0; i < k; i++ {
			i := i
			spawn(fmt.Sprintf("renderer %d", i), func() error {
				r := render.NewRenderer(tree)
				r.Bands = renderBands
				r.TileRows = spec.TileRows
				y0, y1 := frame.StripBounds(spec.Height, k, i)
				for f := 0; f < spec.Frames; f++ {
					img := pool.Get(spec.Width, y1-y0)
					err := spec.Observer.stageBusy(StageRender, i, func() error {
						render := func(dst *frame.Image) error {
							spec.Observer.renderStats(i, r.RenderStrip(cams[f], dst, spec.Width, spec.Height, y0))
							return nil
						}
						if spec.FrameCache == nil {
							return render(img)
						}
						key := rcache.FrameKey(spec.SceneKey, cams[f], spec.Width, spec.Height, f, y0, y1-y0)
						_, err := spec.FrameCache.Do(key, img, render)
						return err
					})
					if err != nil {
						return err
					}
					m := execMsg{frame: f, strip: &frame.Strip{Index: i, Y0: y0, Img: img}}
					if err := send(heads[i], m); err != nil {
						return err
					}
				}
				close(heads[i])
				return nil
			})
		}
	default: // OneRenderer, HostRenderer
		spawn("renderer", func() error {
			r := render.NewRenderer(tree)
			r.Bands = renderBands
			r.TileRows = spec.TileRows
			for f := 0; f < spec.Frames; f++ {
				img := pool.Get(spec.Width, spec.Height)
				err := spec.Observer.stageBusy(StageRender, -1, func() error {
					render := func(dst *frame.Image) error {
						spec.Observer.renderStats(-1, r.RenderFrame(cams[f], dst))
						return nil
					}
					if spec.FrameCache == nil {
						return render(img)
					}
					key := rcache.FrameKey(spec.SceneKey, cams[f], spec.Width, spec.Height, f, 0, spec.Height)
					_, err := spec.FrameCache.Do(key, img, render)
					return err
				})
				if err != nil {
					return err
				}
				// Zero-copy hand-off: the strips are row-range views of
				// img, mutated in place by the filter chains. The views are
				// disjoint byte ranges, so the k pipelines never touch the
				// same byte, and the channel sends order each strip's writes
				// before the transfer stage reads them.
				strips, err := frame.SplitRowsView(img, k)
				if err != nil {
					return err
				}
				for i, s := range strips {
					if err := send(heads[i], execMsg{frame: f, strip: s, parent: img}); err != nil {
						return err
					}
				}
			}
			for _, ch := range heads {
				close(ch)
			}
			return nil
		})
	}

	// Filter chains: one goroutine per PLANNED stage — a fused run of point
	// filters occupies one goroutine and rewrites its strip in a single
	// memory pass, where the unfused chain pays a read and a write (plus
	// two channel hand-offs) per constituent.
	tails := make([]chan execMsg, k)
	for i := 0; i < k; i++ {
		i := i
		in := heads[i]
		for _, est := range plan {
			est := est
			out := make(chan execMsg, 1)
			src := in
			stageBands := bands
			if est.workers > 0 {
				stageBands = bandPoolFor(est.workers)
			}
			spawn(fmt.Sprintf("filter %s.%d", est.name(), i), func() error {
				rng := newStageRNG()
				var fr *fusedRunner
				if est.fused() {
					fr = &fusedRunner{rng: rng}
				}
				for {
					msg, ok, err := recv(src)
					if err != nil {
						return err
					}
					if !ok {
						close(out)
						return nil
					}
					var stageErr error
					if est.fused() {
						stageErr = spec.Observer.fusedBusy(est.kinds, est.shares, i, func() error {
							return fr.apply(est.kinds, msg.strip.Img, spec, msg.frame, msg.strip.Index, stageBands)
						})
					} else {
						kind := est.kinds[0]
						stageErr = spec.Observer.stageBusy(kind, i, func() error {
							return applyFilter(kind, msg.strip.Img, spec, msg.frame, msg.strip.Index, rng, stageBands)
						})
					}
					if stageErr != nil {
						return stageErr
					}
					if err := send(out, msg); err != nil {
						return err
					}
				}
			})
			in = out
		}
		tails[i] = in
	}

	// Transfer: gather one strip per pipeline per frame, emit, recycle.
	// When every strip is a view of the same pooled frame (OneRenderer) the
	// frame is already assembled in place and goes to the sink as-is; the
	// NRenderers path gathers the pooled strip buffers into one pooled
	// frame. Either way the emitted buffer returns to the pool after sink.
	spawn("transfer", func() error {
		strips := make([]*frame.Strip, 0, k)
		for f := 0; f < spec.Frames; f++ {
			strips = strips[:0]
			var parent *frame.Image
			shared := true
			for i := 0; i < k; i++ {
				msg, ok, err := recv(tails[i])
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("core: pipeline %d ended early at frame %d", i, f)
				}
				if msg.frame != f {
					return fmt.Errorf("core: pipeline %d out of sync at frame %d (got frame %d)", i, f, msg.frame)
				}
				if i == 0 {
					parent = msg.parent
				} else if msg.parent != parent {
					shared = false
				}
				strips = append(strips, msg.strip)
			}
			out := parent
			if !shared || parent == nil {
				out = pool.Get(spec.Width, spec.Height)
				frame.AssembleInto(out, strips)
			}
			_ = spec.Observer.stageBusy(StageTransfer, -1, func() error {
				if sink != nil {
					sink(f, out)
				}
				return nil
			})
			if spec.Observer.OnFrame != nil {
				spec.Observer.OnFrame(f)
			}
			for _, s := range strips {
				if s.Parent() == nil && s.Img != out {
					pool.Put(s.Img)
				}
			}
			pool.Put(out)
		}
		return nil
	})

	wg.Wait()
	if firstErr != nil {
		return ExecResult{}, firstErr
	}
	return ExecResult{Frames: spec.Frames, Elapsed: time.Since(start)}, nil
}

// ExecReference computes the same strip-wise result sequentially — the
// oracle for testing that parallel pipelines do not change pixels. It
// always runs the plain per-stage filters on a single goroutine (no
// fusion, no band parallelism), so it is the fixed point the fused and
// banded paths are verified against. Like ExecContext it recovers panics
// (e.g. from sink) into errors.
func ExecReference(spec ExecSpec, tree *render.Octree, cams []render.Camera, sink func(f int, img *frame.Image)) (err error) {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(cams) < spec.Frames {
		return fmt.Errorf("core: %d cameras for %d frames", len(cams), spec.Frames)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: reference run panicked: %v", r)
		}
	}()
	r := render.NewRenderer(tree)
	r.Mode = render.RasterSerial // the oracle stays single-goroutine by construction
	rng := newStageRNG()
	k := spec.Pipelines
	for f := 0; f < spec.Frames; f++ {
		var strips []*frame.Strip
		for i := 0; i < k; i++ {
			y0, y1 := frame.StripBounds(spec.Height, k, i)
			img := frame.New(spec.Width, y1-y0)
			r.RenderStrip(cams[f], img, spec.Width, spec.Height, y0)
			for _, kind := range FilterOrder {
				if err := applyFilter(kind, img, spec, f, i, rng, band.Serial); err != nil {
					return err
				}
			}
			strips = append(strips, &frame.Strip{Index: i, Y0: y0, Img: img})
		}
		if sink != nil {
			sink(f, frame.Assemble(spec.Width, spec.Height, strips))
		}
	}
	return nil
}
