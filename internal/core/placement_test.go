package core

import (
	"testing"

	"sccpipe/internal/scc"
)

func allSpecs(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, rc := range []RendererConfig{OneRenderer, NRenderers, HostRenderer} {
		for _, ar := range Arrangements {
			for k := 1; k <= MaxPipelines(rc); k++ {
				s := DefaultSpec()
				s.Renderer = rc
				s.Arrangement = ar
				s.Pipelines = k
				specs = append(specs, s)
			}
		}
	}
	return specs
}

func TestPlaceNoDuplicatesAnywhere(t *testing.T) {
	for _, s := range allSpecs(t) {
		pl, err := Place(s)
		if err != nil {
			t.Fatalf("%v/%v/k=%d: %v", s.Renderer, s.Arrangement, s.Pipelines, err)
		}
		want := s.Pipelines * len(FilterOrder) // filters
		switch s.Renderer {
		case OneRenderer:
			want += 2 // render + transfer
		case NRenderers:
			want += s.Pipelines + 1
		case HostRenderer:
			want += 2 // connect + transfer
		}
		cores := pl.Cores()
		if len(cores) != want {
			t.Fatalf("%v/%v/k=%d: %d distinct cores, want %d (collision?)",
				s.Renderer, s.Arrangement, s.Pipelines, len(cores), want)
		}
		for _, c := range cores {
			if !c.Valid() {
				t.Fatalf("%v/%v/k=%d: invalid core %d", s.Renderer, s.Arrangement, s.Pipelines, c)
			}
		}
	}
}

func TestOrderedPipelinesFollowRows(t *testing.T) {
	s := DefaultSpec()
	s.Arrangement = Ordered
	s.Pipelines = 4
	pl, err := Place(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, stages := range pl.Filters {
		_, row0 := stages[0].XY()
		for j, c := range stages {
			x, y := c.XY()
			if y != row0 {
				t.Fatalf("pipeline %d stage %d leaves its row", i, j)
			}
			if x != j+1 {
				t.Fatalf("pipeline %d stage %d at column %d, want %d", i, j, x, j+1)
			}
		}
	}
}

func TestFlippedReversesOddPipelines(t *testing.T) {
	s := DefaultSpec()
	s.Arrangement = Flipped
	s.Pipelines = 2
	pl, err := Place(s)
	if err != nil {
		t.Fatal(err)
	}
	x0, _ := pl.Filters[0][0].XY()
	xLast0, _ := pl.Filters[0][len(FilterOrder)-1].XY()
	if x0 >= xLast0 {
		t.Fatalf("even pipeline should flow left to right: %d..%d", x0, xLast0)
	}
	x1, _ := pl.Filters[1][0].XY()
	xLast1, _ := pl.Filters[1][len(FilterOrder)-1].XY()
	if x1 <= xLast1 {
		t.Fatalf("odd pipeline should flow right to left: %d..%d", x1, xLast1)
	}
}

func TestUnorderedIsSequential(t *testing.T) {
	s := DefaultSpec()
	s.Arrangement = Unordered
	s.Renderer = NRenderers
	s.Pipelines = 3
	pl, err := Place(s)
	if err != nil {
		t.Fatal(err)
	}
	// Renderers first, then filters back to back, then transfer.
	expect := scc.CoreID(0)
	for _, c := range pl.Renderers {
		if c != expect {
			t.Fatalf("renderer at %d, want %d", c, expect)
		}
		expect++
	}
	for _, p := range pl.Filters {
		for _, c := range p {
			if c != expect {
				t.Fatalf("filter at %d, want %d", c, expect)
			}
			expect++
		}
	}
	if pl.Transfer != expect {
		t.Fatalf("transfer at %d, want %d", pl.Transfer, expect)
	}
}

func TestIsolateBlurGetsOwnIsland(t *testing.T) {
	for _, ar := range Arrangements {
		s := DefaultSpec()
		s.Arrangement = ar
		s.Renderer = HostRenderer
		s.Pipelines = 1
		s.IsolateBlur = true
		pl, err := Place(s)
		if err != nil {
			t.Fatalf("%v: %v", ar, err)
		}
		blur := pl.Filters[0][1]
		for _, c := range pl.Cores() {
			if c != blur && c.Island() == blur.Island() {
				t.Fatalf("%v: core %d shares island %d with blur core %d", ar, c, blur.Island(), blur)
			}
		}
	}
}

func TestPlaceRejectsTooManyPipelines(t *testing.T) {
	s := DefaultSpec()
	s.Renderer = NRenderers
	s.Pipelines = MaxPipelines(NRenderers) + 1
	if _, err := Place(s); err == nil {
		t.Fatal("oversized spec accepted")
	}
}

func TestBlurAndTailCores(t *testing.T) {
	s := DefaultSpec()
	s.Pipelines = 3
	s.Renderer = NRenderers
	pl, err := Place(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pl.BlurCores()); got != 3 {
		t.Fatalf("blur cores = %d, want 3", got)
	}
	// 3 pipelines × (scratch, flicker, swap) + transfer.
	if got := len(pl.TailCores()); got != 10 {
		t.Fatalf("tail cores = %d, want 10", got)
	}
}

func TestSpecValidate(t *testing.T) {
	good := DefaultSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []Spec{
		{Frames: 0, Width: 10, Height: 10, Pipelines: 1},
		{Frames: 1, Width: 0, Height: 10, Pipelines: 1},
		{Frames: 1, Width: 10, Height: 10, Pipelines: 0},
		{Frames: 1, Width: 10, Height: 4, Pipelines: 5},
		{Frames: 1, Width: 10, Height: 10, Pipelines: 9, Renderer: NRenderers},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, s)
		}
	}
}
