package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"sccpipe/internal/faults"
	"sccpipe/internal/frame"
	"sccpipe/internal/render"
)

// busyProfile collects OnStageBusy reports by kind, concurrency-safe.
type busyProfile struct {
	mu   sync.Mutex
	busy map[StageKind]time.Duration
}

func newBusyProfile() *busyProfile {
	return &busyProfile{busy: make(map[StageKind]time.Duration)}
}

func (p *busyProfile) observer() ExecObserver {
	return ExecObserver{OnStageBusy: func(kind StageKind, _ int, busy time.Duration) {
		p.mu.Lock()
		p.busy[kind] += busy
		p.mu.Unlock()
	}}
}

// TestFusedBusyAttribution is the regression test for the fused-stage
// accounting bug: a fused run used to report its busy time under the
// opaque StageFused label, so per-stage profiles (and the serve metrics
// built on them) lost the covered stages entirely and could not be
// compared against NoFuse runs. Now a fused pass must be attributed across
// its constituent kinds: the fused profile exposes exactly the same stage
// set as the unfused one, and never StageFused.
func TestFusedBusyAttribution(t *testing.T) {
	cams := render.Walkthrough(6, execScene.Bounds())
	wantKinds := []StageKind{StageRender, StageSepia, StageBlur, StageScratch, StageFlicker, StageSwap, StageTransfer}

	run := func(noFuse, supervised bool) *busyProfile {
		t.Helper()
		spec := execSpecForTest(2, OneRenderer)
		spec.NoFuse = noFuse
		prof := newBusyProfile()
		spec.Observer = prof.observer()
		if supervised {
			spec.Recovery = &faults.RecoveryPolicy{}
		}
		if _, err := Exec(spec, execScene, cams, func(int, *frame.Image) {}); err != nil {
			t.Fatal(err)
		}
		return prof
	}

	for _, supervised := range []bool{false, true} {
		fused := run(false, supervised)
		unfused := run(true, supervised)
		for _, prof := range []*busyProfile{fused, unfused} {
			if d, ok := prof.busy[StageFused]; ok {
				t.Fatalf("supervised=%v: observer saw StageFused (%v); fused busy must be attributed to the covered stages", supervised, d)
			}
			for _, k := range wantKinds {
				if prof.busy[k] <= 0 {
					t.Errorf("supervised=%v: stage %v missing from profile %v", supervised, k, prof.busy)
				}
			}
			if len(prof.busy) != len(wantKinds) {
				t.Errorf("supervised=%v: profile has kinds %v, want exactly %v", supervised, prof.busy, wantKinds)
			}
		}
	}
}

// TestFusedBusySplitsExactly checks the attribution arithmetic: the
// durations handed to the observer for one fused pass sum exactly to the
// measured wall time (the last constituent absorbs rounding), and follow
// the cost-model proportions.
func TestFusedBusySplitsExactly(t *testing.T) {
	kinds := []StageKind{StageScratch, StageFlicker, StageSwap}
	shares := DefaultCostModel().FusedShares(kinds)

	var got []time.Duration
	obs := ExecObserver{OnStageBusy: func(_ StageKind, _ int, busy time.Duration) {
		got = append(got, busy)
	}}
	if err := obs.fusedBusy(kinds, shares, 0, func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(kinds) {
		t.Fatalf("got %d reports, want %d", len(got), len(kinds))
	}
	var sum time.Duration
	for _, d := range got {
		if d < 0 {
			t.Fatalf("negative attributed duration %v in %v", d, got)
		}
		sum += d
	}
	// The parts reassemble the single measurement, so their sum covers at
	// least the slept wall time — nothing was dropped in the split.
	if sum < 2*time.Millisecond {
		t.Fatalf("attributed durations %v sum to %v, less than the 2ms measured", got, sum)
	}
	for i := 0; i < len(kinds)-1; i++ {
		frac := float64(got[i]) / float64(sum)
		if math.Abs(frac-shares[i]) > 0.02 {
			t.Errorf("constituent %v got fraction %.3f, want share %.3f", kinds[i], frac, shares[i])
		}
	}
}

func TestFusedShares(t *testing.T) {
	m := DefaultCostModel()
	kinds := []StageKind{StageScratch, StageFlicker, StageSwap}
	shares := m.FusedShares(kinds)
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares %v sum to %v, want 1", shares, sum)
	}
	// Proportionality to the model weights.
	want := m.FilterCompute[StageScratch] / (m.FilterCompute[StageScratch] + m.FilterCompute[StageFlicker] + m.FilterCompute[StageSwap])
	if math.Abs(shares[0]-want) > 1e-12 {
		t.Fatalf("scratch share %v, want %v", shares[0], want)
	}
}
