package core

import (
	"testing"

	"sccpipe/internal/frame"
	"sccpipe/internal/rcache"
	"sccpipe/internal/render"
)

// collectCached runs spec through ExecContext with the given cache and
// returns cloned frames.
func collectCached(t *testing.T, spec ExecSpec, cache *rcache.Cache) []*frame.Image {
	t.Helper()
	spec.FrameCache = cache
	spec.SceneKey = 0xc0ffee
	cams := render.Walkthrough(spec.Frames, execScene.Bounds())
	out := make([]*frame.Image, spec.Frames)
	sink := func(f int, img *frame.Image) { out[f] = img.Clone() }
	if _, err := Exec(spec, execScene, cams, sink); err != nil {
		t.Fatal(err)
	}
	for f, img := range out {
		if img == nil {
			t.Fatalf("frame %d missing", f)
		}
	}
	return out
}

// TestCacheHitMatchesColdRender is the cache golden test: a warm run must
// be served entirely from the cache and stay byte-identical to the
// sequential reference, across renderer configs, pipeline counts, and
// tile modes. Run under -race via `make race`, this also exercises
// concurrent Do calls from the NRenderers strip producers.
func TestCacheHitMatchesColdRender(t *testing.T) {
	for _, rc := range []RendererConfig{OneRenderer, NRenderers} {
		for _, k := range []int{1, 3} {
			for _, tileRows := range []int{0, 8} {
				spec := execSpecForTest(k, rc)
				spec.TileRows = tileRows
				want := collect(t, spec, false) // sequential oracle, no cache

				cache := rcache.New(64 << 20)
				cold := collectCached(t, spec, cache)
				st := cache.Stats()
				if st.Hits != 0 || st.Misses == 0 {
					t.Fatalf("%v k=%d tile=%d cold stats %+v", rc, k, tileRows, st)
				}
				warm := collectCached(t, spec, cache)
				st = cache.Stats()
				// Every render in the warm run must be a hit: misses did not
				// move, hits count one per render call.
				if st.Hits != st.Misses {
					t.Fatalf("%v k=%d tile=%d warm run not fully cached: %+v", rc, k, tileRows, st)
				}
				for f := range want {
					if !cold[f].Equal(want[f]) {
						t.Fatalf("%v k=%d tile=%d cold frame %d differs from reference", rc, k, tileRows, f)
					}
					if !warm[f].Equal(want[f]) {
						t.Fatalf("%v k=%d tile=%d cache-hit frame %d differs from reference", rc, k, tileRows, f)
					}
				}
			}
		}
	}
}

// TestCacheSharedAcrossTileModes: tiling only changes scheduling, never
// pixels, so runs differing in TileRows share cache entries — the second
// tile mode must hit entries the first one populated.
func TestCacheSharedAcrossTileModes(t *testing.T) {
	cache := rcache.New(64 << 20)
	spec := execSpecForTest(2, OneRenderer)
	spec.TileRows = 0
	a := collectCached(t, spec, cache)
	misses := cache.Stats().Misses
	spec.TileRows = 8
	b := collectCached(t, spec, cache)
	st := cache.Stats()
	if st.Misses != misses {
		t.Fatalf("tile-mode change caused new renders: %+v", st)
	}
	for f := range a {
		if !a[f].Equal(b[f]) {
			t.Fatalf("frame %d differs across tile modes", f)
		}
	}
}

// TestCacheDistinctSeedsShareFrames: the job seed only drives post-render
// filter stages, so jobs differing in seed share rendered frames but
// still produce different final pixels.
func TestCacheDistinctSeedsShareFrames(t *testing.T) {
	cache := rcache.New(64 << 20)
	spec := execSpecForTest(2, NRenderers)
	a := collectCached(t, spec, cache)
	misses := cache.Stats().Misses
	spec.Seed = spec.Seed + 1
	b := collectCached(t, spec, cache)
	st := cache.Stats()
	if st.Misses != misses {
		t.Fatalf("seed change re-rendered frames: %+v", st)
	}
	// The filter output must still differ (scratch/flicker are seeded).
	same := true
	for f := range a {
		if !a[f].Equal(b[f]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical filtered frames")
	}
	// And each run still matches its own sequential reference.
	specB := spec
	want := collect(t, specB, false)
	for f := range want {
		if !b[f].Equal(want[f]) {
			t.Fatalf("seed-varied cached frame %d differs from reference", f)
		}
	}
}
