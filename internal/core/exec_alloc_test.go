package core

import (
	"runtime"
	"runtime/debug"
	"testing"

	"sccpipe/internal/frame"
	"sccpipe/internal/render"
)

// The pooled runtime must not pay per-frame pixel traffic: once the pool is
// warm, each additional frame costs a handful of strip headers, not fresh
// frame buffers. Measured as the marginal cost between a short and a long
// run sharing one pool (goroutine spawns and renderer setup cancel out).
// GC is paused so a collection can't empty the sync.Pool mid-measurement.
func TestExecSteadyStatePerFrameAllocs(t *testing.T) {
	for _, rc := range []RendererConfig{OneRenderer, NRenderers} {
		pool := frame.NewPool()
		run := func(frames int) (mallocs, bytes uint64) {
			spec := ExecSpec{
				Frames: frames, Width: 96, Height: 72,
				Pipelines: 3, Renderer: rc, Seed: 7, Pool: pool,
			}
			cams := render.Walkthrough(frames, execScene.Bounds())
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			if _, err := Exec(spec, execScene, cams, func(int, *frame.Image) {}); err != nil {
				t.Fatal(err)
			}
			runtime.ReadMemStats(&after)
			return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
		}
		run(4) // warm the pool and every per-run structure
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		m1, b1 := run(4)
		m2, b2 := run(24)
		perFrameAllocs := float64(m2-m1) / 20
		perFrameBytes := float64(b2-b1) / 20
		t.Logf("%v: %.1f allocs/frame, %.0f B/frame marginal", rc, perFrameAllocs, perFrameBytes)
		// A 96×72 frame alone is 27 KB; the unpooled runtime allocated
		// several of them (plus render scratch) per frame. Steady state
		// must stay well under one frame buffer per frame. The byte bound
		// leaves headroom for the race detector, whose instrumentation
		// roughly doubles the header/closure allocation sizes.
		if perFrameAllocs > 64 {
			t.Errorf("%v: %.1f allocs per frame in steady state", rc, perFrameAllocs)
		}
		if perFrameBytes > 32*1024 {
			t.Errorf("%v: %.0f bytes per frame in steady state", rc, perFrameBytes)
		}
	}
}
