package core

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"sccpipe/internal/frame"
	"sccpipe/internal/pipe"
	"sccpipe/internal/render"
)

// This file implements the supervised (fault-injecting, self-healing)
// variant of ExecContext by lowering the image pipeline onto pipe.Chain's
// supervised runtime: one work item per (frame, strip), a render stage
// followed by the five filters, and a collector that reassembles strips
// into frames and hands them to the sink in frame order exactly once.
//
// Redo safety comes from determinism: a strip is fully described by its
// (frame, strip index) pair — RenderStrip regenerates identical pixels for
// any carrier, and the randomized filters seed their RNG from (Seed,
// frame, strip, stage) — so when a pipeline dies, its in-flight strips are
// simply re-derived from scratch on a survivor and the output stays
// bit-identical to ExecReference.

// stripWork is one supervised work unit: strip `strip` of frame `f`. The
// image is nil until the render stage runs; the as-fed snapshot the
// supervisor keeps for redo therefore carries no pixels, and a redone
// strip re-renders rather than re-filtering a half-filtered buffer.
type stripWork struct {
	f, strip int
	img      *frame.Image
}

// execSupervised runs the pipeline under fault injection and supervision.
// Strips are always rendered sort-first and buffers are GC-managed; see
// ExecSpec.Faults for why.
func execSupervised(ctx context.Context, spec ExecSpec, tree *render.Octree, cams []render.Camera, sink func(f int, img *frame.Image)) (ExecResult, error) {
	start := time.Now()
	k := spec.Pipelines

	// Stage closures are shared by all k pipelines' goroutines (and by
	// watchdog redo helpers), so per-goroutine scratch state lives in
	// pools.
	bands := spec.bandPool()
	renderers := sync.Pool{New: func() any {
		r := render.NewRenderer(tree)
		r.Bands = bands
		r.TileRows = spec.TileRows
		return r
	}}
	rngs := sync.Pool{New: func() any { return newStageRNG() }}
	fusedRunners := sync.Pool{New: func() any { return newFusedRunner() }}

	// The supervised chain runs the same fusion plan as the fast path: a
	// fused run becomes ONE pipe stage whose Covers lists the constituent
	// names, so chaos plans targeting a fused-away stage still fire (the
	// pipe runtime consults every covered name's fault rules). Redo safety
	// is unchanged: a redone strip re-renders and the fused stage re-draws
	// its RNG params from (Seed, frame, strip, stage), re-fusing
	// deterministically.
	plan := spec.planStages()
	stages := make([]pipe.Stage, 0, 1+len(plan))
	stages = append(stages, pipe.Stage{
		Name: StageRender.String(),
		Fn: func(it pipe.Item) pipe.Item {
			w := it.Data.(stripWork)
			y0, y1 := frame.StripBounds(spec.Height, k, w.strip)
			img := frame.New(spec.Width, y1-y0)
			r := renderers.Get().(*render.Renderer)
			_ = spec.Observer.stageBusy(StageRender, w.strip, func() error {
				spec.Observer.renderStats(w.strip, r.RenderStrip(cams[w.f], img, spec.Width, spec.Height, y0))
				return nil
			})
			renderers.Put(r)
			w.img = img
			it.Data = w
			return it
		},
	})
	for _, est := range plan {
		est := est
		stageBands := bands
		if est.workers > 0 {
			stageBands = bandPoolFor(est.workers)
		}
		if est.fused() {
			covers := make([]string, len(est.kinds))
			for i, k := range est.kinds {
				covers[i] = k.String()
			}
			stages = append(stages, pipe.Stage{
				Name:   est.name(),
				Covers: covers,
				Fn: func(it pipe.Item) pipe.Item {
					w := it.Data.(stripWork)
					fr := fusedRunners.Get().(*fusedRunner)
					_ = spec.Observer.fusedBusy(est.kinds, est.shares, w.strip, func() error {
						return fr.apply(est.kinds, w.img, spec, w.f, w.strip, stageBands)
					})
					fusedRunners.Put(fr)
					return it
				},
			})
			continue
		}
		kind := est.kinds[0]
		stages = append(stages, pipe.Stage{
			Name: kind.String(),
			Fn: func(it pipe.Item) pipe.Item {
				w := it.Data.(stripWork)
				rng := rngs.Get().(*rand.Rand)
				// The observer sees the strip index as the pipeline, which
				// is the origin pipeline even when a survivor carries the
				// strip after a death.
				_ = spec.Observer.stageBusy(kind, w.strip, func() error {
					return applyFilter(kind, w.img, spec, w.f, w.strip, rng, stageBands)
				})
				rngs.Put(rng)
				return it
			},
		})
	}

	// The collector runs serially in the supervisor: it gathers the k
	// strips of each frame (each delivered exactly once, in any order
	// after a redistribution) and emits completed frames in frame order.
	pending := make(map[int][]*frame.Strip)
	assembled := make(map[int]*frame.Image)
	next := 0
	emit := func(f int, img *frame.Image) {
		_ = spec.Observer.stageBusy(StageTransfer, -1, func() error {
			if sink != nil {
				sink(f, img)
			}
			return nil
		})
		if spec.Observer.OnFrame != nil {
			spec.Observer.OnFrame(f)
		}
	}

	chain := &pipe.Chain{
		Stages: stages,
		Feed: func(pl, seq int) (pipe.Item, bool) {
			if seq >= spec.Frames {
				return pipe.Item{}, false
			}
			y0, y1 := frame.StripBounds(spec.Height, k, pl)
			return pipe.Item{Data: stripWork{f: seq, strip: pl}, Bytes: spec.Width * (y1 - y0) * 4}, true
		},
		Collect: func(it pipe.Item) {
			w := it.Data.(stripWork)
			y0, _ := frame.StripBounds(spec.Height, k, w.strip)
			strips := append(pending[w.f], &frame.Strip{Index: w.strip, Y0: y0, Img: w.img})
			if len(strips) < k {
				pending[w.f] = strips
				return
			}
			delete(pending, w.f)
			assembled[w.f] = frame.Assemble(spec.Width, spec.Height, strips)
			for {
				img, ok := assembled[next]
				if !ok {
					return
				}
				delete(assembled, next)
				emit(next, img)
				next++
			}
		},
		Faults:   spec.Faults,
		Recovery: spec.Recovery,
	}

	res, err := chain.RunContext(ctx, k)
	if err != nil {
		return ExecResult{}, err
	}
	return ExecResult{Frames: spec.Frames, Elapsed: time.Since(start), Degraded: res.Degraded}, nil
}
