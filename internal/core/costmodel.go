package core

import (
	"sccpipe/internal/render"
	"sccpipe/internal/scc"
)

// CostModel converts stage work into 533 MHz-reference compute seconds and
// memory-traffic byte counts. The constants are calibrated so that the
// single-core stage profile reproduces the paper's Fig. 8 decomposition
// (render ≈ 94 s, render+transfer ≈ 104 s, all stages ≈ 382 s over the
// 400-frame walkthrough at 512×512) and so the pipeline sweeps land on the
// paper's Table I shapes. See EXPERIMENTS.md for the calibration trail.
type CostModel struct {
	// RefPixels is the full-frame pixel count the per-frame constants are
	// expressed against; costs scale linearly with actual pixels.
	RefPixels float64

	// Render stage: compute = CullPerNode·nodes + TriSetup·tris +
	// FillPerPixel·pixels.
	CullPerNode  float64
	TriSetup     float64
	FillPerPixel float64
	// BinPerTri is the tiled rasterizer's per-bin-insertion cost (one
	// append per tile a set-up triangle overlaps).
	BinPerTri float64
	// FrustumAdjust is the extra per-frame computation each renderer pays
	// in the n-renderer configuration (§V: "additional computation is
	// necessary to adjust the viewing frustum").
	FrustumAdjust float64

	// FilterCompute is each filter's full-frame compute seconds.
	FilterCompute [numStageKinds]float64

	// AssembleCompute is the transfer stage's per-full-frame compute.
	AssembleCompute float64
	// ConnectCompute is the connect stage's per-full-frame compute.
	ConnectCompute float64
	// HostRenderPerFrame is the MCPC's per-frame render time (the paper:
	// 400 frames in ≈3.3 s on the Xeon).
	HostRenderPerFrame float64
}

// DefaultCostModel returns the calibrated model.
func DefaultCostModel() CostModel {
	m := CostModel{
		RefPixels:          512 * 512,
		CullPerNode:        18e-6, // recursive octree traversal, cache hostile
		TriSetup:           2e-6,  // per-triangle transform/setup
		FillPerPixel:       0.82e-6,
		BinPerTri:          0.05e-6, // one slice append per overlapped tile
		FrustumAdjust:      0.100,
		AssembleCompute:    0.002,
		ConnectCompute:     0.002,
		HostRenderPerFrame: 3.3 / 400,
	}
	m.FilterCompute[StageSepia] = 0.030
	m.FilterCompute[StageBlur] = 0.380
	m.FilterCompute[StageScratch] = 0.023
	m.FilterCompute[StageFlicker] = 0.022
	m.FilterCompute[StageSwap] = 0.028
	return m
}

// RenderCompute returns the reference compute seconds for a render pass
// with the given culling stats over the given pixel area.
func (m CostModel) RenderCompute(st render.CullStats, pixels int) float64 {
	return m.CullPerNode*float64(st.NodesVisited) +
		m.TriSetup*float64(st.TrisAccepted) +
		m.FillPerPixel*float64(pixels)
}

// RenderComputeTiled prices a render pass from the tiled rasterizer's
// measured counters: setup happens once per surviving screen triangle
// (TrisSetup, after clipping — not once per band as the replay path paid),
// plus the binning pass, plus the per-pixel fill.
func (m CostModel) RenderComputeTiled(st render.Stats, pixels int) float64 {
	return m.CullPerNode*float64(st.NodesVisited) +
		m.TriSetup*float64(st.TrisSetup) +
		m.BinPerTri*float64(st.TrisBinned) +
		m.FillPerPixel*float64(pixels)
}

// RenderFixedWork weighs the serial, once-per-strip part of a render —
// cull traversal, triangle setup, binning — in model seconds. The planner
// splits observed render busy time between this and RenderScaledWork to
// decompose a measurement into its non-parallelizable and band-parallel
// parts.
func (m CostModel) RenderFixedWork(st render.Stats) float64 {
	tris := st.TrisSetup
	if tris == 0 {
		// Serial/replay path: setup is paid per accepted triangle.
		tris = st.TrisAccepted
	}
	return m.CullPerNode*float64(st.NodesVisited) +
		m.TriSetup*float64(tris) +
		m.BinPerTri*float64(st.TrisBinned)
}

// RenderScaledWork weighs the per-pixel part of a render that distributes
// across band workers; Candidates counts the pixels the span loops
// actually visited.
func (m CostModel) RenderScaledWork(st render.Stats) float64 {
	return m.FillPerPixel * float64(st.Candidates)
}

// FilterComputeFor returns the reference compute seconds of a filter stage
// over the given pixel area.
func (m CostModel) FilterComputeFor(kind StageKind, pixels int) float64 {
	return m.FilterCompute[kind] * float64(pixels) / m.RefPixels
}

// FusedComputeFor returns the reference compute seconds of a fused run of
// point filters over the given pixel area: the constituents' compute
// still sums (every pixel operation happens), but the strip is read and
// written once for the whole run instead of once per stage — the memory
// side shows up as eliminated hand-offs, not here.
func (m CostModel) FusedComputeFor(kinds []StageKind, pixels int) float64 {
	var s float64
	for _, k := range kinds {
		s += m.FilterCompute[k]
	}
	return s * float64(pixels) / m.RefPixels
}

// FusedShares returns each constituent's fraction of a fused run's busy
// time, proportional to the model's per-stage compute weights. The shares
// sum to 1 (the caller hands the last constituent the unattributed
// remainder so the split is exact); a degenerate all-zero weighting falls
// back to an even split. This is how ExecObserver attributes one fused
// measurement back to the real stages.
func (m CostModel) FusedShares(kinds []StageKind) []float64 {
	shares := make([]float64, len(kinds))
	var total float64
	for _, k := range kinds {
		total += m.FilterCompute[k]
	}
	if total <= 0 {
		for i := range shares {
			shares[i] = 1 / float64(len(kinds))
		}
		return shares
	}
	for i, k := range kinds {
		shares[i] = m.FilterCompute[k] / total
	}
	return shares
}

// FilterExtraBytes returns a filter stage's memory traffic beyond the
// receive-read and send-write of its strip. Only blur needs a second
// buffer (§IV): it writes a working copy and, if the strip exceeds the
// 256 KiB L2, must stream it back from memory.
func (m CostModel) FilterExtraBytes(kind StageKind, stripBytes int) int {
	if kind != StageBlur {
		return 0
	}
	return stripBytes + residentPenalty(stripBytes)
}

// residentPenalty returns stripBytes if the strip no longer fits in L2.
func residentPenalty(stripBytes int) int {
	if stripBytes > scc.L2Size {
		return stripBytes
	}
	return 0
}
