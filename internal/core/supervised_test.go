package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sccpipe/internal/faults"
	"sccpipe/internal/frame"
	"sccpipe/internal/render"
)

// collectSupervised runs a supervised exec and records every sink call, so
// tests can assert both pixel equality and exactly-once in-order delivery.
func collectSupervised(t *testing.T, spec ExecSpec) ([]*frame.Image, ExecResult) {
	t.Helper()
	cams := render.Walkthrough(spec.Frames, execScene.Bounds())
	var order []int
	out := make([]*frame.Image, spec.Frames)
	sink := func(f int, img *frame.Image) {
		order = append(order, f)
		out[f] = img.Clone()
	}
	res, err := Exec(spec, execScene, cams, sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != spec.Frames {
		t.Fatalf("sink called %d times, want %d (exactly once per frame)", len(order), spec.Frames)
	}
	for f, got := range order {
		if got != f {
			t.Fatalf("sink order %v: frame %d delivered at position %d", order, got, f)
		}
	}
	return out, res
}

func quickRecovery() *faults.RecoveryPolicy {
	return &faults.RecoveryPolicy{Backoff: time.Microsecond, MaxBackoff: 50 * time.Microsecond}
}

func TestExecSupervisedCleanMatchesReference(t *testing.T) {
	spec := execSpecForTest(3, OneRenderer)
	spec.Recovery = quickRecovery() // supervised path, no faults
	got, res := collectSupervised(t, spec)
	if res.Degraded != nil {
		t.Fatalf("clean supervised run reported degraded: %v", res.Degraded)
	}
	want := collect(t, execSpecForTest(3, OneRenderer), false)
	for f := range want {
		if !got[f].Equal(want[f]) {
			t.Fatalf("frame %d differs from sequential reference", f)
		}
	}
}

func TestExecSupervisedSurvivesPipelineDeath(t *testing.T) {
	spec := execSpecForTest(3, OneRenderer)
	spec.Faults = faults.MustInjector(faults.Plan{Seed: 4, Rules: []faults.Rule{
		{Kind: faults.KindDeath, Pipeline: 1, Seq: 2},
	}})
	spec.Recovery = quickRecovery()
	got, res := collectSupervised(t, spec)

	d := res.Degraded
	if !d.IsDegraded() || len(d.DeadPipelines) != 1 || d.DeadPipelines[0] != 1 {
		t.Fatalf("degraded = %v, want pipeline 1 dead", d)
	}
	if !strings.Contains(d.Reasons[1], "core death") {
		t.Errorf("reason = %q", d.Reasons[1])
	}
	// The survivors re-render the dead pipeline's strips bit-identically:
	// every frame, including those carried by a foreign pipeline, matches
	// the sequential oracle.
	want := collect(t, execSpecForTest(3, OneRenderer), false)
	for f := range want {
		if !got[f].Equal(want[f]) {
			t.Fatalf("frame %d differs from reference after re-partitioning", f)
		}
	}
}

func TestExecSupervisedRetriesKeepPixels(t *testing.T) {
	spec := execSpecForTest(2, OneRenderer)
	spec.Faults = faults.MustInjector(faults.Plan{Seed: 8, Rules: []faults.Rule{
		{Kind: faults.KindTransient, Pipeline: 0, Stage: "blur", Seq: 1, Times: 2},
		{Kind: faults.KindTransfer, Pipeline: 1, Stage: "swap", Seq: 3, Times: 1},
	}})
	spec.Recovery = quickRecovery()
	var mu sync.Mutex
	retries := 0
	spec.Recovery.OnEvent = func(e faults.Event) {
		if e.Kind == faults.EventRetry {
			mu.Lock()
			retries++
			mu.Unlock()
		}
	}
	got, res := collectSupervised(t, spec)
	if res.Degraded != nil {
		t.Fatalf("recovered transients must not degrade the run: %v", res.Degraded)
	}
	mu.Lock()
	if retries != 3 {
		t.Errorf("retry events = %d, want 3", retries)
	}
	mu.Unlock()
	want := collect(t, execSpecForTest(2, OneRenderer), false)
	for f := range want {
		if !got[f].Equal(want[f]) {
			t.Fatalf("frame %d differs from reference after retries", f)
		}
	}
}

func TestExecSupervisedStallWatchdog(t *testing.T) {
	spec := execSpecForTest(2, OneRenderer)
	spec.Faults = faults.MustInjector(faults.Plan{Seed: 6, Rules: []faults.Rule{
		{Kind: faults.KindStall, Pipeline: 0, Stage: "scratch", Seq: 1},
	}})
	spec.Recovery = quickRecovery()
	// Generous deadline: real stage work must never trip it, even under
	// the race detector's slowdown — only the injected stall does.
	spec.Recovery.StallTimeout = 250 * time.Millisecond
	got, res := collectSupervised(t, spec)
	d := res.Degraded
	if !d.IsDegraded() || len(d.DeadPipelines) != 1 || d.DeadPipelines[0] != 0 {
		t.Fatalf("degraded = %v, want pipeline 0 dead of a stall", d)
	}
	want := collect(t, execSpecForTest(2, OneRenderer), false)
	for f := range want {
		if !got[f].Equal(want[f]) {
			t.Fatalf("frame %d differs from reference after stall recovery", f)
		}
	}
}
