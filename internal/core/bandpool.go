package core

import "sccpipe/internal/band"

// This file wires the shared band-parallel executor (internal/band) into
// the real execution paths: the heavy stages — blur, the fused point pass,
// and the rasterizer — split each strip into independent row bands over
// one bounded worker pool instead of spawning goroutines per frame.

// bandPool resolves the spec's intra-stage worker pool: an explicit pool
// if set, otherwise the process-shared default sized from GOMAXPROCS.
func (s ExecSpec) bandPool() *band.Pool {
	if s.Bands != nil {
		return s.Bands
	}
	return band.Default()
}

// BandPool sizes an intra-stage worker pool from a worker-count knob (the
// sccserved -stage-workers flag): 0 selects the process-shared default
// pool, 1 forces the serial single-goroutine path, and n > 1 builds a
// dedicated pool running n bands concurrently.
func BandPool(workers int) *band.Pool {
	switch {
	case workers == 0:
		return band.Default()
	case workers <= 1:
		return band.Serial
	default:
		return band.New(workers)
	}
}
