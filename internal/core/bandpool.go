package core

import (
	"sync"

	"sccpipe/internal/band"
)

// This file wires the shared band-parallel executor (internal/band) into
// the real execution paths: the heavy stages — blur, the fused point pass,
// and the rasterizer — split each strip into independent row bands over
// one bounded worker pool instead of spawning goroutines per frame.

// bandPool resolves the spec's intra-stage worker pool: an explicit pool
// if set, otherwise the process-shared default sized from GOMAXPROCS.
func (s ExecSpec) bandPool() *band.Pool {
	if s.Bands != nil {
		return s.Bands
	}
	return band.Default()
}

// Dedicated pools by worker count, shared process-wide. A band.Pool's
// workers never terminate, so plan-specified per-stage fan-outs must reuse
// one pool per size rather than building — and leaking — a pool per run.
var (
	sizedPoolMu sync.Mutex
	sizedPools  = map[int]*band.Pool{}
)

// bandPoolFor resolves a StagePlan worker count onto a cached pool.
func bandPoolFor(workers int) *band.Pool {
	if workers <= 1 {
		return band.Serial
	}
	sizedPoolMu.Lock()
	defer sizedPoolMu.Unlock()
	p := sizedPools[workers]
	if p == nil {
		p = band.New(workers)
		sizedPools[workers] = p
	}
	return p
}

// BandPool sizes an intra-stage worker pool from a worker-count knob (the
// sccserved -stage-workers flag): 0 selects the process-shared default
// pool, 1 forces the serial single-goroutine path, and n > 1 builds a
// dedicated pool running n bands concurrently.
func BandPool(workers int) *band.Pool {
	switch {
	case workers == 0:
		return band.Default()
	case workers <= 1:
		return band.Serial
	default:
		return band.New(workers)
	}
}
