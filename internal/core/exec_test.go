package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"sccpipe/internal/frame"
	"sccpipe/internal/render"
	"sccpipe/internal/scene"
)

// execScene is a small shared scene for real-pixel tests.
var execScene = func() *render.Octree {
	cfg := scene.DefaultConfig()
	cfg.BlocksX, cfg.BlocksZ = 6, 6
	return render.BuildOctree(scene.City(cfg))
}()

func execSpecForTest(k int, rc RendererConfig) ExecSpec {
	return ExecSpec{Frames: 6, Width: 64, Height: 48, Pipelines: k, Renderer: rc, Seed: 99}
}

func collect(t *testing.T, spec ExecSpec, parallel bool) []*frame.Image {
	t.Helper()
	cams := render.Walkthrough(spec.Frames, execScene.Bounds())
	out := make([]*frame.Image, spec.Frames)
	// Sink images are pooled borrows, valid only during the callback —
	// clone to retain them for comparison.
	sink := func(f int, img *frame.Image) { out[f] = img.Clone() }
	if parallel {
		if _, err := Exec(spec, execScene, cams, sink); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := ExecReference(spec, execScene, cams, sink); err != nil {
			t.Fatal(err)
		}
	}
	for f, img := range out {
		if img == nil {
			t.Fatalf("frame %d missing", f)
		}
	}
	return out
}

func TestExecMatchesReference(t *testing.T) {
	for _, rc := range []RendererConfig{OneRenderer, NRenderers} {
		for _, k := range []int{1, 2, 3} {
			spec := execSpecForTest(k, rc)
			got := collect(t, spec, true)
			want := collect(t, spec, false)
			for f := range want {
				if !got[f].Equal(want[f]) {
					t.Fatalf("%v k=%d frame %d differs from sequential reference", rc, k, f)
				}
			}
		}
	}
}

func TestExecDeterministicAcrossRuns(t *testing.T) {
	spec := execSpecForTest(3, OneRenderer)
	a := collect(t, spec, true)
	b := collect(t, spec, true)
	for f := range a {
		if !a[f].Equal(b[f]) {
			t.Fatalf("frame %d differs between identical runs", f)
		}
	}
}

func TestExecSeedChangesOutput(t *testing.T) {
	spec := execSpecForTest(2, OneRenderer)
	a := collect(t, spec, true)
	spec.Seed = 1234
	b := collect(t, spec, true)
	same := true
	for f := range a {
		if !a[f].Equal(b[f]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical frames (scratch/flicker ignored seed?)")
	}
}

func TestExecRendererConfigsAgreeOnDeterministicStages(t *testing.T) {
	// One renderer splitting frames and n renderers rendering strips must
	// produce identical pixels (the strip-tiling property end to end).
	one := collect(t, execSpecForTest(3, OneRenderer), true)
	n := collect(t, execSpecForTest(3, NRenderers), true)
	for f := range one {
		if !one[f].Equal(n[f]) {
			t.Fatalf("frame %d: one-renderer and n-renderer outputs differ", f)
		}
	}
}

func TestExecOutputNonTrivial(t *testing.T) {
	imgs := collect(t, execSpecForTest(2, OneRenderer), true)
	nonBlack := 0
	img := imgs[len(imgs)-1]
	for o := 0; o < len(img.Pix); o += 4 {
		if img.Pix[o] != 0 || img.Pix[o+1] != 0 || img.Pix[o+2] != 0 {
			nonBlack++
		}
	}
	if nonBlack < img.Pixels()/10 {
		t.Fatalf("only %d of %d pixels lit", nonBlack, img.Pixels())
	}
	// Sepia ordering must survive the whole chain except where scratches
	// and flicker moved values — check a majority property.
	ordered := 0
	for o := 0; o < len(img.Pix); o += 4 {
		if img.Pix[o] >= img.Pix[o+1] && img.Pix[o+1] >= img.Pix[o+2] {
			ordered++
		}
	}
	if ordered < img.Pixels()*9/10 {
		t.Fatalf("only %d of %d pixels sepia-ordered", ordered, img.Pixels())
	}
}

func TestExecValidation(t *testing.T) {
	spec := execSpecForTest(1, OneRenderer)
	spec.Frames = 0
	cams := render.Walkthrough(4, execScene.Bounds())
	if _, err := Exec(spec, execScene, cams, nil); err == nil {
		t.Fatal("invalid spec accepted")
	}
	spec = execSpecForTest(1, OneRenderer)
	if _, err := Exec(spec, execScene, cams[:2], nil); err == nil {
		t.Fatal("too few cameras accepted")
	}
}

func TestExecElapsedReported(t *testing.T) {
	spec := execSpecForTest(2, OneRenderer)
	cams := render.Walkthrough(spec.Frames, execScene.Bounds())
	res, err := Exec(spec, execScene, cams, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != spec.Frames || res.Elapsed <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestExecOrientedScratchesMatchReference(t *testing.T) {
	spec := execSpecForTest(2, OneRenderer)
	spec.OrientedScratches = true
	got := collect(t, spec, true)
	want := collect(t, spec, false)
	for f := range want {
		if !got[f].Equal(want[f]) {
			t.Fatalf("frame %d differs with oriented scratches", f)
		}
	}
	// And the flag actually changes output vs the vertical-only filter.
	spec.OrientedScratches = false
	plain := collect(t, spec, true)
	same := true
	for f := range plain {
		if !plain[f].Equal(got[f]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("oriented flag had no effect")
	}
}

func TestExecSinkPanicIsError(t *testing.T) {
	spec := execSpecForTest(2, OneRenderer)
	cams := render.Walkthrough(spec.Frames, execScene.Bounds())
	_, err := Exec(spec, execScene, cams, func(f int, img *frame.Image) {
		if f == 1 {
			panic("sink exploded")
		}
	})
	if err == nil {
		t.Fatal("panicking sink did not surface as an error")
	}
	if !strings.Contains(err.Error(), "sink exploded") {
		t.Fatalf("error %v does not carry the panic value", err)
	}
}

func TestExecReferenceSinkPanicIsError(t *testing.T) {
	spec := execSpecForTest(1, OneRenderer)
	cams := render.Walkthrough(spec.Frames, execScene.Bounds())
	err := ExecReference(spec, execScene, cams, func(f int, img *frame.Image) {
		panic("reference sink exploded")
	})
	if err == nil {
		t.Fatal("panicking sink did not surface as an error")
	}
}

func TestApplyFilterRejectsNonFilterStage(t *testing.T) {
	img := frame.New(4, 4)
	if err := applyFilter(StageRender, img, ExecSpec{}, 0, 0, newStageRNG(), nil); err == nil {
		t.Fatal("non-filter stage kind accepted")
	}
}

func TestExecContextCancellation(t *testing.T) {
	for _, rc := range []RendererConfig{OneRenderer, NRenderers} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		spec := ExecSpec{Frames: 500, Width: 128, Height: 96, Pipelines: 3, Renderer: rc, Seed: 5}
		cams := render.Walkthrough(spec.Frames, execScene.Bounds())
		frames := 0
		_, err := ExecContext(ctx, spec, execScene, cams, func(f int, img *frame.Image) {
			frames++
			if f == 2 {
				cancel() // cancel mid-walkthrough, long before frame 500
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", rc, err)
		}
		if frames >= spec.Frames {
			t.Fatalf("%v: walkthrough ran to completion despite cancellation", rc)
		}
		// All stage goroutines must be gone shortly after the call returns.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > base {
			t.Fatalf("%v: %d goroutines leaked after cancellation", rc, n-base)
		}
		cancel()
	}
}

func TestExecContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := execSpecForTest(2, OneRenderer)
	cams := render.Walkthrough(spec.Frames, execScene.Bounds())
	if _, err := ExecContext(ctx, spec, execScene, cams, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
