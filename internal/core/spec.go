// Package core implements the paper's contribution: parallel macro
// pipelines. A pipeline is a chain of coarse-grained stages (render, five
// image filters, transfer), several of which run side by side over
// horizontal image strips (sort-first). The package provides
//
//   - the pipeline specification (renderer configuration, pipeline count,
//     arrangement on the SCC mesh, per-stage frequency plan);
//   - placement of stages onto simulated SCC cores in the paper's three
//     arrangements (unordered / ordered / flipped);
//   - a calibrated per-stage cost model;
//   - Sim: a discrete-event execution on the simulated SCC (or an HPC
//     cluster platform) that reports walkthrough time, per-stage idle
//     times, power and energy — reproducing the paper's evaluation;
//   - Exec: a real goroutine implementation processing actual pixels, used
//     by the examples and to validate functional correctness.
package core

import (
	"fmt"

	"sccpipe/internal/scc"
)

// StageKind identifies a macro-pipeline stage (§IV of the paper).
type StageKind int

// The stages, in pipeline order. Connect replaces Render on the SCC when
// the MCPC renders (§V, third scenario).
const (
	StageRender StageKind = iota
	StageSepia
	StageBlur
	StageScratch
	StageFlicker
	StageSwap
	StageTransfer
	StageConnect
	// StageFused labels a plan-time fusion of adjacent point filters (see
	// ExecSpec.NoFuse) in internal plumbing and DES stage labels. Busy-time
	// observers never see it: a fused pass is attributed back to its
	// constituent kinds proportionally to the cost model (ExecObserver).
	StageFused
	numStageKinds
)

var stageNames = [...]string{
	"render", "sepia", "blur", "scratch", "flicker", "swap", "transfer", "connect", "fused",
}

func (s StageKind) String() string {
	if s < 0 || int(s) >= len(stageNames) {
		return fmt.Sprintf("StageKind(%d)", int(s))
	}
	return stageNames[s]
}

// FilterOrder lists the five per-pipeline filter stages in execution order.
var FilterOrder = [5]StageKind{StageSepia, StageBlur, StageScratch, StageFlicker, StageSwap}

// Arrangement selects how pipelines map onto the SCC mesh (§IV-A).
type Arrangement int

const (
	// Unordered assigns stages to cores in SCC core-ID order.
	Unordered Arrangement = iota
	// Ordered lays each pipeline along a mesh row.
	Ordered
	// Flipped lays pipelines along rows, reversing every second pipeline.
	Flipped
)

var arrangementNames = [...]string{"unordered", "ordered", "flipped"}

func (a Arrangement) String() string {
	if a < 0 || int(a) >= len(arrangementNames) {
		return fmt.Sprintf("Arrangement(%d)", int(a))
	}
	return arrangementNames[a]
}

// Arrangements lists all three for sweeps.
var Arrangements = []Arrangement{Unordered, Ordered, Flipped}

// RendererConfig selects the paper's three scenarios (§V).
type RendererConfig int

const (
	// OneRenderer: a single SCC core renders full frames and splits them.
	OneRenderer RendererConfig = iota
	// NRenderers: one render stage per pipeline, each rendering its strip.
	NRenderers
	// HostRenderer: the MCPC renders; a Connect stage on the SCC receives
	// frames and distributes strips.
	HostRenderer
)

var rendererNames = [...]string{"1-renderer", "n-renderers", "mcpc-renderer"}

func (r RendererConfig) String() string {
	if r < 0 || int(r) >= len(rendererNames) {
		return fmt.Sprintf("RendererConfig(%d)", int(r))
	}
	return rendererNames[r]
}

// Spec describes one walkthrough experiment.
type Spec struct {
	Frames      int
	Width       int
	Height      int
	Pipelines   int
	Arrangement Arrangement
	Renderer    RendererConfig

	// BlurFreq, if non-zero, overrides the blur cores' frequency (§VI-D).
	BlurFreq scc.FreqLevel
	// TailFreq, if non-zero, overrides the frequency of the stages after
	// blur (scratch, flicker, swap, transfer).
	TailFreq scc.FreqLevel
	// IsolateBlur places the blur stage on a tile in its own voltage
	// island (the paper's Fig. 18 constraint for per-stage DVFS).
	IsolateBlur bool

	// AdaptiveStrips balances the sort-first decomposition by measured
	// render cost instead of splitting the frame into equal strips — an
	// extension of the paper's n-renderer configuration (it only affects
	// that configuration, whose renderers are the bottleneck).
	AdaptiveStrips bool
}

// DefaultSpec is the paper's walkthrough: 400 frames, one pipeline.
func DefaultSpec() Spec {
	return Spec{
		Frames:    400,
		Width:     512,
		Height:    512,
		Pipelines: 1,
	}
}

// MaxPipelines reports how many pipelines the 48-core SCC admits for a
// renderer configuration (the paper reaches 7 with n renderers).
func MaxPipelines(r RendererConfig) int {
	switch r {
	case OneRenderer:
		// 1 render + 5k filters + 1 transfer ≤ 48, and placement uses
		// rows×pairs ≤ 8 pipelines.
		return 8
	case NRenderers:
		// k renderers + 5k filters + 1 transfer ≤ 48 → k ≤ 7.
		return 7
	case HostRenderer:
		// 1 connect + 5k filters + 1 transfer ≤ 48, placement bound 8.
		return 8
	}
	return 0
}

// Validate reports whether the spec is runnable.
func (s Spec) Validate() error {
	if s.Frames <= 0 {
		return fmt.Errorf("core: frames must be positive, got %d", s.Frames)
	}
	if s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("core: bad image size %dx%d", s.Width, s.Height)
	}
	if s.Pipelines < 1 {
		return fmt.Errorf("core: need at least one pipeline, got %d", s.Pipelines)
	}
	if m := MaxPipelines(s.Renderer); s.Pipelines > m {
		return fmt.Errorf("core: %v supports at most %d pipelines, got %d", s.Renderer, m, s.Pipelines)
	}
	if s.Pipelines > s.Height {
		return fmt.Errorf("core: more pipelines (%d) than image rows (%d)", s.Pipelines, s.Height)
	}
	return nil
}
