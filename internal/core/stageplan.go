package core

import (
	"fmt"
	"strings"
)

// StagePlan is a computed filter-stage plan: which adjacent filter stages
// fuse into one memory pass, and how many band workers each planned stage
// may fan out over. internal/plan produces these from measured or modeled
// per-stage costs; a nil plan on ExecSpec selects the built-in auto-detect
// (maximal fusion of adjacent point kernels). A plan only moves fusion
// boundaries across runs the fused kernel already proves bit-exact, so
// every valid plan produces pixels byte-identical to ExecReference.
type StagePlan struct {
	// Groups lists the executed filter stages in order. Each inner slice is
	// one planned stage: a single kind, or a run of adjacent fusable kinds
	// executed as one fused pass. The concatenation must equal FilterOrder
	// exactly — a plan may move fusion boundaries, never reorder stages.
	Groups [][]StageKind
	// GroupWorkers[i], when > 0, sizes the band-parallel fan-out of group i
	// (meaningful for blur and fused groups, the stages that split their
	// strip into row bands). 0 inherits ExecSpec.Bands. When set it must
	// have one entry per group.
	GroupWorkers []int
	// RenderWorkers, when > 0, sizes the renderer's band fan-out the same
	// way.
	RenderWorkers int
}

// Validate checks that the plan is a legal regrouping of FilterOrder:
// every filter exactly once, in order, with multi-stage groups restricted
// to fusable point kernels (oriented scratches draw y-dependent strokes
// and must run unfused).
func (p *StagePlan) Validate(oriented bool) error {
	if p == nil {
		return nil
	}
	if len(p.Groups) == 0 {
		return fmt.Errorf("core: stage plan has no groups")
	}
	if p.GroupWorkers != nil && len(p.GroupWorkers) != len(p.Groups) {
		return fmt.Errorf("core: stage plan has %d groups but %d worker counts",
			len(p.Groups), len(p.GroupWorkers))
	}
	idx := 0
	for gi, g := range p.Groups {
		if len(g) == 0 {
			return fmt.Errorf("core: stage plan group %d is empty", gi)
		}
		for _, k := range g {
			if idx >= len(FilterOrder) || k != FilterOrder[idx] {
				return fmt.Errorf("core: stage plan group %d: %v out of order (plans move fusion boundaries, never reorder stages)", gi, k)
			}
			if len(g) > 1 && !FusableKind(k, oriented) {
				return fmt.Errorf("core: stage plan group %d fuses non-fusable stage %v", gi, k)
			}
			idx++
		}
	}
	if idx != len(FilterOrder) {
		return fmt.Errorf("core: stage plan covers %d of %d filter stages", idx, len(FilterOrder))
	}
	for _, w := range p.GroupWorkers {
		if w < 0 {
			return fmt.Errorf("core: negative group worker count %d", w)
		}
	}
	if p.RenderWorkers < 0 {
		return fmt.Errorf("core: negative render worker count %d", p.RenderWorkers)
	}
	return nil
}

// String renders the plan in boundary notation, e.g.
// "[sepia][blur][scratch+flicker+swap]". A nil plan prints "auto".
func (p *StagePlan) String() string {
	if p == nil {
		return "auto"
	}
	var b strings.Builder
	for _, g := range p.Groups {
		parts := make([]string, len(g))
		for i, k := range g {
			parts[i] = k.String()
		}
		b.WriteString("[")
		b.WriteString(strings.Join(parts, "+"))
		b.WriteString("]")
	}
	return b.String()
}
