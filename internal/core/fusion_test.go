package core

import (
	"sync"
	"testing"
	"time"

	"sccpipe/internal/band"
	"sccpipe/internal/faults"
	"sccpipe/internal/frame"
	"sccpipe/internal/render"
)

func planNames(s ExecSpec) []string {
	var names []string
	for _, est := range s.planStages() {
		names = append(names, est.name())
	}
	return names
}

func TestPlanStages(t *testing.T) {
	eq := func(got, want []string) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	// Default: blur splits the fusable run, leaving sepia alone and the
	// whole tail fused.
	if got := planNames(ExecSpec{}); !eq(got, []string{"sepia", "blur", "scratch+flicker+swap"}) {
		t.Fatalf("default plan = %v", got)
	}
	// Oriented scratches are y-dependent and drop out of the fused run.
	if got := planNames(ExecSpec{OrientedScratches: true}); !eq(got, []string{"sepia", "blur", "scratch", "flicker+swap"}) {
		t.Fatalf("oriented plan = %v", got)
	}
	// NoFuse keeps the paper-faithful five-stage chain.
	if got := planNames(ExecSpec{NoFuse: true}); !eq(got, []string{"sepia", "blur", "scratch", "flicker", "swap"}) {
		t.Fatalf("NoFuse plan = %v", got)
	}
}

func TestFusedComputeForSumsConstituents(t *testing.T) {
	m := DefaultCostModel()
	kinds := []StageKind{StageScratch, StageFlicker, StageSwap}
	want := m.FilterComputeFor(StageScratch, 1000) +
		m.FilterComputeFor(StageFlicker, 1000) +
		m.FilterComputeFor(StageSwap, 1000)
	if got := m.FusedComputeFor(kinds, 1000); got != want {
		t.Fatalf("FusedComputeFor = %g, want %g", got, want)
	}
}

// The fused pipeline, the NoFuse pipeline, and the sequential reference
// must all produce identical frames, for both renderer configurations and
// for explicit parallel band pools.
func TestExecFusionMatrixMatchesReference(t *testing.T) {
	for _, rc := range []RendererConfig{OneRenderer, NRenderers} {
		base := execSpecForTest(3, rc)
		want := collect(t, base, false) // ExecReference: unfused, serial

		for _, tc := range []struct {
			name string
			mod  func(*ExecSpec)
		}{
			{"fused-default-pool", func(s *ExecSpec) {}},
			{"fused-parallel-bands", func(s *ExecSpec) { s.Bands = band.New(3) }},
			{"nofuse", func(s *ExecSpec) { s.NoFuse = true }},
			{"nofuse-parallel-bands", func(s *ExecSpec) { s.NoFuse = true; s.Bands = band.New(4) }},
			{"fused-oriented", func(s *ExecSpec) { s.OrientedScratches = true }},
		} {
			spec := base
			tc.mod(&spec)
			ref := spec
			ref.NoFuse, ref.Bands = false, nil // reference ignores these anyway
			if spec.OrientedScratches {
				oref := execSpecForTest(3, rc)
				oref.OrientedScratches = true
				want2 := collect(t, oref, false)
				got := collect(t, spec, true)
				for f := range want2 {
					if !got[f].Equal(want2[f]) {
						t.Fatalf("%v/%s: frame %d differs from reference", rc, tc.name, f)
					}
				}
				continue
			}
			got := collect(t, spec, true)
			for f := range want {
				if !got[f].Equal(want[f]) {
					t.Fatalf("%v/%s: frame %d differs from reference", rc, tc.name, f)
				}
			}
		}
	}
}

// A chaos plan naming stages that were fused away must still fire — and
// the supervised, fused, band-parallel run must stay bit-exact against
// the sequential oracle.
func TestExecSupervisedChaosOnFusedStages(t *testing.T) {
	spec := execSpecForTest(3, OneRenderer)
	spec.Bands = band.New(2)
	spec.Faults = faults.MustInjector(faults.Plan{Seed: 11, Rules: []faults.Rule{
		// All three name stages inside the fused scratch+flicker+swap run.
		{Kind: faults.KindTransient, Pipeline: 0, Stage: "flicker", Seq: 1, Times: 2},
		{Kind: faults.KindTransfer, Pipeline: 1, Stage: "scratch", Seq: 2, Times: 1},
		{Kind: faults.KindDelay, Pipeline: 2, Stage: "swap", Seq: 0, Delay: time.Millisecond},
	}})
	spec.Recovery = quickRecovery()
	var retriedMu sync.Mutex
	retried := map[string]int{}
	spec.Recovery.OnEvent = func(e faults.Event) {
		// Supervisor callbacks fire from every stage goroutine concurrently.
		if e.Kind == faults.EventRetry {
			retriedMu.Lock()
			retried[e.Stage]++
			retriedMu.Unlock()
		}
	}
	got, res := collectSupervised(t, spec)
	if res.Degraded != nil {
		t.Fatalf("recovered faults must not degrade the run: %v", res.Degraded)
	}
	want := collect(t, execSpecForTest(3, OneRenderer), false)
	for f := range want {
		if !got[f].Equal(want[f]) {
			t.Fatalf("frame %d differs from reference under chaos on fused stages", f)
		}
	}
	if retried["flicker"] == 0 || retried["scratch"] == 0 {
		t.Errorf("fused-away stage rules did not fire: retries = %v", retried)
	}
}

// A pipeline death during a fused run redistributes its strips, and the
// survivor re-fuses deterministically: pixels match the oracle.
func TestExecSupervisedDeathRefusesDeterministically(t *testing.T) {
	spec := execSpecForTest(3, OneRenderer)
	spec.Faults = faults.MustInjector(faults.Plan{Seed: 13, Rules: []faults.Rule{
		{Kind: faults.KindDeath, Pipeline: 2, Seq: 1},
	}})
	spec.Recovery = quickRecovery()
	got, res := collectSupervised(t, spec)
	if res.Degraded == nil || len(res.Degraded.DeadPipelines) != 1 {
		t.Fatalf("degraded = %v, want pipeline 2 dead", res.Degraded)
	}
	want := collect(t, execSpecForTest(3, OneRenderer), false)
	for f := range want {
		if !got[f].Equal(want[f]) {
			t.Fatalf("frame %d differs from reference after death mid-fusion", f)
		}
	}
}

// Fused, unfused, and supervised-fused runs of one seed are mutually
// deterministic: the RNG hoist draws the same values on every path.
func TestExecDeterminismAcrossFusionModes(t *testing.T) {
	base := execSpecForTest(2, OneRenderer)
	fused := collect(t, base, true)

	unfused := base
	unfused.NoFuse = true
	uf := collect(t, unfused, true)

	sup := base
	sup.Recovery = quickRecovery()
	sf, _ := collectSupervised(t, sup)

	for f := range fused {
		if !fused[f].Equal(uf[f]) {
			t.Fatalf("frame %d: fused != unfused", f)
		}
		if !fused[f].Equal(sf[f]) {
			t.Fatalf("frame %d: fused != supervised fused", f)
		}
	}
}

func TestBandPoolKnob(t *testing.T) {
	if got := BandPool(0); got != band.Default() {
		t.Fatal("BandPool(0) is not the shared default pool")
	}
	if got := BandPool(1); got != band.Serial {
		t.Fatal("BandPool(1) is not the serial pool")
	}
	if got := BandPool(5).Parallelism(); got != 5 {
		t.Fatalf("BandPool(5) parallelism = %d, want 5", got)
	}
}

// Sanity: the fused exec path works on strip heights too small to band
// and on single-pixel-tall strips (degenerate splits).
func TestExecFusedDegenerateStrips(t *testing.T) {
	spec := ExecSpec{Frames: 2, Width: 32, Height: 7, Pipelines: 7, Renderer: OneRenderer, Seed: 3, Bands: band.New(4)}
	cams := render.Walkthrough(spec.Frames, execScene.Bounds())
	out := make([]*frame.Image, spec.Frames)
	if _, err := Exec(spec, execScene, cams, func(f int, img *frame.Image) { out[f] = img.Clone() }); err != nil {
		t.Fatal(err)
	}
	want := make([]*frame.Image, spec.Frames)
	if err := ExecReference(spec, execScene, cams, func(f int, img *frame.Image) { want[f] = img.Clone() }); err != nil {
		t.Fatal(err)
	}
	for f := range want {
		if !out[f].Equal(want[f]) {
			t.Fatalf("frame %d differs on 1-row strips", f)
		}
	}
}
