package core

import (
	"sccpipe/internal/des"
	"sccpipe/internal/host"
	"sccpipe/internal/rcce"
	"sccpipe/internal/scc"
)

// Platform abstracts the machine the pipeline runs on, so the same stage
// processes drive both the simulated SCC and the Mogon cluster model.
// Slots are abstract stage locations; each platform maps them to its own
// notion of a core.
type Platform interface {
	Eng() *des.Engine
	// Compute runs refSeconds of 533 MHz-reference work of the given
	// stage kind on a slot (kind lets platforms with stage-dependent
	// speedups, like the cluster's SIMD rasterizer, scale correctly).
	Compute(p *des.Proc, slot int, refSeconds float64, kind StageKind)
	// Local charges stage-private memory traffic (framebuffer writes,
	// blur's second buffer, ...) on a slot.
	Local(p *des.Proc, slot int, bytes int)
	// Send moves a payload to another slot's stage, blocking under
	// backpressure.
	Send(p *des.Proc, from, to int, payload any, bytes int)
	// Recv blocks until a payload from `from` arrives at `at`; idle is the
	// time spent waiting for it to appear (not fetching it).
	Recv(p *des.Proc, at, from int) (payload any, bytes int, idle float64)
	// HostFrameRecv charges the ingress of one host-rendered frame at the
	// connect slot (link occupancy plus landing it in memory).
	HostFrameRecv(p *des.Proc, slot int, bytes int)
	// ViewerSend charges shipping a finished frame to the visualization
	// client from the transfer slot.
	ViewerSend(p *des.Proc, slot int, bytes int)
}

// ---------------------------------------------------------------------------
// SCC platform

// SCCPlatform runs stages on the simulated chip through the rcce layer.
type SCCPlatform struct {
	Chip *scc.Chip
	Comm *rcce.Comm
	MCPC host.MCPC

	slotCore []scc.CoreID
	toSCC    *des.Resource
	fromSCC  *des.Resource
}

// NewSCCPlatform wires a chip, communicator and MCPC links. slotCore maps
// abstract slots to cores.
func NewSCCPlatform(chip *scc.Chip, comm *rcce.Comm, mcpc host.MCPC, slotCore []scc.CoreID) *SCCPlatform {
	return &SCCPlatform{
		Chip:     chip,
		Comm:     comm,
		MCPC:     mcpc,
		slotCore: slotCore,
		toSCC:    des.NewResource(1),
		fromSCC:  des.NewResource(1),
	}
}

// Core returns the chip core behind a slot.
func (pf *SCCPlatform) Core(slot int) scc.CoreID { return pf.slotCore[slot] }

// Eng returns the simulation engine.
func (pf *SCCPlatform) Eng() *des.Engine { return pf.Chip.Eng }

// Compute delegates to the chip at the slot core's current frequency; all
// stage kinds run at the same per-cycle speed on a P54C.
func (pf *SCCPlatform) Compute(p *des.Proc, slot int, refSeconds float64, _ StageKind) {
	pf.Chip.ComputeSeconds(p, pf.slotCore[slot], refSeconds)
}

// Local charges traffic against the core's own memory partition.
func (pf *SCCPlatform) Local(p *des.Proc, slot int, bytes int) {
	pf.Chip.MemRead(p, pf.slotCore[slot], bytes)
}

// Send uses the rcce double-hop channel.
func (pf *SCCPlatform) Send(p *des.Proc, from, to int, payload any, bytes int) {
	pf.Comm.Send(p, pf.slotCore[from], pf.slotCore[to], payload, bytes)
}

// Recv uses the rcce channel; the payload fetch out of the receiver's
// partition is charged inside.
func (pf *SCCPlatform) Recv(p *des.Proc, at, from int) (any, int, float64) {
	m, idle := pf.Comm.Recv(p, pf.slotCore[at], pf.slotCore[from])
	return m.Payload, m.Bytes, idle
}

// HostFrameRecv charges the PCIe/UDP link plus landing the frame in the
// connect core's partition.
func (pf *SCCPlatform) HostFrameRecv(p *des.Proc, slot int, bytes int) {
	p.WaitUntil(pf.toSCC.ReserveAt(p.Now(), pf.MCPC.ToSCC.TransferTime(bytes)))
	pf.Chip.MemWrite(p, pf.slotCore[slot], bytes)
}

// ViewerSend charges the SCC→client link.
func (pf *SCCPlatform) ViewerSend(p *des.Proc, slot int, bytes int) {
	p.WaitUntil(pf.fromSCC.ReserveAt(p.Now(), pf.MCPC.FromSCC.TransferTime(bytes)))
}

// ---------------------------------------------------------------------------
// Cluster platform

// ClusterPlatform models the Mogon node: fast out-of-order cores and —
// crucially — shared local memory, so stage hand-offs are a single copy and
// receivers find their data locally (what the paper wishes the SCC had).
type ClusterPlatform struct {
	C   host.Cluster
	eng *des.Engine
	mem *des.Resource
	ext *des.Resource
	vw  *des.Resource
	ch  map[[2]int]*des.Queue
}

// NewClusterPlatform returns a cluster platform over a fresh engine.
func NewClusterPlatform(eng *des.Engine, c host.Cluster) *ClusterPlatform {
	return &ClusterPlatform{
		C:   c,
		eng: eng,
		mem: des.NewResource(1),
		ext: des.NewResource(1),
		vw:  des.NewResource(1),
		ch:  make(map[[2]int]*des.Queue),
	}
}

// Eng returns the simulation engine.
func (pf *ClusterPlatform) Eng() *des.Engine { return pf.eng }

func (pf *ClusterPlatform) queue(from, to int) *des.Queue {
	k := [2]int{from, to}
	q := pf.ch[k]
	if q == nil {
		q = des.NewQueue(pf.eng, 1)
		pf.ch[k] = q
	}
	return q
}

// Compute scales reference work by the node's effective speed; the render
// stage gains the larger, SIMD-backed factor.
func (pf *ClusterPlatform) Compute(p *des.Proc, slot int, refSeconds float64, kind StageKind) {
	f := pf.C.SpeedFactor
	if kind == StageRender && pf.C.RenderSpeedFactor > 0 {
		f = pf.C.RenderSpeedFactor
	}
	p.Wait(refSeconds / f)
}

// Local charges the shared memory system.
func (pf *ClusterPlatform) Local(p *des.Proc, slot int, bytes int) {
	if bytes <= 0 {
		return
	}
	pf.mem.Use(p, float64(bytes)/pf.C.MemBandwidth)
}

type clusterMsg struct {
	payload any
	bytes   int
}

// Send copies the strip once through shared memory — no double hop.
func (pf *ClusterPlatform) Send(p *des.Proc, from, to int, payload any, bytes int) {
	p.Wait(pf.C.MsgOverhead)
	pf.Local(p, from, bytes)
	pf.queue(from, to).Put(p, clusterMsg{payload, bytes})
}

// Recv finds its data in shared memory: waiting is the only cost.
func (pf *ClusterPlatform) Recv(p *des.Proc, at, from int) (any, int, float64) {
	start := p.Now()
	m := pf.queue(from, at).Get(p).(clusterMsg)
	return m.payload, m.bytes, p.Now() - start
}

// HostFrameRecv charges the external render node's network link plus the
// landing copy.
func (pf *ClusterPlatform) HostFrameRecv(p *des.Proc, slot int, bytes int) {
	p.WaitUntil(pf.ext.ReserveAt(p.Now(), pf.C.ExternalLink.TransferTime(bytes)))
	pf.Local(p, slot, bytes)
}

// ViewerSend charges the viewer node's network link.
func (pf *ClusterPlatform) ViewerSend(p *des.Proc, slot int, bytes int) {
	p.WaitUntil(pf.vw.ReserveAt(p.Now(), pf.C.ViewerLink.TransferTime(bytes)))
}
