package core

import (
	"sccpipe/internal/des"
	"sccpipe/internal/rcce"
	"sccpipe/internal/scc"
)

// SingleCoreResult reports the paper's baseline: the whole pipeline run
// sequentially on one SCC core (≈382 s for the full 400-frame walkthrough;
// ≈94 s render-only; ≈104 s render+transfer). Fig. 8's per-stage profile
// comes from StageSeconds.
type SingleCoreResult struct {
	Seconds      float64
	StageSeconds map[StageKind]float64
}

// SingleCoreStages is the full stage sequence of the baseline run.
var SingleCoreStages = []StageKind{
	StageRender, StageSepia, StageBlur, StageScratch, StageFlicker, StageSwap, StageTransfer,
}

// singleTouchBytes returns the memory traffic of a filter stage running
// sequentially on one core, where its input is already in the core's own
// partition: a streaming read and write of the frame for the pixel-sweeping
// stages, a small fraction for scratch (it touches a few columns), plus
// blur's second buffer.
func singleTouchBytes(kind StageKind, frameBytes int) int {
	switch kind {
	case StageSepia, StageFlicker, StageSwap:
		return 2 * frameBytes
	case StageScratch:
		return frameBytes / 10
	case StageBlur:
		// read src + write copy + stream copy back (frame > L2) + write dst
		return 2*frameBytes + frameBytes + residentPenalty(frameBytes)
	}
	return 0
}

// SimulateSingleCore runs the listed stages back to back on SCC core 0.
// Pass SingleCoreStages for the full baseline, or a prefix such as
// {StageRender} / {StageRender, StageTransfer} for the paper's ablations.
func SimulateSingleCore(spec Spec, wl *Workload, stages []StageKind, opts SimOptions) (SingleCoreResult, error) {
	if err := spec.Validate(); err != nil {
		return SingleCoreResult{}, err
	}
	m := opts.model()
	eng := des.NewEngine()
	chip := scc.New(eng, opts.chipConfig())
	comm := rcce.NewComm(chip, 1)
	pf := NewSCCPlatform(chip, comm, opts.mcpc(), []scc.CoreID{0})
	chip.MarkUsed(0)

	frameBytes := wl.FrameBytes()
	pixels := wl.W * wl.H
	perStage := make(map[StageKind]float64, len(stages))

	eng.Spawn("single-core", func(p *des.Proc) {
		for f := 0; f < spec.Frames; f++ {
			for _, kind := range stages {
				t0 := p.Now()
				switch kind {
				case StageRender:
					// Framebuffer traffic is folded into the calibrated
					// render compute (as in the pipelined mode).
					pf.Compute(p, 0, m.RenderCompute(wl.Full[f], pixels), StageRender)
				case StageTransfer:
					pf.Local(p, 0, frameBytes) // read the finished frame
					pf.Compute(p, 0, m.AssembleCompute, StageTransfer)
					pf.ViewerSend(p, 0, frameBytes)
				default:
					pf.Local(p, 0, singleTouchBytes(kind, frameBytes))
					pf.Compute(p, 0, m.FilterComputeFor(kind, pixels), kind)
				}
				perStage[kind] += p.Now() - t0
			}
		}
	})
	eng.Run()
	if err := simHealth(eng); err != nil {
		return SingleCoreResult{}, err
	}
	return SingleCoreResult{Seconds: eng.Now(), StageSeconds: perStage}, nil
}
