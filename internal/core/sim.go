package core

import (
	"fmt"
	"math/rand"

	"sccpipe/internal/des"
	"sccpipe/internal/host"
	"sccpipe/internal/rcce"
	"sccpipe/internal/scc"
	"sccpipe/internal/trace"
)

// SimResult reports one simulated walkthrough.
type SimResult struct {
	// Seconds is the complete walkthrough time (the paper's headline
	// metric, e.g. Table I).
	Seconds float64
	// StageIdle holds per-frame idle times by stage kind, pooled across
	// pipelines (Fig. 15). The pipeline-fill frame is excluded.
	StageIdle map[StageKind][]float64
	// Power is the chip power trace sampled once per second (Fig. 14/17);
	// nil on the cluster platform.
	Power []scc.PowerSample
	// SCCEnergyJ integrates chip power over the run.
	SCCEnergyJ float64
	// HostExtraEnergyJ is the MCPC's energy *above idle* spent rendering
	// (the paper's 3.3 s × 28 W term); zero unless HostRenderer.
	HostExtraEnergyJ float64
	// MemUtil is the busy fraction of each memory controller.
	MemUtil []float64
	// Placement records where stages ran (SCC only).
	Placement Placement
	// Trace holds the per-stage activity timeline when SimOptions.Trace
	// was set; nil otherwise.
	Trace *trace.Trace
}

// SimOptions overrides simulation defaults; zero values select the
// calibrated defaults.
type SimOptions struct {
	ChipConfig *scc.Config
	Model      *CostModel
	MCPC       *host.MCPC
	// PowerDT is the power-trace sampling period (default 1 s).
	PowerDT float64
	// JitterCV adds uniform per-invocation noise of ±JitterCV (relative)
	// to every stage's compute time, modelling the measurement variance of
	// real runs (the paper's box plots); 0 keeps the simulation exactly
	// deterministic against the calibration targets.
	JitterCV float64
	// JitterSeed seeds the jitter stream; runs with equal seeds are
	// reproducible.
	JitterSeed int64
	// Trace records the per-stage activity timeline (spans for waiting,
	// computing and communicating plus frame-completion marks) into
	// SimResult.Trace. Off by default: a 400-frame run generates hundreds
	// of thousands of spans.
	Trace bool
	// ChannelDepth sets how many messages may be in flight between two
	// adjacent stages: 0 selects the default of 1 (the paper's
	// rendezvous-with-one-slot behaviour); negative means unbounded.
	ChannelDepth int
}

// channelDepth resolves the inter-stage channel capacity.
func (o SimOptions) channelDepth() int {
	switch {
	case o.ChannelDepth < 0:
		return 0 // unbounded in des.Queue terms
	case o.ChannelDepth == 0:
		return 1
	default:
		return o.ChannelDepth
	}
}

// jitterFunc builds the per-call compute-time perturbation.
func (o SimOptions) jitterFunc() func(float64) float64 {
	if o.JitterCV <= 0 {
		return func(v float64) float64 { return v }
	}
	rng := rand.New(rand.NewSource(o.JitterSeed + 1))
	cv := o.JitterCV
	return func(v float64) float64 {
		f := 1 + cv*(2*rng.Float64()-1)
		if f < 0.05 {
			f = 0.05
		}
		return v * f
	}
}

func (o SimOptions) chipConfig() scc.Config {
	if o.ChipConfig != nil {
		return *o.ChipConfig
	}
	return scc.DefaultConfig()
}

func (o SimOptions) model() CostModel {
	if o.Model != nil {
		return *o.Model
	}
	return DefaultCostModel()
}

func (o SimOptions) mcpc() host.MCPC {
	if o.MCPC != nil {
		return *o.MCPC
	}
	return host.DefaultMCPC()
}

// slotPlan assigns abstract platform slots to the spec's stages.
type slotPlan struct {
	renderers []int
	connect   int
	filters   [][]int
	transfer  int
	count     int
}

func planSlots(s Spec) slotPlan {
	sp := slotPlan{connect: -1}
	next := 0
	take := func() int { n := next; next++; return n }
	switch s.Renderer {
	case OneRenderer:
		sp.renderers = []int{take()}
	case NRenderers:
		for i := 0; i < s.Pipelines; i++ {
			sp.renderers = append(sp.renderers, take())
		}
	case HostRenderer:
		sp.connect = take()
	}
	for i := 0; i < s.Pipelines; i++ {
		var f []int
		for range FilterOrder {
			f = append(f, take())
		}
		sp.filters = append(sp.filters, f)
	}
	sp.transfer = take()
	sp.count = next
	return sp
}

// frameToken travels the simulated pipelines in place of pixels.
type frameToken struct {
	frame int
	strip int
}

// Simulate runs the spec on the simulated SCC.
func Simulate(spec Spec, wl *Workload, opts SimOptions) (SimResult, error) {
	if err := spec.Validate(); err != nil {
		return SimResult{}, err
	}
	if wl.W != spec.Width || wl.H != spec.Height {
		return SimResult{}, fmt.Errorf("core: workload is %dx%d but spec wants %dx%d", wl.W, wl.H, spec.Width, spec.Height)
	}
	pl, err := Place(spec)
	if err != nil {
		return SimResult{}, err
	}

	eng := des.NewEngine()
	chip := scc.New(eng, opts.chipConfig())
	comm := rcce.NewComm(chip, opts.channelDepth())

	sp := planSlots(spec)
	slotCore := make([]scc.CoreID, sp.count)
	for i, s := range sp.renderers {
		slotCore[s] = pl.Renderers[i]
	}
	if sp.connect >= 0 {
		slotCore[sp.connect] = pl.Connect
	}
	for i, row := range sp.filters {
		for j, s := range row {
			slotCore[s] = pl.Filters[i][j]
		}
	}
	slotCore[sp.transfer] = pl.Transfer

	for _, c := range pl.Cores() {
		chip.MarkUsed(c)
	}
	if spec.BlurFreq.Hz != 0 {
		for _, c := range pl.BlurCores() {
			chip.SetFreq(c, spec.BlurFreq)
		}
	}
	if spec.TailFreq.Hz != 0 {
		for _, c := range pl.TailCores() {
			chip.SetFreq(c, spec.TailFreq)
		}
	}

	pf := NewSCCPlatform(chip, comm, opts.mcpc(), slotCore)
	var tr *trace.Trace
	if opts.Trace {
		tr = trace.New(spec.Frames)
	}
	idle := spawnStages(pf, spec, wl, sp, opts.model(), opts.jitterFunc(), tr)
	eng.Run()
	if err := simHealth(eng); err != nil {
		return SimResult{}, err
	}

	seconds := eng.Now()
	dt := opts.PowerDT
	if dt == 0 {
		dt = 1
	}
	res := SimResult{
		Seconds:    seconds,
		StageIdle:  idle.byKind,
		Power:      chip.PowerTrace(0, seconds, dt),
		SCCEnergyJ: chip.Energy(0, seconds),
		Placement:  pl,
		Trace:      tr,
	}
	if spec.Renderer == HostRenderer {
		m := opts.mcpc()
		renderBusy := m.RenderPerFrame * float64(spec.Frames)
		res.HostExtraEnergyJ = renderBusy * (m.BusyWatts - m.IdleWatts)
	}
	util := chip.MemUtilization(seconds)
	res.MemUtil = util[:]
	return res, nil
}

// SimulateCluster runs the spec's configuration on the Mogon cluster model
// (Fig. 13): OneRenderer = "single rend.", NRenderers = "parallel rend.",
// HostRenderer = "external rend.". Arrangement and DVFS fields are ignored
// (the cluster has neither a mesh to arrange on nor SCC voltage islands).
func SimulateCluster(spec Spec, wl *Workload, cluster host.Cluster, opts SimOptions) (SimResult, error) {
	if err := spec.Validate(); err != nil {
		return SimResult{}, err
	}
	eng := des.NewEngine()
	pf := NewClusterPlatform(eng, cluster)
	sp := planSlots(spec)
	var tr *trace.Trace
	if opts.Trace {
		tr = trace.New(spec.Frames)
	}
	idle := spawnStages(pf, spec, wl, sp, opts.model(), opts.jitterFunc(), tr)
	eng.Run()
	if err := simHealth(eng); err != nil {
		return SimResult{}, err
	}
	return SimResult{Seconds: eng.Now(), StageIdle: idle.byKind, Trace: tr}, nil
}

// simHealth converts an unhealthy engine end state — a panicked stage body
// or a quiesce with parked stages — into an error, so no simulation ever
// returns a silently truncated result.
func simHealth(eng *des.Engine) error {
	if err := eng.Err(); err != nil {
		return fmt.Errorf("core: simulation failed: %w", err)
	}
	if eng.Quiesced() {
		return fmt.Errorf("core: simulation quiesced with stuck stages: %s", eng.QuiescedReport())
	}
	return nil
}

// idleCollector gathers per-frame stage idle samples.
type idleCollector struct {
	byKind map[StageKind][]float64
}

func (ic *idleCollector) add(kind StageKind, frame int, v float64) {
	if frame == 0 {
		return // pipeline fill, not steady state
	}
	ic.byKind[kind] = append(ic.byKind[kind], v)
}

// spawnStages creates all stage processes for the spec on a platform.
func spawnStages(pf Platform, spec Spec, wl *Workload, sp slotPlan, m CostModel, jit func(float64) float64, tr *trace.Trace) *idleCollector {
	eng := pf.Eng()
	k := spec.Pipelines
	frameBytes := wl.FrameBytes()
	idle := &idleCollector{byKind: make(map[StageKind][]float64)}

	// Sort-first decomposition: even strips as in the paper, or the
	// cost-balanced extension (n-renderer configuration only — its render
	// stages are the bottleneck the balance targets).
	bounds := UniformBounds(wl.H, k)
	if spec.AdaptiveStrips && spec.Renderer == NRenderers {
		bounds = wl.BalancedBounds(k, m)
	}
	stripPx := make([]int, k)
	stripBy := make([]int, k)
	for i, b := range bounds {
		stripPx[i] = b.Rows() * wl.W
		stripBy[i] = stripPx[i] * 4
	}

	// --- producers ---------------------------------------------------------
	switch spec.Renderer {
	case OneRenderer:
		slot := sp.renderers[0]
		eng.Spawn("render", func(p *des.Proc) {
			for f := 0; f < spec.Frames; f++ {
				// RenderCompute is calibrated to the measured single-core
				// render stage, which includes its framebuffer traffic.
				pf.Compute(p, slot, jit(m.RenderCompute(wl.Full[f], wl.W*wl.H)), StageRender)
				for i := 0; i < k; i++ {
					pf.Send(p, slot, sp.filters[i][0], frameToken{f, i}, wl.StripBytes(k, i))
				}
			}
		})
	case NRenderers:
		stripStats := wl.StatsFor(bounds)
		for i := 0; i < k; i++ {
			i := i
			slot := sp.renderers[i]
			label := fmt.Sprintf("render%d", i)
			eng.Spawn(label, func(p *des.Proc) {
				sb := stripBy[i]
				px := stripPx[i]
				for f := 0; f < spec.Frames; f++ {
					t0 := p.Now()
					pf.Compute(p, slot, jit(m.FrustumAdjust+m.RenderCompute(stripStats[f][i], px)), StageRender)
					tr.Add(label, f, trace.PhaseCompute, t0, p.Now())
					t1 := p.Now()
					pf.Send(p, slot, sp.filters[i][0], frameToken{f, i}, sb)
					tr.Add(label, f, trace.PhaseComm, t1, p.Now())
				}
			})
		}
	case HostRenderer:
		hostQ := des.NewQueue(eng, 2)
		eng.Spawn("mcpc-render", func(p *des.Proc) {
			for f := 0; f < spec.Frames; f++ {
				p.Wait(jit(m.HostRenderPerFrame))
				hostQ.Put(p, f)
			}
		})
		slot := sp.connect
		eng.Spawn("connect", func(p *des.Proc) {
			for f := 0; f < spec.Frames; f++ {
				start := p.Now()
				fr := hostQ.Get(p).(int)
				idle.add(StageConnect, fr, p.Now()-start)
				tr.Add("connect", fr, trace.PhaseWait, start, p.Now())
				t0 := p.Now()
				pf.HostFrameRecv(p, slot, frameBytes)
				tr.Add("connect", fr, trace.PhaseComm, t0, p.Now())
				t1 := p.Now()
				pf.Compute(p, slot, jit(m.ConnectCompute), StageConnect)
				tr.Add("connect", fr, trace.PhaseCompute, t1, p.Now())
				t2 := p.Now()
				for i := 0; i < k; i++ {
					sb := stripBy[i]
					pf.Local(p, slot, sb) // read the strip out of the frame
					pf.Send(p, slot, sp.filters[i][0], frameToken{fr, i}, sb)
				}
				tr.Add("connect", fr, trace.PhaseComm, t2, p.Now())
			}
		})
	}

	// --- per-pipeline filter stages ----------------------------------------
	for i := 0; i < k; i++ {
		i := i
		var prev int
		switch spec.Renderer {
		case OneRenderer:
			prev = sp.renderers[0]
		case NRenderers:
			prev = sp.renderers[i]
		case HostRenderer:
			prev = sp.connect
		}
		for j, kind := range FilterOrder {
			j, kind := j, kind
			slot := sp.filters[i][j]
			from := prev
			to := sp.transfer
			if j+1 < len(sp.filters[i]) {
				to = sp.filters[i][j+1]
			}
			px := stripPx[i]
			sb := stripBy[i]
			label := fmt.Sprintf("%v%d", kind, i)
			eng.Spawn(label, func(p *des.Proc) {
				for f := 0; f < spec.Frames; f++ {
					t0 := p.Now()
					payload, _, wait := pf.Recv(p, slot, from)
					idle.add(kind, f, wait)
					tr.Add(label, f, trace.PhaseWait, t0, t0+wait)
					tr.Add(label, f, trace.PhaseComm, t0+wait, p.Now())
					t1 := p.Now()
					pf.Compute(p, slot, jit(m.FilterComputeFor(kind, px)), kind)
					tr.Add(label, f, trace.PhaseCompute, t1, p.Now())
					t2 := p.Now()
					pf.Local(p, slot, m.FilterExtraBytes(kind, sb))
					pf.Send(p, slot, to, payload, sb)
					tr.Add(label, f, trace.PhaseComm, t2, p.Now())
				}
			})
			prev = slot
		}
	}

	// --- transfer stage ------------------------------------------------------
	eng.Spawn("transfer", func(p *des.Proc) {
		for f := 0; f < spec.Frames; f++ {
			t0 := p.Now()
			waitTotal := 0.0
			for i := 0; i < k; i++ {
				_, _, wait := pf.Recv(p, sp.transfer, sp.filters[i][len(FilterOrder)-1])
				idle.add(StageTransfer, f, wait)
				waitTotal += wait
			}
			tr.Add("transfer", f, trace.PhaseWait, t0, t0+waitTotal)
			tr.Add("transfer", f, trace.PhaseComm, t0+waitTotal, p.Now())
			t1 := p.Now()
			pf.Compute(p, sp.transfer, jit(m.AssembleCompute), StageTransfer)
			tr.Add("transfer", f, trace.PhaseCompute, t1, p.Now())
			t2 := p.Now()
			pf.Local(p, sp.transfer, frameBytes) // write the assembled frame
			pf.ViewerSend(p, sp.transfer, frameBytes)
			tr.Add("transfer", f, trace.PhaseComm, t2, p.Now())
			tr.MarkFrameDone(f, p.Now())
		}
	})

	return idle
}

// residentPenalty2 charges a read-back of stripBytes when the buffer it
// lives in (bufBytes) exceeds the L2 (always true for full frames).
func residentPenalty2(bufBytes, stripBytes int) int {
	if bufBytes > scc.L2Size {
		return stripBytes
	}
	return 0
}
