package core

import (
	"testing"
)

func TestStagePlanValidate(t *testing.T) {
	ok := func(p *StagePlan, oriented bool) {
		t.Helper()
		if err := p.Validate(oriented); err != nil {
			t.Errorf("plan %v unexpectedly invalid: %v", p, err)
		}
	}
	bad := func(p *StagePlan, oriented bool) {
		t.Helper()
		if err := p.Validate(oriented); err == nil {
			t.Errorf("plan %v unexpectedly valid", p)
		}
	}

	ok(nil, false)
	// The auto plan, stated explicitly.
	ok(&StagePlan{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker, StageSwap}}}, false)
	// Fully unfused.
	ok(&StagePlan{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch}, {StageFlicker}, {StageSwap}}}, false)
	// A moved boundary.
	ok(&StagePlan{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker}, {StageSwap}}}, false)
	// Worker counts line up.
	ok(&StagePlan{
		Groups:       [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker, StageSwap}},
		GroupWorkers: []int{0, 2, 1},
	}, false)
	// Oriented scratches may not fuse, but may stand alone.
	ok(&StagePlan{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch}, {StageFlicker, StageSwap}}}, true)
	bad(&StagePlan{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker, StageSwap}}}, true)

	// Reordered, missing, duplicated, or blur-fused stages are rejected.
	bad(&StagePlan{Groups: [][]StageKind{{StageBlur}, {StageSepia}, {StageScratch, StageFlicker, StageSwap}}}, false)
	bad(&StagePlan{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker}}}, false)
	bad(&StagePlan{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker, StageSwap}, {StageSwap}}}, false)
	bad(&StagePlan{Groups: [][]StageKind{{StageSepia, StageBlur}, {StageScratch, StageFlicker, StageSwap}}}, false)
	bad(&StagePlan{Groups: [][]StageKind{}}, false)
	bad(&StagePlan{Groups: [][]StageKind{{StageSepia}, {}, {StageBlur}, {StageScratch, StageFlicker, StageSwap}}}, false)
	bad(&StagePlan{
		Groups:       [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker, StageSwap}},
		GroupWorkers: []int{1, 2},
	}, false)
	bad(&StagePlan{
		Groups:       [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker, StageSwap}},
		GroupWorkers: []int{1, -2, 1},
	}, false)

	if got := (&StagePlan{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker, StageSwap}}}).String(); got != "[sepia][blur][scratch+flicker+swap]" {
		t.Errorf("String() = %q", got)
	}
	var nilPlan *StagePlan
	if got := nilPlan.String(); got != "auto" {
		t.Errorf("nil String() = %q", got)
	}
}

// TestExecPlannedMatchesReference pins the planner's safety contract at
// the core layer: any valid computed plan — every fusion-boundary
// placement, with and without dedicated band workers, on both execution
// paths — produces pixels byte-identical to the sequential reference.
func TestExecPlannedMatchesReference(t *testing.T) {
	plans := []*StagePlan{
		{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch}, {StageFlicker}, {StageSwap}}},
		{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker}, {StageSwap}}},
		{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch}, {StageFlicker, StageSwap}}},
		{Groups: [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker, StageSwap}}},
		{
			Groups:        [][]StageKind{{StageSepia}, {StageBlur}, {StageScratch, StageFlicker, StageSwap}},
			GroupWorkers:  []int{1, 3, 2},
			RenderWorkers: 2,
		},
	}
	spec := execSpecForTest(2, NRenderers)
	want := collect(t, spec, false)
	for _, p := range plans {
		spec := spec
		spec.Plan = p
		got := collect(t, spec, true)
		for f := range want {
			if !got[f].Equal(want[f]) {
				t.Fatalf("plan %v frame %d differs from sequential reference", p, f)
			}
		}
	}
}
