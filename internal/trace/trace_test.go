package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Trace {
	t := New(3)
	t.Add("render", 0, PhaseCompute, 0, 1)
	t.Add("render", 0, PhaseComm, 1, 1.2)
	t.Add("blur", 0, PhaseWait, 0, 1.2)
	t.Add("blur", 0, PhaseCompute, 1.2, 2.4)
	t.Add("render", 1, PhaseCompute, 1.2, 2.2)
	t.MarkFrameDone(0, 2.5)
	t.MarkFrameDone(1, 3.5)
	t.MarkFrameDone(2, 4.5)
	return t
}

func TestAddSkipsEmptySpans(t *testing.T) {
	tr := New(1)
	tr.Add("x", 0, PhaseCompute, 5, 5)
	tr.Add("x", 0, PhaseCompute, 5, 4)
	if len(tr.Spans) != 0 {
		t.Fatalf("empty spans recorded: %d", len(tr.Spans))
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.Add("x", 0, PhaseCompute, 0, 1) // must not panic
	tr.MarkFrameDone(0, 1)
}

func TestStagesOrder(t *testing.T) {
	tr := sample()
	got := tr.Stages()
	if len(got) != 2 || got[0] != "render" || got[1] != "blur" {
		t.Fatalf("stages = %v", got)
	}
}

func TestBusyByStage(t *testing.T) {
	tr := sample()
	busy := tr.BusyByStage()
	if b := busy["render"]; b < 2.19 || b > 2.21 {
		t.Fatalf("render busy = %g, want 2.2", b)
	}
	if b := busy["blur"]; b < 1.19 || b > 1.21 {
		t.Fatalf("blur busy = %g (wait must not count)", b)
	}
}

func TestThroughputMedianGap(t *testing.T) {
	tr := sample()
	if g := tr.Throughput(); g != 1.0 {
		t.Fatalf("throughput period = %g, want 1.0", g)
	}
	if New(2).Throughput() != 0 {
		t.Fatal("tiny traces should report 0")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "stage,frame,phase,start,end" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 1+5 {
		t.Fatalf("rows = %d, want 6", len(lines))
	}
	if !strings.Contains(buf.String(), "blur,0,wait,0,1.2") {
		t.Fatalf("missing row in:\n%s", buf.String())
	}
}

func TestGanttRendering(t *testing.T) {
	g := sample().Gantt(0, 2.4, 24)
	if !strings.Contains(g, "render") || !strings.Contains(g, "blur") {
		t.Fatalf("missing rows:\n%s", g)
	}
	if !strings.Contains(g, "#") || !strings.Contains(g, ".") {
		t.Fatalf("missing glyphs:\n%s", g)
	}
	// Compute must win over wait where both map to a cell.
	lines := strings.Split(g, "\n")
	var blurRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "blur") {
			blurRow = l
		}
	}
	if strings.Count(blurRow, "#") == 0 {
		t.Fatalf("blur compute invisible: %q", blurRow)
	}
	// Out-of-window spans are clipped, not wrapped. (Skip the header line:
	// its legend contains the glyphs.)
	narrow := sample().Gantt(10, 11, 16)
	body := narrow[strings.IndexByte(narrow, '\n')+1:]
	if strings.Count(body, "#") != 0 {
		t.Fatalf("out-of-window spans drawn:\n%s", narrow)
	}
}

func TestFrameLatencies(t *testing.T) {
	tr := sample()
	lat := tr.FrameLatencies()
	if len(lat) != 3 {
		t.Fatalf("latencies = %v", lat)
	}
	// Frame 0: first span at 0, done at 2.5.
	if lat[0] != 2.5 {
		t.Fatalf("frame 0 latency = %g, want 2.5", lat[0])
	}
	// Frame 1: first span at 1.2, done at 3.5.
	if lat[1] < 2.29 || lat[1] > 2.31 {
		t.Fatalf("frame 1 latency = %g, want 2.3", lat[1])
	}
	// Frame 2 has no spans.
	if lat[2] != 0 {
		t.Fatalf("frame 2 latency = %g, want 0", lat[2])
	}
}

func TestTotals(t *testing.T) {
	tr := sample()
	tot := tr.Totals()
	r, ok := tot["render"]
	if !ok {
		t.Fatal("no render totals")
	}
	if got := r.Compute; got != 2 { // frames 0 and 1, one second each
		t.Fatalf("render compute = %v, want 2", got)
	}
	if got := r.Comm; got < 0.19 || got > 0.21 {
		t.Fatalf("render comm = %v, want 0.2", got)
	}
	if got, want := r.Busy(), r.Compute+r.Comm; got != want {
		t.Fatalf("Busy() = %v, want %v", got, want)
	}
	var nilTrace *Trace
	if got := nilTrace.Totals(); len(got) != 0 {
		t.Fatalf("nil trace Totals = %v, want empty", got)
	}
}

func TestTotalsByKindPoolsInstances(t *testing.T) {
	tr := New(1)
	tr.Add("blur0", 0, PhaseCompute, 0, 1)
	tr.Add("blur1", 0, PhaseCompute, 1, 3)
	tr.Add("blur1", 0, PhaseWait, 3, 4)
	tr.Add("transfer", 0, PhaseComm, 0, 0.5)
	byKind := tr.TotalsByKind()
	if len(byKind) != 2 {
		t.Fatalf("got %d kinds, want 2: %v", len(byKind), byKind)
	}
	if got := byKind["blur"].Compute; got != 3 {
		t.Fatalf("blur compute = %v, want 3", got)
	}
	if got := byKind["blur"].Wait; got != 1 {
		t.Fatalf("blur wait = %v, want 1", got)
	}
	if got := byKind["transfer"].Comm; got != 0.5 {
		t.Fatalf("transfer comm = %v, want 0.5", got)
	}
}
