// Package trace records what happens inside a simulated walkthrough as a
// structured timeline: one span per stage activity (waiting, computing,
// communicating) per frame. Traces support throughput/latency analysis of
// pipeline behaviour beyond the paper's aggregate numbers, render as text
// Gantt charts for quick inspection, and export as CSV for plotting.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Phase classifies what a stage was doing during a span.
type Phase int

// Span phases.
const (
	PhaseWait Phase = iota // blocked on input
	PhaseCompute
	PhaseComm // memory/mesh/link transfer
)

var phaseNames = [...]string{"wait", "compute", "comm"}

func (p Phase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return fmt.Sprintf("Phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Span is one contiguous activity of a stage.
type Span struct {
	Stage string // stage instance label, e.g. "blur2"
	Frame int
	Phase Phase
	Start float64
	End   float64
}

// Trace is an append-only span log plus frame-completion marks.
type Trace struct {
	Spans []Span
	// FrameDone[f] is the simulation time frame f left the transfer stage.
	FrameDone []float64
}

// New returns an empty trace sized for the given frame count.
func New(frames int) *Trace {
	return &Trace{FrameDone: make([]float64, frames)}
}

// Add appends a span; zero-length spans are skipped.
func (t *Trace) Add(stage string, frame int, phase Phase, start, end float64) {
	if t == nil || end <= start {
		return
	}
	t.Spans = append(t.Spans, Span{Stage: stage, Frame: frame, Phase: phase, Start: start, End: end})
}

// MarkFrameDone records a frame's completion time.
func (t *Trace) MarkFrameDone(frame int, at float64) {
	if t == nil || frame < 0 || frame >= len(t.FrameDone) {
		return
	}
	t.FrameDone[frame] = at
}

// Stages returns the distinct stage labels in first-appearance order.
func (t *Trace) Stages() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range t.Spans {
		if !seen[s.Stage] {
			seen[s.Stage] = true
			out = append(out, s.Stage)
		}
	}
	return out
}

// BusyByStage sums compute+comm seconds per stage.
func (t *Trace) BusyByStage() map[string]float64 {
	out := map[string]float64{}
	for _, s := range t.Spans {
		if s.Phase != PhaseWait {
			out[s.Stage] += s.End - s.Start
		}
	}
	return out
}

// PhaseTotals aggregates one stage's span time by phase, in seconds.
type PhaseTotals struct {
	Wait    float64
	Compute float64
	Comm    float64
}

// Busy returns compute plus communication time.
func (p PhaseTotals) Busy() float64 { return p.Compute + p.Comm }

// Totals sums span time per stage instance and phase — the snapshot form
// the serve metrics endpoint exports after a traced simulation. A nil or
// empty trace yields an empty map.
func (t *Trace) Totals() map[string]PhaseTotals {
	out := map[string]PhaseTotals{}
	if t == nil {
		return out
	}
	for _, s := range t.Spans {
		pt := out[s.Stage]
		d := s.End - s.Start
		switch s.Phase {
		case PhaseWait:
			pt.Wait += d
		case PhaseCompute:
			pt.Compute += d
		case PhaseComm:
			pt.Comm += d
		}
		out[s.Stage] = pt
	}
	return out
}

// TotalsByKind is Totals with stage instances pooled by kind: trailing
// digits of the instance label are stripped, so "blur0".."blur4" pool into
// "blur". This matches how the paper reports per-stage time (Fig. 15 pools
// pipelines) and keeps metric cardinality bounded for exporters.
func (t *Trace) TotalsByKind() map[string]PhaseTotals {
	out := map[string]PhaseTotals{}
	for label, pt := range t.Totals() {
		kind := strings.TrimRight(label, "0123456789")
		if kind == "" {
			kind = label
		}
		agg := out[kind]
		agg.Wait += pt.Wait
		agg.Compute += pt.Compute
		agg.Comm += pt.Comm
		out[kind] = agg
	}
	return out
}

// Throughput reports the steady-state frame period: the median gap between
// consecutive frame completions (skipping the fill phase).
func (t *Trace) Throughput() float64 {
	n := len(t.FrameDone)
	if n < 3 {
		return 0
	}
	gaps := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		gaps = append(gaps, t.FrameDone[i]-t.FrameDone[i-1])
	}
	sort.Float64s(gaps)
	return gaps[len(gaps)/2]
}

// WriteCSV emits the spans as CSV (stage, frame, phase, start, end).
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"stage", "frame", "phase", "start", "end"}); err != nil {
		return err
	}
	for _, s := range t.Spans {
		rec := []string{
			s.Stage,
			strconv.Itoa(s.Frame),
			s.Phase.String(),
			strconv.FormatFloat(s.Start, 'g', -1, 64),
			strconv.FormatFloat(s.End, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Gantt renders an ASCII timeline of [t0, t1) with the given width: one
// row per stage, '#' for compute, '-' for communication, '.' for waiting,
// and ' ' for absence.
func (t *Trace) Gantt(t0, t1 float64, width int) string {
	if width < 8 {
		width = 8
	}
	stages := t.Stages()
	rows := make(map[string][]byte, len(stages))
	for _, st := range stages {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		rows[st] = row
	}
	scale := float64(width) / (t1 - t0)
	glyph := [...]byte{PhaseWait: '.', PhaseCompute: '#', PhaseComm: '-'}
	prio := [...]int{PhaseWait: 0, PhaseComm: 1, PhaseCompute: 2}
	painted := make(map[string][]int)
	for _, st := range stages {
		painted[st] = make([]int, width)
		for i := range painted[st] {
			painted[st][i] = -1
		}
	}
	for _, s := range t.Spans {
		if s.End <= t0 || s.Start >= t1 {
			continue
		}
		row := rows[s.Stage]
		pr := painted[s.Stage]
		lo := int((clamp(s.Start, t0, t1) - t0) * scale)
		hi := int((clamp(s.End, t0, t1) - t0) * scale)
		if hi == lo {
			hi = lo + 1
		}
		for i := lo; i < hi && i < width; i++ {
			if prio[s.Phase] > pr[i] {
				pr[i] = prio[s.Phase]
				row[i] = glyph[s.Phase]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time %.3fs .. %.3fs  (#=compute, -=comm, .=wait)\n", t0, t1)
	maxLabel := 0
	for _, st := range stages {
		if len(st) > maxLabel {
			maxLabel = len(st)
		}
	}
	for _, st := range stages {
		fmt.Fprintf(&b, "%-*s |%s|\n", maxLabel, st, rows[st])
	}
	return b.String()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// FrameLatencies returns, per frame, the end-to-end latency from the first
// recorded activity of the frame (usually its render compute) to its
// completion at the transfer stage. Frames with no spans report 0.
func (t *Trace) FrameLatencies() []float64 {
	starts := make([]float64, len(t.FrameDone))
	seen := make([]bool, len(t.FrameDone))
	for _, s := range t.Spans {
		if s.Frame < 0 || s.Frame >= len(starts) {
			continue
		}
		if !seen[s.Frame] || s.Start < starts[s.Frame] {
			seen[s.Frame] = true
			starts[s.Frame] = s.Start
		}
	}
	out := make([]float64, len(t.FrameDone))
	for f := range out {
		if seen[f] && t.FrameDone[f] > starts[f] {
			out[f] = t.FrameDone[f] - starts[f]
		}
	}
	return out
}
