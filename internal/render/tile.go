package render

import (
	"math"
	"sync/atomic"

	"sccpipe/internal/band"
	"sccpipe/internal/frame"
)

// tileState is one row-tile of the strip being rendered: its absolute row
// range, the bin of setup-buffer indices overlapping it, the cached coarse-z
// value, and per-tile counters (summed serially after the parallel run, so
// workers never share counter cache lines).
type tileState struct {
	y0, y1 int     // absolute screen rows [y0, y1)
	bin    []int32 // indices into the setup buffer, in draw order
	// zmax caches the maximum of the tile's depth-buffer rows as of the
	// last refresh. Depth values only ever decrease, so the cache is always
	// an upper bound on the live buffer: a triangle whose conservative
	// minimum depth exceeds it cannot pass the depth test anywhere in the
	// tile. While any pixel is still at +Inf the maximum is +Inf and the
	// reject test can never fire — uncovered tiles are naturally safe.
	zmax      float32
	sinceScan int
	filled    int64
	cand      int64
	rejected  int64
}

// Coarse-z refresh policy: rescanning the tile's depth rows costs
// rows×width float reads — on a 128-row tile that is more traffic than an
// average triangle's whole fill — so refreshes are spaced in proportion to
// the tile's pixel count and the whole mechanism is skipped for bins too
// short to amortize even one rescan.
const (
	zScanEvery        = 32 // minimum triangles drawn between refreshes
	zScanPixelsPerTri = 64 // refresh every tilePixels/this triangles
	zScanMinBin       = 48 // skip coarse-z entirely for shorter bins
)

// tiledRaster is the reusable state of the tiled, binned rasterization
// path: the per-strip setup buffer, a strip-wide depth buffer, the tile
// array with bins, and the work-stealing dispatch state. All of it is
// reused across frames, so a steady-state walkthrough render allocates
// nothing.
//
// Ownership and determinism rules: the setup buffer and bins are written
// single-threaded (setup pass, then binning) before workers start, and are
// read-only during the parallel phase. Each tile owns a disjoint row range
// of the shared image and depth buffer — no two workers ever touch the same
// row — and bins preserve the front-to-back draw order, so every pixel sees
// the same triangle sequence as the serial rasterizer and the output is
// byte-identical no matter how tiles are scheduled across workers.
type tiledRaster struct {
	setups []triSetup
	poly   [4]Vec4 // near-clip scratch for the setup pass
	zbuf   []float32
	tiles  []tileState
	next   atomic.Int64 // work-stealing tile cursor
	fn     func(int)    // cached dispatch closure (one bound worker fn)

	// per-run targets, set before Run and read-only during it
	img      *frame.Image
	y0       int // absolute screen row of img row 0
	coarseZ  bool
	nTiles   int
	rejected int64 // summed after the run
}

// prepare sizes the strip-wide depth buffer and the tile array for a strip
// of img.H rows starting at absolute row y0, split into tiles of tileRows
// rows (the last tile takes the remainder). Bins are reset but keep their
// storage.
func (tr *tiledRaster) prepare(img *frame.Image, y0, tileRows int) {
	tr.img, tr.y0 = img, y0
	need := img.W * img.H
	if cap(tr.zbuf) < need {
		tr.zbuf = make([]float32, need)
	}
	tr.zbuf = tr.zbuf[:need]
	tr.nTiles = (img.H + tileRows - 1) / tileRows
	for len(tr.tiles) < tr.nTiles {
		tr.tiles = append(tr.tiles, tileState{})
	}
	for i := 0; i < tr.nTiles; i++ {
		t := &tr.tiles[i]
		t.y0 = y0 + i*tileRows
		t.y1 = t.y0 + tileRows
		if t.y1 > y0+img.H {
			t.y1 = y0 + img.H
		}
		t.bin = t.bin[:0]
		t.zmax = float32(math.Inf(1))
		t.sinceScan = 0
		t.filled, t.cand, t.rejected = 0, 0, 0
	}
	tr.rejected = 0
}

// bin distributes the setup buffer into the row-tiles. Each record lands in
// every tile its clamped bbox overlaps, in setup order, so per-tile draw
// order equals the serial draw order restricted to that tile's rows.
// Returns the number of bin insertions and the count of non-empty tiles.
func (tr *tiledRaster) bin(tileRows int) (binned int64, touched int) {
	for si := range tr.setups {
		s := &tr.setups[si]
		t0 := (int(s.minY) - tr.y0) / tileRows
		t1 := (int(s.maxY) - tr.y0) / tileRows
		for t := t0; t <= t1; t++ {
			tr.tiles[t].bin = append(tr.tiles[t].bin, int32(si))
		}
		binned += int64(t1 - t0 + 1)
	}
	for i := 0; i < tr.nTiles; i++ {
		if len(tr.tiles[i].bin) > 0 {
			touched++
		}
	}
	return binned, touched
}

// run rasterizes all tiles on up to workers band-pool lanes. Tiles are
// claimed with an atomic cursor (work stealing): dense tiles with long bins
// and empty tiles cost wildly different amounts, and stealing keeps lanes
// busy without any static assignment.
func (tr *tiledRaster) run(pool *band.Pool, workers int) {
	if workers > tr.nTiles {
		workers = tr.nTiles
	}
	if workers < 1 {
		workers = 1
	}
	tr.next.Store(0)
	if tr.fn == nil {
		tr.fn = func(int) {
			for {
				t := int(tr.next.Add(1)) - 1
				if t >= tr.nTiles {
					return
				}
				tr.runTile(&tr.tiles[t])
			}
		}
	}
	pool.Run(workers, tr.fn)
	for i := 0; i < tr.nTiles; i++ {
		tr.rejected += tr.tiles[i].rejected
	}
}

// runTile clears the tile's rows (color and depth) and draws its bin. The
// serial rasterizer clears the whole strip up front; doing it per tile
// parallelizes the clear and keeps the rows hot in the drawing worker's
// cache.
func (t *tileState) runTileInto(img *frame.Image, zbuf []float32, imgY0 int, setups []triSetup, coarseZ bool) {
	rows := frame.Image{W: img.W, H: t.y1 - t.y0, Pix: img.Pix[(t.y0-imgY0)*img.W*4 : (t.y1-imgY0)*img.W*4]}
	rows.Fill(0, 0, 0, 0xff)
	z0, z1 := (t.y0-imgY0)*img.W, (t.y1-imgY0)*img.W
	inf := float32(math.Inf(1))
	for i := z0; i < z1; i++ {
		zbuf[i] = inf
	}
	useZ := coarseZ && len(t.bin) >= zScanMinBin
	scanEvery := (z1 - z0) / zScanPixelsPerTri
	if scanEvery < zScanEvery {
		scanEvery = zScanEvery
	}
	t.zmax = inf
	t.sinceScan = 0
	for _, si := range t.bin {
		s := &setups[si]
		if useZ {
			if s.zminSafe > float64(t.zmax) {
				t.rejected++
				continue
			}
			if t.sinceScan++; t.sinceScan >= scanEvery {
				t.sinceScan = 0
				m := zbuf[z0]
				for i := z0 + 1; i < z1; i++ {
					if zbuf[i] > m {
						m = zbuf[i]
					}
				}
				t.zmax = m
			}
		}
		f, c := drawSetupRows(s, img, zbuf, imgY0, t.y0, t.y1)
		t.filled += f
		t.cand += c
	}
}

func (tr *tiledRaster) runTile(t *tileState) {
	t.runTileInto(tr.img, tr.zbuf, tr.y0, tr.setups, tr.coarseZ)
}
