package render

import (
	"math"

	"sccpipe/internal/frame"
)

// triSetup is one screen-space triangle after transform, near-clip and
// fan-triangulation: everything the inner rasterization loop needs, computed
// once per strip instead of once per band. The fields mirror the arithmetic
// of the per-pixel evaluation exactly — for edge i with endpoints a→b,
// w_i(p) = (b.x−a.x)·(p.y−a.y) − (b.y−a.y)·(p.x−a.x) is evaluated as
// fm_i − ey_i·(p.x−ax_i) with fm_i = ex_i·(p.y−ay_i) hoisted per row. Both
// factors use the identical operands and operation order as the original
// edge() call, so the results are bit-identical.
type triSetup struct {
	ax, ay, ex, ey [3]float64 // edge origins and deltas (a, b−a), post-CCW-swap
	iey            [3]float64 // 1/ey_i: span tightening; ±Inf when ey_i == 0
	z0, z1, z2     float64    // NDC depth at the verts, in w0/w1/w2 pairing order
	invArea        float64
	// zminSafe lower-bounds every interpolated depth the triangle can
	// produce, including float rounding slack; the coarse per-tile z test
	// compares it against the tile's depth-buffer maximum.
	zminSafe               float64
	minX, maxX, minY, maxY int32 // inclusive pixel bbox, clamped to the strip
	cr, cg, cb             uint8
}

// setupTri builds the setup record for one clipped screen-space triangle.
// The bbox is clamped to columns [0, fullW) and absolute rows [y0, y1);
// ok is false when the triangle is degenerate or misses that window
// entirely (exactly the cases where the original fill loop did no work).
func setupTri(v0, v1, v2 screenVert, cr, cg, cb uint8, fullW, y0, y1 int) (s triSetup, ok bool) {
	area := edge(v0, v1, v2)
	if area == 0 {
		return s, false
	}
	if area < 0 { // ensure counter-clockwise so barycentrics are positive
		v1, v2 = v2, v1
		area = -area
	}
	minX := int(math.Floor(min3(v0.x, v1.x, v2.x)))
	maxX := int(math.Ceil(max3(v0.x, v1.x, v2.x)))
	minY := int(math.Floor(min3(v0.y, v1.y, v2.y)))
	maxY := int(math.Ceil(max3(v0.y, v1.y, v2.y)))
	if minX < 0 {
		minX = 0
	}
	if maxX > fullW-1 {
		maxX = fullW - 1
	}
	if minY < y0 {
		minY = y0
	}
	if maxY > y1-1 {
		maxY = y1 - 1
	}
	if minX > maxX || minY > maxY {
		return s, false
	}
	// Edge i's endpoints follow the original w0/w1/w2 evaluation:
	// w0 = edge(v1, v2, p), w1 = edge(v2, v0, p), w2 = edge(v0, v1, p).
	for i, e := range [3][2]screenVert{{v1, v2}, {v2, v0}, {v0, v1}} {
		a, b := e[0], e[1]
		s.ax[i], s.ay[i] = a.x, a.y
		s.ex[i], s.ey[i] = b.x-a.x, b.y-a.y
		s.iey[i] = 1 / s.ey[i]
	}
	s.z0, s.z1, s.z2 = v0.z, v1.z, v2.z
	s.invArea = 1 / area
	zmin := min3(s.z0, s.z1, s.z2)
	// Interpolated z is a convex combination of the vertex depths up to
	// rounding, so pad the bound by a relative error term many orders above
	// the true ulp accumulation; the coarse-z test stays conservative.
	zerr := 1e-6*(math.Abs(s.z0)+math.Abs(s.z1)+math.Abs(s.z2)) + 1e-12
	s.zminSafe = zmin - zerr
	s.minX, s.maxX = int32(minX), int32(maxX)
	s.minY, s.maxY = int32(minY), int32(maxY)
	s.cr, s.cg, s.cb = cr, cg, cb
	return s, true
}

// appendTriSetups transforms, near-clips and fan-triangulates one scene
// triangle, appending a setup record per resulting screen triangle. poly is
// the caller's clip scratch (≥ 4 capacity). The screen mapping matches
// Rasterizer.toScreen operation for operation.
func appendTriSetups(dst []triSetup, vp Mat4, t Triangle, poly []Vec4, fullW, fullH, y0, y1 int) []triSetup {
	clip := [3]Vec4{
		vp.TransformPoint(t.V[0]),
		vp.TransformPoint(t.V[1]),
		vp.TransformPoint(t.V[2]),
	}
	out := clipNear(clip[:], poly[:0])
	if len(out) < 3 {
		return dst
	}
	v0 := toScreenVert(out[0], fullW, fullH)
	for i := 1; i+1 < len(out); i++ {
		v1 := toScreenVert(out[i], fullW, fullH)
		v2 := toScreenVert(out[i+1], fullW, fullH)
		if s, ok := setupTri(v0, v1, v2, t.R, t.G, t.B, fullW, y0, y1); ok {
			dst = append(dst, s)
		}
	}
	return dst
}

// toScreenVert is the perspective divide + viewport transform, identical to
// Rasterizer.toScreen but free of the receiver so the setup pass can use it.
func toScreenVert(v Vec4, fullW, fullH int) screenVert {
	inv := 1 / v.W
	nx, ny, nz := v.X*inv, v.Y*inv, v.Z*inv
	return screenVert{
		x: (nx + 1) * 0.5 * float64(fullW),
		y: (1 - (ny+1)*0.5) * float64(fullH),
		z: nz,
	}
}

// tightenSpan narrows the pixel span [lo, hi] of one row to the part where
// edge function w(px) = fm − ey·(px−ax) can still be ≥ 0, given the row
// constant fm. It only ever *excludes* pixels whose evaluated w is strictly
// negative — pixels the fill loop rejects anyway — so the rasterized output
// and both fill counters are unchanged; the loop just walks fewer misses.
//
// Conservativeness: for ey > 0 the evaluated w decreases with px, crossing
// zero near xc = ax + fm/ey. A pixel the full loop would accept satisfies
// fm − ey·(px−ax) ≥ −ε with ε bounded by a few ulps of |fm| + |ey|·|px−ax|,
// i.e. px ≤ xc + ε/ey. The margin below over-covers that by many orders of
// magnitude (1e-12 relative on every contributing magnitude, plus one whole
// pixel), so no accepted pixel is ever cut. ey < 0 mirrors. Non-finite
// intermediates (overflowing coordinates) disable tightening for the edge.
func tightenSpan(lo, hi *int, fm, ey, iey, ax float64, maxX int) (rowLive bool) {
	if ey == 0 {
		// w = fm − (±0)·(px−ax): equal to fm for the sign test on every
		// pixel of the row (a zero product never flips fm across zero).
		return !(fm < 0)
	}
	xc := ax + fm*iey
	m := 1e-12*(math.Abs(xc)+math.Abs(ax)+float64(maxX)+1) + 1
	if !(m < 1e17) || xc != xc { // Inf/NaN guard: keep the full span
		return true
	}
	if ey > 0 {
		v := xc + m - 0.5 // accepted pixels have float64(x) ≤ v
		if v < float64(*hi) {
			if v < float64(*lo) {
				return false
			}
			*hi = int(math.Floor(v))
		}
	} else {
		v := xc - m - 0.5 // accepted pixels have float64(x) ≥ v
		if v > float64(*lo) {
			if v > float64(*hi) {
				return false
			}
			*lo = int(math.Ceil(v))
		}
	}
	return true
}

// drawSetupRows rasterizes a set-up triangle into absolute screen rows
// [ry0, ry1) of img, whose row 0 is absolute row imgY0 and whose depth
// buffer is zbuf (img.W floats per row, same origin). The per-pixel
// arithmetic — edge signs, barycentric depth, depth test, pixel write — is
// operation-for-operation the original fill loop, so output bytes and the
// Filled/Candidates counts over any row partition match the serial
// rasterizer exactly.
func drawSetupRows(s *triSetup, img *frame.Image, zbuf []float32, imgY0, ry0, ry1 int) (filled, cand int64) {
	yA := int(s.minY)
	if yA < ry0 {
		yA = ry0
	}
	yB := int(s.maxY)
	if yB > ry1-1 {
		yB = ry1 - 1
	}
	minX, maxX := int(s.minX), int(s.maxX)
	ax0, ay0, ex0, ey0 := s.ax[0], s.ay[0], s.ex[0], s.ey[0]
	ax1, ay1, ex1, ey1 := s.ax[1], s.ay[1], s.ex[1], s.ey[1]
	ax2, ay2, ex2, ey2 := s.ax[2], s.ay[2], s.ex[2], s.ey[2]
	for y := yA; y <= yB; y++ {
		py := float64(y) + 0.5
		fm0 := ex0 * (py - ay0)
		fm1 := ex1 * (py - ay1)
		fm2 := ex2 * (py - ay2)
		lo, hi := minX, maxX
		if !tightenSpan(&lo, &hi, fm0, ey0, s.iey[0], ax0, maxX) ||
			!tightenSpan(&lo, &hi, fm1, ey1, s.iey[1], ax1, maxX) ||
			!tightenSpan(&lo, &hi, fm2, ey2, s.iey[2], ax2, maxX) ||
			lo > hi {
			continue
		}
		rowZ := zbuf[(y-imgY0)*img.W:]
		for x := lo; x <= hi; x++ {
			px := float64(x) + 0.5
			w0 := fm0 - ey0*(px-ax0)
			w1 := fm1 - ey1*(px-ax1)
			w2 := fm2 - ey2*(px-ax2)
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			cand++
			z := (w0*s.z0 + w1*s.z1 + w2*s.z2) * s.invArea
			zf := float32(z)
			if zf >= rowZ[x] {
				continue
			}
			rowZ[x] = zf
			img.Set(x, y-imgY0, s.cr, s.cg, s.cb, 0xff)
			filled++
		}
	}
	return filled, cand
}
