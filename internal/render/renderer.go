package render

import "sccpipe/internal/frame"

// Stats aggregates the measurable work of one render call; the simulation's
// render cost model consumes these counts.
type Stats struct {
	CullStats
	Filled     int64 // pixels written after the depth test
	Candidates int64 // pixels covered before the depth test
	TrisDrawn  int   // triangles submitted to the rasterizer
}

// Renderer renders views of an octree-organized scene. It is not safe for
// concurrent use; each pipeline's render stage owns one instance (as each
// SCC renderer core does in the paper). Its culling scratch, depth buffer
// and clip scratch are reused across frames, so a walkthrough render loop
// is allocation-free in steady state.
type Renderer struct {
	Tree   *Octree
	culled []int32    // reusable scratch for culling results
	rast   Rasterizer // reusable depth buffer + clip scratch
}

// NewRenderer wraps a built scene octree.
func NewRenderer(tree *Octree) *Renderer { return &Renderer{Tree: tree} }

// RenderStrip renders screen rows [y0, y0+img.H) of a fullW×fullH frame
// into img: frustum-cull with the strip sub-frustum, then rasterize the
// survivors with the full-frame projection so strips tile seamlessly.
// Every pixel of img is overwritten, so pooled buffers with stale contents
// are fine.
func (r *Renderer) RenderStrip(cam Camera, img *frame.Image, fullW, fullH, y0 int) Stats {
	r.rast.Reset(img, fullW, fullH, y0)
	cull := cam.StripFrustum(fullW, fullH, y0, y0+img.H)
	var st Stats
	r.culled, st.CullStats = r.Tree.Cull(cull, r.culled[:0])
	vp := cam.ViewProjection(fullW, fullH)
	for _, ti := range r.culled {
		r.rast.DrawTriangle(vp, r.Tree.Triangles[ti])
	}
	st.Filled = r.rast.Filled
	st.Candidates = r.rast.Candidates
	st.TrisDrawn = len(r.culled)
	return st
}

// RenderFrame renders the whole frame (a strip spanning every row).
func (r *Renderer) RenderFrame(cam Camera, img *frame.Image) Stats {
	return r.RenderStrip(cam, img, img.W, img.H, 0)
}

// CullOnly performs just the frustum-culling traversal for the given strip,
// for callers (like the simulation cost model) that need traversal work
// without pixel output.
func (r *Renderer) CullOnly(cam Camera, fullW, fullH, y0, y1 int) CullStats {
	var st CullStats
	r.culled, st = r.Tree.Cull(cam.StripFrustum(fullW, fullH, y0, y1), r.culled[:0])
	return st
}
