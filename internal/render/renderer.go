package render

import (
	"sccpipe/internal/band"
	"sccpipe/internal/frame"
)

// Stats aggregates the measurable work of one render call; the simulation's
// render cost model consumes these counts.
type Stats struct {
	CullStats
	Filled     int64 // pixels written after the depth test
	Candidates int64 // pixels covered before the depth test
	TrisDrawn  int   // triangles submitted to the rasterizer
}

// Renderer renders views of an octree-organized scene. It is not safe for
// concurrent use; each pipeline's render stage owns one instance (as each
// SCC renderer core does in the paper). Its culling scratch, depth buffer
// and clip scratch are reused across frames, so a walkthrough render loop
// is allocation-free in steady state.
type Renderer struct {
	Tree *Octree
	// Bands, when set to a parallel pool, rasterizes independent row bands
	// of each strip concurrently: culling runs once, then each band replays
	// the surviving triangles into its own disjoint row range with its own
	// depth buffer. Pixels are identical to the serial path (each pixel's
	// result depends only on the triangle stream, never on other rows), so
	// banding is purely an intra-stage speedup. Nil or a serial pool keeps
	// the single-goroutine path.
	Bands  *band.Pool
	culled []int32    // reusable scratch for culling results
	rast   Rasterizer // reusable depth buffer + clip scratch

	// Band-rasterization state: one slot per band (sub-view + rasterizer,
	// both reused across frames) and the dispatch closure, built once.
	bands  []renderBand
	bandFn func(int)
	vp     Mat4
	nb     int
}

// renderBand is one band's reusable rasterization state. The image is a
// zero-copy row view of the strip being rendered; the rasterizer keeps its
// own depth buffer for the band's rows.
type renderBand struct {
	rast Rasterizer
	img  frame.Image
}

// minRenderBandRows keeps rasterization bands from shrinking below the
// point where per-band triangle setup outweighs the fill work.
const minRenderBandRows = 16

// NewRenderer wraps a built scene octree.
func NewRenderer(tree *Octree) *Renderer { return &Renderer{Tree: tree} }

// RenderStrip renders screen rows [y0, y0+img.H) of a fullW×fullH frame
// into img: frustum-cull with the strip sub-frustum, then rasterize the
// survivors with the full-frame projection so strips tile seamlessly.
// Every pixel of img is overwritten, so pooled buffers with stale contents
// are fine.
func (r *Renderer) RenderStrip(cam Camera, img *frame.Image, fullW, fullH, y0 int) Stats {
	cull := cam.StripFrustum(fullW, fullH, y0, y0+img.H)
	var st Stats
	r.culled, st.CullStats = r.Tree.Cull(cull, r.culled[:0])
	vp := cam.ViewProjection(fullW, fullH)
	st.TrisDrawn = len(r.culled)
	nb := r.Bands.Parallelism()
	if nb > img.H/minRenderBandRows {
		nb = img.H / minRenderBandRows
	}
	if nb <= 1 {
		r.rast.Reset(img, fullW, fullH, y0)
		for _, ti := range r.culled {
			r.rast.DrawTriangle(vp, r.Tree.Triangles[ti])
		}
		st.Filled = r.rast.Filled
		st.Candidates = r.rast.Candidates
		return st
	}
	for len(r.bands) < nb {
		r.bands = append(r.bands, renderBand{})
	}
	for b := 0; b < nb; b++ {
		b0, b1 := frame.StripBounds(img.H, nb, b)
		slot := &r.bands[b]
		slot.img = frame.Image{W: img.W, H: b1 - b0, Pix: img.Pix[b0*img.W*4 : b1*img.W*4]}
		slot.rast.Reset(&slot.img, fullW, fullH, y0+b0)
	}
	if r.bandFn == nil {
		r.bandFn = r.rasterBand
	}
	r.vp, r.nb = vp, nb
	r.Bands.Run(nb, r.bandFn)
	for b := 0; b < nb; b++ {
		st.Filled += r.bands[b].rast.Filled
		st.Candidates += r.bands[b].rast.Candidates
	}
	return st
}

// rasterBand replays the culled triangle stream into one band. Bands write
// disjoint row ranges and share only the read-only cull result, the scene,
// and the view-projection.
func (r *Renderer) rasterBand(b int) {
	slot := &r.bands[b]
	for _, ti := range r.culled {
		slot.rast.DrawTriangle(r.vp, r.Tree.Triangles[ti])
	}
}

// RenderFrame renders the whole frame (a strip spanning every row).
func (r *Renderer) RenderFrame(cam Camera, img *frame.Image) Stats {
	return r.RenderStrip(cam, img, img.W, img.H, 0)
}

// CullOnly performs just the frustum-culling traversal for the given strip,
// for callers (like the simulation cost model) that need traversal work
// without pixel output.
func (r *Renderer) CullOnly(cam Camera, fullW, fullH, y0, y1 int) CullStats {
	var st CullStats
	r.culled, st = r.Tree.Cull(cam.StripFrustum(fullW, fullH, y0, y1), r.culled[:0])
	return st
}
