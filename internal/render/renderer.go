package render

import (
	"sccpipe/internal/band"
	"sccpipe/internal/frame"
)

// Stats aggregates the measurable work of one render call; the simulation's
// render cost model and the online planner consume these counts.
type Stats struct {
	CullStats
	Filled     int64 // pixels written after the depth test
	Candidates int64 // pixels covered before the depth test
	TrisDrawn  int   // triangles submitted to the rasterizer
	// Tiled-path counters (zero on the serial and replay paths).
	TrisSetup    int   // screen triangles in the setup buffer after clip + fan
	TrisBinned   int64 // triangle→tile bin insertions (≥ TrisSetup)
	TilesTouched int   // tiles with a non-empty bin
	BinsRejected int64 // bin entries skipped by the coarse per-tile z test
}

// Add accumulates another render's counters (for per-frame totals).
func (s *Stats) Add(o Stats) {
	s.NodesVisited += o.NodesVisited
	s.TrisAccepted += o.TrisAccepted
	s.Filled += o.Filled
	s.Candidates += o.Candidates
	s.TrisDrawn += o.TrisDrawn
	s.TrisSetup += o.TrisSetup
	s.TrisBinned += o.TrisBinned
	s.TilesTouched += o.TilesTouched
	s.BinsRejected += o.BinsRejected
}

// RasterMode selects how RenderStrip turns the culled triangle list into
// pixels. All modes produce byte-identical pixels and identical Filled
// counts; they differ in how the work is scheduled and how much redundant
// per-triangle setup they perform.
type RasterMode int

const (
	// RasterAuto picks RasterTiled when the band pool is parallel and the
	// strip is tall enough to split, RasterSerial otherwise.
	RasterAuto RasterMode = iota
	// RasterSerial is the single-goroutine path: one pass over the culled
	// list through the reusable Rasterizer.
	RasterSerial
	// RasterReplay is the pre-tiling band path kept as an ablation
	// baseline: every band independently re-transforms, re-clips and
	// re-sets-up the whole culled list (O(bands × tris) setup).
	RasterReplay
	// RasterTiled is the binned path: one setup pass over the culled list,
	// triangles binned to row-tiles, tiles rasterized by the band pool
	// under work stealing, with coarse per-tile z rejection.
	RasterTiled
)

// Renderer renders views of an octree-organized scene. It is not safe for
// concurrent use; each pipeline's render stage owns one instance (as each
// SCC renderer core does in the paper). Its culling scratch, setup buffer,
// depth buffers and bins are reused across frames, so a walkthrough render
// loop is allocation-free in steady state.
type Renderer struct {
	Tree *Octree
	// Bands, when set to a parallel pool, spreads rasterization of each
	// strip across the pool. Culling and triangle setup run once on the
	// caller; workers then claim row-tiles whose pixels depend only on the
	// shared read-only setup buffer, so the output is byte-identical to the
	// serial path. Nil or a serial pool keeps the single-goroutine path.
	Bands *band.Pool
	// Mode overrides the rasterization strategy; zero value is RasterAuto.
	Mode RasterMode
	// TileRows fixes the row height of binning tiles (RasterTiled); 0 sizes
	// tiles automatically from the strip height and pool parallelism.
	TileRows int
	// NoCoarseZ disables the per-tile occlusion test (for ablations; the
	// test is conservative and never changes pixels or Filled, only skips
	// provably occluded bin entries).
	NoCoarseZ bool

	culled []int32     // reusable scratch for culling results
	rast   Rasterizer  // reusable depth buffer + clip scratch (serial path)
	tiled  tiledRaster // reusable setup buffer + tiles (tiled path)

	// Replay-mode state: one slot per band (sub-view + rasterizer, both
	// reused across frames) and the dispatch closure, built once.
	bands  []renderBand
	bandFn func(int)
	vp     Mat4
	nb     int
}

// renderBand is one replay band's reusable rasterization state. The image
// is a zero-copy row view of the strip being rendered; the rasterizer keeps
// its own depth buffer for the band's rows.
type renderBand struct {
	rast Rasterizer
	img  frame.Image
}

// minRenderBandRows keeps parallel rasterization from engaging on strips
// too short to split profitably.
const minRenderBandRows = 16

// NewRenderer wraps a built scene octree.
func NewRenderer(tree *Octree) *Renderer { return &Renderer{Tree: tree} }

// RenderStrip renders screen rows [y0, y0+img.H) of a fullW×fullH frame
// into img: frustum-cull with the strip sub-frustum, then rasterize the
// survivors with the full-frame projection so strips tile seamlessly. The
// octree is traversed front to back (near leaves emit first) so early
// triangles occlude later ones, which both cuts depth-test survivors and
// powers the tiled path's coarse-z rejection. Every pixel of img is
// overwritten, so pooled buffers with stale contents are fine.
func (r *Renderer) RenderStrip(cam Camera, img *frame.Image, fullW, fullH, y0 int) Stats {
	cull := cam.StripFrustum(fullW, fullH, y0, y0+img.H)
	var st Stats
	r.culled, st.CullStats = r.Tree.CullFrontToBack(cull, cam.Eye, r.culled[:0])
	vp := cam.ViewProjection(fullW, fullH)
	st.TrisDrawn = len(r.culled)

	mode := r.Mode
	if mode == RasterAuto {
		if r.Bands.Parallelism() > 1 && img.H >= minRenderBandRows {
			mode = RasterTiled
		} else {
			mode = RasterSerial
		}
	}
	switch mode {
	case RasterReplay:
		r.renderReplay(vp, img, fullW, fullH, y0, &st)
	case RasterTiled:
		r.renderTiled(vp, img, fullW, fullH, y0, &st)
	default:
		r.rast.Reset(img, fullW, fullH, y0)
		for _, ti := range r.culled {
			r.rast.DrawTriangle(vp, r.Tree.Triangles[ti])
		}
		st.Filled = r.rast.Filled
		st.Candidates = r.rast.Candidates
	}
	return st
}

// renderTiled is the binned path: one setup pass over the culled list into
// the reusable setup buffer, binning into row-tiles, then a work-stealing
// parallel pass where each band-pool lane claims tiles. See tiledRaster for
// the ownership and determinism rules.
func (r *Renderer) renderTiled(vp Mat4, img *frame.Image, fullW, fullH, y0 int, st *Stats) {
	tr := &r.tiled
	tr.setups = tr.setups[:0]
	for _, ti := range r.culled {
		tr.setups = appendTriSetups(tr.setups, vp, r.Tree.Triangles[ti], tr.poly[:0], fullW, fullH, y0, y0+img.H)
	}
	st.TrisSetup = len(tr.setups)

	workers := r.Bands.Parallelism()
	tileRows := r.TileRows
	if tileRows <= 0 {
		// Aim for ~4 tiles per lane so work stealing can absorb dense
		// regions, without letting tiles shrink into pure overhead.
		tileRows = img.H / (4 * workers)
		if tileRows < 4 {
			tileRows = 4
		}
	}
	if tileRows > img.H {
		tileRows = img.H
	}
	tr.prepare(img, y0, tileRows)
	st.TrisBinned, st.TilesTouched = tr.bin(tileRows)
	tr.coarseZ = !r.NoCoarseZ
	tr.run(r.Bands, workers)
	for i := 0; i < tr.nTiles; i++ {
		st.Filled += tr.tiles[i].filled
		st.Candidates += tr.tiles[i].cand
	}
	st.BinsRejected = tr.rejected
}

// renderReplay is the pre-tiling band path, kept as an ablation baseline:
// bands write disjoint row ranges and share only the read-only cull result,
// the scene, and the view-projection, but every band replays the whole
// culled list through transform/clip/setup.
func (r *Renderer) renderReplay(vp Mat4, img *frame.Image, fullW, fullH, y0 int, st *Stats) {
	nb := r.Bands.Parallelism()
	if nb > img.H/minRenderBandRows {
		nb = img.H / minRenderBandRows
	}
	if nb <= 1 {
		r.rast.Reset(img, fullW, fullH, y0)
		for _, ti := range r.culled {
			r.rast.DrawTriangle(vp, r.Tree.Triangles[ti])
		}
		st.Filled = r.rast.Filled
		st.Candidates = r.rast.Candidates
		return
	}
	for len(r.bands) < nb {
		r.bands = append(r.bands, renderBand{})
	}
	for b := 0; b < nb; b++ {
		b0, b1 := frame.StripBounds(img.H, nb, b)
		slot := &r.bands[b]
		slot.img = frame.Image{W: img.W, H: b1 - b0, Pix: img.Pix[b0*img.W*4 : b1*img.W*4]}
		slot.rast.Reset(&slot.img, fullW, fullH, y0+b0)
	}
	if r.bandFn == nil {
		r.bandFn = r.rasterBand
	}
	r.vp, r.nb = vp, nb
	r.Bands.Run(nb, r.bandFn)
	for b := 0; b < nb; b++ {
		st.Filled += r.bands[b].rast.Filled
		st.Candidates += r.bands[b].rast.Candidates
	}
}

// rasterBand replays the culled triangle stream into one replay band.
func (r *Renderer) rasterBand(b int) {
	slot := &r.bands[b]
	for _, ti := range r.culled {
		slot.rast.DrawTriangle(r.vp, r.Tree.Triangles[ti])
	}
}

// RenderFrame renders the whole frame (a strip spanning every row).
func (r *Renderer) RenderFrame(cam Camera, img *frame.Image) Stats {
	return r.RenderStrip(cam, img, img.W, img.H, 0)
}

// CullOnly performs just the frustum-culling traversal for the given strip,
// for callers (like the simulation cost model) that need traversal work
// without pixel output. It uses the same front-to-back traversal as
// RenderStrip so the reported node counts match a real render exactly.
func (r *Renderer) CullOnly(cam Camera, fullW, fullH, y0, y1 int) CullStats {
	var st CullStats
	r.culled, st = r.Tree.CullFrontToBack(cam.StripFrustum(fullW, fullH, y0, y1), cam.Eye, r.culled[:0])
	return st
}
