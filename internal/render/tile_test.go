package render

import (
	"math/rand"
	"testing"

	"sccpipe/internal/band"
	"sccpipe/internal/frame"
)

// renderPair renders the same strip serially and tiled and returns both
// images plus the tiled stats; the serial image is the golden.
func renderPair(t *testing.T, tree *Octree, cam Camera, fullW, fullH, y0, y1, tileRows int, pool *band.Pool) (*frame.Image, *frame.Image, Stats, Stats) {
	t.Helper()
	want := frame.New(fullW, y1-y0)
	got := frame.New(fullW, y1-y0)
	serial := NewRenderer(tree)
	serial.Mode = RasterSerial
	wantSt := serial.RenderStrip(cam, want, fullW, fullH, y0)
	tiled := NewRenderer(tree)
	tiled.Bands = pool
	tiled.Mode = RasterTiled
	tiled.TileRows = tileRows
	gotSt := tiled.RenderStrip(cam, got, fullW, fullH, y0)
	return want, got, wantSt, gotSt
}

// assertTiledMatch is the seam golden: byte-identical pixels, identical
// Filled, Candidates no larger than serial (coarse-z only ever removes
// provably occluded work).
func assertTiledMatch(t *testing.T, label string, want, got *frame.Image, wantSt, gotSt Stats) {
	t.Helper()
	if !got.Equal(want) {
		t.Fatalf("%s: tiled pixels differ from serial", label)
	}
	if gotSt.Filled != wantSt.Filled {
		t.Fatalf("%s: tiled Filled=%d serial=%d", label, gotSt.Filled, wantSt.Filled)
	}
	if gotSt.Candidates > wantSt.Candidates {
		t.Fatalf("%s: tiled Candidates=%d exceeds serial %d", label, gotSt.Candidates, wantSt.Candidates)
	}
}

// Adversarial tile geometries: strip heights not divisible by the tile
// height, 1-row tiles, strips starting at y0 > 0, and tile heights larger
// than the strip. Every combination must reproduce the serial bytes.
func TestTiledAdversarialGeometries(t *testing.T) {
	tree := BuildOctree(randTris(rand.New(rand.NewSource(41)), 300))
	cams := Walkthrough(2, tree.Bounds())
	pool := band.New(4)
	const fullW, fullH = 80, 101 // odd height: uneven everything
	for _, tileRows := range []int{1, 3, 7, 16, 500} {
		for _, strip := range [][2]int{{0, fullH}, {0, 37}, {29, 92}, {fullH - 19, fullH}} {
			for fi, cam := range cams {
				label := fmtLabel(tileRows, strip[0], strip[1], fi)
				want, got, wantSt, gotSt := renderPair(t, tree, cam, fullW, fullH, strip[0], strip[1], tileRows, pool)
				assertTiledMatch(t, label, want, got, wantSt, gotSt)
			}
		}
	}
}

func fmtLabel(tileRows, y0, y1, frame int) string {
	return "tileRows=" + itoa(tileRows) + " strip[" + itoa(y0) + "," + itoa(y1) + ") frame " + itoa(frame)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// Triangles spanning many tile boundaries: a few huge triangles covering
// the whole screen must land in every tile's bin and still produce serial
// bytes with 1-row tiles.
func TestTiledBoundarySpanningTriangles(t *testing.T) {
	tris := []Triangle{
		{V: [3]Vec3{{-8, -8, 0}, {8, -8, 0}, {0, 10, 0}}, R: 200, G: 10, B: 10},
		{V: [3]Vec3{{-8, 8, 1}, {8, 8, 1}, {0, -10, 1}}, G: 200},
		{V: [3]Vec3{{-8, -8, -1}, {8, -8, -1}, {0, 10, -1}}, B: 200},
	}
	tree := BuildOctree(tris)
	cam := testCamera()
	want, got, wantSt, gotSt := renderPair(t, tree, cam, 64, 64, 0, 64, 1, band.New(3))
	assertTiledMatch(t, "spanning", want, got, wantSt, gotSt)
	if gotSt.TrisBinned <= int64(gotSt.TrisSetup) {
		t.Fatalf("screen-covering triangles binned once each: binned=%d setup=%d",
			gotSt.TrisBinned, gotSt.TrisSetup)
	}
	if gotSt.TilesTouched != 64 {
		t.Fatalf("expected every 1-row tile touched, got %d", gotSt.TilesTouched)
	}
}

// Empty tiles (no overlapping triangles) must still be cleared to the
// background, exactly as the serial whole-strip clear does.
func TestTiledEmptyTilesCleared(t *testing.T) {
	// One small triangle near the top of the screen; bottom tiles get
	// empty bins.
	tree := BuildOctree([]Triangle{{
		V: [3]Vec3{{-0.5, 1.5, 0}, {0.5, 1.5, 0}, {0, 2.2, 0}}, R: 99,
	}})
	cam := testCamera()
	want, got, wantSt, gotSt := renderPair(t, tree, cam, 48, 96, 0, 96, 8, band.New(4))
	assertTiledMatch(t, "empty-tiles", want, got, wantSt, gotSt)
	if gotSt.Filled == 0 {
		t.Fatal("triangle not drawn at all")
	}
	if gotSt.TilesTouched >= 12 {
		t.Fatalf("expected mostly-empty tiles, but %d of 12 touched", gotSt.TilesTouched)
	}
	// The bottom-most row must be background (cleared by an empty tile).
	r, g, b, a := got.At(0, 95)
	if r != 0 || g != 0 || b != 0 || a != 0xff {
		t.Fatalf("empty tile not cleared: %d,%d,%d,%d", r, g, b, a)
	}
}

// Coarse-z must reject occluded bins on a depth-heavy scene without
// changing a single pixel or the Filled count.
func TestTiledCoarseZRejectsOccludedBins(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	// A wall of big near triangles in front of hundreds of small far ones:
	// front-to-back order draws the wall first, after which whole far bins
	// are provably occluded.
	var tris []Triangle
	tris = append(tris,
		Triangle{V: [3]Vec3{{-20, -20, 3}, {20, -20, 3}, {0, 25, 3}}, R: 240},
		Triangle{V: [3]Vec3{{-20, 20, 3.1}, {20, 20, 3.1}, {0, -25, 3.1}}, G: 240},
	)
	for i := 0; i < 400; i++ {
		base := Vec3{rng.Float64()*6 - 3, rng.Float64()*6 - 3, -5 - rng.Float64()*3}
		tris = append(tris, Triangle{
			V: [3]Vec3{
				base,
				base.Add(Vec3{0.4, 0, 0}),
				base.Add(Vec3{0, 0.4, 0}),
			},
			B: uint8(rng.Intn(256)),
		})
	}
	tree := BuildOctree(tris)
	cam := testCamera()
	want, got, wantSt, gotSt := renderPair(t, tree, cam, 96, 96, 0, 96, 8, band.New(4))
	assertTiledMatch(t, "coarse-z", want, got, wantSt, gotSt)
	if gotSt.BinsRejected == 0 {
		t.Fatal("occlusion-heavy scene rejected no bins")
	}
	if gotSt.Candidates >= wantSt.Candidates {
		t.Fatalf("rejections should shrink Candidates: tiled=%d serial=%d (rejected %d)",
			gotSt.Candidates, wantSt.Candidates, gotSt.BinsRejected)
	}

	// The NoCoarseZ ablation must reproduce serial Candidates exactly.
	plain := NewRenderer(tree)
	plain.Bands = band.New(4)
	plain.Mode = RasterTiled
	plain.TileRows = 8
	plain.NoCoarseZ = true
	img := frame.New(96, 96)
	plainSt := plain.RenderStrip(cam, img, 96, 96, 0)
	if !img.Equal(want) {
		t.Fatal("NoCoarseZ tiled pixels differ from serial")
	}
	if plainSt.Filled != wantSt.Filled || plainSt.Candidates != wantSt.Candidates {
		t.Fatalf("NoCoarseZ stats %+v != serial %+v", plainSt, wantSt)
	}
	if plainSt.BinsRejected != 0 {
		t.Fatalf("NoCoarseZ still rejected %d bins", plainSt.BinsRejected)
	}
}

// The front-to-back traversal must emit exactly the same triangle set and
// stats as the plain traversal, only reordered.
func TestCullFrontToBackSameSet(t *testing.T) {
	tree := BuildOctree(randTris(rand.New(rand.NewSource(59)), 600))
	cams := Walkthrough(3, tree.Bounds())
	for fi, cam := range cams {
		f := cam.Frustum(64, 64)
		plain, plainSt := tree.Cull(f, nil)
		ftb, ftbSt := tree.CullFrontToBack(f, cam.Eye, nil)
		if plainSt != ftbSt {
			t.Fatalf("frame %d: stats %+v != %+v", fi, ftbSt, plainSt)
		}
		if len(plain) != len(ftb) {
			t.Fatalf("frame %d: %d vs %d triangles", fi, len(ftb), len(plain))
		}
		seen := make(map[int32]int)
		for _, i := range plain {
			seen[i]++
		}
		for _, i := range ftb {
			seen[i]--
		}
		for id, n := range seen {
			if n != 0 {
				t.Fatalf("frame %d: triangle %d multiplicity differs by %d", fi, id, n)
			}
		}
	}
}

// Regression: Cull and CullFrontToBack must count only the triangles they
// append, not entries already present in the caller's slice.
func TestCullStatsIgnorePrepopulatedSlice(t *testing.T) {
	tree := BuildOctree(randTris(rand.New(rand.NewSource(61)), 200))
	cam := Walkthrough(1, tree.Bounds())[0]
	f := cam.Frustum(64, 64)
	fresh, freshSt := tree.Cull(f, nil)
	pre := make([]int32, 7, 7+len(fresh))
	out, preSt := tree.Cull(f, pre)
	if preSt.TrisAccepted != freshSt.TrisAccepted {
		t.Fatalf("pre-populated slice inflated TrisAccepted: %d vs %d",
			preSt.TrisAccepted, freshSt.TrisAccepted)
	}
	if len(out) != 7+len(fresh) {
		t.Fatalf("appended %d, want %d", len(out)-7, len(fresh))
	}
	_, ftbSt := tree.CullFrontToBack(f, cam.Eye, make([]int32, 5))
	if ftbSt.TrisAccepted != freshSt.TrisAccepted {
		t.Fatalf("front-to-back pre-populated TrisAccepted: %d vs %d",
			ftbSt.TrisAccepted, freshSt.TrisAccepted)
	}
}

// Auto mode must pick the tiled path on a parallel pool and the serial
// path on a serial pool, with identical bytes either way.
func TestRasterAutoDispatch(t *testing.T) {
	tree := BuildOctree(randTris(rand.New(rand.NewSource(67)), 200))
	cam := Walkthrough(1, tree.Bounds())[0]
	serial := NewRenderer(tree)
	want := frame.New(64, 64)
	serial.RenderFrame(cam, want)

	auto := NewRenderer(tree)
	auto.Bands = band.New(4)
	got := frame.New(64, 64)
	st := auto.RenderFrame(cam, got)
	if st.TrisSetup == 0 && st.TrisDrawn > 0 {
		t.Fatalf("auto on a parallel pool did not take the tiled path: %+v", st)
	}
	if !got.Equal(want) {
		t.Fatal("auto tiled render differs from serial")
	}

	autoSerial := NewRenderer(tree)
	autoSerial.Bands = band.Serial
	got2 := frame.New(64, 64)
	st2 := autoSerial.RenderFrame(cam, got2)
	if st2.TrisSetup != 0 || st2.TrisBinned != 0 {
		t.Fatalf("auto on a serial pool engaged tiling: %+v", st2)
	}
	if !got2.Equal(want) {
		t.Fatal("auto serial render differs from serial")
	}
}
