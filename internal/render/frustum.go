package render

// Plane is a half-space a·x + b·y + c·z + d ≥ 0.
type Plane struct{ A, B, C, D float64 }

// DistanceTo returns the signed distance-like value of the plane equation at p
// (positive on the inside).
func (pl Plane) DistanceTo(p Vec3) float64 {
	return pl.A*p.X + pl.B*p.Y + pl.C*p.Z + pl.D
}

// Frustum is the six clipping planes of a view-projection matrix, inward
// facing, extracted with the Gribb/Hartmann method.
type Frustum [6]Plane

// FrustumFromMatrix extracts the frustum of a combined view-projection
// matrix (row-major, as produced by Perspective.Mul(LookAt...)).
func FrustumFromMatrix(m Mat4) Frustum {
	row := func(i int) [4]float64 { return [4]float64{m[i*4], m[i*4+1], m[i*4+2], m[i*4+3]} }
	r0, r1, r2, r3 := row(0), row(1), row(2), row(3)
	mk := func(a, b [4]float64, sign float64) Plane {
		return normalizePlane(Plane{b[0] + sign*a[0], b[1] + sign*a[1], b[2] + sign*a[2], b[3] + sign*a[3]})
	}
	return Frustum{
		mk(r0, r3, +1), // left:   r3 + r0
		mk(r0, r3, -1), // right:  r3 - r0
		mk(r1, r3, +1), // bottom: r3 + r1
		mk(r1, r3, -1), // top:    r3 - r1
		mk(r2, r3, +1), // near:   r3 + r2
		mk(r2, r3, -1), // far:    r3 - r2
	}
}

func normalizePlane(p Plane) Plane {
	n := Vec3{p.A, p.B, p.C}.Len()
	if n == 0 {
		return p
	}
	return Plane{p.A / n, p.B / n, p.C / n, p.D / n}
}

// ContainsPoint reports whether p is inside all six planes.
func (f Frustum) ContainsPoint(p Vec3) bool {
	for _, pl := range f {
		if pl.DistanceTo(p) < 0 {
			return false
		}
	}
	return true
}

// IntersectsAABB conservatively tests a box against the frustum: it returns
// false only when the box is certainly outside (fully behind some plane).
// This is the standard p-vertex test used for octree culling.
func (f Frustum) IntersectsAABB(b AABB) bool {
	for _, pl := range f {
		// Pick the box corner furthest along the plane normal.
		p := Vec3{b.Min.X, b.Min.Y, b.Min.Z}
		if pl.A >= 0 {
			p.X = b.Max.X
		}
		if pl.B >= 0 {
			p.Y = b.Max.Y
		}
		if pl.C >= 0 {
			p.Z = b.Max.Z
		}
		if pl.DistanceTo(p) < 0 {
			return false
		}
	}
	return true
}
