// Package render implements the software 3D renderer standing in for the
// paper's os-mesa render stage: linear algebra, an octree over the scene's
// triangles, frustum culling, and a scanline triangle rasterizer with a
// depth buffer. It supports rendering only a horizontal strip of the screen
// (sort-first parallelization, Molnar's classification) exactly as the
// paper's n-renderer configuration requires.
package render

import "math"

// Vec3 is a 3-component vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + o.
func (v Vec3) Add(o Vec3) Vec3 { return Vec3{v.X + o.X, v.Y + o.Y, v.Z + o.Z} }

// Sub returns v − o.
func (v Vec3) Sub(o Vec3) Vec3 { return Vec3{v.X - o.X, v.Y - o.Y, v.Z - o.Z} }

// Scale returns v·s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product.
func (v Vec3) Dot(o Vec3) float64 { return v.X*o.X + v.Y*o.Y + v.Z*o.Z }

// Cross returns the cross product.
func (v Vec3) Cross(o Vec3) Vec3 {
	return Vec3{
		v.Y*o.Z - v.Z*o.Y,
		v.Z*o.X - v.X*o.Z,
		v.X*o.Y - v.Y*o.X,
	}
}

// Len returns the Euclidean length.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length (zero vectors are returned
// unchanged).
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Vec4 is a homogeneous 4-component vector.
type Vec4 struct{ X, Y, Z, W float64 }

// XYZ drops the homogeneous coordinate without dividing.
func (v Vec4) XYZ() Vec3 { return Vec3{v.X, v.Y, v.Z} }

// Mat4 is a 4×4 row-major matrix.
type Mat4 [16]float64

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1}
}

// Mul returns m × o (applying o first when transforming column vectors).
func (m Mat4) Mul(o Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[r*4+k] * o[k*4+c]
			}
			out[r*4+c] = s
		}
	}
	return out
}

// Transform applies m to a homogeneous point.
func (m Mat4) Transform(v Vec4) Vec4 {
	return Vec4{
		m[0]*v.X + m[1]*v.Y + m[2]*v.Z + m[3]*v.W,
		m[4]*v.X + m[5]*v.Y + m[6]*v.Z + m[7]*v.W,
		m[8]*v.X + m[9]*v.Y + m[10]*v.Z + m[11]*v.W,
		m[12]*v.X + m[13]*v.Y + m[14]*v.Z + m[15]*v.W,
	}
}

// TransformPoint applies m to a 3D point (w = 1) without dividing.
func (m Mat4) TransformPoint(p Vec3) Vec4 {
	return m.Transform(Vec4{p.X, p.Y, p.Z, 1})
}

// LookAt builds a right-handed view matrix for an eye looking at a target.
func LookAt(eye, target, up Vec3) Mat4 {
	f := target.Sub(eye).Normalize()
	s := f.Cross(up).Normalize()
	u := s.Cross(f)
	return Mat4{
		s.X, s.Y, s.Z, -s.Dot(eye),
		u.X, u.Y, u.Z, -u.Dot(eye),
		-f.X, -f.Y, -f.Z, f.Dot(eye),
		0, 0, 0, 1,
	}
}

// Perspective builds an OpenGL-style perspective projection. fovY is the
// full vertical field of view in radians.
func Perspective(fovY, aspect, near, far float64) Mat4 {
	f := 1 / math.Tan(fovY/2)
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// PerspectiveOffCenter builds an asymmetric-frustum projection whose near
// plane window is [l, r]×[b, t]. The paper's n-renderer configuration needs
// this: each renderer adjusts the camera frustum to cover only its strip.
func PerspectiveOffCenter(l, r, b, t, near, far float64) Mat4 {
	return Mat4{
		2 * near / (r - l), 0, (r + l) / (r - l), 0,
		0, 2 * near / (t - b), (t + b) / (t - b), 0,
		0, 0, (far + near) / (near - far), 2 * far * near / (near - far),
		0, 0, -1, 0,
	}
}

// AABB is an axis-aligned bounding box.
type AABB struct{ Min, Max Vec3 }

// Extend grows the box to include p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{
		Min: Vec3{math.Min(b.Min.X, p.X), math.Min(b.Min.Y, p.Y), math.Min(b.Min.Z, p.Z)},
		Max: Vec3{math.Max(b.Max.X, p.X), math.Max(b.Max.Y, p.Y), math.Max(b.Max.Z, p.Z)},
	}
}

// Union returns the smallest box containing both boxes.
func (b AABB) Union(o AABB) AABB { return b.Extend(o.Min).Extend(o.Max) }

// Center returns the box midpoint.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Contains reports whether p lies inside the closed box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// EmptyAABB returns a box that Extend can grow from.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Triangle is a colored scene primitive.
type Triangle struct {
	V       [3]Vec3
	R, G, B uint8
}

// Bounds returns the triangle's bounding box.
func (t Triangle) Bounds() AABB {
	return EmptyAABB().Extend(t.V[0]).Extend(t.V[1]).Extend(t.V[2])
}

// Centroid returns the triangle's centroid.
func (t Triangle) Centroid() Vec3 {
	return t.V[0].Add(t.V[1]).Add(t.V[2]).Scale(1.0 / 3.0)
}
