package render

// Wavefront OBJ import, so real CAD models (like the paper's NYC scene)
// can replace the procedural city. The subset understood here covers what
// triangle-soup exports produce: v, f (with arbitrary polygon fan
// triangulation and v/vt/vn index forms, including negative indices),
// usemtl/newmtl with Kd diffuse colors from a companion MTL, and comments.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// OBJColor is a diffuse material color.
type OBJColor struct{ R, G, B uint8 }

var defaultOBJColor = OBJColor{R: 180, G: 180, B: 180}

// LoadMTL parses the Kd entries of a Wavefront material library.
func LoadMTL(r io.Reader) (map[string]OBJColor, error) {
	mats := make(map[string]OBJColor)
	sc := bufio.NewScanner(r)
	current := ""
	for line := 1; sc.Scan(); line++ {
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "newmtl":
			if len(fields) < 2 {
				return nil, fmt.Errorf("mtl line %d: newmtl without name", line)
			}
			current = fields[1]
			mats[current] = defaultOBJColor
		case "Kd":
			if current == "" {
				return nil, fmt.Errorf("mtl line %d: Kd before newmtl", line)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("mtl line %d: Kd needs 3 components", line)
			}
			var rgb [3]float64
			for i := 0; i < 3; i++ {
				v, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("mtl line %d: %v", line, err)
				}
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				rgb[i] = v
			}
			mats[current] = OBJColor{
				R: uint8(rgb[0]*255 + 0.5),
				G: uint8(rgb[1]*255 + 0.5),
				B: uint8(rgb[2]*255 + 0.5),
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return mats, nil
}

// LoadOBJ parses a Wavefront OBJ stream into triangles, fan-triangulating
// polygons. materials may be nil; unknown/absent materials fall back to a
// neutral grey.
func LoadOBJ(r io.Reader, materials map[string]OBJColor) ([]Triangle, error) {
	var verts []Vec3
	var tris []Triangle
	color := defaultOBJColor

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for line := 1; sc.Scan(); line++ {
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "v":
			if len(fields) < 4 {
				return nil, fmt.Errorf("obj line %d: vertex needs 3 coordinates", line)
			}
			var p [3]float64
			for i := 0; i < 3; i++ {
				v, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("obj line %d: %v", line, err)
				}
				p[i] = v
			}
			verts = append(verts, Vec3{p[0], p[1], p[2]})
		case "usemtl":
			color = defaultOBJColor
			if len(fields) >= 2 && materials != nil {
				if c, ok := materials[fields[1]]; ok {
					color = c
				}
			}
		case "f":
			if len(fields) < 4 {
				return nil, fmt.Errorf("obj line %d: face needs ≥3 vertices", line)
			}
			idx := make([]int, 0, len(fields)-1)
			for _, f := range fields[1:] {
				vi, err := parseFaceIndex(f, len(verts))
				if err != nil {
					return nil, fmt.Errorf("obj line %d: %v", line, err)
				}
				idx = append(idx, vi)
			}
			for i := 1; i+1 < len(idx); i++ {
				tris = append(tris, Triangle{
					V: [3]Vec3{verts[idx[0]], verts[idx[i]], verts[idx[i+1]]},
					R: color.R, G: color.G, B: color.B,
				})
			}
		// vt, vn, g, o, s, mtllib: ignored (no textures/normals/groups).
		case "vt", "vn", "g", "o", "s", "mtllib", "l", "p":
		default:
			// Unknown directives are skipped, as most loaders do.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tris, nil
}

// parseFaceIndex resolves an OBJ face vertex reference ("7", "7/2", "7/2/3",
// "7//3", or negative relative forms) to a 0-based vertex index.
func parseFaceIndex(s string, nVerts int) (int, error) {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	switch {
	case v > 0:
		v--
	case v < 0:
		v = nVerts + v
	default:
		return 0, fmt.Errorf("face index 0 is invalid")
	}
	if v < 0 || v >= nVerts {
		return 0, fmt.Errorf("face index %s out of range (%d vertices)", s, nVerts)
	}
	return v, nil
}
