package render

import (
	"math"
	"testing"
	"testing/quick"
)

func vecNear(a, b Vec3, tol float64) bool {
	return math.Abs(a.X-b.X) < tol && math.Abs(a.Y-b.Y) < tol && math.Abs(a.Z-b.Z) < tol
}

func TestVecBasics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if got := a.Cross(b); got != (Vec3{0, 0, 1}) {
		t.Fatalf("X×Y = %v, want Z", got)
	}
}

func TestQuickCrossIsOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz int8) bool {
		a := Vec3{float64(ax), float64(ay), float64(az)}
		b := Vec3{float64(bx), float64(by), float64(bz)}
		c := a.Cross(b)
		return math.Abs(c.Dot(a)) < 1e-9 && math.Abs(c.Dot(b)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec3{3, 4, 0}.Normalize()
	if math.Abs(v.Len()-1) > 1e-12 {
		t.Fatalf("len = %v", v.Len())
	}
	z := Vec3{}.Normalize()
	if z != (Vec3{}) {
		t.Fatal("zero vector changed by Normalize")
	}
}

func TestMatIdentity(t *testing.T) {
	m := Identity()
	p := Vec4{1, 2, 3, 1}
	if got := m.Transform(p); got != p {
		t.Fatalf("identity transform = %v", got)
	}
	if got := m.Mul(m); got != m {
		t.Fatal("I·I != I")
	}
}

func TestMatMulAssociativity(t *testing.T) {
	a := Perspective(1, 1.5, 0.1, 100)
	b := LookAt(Vec3{1, 2, 3}, Vec3{0, 0, 0}, Vec3{0, 1, 0})
	p := Vec4{0.3, -0.2, -4, 1}
	lhs := a.Mul(b).Transform(p)
	rhs := a.Transform(b.Transform(p))
	for _, d := range []float64{lhs.X - rhs.X, lhs.Y - rhs.Y, lhs.Z - rhs.Z, lhs.W - rhs.W} {
		if math.Abs(d) > 1e-9 {
			t.Fatalf("(AB)p != A(Bp): %v vs %v", lhs, rhs)
		}
	}
}

func TestLookAtMapsEyeToOrigin(t *testing.T) {
	eye := Vec3{5, 3, -2}
	m := LookAt(eye, Vec3{0, 0, 0}, Vec3{0, 1, 0})
	got := m.TransformPoint(eye)
	if !vecNear(got.XYZ(), Vec3{}, 1e-9) {
		t.Fatalf("eye maps to %v", got)
	}
}

func TestLookAtTargetOnNegativeZ(t *testing.T) {
	m := LookAt(Vec3{0, 0, 5}, Vec3{0, 0, 0}, Vec3{0, 1, 0})
	got := m.TransformPoint(Vec3{0, 0, 0})
	if math.Abs(got.X) > 1e-9 || math.Abs(got.Y) > 1e-9 || got.Z >= 0 {
		t.Fatalf("target in view space = %v, want on -Z axis", got)
	}
}

func TestPerspectiveDepthRange(t *testing.T) {
	near, far := 0.5, 50.0
	m := Perspective(math.Pi/2, 1, near, far)
	atNear := m.TransformPoint(Vec3{0, 0, -near})
	atFar := m.TransformPoint(Vec3{0, 0, -far})
	if z := atNear.Z / atNear.W; math.Abs(z+1) > 1e-9 {
		t.Fatalf("near plane NDC z = %v, want -1", z)
	}
	if z := atFar.Z / atFar.W; math.Abs(z-1) > 1e-9 {
		t.Fatalf("far plane NDC z = %v, want 1", z)
	}
}

func TestPerspectiveOffCenterMatchesSymmetric(t *testing.T) {
	fov, aspect, near, far := 1.1, 1.25, 0.2, 30.0
	tt := near * math.Tan(fov/2)
	rr := tt * aspect
	sym := Perspective(fov, aspect, near, far)
	off := PerspectiveOffCenter(-rr, rr, -tt, tt, near, far)
	p := Vec4{0.3, 0.7, -5, 1}
	a, b := sym.Transform(p), off.Transform(p)
	for _, d := range []float64{a.X - b.X, a.Y - b.Y, a.Z - b.Z, a.W - b.W} {
		if math.Abs(d) > 1e-9 {
			t.Fatalf("off-center with full window differs: %v vs %v", a, b)
		}
	}
}

func TestAABBExtendContains(t *testing.T) {
	b := EmptyAABB().Extend(Vec3{0, 0, 0}).Extend(Vec3{2, 3, 4})
	if !b.Contains(Vec3{1, 1, 1}) || b.Contains(Vec3{3, 0, 0}) {
		t.Fatal("containment wrong")
	}
	if b.Center() != (Vec3{1, 1.5, 2}) {
		t.Fatalf("center = %v", b.Center())
	}
}

func TestTriangleBounds(t *testing.T) {
	tri := Triangle{V: [3]Vec3{{0, 0, 0}, {2, 1, 0}, {1, 3, -1}}}
	b := tri.Bounds()
	if b.Min != (Vec3{0, 0, -1}) || b.Max != (Vec3{2, 3, 0}) {
		t.Fatalf("bounds = %+v", b)
	}
	if !vecNear(tri.Centroid(), Vec3{1, 4.0 / 3.0, -1.0 / 3.0}, 1e-12) {
		t.Fatalf("centroid = %v", tri.Centroid())
	}
}
