package render

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sccpipe/internal/frame"
)

func testCamera() Camera {
	return Camera{
		Eye:    Vec3{0, 0, 5},
		Target: Vec3{0, 0, 0},
		Up:     Vec3{0, 1, 0},
		FovY:   math.Pi / 2,
		Near:   0.1,
		Far:    100,
	}
}

func TestFrustumContainsLookedAtPoint(t *testing.T) {
	cam := testCamera()
	f := cam.Frustum(100, 100)
	if !f.ContainsPoint(Vec3{0, 0, 0}) {
		t.Fatal("target outside frustum")
	}
	if f.ContainsPoint(Vec3{0, 0, 10}) {
		t.Fatal("point behind camera inside frustum")
	}
	if f.ContainsPoint(Vec3{0, 0, -200}) {
		t.Fatal("point beyond far plane inside frustum")
	}
}

func TestFrustumAABBConservative(t *testing.T) {
	cam := testCamera()
	f := cam.Frustum(100, 100)
	if !f.IntersectsAABB(AABB{Min: Vec3{-1, -1, -1}, Max: Vec3{1, 1, 1}}) {
		t.Fatal("visible box culled")
	}
	if f.IntersectsAABB(AABB{Min: Vec3{-1, -1, 50}, Max: Vec3{1, 1, 60}}) {
		t.Fatal("box behind camera accepted")
	}
}

// Property: a box containing any point inside the frustum must intersect it
// (no false culls — the test may accept extra boxes but never reject a
// visible one).
func TestQuickCullingConservative(t *testing.T) {
	cam := testCamera()
	f := cam.Frustum(64, 64)
	gen := rand.New(rand.NewSource(7))
	check := func() bool {
		p := Vec3{gen.Float64()*8 - 4, gen.Float64()*8 - 4, gen.Float64()*8 - 4}
		if !f.ContainsPoint(p) {
			return true // only points inside the frustum are interesting
		}
		half := gen.Float64() * 2
		b := AABB{
			Min: p.Sub(Vec3{half, half, half}),
			Max: p.Add(Vec3{half, half, half}),
		}
		return f.IntersectsAABB(b)
	}
	for i := 0; i < 3000; i++ {
		if !check() {
			t.Fatal("frustum test culled a box containing a visible point")
		}
	}
}

func randTris(rng *rand.Rand, n int) []Triangle {
	tris := make([]Triangle, n)
	for i := range tris {
		base := Vec3{rng.Float64()*20 - 10, rng.Float64()*20 - 10, rng.Float64()*20 - 10}
		tris[i] = Triangle{
			V: [3]Vec3{
				base,
				base.Add(Vec3{rng.Float64(), rng.Float64(), rng.Float64()}),
				base.Add(Vec3{rng.Float64(), rng.Float64(), rng.Float64()}),
			},
			R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256)),
		}
	}
	return tris
}

func TestOctreeHoldsAllTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tris := randTris(rng, 500)
	tree := BuildOctree(tris)
	if tree.NodeCount() < 2 {
		t.Fatalf("octree did not split: %d nodes", tree.NodeCount())
	}
	// A frustum containing everything must return every triangle once.
	cam := Camera{Eye: Vec3{0, 0, 60}, Target: Vec3{}, Up: Vec3{0, 1, 0}, FovY: 1, Near: 0.1, Far: 1000}
	got, st := tree.Cull(cam.Frustum(64, 64), nil)
	if len(got) != len(tris) {
		t.Fatalf("all-visible cull returned %d of %d", len(got), len(tris))
	}
	seen := make(map[int32]bool, len(got))
	for _, i := range got {
		if seen[i] {
			t.Fatalf("triangle %d returned twice", i)
		}
		seen[i] = true
	}
	if st.NodesVisited < 1 || st.TrisAccepted != len(tris) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOctreeCullsInvisible(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tris := randTris(rng, 500)
	tree := BuildOctree(tris)
	// Look away from the scene: almost nothing should survive.
	cam := Camera{Eye: Vec3{0, 0, 60}, Target: Vec3{0, 0, 120}, Up: Vec3{0, 1, 0}, FovY: 1, Near: 0.1, Far: 1000}
	got, _ := tree.Cull(cam.Frustum(64, 64), nil)
	if len(got) != 0 {
		t.Fatalf("looking away still returned %d triangles", len(got))
	}
}

func TestOctreeEmptyScene(t *testing.T) {
	tree := BuildOctree(nil)
	got, st := tree.Cull(testCamera().Frustum(8, 8), nil)
	if len(got) != 0 || st.NodesVisited != 1 {
		t.Fatalf("empty cull: %d tris, %+v", len(got), st)
	}
}

// oneTriangleScene puts a big triangle squarely in front of the camera.
func oneTriangleScene() *Octree {
	return BuildOctree([]Triangle{{
		V: [3]Vec3{{-2, -2, 0}, {2, -2, 0}, {0, 2.5, 0}},
		R: 200, G: 10, B: 10,
	}})
}

func TestRenderFrameDrawsTriangle(t *testing.T) {
	r := NewRenderer(oneTriangleScene())
	img := frame.New(64, 64)
	st := r.RenderFrame(testCamera(), img)
	if st.Filled == 0 {
		t.Fatal("no pixels filled")
	}
	// Center pixel must be the triangle color.
	cr, cg, cb, _ := img.At(32, 32)
	if cr != 200 || cg != 10 || cb != 10 {
		t.Fatalf("center = %d,%d,%d", cr, cg, cb)
	}
	// A corner must remain background.
	cr, _, _, _ = img.At(0, 0)
	if cr != 0 {
		t.Fatal("corner unexpectedly drawn")
	}
}

func TestDepthBufferOrdering(t *testing.T) {
	// A red triangle in front of a green one, drawn in both orders.
	red := Triangle{V: [3]Vec3{{-2, -2, 1}, {2, -2, 1}, {0, 2.5, 1}}, R: 255}
	green := Triangle{V: [3]Vec3{{-2, -2, -1}, {2, -2, -1}, {0, 2.5, -1}}, G: 255}
	for _, order := range [][]Triangle{{red, green}, {green, red}} {
		img := frame.New(32, 32)
		rast := NewRasterizer(img, 32, 32, 0)
		vp := testCamera().ViewProjection(32, 32)
		for _, tri := range order {
			rast.DrawTriangle(vp, tri)
		}
		r, g, _, _ := img.At(16, 16)
		if r != 255 || g != 0 {
			t.Fatalf("front triangle lost: r=%d g=%d", r, g)
		}
	}
}

func TestNearPlaneClipping(t *testing.T) {
	// A triangle straddling the camera plane must not panic and must draw
	// only its visible part.
	tri := Triangle{V: [3]Vec3{{-2, -1, 10}, {2, -1, -10}, {0, 1, -10}}, R: 99}
	img := frame.New(32, 32)
	rast := NewRasterizer(img, 32, 32, 0)
	rast.DrawTriangle(testCamera().ViewProjection(32, 32), tri)
	if rast.Filled == 0 {
		t.Fatal("straddling triangle fully dropped")
	}
}

func TestTriangleBehindCameraDropped(t *testing.T) {
	tri := Triangle{V: [3]Vec3{{-1, -1, 20}, {1, -1, 20}, {0, 1, 20}}, R: 99}
	img := frame.New(32, 32)
	rast := NewRasterizer(img, 32, 32, 0)
	rast.DrawTriangle(testCamera().ViewProjection(32, 32), tri)
	if rast.Filled != 0 {
		t.Fatal("triangle behind camera drawn")
	}
}

// TestStripTiling is the sort-first correctness property at the heart of
// the paper's parallelization: rendering n strips separately and
// assembling them must equal rendering the full frame at once.
func TestStripTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tris := randTris(rng, 200)
	// Push the triangles in front of the camera.
	for i := range tris {
		for j := range tris[i].V {
			tris[i].V[j].Z -= 12
		}
	}
	tree := BuildOctree(tris)
	cam := testCamera()
	const W, H = 48, 47 // odd height exercises uneven strips
	full := frame.New(W, H)
	NewRenderer(tree).RenderFrame(cam, full)
	for _, n := range []int{2, 3, 5} {
		var strips []*frame.Strip
		for i := 0; i < n; i++ {
			y0, y1 := frame.StripBounds(H, n, i)
			img := frame.New(W, y1-y0)
			NewRenderer(tree).RenderStrip(cam, img, W, H, y0)
			strips = append(strips, &frame.Strip{Index: i, Y0: y0, Img: img})
		}
		got := frame.Assemble(W, H, strips)
		if !got.Equal(full) {
			t.Fatalf("n=%d: assembled strips differ from full-frame render", n)
		}
	}
}

func TestStripCullingReducesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tris := randTris(rng, 2000)
	for i := range tris {
		for j := range tris[i].V {
			tris[i].V[j].Z -= 12
		}
	}
	tree := BuildOctree(tris)
	cam := testCamera()
	r := NewRenderer(tree)
	fullCull := r.CullOnly(cam, 64, 64, 0, 64)
	stripCull := r.CullOnly(cam, 64, 64, 0, 8)
	if stripCull.TrisAccepted >= fullCull.TrisAccepted {
		t.Fatalf("strip cull accepted %d ≥ full %d; sub-frustum not narrowing",
			stripCull.TrisAccepted, fullCull.TrisAccepted)
	}
}

func TestWalkthroughDeterministicAndValid(t *testing.T) {
	b := AABB{Min: Vec3{0, 0, 0}, Max: Vec3{100, 40, 100}}
	a1 := Walkthrough(50, b)
	a2 := Walkthrough(50, b)
	if len(a1) != 50 {
		t.Fatalf("frames = %d", len(a1))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("walkthrough not deterministic")
		}
		if a1[i].Near <= 0 || a1[i].Far <= a1[i].Near {
			t.Fatalf("frame %d: bad near/far %g/%g", i, a1[i].Near, a1[i].Far)
		}
		if a1[i].Eye == a1[i].Target {
			t.Fatalf("frame %d: eye == target", i)
		}
	}
	// The camera must move.
	if a1[0].Eye == a1[25].Eye {
		t.Fatal("camera does not move")
	}
}

// Property: strip frusta are narrower than the full frustum — anything a
// strip accepts, the full frame accepts too.
func TestQuickStripFrustumSubset(t *testing.T) {
	cam := testCamera()
	full := cam.Frustum(64, 64)
	f := func(px, py, pz int8, y0raw, spanRaw uint8) bool {
		y0 := int(y0raw) % 56
		span := int(spanRaw)%8 + 1
		strip := cam.StripFrustum(64, 64, y0, y0+span)
		p := Vec3{float64(px) / 8, float64(py) / 8, float64(pz) / 8}
		if strip.ContainsPoint(p) && !full.ContainsPoint(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
