package render

import (
	"math/rand"
	"testing"

	"sccpipe/internal/band"
	"sccpipe/internal/frame"
)

var bandScene = BuildOctree(randTris(rand.New(rand.NewSource(23)), 400))

// Parallel rasterization must be pixel-identical to the serial path for
// every pool size, full frames and strips alike — in the replay mode with
// fully identical stats, and in the tiled mode with identical pixels,
// Filled and cull counts (Candidates may only shrink, via coarse-z).
func TestRenderStripBandsMatchSerial(t *testing.T) {
	const fullW, fullH = 96, 128
	cams := Walkthrough(3, bandScene.Bounds())
	serial := NewRenderer(bandScene)
	for _, mode := range []RasterMode{RasterReplay, RasterTiled} {
		for _, pool := range []*band.Pool{band.Serial, band.New(2), band.New(3), band.New(8)} {
			banded := NewRenderer(bandScene)
			banded.Bands = pool
			banded.Mode = mode
			for _, strip := range [][2]int{{0, fullH}, {0, fullH / 3}, {fullH / 3, 2 * fullH / 3}, {fullH - 17, fullH}} {
				y0, y1 := strip[0], strip[1]
				for fi, cam := range cams {
					want := frame.New(fullW, y1-y0)
					got := frame.New(fullW, y1-y0)
					wantSt := serial.RenderStrip(cam, want, fullW, fullH, y0)
					gotSt := banded.RenderStrip(cam, got, fullW, fullH, y0)
					if !got.Equal(want) {
						t.Fatalf("mode %d pool par=%d strip [%d,%d) frame %d: pixels differ from serial",
							mode, pool.Parallelism(), y0, y1, fi)
					}
					if mode == RasterReplay {
						if gotSt != wantSt {
							t.Fatalf("replay pool par=%d strip [%d,%d) frame %d: stats %+v != %+v",
								pool.Parallelism(), y0, y1, fi, gotSt, wantSt)
						}
						continue
					}
					if gotSt.CullStats != wantSt.CullStats || gotSt.TrisDrawn != wantSt.TrisDrawn ||
						gotSt.Filled != wantSt.Filled {
						t.Fatalf("tiled pool par=%d strip [%d,%d) frame %d: stats %+v vs serial %+v",
							pool.Parallelism(), y0, y1, fi, gotSt, wantSt)
					}
					if gotSt.Candidates > wantSt.Candidates || gotSt.Candidates < gotSt.Filled {
						t.Fatalf("tiled Candidates=%d outside [Filled=%d, serial=%d]",
							gotSt.Candidates, gotSt.Filled, wantSt.Candidates)
					}
				}
			}
		}
	}
}

// Short strips fall back to the serial path rather than degenerate tiles.
func TestRenderStripShortFallback(t *testing.T) {
	r := NewRenderer(bandScene)
	r.Bands = band.New(8)
	cam := Walkthrough(1, bandScene.Bounds())[0]
	img := frame.New(64, 9) // under minRenderBandRows: serial path
	want := frame.New(64, 9)
	wantSt := NewRenderer(bandScene).RenderStrip(cam, want, 64, 64, 3)
	gotSt := r.RenderStrip(cam, img, 64, 64, 3)
	if !img.Equal(want) {
		t.Fatal("short-strip fallback differs from serial render")
	}
	if gotSt != wantSt {
		t.Fatalf("short-strip fallback stats %+v != serial %+v", gotSt, wantSt)
	}
	if gotSt.TilesTouched != 0 || gotSt.TrisBinned != 0 {
		t.Fatalf("short strip engaged the tiled path: %+v", gotSt)
	}
}

// A warmed parallel renderer does not allocate per frame, in either
// parallel mode.
func TestRenderStripBandsSteadyStateAllocs(t *testing.T) {
	for _, mode := range []RasterMode{RasterReplay, RasterTiled} {
		r := NewRenderer(bandScene)
		r.Bands = band.New(4)
		r.Mode = mode
		cam := Walkthrough(1, bandScene.Bounds())[0]
		img := frame.New(128, 128)
		r.RenderStrip(cam, img, 128, 128, 0) // warm slots, zbufs, bins, cull scratch
		avg := testing.AllocsPerRun(20, func() { r.RenderStrip(cam, img, 128, 128, 0) })
		if avg > 0 {
			t.Fatalf("mode %d RenderStrip allocates %.1f objects per frame, want 0", mode, avg)
		}
	}
}
