package render

import (
	"math/rand"
	"testing"

	"sccpipe/internal/band"
	"sccpipe/internal/frame"
)

var bandScene = BuildOctree(randTris(rand.New(rand.NewSource(23)), 400))

// Band-parallel rasterization must be pixel- and stat-identical to the
// serial path for every pool size, full frames and strips alike.
func TestRenderStripBandsMatchSerial(t *testing.T) {
	const fullW, fullH = 96, 128
	cams := Walkthrough(3, bandScene.Bounds())
	serial := NewRenderer(bandScene)
	for _, pool := range []*band.Pool{band.Serial, band.New(2), band.New(3), band.New(8)} {
		banded := NewRenderer(bandScene)
		banded.Bands = pool
		for _, strip := range [][2]int{{0, fullH}, {0, fullH / 3}, {fullH / 3, 2 * fullH / 3}, {fullH - 17, fullH}} {
			y0, y1 := strip[0], strip[1]
			for fi, cam := range cams {
				want := frame.New(fullW, y1-y0)
				got := frame.New(fullW, y1-y0)
				wantSt := serial.RenderStrip(cam, want, fullW, fullH, y0)
				gotSt := banded.RenderStrip(cam, got, fullW, fullH, y0)
				if !got.Equal(want) {
					t.Fatalf("pool par=%d strip [%d,%d) frame %d: pixels differ from serial", pool.Parallelism(), y0, y1, fi)
				}
				if gotSt != wantSt {
					t.Fatalf("pool par=%d strip [%d,%d) frame %d: stats %+v != %+v", pool.Parallelism(), y0, y1, fi, gotSt, wantSt)
				}
			}
		}
	}
}

// Short strips fall back to the serial path rather than degenerate bands.
func TestRenderStripShortFallback(t *testing.T) {
	r := NewRenderer(bandScene)
	r.Bands = band.New(8)
	cam := Walkthrough(1, bandScene.Bounds())[0]
	img := frame.New(64, 9) // under 2*minRenderBandRows: single band
	want := frame.New(64, 9)
	NewRenderer(bandScene).RenderStrip(cam, want, 64, 64, 3)
	r.RenderStrip(cam, img, 64, 64, 3)
	if !img.Equal(want) {
		t.Fatal("short-strip fallback differs from serial render")
	}
}

// A warmed band-parallel renderer does not allocate per frame.
func TestRenderStripBandsSteadyStateAllocs(t *testing.T) {
	r := NewRenderer(bandScene)
	r.Bands = band.New(4)
	cam := Walkthrough(1, bandScene.Bounds())[0]
	img := frame.New(128, 128)
	r.RenderStrip(cam, img, 128, 128, 0) // warm slots, zbufs, cull scratch
	avg := testing.AllocsPerRun(20, func() { r.RenderStrip(cam, img, 128, 128, 0) })
	if avg > 0 {
		t.Fatalf("banded RenderStrip allocates %.1f objects per frame, want 0", avg)
	}
}
