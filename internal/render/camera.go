package render

import "math"

// Camera describes a perspective view.
type Camera struct {
	Eye, Target, Up Vec3
	FovY            float64 // full vertical field of view, radians
	Near, Far       float64
}

// View returns the camera's view matrix.
func (c Camera) View() Mat4 { return LookAt(c.Eye, c.Target, c.Up) }

// ViewProjection returns the combined matrix for a w×h frame.
func (c Camera) ViewProjection(w, h int) Mat4 {
	aspect := float64(w) / float64(h)
	return Perspective(c.FovY, aspect, c.Near, c.Far).Mul(c.View())
}

// StripViewProjection returns the matrix of the sub-frustum covering screen
// rows [y0, y1) of a w×h frame — the "adjusted viewing frustum" each
// renderer computes in the paper's n-renderer configuration. Projecting a
// point with the *full* frame matrix and rasterizing rows [y0, y1) shows
// exactly the geometry inside this sub-frustum.
func (c Camera) StripViewProjection(w, h, y0, y1 int) Mat4 {
	aspect := float64(w) / float64(h)
	t := c.Near * math.Tan(c.FovY/2)
	r := t * aspect
	// Screen row y maps to NDC y = 1 − 2·y/h (row 0 is the top).
	top := t * (1 - 2*float64(y0)/float64(h))
	bottom := t * (1 - 2*float64(y1)/float64(h))
	return PerspectiveOffCenter(-r, r, bottom, top, c.Near, c.Far).Mul(c.View())
}

// Frustum returns the camera's full-frame culling frustum.
func (c Camera) Frustum(w, h int) Frustum {
	return FrustumFromMatrix(c.ViewProjection(w, h))
}

// StripFrustum returns the culling frustum of screen rows [y0, y1).
func (c Camera) StripFrustum(w, h, y0, y1 int) Frustum {
	return FrustumFromMatrix(c.StripViewProjection(w, h, y0, y1))
}

// Walkthrough generates a deterministic flight of the given length through
// a scene with the given bounds, standing in for the paper's 400-frame
// virtual walkthrough of the city model: the camera circles the scene at
// varying radius and height, always looking at the scene's middle.
func Walkthrough(frames int, b AABB) []Camera {
	center := b.Center()
	size := b.Max.Sub(b.Min)
	radiusBase := 0.55 * math.Hypot(size.X, size.Z)
	cams := make([]Camera, frames)
	for i := range cams {
		u := float64(i) / float64(max(1, frames-1))
		ang := 2 * math.Pi * u
		radius := radiusBase * (0.75 + 0.25*math.Cos(3*ang))
		height := b.Min.Y + size.Y*(0.45+0.35*math.Sin(2*ang))
		eye := Vec3{
			center.X + radius*math.Cos(ang),
			height,
			center.Z + radius*math.Sin(ang),
		}
		look := Vec3{center.X, b.Min.Y + 0.3*size.Y, center.Z}
		cams[i] = Camera{
			Eye:    eye,
			Target: look,
			Up:     Vec3{0, 1, 0},
			FovY:   60 * math.Pi / 180,
			Near:   0.1,
			Far:    radiusBase * 4,
		}
	}
	return cams
}

// DwellHold is the frames-per-vantage-point of DwellWalkthrough.
const DwellHold = 6

// DwellWalkthrough generates an inspection-style flight: the camera visits
// the same vantage points as Walkthrough but holds each one for DwellHold
// frames — move, stop, look — the temporal profile of a human-driven
// inspection rather than a continuous fly-by. Consecutive held frames
// render identical geometry (only the seeded post-filters animate), which
// is the content regime where the serve layer's temporal delta encoding
// pays off.
func DwellWalkthrough(frames int, b AABB) []Camera {
	poses := Walkthrough((frames+DwellHold-1)/DwellHold, b)
	cams := make([]Camera, frames)
	for i := range cams {
		cams[i] = poses[i/DwellHold]
	}
	return cams
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
