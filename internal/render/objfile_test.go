package render

import (
	"strings"
	"testing"
)

const sampleOBJ = `
# a unit quad and a triangle
mtllib sample.mtl
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
v 0.5 0.5 1
usemtl red
f 1 2 3 4
usemtl blue
f 1/1 2/2/2 5//3
`

const sampleMTL = `
newmtl red
Kd 1.0 0.0 0.0
newmtl blue
Kd 0 0 1
newmtl unlit
`

func TestLoadMTL(t *testing.T) {
	mats, err := LoadMTL(strings.NewReader(sampleMTL))
	if err != nil {
		t.Fatal(err)
	}
	if mats["red"] != (OBJColor{R: 255}) {
		t.Fatalf("red = %+v", mats["red"])
	}
	if mats["blue"] != (OBJColor{B: 255}) {
		t.Fatalf("blue = %+v", mats["blue"])
	}
	if mats["unlit"] != defaultOBJColor {
		t.Fatalf("unlit = %+v", mats["unlit"])
	}
}

func TestLoadOBJTriangulatesAndColors(t *testing.T) {
	mats, err := LoadMTL(strings.NewReader(sampleMTL))
	if err != nil {
		t.Fatal(err)
	}
	tris, err := LoadOBJ(strings.NewReader(sampleOBJ), mats)
	if err != nil {
		t.Fatal(err)
	}
	// Quad fan-triangulates to 2, plus 1 = 3 triangles.
	if len(tris) != 3 {
		t.Fatalf("triangles = %d, want 3", len(tris))
	}
	if tris[0].R != 255 || tris[0].B != 0 {
		t.Fatalf("quad color = %d,%d,%d", tris[0].R, tris[0].G, tris[0].B)
	}
	if tris[2].B != 255 || tris[2].R != 0 {
		t.Fatalf("triangle color = %d,%d,%d", tris[2].R, tris[2].G, tris[2].B)
	}
	// The mixed-form face references vertex 5.
	if tris[2].V[2] != (Vec3{0.5, 0.5, 1}) {
		t.Fatalf("mixed-form vertex = %v", tris[2].V[2])
	}
}

func TestLoadOBJNegativeIndices(t *testing.T) {
	obj := "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n"
	tris, err := LoadOBJ(strings.NewReader(obj), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 1 || tris[0].V[1] != (Vec3{1, 0, 0}) {
		t.Fatalf("tris = %+v", tris)
	}
}

func TestLoadOBJUnknownMaterialFallsBack(t *testing.T) {
	obj := "v 0 0 0\nv 1 0 0\nv 0 1 0\nusemtl nosuch\nf 1 2 3\n"
	tris, err := LoadOBJ(strings.NewReader(obj), map[string]OBJColor{})
	if err != nil {
		t.Fatal(err)
	}
	if tris[0].R != defaultOBJColor.R {
		t.Fatalf("color = %+v", tris[0])
	}
}

func TestLoadOBJErrors(t *testing.T) {
	cases := []string{
		"v 1 2\n",            // short vertex
		"v a b c\n",          // bad float
		"f 1 2\nv 0 0 0\n",   // short face
		"v 0 0 0\nf 1 2 9\n", // index out of range
		"v 0 0 0\nf 0 1 1\n", // index zero
	}
	for i, src := range cases {
		if _, err := LoadOBJ(strings.NewReader(src), nil); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
	if _, err := LoadMTL(strings.NewReader("Kd 1 0 0\n")); err == nil {
		t.Error("Kd before newmtl accepted")
	}
	if _, err := LoadMTL(strings.NewReader("newmtl x\nKd 1 0\n")); err == nil {
		t.Error("short Kd accepted")
	}
}

func TestLoadOBJIntoOctreeAndRender(t *testing.T) {
	// End to end: a loaded model renders through the normal path.
	tris, err := LoadOBJ(strings.NewReader(sampleOBJ), nil)
	if err != nil {
		t.Fatal(err)
	}
	tree := BuildOctree(tris)
	cam := Camera{Eye: Vec3{0.5, 0.5, 5}, Target: Vec3{0.5, 0.5, 0}, Up: Vec3{0, 1, 0},
		FovY: 1, Near: 0.1, Far: 100}
	got, _ := tree.Cull(cam.Frustum(32, 32), nil)
	if len(got) != len(tris) {
		t.Fatalf("culled %d of %d", len(got), len(tris))
	}
}
