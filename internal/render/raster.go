package render

import (
	"math"

	"sccpipe/internal/frame"
)

// Rasterizer fills flat-shaded triangles into a horizontal strip of the
// screen with a depth buffer. The strip is the sort-first unit of the
// paper: a full-frame viewport whose rows [Y0, Y0+img.H) are materialized.
// A Rasterizer may be re-targeted at successive frames with Reset, reusing
// its depth buffer and clip scratch across the whole walkthrough.
type Rasterizer struct {
	img   *frame.Image
	zbuf  []float32
	poly  [4]Vec4 // near-clip output scratch (a triangle clips to ≤ 4 verts)
	FullW int
	FullH int
	Y0    int
	// Filled counts depth-test-passing pixel writes, for the cost model.
	Filled int64
	// Candidates counts pixels covered before the depth test.
	Candidates int64
}

// NewRasterizer wraps a strip buffer. img must be FullW wide; its rows
// correspond to screen rows starting at y0.
func NewRasterizer(img *frame.Image, fullW, fullH, y0 int) *Rasterizer {
	r := &Rasterizer{}
	r.Reset(img, fullW, fullH, y0)
	return r
}

// Reset re-targets the rasterizer at a strip buffer and clears color,
// depth and the fill counters. The depth buffer allocation is kept when it
// is already large enough, so a per-pipeline rasterizer renders a whole
// walkthrough without reallocating.
func (r *Rasterizer) Reset(img *frame.Image, fullW, fullH, y0 int) {
	if img.W != fullW {
		panic("render: strip width must equal full frame width")
	}
	if y0 < 0 || y0+img.H > fullH {
		panic("render: strip rows outside frame")
	}
	r.img, r.FullW, r.FullH, r.Y0 = img, fullW, fullH, y0
	need := img.W * img.H
	if cap(r.zbuf) < need {
		r.zbuf = make([]float32, need)
	}
	r.zbuf = r.zbuf[:need]
	r.Filled, r.Candidates = 0, 0
	r.Clear(0, 0, 0)
}

// Clear resets color and depth.
func (r *Rasterizer) Clear(cr, cg, cb uint8) {
	r.img.Fill(cr, cg, cb, 0xff)
	for i := range r.zbuf {
		r.zbuf[i] = float32(math.Inf(1))
	}
}

// Image returns the strip buffer being rendered into.
func (r *Rasterizer) Image() *frame.Image { return r.img }

const nearEps = 1e-6

// DrawTriangle transforms a scene triangle by the view-projection matrix,
// clips it against the near plane, and rasterizes the result.
func (r *Rasterizer) DrawTriangle(vp Mat4, t Triangle) {
	clip := [3]Vec4{
		vp.TransformPoint(t.V[0]),
		vp.TransformPoint(t.V[1]),
		vp.TransformPoint(t.V[2]),
	}
	poly := clipNear(clip[:], r.poly[:0])
	if len(poly) < 3 {
		return
	}
	// Fan-triangulate the clipped polygon (≤ 4 vertices).
	for i := 1; i+1 < len(poly); i++ {
		r.fill(poly[0], poly[i], poly[i+1], t.R, t.G, t.B)
	}
}

// clipNear clips a clip-space polygon against the GL near plane z + w > 0,
// appending the surviving vertices to out (the caller's scratch).
func clipNear(in, out []Vec4) []Vec4 {
	for i := range in {
		a := in[i]
		b := in[(i+1)%len(in)]
		da := a.Z + a.W
		db := b.Z + b.W
		if da > nearEps {
			out = append(out, a)
		}
		if (da > nearEps) != (db > nearEps) {
			t := da / (da - db)
			out = append(out, Vec4{
				a.X + t*(b.X-a.X),
				a.Y + t*(b.Y-a.Y),
				a.Z + t*(b.Z-a.Z),
				a.W + t*(b.W-a.W),
			})
		}
	}
	return out
}

type screenVert struct {
	x, y, z float64
}

// toScreen performs the perspective divide and viewport transform.
func (r *Rasterizer) toScreen(v Vec4) screenVert {
	inv := 1 / v.W
	nx, ny, nz := v.X*inv, v.Y*inv, v.Z*inv
	return screenVert{
		x: (nx + 1) * 0.5 * float64(r.FullW),
		y: (1 - (ny+1)*0.5) * float64(r.FullH),
		z: nz,
	}
}

func edge(a, b, c screenVert) float64 {
	return (b.x-a.x)*(c.y-a.y) - (b.y-a.y)*(c.x-a.x)
}

// fill rasterizes one clip-space triangle with flat color, through the same
// setup + span loop the tiled path uses: setupTri precomputes the edge
// coefficients once, drawSetupRows walks the (conservatively tightened)
// pixel spans. Output bytes and both counters are bit-identical to the
// historical full-bbox per-pixel loop — drawSetupRows evaluates the same
// edge expressions with the same operand order, and span tightening only
// skips pixels whose edge sign test fails.
func (r *Rasterizer) fill(c0, c1, c2 Vec4, cr, cg, cb uint8) {
	v0, v1, v2 := r.toScreen(c0), r.toScreen(c1), r.toScreen(c2)
	s, ok := setupTri(v0, v1, v2, cr, cg, cb, r.FullW, r.Y0, r.Y0+r.img.H)
	if !ok {
		return
	}
	filled, cand := drawSetupRows(&s, r.img, r.zbuf, r.Y0, r.Y0, r.Y0+r.img.H)
	r.Filled += filled
	r.Candidates += cand
}

func min3(a, b, c float64) float64 { return math.Min(a, math.Min(b, c)) }
func max3(a, b, c float64) float64 { return math.Max(a, math.Max(b, c)) }
