package render

// Octree organizes scene triangles hierarchically, exactly as the paper's
// render stage does: frustum culling traverses the tree recursively, which
// is the irregular, prefetch-hostile memory access pattern the paper calls
// out for the renderer.
type Octree struct {
	root *octNode
	// Triangles is the backing store; nodes hold indices into it.
	Triangles []Triangle
	nodeCount int
}

type octNode struct {
	bounds   AABB
	children [8]*octNode
	leaf     bool
	tris     []int32
}

// octree build parameters: small leaves keep traversal interesting without
// exploding memory.
const (
	octMaxDepth   = 10
	octLeafTarget = 24
)

// BuildOctree constructs an octree over the triangles. Triangles are stored
// in the leaf whose region contains their centroid, so every triangle lives
// in exactly one leaf; the conservative AABB frustum test plus rasterizer
// clipping keeps rendering correct.
func BuildOctree(tris []Triangle) *Octree {
	o := &Octree{Triangles: tris}
	bounds := EmptyAABB()
	idx := make([]int32, len(tris))
	for i, t := range tris {
		bounds = bounds.Union(t.Bounds())
		idx[i] = int32(i)
	}
	if len(tris) == 0 {
		bounds = AABB{}
	}
	o.root = o.build(bounds, idx, 0)
	return o
}

// build constructs the subtree for the subdivision region `region`. The
// node's stored culling bounds are *loose*: the union of its triangles'
// actual bounds, since centroid bucketing lets a triangle extend beyond its
// leaf's region. Culling against loose bounds keeps the traversal
// conservative.
func (o *Octree) build(region AABB, idx []int32, depth int) *octNode {
	o.nodeCount++
	n := &octNode{}
	makeLeaf := func() *octNode {
		n.leaf = true
		n.tris = idx
		n.bounds = EmptyAABB()
		for _, ti := range idx {
			n.bounds = n.bounds.Union(o.Triangles[ti].Bounds())
		}
		if len(idx) == 0 {
			n.bounds = region
		}
		return n
	}
	if len(idx) <= octLeafTarget || depth >= octMaxDepth {
		return makeLeaf()
	}
	c := region.Center()
	var buckets [8][]int32
	for _, ti := range idx {
		ctr := o.Triangles[ti].Centroid()
		b := 0
		if ctr.X > c.X {
			b |= 1
		}
		if ctr.Y > c.Y {
			b |= 2
		}
		if ctr.Z > c.Z {
			b |= 4
		}
		buckets[b] = append(buckets[b], ti)
	}
	// Degenerate split (all centroids in one octant): make a leaf.
	for _, b := range buckets {
		if len(b) == len(idx) {
			return makeLeaf()
		}
	}
	n.bounds = EmptyAABB()
	for b, list := range buckets {
		if len(list) == 0 {
			continue
		}
		child := o.build(childBounds(region, c, b), list, depth+1)
		n.children[b] = child
		n.bounds = n.bounds.Union(child.bounds)
	}
	return n
}

func childBounds(b AABB, c Vec3, octant int) AABB {
	out := b
	if octant&1 != 0 {
		out.Min.X = c.X
	} else {
		out.Max.X = c.X
	}
	if octant&2 != 0 {
		out.Min.Y = c.Y
	} else {
		out.Max.Y = c.Y
	}
	if octant&4 != 0 {
		out.Min.Z = c.Z
	} else {
		out.Max.Z = c.Z
	}
	return out
}

// NodeCount reports the number of nodes built.
func (o *Octree) NodeCount() int { return o.nodeCount }

// Bounds returns the scene bounding box.
func (o *Octree) Bounds() AABB { return o.root.bounds }

// CullStats reports the work done by one frustum query; the simulation's
// render cost model consumes it.
type CullStats struct {
	NodesVisited int // octree nodes touched (≈ dependent memory accesses)
	TrisAccepted int // triangles passed to the rasterizer
}

// Cull appends the indices of all triangles in leaves whose bounds
// intersect the frustum, returning the (possibly reallocated) slice and
// traversal statistics. The test is conservative: no visible triangle is
// ever dropped. TrisAccepted counts only the triangles appended by this
// call, not entries already present in out.
func (o *Octree) Cull(f Frustum, out []int32) ([]int32, CullStats) {
	var st CullStats
	if o.root == nil {
		return out, st
	}
	base := len(out)
	out = o.cull(o.root, f, out, &st)
	st.TrisAccepted = len(out) - base
	return out, st
}

// CullFrontToBack is Cull with a near-first emission order: at every
// interior node the surviving children are visited in order of increasing
// distance from eye to their bounds, so triangles near the viewpoint come
// out of the traversal first. The emitted set and the stats are identical
// to Cull; only the order differs. The renderer draws in this order so
// occluders land in the depth buffer early, which is what makes the tiled
// rasterizer's coarse per-tile z rejection effective. The order is fully
// deterministic (distance, then octant index), so renders are reproducible.
func (o *Octree) CullFrontToBack(f Frustum, eye Vec3, out []int32) ([]int32, CullStats) {
	var st CullStats
	if o.root == nil {
		return out, st
	}
	base := len(out)
	out = o.cullFTB(o.root, f, eye, out, &st)
	st.TrisAccepted = len(out) - base
	return out, st
}

func (o *Octree) cullFTB(n *octNode, f Frustum, eye Vec3, out []int32, st *CullStats) []int32 {
	st.NodesVisited++
	if !f.IntersectsAABB(n.bounds) {
		return out
	}
	if n.leaf {
		return append(out, n.tris...)
	}
	// Order the (at most eight) children near-first with an insertion sort
	// over fixed arrays: stable on distance ties, allocation-free.
	var order [8]int8
	var dist [8]float64
	cnt := 0
	for ci, ch := range n.children {
		if ch == nil {
			continue
		}
		d := distSqToAABB(eye, ch.bounds)
		j := cnt
		for j > 0 && dist[j-1] > d {
			order[j], dist[j] = order[j-1], dist[j-1]
			j--
		}
		order[j], dist[j] = int8(ci), d
		cnt++
	}
	for i := 0; i < cnt; i++ {
		out = o.cullFTB(n.children[order[i]], f, eye, out, st)
	}
	return out
}

// distSqToAABB returns the squared distance from p to the closest point of
// the box (0 when p is inside).
func distSqToAABB(p Vec3, b AABB) float64 {
	var s float64
	for _, c := range [3][3]float64{
		{p.X, b.Min.X, b.Max.X},
		{p.Y, b.Min.Y, b.Max.Y},
		{p.Z, b.Min.Z, b.Max.Z},
	} {
		v, lo, hi := c[0], c[1], c[2]
		if v < lo {
			s += (lo - v) * (lo - v)
		} else if v > hi {
			s += (v - hi) * (v - hi)
		}
	}
	return s
}

func (o *Octree) cull(n *octNode, f Frustum, out []int32, st *CullStats) []int32 {
	st.NodesVisited++
	if !f.IntersectsAABB(n.bounds) {
		return out
	}
	if n.leaf {
		return append(out, n.tris...)
	}
	for _, ch := range n.children {
		if ch != nil {
			out = o.cull(ch, f, out, st)
		}
	}
	return out
}
