package filters

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sccpipe/internal/frame"
)

func randomImage(seed int64, w, h int) *frame.Image {
	rng := rand.New(rand.NewSource(seed))
	im := frame.New(w, h)
	rng.Read(im.Pix)
	for i := 3; i < len(im.Pix); i += 4 {
		im.Pix[i] = 0xff
	}
	return im
}

func TestSepiaKnownValues(t *testing.T) {
	im := frame.New(3, 1)
	im.Set(0, 0, 0, 0, 0, 255)       // black: mix 0 -> S1
	im.Set(1, 0, 255, 255, 255, 255) // white: mix 1 -> S2
	im.Set(2, 0, 255, 0, 0, 255)     // red: mix 0.3
	Sepia(im)
	if r, g, b, _ := im.At(0, 0); r != 51 || g != 13 || b != 0 {
		t.Fatalf("black -> %d,%d,%d, want 51,13,0 (S1)", r, g, b)
	}
	// mix(white) = 0.3+0.59+0.11, which is 1−ulp in float64, so allow ±1.
	if r, g, b, _ := im.At(1, 0); r != 255 || absDiff(g, 230) > 1 || absDiff(b, 128) > 1 {
		t.Fatalf("white -> %d,%d,%d, want ≈255,230,128 (S2)", r, g, b)
	}
	// red: mix = 0.3 -> r = 0.2*0.7 + 1.0*0.3 = 0.44 -> 112
	if r, _, _, _ := im.At(2, 0); r != 112 {
		t.Fatalf("red channel -> %d, want 112", r)
	}
}

func TestSepiaMonochromeOrdering(t *testing.T) {
	// Sepia output must always satisfy r ≥ g ≥ b (brown shades).
	im := randomImage(1, 32, 32)
	Sepia(im)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b, _ := im.At(x, y)
			if r < g || g < b {
				t.Fatalf("pixel (%d,%d) = %d,%d,%d not sepia-ordered", x, y, r, g, b)
			}
		}
	}
}

func TestSepiaIdempotentOnExtremes(t *testing.T) {
	// S2 is a fixed point: mix(S2) = 0.3+0.9*0.59+0.5*0.11 ≈ 0.886 ... not
	// exactly 1, so instead verify determinism: applying to equal images
	// gives equal results.
	a := randomImage(2, 8, 8)
	b := a.Clone()
	Sepia(a)
	Sepia(b)
	if !a.Equal(b) {
		t.Fatal("sepia not deterministic")
	}
}

func TestBlurConstantImageUnchanged(t *testing.T) {
	im := frame.New(16, 16)
	im.Fill(120, 60, 200, 255)
	want := im.Clone()
	Blur(im)
	if !im.Equal(want) {
		t.Fatal("blur changed a constant image")
	}
}

func TestBlurAveragesImpulse(t *testing.T) {
	im := frame.New(5, 5)
	im.Fill(0, 0, 0, 255)
	im.Set(2, 2, 90, 90, 90, 255)
	Blur(im)
	if r, _, _, _ := im.At(2, 2); r != 10 {
		t.Fatalf("center after blur = %d, want 10 (90/9)", r)
	}
	if r, _, _, _ := im.At(1, 1); r != 10 {
		t.Fatalf("neighbour after blur = %d, want 10", r)
	}
	if r, _, _, _ := im.At(0, 4); r != 0 {
		t.Fatalf("far corner after blur = %d, want 0", r)
	}
}

func TestBlurEdgeUsesInBoundsNeighbours(t *testing.T) {
	im := frame.New(3, 1) // degenerate strip: 1 row
	im.Set(0, 0, 60, 0, 0, 255)
	im.Set(1, 0, 60, 0, 0, 255)
	im.Set(2, 0, 0, 0, 0, 255)
	Blur(im)
	// Pixel 0 averages pixels 0,1: (60+60)/2 = 60.
	if r, _, _, _ := im.At(0, 0); r != 60 {
		t.Fatalf("edge = %d, want 60", r)
	}
	// Pixel 1 averages 60,60,0 = 40.
	if r, _, _, _ := im.At(1, 0); r != 40 {
		t.Fatalf("middle = %d, want 40", r)
	}
}

func TestBlurReducesVariance(t *testing.T) {
	im := randomImage(3, 32, 32)
	variance := func(im *frame.Image) float64 {
		var sum, sum2 float64
		n := 0
		for o := 0; o < len(im.Pix); o += 4 {
			v := float64(im.Pix[o])
			sum += v
			sum2 += v * v
			n++
		}
		m := sum / float64(n)
		return sum2/float64(n) - m*m
	}
	before := variance(im)
	Blur(im)
	after := variance(im)
	if after >= before {
		t.Fatalf("variance %g -> %g; blur should smooth", before, after)
	}
}

func TestScratchDeterministicWithSeed(t *testing.T) {
	a := randomImage(4, 20, 20)
	b := a.Clone()
	Scratch(a, rand.New(rand.NewSource(42)))
	Scratch(b, rand.New(rand.NewSource(42)))
	if !a.Equal(b) {
		t.Fatal("scratch with same seed differs")
	}
}

func TestScratchDrawsFullColumns(t *testing.T) {
	// Find a seed that draws at least one scratch, then verify the whole
	// column is one shade.
	for seed := int64(0); seed < 20; seed++ {
		im := frame.New(20, 20) // black
		rng := rand.New(rand.NewSource(seed))
		Scratch(im, rng)
		for x := 0; x < im.W; x++ {
			r0, _, _, _ := im.At(x, 0)
			if r0 == 0 {
				continue
			}
			for y := 0; y < im.H; y++ {
				r, g, b, _ := im.At(x, y)
				if r != r0 || g != r0 || b != r0 {
					t.Fatalf("seed %d column %d not uniform scratch", seed, x)
				}
			}
			return // verified at least one scratch column
		}
	}
	t.Fatal("no seed produced a scratch in 20 tries")
}

func TestScratchCountBounded(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		im := frame.New(64, 4)
		Scratch(im, rand.New(rand.NewSource(seed)))
		cols := 0
		for x := 0; x < im.W; x++ {
			if r, _, _, _ := im.At(x, 0); r != 0 {
				cols++
			}
		}
		if cols > MaxScratches {
			t.Fatalf("seed %d: %d scratch columns > max %d", seed, cols, MaxScratches)
		}
	}
}

func TestFlickerByShiftsUniformly(t *testing.T) {
	im := frame.New(4, 4)
	im.Fill(100, 100, 100, 255)
	FlickerBy(im, 0.1)
	r, g, b, a := im.At(1, 1)
	want := uint8(100.0/255.0*255 + 0.1*255 + 0.5)
	if r != want || g != want || b != want {
		t.Fatalf("flicker +0.1: got %d, want %d", r, want)
	}
	if a != 255 {
		t.Fatal("alpha modified")
	}
}

func TestFlickerClamps(t *testing.T) {
	im := frame.New(2, 1)
	im.Set(0, 0, 250, 250, 250, 255)
	im.Set(1, 0, 3, 3, 3, 255)
	FlickerBy(im, 0.1)
	if r, _, _, _ := im.At(0, 0); r != 255 {
		t.Fatalf("bright pixel = %d, want clamped 255", r)
	}
	im2 := frame.New(1, 1)
	im2.Set(0, 0, 3, 3, 3, 255)
	FlickerBy(im2, -0.1)
	if r, _, _, _ := im2.At(0, 0); r != 0 {
		t.Fatalf("dark pixel = %d, want clamped 0", r)
	}
}

func TestFlickerWithinAmplitude(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		im := frame.New(1, 1)
		im.Set(0, 0, 128, 128, 128, 255)
		Flicker(im, rand.New(rand.NewSource(seed)))
		r, _, _, _ := im.At(0, 0)
		ampF := FlickerAmplitude * 255
		amp := int(ampF)
		lo := 128 - amp - 1
		hi := 128 + amp + 1
		if int(r) < lo || int(r) > hi {
			t.Fatalf("seed %d: flicker moved 128 to %d, outside ±%g", seed, r, FlickerAmplitude*255)
		}
	}
}

func TestSwapMirrorsVertically(t *testing.T) {
	im := frame.New(2, 3)
	for y := 0; y < 3; y++ {
		im.Set(0, y, uint8(y), 0, 0, 255)
	}
	Swap(im)
	for y := 0; y < 3; y++ {
		r, _, _, _ := im.At(0, y)
		if r != uint8(2-y) {
			t.Fatalf("row %d = %d, want %d", y, r, 2-y)
		}
	}
}

// Property: swap is an involution — swap(swap(x)) == x.
func TestQuickSwapInvolution(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := int(wRaw%16) + 1
		h := int(hRaw%16) + 1
		a := randomImage(seed, w, h)
		b := a.Clone()
		Swap(b)
		Swap(b)
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: blur preserves the mean brightness of interior-heavy constant
// regions and never produces values outside the input range.
func TestQuickBlurRangeBounded(t *testing.T) {
	f := func(seed int64) bool {
		im := randomImage(seed, 9, 9)
		var lo, hi uint8 = 255, 0
		for o := 0; o < len(im.Pix); o += 4 {
			for c := 0; c < 3; c++ {
				v := im.Pix[o+c]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		Blur(im)
		for o := 0; o < len(im.Pix); o += 4 {
			for c := 0; c < 3; c++ {
				v := im.Pix[o+c]
				// Rounding can add ±1 beyond the pure average range.
				if int(v) < int(lo)-1 || int(v) > int(hi)+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the full filter chain never alters image dimensions or alpha.
func TestQuickChainShapeStable(t *testing.T) {
	f := func(seed int64) bool {
		im := randomImage(seed, 12, 10)
		rng := rand.New(rand.NewSource(seed))
		Sepia(im)
		Blur(im)
		Scratch(im, rng)
		Flicker(im, rng)
		Swap(im)
		if im.W != 12 || im.H != 10 {
			return false
		}
		for i := 3; i < len(im.Pix); i += 4 {
			if im.Pix[i] != 0xff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func absDiff(a uint8, b int) int {
	d := int(a) - b
	if d < 0 {
		return -d
	}
	return d
}

func TestScratchOrientedDeterministic(t *testing.T) {
	a := randomImage(21, 40, 40)
	b := a.Clone()
	ScratchOriented(a, rand.New(rand.NewSource(5)), DefaultOrientedScratchParams())
	ScratchOriented(b, rand.New(rand.NewSource(5)), DefaultOrientedScratchParams())
	if !a.Equal(b) {
		t.Fatal("oriented scratch not deterministic")
	}
}

func TestScratchOrientedStaysInBounds(t *testing.T) {
	// Must not panic for any small geometry and must only lighten pixels
	// toward a single shade.
	for seed := int64(0); seed < 30; seed++ {
		im := frame.New(17, 9)
		p := DefaultOrientedScratchParams()
		p.Thickness = 3
		p.MaxTilt = 1.5
		ScratchOriented(im, rand.New(rand.NewSource(seed)), p)
		shades := map[uint8]bool{}
		for o := 0; o < len(im.Pix); o += 4 {
			if im.Pix[o] != 0 {
				shades[im.Pix[o]] = true
				if im.Pix[o] != im.Pix[o+1] || im.Pix[o+1] != im.Pix[o+2] {
					t.Fatalf("seed %d: scratch pixel not grey", seed)
				}
			}
		}
		if len(shades) > 1 {
			t.Fatalf("seed %d: %d distinct shades in one frame", seed, len(shades))
		}
	}
}

func TestScratchOrientedZeroCountNoop(t *testing.T) {
	im := randomImage(22, 8, 8)
	want := im.Clone()
	ScratchOriented(im, rand.New(rand.NewSource(1)), OrientedScratchParams{MaxCount: 0})
	if !im.Equal(want) {
		t.Fatal("zero-count params modified the image")
	}
}

func TestScratchOrientedDrawsSomething(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		im := frame.New(64, 64)
		ScratchOriented(im, rand.New(rand.NewSource(seed)), DefaultOrientedScratchParams())
		lit := 0
		for o := 0; o < len(im.Pix); o += 4 {
			if im.Pix[o] != 0 {
				lit++
			}
		}
		if lit > 0 {
			return
		}
	}
	t.Fatal("no seed drew an oriented scratch")
}
