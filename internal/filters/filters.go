// Package filters implements the paper's five image-manipulation stages on
// real pixels: sepia, blur, scratch, flicker and swap. Each follows the
// formula or procedure in §IV of the paper. Randomized stages (scratch,
// flicker) take an explicit RNG so pipelines are reproducible.
package filters

import (
	"math/rand"

	"sccpipe/internal/frame"
)

// clamp01 clamps to [0, 1] — the paper's clamp.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func to01(b uint8) float64 { return float64(b) / 255.0 }
func from01(v float64) uint8 {
	return uint8(clamp01(v)*255 + 0.5)
}

// Sepia colors (§IV, Sepia stage).
var (
	sepiaS1 = [3]float64{0.2, 0.05, 0.0}
	sepiaS2 = [3]float64{1.0, 0.9, 0.5}
)

// Sepia converts the image to the paper's sepia tone in place:
//
//	mix    = clamp(0.3·r + 0.59·g + 0.11·b)
//	rgbnew = clamp(S1·(1−mix) + S2·mix)
func Sepia(img *frame.Image) {
	pix := img.Pix
	for o := 0; o < len(pix); o += 4 {
		r, g, b := to01(pix[o]), to01(pix[o+1]), to01(pix[o+2])
		mix := clamp01(0.3*r + 0.59*g + 0.11*b)
		pix[o] = from01(sepiaS1[0]*(1-mix) + sepiaS2[0]*mix)
		pix[o+1] = from01(sepiaS1[1]*(1-mix) + sepiaS2[1]*mix)
		pix[o+2] = from01(sepiaS1[2]*(1-mix) + sepiaS2[2]*mix)
	}
}

// Blur applies a 3×3 box blur (average of the pixel and its neighbours,
// edge pixels averaging only in-bounds neighbours). As in the paper, it
// works from the original data via a second buffer, making it the stage
// with the heaviest memory traffic.
func Blur(img *frame.Image) {
	src := img.Clone()
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			var sr, sg, sb, n int
			for dy := -1; dy <= 1; dy++ {
				yy := y + dy
				if yy < 0 || yy >= img.H {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					xx := x + dx
					if xx < 0 || xx >= img.W {
						continue
					}
					r, g, b, _ := src.At(xx, yy)
					sr += int(r)
					sg += int(g)
					sb += int(b)
					n++
				}
			}
			_, _, _, a := src.At(x, y)
			img.Set(x, y, uint8((sr+n/2)/n), uint8((sg+n/2)/n), uint8((sb+n/2)/n), a)
		}
	}
}

// MaxScratches bounds the number of scratches per frame strip.
const MaxScratches = 6

// Scratch draws a random number of vertical scratches in a random shade
// (§IV, Scratch stage): one random color and count per call, then one
// random x-coordinate per scratch whose whole column is replaced.
func Scratch(img *frame.Image, rng *rand.Rand) {
	count := rng.Intn(MaxScratches + 1)
	shade := uint8(170 + rng.Intn(86)) // light scratch tone
	for i := 0; i < count; i++ {
		x := rng.Intn(img.W)
		for y := 0; y < img.H; y++ {
			_, _, _, a := img.At(x, y)
			img.Set(x, y, shade, shade, shade, a)
		}
	}
}

// FlickerAmplitude is the paper's brightness variation bound: ±1/10.
const FlickerAmplitude = 0.1

// Flicker shifts all RGB values by one random amount in
// [−FlickerAmplitude, +FlickerAmplitude], clamped to [0, 1] (§IV).
func Flicker(img *frame.Image, rng *rand.Rand) {
	delta := (rng.Float64()*2 - 1) * FlickerAmplitude
	FlickerBy(img, delta)
}

// FlickerBy applies a specific brightness delta; exposed for testing and
// for replaying recorded flicker sequences.
func FlickerBy(img *frame.Image, delta float64) {
	pix := img.Pix
	for o := 0; o < len(pix); o += 4 {
		pix[o] = from01(to01(pix[o]) + delta)
		pix[o+1] = from01(to01(pix[o+1]) + delta)
		pix[o+2] = from01(to01(pix[o+2]) + delta)
	}
}

// Swap flips the image upside down in place using an intermediate row
// buffer, copying rows pairwise exactly as §IV's Swap stage describes.
func Swap(img *frame.Image) {
	tmp := make([]uint8, img.W*4)
	for i, j := 0, img.H-1; i < j; i, j = i+1, j-1 {
		top := img.Row(i)
		bottom := img.Row(j)
		copy(tmp, top)
		copy(top, bottom)
		copy(bottom, tmp)
	}
}
