// Package filters implements the paper's five image-manipulation stages on
// real pixels: sepia, blur, scratch, flicker and swap. Each follows the
// formula or procedure in §IV of the paper. Randomized stages (scratch,
// flicker) take an explicit RNG so pipelines are reproducible.
//
// The kernels here are the optimized forms that run on the pipeline hot
// path: table-driven conversions, integer sliding-window sums, in-place
// row operations, and pooled scratch instead of per-call allocation. Each
// is golden-tested byte-identical against its paper-literal counterpart in
// reference.go — the memory-traffic rewrite must not change a single
// pixel, exactly as the paper's fast blur (§VI) preserves its stage
// semantics while cutting controller traffic.
//
// The per-pixel stages additionally expose row-oriented PointKernel forms
// (fused.go) so adjacent stages can be fused into a single read-modify-
// write pass, and the heavy blur exposes BlurBands, a band-parallel form
// that splits the pass over a band.Pool.
package filters

import (
	"math/rand"
	"sync"

	"sccpipe/internal/band"
	"sccpipe/internal/frame"
)

// clamp01 clamps to [0, 1] — the paper's clamp.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func to01(b uint8) float64 { return float64(b) / 255.0 }
func from01(v float64) uint8 {
	return uint8(clamp01(v)*255 + 0.5)
}

// Sepia colors (§IV, Sepia stage).
var (
	sepiaS1 = [3]float64{0.2, 0.05, 0.0}
	sepiaS2 = [3]float64{1.0, 0.9, 0.5}
)

// sepiaRamp holds the per-channel luminance ramps 0.3·(v/255), 0.59·(v/255)
// and 0.11·(v/255) for every byte value: each entry is computed with
// exactly the float64 operations SepiaReference performs, so summing three
// table entries reproduces the reference mix bit for bit while replacing
// three divisions and three multiplications per pixel with loads. (A single
// 256-entry output table would need the mix quantized to 8 bits first,
// which is not bit-exact; the per-channel ramps are.)
var sepiaRamp = func() (t [3][256]float64) {
	for v := 0; v < 256; v++ {
		t[0][v] = 0.3 * to01(uint8(v))
		t[1][v] = 0.59 * to01(uint8(v))
		t[2][v] = 0.11 * to01(uint8(v))
	}
	return t
}()

// Sepia converts the image to the paper's sepia tone in place:
//
//	mix    = clamp(0.3·r + 0.59·g + 0.11·b)
//	rgbnew = clamp(S1·(1−mix) + S2·mix)
//
// The one-shot API stays memo-free: on arbitrary content (noise) a run
// memo is pure overhead. The strip kernels (SepiaKernel, Fused) carry
// one, because rendered frames are where the runs are.
func Sepia(img *frame.Image) {
	pix := img.Pix
	for o := 0; o+4 <= len(pix); o += 4 {
		mix := clamp01(sepiaRamp[0][pix[o]] + sepiaRamp[1][pix[o+1]] + sepiaRamp[2][pix[o+2]])
		pix[o] = from01(sepiaS1[0]*(1-mix) + sepiaS2[0]*mix)
		pix[o+1] = from01(sepiaS1[1]*(1-mix) + sepiaS2[1]*mix)
		pix[o+2] = from01(sepiaS1[2]*(1-mix) + sepiaS2[2]*mix)
	}
}

// blurScratch pools the sliding-window row sums so Blur allocates nothing
// in steady state. Buffers are reused across widths: a too-small slab is
// simply regrown once.
var blurScratch = sync.Pool{New: func() any { return new([]int32) }}

func getRowSums(n int) *[]int32 {
	p := blurScratch.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

// hsum fills dst[x*3..] with the horizontal 3-window sums of row's RGB
// channels (window [x−1, x+1] clipped to the row), maintained as a sliding
// window: one add and one subtract per channel per pixel instead of three
// loads. Integer adds commute exactly, so the sums match the naive form.
func hsum(row []uint8, w int, dst []int32) {
	sr, sg, sb := int32(row[0]), int32(row[1]), int32(row[2])
	if w > 1 {
		sr += int32(row[4])
		sg += int32(row[5])
		sb += int32(row[6])
	}
	dst[0], dst[1], dst[2] = sr, sg, sb
	for x := 1; x < w; x++ {
		if x+1 < w {
			o := (x + 1) * 4
			sr += int32(row[o])
			sg += int32(row[o+1])
			sb += int32(row[o+2])
		}
		if x >= 2 {
			o := (x - 2) * 4
			sr -= int32(row[o])
			sg -= int32(row[o+1])
			sb -= int32(row[o+2])
		}
		o := x * 3
		dst[o], dst[o+1], dst[o+2] = sr, sg, sb
	}
}

// Blur applies a 3×3 box blur (average of the pixel and its neighbours,
// edge pixels averaging only in-bounds neighbours). As in the paper it is
// the stage with the heaviest memory traffic, so instead of cloning the
// whole frame it keeps a three-row ring of integer horizontal window sums:
// each source row is read once into its sum row before being overwritten,
// and each output pixel is three sum loads, two adds and one rounded
// division per channel. Output is byte-identical to BlurReference.
func Blur(img *frame.Image) {
	w, h := img.W, img.H
	if w <= 0 || h <= 0 {
		return
	}
	slab := getRowSums(3 * w * 3)
	defer blurScratch.Put(slab)
	blurRange(img, 0, h, nil, nil, *slab)
}

// blurRange blurs rows [y0, y1) of img in place with the three-row ring.
// haloTop and haloBot carry the horizontal sums of the rows just outside
// the range (y0−1 and y1, as ORIGINAL, un-blurred data); nil means the row
// is outside the image. slab provides three sum rows of w*3 int32 each.
// Bands of one image may run concurrently: each writes only its own rows
// and reads its own rows plus the two read-only halo sum rows.
func blurRange(img *frame.Image, y0, y1 int, haloTop, haloBot []int32, slab []int32) {
	w, h := img.W, img.H
	var ring [3][]int32
	for i := range ring {
		ring[i] = slab[i*w*3 : (i+1)*w*3]
	}
	// sum resolves the sum row for source row r: the two rows bordering the
	// band come from the precomputed halos, everything else from the ring.
	sum := func(r int) []int32 {
		switch r {
		case y0 - 1:
			return haloTop
		case y1:
			return haloBot
		default:
			return ring[r%3]
		}
	}
	hsum(img.Row(y0), w, ring[y0%3])
	if y0+1 < y1 {
		hsum(img.Row(y0+1), w, ring[(y0+1)%3])
	}
	for y := y0; y < y1; y++ {
		lo, hi := y-1, y+1
		if lo < 0 {
			lo = 0
		}
		if hi > h-1 {
			hi = h - 1
		}
		out := img.Row(y)
		// The vertical window is 1–3 sum rows; resolving them here keeps
		// the per-pixel loops free of ring arithmetic, and dispatching on
		// the row count lets each loop divide by a constant (the compiler
		// turns those into multiply-shift sequences — the division was the
		// hot instruction).
		switch hi - lo {
		case 2:
			blurRow3(out, sum(lo), sum(lo+1), sum(lo+2), w)
		case 1:
			blurRow2(out, sum(lo), sum(lo+1), w)
		default:
			blurRow1(out, sum(lo), w)
		}
		// Slot (y−1)%3 is free now; fill it with row y+2's sums for the
		// next iteration. Row y+2 is still original data — only rows ≤ y
		// have been overwritten. When y+2 reaches y1 the halo already
		// holds its sums.
		if y+2 < y1 {
			hsum(img.Row(y+2), w, ring[(y+2)%3])
		}
	}
}

// minBlurBandRows keeps blur bands from shrinking below the point where
// the two halo rows and the barrier dominate the band's own work.
const minBlurBandRows = 8

// blurBandsState is the reusable scratch of one BlurBands call: per band,
// three ring rows plus the two halo rows, and the two phase closures
// (built once per state object so a steady-state call allocates nothing).
type blurBandsState struct {
	img            *frame.Image
	nb             int
	slab           []int32
	phase1, phase2 func(int)
}

var blurBandsPool = sync.Pool{New: func() any {
	st := new(blurBandsState)
	st.phase1 = st.haloPhase
	st.phase2 = st.blurPhase
	return st
}}

// row returns sum row i (0..2 ring, 3 haloTop, 4 haloBot) of band b.
func (st *blurBandsState) row(b, i int) []int32 {
	w3 := st.img.W * 3
	o := (b*5 + i) * w3
	return st.slab[o : o+w3]
}

// haloPhase precomputes the horizontal sums of each band's two boundary
// rows while every row still holds original data. It only reads the image,
// so all bands may run concurrently.
func (st *blurBandsState) haloPhase(b int) {
	img, w, h := st.img, st.img.W, st.img.H
	y0, y1 := frame.StripBounds(h, st.nb, b)
	if y0 > 0 {
		hsum(img.Row(y0-1), w, st.row(b, 3))
	}
	if y1 < h {
		hsum(img.Row(y1), w, st.row(b, 4))
	}
}

// blurPhase blurs one band in place using its precomputed halos.
func (st *blurBandsState) blurPhase(b int) {
	img, h := st.img, st.img.H
	y0, y1 := frame.StripBounds(h, st.nb, b)
	var haloTop, haloBot []int32
	if y0 > 0 {
		haloTop = st.row(b, 3)
	}
	if y1 < h {
		haloBot = st.row(b, 4)
	}
	w3 := img.W * 3
	o := b * 5 * w3
	blurRange(img, y0, y1, haloTop, haloBot, st.slab[o:o+3*w3])
}

// BlurBands is Blur with the pass split into row bands distributed over p.
// Two phases separated by a barrier keep it bit-identical to Blur: first
// every band snapshots the horizontal sums of the two original rows just
// outside its range (the halo), then each band runs the ring over its own
// rows — bands write only their own rows and share nothing but the
// read-only halos. A nil or serial pool (or an image too short to split)
// degrades to plain Blur.
func BlurBands(img *frame.Image, p *band.Pool) {
	w, h := img.W, img.H
	if w <= 0 || h <= 0 {
		return
	}
	nb := p.Parallelism()
	if nb > h/minBlurBandRows {
		nb = h / minBlurBandRows
	}
	if nb <= 1 {
		Blur(img)
		return
	}
	st := blurBandsPool.Get().(*blurBandsState)
	st.img, st.nb = img, nb
	need := nb * 5 * w * 3
	if cap(st.slab) < need {
		st.slab = make([]int32, need)
	}
	st.slab = st.slab[:need]
	p.Run(nb, st.phase1)
	p.Run(nb, st.phase2)
	st.img = nil
	blurBandsPool.Put(st)
}

// blurPix writes one output pixel from its channel sums with the
// reference's rounded division (variable n — used only at row ends).
func blurPix(out []uint8, x int, sr, sg, sb, n int32) {
	po := x * 4
	out[po] = uint8((sr + n/2) / n)
	out[po+1] = uint8((sg + n/2) / n)
	out[po+2] = uint8((sb + n/2) / n)
}

// blurRow3 emits an output row whose vertical window has all three rows
// (sum rows a, b, c): interior pixels average 9 neighbours, the two row
// ends 6. blurRow2/blurRow1 are its two- and one-row counterparts. Each
// keeps the constant-divisor loop over the interior and handles the
// (clipped) ends via blurPix, so degenerate one- and two-column images
// fall out of the same code.
func blurRow3(out []uint8, a, b, c []int32, w int) {
	nx0 := int32(2)
	if w == 1 {
		nx0 = 1
	}
	blurPix(out, 0, a[0]+b[0]+c[0], a[1]+b[1]+c[1], a[2]+b[2]+c[2], 3*nx0)
	for x := 1; x < w-1; x++ {
		o := x * 3
		sr := a[o] + b[o] + c[o]
		sg := a[o+1] + b[o+1] + c[o+1]
		sb := a[o+2] + b[o+2] + c[o+2]
		po := x * 4
		out[po] = uint8((sr + 4) / 9)
		out[po+1] = uint8((sg + 4) / 9)
		out[po+2] = uint8((sb + 4) / 9)
	}
	if w > 1 {
		o := (w - 1) * 3
		blurPix(out, w-1, a[o]+b[o]+c[o], a[o+1]+b[o+1]+c[o+1], a[o+2]+b[o+2]+c[o+2], 6)
	}
}

func blurRow2(out []uint8, a, b []int32, w int) {
	nx0 := int32(2)
	if w == 1 {
		nx0 = 1
	}
	blurPix(out, 0, a[0]+b[0], a[1]+b[1], a[2]+b[2], 2*nx0)
	for x := 1; x < w-1; x++ {
		o := x * 3
		sr := a[o] + b[o]
		sg := a[o+1] + b[o+1]
		sb := a[o+2] + b[o+2]
		po := x * 4
		out[po] = uint8((sr + 3) / 6)
		out[po+1] = uint8((sg + 3) / 6)
		out[po+2] = uint8((sb + 3) / 6)
	}
	if w > 1 {
		o := (w - 1) * 3
		blurPix(out, w-1, a[o]+b[o], a[o+1]+b[o+1], a[o+2]+b[o+2], 4)
	}
}

func blurRow1(out []uint8, a []int32, w int) {
	nx0 := int32(2)
	if w == 1 {
		nx0 = 1
	}
	blurPix(out, 0, a[0], a[1], a[2], nx0)
	for x := 1; x < w-1; x++ {
		o := x * 3
		po := x * 4
		out[po] = uint8((a[o] + 1) / 3)
		out[po+1] = uint8((a[o+1] + 1) / 3)
		out[po+2] = uint8((a[o+2] + 1) / 3)
	}
	if w > 1 {
		o := (w - 1) * 3
		blurPix(out, w-1, a[o], a[o+1], a[o+2], 2)
	}
}

// MaxScratches bounds the number of scratches per frame strip.
const MaxScratches = 6

// ScratchParams is one frame's scratch draw: the per-call randomness of
// the Scratch stage (count, shade, column positions) hoisted into a value,
// so the fused path can consume exactly the random sequence the unfused
// kernel would and then apply the columns row by row.
type ScratchParams struct {
	N     int
	Shade uint8
	Xs    [MaxScratches]int
}

// DrawScratchParams consumes the Scratch stage's per-frame randomness in
// the kernel's exact draw order (count, shade, then one x per scratch —
// the column writes themselves consume none), so Scratch(img, rng) and
// ScratchWith(img, DrawScratchParams(rng, img.W)) are byte-identical.
func DrawScratchParams(rng *rand.Rand, w int) ScratchParams {
	var p ScratchParams
	p.N = rng.Intn(MaxScratches + 1)
	p.Shade = uint8(170 + rng.Intn(86)) // light scratch tone
	for i := 0; i < p.N; i++ {
		p.Xs[i] = rng.Intn(w)
	}
	return p
}

// Scratch draws a random number of vertical scratches in a random shade
// (§IV, Scratch stage): one random color and count per call, then one
// random x-coordinate per scratch whose whole column is replaced.
func Scratch(img *frame.Image, rng *rand.Rand) {
	ScratchWith(img, DrawScratchParams(rng, img.W))
}

// ScratchWith applies pre-drawn scratch parameters. Alpha is untouched, so
// the column walk writes the three color bytes directly.
func ScratchWith(img *frame.Image, p ScratchParams) {
	pix, stride := img.Pix, img.W*4
	for i := 0; i < p.N; i++ {
		for o := p.Xs[i] * 4; o < len(pix); o += stride {
			pix[o], pix[o+1], pix[o+2] = p.Shade, p.Shade, p.Shade
		}
	}
}

// FlickerAmplitude is the paper's brightness variation bound: ±1/10.
const FlickerAmplitude = 0.1

// DrawFlickerDelta consumes the Flicker stage's single per-frame draw: a
// brightness shift uniform in [−FlickerAmplitude, +FlickerAmplitude].
func DrawFlickerDelta(rng *rand.Rand) float64 {
	return (rng.Float64()*2 - 1) * FlickerAmplitude
}

// Flicker shifts all RGB values by one random amount in
// [−FlickerAmplitude, +FlickerAmplitude], clamped to [0, 1] (§IV).
func Flicker(img *frame.Image, rng *rand.Rand) {
	FlickerBy(img, DrawFlickerDelta(rng))
}

// flickerLUT evaluates the float64 round trip of one brightness delta for
// every byte value, so the image pass is loads only.
func flickerLUT(delta float64, lut *[256]uint8) {
	for v := range lut {
		lut[v] = from01(to01(uint8(v)) + delta)
	}
}

// FlickerBy applies a specific brightness delta; exposed for testing and
// for replaying recorded flicker sequences. The delta is the same for
// every pixel, so the float64 round trip is evaluated once per byte value
// into a stack table and the image pass is three loads per pixel —
// byte-identical to FlickerByReference by construction.
func FlickerBy(img *frame.Image, delta float64) {
	var lut [256]uint8
	flickerLUT(delta, &lut)
	flickerRow(img.Pix, &lut)
}

// swapRows exchanges two equally sized pixel rows through a fixed stack
// chunk, so the flip is allocation-free at any width while keeping
// memmove-speed copies.
func swapRows(a, b []uint8) {
	var buf [2048]uint8
	for o := 0; o < len(a); o += len(buf) {
		end := min(o+len(buf), len(a))
		n := copy(buf[:], a[o:end])
		copy(a[o:end], b[o:end])
		copy(b[o:end], buf[:n])
	}
}

// Swap flips the image upside down in place, exchanging rows pairwise
// exactly as §IV's Swap stage describes.
func Swap(img *frame.Image) {
	for i, j := 0, img.H-1; i < j; i, j = i+1, j-1 {
		swapRows(img.Row(i), img.Row(j))
	}
}
