// Package filters implements the paper's five image-manipulation stages on
// real pixels: sepia, blur, scratch, flicker and swap. Each follows the
// formula or procedure in §IV of the paper. Randomized stages (scratch,
// flicker) take an explicit RNG so pipelines are reproducible.
//
// The kernels here are the optimized forms that run on the pipeline hot
// path: table-driven conversions, integer sliding-window sums, in-place
// row operations, and pooled scratch instead of per-call allocation. Each
// is golden-tested byte-identical against its paper-literal counterpart in
// reference.go — the memory-traffic rewrite must not change a single
// pixel, exactly as the paper's fast blur (§VI) preserves its stage
// semantics while cutting controller traffic.
package filters

import (
	"math/rand"
	"sync"

	"sccpipe/internal/frame"
)

// clamp01 clamps to [0, 1] — the paper's clamp.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func to01(b uint8) float64 { return float64(b) / 255.0 }
func from01(v float64) uint8 {
	return uint8(clamp01(v)*255 + 0.5)
}

// Sepia colors (§IV, Sepia stage).
var (
	sepiaS1 = [3]float64{0.2, 0.05, 0.0}
	sepiaS2 = [3]float64{1.0, 0.9, 0.5}
)

// sepiaRamp holds the per-channel luminance ramps 0.3·(v/255), 0.59·(v/255)
// and 0.11·(v/255) for every byte value: each entry is computed with
// exactly the float64 operations SepiaReference performs, so summing three
// table entries reproduces the reference mix bit for bit while replacing
// three divisions and three multiplications per pixel with loads. (A single
// 256-entry output table would need the mix quantized to 8 bits first,
// which is not bit-exact; the per-channel ramps are.)
var sepiaRamp = func() (t [3][256]float64) {
	for v := 0; v < 256; v++ {
		t[0][v] = 0.3 * to01(uint8(v))
		t[1][v] = 0.59 * to01(uint8(v))
		t[2][v] = 0.11 * to01(uint8(v))
	}
	return t
}()

// Sepia converts the image to the paper's sepia tone in place:
//
//	mix    = clamp(0.3·r + 0.59·g + 0.11·b)
//	rgbnew = clamp(S1·(1−mix) + S2·mix)
func Sepia(img *frame.Image) {
	pix := img.Pix
	for o := 0; o < len(pix); o += 4 {
		mix := clamp01(sepiaRamp[0][pix[o]] + sepiaRamp[1][pix[o+1]] + sepiaRamp[2][pix[o+2]])
		pix[o] = from01(sepiaS1[0]*(1-mix) + sepiaS2[0]*mix)
		pix[o+1] = from01(sepiaS1[1]*(1-mix) + sepiaS2[1]*mix)
		pix[o+2] = from01(sepiaS1[2]*(1-mix) + sepiaS2[2]*mix)
	}
}

// blurScratch pools the sliding-window row sums so Blur allocates nothing
// in steady state. Buffers are reused across widths: a too-small slab is
// simply regrown once.
var blurScratch = sync.Pool{New: func() any { return new([]int32) }}

func getRowSums(n int) *[]int32 {
	p := blurScratch.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

// hsum fills dst[x*3..] with the horizontal 3-window sums of row's RGB
// channels (window [x−1, x+1] clipped to the row), maintained as a sliding
// window: one add and one subtract per channel per pixel instead of three
// loads. Integer adds commute exactly, so the sums match the naive form.
func hsum(row []uint8, w int, dst []int32) {
	sr, sg, sb := int32(row[0]), int32(row[1]), int32(row[2])
	if w > 1 {
		sr += int32(row[4])
		sg += int32(row[5])
		sb += int32(row[6])
	}
	dst[0], dst[1], dst[2] = sr, sg, sb
	for x := 1; x < w; x++ {
		if x+1 < w {
			o := (x + 1) * 4
			sr += int32(row[o])
			sg += int32(row[o+1])
			sb += int32(row[o+2])
		}
		if x >= 2 {
			o := (x - 2) * 4
			sr -= int32(row[o])
			sg -= int32(row[o+1])
			sb -= int32(row[o+2])
		}
		o := x * 3
		dst[o], dst[o+1], dst[o+2] = sr, sg, sb
	}
}

// Blur applies a 3×3 box blur (average of the pixel and its neighbours,
// edge pixels averaging only in-bounds neighbours). As in the paper it is
// the stage with the heaviest memory traffic, so instead of cloning the
// whole frame it keeps a three-row ring of integer horizontal window sums:
// each source row is read once into its sum row before being overwritten,
// and each output pixel is three sum loads, two adds and one rounded
// division per channel. Output is byte-identical to BlurReference.
func Blur(img *frame.Image) {
	w, h := img.W, img.H
	if w <= 0 || h <= 0 {
		return
	}
	slab := getRowSums(3 * w * 3)
	defer blurScratch.Put(slab)
	var ring [3][]int32
	for i := range ring {
		ring[i] = (*slab)[i*w*3 : (i+1)*w*3]
	}
	hsum(img.Row(0), w, ring[0])
	if h > 1 {
		hsum(img.Row(1), w, ring[1])
	}
	for y := 0; y < h; y++ {
		lo, hi := y-1, y+1
		if lo < 0 {
			lo = 0
		}
		if hi > h-1 {
			hi = h - 1
		}
		out := img.Row(y)
		// The vertical window is 1–3 sum rows; resolving them here keeps
		// the per-pixel loops free of ring arithmetic, and dispatching on
		// the row count lets each loop divide by a constant (the compiler
		// turns those into multiply-shift sequences — the division was the
		// hot instruction).
		switch hi - lo {
		case 2:
			blurRow3(out, ring[lo%3], ring[(lo+1)%3], ring[(lo+2)%3], w)
		case 1:
			blurRow2(out, ring[lo%3], ring[(lo+1)%3], w)
		default:
			blurRow1(out, ring[lo%3], w)
		}
		// Slot (y−1)%3 is free now; fill it with row y+2's sums for the
		// next iteration. Row y+2 is still original data — only rows ≤ y
		// have been overwritten.
		if y+2 < h {
			hsum(img.Row(y+2), w, ring[(y+2)%3])
		}
	}
}

// blurPix writes one output pixel from its channel sums with the
// reference's rounded division (variable n — used only at row ends).
func blurPix(out []uint8, x int, sr, sg, sb, n int32) {
	po := x * 4
	out[po] = uint8((sr + n/2) / n)
	out[po+1] = uint8((sg + n/2) / n)
	out[po+2] = uint8((sb + n/2) / n)
}

// blurRow3 emits an output row whose vertical window has all three rows
// (sum rows a, b, c): interior pixels average 9 neighbours, the two row
// ends 6. blurRow2/blurRow1 are its two- and one-row counterparts. Each
// keeps the constant-divisor loop over the interior and handles the
// (clipped) ends via blurPix, so degenerate one- and two-column images
// fall out of the same code.
func blurRow3(out []uint8, a, b, c []int32, w int) {
	nx0 := int32(2)
	if w == 1 {
		nx0 = 1
	}
	blurPix(out, 0, a[0]+b[0]+c[0], a[1]+b[1]+c[1], a[2]+b[2]+c[2], 3*nx0)
	for x := 1; x < w-1; x++ {
		o := x * 3
		sr := a[o] + b[o] + c[o]
		sg := a[o+1] + b[o+1] + c[o+1]
		sb := a[o+2] + b[o+2] + c[o+2]
		po := x * 4
		out[po] = uint8((sr + 4) / 9)
		out[po+1] = uint8((sg + 4) / 9)
		out[po+2] = uint8((sb + 4) / 9)
	}
	if w > 1 {
		o := (w - 1) * 3
		blurPix(out, w-1, a[o]+b[o]+c[o], a[o+1]+b[o+1]+c[o+1], a[o+2]+b[o+2]+c[o+2], 6)
	}
}

func blurRow2(out []uint8, a, b []int32, w int) {
	nx0 := int32(2)
	if w == 1 {
		nx0 = 1
	}
	blurPix(out, 0, a[0]+b[0], a[1]+b[1], a[2]+b[2], 2*nx0)
	for x := 1; x < w-1; x++ {
		o := x * 3
		sr := a[o] + b[o]
		sg := a[o+1] + b[o+1]
		sb := a[o+2] + b[o+2]
		po := x * 4
		out[po] = uint8((sr + 3) / 6)
		out[po+1] = uint8((sg + 3) / 6)
		out[po+2] = uint8((sb + 3) / 6)
	}
	if w > 1 {
		o := (w - 1) * 3
		blurPix(out, w-1, a[o]+b[o], a[o+1]+b[o+1], a[o+2]+b[o+2], 4)
	}
}

func blurRow1(out []uint8, a []int32, w int) {
	nx0 := int32(2)
	if w == 1 {
		nx0 = 1
	}
	blurPix(out, 0, a[0], a[1], a[2], nx0)
	for x := 1; x < w-1; x++ {
		o := x * 3
		po := x * 4
		out[po] = uint8((a[o] + 1) / 3)
		out[po+1] = uint8((a[o+1] + 1) / 3)
		out[po+2] = uint8((a[o+2] + 1) / 3)
	}
	if w > 1 {
		o := (w - 1) * 3
		blurPix(out, w-1, a[o], a[o+1], a[o+2], 2)
	}
}

// MaxScratches bounds the number of scratches per frame strip.
const MaxScratches = 6

// Scratch draws a random number of vertical scratches in a random shade
// (§IV, Scratch stage): one random color and count per call, then one
// random x-coordinate per scratch whose whole column is replaced. Alpha is
// untouched, so the column walk writes the three color bytes directly.
func Scratch(img *frame.Image, rng *rand.Rand) {
	count := rng.Intn(MaxScratches + 1)
	shade := uint8(170 + rng.Intn(86)) // light scratch tone
	pix, stride := img.Pix, img.W*4
	for i := 0; i < count; i++ {
		x := rng.Intn(img.W)
		for o := x * 4; o < len(pix); o += stride {
			pix[o], pix[o+1], pix[o+2] = shade, shade, shade
		}
	}
}

// FlickerAmplitude is the paper's brightness variation bound: ±1/10.
const FlickerAmplitude = 0.1

// Flicker shifts all RGB values by one random amount in
// [−FlickerAmplitude, +FlickerAmplitude], clamped to [0, 1] (§IV).
func Flicker(img *frame.Image, rng *rand.Rand) {
	delta := (rng.Float64()*2 - 1) * FlickerAmplitude
	FlickerBy(img, delta)
}

// FlickerBy applies a specific brightness delta; exposed for testing and
// for replaying recorded flicker sequences. The delta is the same for
// every pixel, so the float64 round trip is evaluated once per byte value
// into a stack table and the image pass is three loads per pixel —
// byte-identical to FlickerByReference by construction.
func FlickerBy(img *frame.Image, delta float64) {
	var lut [256]uint8
	for v := range lut {
		lut[v] = from01(to01(uint8(v)) + delta)
	}
	pix := img.Pix
	for o := 0; o < len(pix); o += 4 {
		pix[o] = lut[pix[o]]
		pix[o+1] = lut[pix[o+1]]
		pix[o+2] = lut[pix[o+2]]
	}
}

// Swap flips the image upside down in place, exchanging rows pairwise
// exactly as §IV's Swap stage describes. The exchange goes through a
// fixed stack chunk instead of an allocated row buffer, so the flip is
// allocation-free at any width while keeping memmove-speed copies.
func Swap(img *frame.Image) {
	var buf [2048]uint8
	rb := img.W * 4
	for i, j := 0, img.H-1; i < j; i, j = i+1, j-1 {
		top := img.Row(i)
		bottom := img.Row(j)
		for o := 0; o < rb; o += len(buf) {
			end := min(o+len(buf), rb)
			n := copy(buf[:], top[o:end])
			copy(top[o:end], bottom[o:end])
			copy(bottom[o:end], buf[:n])
		}
	}
}
