// Stage fusion: the per-pixel stages (sepia, scratch, flicker, swap) are
// y-independent, so any adjacent run of them collapses into a single
// read-modify-write sweep over each row — one memory pass instead of one
// per stage. This is the strongest lever left after the allocation work:
// the paper's own finding is that stage-to-stage hand-offs through the
// memory controllers, not compute or topology, bound the pipeline.
//
// Each stage exposes a row-oriented PointKernel form; Fused composes a run
// of them (with the swap flip folded in as a row-pair walk) and applies
// the composition once per row, optionally splitting the rows into bands
// over a band.Pool. Every fused composition is golden-tested byte-
// identical to the sequential stage chain.
package filters

import (
	"encoding/binary"

	"sccpipe/internal/band"
	"sccpipe/internal/frame"
)

// PointKernel is the row-oriented form of a per-pixel stage: it rewrites
// one row of RGBA pixels in place. Kernels obtained from the constructors
// below are stateful only in ways that do not affect output (the sepia
// memo), so applying one row-by-row over a whole image equals the
// corresponding whole-image stage.
type PointKernel func(row []uint8)

// SepiaKernel returns Sepia's row kernel. The kernel carries its own memo
// and is not safe for concurrent use; create one per goroutine.
func SepiaKernel() PointKernel {
	m := new(sepiaMemo)
	return func(row []uint8) { sepiaRow(row, m) }
}

// ScratchKernel returns the row kernel of one pre-drawn scratch pass: each
// row write hits the same columns ScratchWith would.
func ScratchKernel(p ScratchParams) PointKernel {
	return func(row []uint8) { scratchRow(row, &p) }
}

// FlickerKernel returns the row kernel of one brightness delta, its LUT
// evaluated once at construction.
func FlickerKernel(delta float64) PointKernel {
	lut := new([256]uint8)
	flickerLUT(delta, lut)
	return func(row []uint8) { flickerRow(row, lut) }
}

// sepiaMemo caches the last fresh conversion in packed form (RGB in the
// low 24 bits, alpha masked out). Rendered frames are flat-shaded, so
// runs of identical pixels dominate and most pixels hit the memo; the
// conversion is pure, so a hit writes exactly the bytes the full
// evaluation would. It never changes output, only speed — and the packed
// form keeps the check to one 32-bit load and compare, so content with
// no runs (noise) pays almost nothing for it.
type sepiaMemo struct {
	in32, out32 uint32
	ok          bool
}

// sepiaRow applies the sepia tone to one row (or any 4-byte-stride pixel
// run — Sepia passes the whole Pix slice). Bit-exact vs SepiaReference:
// the memo only short-circuits identical inputs.
func sepiaRow(row []uint8, m *sepiaMemo) {
	// The memo lives in locals for the loop: written through m only once
	// at the end, so the row stores cannot alias it and the compiler keeps
	// the check in registers.
	in32, out32 := m.in32, m.out32
	if !m.ok {
		// A masked input always has a zero top byte, so this never hits
		// and the loop needs no validity check.
		in32 = 0xFF000000
	}
	for o := 0; o+4 <= len(row); o += 4 {
		px := binary.LittleEndian.Uint32(row[o:])
		in := px & 0x00FFFFFF
		if in != in32 {
			r, g, b := uint8(in), uint8(in>>8), uint8(in>>16)
			mix := clamp01(sepiaRamp[0][r] + sepiaRamp[1][g] + sepiaRamp[2][b])
			nr := from01(sepiaS1[0]*(1-mix) + sepiaS2[0]*mix)
			ng := from01(sepiaS1[1]*(1-mix) + sepiaS2[1]*mix)
			nb := from01(sepiaS1[2]*(1-mix) + sepiaS2[2]*mix)
			in32 = in
			out32 = uint32(nr) | uint32(ng)<<8 | uint32(nb)<<16
		}
		binary.LittleEndian.PutUint32(row[o:], out32|px&0xFF000000)
	}
	m.in32, m.out32, m.ok = in32, out32, true
}

// scratchRow writes one row's worth of each scratch column.
func scratchRow(row []uint8, p *ScratchParams) {
	for i := 0; i < p.N; i++ {
		o := p.Xs[i] * 4
		row[o], row[o+1], row[o+2] = p.Shade, p.Shade, p.Shade
	}
}

// flickerRow applies a prebuilt flicker LUT to one row (or the whole Pix
// slice).
func flickerRow(row []uint8, lut *[256]uint8) {
	for o := 0; o+4 <= len(row); o += 4 {
		row[o] = lut[row[o]]
		row[o+1] = lut[row[o+1]]
		row[o+2] = lut[row[o+2]]
	}
}

type opKind uint8

const (
	opSepia opKind = iota
	opScratch
	opFlicker
)

// pointOp is one folded stage: kind plus its precomputed per-frame state
// (scratch columns or flicker LUT) inlined so the fused row loop touches
// no pointers.
type pointOp struct {
	kind    opKind
	scratch ScratchParams
	lut     [256]uint8
	// shadeOut is a scratch op's final pixel value: the scratch overwrites
	// its columns with Shade, so every later value op applied to Shade is a
	// per-frame constant, folded once in prepare.
	shadeOut [3]uint8
}

// minFusedBandRows keeps fused bands from shrinking below the point where
// dispatch overhead dominates a band's row work.
const minFusedBandRows = 16

// Fused composes a run of adjacent point kernels into a single pass: each
// row is read once, every folded stage applied, and written once. The swap
// stage folds in as a row-pair flip (AddSwap), walking rows pairwise from
// both ends; because every point kernel is y-independent, kernel-then-flip
// equals flipping after kernels, which the golden tests pin down.
//
// A Fused value is reusable — Reset, re-Add, Apply — and allocation-free
// in steady state. It is not safe for concurrent use; bands of one Apply
// share only read-only op state (each band has its own sepia memo).
type Fused struct {
	ops  []pointOp
	flip bool

	// nValue counts the non-scratch (value-transform) ops, set by prepare;
	// zero skips the per-pixel pass entirely.
	nValue int

	// Per-ApplyBands state: the target image, band count, per-band
	// composition memos (two per band: a flip pair's top and bottom rows
	// interleave, and one memo entry would thrash between their runs), and
	// the band closure (built once).
	img    *frame.Image
	nb     int
	memos  []sepiaMemo
	caches []fuseCache
	bandFn func(int)

	// gen invalidates the color caches between Applies without clearing
	// them (32 KB per band — real money against a small strip): entries
	// are tagged with the generation that wrote them, and the caches are
	// scrubbed for real only when the counter wraps. Generation 0 is
	// never current, so zeroed (fresh) cache memory is never a hit.
	gen uint16
}

// Reset clears the composition for reuse, keeping capacity.
func (f *Fused) Reset() {
	f.ops = f.ops[:0]
	f.flip = false
}

// Len reports how many stages are folded in (swap included).
func (f *Fused) Len() int {
	n := len(f.ops)
	if f.flip {
		n++
	}
	return n
}

func (f *Fused) checkOrder() {
	if f.flip {
		panic("filters: cannot fuse a point kernel after AddSwap (swap must be the run's last stage)")
	}
}

// AddSepia folds in the sepia stage.
func (f *Fused) AddSepia() {
	f.checkOrder()
	f.ops = append(f.ops, pointOp{kind: opSepia})
}

// AddScratch folds in one pre-drawn scratch pass (see DrawScratchParams).
func (f *Fused) AddScratch(p ScratchParams) {
	f.checkOrder()
	f.ops = append(f.ops, pointOp{kind: opScratch, scratch: p})
}

// AddFlicker folds in one brightness delta (see DrawFlickerDelta),
// evaluating its LUT once.
func (f *Fused) AddFlicker(delta float64) {
	f.checkOrder()
	f.ops = append(f.ops, pointOp{kind: opFlicker})
	flickerLUT(delta, &f.ops[len(f.ops)-1].lut)
}

// AddSwap folds in the upside-down flip. It must be the last stage added.
func (f *Fused) AddSwap() {
	f.checkOrder()
	f.flip = true
}

// Apply runs the fused pass serially.
func (f *Fused) Apply(img *frame.Image) { f.ApplyBands(img, nil) }

// ApplyBands runs the fused pass with its rows (or, under a flip, its
// row pairs) split into bands distributed over p. A nil or serial pool, or
// an image too short to split, runs in one band on the caller. Output is
// identical for every band count.
func (f *Fused) ApplyBands(img *frame.Image, p *band.Pool) {
	if img.W <= 0 || img.H <= 0 || (len(f.ops) == 0 && !f.flip) {
		return
	}
	units := img.H
	if f.flip {
		units = (img.H + 1) / 2
	}
	nb := p.Parallelism()
	if nb > units/minFusedBandRows {
		nb = units / minFusedBandRows
	}
	if nb < 1 {
		nb = 1
	}
	if f.bandFn == nil {
		f.bandFn = f.applyBand
	}
	f.prepare()
	if cap(f.memos) < 2*nb {
		f.memos = make([]sepiaMemo, 2*nb)
	}
	f.memos = f.memos[:2*nb]
	if cap(f.caches) < nb {
		f.caches = make([]fuseCache, nb)
	}
	f.caches = f.caches[:nb]
	f.gen++
	if f.gen == 0 {
		cs := f.caches[:cap(f.caches)] // full capacity: shrunk-away bands hold old-gen entries too
		for i := range cs {
			cs[i] = fuseCache{}
		}
		f.gen = 1
	}
	f.img, f.nb = img, nb
	p.Run(nb, f.bandFn)
	f.img = nil
}

// applyBand processes one contiguous range of rows (or row pairs).
func (f *Fused) applyBand(b int) {
	img, h := f.img, f.img.H
	mTop, mBot := &f.memos[2*b], &f.memos[2*b+1]
	*mTop, *mBot = sepiaMemo{}, sepiaMemo{}
	cache := &f.caches[b] // generation-tagged; stale Applies never hit
	if !f.flip {
		y0, y1 := frame.StripBounds(h, f.nb, b)
		for y := y0; y < y1; y++ {
			f.applyRow(img.Row(y), mTop, cache)
		}
		return
	}
	// Flip: unit u is the row pair (u, h-1-u). Both rows get the kernels
	// with the exchange folded into the same pass (each row's result is
	// written straight into its partner) — identical to kernels-everywhere
	// followed by Swap, because the kernels are y-independent.
	pairs := (h + 1) / 2
	u0, u1 := frame.StripBounds(pairs, f.nb, b)
	for u := u0; u < u1; u++ {
		top, bot := u, h-1-u
		if bot == top {
			f.applyRow(img.Row(top), mTop, cache) // odd middle row: nothing to exchange
			continue
		}
		f.applyPair(img.Row(top), img.Row(bot), mTop, mBot, cache)
	}
}

// prepare folds the position-dependent ops: each scratch op's columns end
// up holding the later value transforms applied to its Shade, a per-frame
// constant. Runs once per ApplyBands; cost is a handful of pixel ops.
func (f *Fused) prepare() {
	f.nValue = 0
	for i := range f.ops {
		op := &f.ops[i]
		if op.kind != opScratch {
			f.nValue++
			continue
		}
		s := op.scratch.Shade
		op.shadeOut[0], op.shadeOut[1], op.shadeOut[2] = f.composeFrom(i+1, s, s, s)
	}
}

// composeFrom applies the value ops from index i onward to one pixel,
// with exactly the arithmetic the standalone stages use (sepiaRow's float
// expressions, flicker's LUT), so composed output is bit-identical to
// running the stages back to back. Scratch ops are position-dependent and
// skipped here; their columns are overwritten afterwards.
func (f *Fused) composeFrom(i int, r, g, b uint8) (uint8, uint8, uint8) {
	for ; i < len(f.ops); i++ {
		op := &f.ops[i]
		switch op.kind {
		case opSepia:
			mix := clamp01(sepiaRamp[0][r] + sepiaRamp[1][g] + sepiaRamp[2][b])
			r = from01(sepiaS1[0]*(1-mix) + sepiaS2[0]*mix)
			g = from01(sepiaS1[1]*(1-mix) + sepiaS2[1]*mix)
			b = from01(sepiaS1[2]*(1-mix) + sepiaS2[2]*mix)
		case opFlicker:
			r, g, b = op.lut[r], op.lut[g], op.lut[b]
		}
	}
	return r, g, b
}

// fuseCache is a direct-mapped color→result cache shared by one band's
// rows: rendered frames use a small palette (hundreds of colors across
// hundreds of thousands of pixels), so after warm-up the value chain is
// evaluated only once per color per band. Unlike the run memo, it keeps
// hitting when a pixel's color reappears anywhere later in the band. Each
// entry packs generation(16) | input RGB(24) | output RGB(24); only
// entries written by the current generation are hits (see Fused.gen).
type fuseCache [fuseCacheSize]uint64

const (
	fuseCacheBits = 12
	fuseCacheSize = 1 << fuseCacheBits
)

// missPixel is the composition's slow path: on a run-memo miss, consult
// the band's color cache, evaluating the value chain only for colors not
// seen this generation (or evicted by a colliding color); refresh the
// memo either way.
func (f *Fused) missPixel(in uint32, m *sepiaMemo, c *fuseCache) uint32 {
	tag := uint64(f.gen)<<48 | uint64(in)<<24
	slot := &c[(in*2654435761)>>(32-fuseCacheBits)]
	var out uint32
	if e := *slot; e&^uint64(0x00FFFFFF) == tag {
		out = uint32(e & 0x00FFFFFF)
	} else {
		nr, ng, nb := f.composeFrom(0, uint8(in), uint8(in>>8), uint8(in>>16))
		out = uint32(nr) | uint32(ng)<<8 | uint32(nb)<<16
		*slot = tag | uint64(out)
	}
	m.in32, m.out32, m.ok = in, out, true
	return out
}

// Word masks for the two-pixel fast path: RGB bits of a packed pixel
// pair, and their alpha complements.
const (
	rgbMask64   = uint64(0x00FFFFFF00FFFFFF)
	alphaMask64 = ^rgbMask64
)

// dup32 replicates one packed pixel into a pixel pair.
func dup32(v uint32) uint64 { return uint64(v)<<32 | uint64(v) }

// applyRow runs the folded composition over one row: a single per-pixel
// pass applies every value transform at once behind one whole-composition
// memo (a run of identical input pixels computes the chain once, and the
// hit path moves two pixels per 64-bit load, compare, and store), then
// the scratch constants land on their columns. This is where fusion beats the
// stage-at-a-time chain on compute, not just memory passes: n memo checks
// and n LUT walks collapse into one.
func (f *Fused) applyRow(row []uint8, m *sepiaMemo, c *fuseCache) {
	if f.nValue > 0 {
		in64, out64 := dup32(m.in32), dup32(m.out32)
		o := 0
		for o+16 <= len(row) {
			hi := binary.LittleEndian.Uint64(row[o+8:])
			px := binary.LittleEndian.Uint64(row[o:])
			if m.ok && px&rgbMask64 == in64 && hi&rgbMask64 == in64 {
				binary.LittleEndian.PutUint64(row[o:], out64|px&alphaMask64)
				binary.LittleEndian.PutUint64(row[o+8:], out64|hi&alphaMask64)
				o += 16
				continue
			}
			px32 := uint32(px)
			in := px32 & 0x00FFFFFF
			out := m.out32
			if !m.ok || in != m.in32 {
				out = f.missPixel(in, m, c)
				in64, out64 = dup32(m.in32), dup32(m.out32)
			}
			binary.LittleEndian.PutUint32(row[o:], out|px32&0xFF000000)
			o += 4
		}
		for ; o+4 <= len(row); o += 4 {
			px := binary.LittleEndian.Uint32(row[o:])
			in := px & 0x00FFFFFF
			out := m.out32
			if !m.ok || in != m.in32 {
				out = f.missPixel(in, m, c)
			}
			binary.LittleEndian.PutUint32(row[o:], out|px&0xFF000000)
		}
	}
	f.scratchCols(row)
}

// applyPair runs the folded composition over a flip pair, writing each
// row's result directly into its partner — the Swap exchange costs no
// extra pass. Alpha travels with its source pixel, as a row exchange
// would move it.
func (f *Fused) applyPair(rowT, rowB []uint8, mT, mB *sepiaMemo, c *fuseCache) {
	if f.nValue == 0 {
		swapRows(rowT, rowB)
	} else {
		n := len(rowT)
		if len(rowB) < n {
			n = len(rowB)
		}
		inT64, outT64 := dup32(mT.in32), dup32(mT.out32)
		inB64, outB64 := dup32(mB.in32), dup32(mB.out32)
		o := 0
		for o+16 <= n {
			pT := binary.LittleEndian.Uint64(rowT[o:])
			pB := binary.LittleEndian.Uint64(rowB[o:])
			hT := binary.LittleEndian.Uint64(rowT[o+8:])
			hB := binary.LittleEndian.Uint64(rowB[o+8:])
			if mT.ok && mB.ok &&
				pT&rgbMask64 == inT64 && pB&rgbMask64 == inB64 &&
				hT&rgbMask64 == inT64 && hB&rgbMask64 == inB64 {
				binary.LittleEndian.PutUint64(rowT[o:], outB64|pB&alphaMask64)
				binary.LittleEndian.PutUint64(rowB[o:], outT64|pT&alphaMask64)
				binary.LittleEndian.PutUint64(rowT[o+8:], outB64|hB&alphaMask64)
				binary.LittleEndian.PutUint64(rowB[o+8:], outT64|hT&alphaMask64)
				o += 16
				continue
			}
			pT32, pB32 := uint32(pT), uint32(pB)
			inT := pT32 & 0x00FFFFFF
			inB := pB32 & 0x00FFFFFF
			outT := mT.out32
			if !mT.ok || inT != mT.in32 {
				outT = f.missPixel(inT, mT, c)
				inT64, outT64 = dup32(mT.in32), dup32(mT.out32)
			}
			outB := mB.out32
			if !mB.ok || inB != mB.in32 {
				outB = f.missPixel(inB, mB, c)
				inB64, outB64 = dup32(mB.in32), dup32(mB.out32)
			}
			binary.LittleEndian.PutUint32(rowT[o:], outB|pB32&0xFF000000)
			binary.LittleEndian.PutUint32(rowB[o:], outT|pT32&0xFF000000)
			o += 4
		}
		for ; o+4 <= n; o += 4 {
			pxT := binary.LittleEndian.Uint32(rowT[o:])
			pxB := binary.LittleEndian.Uint32(rowB[o:])
			inT := pxT & 0x00FFFFFF
			inB := pxB & 0x00FFFFFF
			outT := mT.out32
			if !mT.ok || inT != mT.in32 {
				outT = f.missPixel(inT, mT, c)
			}
			outB := mB.out32
			if !mB.ok || inB != mB.in32 {
				outB = f.missPixel(inB, mB, c)
			}
			binary.LittleEndian.PutUint32(rowT[o:], outB|pxB&0xFF000000)
			binary.LittleEndian.PutUint32(rowB[o:], outT|pxT&0xFF000000)
		}
	}
	f.scratchCols(rowT)
	f.scratchCols(rowB)
}

// scratchCols writes every scratch op's folded constant onto its columns.
func (f *Fused) scratchCols(row []uint8) {
	for i := range f.ops {
		op := &f.ops[i]
		if op.kind != opScratch {
			continue
		}
		for j := 0; j < op.scratch.N; j++ {
			o := op.scratch.Xs[j] * 4
			row[o], row[o+1], row[o+2] = op.shadeOut[0], op.shadeOut[1], op.shadeOut[2]
		}
	}
}
