//go:build race

package filters

// raceEnabled gates the strict zero-alloc assertions: under the race
// detector sync.Pool intentionally drops puts, so pooled paths allocate.
const raceEnabled = true
