package filters

import (
	"math/rand"
	"testing"

	"sccpipe/internal/frame"
)

// The optimized kernels must produce byte-identical output to the
// paper-literal reference kernels in reference.go for every geometry —
// including the degenerate edge cases (single rows, single columns) where
// the blur neighbour count and the strip row windows shrink.

var goldenSizes = [][2]int{
	{1, 1}, {2, 1}, {1, 2}, {3, 1}, {1, 3}, {2, 2}, {3, 3},
	{16, 16}, {17, 9}, {9, 17}, {64, 48}, {33, 2}, {2, 33}, {31, 31},
}

func goldenPair(seed int64, w, h int) (opt, ref *frame.Image) {
	opt = randomImage(seed, w, h)
	// Vary alpha too: the kernels must preserve arbitrary alpha, not just
	// opaque frames.
	rng := rand.New(rand.NewSource(seed ^ 0x5bd1))
	for i := 3; i < len(opt.Pix); i += 4 {
		opt.Pix[i] = uint8(rng.Intn(256))
	}
	return opt, opt.Clone()
}

func TestGoldenSepia(t *testing.T) {
	for _, size := range goldenSizes {
		for seed := int64(0); seed < 4; seed++ {
			opt, ref := goldenPair(seed, size[0], size[1])
			Sepia(opt)
			SepiaReference(ref)
			if !opt.Equal(ref) {
				t.Fatalf("%dx%d seed %d: optimized Sepia differs from reference", size[0], size[1], seed)
			}
		}
	}
}

func TestGoldenBlur(t *testing.T) {
	for _, size := range goldenSizes {
		for seed := int64(0); seed < 4; seed++ {
			opt, ref := goldenPair(seed, size[0], size[1])
			Blur(opt)
			BlurReference(ref)
			if !opt.Equal(ref) {
				t.Fatalf("%dx%d seed %d: optimized Blur differs from reference", size[0], size[1], seed)
			}
		}
	}
}

func TestGoldenScratch(t *testing.T) {
	for _, size := range goldenSizes {
		for seed := int64(0); seed < 8; seed++ {
			opt, ref := goldenPair(seed, size[0], size[1])
			Scratch(opt, rand.New(rand.NewSource(seed)))
			ScratchReference(ref, rand.New(rand.NewSource(seed)))
			if !opt.Equal(ref) {
				t.Fatalf("%dx%d seed %d: optimized Scratch differs from reference", size[0], size[1], seed)
			}
		}
	}
}

func TestGoldenFlicker(t *testing.T) {
	deltas := []float64{0, 0.1, -0.1, 0.05, -0.042, 1, -1, 0.0999}
	for _, size := range goldenSizes {
		for i, delta := range deltas {
			opt, ref := goldenPair(int64(i), size[0], size[1])
			FlickerBy(opt, delta)
			FlickerByReference(ref, delta)
			if !opt.Equal(ref) {
				t.Fatalf("%dx%d delta %g: optimized FlickerBy differs from reference", size[0], size[1], delta)
			}
		}
		// And through the randomized entry point with a shared seed.
		opt, ref := goldenPair(99, size[0], size[1])
		Flicker(opt, rand.New(rand.NewSource(31)))
		FlickerByReference(ref, func() float64 {
			rng := rand.New(rand.NewSource(31))
			return (rng.Float64()*2 - 1) * FlickerAmplitude
		}())
		if !opt.Equal(ref) {
			t.Fatalf("%dx%d: Flicker differs from reference", size[0], size[1])
		}
	}
}

func TestGoldenSwap(t *testing.T) {
	for _, size := range goldenSizes {
		for seed := int64(0); seed < 4; seed++ {
			opt, ref := goldenPair(seed, size[0], size[1])
			Swap(opt)
			SwapReference(ref)
			if !opt.Equal(ref) {
				t.Fatalf("%dx%d seed %d: optimized Swap differs from reference", size[0], size[1], seed)
			}
		}
	}
}

// The whole chain applied strip-wise over views must match the chain over
// copied strips — the combination the pipeline actually runs.
func TestGoldenChainOverStripViews(t *testing.T) {
	full := randomImage(7, 48, 36)
	copied := full.Clone()
	for _, n := range []int{1, 2, 3, 5} {
		a := full.Clone()
		b := copied.Clone()
		views, err := frame.SplitRowsView(a, n)
		if err != nil {
			t.Fatal(err)
		}
		copies, err := frame.SplitRows(b, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for s, img := range []*frame.Image{views[i].Img, copies[i].Img} {
				rng := rand.New(rand.NewSource(int64(i*10 + s*0))) // same seed for both
				Sepia(img)
				Blur(img)
				Scratch(img, rng)
				Flicker(img, rng)
				Swap(img)
			}
		}
		got := frame.Assemble(48, 36, views)
		want := frame.Assemble(48, 36, copies)
		if !got.Equal(want) {
			t.Fatalf("n=%d: chain over views differs from chain over copies", n)
		}
	}
}

// Steady-state allocation regression: the in-place kernels must not
// allocate per call. Averages tolerate a rare sync.Pool refill after GC.
func TestKernelSteadyStateAllocs(t *testing.T) {
	img := randomImage(11, 64, 48)
	rng := rand.New(rand.NewSource(1))
	Blur(img) // prime the scratch pools
	Swap(img)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Sepia", func() { Sepia(img) }},
		{"Blur", func() { Blur(img) }},
		{"Scratch", func() { Scratch(img, rng) }},
		{"FlickerBy", func() { FlickerBy(img, 0.05) }},
		{"Swap", func() { Swap(img) }},
	}
	for _, c := range cases {
		if avg := testing.AllocsPerRun(100, c.fn); avg > 0.1 {
			t.Errorf("%s allocates %.2f objects per call in steady state", c.name, avg)
		}
	}
}

// Benchmarks for the kernel pairs live in the root bench harness; a tiny
// sanity benchmark here keeps `go test -bench . ./internal/filters` useful.
func BenchmarkBlurVsReference(b *testing.B) {
	for _, impl := range []struct {
		name string
		fn   func(*frame.Image)
	}{{"opt", Blur}, {"ref", BlurReference}} {
		b.Run(impl.name, func(b *testing.B) {
			img := randomImage(1, 256, 256)
			b.SetBytes(int64(img.Bytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				impl.fn(img)
			}
		})
	}
}
