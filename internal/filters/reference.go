package filters

import (
	"math/rand"

	"sccpipe/internal/frame"
)

// This file retains the straightforward, paper-literal kernels. They are
// the oracles the optimized kernels in filters.go are golden-tested
// against (byte-identical output required) and the baselines the bench
// harness compares to. They are not used on the hot path.

// SepiaReference is the direct transcription of §IV's sepia formula: three
// float64 conversions, the weighted mix, and two clamped lerps per pixel.
func SepiaReference(img *frame.Image) {
	pix := img.Pix
	for o := 0; o < len(pix); o += 4 {
		r, g, b := to01(pix[o]), to01(pix[o+1]), to01(pix[o+2])
		mix := clamp01(0.3*r + 0.59*g + 0.11*b)
		pix[o] = from01(sepiaS1[0]*(1-mix) + sepiaS2[0]*mix)
		pix[o+1] = from01(sepiaS1[1]*(1-mix) + sepiaS2[1]*mix)
		pix[o+2] = from01(sepiaS1[2]*(1-mix) + sepiaS2[2]*mix)
	}
}

// BlurReference is the 3×3 box blur working from a full-frame Clone, nine
// bounds-checked neighbour reads per pixel — the paper's memory-heaviest
// stage, transcribed naively.
func BlurReference(img *frame.Image) {
	src := img.Clone()
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			var sr, sg, sb, n int
			for dy := -1; dy <= 1; dy++ {
				yy := y + dy
				if yy < 0 || yy >= img.H {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					xx := x + dx
					if xx < 0 || xx >= img.W {
						continue
					}
					r, g, b, _ := src.At(xx, yy)
					sr += int(r)
					sg += int(g)
					sb += int(b)
					n++
				}
			}
			_, _, _, a := src.At(x, y)
			img.Set(x, y, uint8((sr+n/2)/n), uint8((sg+n/2)/n), uint8((sb+n/2)/n), a)
		}
	}
}

// ScratchReference draws vertical scratches via per-pixel At/Set calls.
func ScratchReference(img *frame.Image, rng *rand.Rand) {
	count := rng.Intn(MaxScratches + 1)
	shade := uint8(170 + rng.Intn(86))
	for i := 0; i < count; i++ {
		x := rng.Intn(img.W)
		for y := 0; y < img.H; y++ {
			_, _, _, a := img.At(x, y)
			img.Set(x, y, shade, shade, shade, a)
		}
	}
}

// FlickerByReference applies the brightness delta with a float64 round
// trip per channel per pixel.
func FlickerByReference(img *frame.Image, delta float64) {
	pix := img.Pix
	for o := 0; o < len(pix); o += 4 {
		pix[o] = from01(to01(pix[o]) + delta)
		pix[o+1] = from01(to01(pix[o+1]) + delta)
		pix[o+2] = from01(to01(pix[o+2]) + delta)
	}
}

// SwapReference flips the image with a freshly allocated row buffer.
func SwapReference(img *frame.Image) {
	tmp := make([]uint8, img.W*4)
	for i, j := 0, img.H-1; i < j; i, j = i+1, j-1 {
		top := img.Row(i)
		bottom := img.Row(j)
		copy(tmp, top)
		copy(top, bottom)
		copy(bottom, tmp)
	}
}
