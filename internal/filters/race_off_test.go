//go:build !race

package filters

const raceEnabled = false
