package filters

import (
	"math"
	"math/rand"

	"sccpipe/internal/frame"
)

// The paper notes its scratch filter "can be easily extended to allow
// scratches of arbitrary orientation and length" (§IV). This file is that
// extension: line-segment scratches with random angle, length, position
// and shade, drawn with an integer Bresenham walk plus thickness.

// OrientedScratchParams bounds the randomized scratch generation.
type OrientedScratchParams struct {
	MaxCount  int     // scratches per frame (0..MaxCount)
	MinLen    float64 // fraction of the image diagonal
	MaxLen    float64
	MaxTilt   float64 // max deviation from vertical, radians
	Thickness int     // scratch width in pixels (≥ 1)
}

// DefaultOrientedScratchParams mimics aged film: mostly-vertical scratches
// of varying length.
func DefaultOrientedScratchParams() OrientedScratchParams {
	return OrientedScratchParams{
		MaxCount:  MaxScratches,
		MinLen:    0.25,
		MaxLen:    1.0,
		MaxTilt:   0.35,
		Thickness: 1,
	}
}

// ScratchOriented draws randomized line-segment scratches. Like Scratch,
// one shade and one count are drawn per call; each scratch then gets its
// own position, angle and length.
func ScratchOriented(img *frame.Image, rng *rand.Rand, p OrientedScratchParams) {
	if p.MaxCount <= 0 {
		return
	}
	if p.Thickness < 1 {
		p.Thickness = 1
	}
	count := rng.Intn(p.MaxCount + 1)
	shade := uint8(170 + rng.Intn(86))
	diag := math.Hypot(float64(img.W), float64(img.H))
	for i := 0; i < count; i++ {
		length := diag * (p.MinLen + rng.Float64()*(p.MaxLen-p.MinLen))
		angle := (rng.Float64()*2 - 1) * p.MaxTilt // 0 = vertical
		cx := rng.Float64() * float64(img.W)
		cy := rng.Float64() * float64(img.H)
		dx := math.Sin(angle) * length / 2
		dy := math.Cos(angle) * length / 2
		drawLine(img, cx-dx, cy-dy, cx+dx, cy+dy, p.Thickness, shade)
	}
}

// drawLine fills a thick segment, clipping to the image.
func drawLine(img *frame.Image, x0, y0, x1, y1 float64, thickness int, shade uint8) {
	steps := int(math.Ceil(math.Max(math.Abs(x1-x0), math.Abs(y1-y0)))) + 1
	for s := 0; s < steps; s++ {
		t := float64(s) / (float64(steps-1) + 1e-12)
		x := int(x0 + t*(x1-x0))
		y := int(y0 + t*(y1-y0))
		for tx := 0; tx < thickness; tx++ {
			px := x + tx
			if px < 0 || px >= img.W || y < 0 || y >= img.H {
				continue
			}
			_, _, _, a := img.At(px, y)
			img.Set(px, y, shade, shade, shade, a)
		}
	}
}
