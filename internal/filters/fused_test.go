package filters

import (
	"fmt"
	"math/rand"
	"testing"

	"sccpipe/internal/band"
	"sccpipe/internal/frame"
)

// fuseKind indexes the fusable tail stages in pipeline order.
type fuseKind int

const (
	fkSepia fuseKind = iota
	fkScratch
	fkFlicker
	fkSwap
)

var fuseKindNames = [...]string{"sepia", "scratch", "flicker", "swap"}

// applyUnfused applies one stage the sequential way; applyFused folds the
// same stage into the composition. Each randomized stage gets its own
// fixed-seed RNG so both paths draw the same values regardless of order.
func applyUnfused(img *frame.Image, k fuseKind) {
	switch k {
	case fkSepia:
		Sepia(img)
	case fkScratch:
		ScratchWith(img, DrawScratchParams(rand.New(rand.NewSource(1001)), img.W))
	case fkFlicker:
		FlickerBy(img, DrawFlickerDelta(rand.New(rand.NewSource(1002))))
	case fkSwap:
		Swap(img)
	}
}

func applyFused(f *Fused, w int, k fuseKind) {
	switch k {
	case fkSepia:
		f.AddSepia()
	case fkScratch:
		f.AddScratch(DrawScratchParams(rand.New(rand.NewSource(1001)), w))
	case fkFlicker:
		f.AddFlicker(DrawFlickerDelta(rand.New(rand.NewSource(1002))))
	case fkSwap:
		f.AddSwap()
	}
}

func runName(run []fuseKind) string {
	s := ""
	for i, k := range run {
		if i > 0 {
			s += "+"
		}
		s += fuseKindNames[k]
	}
	return s
}

// Every contiguous run of the fusable tail (length 1..4) must be
// byte-identical fused vs sequential, on regular, degenerate (1×N, N×1)
// and odd-height images.
func TestFusedGoldenAllRuns(t *testing.T) {
	all := []fuseKind{fkSepia, fkScratch, fkFlicker, fkSwap}
	sizes := [][2]int{{64, 48}, {1, 37}, {41, 1}, {33, 33}, {2, 2}, {1, 1}}
	var f Fused
	for lo := 0; lo < len(all); lo++ {
		for hi := lo + 1; hi <= len(all); hi++ {
			run := all[lo:hi]
			for _, sz := range sizes {
				w, h := sz[0], sz[1]
				t.Run(fmt.Sprintf("%s/%dx%d", runName(run), w, h), func(t *testing.T) {
					want := randomImage(int64(w*1000+h), w, h)
					got := want.Clone()
					for _, k := range run {
						applyUnfused(want, k)
					}
					f.Reset()
					for _, k := range run {
						applyFused(&f, w, k)
					}
					f.Apply(got)
					if !got.Equal(want) {
						t.Fatalf("fused %s differs from sequential on %dx%d", runName(run), w, h)
					}
				})
			}
		}
	}
}

// The fused pass must produce identical bytes for every band count, on a
// shared pool and an explicit parallel pool, with and without the flip.
func TestFusedBandsMatchSerial(t *testing.T) {
	runs := [][]fuseKind{
		{fkSepia, fkScratch, fkFlicker},       // no flip
		{fkSepia, fkScratch, fkFlicker, fkSwap}, // flip path
		{fkScratch, fkFlicker, fkSwap},        // the real pipeline's fused tail
	}
	pools := []*band.Pool{nil, band.Serial, band.New(2), band.New(3), band.New(8), band.Default()}
	for _, run := range runs {
		want := randomImage(7, 96, 128)
		var f Fused
		f.Reset()
		for _, k := range run {
			applyFused(&f, want.W, k)
		}
		f.Apply(want)
		for pi, p := range pools {
			got := randomImage(7, 96, 128)
			var g Fused
			g.Reset()
			for _, k := range run {
				applyFused(&g, got.W, k)
			}
			g.ApplyBands(got, p)
			if !got.Equal(want) {
				t.Fatalf("run %s: pool %d (parallelism %d) differs from serial", runName(run), pi, p.Parallelism())
			}
		}
	}
}

// Fused passes over zero-copy strip views must equal the sequential stages
// over the same views: exactly how the pipeline applies them.
func TestFusedOnStripViews(t *testing.T) {
	base := randomImage(11, 80, 90)
	want := base.Clone()
	got := base.Clone()
	wantStrips, err := frame.SplitRowsView(want, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotStrips, err := frame.SplitRowsView(got, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := []fuseKind{fkScratch, fkFlicker, fkSwap}
	var f Fused
	for i := range wantStrips {
		for _, k := range run {
			applyUnfused(wantStrips[i].Img, k)
		}
		f.Reset()
		for _, k := range run {
			applyFused(&f, got.W, k)
		}
		f.Apply(gotStrips[i].Img)
	}
	if !got.Equal(want) {
		t.Fatal("fused strip views differ from sequential strip views")
	}
}

// The exported row kernels applied row by row must equal their whole-image
// stages.
func TestPointKernelsMatchStages(t *testing.T) {
	w, h := 31, 17
	scratchP := DrawScratchParams(rand.New(rand.NewSource(3)), w)
	cases := []struct {
		name   string
		kernel PointKernel
		stage  func(*frame.Image)
	}{
		{"sepia", SepiaKernel(), Sepia},
		{"scratch", ScratchKernel(scratchP), func(im *frame.Image) { ScratchWith(im, scratchP) }},
		{"flicker", FlickerKernel(0.07), func(im *frame.Image) { FlickerBy(im, 0.07) }},
	}
	for _, tc := range cases {
		want := randomImage(21, w, h)
		got := want.Clone()
		tc.stage(want)
		for y := 0; y < h; y++ {
			tc.kernel(got.Row(y))
		}
		if !got.Equal(want) {
			t.Fatalf("%s kernel row-by-row differs from stage", tc.name)
		}
	}
}

// Hoisting the per-frame draws must consume the RNG identically to the
// original interleaved kernels: same seed, same pixels.
func TestDrawParamsMatchKernelRNG(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := randomImage(seed, 40, 30)
		b := a.Clone()
		Scratch(a, rand.New(rand.NewSource(seed)))
		ScratchWith(b, DrawScratchParams(rand.New(rand.NewSource(seed)), b.W))
		if !a.Equal(b) {
			t.Fatalf("seed %d: ScratchWith(DrawScratchParams) differs from Scratch", seed)
		}
		Flicker(a, rand.New(rand.NewSource(seed)))
		FlickerBy(b, DrawFlickerDelta(rand.New(rand.NewSource(seed))))
		if !a.Equal(b) {
			t.Fatalf("seed %d: FlickerBy(DrawFlickerDelta) differs from Flicker", seed)
		}
	}
}

// A point kernel added after the flip is a composition bug, not a silent
// wrong answer.
func TestFusedPanicsOnKernelAfterSwap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddSepia after AddSwap did not panic")
		}
	}()
	var f Fused
	f.AddSwap()
	f.AddSepia()
}

// A warmed Fused must not allocate per frame, serial or banded.
func TestFusedSteadyStateAllocs(t *testing.T) {
	img := randomImage(5, 128, 96)
	p := band.New(4)
	var f Fused
	frameOnce := func() {
		f.Reset()
		f.AddSepia()
		f.AddScratch(DrawScratchParams(rand.New(rand.NewSource(9)), img.W))
		f.AddFlicker(0.04)
		f.AddSwap()
		f.ApplyBands(img, p)
	}
	// Warm: grow ops/memos, build the band closure. The throwaway RNGs
	// above are the test's, not the fused path's — measure without them.
	f.Reset()
	f.AddSepia()
	scratchP := DrawScratchParams(rand.New(rand.NewSource(9)), img.W)
	frameOnce = func() {
		f.Reset()
		f.AddSepia()
		f.AddScratch(scratchP)
		f.AddFlicker(0.04)
		f.AddSwap()
		f.ApplyBands(img, p)
	}
	frameOnce()
	if avg := testing.AllocsPerRun(50, frameOnce); avg > 0 {
		t.Fatalf("fused pass allocates %.1f objects per frame, want 0", avg)
	}
}

// BlurBands must be byte-identical to Blur for every pool and image shape,
// including shapes too short to band (fallback path).
func TestBlurBandsGolden(t *testing.T) {
	sizes := [][2]int{{64, 64}, {64, 100}, {1, 64}, {2, 48}, {33, 7}, {17, 1}, {64, 16}}
	pools := []*band.Pool{nil, band.Serial, band.New(2), band.New(3), band.New(8), band.Default()}
	for _, sz := range sizes {
		w, h := sz[0], sz[1]
		want := randomImage(int64(w*97+h), w, h)
		got := want.Clone()
		Blur(want)
		for pi, p := range pools {
			img := got.Clone()
			BlurBands(img, p)
			if !img.Equal(want) {
				t.Fatalf("%dx%d pool %d: BlurBands differs from Blur", w, h, pi)
			}
		}
	}
}

// BlurBands on strip views composes with the zero-copy decomposition.
func TestBlurBandsOnStripViews(t *testing.T) {
	base := randomImage(13, 48, 96)
	want := base.Clone()
	got := base.Clone()
	wantStrips, _ := frame.SplitRowsView(want, 3)
	gotStrips, _ := frame.SplitRowsView(got, 3)
	p := band.New(3)
	for i := range wantStrips {
		Blur(wantStrips[i].Img)
		BlurBands(gotStrips[i].Img, p)
	}
	if !got.Equal(want) {
		t.Fatal("banded blur on strip views differs from serial blur")
	}
}

// A warmed BlurBands must not allocate per frame.
func TestBlurBandsSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	img := randomImage(5, 128, 128)
	p := band.New(4)
	BlurBands(img, p) // warm slab + closures
	if avg := testing.AllocsPerRun(50, func() { BlurBands(img, p) }); avg > 0 {
		t.Fatalf("BlurBands allocates %.1f objects per frame, want 0", avg)
	}
}

// The sepia memo is an optimization only: adversarial patterns (constant
// runs, alternating pairs, all-distinct) must match the reference.
func TestSepiaMemoAdversarial(t *testing.T) {
	im := frame.New(64, 4)
	// Row 0: constant; row 1: alternating two colors; row 2: ramp; row 3:
	// random.
	for x := 0; x < 64; x++ {
		im.Set(x, 0, 10, 200, 30, 255)
		if x%2 == 0 {
			im.Set(x, 1, 255, 0, 0, 255)
		} else {
			im.Set(x, 1, 0, 0, 255, 255)
		}
		im.Set(x, 2, uint8(x*4), uint8(255-x*4), uint8(x*2), 255)
	}
	rand.New(rand.NewSource(4)).Read(im.Row(3))
	want := im.Clone()
	SepiaReference(want)
	Sepia(im)
	if !im.Equal(want) {
		t.Fatal("memoized sepia differs from reference on adversarial patterns")
	}
}
