package scc

// Cache is a set-associative LRU cache simulator at line granularity. It is
// used to justify (and test) the aggregate byte counts the stage cost model
// charges to the memory controllers, and to reproduce the paper's Fig. 12
// observation that exceeding the 256 KiB L2 does not change streaming-stage
// behaviour (each pixel is touched once per stage, so the data always
// streams from memory regardless of capacity).
type Cache struct {
	lineSize int
	sets     int
	ways     int
	// lru[s] holds the tags resident in set s, most recently used first.
	lru [][]uint64

	Hits   int64
	Misses int64
}

// NewCache builds a cache of the given total size, associativity and line
// size; size must be divisible by ways×lineSize.
func NewCache(size, ways, lineSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 || size%(ways*lineSize) != 0 {
		panic("scc: invalid cache geometry")
	}
	sets := size / (ways * lineSize)
	c := &Cache{lineSize: lineSize, sets: sets, ways: ways, lru: make([][]uint64, sets)}
	for i := range c.lru {
		c.lru[i] = make([]uint64, 0, ways)
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Access touches the byte address and reports whether it hit. On a miss the
// line is filled, evicting the LRU way if the set is full.
func (c *Cache) Access(addr uint64) bool {
	line := addr / uint64(c.lineSize)
	set := line % uint64(c.sets)
	tag := line / uint64(c.sets)
	ways := c.lru[set]
	for i, t := range ways {
		if t == tag {
			// Move to MRU position.
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			c.Hits++
			return true
		}
	}
	c.Misses++
	if len(ways) < c.ways {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = tag
	c.lru[set] = ways
	return false
}

// AccessRange touches every line in [addr, addr+n) and returns the number of
// missing lines.
func (c *Cache) AccessRange(addr uint64, n int) (misses int) {
	if n <= 0 {
		return 0
	}
	first := addr / uint64(c.lineSize)
	last := (addr + uint64(n) - 1) / uint64(c.lineSize)
	for line := first; line <= last; line++ {
		if !c.Access(line * uint64(c.lineSize)) {
			misses++
		}
	}
	return misses
}

// Flush empties the cache, keeping statistics.
func (c *Cache) Flush() {
	for i := range c.lru {
		c.lru[i] = c.lru[i][:0]
	}
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Hierarchy models a P54C core's L1+L2 arrangement (both 4-way).
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
}

// NewHierarchy returns the SCC per-core cache hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1: NewCache(L1Size, CacheWays, CacheLine),
		L2: NewCache(L2Size, CacheWays, CacheLine),
	}
}

// Access touches an address and reports the satisfying level: 1 for an L1
// hit, 2 for an L2 hit, 0 for a memory access.
func (h *Hierarchy) Access(addr uint64) int {
	if h.L1.Access(addr) {
		return 1
	}
	if h.L2.Access(addr) {
		return 2
	}
	return 0
}

// StreamMissBytes is the analytic counterpart used by the stage cost model:
// the bytes fetched from memory when a working set of ws bytes is swept
// sequentially `passes` times by a core whose L2 holds L2Size bytes. The
// first pass always streams from memory; later passes hit in L2 only if the
// working set fits.
func StreamMissBytes(ws int, passes int) int {
	if passes <= 0 || ws <= 0 {
		return 0
	}
	if ws <= L2Size {
		return ws
	}
	return ws * passes
}
