package scc

import (
	"fmt"

	"sccpipe/internal/des"
)

// Interval is a closed time span during which a core was computing.
type Interval struct{ Start, End float64 }

// Chip is a simulated SCC instance bound to a DES engine.
type Chip struct {
	Eng *des.Engine
	Cfg Config

	freq [NumCores]FreqLevel
	used [NumCores]bool // cores a workload is mapped onto

	links map[linkKey]*des.Resource
	mem   [NumMemCtl]*des.Resource

	// busyLog records compute intervals per core for the power model.
	busyLog [NumCores][]Interval

	// MemBytes counts bytes serviced per controller, for utilization reports.
	MemBytes [NumMemCtl]int64
	// MsgCount counts modelled mesh transfers.
	MsgCount int64
}

type linkKey struct {
	x, y int
	dir  byte // 'E', 'W', 'N', 'S': direction of travel out of router (x,y)
}

// New returns a chip at reset: all cores at cfg.DefaultFreq, nothing used.
func New(eng *des.Engine, cfg Config) *Chip {
	c := &Chip{Eng: eng, Cfg: cfg, links: make(map[linkKey]*des.Resource)}
	for i := range c.freq {
		c.freq[i] = cfg.DefaultFreq
	}
	ports := cfg.MemPorts
	if ports < 1 {
		ports = 1
	}
	for i := range c.mem {
		c.mem[i] = des.NewResource(ports)
	}
	for y := 0; y < MeshRows; y++ {
		for x := 0; x < MeshCols; x++ {
			if x+1 < MeshCols {
				c.links[linkKey{x, y, 'E'}] = des.NewResource(1)
				c.links[linkKey{x + 1, y, 'W'}] = des.NewResource(1)
			}
			if y+1 < MeshRows {
				c.links[linkKey{x, y, 'N'}] = des.NewResource(1)
				c.links[linkKey{x, y + 1, 'S'}] = des.NewResource(1)
			}
		}
	}
	return c
}

// MarkUsed declares that a workload maps a stage onto the core. Used cores
// determine which voltage islands are powered up in the power model.
func (c *Chip) MarkUsed(core CoreID) {
	if !core.Valid() {
		panic(fmt.Sprintf("scc: invalid core %d", core))
	}
	c.used[core] = true
}

// Used reports whether the core has a stage mapped onto it.
func (c *Chip) Used(core CoreID) bool { return c.used[core] }

// UsedCount reports the number of cores with stages mapped onto them.
func (c *Chip) UsedCount() int {
	n := 0
	for _, u := range c.used {
		if u {
			n++
		}
	}
	return n
}

// SetFreq sets the frequency of the tile containing the core (the SCC
// changes frequency per tile, so the core's pair mate changes too).
func (c *Chip) SetFreq(core CoreID, f FreqLevel) {
	t := core.Tile()
	c.freq[2*t] = f
	c.freq[2*t+1] = f
}

// Freq returns the core's current frequency level.
func (c *Chip) Freq(core CoreID) FreqLevel { return c.freq[core] }

// IslandVoltage returns the supply voltage of island i. Islands hosting no
// used core stay at the chip's 1.1 V default; islands with used cores run
// at the maximum minimum voltage any used core's frequency demands (so a
// fully downclocked island drops to 0.7 V, and one 800 MHz core raises its
// whole island to 1.3 V — the paper's Fig. 18 constraint).
func (c *Chip) IslandVoltage(i int) float64 {
	if !c.islandPowered(i) {
		return 1.1
	}
	v := 0.7
	for core := CoreID(0); core < NumCores; core++ {
		if core.Island() != i || !c.used[core] {
			continue
		}
		if mv := c.freq[core].MinV; mv > v {
			v = mv
		}
	}
	return v
}

// islandPowered reports whether island i hosts at least one used core.
func (c *Chip) islandPowered(i int) bool {
	for core := CoreID(0); core < NumCores; core++ {
		if core.Island() == i && c.used[core] {
			return true
		}
	}
	return false
}

// Compute advances the process by cycles at the core's current frequency and
// records the busy interval for the power model.
func (c *Chip) Compute(p *des.Proc, core CoreID, cycles float64) {
	if cycles <= 0 {
		return
	}
	start := p.Now()
	d := cycles / c.freq[core].Hz
	p.Wait(d)
	c.busyLog[core] = append(c.busyLog[core], Interval{start, start + d})
}

// ComputeSeconds advances the process by a wall-time amount *as measured at
// the 533 MHz reference frequency*, scaled to the core's actual frequency.
// It is a convenience for stage cost models expressed in reference seconds.
func (c *Chip) ComputeSeconds(p *des.Proc, core CoreID, refSeconds float64) {
	c.Compute(p, core, refSeconds*Freq533.Hz)
}

// BusyLog returns the recorded compute intervals of a core.
func (c *Chip) BusyLog(core CoreID) []Interval { return c.busyLog[core] }

// BusySeconds sums a core's recorded compute time.
func (c *Chip) BusySeconds(core CoreID) float64 {
	total := 0.0
	for _, iv := range c.busyLog[core] {
		total += iv.End - iv.Start
	}
	return total
}
