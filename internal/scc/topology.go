// Package scc models Intel's Single-Chip-Cloud (SCC) research processor as a
// discrete-event simulation substrate: 48 P54C cores arranged pairwise on 24
// tiles in a 6×4 mesh, four DDR3 memory controllers on the mesh edges, no
// per-core local memory (all traffic crosses the mesh into one of the four
// controllers), per-tile frequency and per-island voltage control, and a
// calibrated chip power model.
//
// The model is intentionally at message/stage granularity rather than
// cycle-accurate: it reproduces where the paper's time and watts go (stage
// compute, mesh transit, memory-controller queueing, volts×frequency), which
// is the level at which the paper reasons.
package scc

import "fmt"

// Chip geometry constants for the SCC.
const (
	MeshCols  = 6 // tiles per row
	MeshRows  = 4 // tile rows
	NumTiles  = MeshCols * MeshRows
	NumCores  = 2 * NumTiles // 48
	NumMemCtl = 4

	// IslandCols×IslandRows tiles form one voltage island (8 cores).
	IslandTileCols = 2
	IslandTileRows = 2
	NumIslands     = (MeshCols / IslandTileCols) * (MeshRows / IslandTileRows) // 6

	// CacheLine is the P54C cache line size in bytes.
	CacheLine = 32
	// L1Size and L2Size are per-core cache capacities in bytes.
	L1Size = 16 * 1024
	L2Size = 256 * 1024
	// CacheWays is the associativity of both caches.
	CacheWays = 4
)

// CoreID identifies one of the 48 cores (0..47).
type CoreID int

// TileID identifies one of the 24 tiles (0..23).
type TileID int

// Valid reports whether the core ID is in range.
func (c CoreID) Valid() bool { return c >= 0 && c < NumCores }

// Tile returns the tile hosting the core. Cores are paired per tile in ID
// order: cores 2t and 2t+1 live on tile t.
func (c CoreID) Tile() TileID { return TileID(c / 2) }

// TileXY returns the mesh coordinates of a tile; x grows along the row
// (0..5), y selects the row (0..3). Tiles are numbered row-major.
func (t TileID) XY() (x, y int) { return int(t) % MeshCols, int(t) / MeshCols }

// TileAt returns the tile at mesh coordinates (x, y).
func TileAt(x, y int) TileID {
	if x < 0 || x >= MeshCols || y < 0 || y >= MeshRows {
		panic(fmt.Sprintf("scc: tile (%d,%d) out of range", x, y))
	}
	return TileID(y*MeshCols + x)
}

// XY returns the mesh coordinates of the router serving this core's tile.
func (c CoreID) XY() (x, y int) { return c.Tile().XY() }

// Island returns the voltage island (0..5) containing the core. Islands are
// 2×2-tile blocks, numbered row-major over the 3×2 island grid.
func (c CoreID) Island() int {
	x, y := c.XY()
	return (y/IslandTileRows)*(MeshCols/IslandTileCols) + x/IslandTileCols
}

// MemCtlID identifies one of the four memory controllers.
type MemCtlID int

// memCtlRouter gives the mesh coordinates of each controller's attachment
// router. On the SCC the controllers sit on the left and right mesh edges of
// rows 0 and 2.
var memCtlRouter = [NumMemCtl][2]int{
	{0, 0},                           // MC0: lower-left
	{MeshCols - 1, 0},                // MC1: lower-right
	{0, MeshRows - 1 - 1},            // MC2: upper-left (row 2)
	{MeshCols - 1, MeshRows - 1 - 1}, // MC3: upper-right (row 2)
}

// Router returns the mesh coordinates of the controller's attachment point.
func (m MemCtlID) Router() (x, y int) { return memCtlRouter[m][0], memCtlRouter[m][1] }

// HomeMemCtl returns the memory controller holding this core's private
// memory partition. The SCC maps each core to the controller of its
// quadrant: left/right half of the mesh × lower/upper half.
func (c CoreID) HomeMemCtl() MemCtlID {
	x, y := c.XY()
	m := MemCtlID(0)
	if x >= MeshCols/2 {
		m++
	}
	if y >= MeshRows/2 {
		m += 2
	}
	return m
}

// Hops returns the XY-routed hop count between two routers: the Manhattan
// distance. A self-route is 0 hops.
func Hops(x0, y0, x1, y1 int) int {
	return abs(x1-x0) + abs(y1-y0)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// FreqLevel is an allowed core frequency with its minimum supply voltage.
type FreqLevel struct {
	Hz    float64
	MinV  float64
	Label string
}

// The frequency levels the paper uses. The SCC supports more steps; these
// three are the ones exercised in the evaluation.
var (
	Freq400 = FreqLevel{Hz: 400e6, MinV: 0.7, Label: "400MHz"}
	Freq533 = FreqLevel{Hz: 533e6, MinV: 1.1, Label: "533MHz"}
	Freq800 = FreqLevel{Hz: 800e6, MinV: 1.3, Label: "800MHz"}
)

// FreqLevels lists the supported levels in ascending order.
var FreqLevels = []FreqLevel{Freq400, Freq533, Freq800}
