package scc

// The power model. Calibrated against the paper's reported figures:
//
//   - whole chip idle ≈ 22 W with every island at the 1.1 V default (§II);
//   - ≈50 W with 27 cores in use, ≈58 W with 42 (§VI-B, Fig. 14), rising
//     linearly with the number of pipelines and independent of their
//     arrangement — used cores spin-poll between messages, so they draw
//     close to full dynamic power whether computing or waiting;
//   - +4–5 W when one 8-core voltage island is raised to 1.3 V for a
//     blur stage at 800 MHz (§VI-D, Fig. 17);
//   - ≈1 W *below* the uniform-frequency baseline when the post-blur
//     stages drop to 400 MHz / 0.7 V (§VI-D).
//
// Chip power in a sampling window is
//
//	P = PowerIdle                                   (includes 1.1 V leakage)
//	  + PowerAppBase                                (if any core is used)
//	  + Σ_islands 8·PowerLeakCoef·(V⁴ − 1.1⁴)       (voltage deviations only)
//	  + Σ_used-cores PowerDynCoef·f·V²·activity
//
// where activity = busyFrac + PowerSpinFactor·(1 − busyFrac): a used core
// is either computing or spinning on its receive flag. Frequencies and
// island voltages are assumed constant over a run, matching the paper's
// experiments (frequencies are set before the walkthrough starts).

// PowerSample is one point of a chip power trace.
type PowerSample struct {
	T     float64 // window start time, seconds
	Watts float64 // average power over the window
}

// StaticPower returns the busy-independent part of chip power for the
// current used-core set and frequency plan (excluding spin power, which
// PowerTrace adds per used core).
func (c *Chip) StaticPower() float64 {
	p := c.Cfg.PowerIdle
	if c.UsedCount() > 0 {
		p += c.Cfg.PowerAppBase
	}
	const vDefault4 = 1.1 * 1.1 * 1.1 * 1.1
	for i := 0; i < NumIslands; i++ {
		v := c.IslandVoltage(i)
		p += 8 * c.Cfg.PowerLeakCoef * (v*v*v*v - vDefault4)
	}
	return p
}

// corePowerBusy returns the dynamic power a core draws while computing.
func (c *Chip) corePowerBusy(core CoreID) float64 {
	v := c.IslandVoltage(core.Island())
	return c.Cfg.PowerDynCoef * c.freq[core].Hz * v * v
}

// busyIn returns the busy seconds of a core inside [a, b), resuming the
// sweep from *idx (per-core interval logs are time ordered).
func busyIn(log []Interval, a, b float64, idx *int) float64 {
	total := 0.0
	i := *idx
	for i < len(log) && log[i].End <= a {
		i++
	}
	*idx = i
	for ; i < len(log) && log[i].Start < b; i++ {
		lo, hi := log[i].Start, log[i].End
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// PowerTrace samples average chip power over [t0, t1) in windows of dt
// seconds, from the recorded busy logs.
func (c *Chip) PowerTrace(t0, t1, dt float64) []PowerSample {
	if dt <= 0 || t1 <= t0 {
		return nil
	}
	static := c.StaticPower()
	spin := c.Cfg.PowerSpinFactor
	var dynPerCore [NumCores]float64
	var idx [NumCores]int
	for core := CoreID(0); core < NumCores; core++ {
		if c.used[core] {
			dynPerCore[core] = c.corePowerBusy(core)
		}
	}
	var out []PowerSample
	for a := t0; a < t1; a += dt {
		b := a + dt
		if b > t1 {
			b = t1
		}
		w := static
		for core := CoreID(0); core < NumCores; core++ {
			if !c.used[core] {
				continue
			}
			frac := busyIn(c.busyLog[core], a, b, &idx[core]) / (b - a)
			w += dynPerCore[core] * (frac + spin*(1-frac))
		}
		out = append(out, PowerSample{T: a, Watts: w})
	}
	return out
}

// Energy integrates chip power over [t0, t1) and returns joules.
func (c *Chip) Energy(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	elapsed := t1 - t0
	j := c.StaticPower() * elapsed
	spin := c.Cfg.PowerSpinFactor
	for core := CoreID(0); core < NumCores; core++ {
		if !c.used[core] {
			continue
		}
		idx := 0
		busy := busyIn(c.busyLog[core], t0, t1, &idx)
		j += c.corePowerBusy(core) * (busy + spin*(elapsed-busy))
	}
	return j
}
