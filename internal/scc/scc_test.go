package scc

import (
	"math"
	"testing"
	"testing/quick"

	"sccpipe/internal/des"
)

func TestTopologyConstants(t *testing.T) {
	if NumCores != 48 || NumTiles != 24 || NumIslands != 6 {
		t.Fatalf("geometry: cores=%d tiles=%d islands=%d", NumCores, NumTiles, NumIslands)
	}
}

func TestCoreTilePairing(t *testing.T) {
	for c := CoreID(0); c < NumCores; c++ {
		if got := c.Tile(); got != TileID(int(c)/2) {
			t.Fatalf("core %d tile = %d", c, got)
		}
	}
	if CoreID(0).Tile() != CoreID(1).Tile() {
		t.Fatal("cores 0 and 1 must share a tile")
	}
	if CoreID(1).Tile() == CoreID(2).Tile() {
		t.Fatal("cores 1 and 2 must not share a tile")
	}
}

func TestTileXYRoundTrip(t *testing.T) {
	for tile := TileID(0); tile < NumTiles; tile++ {
		x, y := tile.XY()
		if TileAt(x, y) != tile {
			t.Fatalf("tile %d -> (%d,%d) -> %d", tile, x, y, TileAt(x, y))
		}
	}
}

func TestIslandGeometry(t *testing.T) {
	// Each island must contain exactly 8 cores.
	var count [NumIslands]int
	for c := CoreID(0); c < NumCores; c++ {
		i := c.Island()
		if i < 0 || i >= NumIslands {
			t.Fatalf("core %d island %d out of range", c, i)
		}
		count[i]++
	}
	for i, n := range count {
		if n != 8 {
			t.Fatalf("island %d has %d cores, want 8", i, n)
		}
	}
	// Cores of one tile share an island.
	for c := CoreID(0); c < NumCores; c += 2 {
		if c.Island() != (c + 1).Island() {
			t.Fatalf("tile mates %d,%d in different islands", c, c+1)
		}
	}
}

func TestHomeMemCtlQuadrants(t *testing.T) {
	var count [NumMemCtl]int
	for c := CoreID(0); c < NumCores; c++ {
		count[c.HomeMemCtl()]++
	}
	for m, n := range count {
		if n != NumCores/NumMemCtl {
			t.Fatalf("controller %d serves %d cores, want %d", m, n, NumCores/NumMemCtl)
		}
	}
	// Spot checks: corner cores map to their corner controllers.
	if CoreID(0).HomeMemCtl() != 0 { // tile (0,0)
		t.Fatal("core 0 should home to MC0")
	}
	c := CoreID(2 * TileAt(MeshCols-1, MeshRows-1))
	if c.HomeMemCtl() != 3 {
		t.Fatalf("top-right core homes to %d, want 3", c.HomeMemCtl())
	}
}

func TestQuickHopsIsManhattan(t *testing.T) {
	f := func(a, b uint8) bool {
		x0, y0 := int(a)%MeshCols, int(a/8)%MeshRows
		x1, y1 := int(b)%MeshCols, int(b/8)%MeshRows
		want := abs(x1-x0) + abs(y1-y0)
		return Hops(x0, y0, x1, y1) == want && Hops(x1, y1, x0, y0) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testChip(cfg Config) (*des.Engine, *Chip) {
	eng := des.NewEngine()
	return eng, New(eng, cfg)
}

// plainConfig has round numbers for exact timing arithmetic in tests.
func plainConfig() Config {
	cfg := DefaultConfig()
	cfg.LinkBandwidth = 1e9
	cfg.MeshHopLatency = 1e-6
	cfg.MemBandwidth = 1e6
	cfg.MemLatency = 0
	cfg.MaxTransfer = 0
	cfg.MemPorts = 1 // expose controller queueing directly
	return cfg
}

func TestRoutePathLength(t *testing.T) {
	_, chip := testChip(DefaultConfig())
	for y0 := 0; y0 < MeshRows; y0++ {
		for x0 := 0; x0 < MeshCols; x0++ {
			for y1 := 0; y1 < MeshRows; y1++ {
				for x1 := 0; x1 < MeshCols; x1++ {
					got := len(chip.route(x0, y0, x1, y1))
					if got != Hops(x0, y0, x1, y1) {
						t.Fatalf("route (%d,%d)->(%d,%d) = %d links, want %d",
							x0, y0, x1, y1, got, Hops(x0, y0, x1, y1))
					}
				}
			}
		}
	}
}

func TestMemReadLocalController(t *testing.T) {
	eng, chip := testChip(plainConfig())
	// Core 0's router hosts MC0: zero mesh hops, pure controller service.
	var done float64
	eng.Spawn("r", func(p *des.Proc) {
		chip.MemRead(p, 0, 1_000_000)
		done = p.Now()
	})
	eng.Run()
	if !near(done, 1.0, 1e-9) {
		t.Fatalf("read completed at %g, want 1.0", done)
	}
}

func TestMemReadAcrossMesh(t *testing.T) {
	eng, chip := testChip(plainConfig())
	core := CoreID(2 * TileAt(2, 1)) // 3 hops to MC0
	if core.HomeMemCtl() != 0 {
		t.Fatalf("test core homes to MC%d", core.HomeMemCtl())
	}
	var done float64
	eng.Spawn("r", func(p *des.Proc) {
		chip.MemRead(p, core, 1000)
		done = p.Now()
	})
	eng.Run()
	// Per link: 1000/1e9 + 1e-6 = 2e-6, three links store-and-forward,
	// then 1000/1e6 = 1e-3 controller service.
	want := 3*2e-6 + 1e-3
	if !near(done, want, 1e-12) {
		t.Fatalf("done = %g, want %g", done, want)
	}
}

func TestMemControllerContention(t *testing.T) {
	eng, chip := testChip(plainConfig())
	// Two cores sharing MC0 issue 1 MB reads simultaneously: FIFO service
	// means the second finishes ~2 s in.
	var done []float64
	for _, core := range []CoreID{0, 2} {
		core := core
		eng.Spawn("r", func(p *des.Proc) {
			chip.MemRead(p, core, 1_000_000)
			done = append(done, p.Now())
		})
	}
	eng.Run()
	if len(done) != 2 {
		t.Fatal("missing completions")
	}
	if done[1] < 1.9 {
		t.Fatalf("second reader finished at %g; controller contention missing", done[1])
	}
}

func TestChunkingInterleavesContention(t *testing.T) {
	cfg := plainConfig()
	cfg.MaxTransfer = 1000
	eng, chip := testChip(cfg)
	// With chunking, two equal readers finish at nearly the same time
	// (fair interleave) rather than strictly serialized.
	var done []float64
	for _, core := range []CoreID{0, 2} {
		core := core
		eng.Spawn("r", func(p *des.Proc) {
			chip.MemRead(p, core, 100_000)
			done = append(done, p.Now())
		})
	}
	eng.Run()
	gap := math.Abs(done[0] - done[1])
	if gap > 0.005 {
		t.Fatalf("chunked readers finished %g apart; expected interleaving", gap)
	}
}

func TestMemWriteRemoteTargetsReceiverPartition(t *testing.T) {
	eng, chip := testChip(plainConfig())
	src := CoreID(0)                                  // homes to MC0
	dst := CoreID(2 * TileAt(MeshCols-1, MeshRows-1)) // homes to MC3
	eng.Spawn("w", func(p *des.Proc) {
		chip.MemWriteRemote(p, src, dst, 1000)
	})
	eng.Run()
	if chip.MemBytes[3] != 1000 {
		t.Fatalf("MC3 serviced %d bytes, want 1000", chip.MemBytes[3])
	}
	if chip.MemBytes[0] != 0 {
		t.Fatalf("MC0 serviced %d bytes, want 0", chip.MemBytes[0])
	}
}

func TestComputeScalesWithFrequency(t *testing.T) {
	eng, chip := testChip(DefaultConfig())
	var t533, t800 float64
	eng.Spawn("a", func(p *des.Proc) {
		chip.Compute(p, 0, 533e6) // one reference second of cycles
		t533 = p.Now()
	})
	chip.SetFreq(4, Freq800)
	eng.Spawn("b", func(p *des.Proc) {
		chip.Compute(p, 4, 533e6)
		t800 = p.Now()
	})
	eng.Run()
	if !near(t533, 1.0, 1e-9) {
		t.Fatalf("533 MHz compute took %g, want 1.0", t533)
	}
	if !near(t800, 533.0/800.0, 1e-9) {
		t.Fatalf("800 MHz compute took %g, want %g", t800, 533.0/800.0)
	}
}

func TestComputeSecondsReference(t *testing.T) {
	eng, chip := testChip(DefaultConfig())
	chip.SetFreq(0, Freq400)
	eng.Spawn("a", func(p *des.Proc) {
		chip.ComputeSeconds(p, 0, 1.0)
	})
	eng.Run()
	want := 533.0 / 400.0
	if !near(eng.Now(), want, 1e-9) {
		t.Fatalf("reference second at 400 MHz took %g, want %g", eng.Now(), want)
	}
}

func TestSetFreqAffectsTilePair(t *testing.T) {
	_, chip := testChip(DefaultConfig())
	chip.SetFreq(10, Freq800)
	if chip.Freq(10) != Freq800 || chip.Freq(11) != Freq800 {
		t.Fatal("tile mate frequency not updated")
	}
	if chip.Freq(12) != Freq533 {
		t.Fatal("neighbouring tile frequency changed")
	}
}

func TestIslandVoltageFollowsUsedCores(t *testing.T) {
	_, chip := testChip(DefaultConfig())
	// Islands without used cores stay at the chip's 1.1 V default.
	if v := chip.IslandVoltage(0); v != 1.1 {
		t.Fatalf("unused island voltage %g, want 1.1 (default)", v)
	}
	chip.MarkUsed(0)
	if v := chip.IslandVoltage(0); v != 1.1 {
		t.Fatalf("used island at 533 MHz: voltage %g, want 1.1", v)
	}
	chip.SetFreq(0, Freq800)
	if v := chip.IslandVoltage(0); v != 1.3 {
		t.Fatalf("used island at 800 MHz: voltage %g, want 1.3", v)
	}
	// Dropping the used core to 400 releases the island to the floor.
	chip.SetFreq(0, Freq400)
	if v := chip.IslandVoltage(0); v != 0.7 {
		t.Fatalf("used island at 400 MHz: voltage %g, want 0.7", v)
	}
}

func TestBusyLogAccounting(t *testing.T) {
	eng, chip := testChip(DefaultConfig())
	eng.Spawn("a", func(p *des.Proc) {
		chip.ComputeSeconds(p, 0, 0.5)
		p.Wait(1)
		chip.ComputeSeconds(p, 0, 0.25)
	})
	eng.Run()
	if got := chip.BusySeconds(0); !near(got, 0.75, 1e-9) {
		t.Fatalf("busy seconds = %g, want 0.75", got)
	}
	if n := len(chip.BusyLog(0)); n != 2 {
		t.Fatalf("busy intervals = %d, want 2", n)
	}
}

func TestPowerIdleCalibration(t *testing.T) {
	_, chip := testChip(DefaultConfig())
	if got := chip.StaticPower(); !near(got, 22.0, 1e-9) {
		t.Fatalf("idle chip power = %g, want 22", got)
	}
}

func TestPowerActiveCoresCalibration(t *testing.T) {
	// The paper reports ≈50 W with 27 active cores and ≈58 W with 42
	// (§VI-B). The calibrated model must land near those.
	for _, tc := range []struct {
		cores  int
		lo, hi float64
	}{
		{7, 33, 42},
		{27, 46, 56},
		{42, 54, 67},
	} {
		eng, chip := testChip(DefaultConfig())
		for i := 0; i < tc.cores; i++ {
			core := CoreID(i)
			chip.MarkUsed(core)
			eng.Spawn("busy", func(p *des.Proc) {
				chip.ComputeSeconds(p, core, 10)
			})
		}
		eng.Run()
		tr := chip.PowerTrace(0, 10, 1)
		if len(tr) != 10 {
			t.Fatalf("trace length %d", len(tr))
		}
		w := tr[5].Watts
		if w < tc.lo || w > tc.hi {
			t.Errorf("%d busy cores: %g W, want in [%g, %g]", tc.cores, w, tc.lo, tc.hi)
		}
	}
}

func TestPowerFastBlurIslandDelta(t *testing.T) {
	// Raising one used island to 1.3 V must add roughly 4–5 W (§VI-D).
	run := func(fast bool) float64 {
		eng, chip := testChip(DefaultConfig())
		for i := 0; i < 7; i++ {
			core := CoreID(i)
			chip.MarkUsed(core)
			eng.Spawn("busy", func(p *des.Proc) { chip.ComputeSeconds(p, core, 10) })
		}
		// A blur core in its own island.
		blur := CoreID(2 * TileAt(4, 0)) // island 2
		chip.MarkUsed(blur)
		if fast {
			chip.SetFreq(blur, Freq800)
		}
		eng.Spawn("blur", func(p *des.Proc) { chip.ComputeSeconds(p, blur, 10) })
		eng.Run()
		return chip.PowerTrace(0, 10, 10)[0].Watts
	}
	delta := run(true) - run(false)
	if delta < 2.5 || delta > 6.5 {
		t.Fatalf("fast-blur island power delta = %g W, want ≈4–5", delta)
	}
}

func TestEnergyMatchesTraceIntegral(t *testing.T) {
	eng, chip := testChip(DefaultConfig())
	for i := 0; i < 5; i++ {
		core := CoreID(i)
		chip.MarkUsed(core)
		eng.Spawn("busy", func(p *des.Proc) {
			p.Wait(float64(i))
			chip.ComputeSeconds(p, core, 3)
		})
	}
	eng.Run()
	tr := chip.PowerTrace(0, 10, 0.5)
	sum := 0.0
	for _, s := range tr {
		sum += s.Watts * 0.5
	}
	if e := chip.Energy(0, 10); !near(e, sum, 1e-6*sum) {
		t.Fatalf("Energy = %g, trace integral = %g", e, sum)
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := NewCache(1024, 2, 32)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) || !c.Access(31) {
		t.Fatal("warm access within line missed")
	}
	if c.Access(32) {
		t.Fatal("adjacent line hit while cold")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(4*32, 4, 32) // one set, 4 ways
	if c.Sets() != 1 {
		t.Fatalf("sets = %d", c.Sets())
	}
	for i := 0; i < 4; i++ {
		c.Access(uint64(i * 32))
	}
	c.Access(0)      // make line 0 MRU
	c.Access(4 * 32) // evicts LRU = line 1
	if !c.Access(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Access(1 * 32) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestCacheAccessRange(t *testing.T) {
	c := NewCache(L2Size, CacheWays, CacheLine)
	if m := c.AccessRange(0, 1024); m != 1024/CacheLine {
		t.Fatalf("cold range misses = %d, want %d", m, 1024/CacheLine)
	}
	if m := c.AccessRange(0, 1024); m != 0 {
		t.Fatalf("warm range misses = %d, want 0", m)
	}
	c.Flush()
	if m := c.AccessRange(0, CacheLine); m != 1 {
		t.Fatalf("post-flush misses = %d, want 1", m)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy()
	if lvl := h.Access(0); lvl != 0 {
		t.Fatalf("cold access level %d, want 0 (memory)", lvl)
	}
	if lvl := h.Access(0); lvl != 1 {
		t.Fatalf("warm access level %d, want 1 (L1)", lvl)
	}
	// Stream enough to evict from L1 but not L2, then re-touch address 0.
	for a := uint64(CacheLine); a < 8*L1Size; a += CacheLine {
		h.Access(a)
	}
	if lvl := h.Access(0); lvl != 2 {
		t.Fatalf("L2 re-access level %d, want 2", lvl)
	}
}

// Property: hit count never exceeds total accesses minus distinct lines.
func TestQuickCacheHitBound(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := NewCache(512, 2, 32)
		distinct := map[uint64]bool{}
		for _, a := range addrs {
			c.Access(uint64(a))
			distinct[uint64(a)/32] = true
		}
		total := c.Hits + c.Misses
		return total == int64(len(addrs)) &&
			c.Misses >= int64(len(distinct)) &&
			c.Hits <= int64(len(addrs)-len(distinct))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fully-associative-sized working set swept repeatedly has a
// perfect hit rate after the first pass.
func TestQuickCacheResidentWorkingSet(t *testing.T) {
	f := func(seed uint8) bool {
		c := NewCache(2048, 4, 32)
		lines := int(seed%32) + 1 // ≤ 32 lines; 2048/32 = 64 lines capacity
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < lines; i++ {
				c.Access(uint64(i * 32))
			}
		}
		return c.Misses == int64(lines)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMissBytes(t *testing.T) {
	if got := StreamMissBytes(L2Size/2, 3); got != L2Size/2 {
		t.Fatalf("resident set: %d", got)
	}
	if got := StreamMissBytes(2*L2Size, 3); got != 6*L2Size {
		t.Fatalf("streaming set: %d", got)
	}
	if got := StreamMissBytes(0, 3); got != 0 {
		t.Fatalf("empty set: %d", got)
	}
}

func near(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol
}
