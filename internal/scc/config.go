package scc

// Config holds the chip model parameters. The defaults are calibrated so
// that the paper's measured aggregates are reproduced (see EXPERIMENTS.md):
// the absolute values of individual constants are less meaningful than the
// totals they produce.
type Config struct {
	// DefaultFreq is the core frequency level applied at reset.
	DefaultFreq FreqLevel

	// MeshHopLatency is the router-to-router forwarding latency per hop in
	// seconds (a few mesh cycles at 800 MHz plus wire time).
	MeshHopLatency float64

	// LinkBandwidth is the usable bandwidth of one directed mesh link in
	// bytes/second. The SCC mesh is wide (16 B/cycle at 800 MHz); links are
	// essentially never the bottleneck, matching the paper's finding that
	// arrangements do not matter.
	LinkBandwidth float64

	// MemBandwidth is the effective service bandwidth of one memory
	// controller for a single P54C-generated stream, in bytes/second.
	// P54C cores issue narrow, blocking bus transactions, so per-stream
	// effective bandwidth is far below the DDR3 peak; this constant is the
	// main communication calibration knob.
	MemBandwidth float64

	// MemPorts is the number of concurrent streams one controller can
	// service at MemBandwidth each before queueing: per-stream bandwidth
	// is latency-bound, so a controller overlaps several streams via DDR
	// bank parallelism up to this limit.
	MemPorts int

	// MemLatency is the fixed per-request latency at a controller, seconds.
	MemLatency float64

	// MsgOverhead is the fixed software cost of one RCCE-style message
	// (marshalling, flag handshake), in seconds, charged to the sender.
	MsgOverhead float64

	// MaxTransfer caps a single modelled memory/mesh transaction in bytes;
	// larger transfers are split, letting contention interleave. It mirrors
	// the paper's observation that large frames must be sent as multiple
	// sub-images due to buffer sizes.
	MaxTransfer int

	// LocalMemory enables the hypothetical chip the paper's conclusion
	// asks for: a per-core local memory bank (as on the Cell's SPEs).
	// Messages then travel core-to-core across the mesh into the
	// receiver's local store, bypassing the memory controllers entirely,
	// and receivers find their data locally. Used for the "what if"
	// ablation; the real SCC has no such banks.
	LocalMemory bool

	// MPBSize is the per-tile message-passing buffer capacity in bytes
	// (8 KiB per tile on the real SCC, i.e. 4 KiB per core under RCCE).
	// Messages that fit travel core-to-core through the MPB over the mesh
	// alone; larger payloads — every image strip — must take the memory
	// path, exactly the regime the paper analyses.
	MPBSize int

	// StripePartitions maps each core's private partition across all four
	// memory controllers (round-robin by chunk) instead of its quadrant
	// controller — a LUT remapping the real SCC allowed. Ablation knob:
	// it removes quadrant hotspots at the cost of longer average routes.
	StripePartitions bool

	// Power model (see power.go):
	PowerIdle     float64 // whole chip idle, W (all islands at the 1.1 V default)
	PowerAppBase  float64 // extra uncore power while a workload is mapped, W
	PowerLeakCoef float64 // per-core island leak coefficient: Δleak = c·(V⁴ − 1.1⁴)
	PowerDynCoef  float64 // per used core: dyn = k·f·V²
	// PowerSpinFactor is the activity of a used core while it waits for a
	// message: RCCE receivers spin-poll, so waiting cores burn nearly full
	// dynamic power — the reason the paper measures power that is linear
	// in the number of pipelines and independent of arrangement.
	PowerSpinFactor float64
}

// DefaultConfig returns the calibrated configuration used for all paper
// reproduction experiments.
func DefaultConfig() Config {
	return Config{
		DefaultFreq:     Freq533,
		MeshHopLatency:  50e-9, // ~4 mesh cycles + router occupancy
		LinkBandwidth:   1.6e9, // 16 B/cycle × 800 MHz, derated ×0.125
		MemBandwidth:    45e6,  // effective per-stream bytes/s (calibrated)
		MemPorts:        4,
		MemLatency:      0.5e-6, // controller + DDR access
		MsgOverhead:     120e-6, // RCCE software handshake per message
		MaxTransfer:     64 * 1024,
		MPBSize:         4 * 1024,
		PowerIdle:       22.0,
		PowerAppBase:    9.0,
		PowerLeakCoef:   0.33,
		PowerDynCoef:    0.78 / (533e6 * 1.1 * 1.1),
		PowerSpinFactor: 0.85,
	}
}
