package scc

import "sccpipe/internal/des"

// route returns the sequence of directed links of the XY route from router
// (x0,y0) to (x1,y1): X dimension first, then Y, as the SCC routers do.
func (c *Chip) route(x0, y0, x1, y1 int) []*des.Resource {
	var path []*des.Resource
	x, y := x0, y0
	for x != x1 {
		if x < x1 {
			path = append(path, c.links[linkKey{x, y, 'E'}])
			x++
		} else {
			path = append(path, c.links[linkKey{x, y, 'W'}])
			x--
		}
	}
	for y != y1 {
		if y < y1 {
			path = append(path, c.links[linkKey{x, y, 'N'}])
			y++
		} else {
			path = append(path, c.links[linkKey{x, y, 'S'}])
			y--
		}
	}
	return path
}

// transferDone books a store-and-forward transfer of the given size along a
// router path and returns its completion time. Transfers larger than
// Cfg.MaxTransfer are split into chunks so that concurrent traffic can
// interleave on shared links. The call does not block; the caller decides
// whether to wait for completion.
func (c *Chip) transferDone(start float64, x0, y0, x1, y1 int, bytes int) float64 {
	c.MsgCount++
	path := c.route(x0, y0, x1, y1)
	if len(path) == 0 {
		return start
	}
	done := start
	remaining := bytes
	chunkStart := start
	for remaining > 0 {
		n := remaining
		if c.Cfg.MaxTransfer > 0 && n > c.Cfg.MaxTransfer {
			n = c.Cfg.MaxTransfer
		}
		remaining -= n
		ser := float64(n)/c.Cfg.LinkBandwidth + c.Cfg.MeshHopLatency
		t := chunkStart
		for _, link := range path {
			t = link.ReserveAt(t, ser)
		}
		done = t
		// The next chunk can enter the first link as soon as this chunk
		// has left it (pipelining across chunks).
		chunkStart += ser
	}
	return done
}

// memAccess blocks the process for a memory access of the given size by a
// core against a controller: mesh transit between the core's router and the
// controller's router plus FIFO controller service. Accesses larger than
// Cfg.MaxTransfer proceed in chunks and the core waits for each chunk before
// issuing the next — P54C bus transactions are blocking — so concurrent
// streams at one controller interleave fairly at chunk granularity.
//
// With Cfg.StripePartitions the chunks round-robin over all four
// controllers (LUT-striped partitions) instead of hitting mc alone.
func (c *Chip) memAccess(p *des.Proc, core CoreID, mc MemCtlID, bytes int) {
	cx, cy := core.XY()
	remaining := bytes
	chunkNo := 0
	for remaining > 0 {
		n := remaining
		if c.Cfg.MaxTransfer > 0 && n > c.Cfg.MaxTransfer {
			n = c.Cfg.MaxTransfer
		}
		remaining -= n
		target := mc
		if c.Cfg.StripePartitions {
			target = MemCtlID((int(mc) + chunkNo) % NumMemCtl)
		}
		chunkNo++
		c.MemBytes[target] += int64(n)
		mx, my := target.Router()
		// Mesh transit for the chunk (data direction modelled only; the
		// request message is folded into MemLatency).
		arrive := c.transferDone(p.Now(), cx, cy, mx, my, n)
		// Controller service.
		svc := float64(n)/c.Cfg.MemBandwidth + c.Cfg.MemLatency
		p.WaitUntil(c.mem[target].ReserveAt(arrive, svc))
	}
}

// MemRead blocks the process for a read of the given size from the core's
// own private memory partition.
func (c *Chip) MemRead(p *des.Proc, core CoreID, bytes int) {
	if bytes <= 0 {
		return
	}
	c.memAccess(p, core, core.HomeMemCtl(), bytes)
}

// MemWrite blocks the process for a write of the given size to the core's
// own private memory partition.
func (c *Chip) MemWrite(p *des.Proc, core CoreID, bytes int) {
	if bytes <= 0 {
		return
	}
	c.memAccess(p, core, core.HomeMemCtl(), bytes)
}

// MemWriteRemote blocks the sending process for a write into the partition
// of another core — the SCC's only way to hand data to a neighbour, since
// cores have no local memory. The receiver must still MemRead the data out
// of its partition before using it (the "double hop" the paper identifies).
func (c *Chip) MemWriteRemote(p *des.Proc, src, dstPartition CoreID, bytes int) {
	if bytes <= 0 {
		return
	}
	c.memAccess(p, src, dstPartition.HomeMemCtl(), bytes)
}

// CoreToCore blocks the sending process for a direct mesh transfer into the
// receiving core's *local memory bank* — only available on the hypothetical
// LocalMemory chip (the Cell-style design the paper's conclusion argues
// for). No memory controller is involved.
func (c *Chip) CoreToCore(p *des.Proc, src, dst CoreID, bytes int) {
	if bytes <= 0 {
		return
	}
	sx, sy := src.XY()
	dx, dy := dst.XY()
	p.WaitUntil(c.transferDone(p.Now(), sx, sy, dx, dy, bytes))
}

// MemUtilization reports the busy fraction of each controller over elapsed
// seconds.
func (c *Chip) MemUtilization(elapsed float64) [NumMemCtl]float64 {
	var out [NumMemCtl]float64
	for i, r := range c.mem {
		out[i] = r.Utilization(elapsed)
	}
	return out
}
