// Package pipe generalizes the paper's macro-pipeline pattern beyond image
// processing: users define a linear chain of named stages with real worker
// functions and/or simulation cost descriptions, replicate it into k
// parallel pipelines over partitioned work items, and either execute it
// with goroutines (Run) or evaluate it on the simulated SCC (Simulate).
//
// This is the "other applications" claim of the paper's abstract made
// concrete — see examples/compress for a data-compression chain.
//
// Errors and cancellation: neither Run nor Simulate panics on bad input or
// a failing stage. A panic in user code (Feed, Fn, CostRef, Collect) is
// recovered and returned as an error, RunContext aborts promptly when its
// context is cancelled, and a simulation that stalls with unconsumed work
// returns an error naming the stuck stages instead of silently
// undercounting.
package pipe

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sccpipe/internal/des"
	"sccpipe/internal/faults"
	"sccpipe/internal/rcce"
	"sccpipe/internal/scc"
)

// Item is one unit of work flowing through a pipeline.
type Item struct {
	// Seq is the item's position in its pipeline's stream.
	Seq int
	// Pipeline identifies which parallel pipeline carries the item.
	Pipeline int
	// Data is the payload the stage functions transform.
	Data any
	// Bytes is the payload size the simulation charges for hand-offs;
	// stages may change it (e.g. compression shrinks it).
	Bytes int
}

// Stage describes one macro-pipeline stage.
type Stage struct {
	// Name labels the stage in results.
	Name string
	// Fn transforms an item's payload when executing for real. It must
	// update and return the item (value semantics keep stages honest).
	Fn func(Item) Item
	// CostRef estimates the stage's 533 MHz-reference compute seconds for
	// an item when simulating; nil derives a cost from measured wall time
	// of Fn via Calibrate.
	CostRef func(Item) float64
	// ExtraBytes is stage-private memory traffic per item beyond the
	// receive and send of the payload (scratch buffers etc.).
	ExtraBytes func(Item) int

	// Fusable marks a stage that may be merged with adjacent fusable
	// stages at plan time: a maximal run of fusable stages executes as ONE
	// planned stage (one goroutine, or one simulated core) that applies
	// the constituent Fns back to back, eliminating the hand-offs between
	// them. Mark a stage fusable only if its Fn has no ordering
	// requirement beyond "after the previous stage on the same item" —
	// which every pure per-item transform satisfies. Chain.NoFuse opts a
	// whole run out.
	Fusable bool
	// Covers lists the original stage names this stage stands in for, for
	// fault-injection purposes: supervised runs consult the injector's
	// stage and transfer rules for every covered name, so a rule naming a
	// stage that was fused away still fires. Nil means the stage covers
	// only its own Name. Plan-time fusion fills it in automatically;
	// callers set it when they hand the chain an already-fused stage.
	Covers []string
}

// covers returns the stage's covered names (Covers, or its own Name).
func (s *Stage) covers() []string {
	if len(s.Covers) > 0 {
		return s.Covers
	}
	return []string{s.Name}
}

// Chain is a linear macro pipeline replicated into parallel instances.
type Chain struct {
	Stages []Stage
	// Feed produces item Seq for a pipeline, or false to end the stream.
	// It must be safe for concurrent calls with distinct pipeline indices.
	Feed func(pipeline, seq int) (Item, bool)
	// Collect consumes finished items (any order across pipelines, in
	// order within one). May be nil.
	Collect func(Item)
	// ItemBytes is the chain-level default payload size, stamped onto any
	// item whose Feed left Bytes zero. Both Run and Simulate apply it, so
	// real and simulated executions of one chain see the same payloads
	// (Simulate lets SimSpec.ItemBytes override it per run).
	ItemBytes int

	// Faults injects failures into Run/RunContext for chaos testing, and
	// Recovery tunes the supervision that makes them survivable (retries
	// with backoff, stall detection, pipeline-death redistribution).
	// Setting either selects the supervised execution path; with both nil
	// the original fast path runs unchanged.
	//
	// Supervised runs relax two contracts in exchange for survival: items
	// of one stream may reach Collect out of order after a redistribution,
	// and stage Fns must treat Item.Data as an immutable input (returning
	// new payloads rather than mutating in place), because a failed item
	// is redone from its as-fed snapshot.
	Faults   faults.Injector
	Recovery *faults.RecoveryPolicy

	// NoFuse disables plan-time fusion of adjacent Fusable stages, keeping
	// the paper-faithful one-core-per-stage arrangement (every hand-off
	// paid) even when stages are marked fusable. Ignored when Groups is
	// set.
	NoFuse bool

	// Groups, when non-nil, replaces the automatic maximal-fusion plan
	// with an explicit grouping — the lowered form of a computed stage
	// plan (see internal/plan). Each inner slice lists indices into
	// Stages forming one planned stage; indices must be contiguous,
	// ascending, and cover every stage exactly once, and a multi-stage
	// group may only contain Fusable stages.
	Groups [][]int
}

// plannedStage is one stage of the execution plan: a single chain stage,
// or a fused run of adjacent Fusable stages executed back to back on one
// core/goroutine.
type plannedStage struct {
	name    string
	parts   []Stage  // constituents in chain order; len 1 = unfused
	covered []string // all covered names, for fault injection
}

// plan resolves the execution plan. An explicit Groups override is
// lowered directly; otherwise maximal runs of adjacent Fusable stages
// become single planned stages (unless Chain.NoFuse), everything else
// one-to-one. Run, Simulate and the supervised path all execute the plan,
// so fused and unfused arrangements differ only in hand-offs, never in
// per-item work.
func (c *Chain) plan() []plannedStage {
	if c.Groups != nil {
		plan := make([]plannedStage, 0, len(c.Groups))
		for _, g := range c.Groups {
			p := plannedStage{}
			for i, si := range g {
				st := c.Stages[si]
				p.parts = append(p.parts, st)
				p.covered = append(p.covered, st.covers()...)
				if i == 0 {
					p.name = st.Name
				} else {
					p.name += "+" + st.Name
				}
			}
			plan = append(plan, p)
		}
		return plan
	}
	plan := make([]plannedStage, 0, len(c.Stages))
	for _, st := range c.Stages {
		if n := len(plan); !c.NoFuse && st.Fusable && n > 0 && plan[n-1].parts[len(plan[n-1].parts)-1].Fusable {
			p := &plan[n-1]
			p.parts = append(p.parts, st)
			p.name += "+" + st.Name
			p.covered = append(p.covered, st.covers()...)
			continue
		}
		plan = append(plan, plannedStage{
			name:    st.Name,
			parts:   []Stage{st},
			covered: append([]string(nil), st.covers()...),
		})
	}
	return plan
}

// Validate reports whether the chain is runnable.
func (c *Chain) Validate() error {
	if len(c.Stages) == 0 {
		return fmt.Errorf("pipe: chain has no stages")
	}
	if c.Feed == nil {
		return fmt.Errorf("pipe: chain has no feed")
	}
	for i, s := range c.Stages {
		if s.Name == "" {
			return fmt.Errorf("pipe: stage %d unnamed", i)
		}
	}
	if c.Groups != nil {
		next := 0
		for gi, g := range c.Groups {
			if len(g) == 0 {
				return fmt.Errorf("pipe: plan group %d is empty", gi)
			}
			for _, si := range g {
				if si != next || si >= len(c.Stages) {
					return fmt.Errorf("pipe: plan group %d: stage index %d out of order (want %d of %d; groups must cover the chain contiguously)", gi, si, next, len(c.Stages))
				}
				if len(g) > 1 && !c.Stages[si].Fusable {
					return fmt.Errorf("pipe: plan group %d fuses non-fusable stage %q", gi, c.Stages[si].Name)
				}
				next++
			}
		}
		if next != len(c.Stages) {
			return fmt.Errorf("pipe: plan groups cover %d of %d stages", next, len(c.Stages))
		}
	}
	return nil
}

// RunResult reports a real execution.
type RunResult struct {
	Items   int
	Elapsed time.Duration
	// Degraded is non-nil only when a supervised run survived pipeline
	// deaths: it names the dead pipelines and counts retries and
	// redispatched items. Runs that recovered purely by retrying transient
	// failures (no deaths), and unsupervised runs, leave it nil; per-stage
	// retry activity is observable via RecoveryPolicy.OnEvent.
	Degraded *faults.Degraded
}

// sendItem writes to ch unless the run is cancelled first.
func sendItem(ctx context.Context, ch chan<- Item, it Item) error {
	select {
	case ch <- it:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// recvItem reads from ch unless the run is cancelled first; ok is false on
// a cleanly closed stream.
func recvItem(ctx context.Context, ch <-chan Item) (it Item, ok bool, err error) {
	select {
	case it, ok = <-ch:
		return it, ok, nil
	case <-ctx.Done():
		return Item{}, false, ctx.Err()
	}
}

// Run executes the chain for real with k parallel pipelines, each stage a
// goroutine connected by capacity-1 channels (the SCC structure).
func (c *Chain) Run(k int) (RunResult, error) {
	return c.RunContext(context.Background(), k)
}

// RunContext is Run with cancellation: when ctx is cancelled the stage
// goroutines stop promptly and RunContext returns ctx's error. A panic in
// Feed, a stage Fn, or Collect is recovered and returned as an error; no
// goroutines are leaked on any path.
//
// When Chain.Faults or Chain.Recovery is set, the run is supervised: see
// runSupervised for the fault/recovery semantics.
func (c *Chain) RunContext(ctx context.Context, k int) (RunResult, error) {
	if err := c.Validate(); err != nil {
		return RunResult{}, err
	}
	if k < 1 {
		return RunResult{}, fmt.Errorf("pipe: need at least one pipeline")
	}
	if c.Faults != nil || c.Recovery != nil {
		return c.runSupervised(ctx, k)
	}
	start := time.Now()
	plan := c.plan()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	spawn := func(name string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("pipe: %s panicked: %v", name, r))
				}
			}()
			if err := fn(); err != nil {
				fail(err)
			}
		}()
	}

	var collectMu sync.Mutex
	total := 0
	for pl := 0; pl < k; pl++ {
		pl := pl
		head := make(chan Item, 1)
		spawn(fmt.Sprintf("feed %d", pl), func() error {
			for seq := 0; ; seq++ {
				item, ok := c.Feed(pl, seq)
				if !ok {
					close(head)
					return nil
				}
				item.Seq, item.Pipeline = seq, pl
				if item.Bytes == 0 {
					item.Bytes = c.ItemBytes
				}
				if err := sendItem(ctx, head, item); err != nil {
					return err
				}
			}
		})
		in := head
		for _, ps := range plan {
			ps := ps
			out := make(chan Item, 1)
			src := in
			spawn(fmt.Sprintf("stage %s.%d", ps.name, pl), func() error {
				for {
					item, ok, err := recvItem(ctx, src)
					if err != nil {
						return err
					}
					if !ok {
						close(out)
						return nil
					}
					for _, st := range ps.parts {
						if st.Fn != nil {
							item = st.Fn(item)
						}
					}
					if err := sendItem(ctx, out, item); err != nil {
						return err
					}
				}
			})
			in = out
		}
		tail := in
		spawn(fmt.Sprintf("collect %d", pl), func() error {
			for {
				item, ok, err := recvItem(ctx, tail)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				// Unlock via defer so a panicking Collect cannot wedge the
				// other pipelines' collectors.
				func() {
					collectMu.Lock()
					defer collectMu.Unlock()
					if c.Collect != nil {
						c.Collect(item)
					}
					total++
				}()
			}
		})
	}
	wg.Wait()
	if firstErr != nil {
		return RunResult{}, firstErr
	}
	return RunResult{Items: total, Elapsed: time.Since(start)}, nil
}

// Calibrate measures each stage's mean wall time over the given sample
// items and installs CostRef functions scaled by the ratio of a P54C at
// 533 MHz to this machine (speedRatio, e.g. 40 for a modern laptop core).
// Stages with explicit CostRef are left alone.
func (c *Chain) Calibrate(samples []Item, speedRatio float64) error {
	if len(samples) == 0 || speedRatio <= 0 {
		return fmt.Errorf("pipe: calibration needs samples and a positive ratio")
	}
	for i := range c.Stages {
		st := &c.Stages[i]
		if st.CostRef != nil || st.Fn == nil {
			continue
		}
		items := append([]Item(nil), samples...)
		t0 := time.Now()
		for j := range items {
			items[j] = st.Fn(items[j])
		}
		mean := time.Since(t0).Seconds() / float64(len(items))
		cost := mean * speedRatio
		st.CostRef = func(Item) float64 { return cost }
		// Feed the transformed samples to the next stage's measurement.
		samples = items
	}
	return nil
}

// SimResult reports a simulated execution on the SCC model.
type SimResult struct {
	Seconds float64
	// Items counts the items that actually reached the sink, summed over
	// pipelines; it is less than Pipelines×SimSpec.Items when Feed ended a
	// stream early.
	Items int
	// StageBusy is each stage's total busy (compute+memory) seconds,
	// summed over pipelines. Fused runs are attributed per constituent
	// stage name, so fused and unfused runs of one chain are comparable.
	StageBusy map[string]float64
	// CoresUsed counts the SCC cores occupied. Fused runs of adjacent
	// stages share one core, so fusion shrinks it.
	CoresUsed int
	EnergyJ   float64
	// HandoffBytes is the total payload traffic through the memory system
	// for stage-to-stage hand-offs (end-of-stream markers excluded). This
	// is the quantity stage fusion exists to cut: a fused run pays one
	// hand-off where the unfused chain pays one per constituent.
	HandoffBytes int64
}

// SimSpec configures a simulated run of a chain.
type SimSpec struct {
	Pipelines int
	// Items is the stream length per pipeline; Feed may end a stream
	// earlier, which propagates through the stages as an end-of-stream
	// marker rather than stalling them.
	Items int
	// ItemBytes sizes each item's payload for hand-off costs; used when
	// Bytes is not set per item by Feed (falls back to Chain.ItemBytes).
	ItemBytes int
	// FeedCostRef is the source's per-item reference compute (the chain's
	// producer, e.g. reading input); 0 for an instant source.
	FeedCostRef float64
	// ChipConfig overrides the chip model.
	ChipConfig *scc.Config
	// Injector injects faults into the simulated stages (nil = none).
	// Delays and retried transient errors are charged as simulated time;
	// an injected stall or core death parks the stage process forever,
	// which Simulate reports as a quiesce error naming the stuck stage
	// and the injected reason.
	Injector faults.Injector
}

// Simulated recovery constants: transient faults are retried up to
// simMaxRetries times, each retry charging an exponentially growing
// backoff starting at simRetryBackoff seconds of simulated time.
const (
	simMaxRetries   = 3
	simRetryBackoff = 100e-6
)

// simInject runs the injector protocol for one stage application (or
// hand-off, when transfer is true) inside a simulated process. It returns
// normally on a clean pass and parks the process forever — surfacing as a
// named quiesce — on a stall, core death, or exhausted retry budget.
func simInject(p *des.Proc, inj faults.Injector, transfer bool, pl int, stage string, seq int) {
	if inj == nil {
		return
	}
	if inj.Dead(pl, seq) {
		p.Stall(fmt.Sprintf("injected core death at item %d", seq))
	}
	backoff := simRetryBackoff
	for attempt := 0; ; attempt++ {
		var o faults.Outcome
		if transfer {
			o = inj.Transfer(pl, stage, seq, attempt)
		} else {
			o = inj.Stage(pl, stage, seq, attempt)
		}
		if o.Stall {
			p.Stall(fmt.Sprintf("injected stall on item %d", seq))
		}
		if o.Delay > 0 {
			p.Wait(o.Delay.Seconds())
		}
		if o.Err == nil {
			return
		}
		if attempt+1 > simMaxRetries {
			p.Stall(fmt.Sprintf("retries exhausted on item %d: %v", seq, o.Err))
		}
		p.Wait(backoff)
		backoff *= 2
	}
}

// endOfStream is the sentinel payload the source emits when Feed ends a
// stream; each stage forwards it and terminates, so short streams drain
// cleanly instead of parking every downstream stage forever.
type endOfStream struct{}

// eosBytes is the wire size charged for the end-of-stream marker: a
// one-flit control message on the MPB fast path.
const eosBytes = 4

// Simulate runs the chain's cost model on the simulated SCC: a source core
// feeds each pipeline, stages occupy one core each in ID order, and items
// hop between cores through the memory system exactly like the paper's
// strips. Stage CostRef functions must be set (directly or via Calibrate).
//
// A panic in user code (Feed, Fn, CostRef, ExtraBytes, Collect) is
// recovered and returned as an error, and a simulation that quiesces with
// unconsumed work in flight (a stalled or deadlocked pipeline) returns an
// error naming the parked stages.
func (c *Chain) Simulate(spec SimSpec) (SimResult, error) {
	if err := c.Validate(); err != nil {
		return SimResult{}, err
	}
	if spec.Pipelines < 1 || spec.Items < 1 {
		return SimResult{}, fmt.Errorf("pipe: bad sim spec %+v", spec)
	}
	for _, st := range c.Stages {
		if st.CostRef == nil {
			return SimResult{}, fmt.Errorf("pipe: stage %q has no cost model (run Calibrate)", st.Name)
		}
	}
	plan := c.plan()
	needed := spec.Pipelines*(len(plan)+1) + 1
	if needed > scc.NumCores {
		return SimResult{}, fmt.Errorf("pipe: %d cores needed, chip has %d", needed, scc.NumCores)
	}
	itemBytes := spec.ItemBytes
	if itemBytes == 0 {
		itemBytes = c.ItemBytes
	}

	eng := des.NewEngine()
	cfg := scc.DefaultConfig()
	if spec.ChipConfig != nil {
		cfg = *spec.ChipConfig
	}
	chip := scc.New(eng, cfg)
	comm := rcce.NewComm(chip, 1)

	busy := make(map[string]float64, len(c.Stages))
	collected := 0
	var handoff int64
	var busyMu sync.Mutex // procs run one at a time, but keep vet happy

	next := scc.CoreID(0)
	take := func() scc.CoreID { id := next; next++; chip.MarkUsed(id); return id }
	sink := take()
	for pl := 0; pl < spec.Pipelines; pl++ {
		pl := pl
		src := take()
		cores := make([]scc.CoreID, len(plan))
		for i := range cores {
			cores[i] = take()
		}
		// Source: stream items, then an end-of-stream marker.
		eng.Spawn(fmt.Sprintf("src%d", pl), func(p *des.Proc) {
			for seq := 0; seq < spec.Items; seq++ {
				item, ok := c.Feed(pl, seq)
				if !ok {
					break
				}
				item.Seq, item.Pipeline = seq, pl
				if item.Bytes == 0 {
					item.Bytes = itemBytes
				}
				if spec.FeedCostRef > 0 {
					chip.ComputeSeconds(p, src, spec.FeedCostRef)
				}
				busyMu.Lock()
				handoff += int64(item.Bytes)
				busyMu.Unlock()
				comm.Send(p, src, cores[0], item, item.Bytes)
			}
			comm.Send(p, src, cores[0], endOfStream{}, eosBytes)
		})
		// Planned stages: process until the end-of-stream marker arrives,
		// then forward it and terminate. A fused planned stage applies its
		// constituents back to back — one receive, one send — with each
		// constituent's compute, extra traffic, injected faults and busy
		// time accounted under its own name, so fused and unfused results
		// are directly comparable.
		for i, ps := range plan {
			i, ps := i, ps
			from := src
			if i > 0 {
				from = cores[i-1]
			}
			to := sink
			if i+1 < len(cores) {
				to = cores[i+1]
			}
			eng.Spawn(fmt.Sprintf("%s%d", ps.name, pl), func(p *des.Proc) {
				for {
					m, _ := comm.Recv(p, cores[i], from)
					if _, end := m.Payload.(endOfStream); end {
						comm.Send(p, cores[i], to, endOfStream{}, eosBytes)
						return
					}
					item := m.Payload.(Item)
					for _, st := range ps.parts {
						t0 := p.Now()
						for _, name := range st.covers() {
							simInject(p, spec.Injector, false, pl, name, item.Seq)
						}
						chip.ComputeSeconds(p, cores[i], st.CostRef(item))
						if st.ExtraBytes != nil {
							chip.MemRead(p, cores[i], st.ExtraBytes(item))
						}
						if st.Fn != nil {
							item = st.Fn(item) // propagate size changes
						}
						// The hand-off fault point of every covered stage
						// still fires, charged to the planned stage's single
						// outgoing send.
						for _, name := range st.covers() {
							simInject(p, spec.Injector, true, pl, name, item.Seq)
						}
						busyMu.Lock()
						busy[st.Name] += p.Now() - t0
						busyMu.Unlock()
					}
					busyMu.Lock()
					handoff += int64(item.Bytes)
					busyMu.Unlock()
					comm.Send(p, cores[i], to, item, item.Bytes)
				}
			})
		}
		// Per-pipeline drain into the shared sink core.
		last := cores[len(cores)-1]
		eng.Spawn(fmt.Sprintf("sink%d", pl), func(p *des.Proc) {
			for {
				m, _ := comm.Recv(p, sink, last)
				if _, end := m.Payload.(endOfStream); end {
					return
				}
				if c.Collect != nil {
					c.Collect(m.Payload.(Item))
				}
				busyMu.Lock()
				collected++
				busyMu.Unlock()
			}
		})
	}
	eng.Run()
	if err := eng.Err(); err != nil {
		return SimResult{}, fmt.Errorf("pipe: simulation failed: %w", err)
	}
	if eng.Quiesced() {
		return SimResult{}, fmt.Errorf("pipe: simulation quiesced with unconsumed work after %d of %d items (%s)",
			collected, spec.Pipelines*spec.Items, eng.QuiescedReport())
	}
	sec := eng.Now()
	return SimResult{
		Seconds:      sec,
		Items:        collected,
		StageBusy:    busy,
		CoresUsed:    chip.UsedCount(),
		EnergyJ:      chip.Energy(0, sec),
		HandoffBytes: handoff,
	}, nil
}
