// Package pipe generalizes the paper's macro-pipeline pattern beyond image
// processing: users define a linear chain of named stages with real worker
// functions and/or simulation cost descriptions, replicate it into k
// parallel pipelines over partitioned work items, and either execute it
// with goroutines (Run) or evaluate it on the simulated SCC (Simulate).
//
// This is the "other applications" claim of the paper's abstract made
// concrete — see examples/compress for a data-compression chain.
package pipe

import (
	"fmt"
	"sync"
	"time"

	"sccpipe/internal/des"
	"sccpipe/internal/rcce"
	"sccpipe/internal/scc"
)

// Item is one unit of work flowing through a pipeline.
type Item struct {
	// Seq is the item's position in its pipeline's stream.
	Seq int
	// Pipeline identifies which parallel pipeline carries the item.
	Pipeline int
	// Data is the payload the stage functions transform.
	Data any
	// Bytes is the payload size the simulation charges for hand-offs;
	// stages may change it (e.g. compression shrinks it).
	Bytes int
}

// Stage describes one macro-pipeline stage.
type Stage struct {
	// Name labels the stage in results.
	Name string
	// Fn transforms an item's payload when executing for real. It must
	// update and return the item (value semantics keep stages honest).
	Fn func(Item) Item
	// CostRef estimates the stage's 533 MHz-reference compute seconds for
	// an item when simulating; nil derives a cost from measured wall time
	// of Fn via Calibrate.
	CostRef func(Item) float64
	// ExtraBytes is stage-private memory traffic per item beyond the
	// receive and send of the payload (scratch buffers etc.).
	ExtraBytes func(Item) int
}

// Chain is a linear macro pipeline replicated into parallel instances.
type Chain struct {
	Stages []Stage
	// Feed produces item Seq for a pipeline, or false to end the stream.
	// It must be safe for concurrent calls with distinct pipeline indices.
	Feed func(pipeline, seq int) (Item, bool)
	// Collect consumes finished items (any order across pipelines, in
	// order within one). May be nil.
	Collect func(Item)
}

// Validate reports whether the chain is runnable.
func (c *Chain) Validate() error {
	if len(c.Stages) == 0 {
		return fmt.Errorf("pipe: chain has no stages")
	}
	if c.Feed == nil {
		return fmt.Errorf("pipe: chain has no feed")
	}
	for i, s := range c.Stages {
		if s.Name == "" {
			return fmt.Errorf("pipe: stage %d unnamed", i)
		}
	}
	return nil
}

// RunResult reports a real execution.
type RunResult struct {
	Items   int
	Elapsed time.Duration
}

// Run executes the chain for real with k parallel pipelines, each stage a
// goroutine connected by capacity-1 channels (the SCC structure).
func (c *Chain) Run(k int) (RunResult, error) {
	if err := c.Validate(); err != nil {
		return RunResult{}, err
	}
	if k < 1 {
		return RunResult{}, fmt.Errorf("pipe: need at least one pipeline")
	}
	start := time.Now()
	var collectMu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for pl := 0; pl < k; pl++ {
		pl := pl
		head := make(chan Item, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(head)
			for seq := 0; ; seq++ {
				item, ok := c.Feed(pl, seq)
				if !ok {
					return
				}
				item.Seq, item.Pipeline = seq, pl
				head <- item
			}
		}()
		in := head
		for _, st := range c.Stages {
			st := st
			out := make(chan Item, 1)
			src := in
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(out)
				for item := range src {
					if st.Fn != nil {
						item = st.Fn(item)
					}
					out <- item
				}
			}()
			in = out
		}
		tail := in
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range tail {
				collectMu.Lock()
				if c.Collect != nil {
					c.Collect(item)
				}
				total++
				collectMu.Unlock()
			}
		}()
	}
	wg.Wait()
	return RunResult{Items: total, Elapsed: time.Since(start)}, nil
}

// Calibrate measures each stage's mean wall time over the given sample
// items and installs CostRef functions scaled by the ratio of a P54C at
// 533 MHz to this machine (speedRatio, e.g. 40 for a modern laptop core).
// Stages with explicit CostRef are left alone.
func (c *Chain) Calibrate(samples []Item, speedRatio float64) error {
	if len(samples) == 0 || speedRatio <= 0 {
		return fmt.Errorf("pipe: calibration needs samples and a positive ratio")
	}
	for i := range c.Stages {
		st := &c.Stages[i]
		if st.CostRef != nil || st.Fn == nil {
			continue
		}
		items := append([]Item(nil), samples...)
		t0 := time.Now()
		for j := range items {
			items[j] = st.Fn(items[j])
		}
		mean := time.Since(t0).Seconds() / float64(len(items))
		cost := mean * speedRatio
		st.CostRef = func(Item) float64 { return cost }
		// Feed the transformed samples to the next stage's measurement.
		samples = items
	}
	return nil
}

// SimResult reports a simulated execution on the SCC model.
type SimResult struct {
	Seconds float64
	// StageBusy is each stage's total busy (compute+memory) seconds,
	// summed over pipelines.
	StageBusy map[string]float64
	// CoresUsed counts the SCC cores occupied.
	CoresUsed int
	EnergyJ   float64
}

// SimSpec configures a simulated run of a chain.
type SimSpec struct {
	Pipelines int
	// Items is the stream length per pipeline.
	Items int
	// ItemBytes sizes each item's payload for hand-off costs; used when
	// Bytes is not set per item by Feed.
	ItemBytes int
	// FeedCostRef is the source's per-item reference compute (the chain's
	// producer, e.g. reading input); 0 for an instant source.
	FeedCostRef float64
	// ChipConfig overrides the chip model.
	ChipConfig *scc.Config
}

// Simulate runs the chain's cost model on the simulated SCC: a source core
// feeds each pipeline, stages occupy one core each in ID order, and items
// hop between cores through the memory system exactly like the paper's
// strips. Stage CostRef functions must be set (directly or via Calibrate).
func (c *Chain) Simulate(spec SimSpec) (SimResult, error) {
	if err := c.Validate(); err != nil {
		return SimResult{}, err
	}
	if spec.Pipelines < 1 || spec.Items < 1 {
		return SimResult{}, fmt.Errorf("pipe: bad sim spec %+v", spec)
	}
	for _, st := range c.Stages {
		if st.CostRef == nil {
			return SimResult{}, fmt.Errorf("pipe: stage %q has no cost model (run Calibrate)", st.Name)
		}
	}
	needed := spec.Pipelines*(len(c.Stages)+1) + 1
	if needed > scc.NumCores {
		return SimResult{}, fmt.Errorf("pipe: %d cores needed, chip has %d", needed, scc.NumCores)
	}

	eng := des.NewEngine()
	cfg := scc.DefaultConfig()
	if spec.ChipConfig != nil {
		cfg = *spec.ChipConfig
	}
	chip := scc.New(eng, cfg)
	comm := rcce.NewComm(chip, 1)

	busy := make(map[string]float64, len(c.Stages))
	var busyMu sync.Mutex // procs run one at a time, but keep vet happy

	next := scc.CoreID(0)
	take := func() scc.CoreID { id := next; next++; chip.MarkUsed(id); return id }
	sink := take()
	for pl := 0; pl < spec.Pipelines; pl++ {
		pl := pl
		src := take()
		cores := make([]scc.CoreID, len(c.Stages))
		for i := range cores {
			cores[i] = take()
		}
		// Source.
		eng.Spawn(fmt.Sprintf("src%d", pl), func(p *des.Proc) {
			for seq := 0; seq < spec.Items; seq++ {
				item, ok := c.Feed(pl, seq)
				if !ok {
					break
				}
				item.Seq, item.Pipeline = seq, pl
				if item.Bytes == 0 {
					item.Bytes = spec.ItemBytes
				}
				if spec.FeedCostRef > 0 {
					chip.ComputeSeconds(p, src, spec.FeedCostRef)
				}
				comm.Send(p, src, cores[0], item, item.Bytes)
			}
		})
		// Stages.
		for i, st := range c.Stages {
			i, st := i, st
			from := src
			if i > 0 {
				from = cores[i-1]
			}
			to := sink
			if i+1 < len(cores) {
				to = cores[i+1]
			}
			eng.Spawn(fmt.Sprintf("%s%d", st.Name, pl), func(p *des.Proc) {
				for seq := 0; seq < spec.Items; seq++ {
					m, _ := comm.Recv(p, cores[i], from)
					item := m.Payload.(Item)
					t0 := p.Now()
					chip.ComputeSeconds(p, cores[i], st.CostRef(item))
					if st.ExtraBytes != nil {
						chip.MemRead(p, cores[i], st.ExtraBytes(item))
					}
					if st.Fn != nil {
						item = st.Fn(item) // propagate size changes
					}
					busyMu.Lock()
					busy[st.Name] += p.Now() - t0
					busyMu.Unlock()
					comm.Send(p, cores[i], to, item, item.Bytes)
				}
			})
		}
		// Per-pipeline drain into the shared sink core.
		last := cores[len(cores)-1]
		eng.Spawn(fmt.Sprintf("sink%d", pl), func(p *des.Proc) {
			for seq := 0; seq < spec.Items; seq++ {
				m, _ := comm.Recv(p, sink, last)
				if c.Collect != nil {
					c.Collect(m.Payload.(Item))
				}
			}
		})
	}
	eng.Run()
	sec := eng.Now()
	return SimResult{
		Seconds:   sec,
		StageBusy: busy,
		CoresUsed: chip.UsedCount(),
		EnergyJ:   chip.Energy(0, sec),
	}, nil
}
