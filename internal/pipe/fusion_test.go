package pipe

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sccpipe/internal/faults"
)

// fusionChain is a four-stage arithmetic chain whose middle run (double,
// inc) is fusable; head and tail are not. Every stage records nothing and
// transforms an int payload, so fused and unfused results are directly
// comparable.
func fusionChain(items, k int, out *sync.Map) *Chain {
	stage := func(name string, fusable bool, cost float64, fn func(int) int) Stage {
		return Stage{
			Name:    name,
			Fusable: fusable,
			Fn: func(it Item) Item {
				it.Data = fn(it.Data.(int))
				return it
			},
			CostRef: func(Item) float64 { return cost },
		}
	}
	// The unfusable head is the bottleneck, so fusing the middle run onto
	// one core never slows the steady state — it only removes hand-offs
	// (fusing stages that together exceed the bottleneck would trade
	// hand-off savings for a slower pipeline; that trade-off is the
	// experiment's to explore, not this chain's).
	return &Chain{
		Stages: []Stage{
			stage("head", false, 5e-3, func(v int) int { return v + 1000 }),
			stage("double", true, 0.5e-3, func(v int) int { return v * 2 }),
			stage("inc", true, 0.5e-3, func(v int) int { return v + 1 }),
			stage("tail", false, 0.5e-3, func(v int) int { return v * 10 }),
		},
		Feed: func(pl, seq int) (Item, bool) {
			if seq >= items {
				return Item{}, false
			}
			return Item{Data: pl*1000 + seq}, true
		},
		Collect: func(it Item) {
			out.Store(fmt.Sprintf("%d/%d", it.Pipeline, it.Seq), it.Data.(int))
		},
		ItemBytes: 4096,
	}
}

func TestPlanGroupsAdjacentFusableRuns(t *testing.T) {
	c := fusionChain(1, 1, &sync.Map{})
	plan := c.plan()
	var names []string
	for _, ps := range plan {
		names = append(names, ps.name)
	}
	if got, want := strings.Join(names, ","), "head,double+inc,tail"; got != want {
		t.Fatalf("plan = %s, want %s", got, want)
	}
	if got := plan[1].covered; len(got) != 2 || got[0] != "double" || got[1] != "inc" {
		t.Fatalf("fused stage covers %v, want [double inc]", got)
	}

	c.NoFuse = true
	if got := len(c.plan()); got != 4 {
		t.Fatalf("NoFuse plan has %d stages, want 4", got)
	}

	// A pre-fused stage handed to the chain keeps its own Covers.
	pre := &Chain{Stages: []Stage{{Name: "a+b", Covers: []string{"a", "b"}}}}
	if got := pre.plan()[0].covered; len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("pre-fused covers %v, want [a b]", got)
	}
}

// An explicit Groups plan overrides the Fusable auto-plan: the planner's
// lowered groupings drive the chain directly.
func TestExplicitGroupsPlan(t *testing.T) {
	planNames := func(groups [][]int) string {
		c := fusionChain(1, 1, &sync.Map{})
		c.Groups = groups
		if err := c.Validate(); err != nil {
			t.Fatalf("groups %v: %v", groups, err)
		}
		var names []string
		for _, ps := range c.plan() {
			names = append(names, ps.name)
		}
		return strings.Join(names, ",")
	}
	if got := planNames([][]int{{0}, {1, 2}, {3}}); got != "head,double+inc,tail" {
		t.Fatalf("plan = %s", got)
	}
	// Explicitly unfused despite Fusable flags — the boundary is the
	// plan's to place, not the auto-detector's.
	if got := planNames([][]int{{0}, {1}, {2}, {3}}); got != "head,double,inc,tail" {
		t.Fatalf("plan = %s", got)
	}

	for _, bad := range [][][]int{
		{{0}, {2, 1}, {3}},      // reordered
		{{0}, {1, 2}},           // misses tail
		{{0}, {1, 2}, {3}, {3}}, // duplicates
		{{0, 1}, {2}, {3}},      // fuses the non-fusable head
		{{0}, {}, {1, 2}, {3}},  // empty group
		{{0}, {1, 2}, {3}, {4}}, // out of range
	} {
		c := fusionChain(1, 1, &sync.Map{})
		c.Groups = bad
		if err := c.Validate(); err == nil {
			t.Errorf("groups %v unexpectedly valid", bad)
		}
	}

	// A grouped run collects exactly what the auto-fused run collects.
	const items, k = 12, 2
	var want, got sync.Map
	auto := fusionChain(items, k, &want)
	if _, err := auto.Run(k); err != nil {
		t.Fatal(err)
	}
	grouped := fusionChain(items, k, &got)
	grouped.Groups = [][]int{{0}, {1}, {2, 3}}
	if _, err := grouped.Run(k); err == nil {
		t.Fatal("fusing the non-fusable tail validated")
	}
	grouped = fusionChain(items, k, &got)
	grouped.Groups = [][]int{{0}, {1, 2}, {3}}
	if _, err := grouped.Run(k); err != nil {
		t.Fatal(err)
	}
	want.Range(func(key, v any) bool {
		if gv, ok := got.Load(key); !ok || gv != v {
			t.Fatalf("item %v = %v grouped, %v auto", key, gv, v)
		}
		return true
	})
}

// Fused and unfused runs must collect identical payloads (fast path and
// supervised path both).
func TestRunFusedMatchesUnfused(t *testing.T) {
	const items, k = 20, 3
	collect := func(noFuse, supervised bool) map[string]int {
		var out sync.Map
		c := fusionChain(items, k, &out)
		c.NoFuse = noFuse
		if supervised {
			c.Recovery = &faults.RecoveryPolicy{Backoff: time.Microsecond}
		}
		res, err := c.Run(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Items != items*k {
			t.Fatalf("collected %d items, want %d", res.Items, items*k)
		}
		m := map[string]int{}
		out.Range(func(k, v any) bool { m[k.(string)] = v.(int); return true })
		return m
	}
	want := collect(true, false)
	for _, mode := range []struct {
		name       string
		supervised bool
	}{{"fast", false}, {"supervised", true}} {
		got := collect(false, mode.supervised)
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", mode.name, len(got), len(want))
		}
		for id, v := range want {
			if got[id] != v {
				t.Fatalf("%s: item %s = %d fused, %d unfused", mode.name, id, got[id], v)
			}
		}
	}
}

// Fusion must cut the simulated hand-off traffic and core count while
// leaving per-constituent busy attribution comparable.
func TestSimulateFusionCutsHandoffs(t *testing.T) {
	sim := func(noFuse bool) SimResult {
		c := fusionChain(8, 2, &sync.Map{})
		c.NoFuse = noFuse
		res, err := c.Simulate(SimSpec{Pipelines: 2, Items: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unfused := sim(true)
	fused := sim(false)
	if fused.Items != unfused.Items {
		t.Fatalf("items differ: fused %d, unfused %d", fused.Items, unfused.Items)
	}
	// 5 hand-offs per item unfused (src + 4 stages), 4 fused.
	if wantU := int64(2 * 8 * 5 * 4096); unfused.HandoffBytes != wantU {
		t.Fatalf("unfused hand-off bytes = %d, want %d", unfused.HandoffBytes, wantU)
	}
	if wantF := int64(2 * 8 * 4 * 4096); fused.HandoffBytes != wantF {
		t.Fatalf("fused hand-off bytes = %d, want %d", fused.HandoffBytes, wantF)
	}
	if fused.CoresUsed >= unfused.CoresUsed {
		t.Fatalf("fusion did not shrink cores: %d vs %d", fused.CoresUsed, unfused.CoresUsed)
	}
	// Busy is attributed per constituent name in both runs.
	for _, name := range []string{"head", "double", "inc", "tail"} {
		if fused.StageBusy[name] <= 0 || unfused.StageBusy[name] <= 0 {
			t.Fatalf("stage %q busy missing: fused %v, unfused %v", name, fused.StageBusy[name], unfused.StageBusy[name])
		}
	}
	if fused.Seconds >= unfused.Seconds {
		t.Fatalf("fused pipeline not faster in sim: %.6f vs %.6f", fused.Seconds, unfused.Seconds)
	}
}

// A fault rule naming a fused-away stage still fires: stage-point
// transients on an interior constituent and transfer faults on the last
// one are retried, observed via OnEvent, and the results stay correct.
func TestSupervisedFusedStageHonoursCoveredFaults(t *testing.T) {
	const items, k = 10, 2
	var out sync.Map
	c := fusionChain(items, k, &out)
	c.Faults = faults.MustInjector(faults.Plan{Seed: 3, Rules: []faults.Rule{
		{Kind: faults.KindTransient, Pipeline: 0, Stage: "inc", Seq: 2, Times: 2},
		{Kind: faults.KindTransfer, Pipeline: 1, Stage: "double", Seq: 4, Times: 1},
	}})
	var mu sync.Mutex
	retriesByStage := map[string]int{}
	c.Recovery = &faults.RecoveryPolicy{
		Backoff: time.Microsecond,
		OnEvent: func(e faults.Event) {
			if e.Kind == faults.EventRetry {
				mu.Lock()
				retriesByStage[e.Stage]++
				mu.Unlock()
			}
		},
	}
	res, err := c.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != items*k {
		t.Fatalf("collected %d items, want %d", res.Items, items*k)
	}
	if res.Degraded != nil {
		t.Fatalf("retried transients must not degrade the run: %v", res.Degraded)
	}
	mu.Lock()
	defer mu.Unlock()
	if retriesByStage["inc"] != 2 {
		t.Errorf("inc (fused away) retries = %d, want 2", retriesByStage["inc"])
	}
	if retriesByStage["double"] != 1 {
		t.Errorf("double (fused away) transfer retries = %d, want 1", retriesByStage["double"])
	}
	// Payloads still correct: ((v+1000)*2+1)*10.
	var want sync.Map
	cu := fusionChain(items, k, &want)
	cu.NoFuse = true
	if _, err := cu.Run(k); err != nil {
		t.Fatal(err)
	}
	want.Range(func(id, v any) bool {
		got, ok := out.Load(id)
		if !ok || got != v {
			t.Fatalf("item %v = %v, want %v", id, got, v)
		}
		return true
	})
}

// A deterministic death aimed at a fused-away stage's pipeline still
// redistributes onto survivors.
func TestSupervisedFusedRunSurvivesDeath(t *testing.T) {
	const items, k = 12, 3
	var out sync.Map
	c := fusionChain(items, k, &out)
	c.Faults = faults.MustInjector(faults.Plan{Seed: 5, Rules: []faults.Rule{
		{Kind: faults.KindDeath, Pipeline: 1, Seq: 3},
	}})
	c.Recovery = &faults.RecoveryPolicy{Backoff: time.Microsecond}
	res, err := c.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != items*k {
		t.Fatalf("collected %d items, want %d", res.Items, items*k)
	}
	if res.Degraded == nil || len(res.Degraded.DeadPipelines) != 1 {
		t.Fatalf("degraded = %v, want one dead pipeline", res.Degraded)
	}
}
