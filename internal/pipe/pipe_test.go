package pipe

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"sccpipe/internal/codec"
	"sccpipe/internal/scc"
)

// testChain builds the compression chain over deterministic input blocks,
// striped over k pipelines.
func testChain(blocks, blockSize, k int, seed int64) (*Chain, *sync.Map) {
	inputs := make([][]byte, blocks)
	rng := rand.New(rand.NewSource(seed))
	for i := range inputs {
		// Smooth, run-rich data so the codecs actually transform it.
		b := make([]byte, blockSize)
		v := byte(0)
		for j := range b {
			if rng.Intn(8) == 0 {
				v += byte(rng.Intn(5))
			}
			b[j] = v
		}
		inputs[i] = b
	}
	var out sync.Map
	c := &Chain{
		Stages: []Stage{
			{Name: "delta", Fn: func(it Item) Item {
				it.Data = codec.DeltaEncode(it.Data.([]byte))
				it.Bytes = len(it.Data.([]byte))
				return it
			}},
			{Name: "rle", Fn: func(it Item) Item {
				it.Data = codec.RLEEncode(it.Data.([]byte))
				it.Bytes = len(it.Data.([]byte))
				return it
			}},
			{Name: "huffman", Fn: func(it Item) Item {
				it.Data = codec.HuffmanEncode(it.Data.([]byte))
				it.Bytes = len(it.Data.([]byte))
				return it
			}},
		},
		Feed: func(pl, seq int) (Item, bool) {
			idx := seq*k + pl // stripe blocks over pipelines
			if idx >= blocks {
				return Item{}, false
			}
			data := inputs[idx]
			return Item{Data: data, Bytes: len(data)}, true
		},
		Collect: func(it Item) {
			out.Store([2]int{it.Pipeline, it.Seq}, it.Data)
		},
	}
	return c, &out
}

func TestRunProcessesEverything(t *testing.T) {
	c, out := testChain(32, 2048, 4, 1)
	res, err := c.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != 32 {
		t.Fatalf("items = %d, want 32", res.Items)
	}
	count := 0
	out.Range(func(_, v any) bool {
		enc := v.([]byte)
		// Every output decodes back through the inverse chain.
		h, err := codec.HuffmanDecode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		r, err := codec.RLEDecode(h)
		if err != nil {
			t.Fatalf("rle decode: %v", err)
		}
		if len(codec.DeltaDecode(r)) != 2048 {
			t.Fatal("wrong decoded size")
		}
		count++
		return true
	})
	if count != 32 {
		t.Fatalf("collected %d items", count)
	}
}

func TestRunMatchesSequentialResults(t *testing.T) {
	// Parallel pipelines must produce the same encodings as k=1.
	c1, out1 := testChain(24, 1024, 1, 2)
	if _, err := c1.Run(1); err != nil {
		t.Fatal(err)
	}
	c4, out4 := testChain(24, 1024, 4, 2)
	if _, err := c4.Run(4); err != nil {
		t.Fatal(err)
	}
	// Compare by block content: striping differs with k, so compare the
	// multiset of encoded blocks.
	gather := func(m *sync.Map) [][]byte {
		var all [][]byte
		m.Range(func(_, v any) bool { all = append(all, v.([]byte)); return true })
		return all
	}
	a, b := gather(out1), gather(out4)
	if len(a) != len(b) {
		t.Fatalf("counts differ: %d vs %d", len(a), len(b))
	}
	match := 0
	for _, x := range a {
		for _, y := range b {
			if bytes.Equal(x, y) {
				match++
				break
			}
		}
	}
	if match != len(a) {
		t.Fatalf("only %d of %d blocks matched", match, len(a))
	}
}

func TestValidate(t *testing.T) {
	if err := (&Chain{}).Validate(); err == nil {
		t.Fatal("empty chain accepted")
	}
	if err := (&Chain{Stages: []Stage{{Name: "x"}}}).Validate(); err == nil {
		t.Fatal("chain without feed accepted")
	}
	if err := (&Chain{Stages: []Stage{{}}, Feed: func(int, int) (Item, bool) { return Item{}, false }}).Validate(); err == nil {
		t.Fatal("unnamed stage accepted")
	}
}

func TestCalibrateInstallsCosts(t *testing.T) {
	c, _ := testChain(8, 1024, 1, 3)
	samples := []Item{{Data: make([]byte, 1024), Bytes: 1024}}
	if err := c.Calibrate(samples, 40); err != nil {
		t.Fatal(err)
	}
	for _, st := range c.Stages {
		if st.CostRef == nil {
			t.Fatalf("stage %s has no cost after calibration", st.Name)
		}
		if cost := st.CostRef(samples[0]); cost < 0 {
			t.Fatalf("stage %s negative cost", st.Name)
		}
	}
}

func TestSimulateScalesWithPipelines(t *testing.T) {
	mk := func() *Chain {
		c, _ := testChain(1024, 4096, 1, 4)
		c.Collect = nil
		// Deterministic costs: avoid wall-clock calibration in tests.
		for i := range c.Stages {
			st := &c.Stages[i]
			switch st.Name {
			case "delta":
				st.CostRef = func(it Item) float64 { return 0.002 }
			case "rle":
				st.CostRef = func(it Item) float64 { return 0.003 }
			case "huffman":
				st.CostRef = func(it Item) float64 { return 0.012 }
			}
		}
		return c
	}
	// Fixed total work: Items is per pipeline, so split 200 items k ways.
	run := func(k int) SimResult {
		res, err := mk().Simulate(SimSpec{Pipelines: k, Items: 200 / k, ItemBytes: 4096})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	if four.Seconds >= one.Seconds {
		t.Fatalf("4 pipelines (%g) not faster than 1 (%g)", four.Seconds, one.Seconds)
	}
	// Huffman is the configured bottleneck: most busy time.
	if one.StageBusy["huffman"] <= one.StageBusy["delta"] {
		t.Fatalf("busy accounting wrong: %+v", one.StageBusy)
	}
	if one.CoresUsed != 1+1+3 {
		t.Fatalf("cores used = %d, want 5", one.CoresUsed)
	}
	if one.EnergyJ <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestSimulateRequiresCosts(t *testing.T) {
	c, _ := testChain(8, 512, 1, 5)
	if _, err := c.Simulate(SimSpec{Pipelines: 1, Items: 4, ItemBytes: 512}); err == nil {
		t.Fatal("simulation without cost model accepted")
	}
}

func TestSimulateRejectsOversize(t *testing.T) {
	c, _ := testChain(8, 512, 1, 6)
	for i := range c.Stages {
		c.Stages[i].CostRef = func(Item) float64 { return 0.001 }
	}
	if _, err := c.Simulate(SimSpec{Pipelines: 12, Items: 4, ItemBytes: 512}); err == nil {
		t.Fatal("48-core chip accepted 12×4+1 cores")
	}
}

func TestSimulateLocalMemoryHelpsHere(t *testing.T) {
	// The generic pipeline inherits the SCC's double hop; the local-memory
	// ablation must help it just as it helps the rendering pipeline.
	mk := func(cfg *scc.Config) float64 {
		c, _ := testChain(1024, 65536, 2, 7)
		c.Collect = nil
		for i := range c.Stages {
			c.Stages[i].CostRef = func(Item) float64 { return 0.001 }
		}
		res, err := c.Simulate(SimSpec{Pipelines: 2, Items: 60, ItemBytes: 65536, ChipConfig: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	base := mk(nil)
	cfg := scc.DefaultConfig()
	cfg.LocalMemory = true
	local := mk(&cfg)
	if local >= base {
		t.Fatalf("local memory did not help the generic chain: %g vs %g", local, base)
	}
}

func TestSimulateEarlyFeedEnd(t *testing.T) {
	// Feed ends every stream at 5 items though the spec asks for 50: the
	// end-of-stream marker must drain the stages cleanly and report the
	// true count instead of stalling or undercounting silently.
	c, _ := testChain(10, 512, 2, 11) // 10 blocks striped over 2 pipelines = 5 each
	for i := range c.Stages {
		c.Stages[i].CostRef = func(Item) float64 { return 0.001 }
	}
	res, err := c.Simulate(SimSpec{Pipelines: 2, Items: 50, ItemBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != 10 {
		t.Fatalf("Items = %d, want 10 (the true stream length)", res.Items)
	}
}

func TestSimulateCountsFullStreams(t *testing.T) {
	c, _ := testChain(12, 512, 3, 12)
	for i := range c.Stages {
		c.Stages[i].CostRef = func(Item) float64 { return 0.001 }
	}
	res, err := c.Simulate(SimSpec{Pipelines: 3, Items: 4, ItemBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != 12 {
		t.Fatalf("Items = %d, want 12", res.Items)
	}
}

func TestSimulateStagePanicIsError(t *testing.T) {
	c, _ := testChain(8, 512, 1, 13)
	for i := range c.Stages {
		c.Stages[i].CostRef = func(Item) float64 { return 0.001 }
	}
	c.Stages[1].Fn = func(Item) Item { panic("stage exploded") }
	_, err := c.Simulate(SimSpec{Pipelines: 1, Items: 8, ItemBytes: 512})
	if err == nil {
		t.Fatal("panicking stage did not surface as an error")
	}
	if !strings.Contains(err.Error(), "stage exploded") {
		t.Fatalf("error %v does not carry the panic value", err)
	}
}

func TestRunRecoversStagePanic(t *testing.T) {
	c, _ := testChain(8, 512, 2, 14)
	c.Stages[0].Fn = func(Item) Item { panic("worker crashed") }
	_, err := c.Run(2)
	if err == nil {
		t.Fatal("panicking stage Fn did not surface as an error")
	}
	if !strings.Contains(err.Error(), "worker crashed") {
		t.Fatalf("error %v does not carry the panic value", err)
	}
}

func TestRunRecoversCollectPanic(t *testing.T) {
	c, _ := testChain(8, 512, 2, 15)
	c.Collect = func(Item) { panic("collector crashed") }
	_, err := c.Run(2)
	if err == nil {
		t.Fatal("panicking Collect did not surface as an error")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var once sync.Once
	c := &Chain{
		Stages: []Stage{{Name: "slow", Fn: func(it Item) Item {
			once.Do(cancel) // cancel as soon as the first item is in flight
			<-release       // then hold the stage until the test lets go
			return it
		}}},
		Feed: func(pl, seq int) (Item, bool) { return Item{Data: seq}, true }, // endless
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.RunContext(ctx, 1)
		done <- err
	}()
	// The run can only finish because cancellation unblocked the feed and
	// collector; release the stage worker so its goroutine exits too.
	time.AfterFunc(50*time.Millisecond, func() { close(release) })
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
}

func TestRunStampsChainItemBytes(t *testing.T) {
	var mu sync.Mutex
	var got []int
	c := &Chain{
		ItemBytes: 4096,
		Stages:    []Stage{{Name: "id", Fn: func(it Item) Item { return it }}},
		Feed: func(pl, seq int) (Item, bool) {
			if seq >= 3 {
				return Item{}, false
			}
			return Item{Data: seq}, true // Bytes left zero
		},
		Collect: func(it Item) { mu.Lock(); got = append(got, it.Bytes); mu.Unlock() },
	}
	if _, err := c.Run(1); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 4096 {
			t.Fatalf("item bytes = %v, want all 4096", got)
		}
	}
	// Simulate sees the same default when the spec does not override it.
	c.Stages[0].CostRef = func(Item) float64 { return 0.001 }
	c.Collect = func(it Item) {
		if it.Bytes != 4096 {
			t.Fatalf("simulated item bytes = %d, want 4096", it.Bytes)
		}
	}
	if _, err := c.Simulate(SimSpec{Pipelines: 1, Items: 3}); err != nil {
		t.Fatal(err)
	}
}
