package pipe

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sccpipe/internal/faults"
)

// trackChain builds a trivial chain whose Collect counts deliveries per
// (origin, seq) so tests can assert exactly-once semantics.
func trackChain(itemsPerPipe int) (*Chain, *sync.Map) {
	var deliveries sync.Map // [2]int -> *int (delivery count)
	c := &Chain{
		Stages: []Stage{
			{Name: "double", Fn: func(it Item) Item { it.Data = it.Data.(int) * 2; return it }},
			{Name: "inc", Fn: func(it Item) Item { it.Data = it.Data.(int) + 1; return it }},
		},
		Feed: func(pl, seq int) (Item, bool) {
			if seq >= itemsPerPipe {
				return Item{}, false
			}
			return Item{Data: pl*1000 + seq, Bytes: 64}, true
		},
		Collect: func(it Item) {
			key := [2]int{it.Pipeline, it.Seq}
			v, _ := deliveries.LoadOrStore(key, new(int))
			*(v.(*int))++
			want := (it.Pipeline*1000+it.Seq)*2 + 1
			if it.Data.(int) != want {
				panic("wrong payload") // surfaces as a run error via recover
			}
		},
	}
	return c, &deliveries
}

func assertExactlyOnce(t *testing.T, deliveries *sync.Map, k, itemsPerPipe int) {
	t.Helper()
	got := 0
	deliveries.Range(func(key, v any) bool {
		got++
		if n := *(v.(*int)); n != 1 {
			t.Errorf("item %v delivered %d times", key, n)
		}
		return true
	})
	if got != k*itemsPerPipe {
		t.Errorf("delivered %d unique items, want %d", got, k*itemsPerPipe)
	}
}

// quickPolicy keeps test runtimes low.
func quickPolicy() *faults.RecoveryPolicy {
	return &faults.RecoveryPolicy{Backoff: time.Microsecond, MaxBackoff: 50 * time.Microsecond}
}

func TestSupervisedCleanRunMatchesFastPath(t *testing.T) {
	const k, n = 4, 25
	c, deliveries := trackChain(n)
	c.Recovery = quickPolicy() // supervised path, no faults configured
	res, err := c.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != k*n {
		t.Fatalf("items = %d, want %d", res.Items, k*n)
	}
	if res.Degraded != nil {
		t.Fatalf("clean run reported degraded: %v", res.Degraded)
	}
	assertExactlyOnce(t, deliveries, k, n)
}

func TestSupervisedSurvivesPipelineDeath(t *testing.T) {
	const k, n = 3, 40
	c, deliveries := trackChain(n)
	c.Faults = faults.MustInjector(faults.Plan{Seed: 11, Rules: []faults.Rule{
		{Kind: faults.KindDeath, Pipeline: 1, Seq: 5},
	}})
	c.Recovery = quickPolicy()
	var mu sync.Mutex
	var events []faults.Event
	c.Recovery.OnEvent = func(e faults.Event) { mu.Lock(); events = append(events, e); mu.Unlock() }

	res, err := c.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != k*n {
		t.Fatalf("items = %d, want %d (dead pipeline's work must be re-partitioned)", res.Items, k*n)
	}
	d := res.Degraded
	if !d.IsDegraded() {
		t.Fatal("run did not report degradation")
	}
	if len(d.DeadPipelines) != 1 || d.DeadPipelines[0] != 1 {
		t.Fatalf("dead pipelines = %v, want [1]", d.DeadPipelines)
	}
	if !strings.Contains(d.Reasons[1], "core death") {
		t.Errorf("reason = %q", d.Reasons[1])
	}
	assertExactlyOnce(t, deliveries, k, n)

	mu.Lock()
	defer mu.Unlock()
	sawDeath := false
	for _, e := range events {
		if e.Kind == faults.EventDeath && e.Pipeline == 1 {
			sawDeath = true
		}
	}
	if !sawDeath {
		t.Error("no death event observed")
	}
}

func TestSupervisedTransientRetriesRecover(t *testing.T) {
	const k, n = 2, 20
	c, deliveries := trackChain(n)
	c.Faults = faults.MustInjector(faults.Plan{Seed: 5, Rules: []faults.Rule{
		{Kind: faults.KindTransient, Pipeline: 0, Stage: "double", Seq: 7, Times: 2},
		{Kind: faults.KindTransfer, Pipeline: 1, Stage: "inc", Seq: 3, Times: 1},
	}})
	c.Recovery = quickPolicy()
	var retries int64
	var mu sync.Mutex
	c.Recovery.OnEvent = func(e faults.Event) {
		if e.Kind == faults.EventRetry {
			mu.Lock()
			retries++
			mu.Unlock()
		}
	}
	res, err := c.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != nil {
		t.Fatalf("recovered transients must not degrade the run: %v", res.Degraded)
	}
	if res.Items != k*n {
		t.Fatalf("items = %d, want %d", res.Items, k*n)
	}
	mu.Lock()
	if retries != 3 {
		t.Errorf("retry events = %d, want 3 (2 stage + 1 transfer)", retries)
	}
	mu.Unlock()
	assertExactlyOnce(t, deliveries, k, n)
}

func TestSupervisedStallEscalatesToDeath(t *testing.T) {
	const k, n = 2, 15
	c, deliveries := trackChain(n)
	c.Faults = faults.MustInjector(faults.Plan{Seed: 2, Rules: []faults.Rule{
		{Kind: faults.KindStall, Pipeline: 0, Stage: "inc", Seq: 4},
	}})
	c.Recovery = quickPolicy()
	// Generous deadline: the trivial stage work must never trip it, even
	// under the race detector's slowdown — only the injected stall does.
	c.Recovery.StallTimeout = 100 * time.Millisecond
	res, err := c.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Items != k*n {
		t.Fatalf("items = %d, want %d", res.Items, k*n)
	}
	d := res.Degraded
	if !d.IsDegraded() || len(d.DeadPipelines) != 1 || d.DeadPipelines[0] != 0 {
		t.Fatalf("degraded = %v, want pipeline 0 dead", d)
	}
	if !strings.Contains(d.Reasons[0], "stalled") {
		t.Errorf("reason = %q, want a stall", d.Reasons[0])
	}
	assertExactlyOnce(t, deliveries, k, n)
}

func TestSupervisedAllPipelinesDeadIsError(t *testing.T) {
	const k = 2
	c, _ := trackChain(10)
	c.Faults = faults.MustInjector(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindDeath, Pipeline: 0, Seq: 0},
		{Kind: faults.KindDeath, Pipeline: 1, Seq: 0},
	}})
	c.Recovery = quickPolicy()
	_, err := c.Run(k)
	if err == nil || !strings.Contains(err.Error(), "all 2 pipelines dead") {
		t.Fatalf("err = %v, want all-dead failure", err)
	}
}

func TestSupervisedRetryExhaustionKillsPipeline(t *testing.T) {
	const k, n = 2, 12
	c, deliveries := trackChain(n)
	c.Faults = faults.MustInjector(faults.Plan{Seed: 1, Rules: []faults.Rule{
		// Fails far more times than the retry budget allows.
		{Kind: faults.KindTransient, Pipeline: 1, Stage: "double", Seq: 2, Times: 1 << 20},
	}})
	pol := quickPolicy()
	pol.MaxRetries = 2
	c.Recovery = pol
	res, err := c.Run(k)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Degraded
	if !d.IsDegraded() || len(d.DeadPipelines) != 1 || d.DeadPipelines[0] != 1 {
		t.Fatalf("degraded = %v, want pipeline 1 dead", d)
	}
	if !strings.Contains(d.Reasons[1], "retries exhausted") {
		t.Errorf("reason = %q", d.Reasons[1])
	}
	if res.Items != k*n {
		t.Fatalf("items = %d, want %d", res.Items, k*n)
	}
	assertExactlyOnce(t, deliveries, k, n)
}

// simTestChain is a cost-only chain for simulation tests.
func simTestChain() *Chain {
	return &Chain{
		Stages: []Stage{
			{Name: "alpha", CostRef: func(Item) float64 { return 1e-3 }},
			{Name: "beta", CostRef: func(Item) float64 { return 1e-3 }},
		},
		Feed:      func(pl, seq int) (Item, bool) { return Item{Data: seq}, true },
		ItemBytes: 1024,
	}
}

func TestSimulateInjectedStallNamesStuckStage(t *testing.T) {
	c := simTestChain()
	inj := faults.MustInjector(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindStall, Pipeline: 0, Stage: "beta", Seq: 3},
	}})
	_, err := c.Simulate(SimSpec{Pipelines: 2, Items: 8, Injector: inj})
	if err == nil {
		t.Fatal("stalled simulation did not error")
	}
	msg := err.Error()
	for _, want := range []string{"quiesced", "beta0", "injected stall on item 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	// The healthy pipeline still finished its stream: the reported count
	// reflects partial progress, not zero.
	if !strings.Contains(msg, "of 16 items") {
		t.Errorf("error %q does not report the expected total", msg)
	}
}

func TestSimulateInjectedDeathNamesCore(t *testing.T) {
	c := simTestChain()
	inj := faults.MustInjector(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindDeath, Pipeline: 1, Seq: 2},
	}})
	_, err := c.Simulate(SimSpec{Pipelines: 2, Items: 6, Injector: inj})
	if err == nil || !strings.Contains(err.Error(), "injected core death at item 2") {
		t.Fatalf("err = %v, want named core death", err)
	}
}

func TestSimulateInjectedDelayChargesTime(t *testing.T) {
	base, err := simTestChain().Simulate(SimSpec{Pipelines: 1, Items: 5})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.MustInjector(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindDelay, Pipeline: 0, Stage: "alpha", Seq: 1, Delay: 10 * time.Millisecond},
	}})
	slow, err := simTestChain().Simulate(SimSpec{Pipelines: 1, Items: 5, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Items != base.Items {
		t.Fatalf("delay changed item count: %d vs %d", slow.Items, base.Items)
	}
	if d := slow.Seconds - base.Seconds; d < 0.0099 || d > 0.012 {
		t.Errorf("delay charged %.4fs, want ≈0.010s", d)
	}
}

func TestSimulateTransientRetriesChargeBackoff(t *testing.T) {
	base, err := simTestChain().Simulate(SimSpec{Pipelines: 1, Items: 5})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.MustInjector(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindTransient, Pipeline: 0, Stage: "beta", Seq: 2, Times: 2},
	}})
	flaky, err := simTestChain().Simulate(SimSpec{Pipelines: 1, Items: 5, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	// Two retries charge 100µs + 200µs of backoff.
	if d := flaky.Seconds - base.Seconds; d < 250e-6 || d > 400e-6 {
		t.Errorf("retries charged %.0fµs, want ≈300µs", d*1e6)
	}

	// Exhausting the simulated retry budget stalls the pipeline.
	exhaust := faults.MustInjector(faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.KindTransient, Pipeline: 0, Stage: "beta", Seq: 2, Times: 1 << 20},
	}})
	_, err = simTestChain().Simulate(SimSpec{Pipelines: 1, Items: 5, Injector: exhaust})
	if err == nil || !strings.Contains(err.Error(), "retries exhausted on item 2") {
		t.Fatalf("err = %v, want exhausted retries", err)
	}
}
