package pipe

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sccpipe/internal/faults"
)

// This file implements the supervised execution path of Chain.RunContext:
// the same k-parallel stage-per-goroutine structure as the fast path, plus
// a supervisor that makes injected (or organic) faults survivable. The
// paper's own result — the mesh arrangement of a pipeline has no
// measurable effect, because every hand-off funnels through the four
// memory controllers — is what licenses the recovery strategy: work can
// be re-mapped to any surviving pipeline at no modeled cost, so a dead
// pipeline's items are simply redistributed.
//
// The moving parts:
//
//   - k feeders pull the per-origin streams and hand items to the
//     supervisor (preserving Feed's contract of one concurrent caller per
//     pipeline index);
//   - the supervisor routes each item to a carrier pipeline — its origin
//     while that is alive, a round-robin survivor afterwards — keeping an
//     as-fed snapshot of every item in flight;
//   - stage goroutines run each application through faults.Apply (injected
//     delays, retried transient errors, stall watchdog) and report death
//     verdicts to the supervisor;
//   - on a death the supervisor cancels that pipeline's context and
//     re-queues its in-flight snapshots onto survivors (stage Fns must be
//     redo-safe, see Chain.Faults);
//   - completions flow back to the supervisor, which dedups them by
//     (origin, seq) — a redone item that raced its own redispatch arrives
//     twice but reaches Collect exactly once — and terminates the run when
//     all streams have ended and nothing is queued or in flight.
type ident struct{ origin, seq int }

type deathNote struct {
	pipeline int
	reason   string
}

type inflightRec struct {
	carrier int
	item    Item
}

// supervised bundles the shared state of one supervised run.
type supervised struct {
	c   *Chain
	k   int
	inj faults.Injector
	pol faults.RecoveryPolicy

	ctx     context.Context // run-wide; cancelled on run-level failure
	pctx    []context.Context
	pcancel []context.CancelFunc

	ins       []chan Item // per-pipeline chain heads
	feedCh    chan feedMsg
	deaths    chan deathNote
	completed chan Item

	retries int64 // atomic: total retry attempts across stages
	total   int64 // atomic: unique items delivered to Collect
	// settled flips once the supervisor has decided the run's outcome;
	// cancellations after that are teardown, not errors.
	settled atomic.Bool
}

type feedMsg struct {
	origin int
	item   Item
	eof    bool
}

// runSupervised executes the chain with fault injection and supervised
// recovery. See Chain.Faults/Chain.Recovery for the contract changes.
func (c *Chain) runSupervised(parent context.Context, k int) (RunResult, error) {
	start := time.Now()
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	pol := c.Recovery.Normalize()
	s := &supervised{
		c: c, k: k, inj: c.Faults, pol: pol, ctx: ctx,
		pctx:    make([]context.Context, k),
		pcancel: make([]context.CancelFunc, k),
		ins:     make([]chan Item, k),
		feedCh:  make(chan feedMsg, k),
		// deaths never blocks a reporter: each stage goroutine reports at
		// most once before exiting.
		deaths:    make(chan deathNote, k*(len(c.Stages)+1)),
		completed: make(chan Item, k),
	}
	for i := 0; i < k; i++ {
		s.pctx[i], s.pcancel[i] = context.WithCancel(ctx)
		s.ins[i] = make(chan Item, 1)
	}

	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	var wg sync.WaitGroup
	spawn := func(name string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("pipe: %s panicked: %v", name, r))
				}
			}()
			if err := fn(); err != nil {
				fail(err)
			}
		}()
	}

	// Feeders: one per origin stream. An item's Pipeline field stays its
	// origin for its whole life, whichever carrier processes it.
	for o := 0; o < k; o++ {
		o := o
		spawn(fmt.Sprintf("feed %d", o), func() error {
			for seq := 0; ; seq++ {
				item, ok := c.Feed(o, seq)
				if !ok {
					select {
					case s.feedCh <- feedMsg{origin: o, eof: true}:
					case <-ctx.Done():
					}
					return nil
				}
				item.Seq, item.Pipeline = seq, o
				if item.Bytes == 0 {
					item.Bytes = c.ItemBytes
				}
				select {
				case s.feedCh <- feedMsg{origin: o, item: item}:
				case <-ctx.Done():
					return nil // the run-level outcome is decided elsewhere
				}
			}
		})
	}

	// Stage chains: like the fast path, but every application goes through
	// faults.Apply and the last stage emits into the shared completion
	// channel. The chains run the execution plan, so a fused run occupies
	// one goroutine while still honouring every covered stage's fault
	// rules (see runStage).
	plan := c.plan()
	for p := 0; p < k; p++ {
		p := p
		in := s.ins[p]
		for si, ps := range plan {
			ps := ps
			last := si == len(plan)-1
			var out chan Item
			if !last {
				out = make(chan Item, 1)
			}
			src, dst := in, out
			spawn(fmt.Sprintf("stage %s.%d", ps.name, p), func() error {
				return s.runStage(p, ps, last, src, dst)
			})
			in = out
		}
	}

	// The supervisor runs inline; it is the sole reader of completions
	// (and the caller of Collect) until it returns.
	degraded, supErr := s.supervise()
	s.settled.Store(true)
	if supErr != nil {
		cancel() // release feeders and stages still parked on channels
	}

	// Teardown: the supervisor has closed (or cancelled) every chain. A
	// drainer takes over the completion channel so stage goroutines can
	// flush any late redo duplicates — everything arriving now has already
	// been delivered once — then cascade out.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range s.completed {
		}
	}()
	wg.Wait()
	close(s.completed)
	<-drained

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err == nil {
		err = supErr
	}
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{Items: int(atomic.LoadInt64(&s.total)), Elapsed: time.Since(start)}
	if degraded != nil {
		degraded.Retries = int(atomic.LoadInt64(&s.retries))
		res.Degraded = degraded
	}
	return res, nil
}

// runStage is one supervised stage goroutine: it applies the planned
// stage (and its hand-off) under the recovery policy and escalates dead
// verdicts.
//
// Fused fault semantics: for each constituent, the injector's stage-point
// rules are consulted for every name the constituent covers — a pure
// consultation (no work attached) for all but the last, so injected
// delays, transient errors, stalls and deaths aimed at a fused-away stage
// still fire — and the constituent's Fn runs exactly once, attached to
// the last covered name's consultation (faults.Apply never re-runs work
// on injected failures, so this is retry-safe). The planned stage's
// single outgoing hand-off then consults the transfer-point rules of
// every covered name.
func (s *supervised) runStage(p int, ps plannedStage, last bool, src <-chan Item, dst chan<- Item) error {
	pctx := s.pctx[p]
	reportDeath := func(reason string) {
		s.deaths <- deathNote{pipeline: p, reason: reason} // buffered: never blocks
	}
	apply := func(transfer bool, name string, seq int, work func() error) (exit bool, err error) {
		ap := faults.Apply(pctx, s.inj, &s.pol, transfer, p, name, seq, work)
		atomic.AddInt64(&s.retries, int64(ap.Retries))
		return s.afterVerdict(ap, name, reportDeath)
	}
	for {
		var item Item
		var ok bool
		select {
		case item, ok = <-src:
		case <-pctx.Done():
			return s.ctxOutcome()
		}
		if !ok {
			if dst != nil {
				close(dst)
			}
			return nil
		}
		if s.inj != nil && s.inj.Dead(p, item.Seq) {
			reportDeath(fmt.Sprintf("injected core death at item %d", item.Seq))
			return nil
		}
		for pi := range ps.parts {
			st := &ps.parts[pi]
			names := st.covers()
			for _, name := range names[:len(names)-1] {
				if exit, err := apply(false, name, item.Seq, nil); exit {
					return err
				}
			}
			if exit, err := apply(false, names[len(names)-1], item.Seq, func() error {
				if st.Fn != nil {
					item = st.Fn(item)
				}
				return nil
			}); exit {
				return err
			}
		}
		// The hand-off to the next stage (or the sink) is its own fault
		// point: flaky transfers are retried, slow ones delayed. Every
		// covered name's transfer rules guard the one physical hand-off.
		for _, name := range ps.covered {
			if exit, err := apply(true, name, item.Seq, nil); exit {
				return err
			}
		}
		out := dst
		if last {
			out = s.completed
		}
		select {
		case out <- item:
		case <-pctx.Done():
			return s.ctxOutcome()
		}
	}
}

// afterVerdict translates an Applied into the stage goroutine's reaction:
// exit reports whether the goroutine must return (with err as its result).
func (s *supervised) afterVerdict(ap faults.Applied, stage string, reportDeath func(string)) (exit bool, err error) {
	switch ap.Verdict {
	case faults.VerdictOK:
		return false, nil
	case faults.VerdictDead:
		reportDeath(ap.Reason)
		return true, nil
	case faults.VerdictCancelled:
		return true, s.ctxOutcome()
	default: // VerdictFailed
		return true, fmt.Errorf("pipe: stage %s failed: %w", stage, ap.Err)
	}
}

// ctxOutcome distinguishes a run-level cancellation (propagate the error)
// from a pipeline-local death or post-settlement teardown cancellation
// (exit quietly, nil — the supervisor's verdict is authoritative).
func (s *supervised) ctxOutcome() error {
	if s.settled.Load() {
		return nil
	}
	return s.ctx.Err()
}

// safeCollect delivers one item to Collect, converting a panic into an
// error (matching the fast path's contract).
func (s *supervised) safeCollect(item Item) (err error) {
	if s.c.Collect == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipe: collect panicked: %v", r)
		}
	}()
	s.c.Collect(item)
	return nil
}

// supervise is the routing/recovery state machine. It returns the
// degraded report (nil for a clean run) and an error when the run cannot
// complete (all pipelines dead, or the run context was cancelled).
func (s *supervised) supervise() (*faults.Degraded, error) {
	var (
		queue        []Item
		inflight     = make(map[ident]inflightRec)
		seen         = make(map[ident]bool)
		originsEOF   = 0
		dead         = make(map[int]string)
		rr           = 0
		degraded     *faults.Degraded
		redispatched = 0
	)
	alive := func(p int) bool { _, d := dead[p]; return !d }
	carrierFor := func(origin int) int {
		if alive(origin) {
			return origin
		}
		for i := 0; i < s.k; i++ {
			c := rr % s.k
			rr++
			if alive(c) {
				return c
			}
		}
		return -1 // unreachable: handleDeath errors out before all k die
	}
	handleDeath := func(n deathNote) error {
		if !alive(n.pipeline) {
			return nil // duplicate report (several stages can notice one death)
		}
		dead[n.pipeline] = n.reason
		if degraded == nil {
			degraded = &faults.Degraded{}
		}
		degraded.AddDeath(n.pipeline, n.reason)
		s.pol.Notify(faults.Event{Kind: faults.EventDeath, Pipeline: n.pipeline, Reason: n.reason})
		s.pcancel[n.pipeline]()
		if len(dead) == s.k {
			return fmt.Errorf("pipe: all %d pipelines dead, last: pipeline %d: %s", s.k, n.pipeline, n.reason)
		}
		// Re-queue the dead carrier's in-flight snapshots, in deterministic
		// order, for redistribution onto survivors.
		var lost []ident
		for id, rec := range inflight {
			if rec.carrier == n.pipeline {
				lost = append(lost, id)
			}
		}
		sort.Slice(lost, func(i, j int) bool {
			if lost[i].origin != lost[j].origin {
				return lost[i].origin < lost[j].origin
			}
			return lost[i].seq < lost[j].seq
		})
		for _, id := range lost {
			rec := inflight[id]
			delete(inflight, id)
			queue = append(queue, rec.item)
			redispatched++
			s.pol.Notify(faults.Event{Kind: faults.EventRedispatch, Pipeline: n.pipeline, Seq: id.seq})
		}
		return nil
	}

	for {
		if originsEOF == s.k && len(queue) == 0 && len(inflight) == 0 {
			for p, ch := range s.ins {
				if alive(p) {
					close(ch)
				}
			}
			if degraded != nil {
				degraded.Redispatched = redispatched
			}
			return degraded, nil
		}

		// Head-of-queue dispatch target, recomputed every turn so deaths
		// retarget queued work automatically. A nil channel disables the
		// send arm while the queue is empty.
		var sendCh chan Item
		var head Item
		target := -1
		if len(queue) > 0 {
			head = queue[0]
			target = carrierFor(head.Pipeline)
			sendCh = s.ins[target]
		}
		// Stop pulling from the feeders while the backlog is deep, so a
		// shrunken survivor set doesn't buffer entire redistributed streams.
		feedCh := s.feedCh
		if len(queue) >= 4*s.k {
			feedCh = nil
		}

		select {
		case m := <-feedCh:
			if m.eof {
				originsEOF++
			} else {
				queue = append(queue, m.item)
			}
		case n := <-s.deaths:
			if err := handleDeath(n); err != nil {
				return nil, err
			}
		case item := <-s.completed:
			id := ident{item.Pipeline, item.Seq}
			if !seen[id] {
				seen[id] = true
				if err := s.safeCollect(item); err != nil {
					return nil, err
				}
				atomic.AddInt64(&s.total, 1)
			}
			delete(inflight, id)
		case sendCh <- head:
			inflight[ident{head.Pipeline, head.Seq}] = inflightRec{carrier: target, item: head}
			queue = queue[1:]
		case <-s.ctx.Done():
			return nil, s.ctx.Err()
		}
	}
}
