package host

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version identifies the build. It is empty by default and meant to be
// stamped at link time:
//
//	go build -ldflags "-X sccpipe/internal/host.Version=v1.4.0"
//
// When unset, BuildVersion falls back to the module version or VCS
// revision recorded by the Go toolchain.
var Version string

// BuildVersion returns the best available identity of this binary's
// build: the link-time Version when stamped, else the main module
// version, else the VCS revision (suffixed "-dirty" for modified trees),
// else "devel". Every serving binary reports it behind a -version flag,
// and sccserved exposes it in its health/load report so the fleet
// gateway can surface version skew across mixed workers.
func BuildVersion() string {
	if Version != "" {
		return Version
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "-dirty"
		}
		return rev
	}
	return "devel"
}

// BuildLine is the one-line -version output: program name, build
// identity, and toolchain.
func BuildLine(program string) string {
	return fmt.Sprintf("%s %s (%s %s/%s)", program, BuildVersion(),
		runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
