package host

import (
	"strings"
	"testing"
)

func TestBuildVersionNonEmpty(t *testing.T) {
	if BuildVersion() == "" {
		t.Fatal("BuildVersion returned an empty string")
	}
}

func TestBuildVersionStamped(t *testing.T) {
	old := Version
	defer func() { Version = old }()
	Version = "v9.9.9-test"
	if got := BuildVersion(); got != "v9.9.9-test" {
		t.Fatalf("stamped BuildVersion = %q, want v9.9.9-test", got)
	}
}

func TestBuildLine(t *testing.T) {
	old := Version
	defer func() { Version = old }()
	Version = "v1.2.3"
	line := BuildLine("sccgated")
	for _, want := range []string{"sccgated", "v1.2.3", "go"} {
		if !strings.Contains(line, want) {
			t.Fatalf("BuildLine %q missing %q", line, want)
		}
	}
}
