// Package host models the machines around the SCC: the Management Control
// PC (MCPC) that fronts the developer kit over PCIe, the visualization
// client's network link, and the Mogon HPC cluster node used for the
// paper's Fig. 13 comparison.
package host

// Link models a bandwidth-limited, chunked transport (PCIe/UDP). Frames
// larger than Chunk are sent as multiple sub-images, each paying Overhead —
// the paper notes images cannot be sent as a single message due to
// send/receive buffer sizes.
type Link struct {
	Bandwidth float64 // bytes/second
	Chunk     int     // bytes per sub-message
	Overhead  float64 // seconds per sub-message
}

// TransferTime returns the serialized occupancy of sending n bytes.
func (l Link) TransferTime(n int) float64 {
	if n <= 0 {
		return 0
	}
	chunks := 1
	if l.Chunk > 0 {
		chunks = (n + l.Chunk - 1) / l.Chunk
	}
	return float64(n)/l.Bandwidth + float64(chunks)*l.Overhead
}

// MCPC describes the developer kit's control PC (Xeon X3440, 4 GiB).
type MCPC struct {
	// RenderPerFrame is the Xeon's time to render one walkthrough frame;
	// the paper reports ≈3.3 s for all 400 frames.
	RenderPerFrame float64
	// ToSCC is the MCPC→SCC frame channel (PCIe-carried UDP).
	ToSCC Link
	// FromSCC is the SCC→visualization-client channel.
	FromSCC Link
	// IdleWatts and BusyWatts reproduce the paper's §VI-B measurements
	// (52 W idle, 80 W while rendering).
	IdleWatts float64
	BusyWatts float64
}

// DefaultMCPC returns the calibrated MCPC model.
func DefaultMCPC() MCPC {
	return MCPC{
		RenderPerFrame: 3.3 / 400,
		// Ingress is CPU-bound: a 533 MHz P54C core unpacking UDP frames
		// achieves far below wire speed, and every sub-image pays protocol
		// overhead (the paper: frames cannot be sent as one message).
		ToSCC:     Link{Bandwidth: 30e6, Chunk: 32 * 1024, Overhead: 1e-3},
		FromSCC:   Link{Bandwidth: 250e6, Chunk: 64 * 1024, Overhead: 60e-6},
		IdleWatts: 52,
		BusyWatts: 80,
	}
}

// Cluster describes a Mogon-style HPC node (64 cores at 2.1 GHz) plus its
// interconnect. The clock ratio to the SCC's 533 MHz cores is 3.94×; the
// effective per-core speedup is larger because a modern out-of-order core
// retires several times the IPC of a P54C — the paper measures up to 13.5×
// end to end.
type Cluster struct {
	// SpeedFactor scales 533 MHz-reference compute seconds down.
	SpeedFactor float64
	// RenderSpeedFactor scales the render stage separately: rasterization
	// vectorizes on a modern core, so the cluster's renderer gains far
	// more than the byte-wise filter loops (Fig. 13's "single rend." curve
	// keeps scaling 1/k to 4 s, which requires the shared renderer to stay
	// off the critical path).
	RenderSpeedFactor float64
	// MemBandwidth is the shared per-node memory system bandwidth; stages
	// on one node exchange strips through shared memory (local memory, the
	// very thing the SCC lacks).
	MemBandwidth float64
	// MsgOverhead is the per-message software cost between stages.
	MsgOverhead float64
	// ExternalLink carries frames from an external render node into the
	// pipeline node (the cluster analogue of the MCPC configuration).
	ExternalLink Link
	// ViewerLink carries finished frames to the viewer node.
	ViewerLink Link
}

// DefaultCluster returns the calibrated Mogon model.
func DefaultCluster() Cluster {
	return Cluster{
		SpeedFactor:       6.5,  // 3.94× clock × ≈1.65× IPC on scalar filter code
		RenderSpeedFactor: 25.0, // SIMD rasterization
		MemBandwidth:      1.5e9,
		MsgOverhead:       25e-6,
		ExternalLink:      Link{Bandwidth: 60e6, Chunk: 64 * 1024, Overhead: 800e-6},
		ViewerLink:        Link{Bandwidth: 250e6, Chunk: 64 * 1024, Overhead: 100e-6},
	}
}
