// Package band provides the shared band-parallel executor: a bounded,
// reused worker pool that splits one stage's work over independent row
// bands of a frame. The paper's pipeline pins each stage to one core; on a
// multi-core host the heavy stages (blur, the fused point pass, the
// rasterizer) can instead fan one strip out across idle cores without
// changing the pipeline structure — intra-stage parallelism layered under
// the inter-stage pipeline, as in task-parallel pipeline schedulers.
//
// The pool spawns its workers once and reuses them for every Run, so the
// per-frame cost is a channel send per band, not a goroutine spawn. Run
// itself is allocation-free in steady state.
package band

import (
	"runtime"
	"sync"
)

// Pool is a fixed set of worker goroutines that execute row bands. The
// zero Pool and the nil Pool are both valid and serial: Run executes every
// band inline on the caller. A Pool must not be copied after first use.
type Pool struct {
	workers int // goroutines beyond the caller; 0 = serial
	tasks   chan task
	start   sync.Once
}

type task struct {
	r    *run
	band int
}

// run is the per-Run rendezvous: the shared band function, a completion
// latch for the n-1 bands dispatched to workers, and the first worker
// panic (re-raised on the caller). Handles are pooled so a steady-state
// Run allocates nothing.
type run struct {
	fn       func(int)
	wg       sync.WaitGroup
	mu       sync.Mutex
	panicked any
}

var runPool = sync.Pool{New: func() any { return new(run) }}

// Serial is the explicit opt-out pool: every Run executes inline on the
// calling goroutine. Useful where a caller must force the single-goroutine
// path (reference oracles, tests) without special-casing nil.
var Serial = &Pool{}

// New returns a pool that runs up to `parallelism` bands concurrently,
// counting the calling goroutine: it spawns parallelism-1 workers.
// parallelism <= 1 yields a serial pool with no workers.
func New(parallelism int) *Pool {
	if parallelism <= 1 {
		return &Pool{}
	}
	return &Pool{workers: parallelism - 1}
}

var defaultPool = sync.OnceValue(func() *Pool {
	return New(runtime.GOMAXPROCS(0))
})

// Default returns the process-shared pool sized from GOMAXPROCS at first
// use. On a single-CPU host it is serial.
func Default() *Pool { return defaultPool() }

// Parallelism reports how many bands can execute concurrently (including
// the caller); 1 for nil and serial pools. Callers size their band count
// from it.
func (p *Pool) Parallelism() int {
	if p == nil {
		return 1
	}
	return p.workers + 1
}

// ensureStarted lazily spawns the workers on first Run, so constructing
// pools (e.g. for configuration defaults) costs nothing until used.
func (p *Pool) ensureStarted() {
	p.start.Do(func() {
		p.tasks = make(chan task, p.workers)
		for i := 0; i < p.workers; i++ {
			go p.worker()
		}
	})
}

func (p *Pool) worker() {
	for t := range p.tasks {
		p.runBand(t)
	}
}

// runBand executes one band, capturing a panic into the run handle so the
// caller can re-raise it after the latch opens.
func (p *Pool) runBand(t task) {
	defer func() {
		if v := recover(); v != nil {
			t.r.mu.Lock()
			if t.r.panicked == nil {
				t.r.panicked = v
			}
			t.r.mu.Unlock()
		}
		t.r.wg.Done()
	}()
	t.r.fn(t.band)
}

// Run executes fn(0) … fn(n-1), each call a band, and returns when all
// have finished. Bands 1..n-1 are dispatched to the workers while the
// caller executes band 0, so the caller is never idle. fn must treat its
// band as independent work: bands run concurrently and may only share
// read-only state. A panic in any band is re-raised on the caller after
// every band has finished.
//
// Run must not be called from inside a band function (the workers running
// the outer bands would deadlock waiting for themselves); keep band
// functions leaf-level.
func (p *Pool) Run(n int, fn func(int)) {
	if p == nil || p.workers == 0 || n <= 1 {
		for b := 0; b < n; b++ {
			fn(b)
		}
		return
	}
	p.ensureStarted()
	r := runPool.Get().(*run)
	r.fn = fn
	r.wg.Add(n - 1)
	for b := 1; b < n; b++ {
		p.tasks <- task{r: r, band: b}
	}
	// The deferred wait runs even if band 0 panics on the caller, so no
	// worker ever touches a run handle past Run's return.
	defer func() {
		r.wg.Wait()
		pan := r.panicked
		r.fn, r.panicked = nil, nil
		runPool.Put(r)
		if pan != nil {
			panic(pan)
		}
	}()
	fn(0)
}
